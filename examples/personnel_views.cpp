// §4 walkthrough on a larger personnel document: single-view TP-rewritings
// under copy semantics.
//
//   * generate an uncertain personnel database,
//   * register a materialized view over it,
//   * run TPrewrite for a batch of queries: report which admit a
//     probabilistic rewriting, which are only deterministically rewritable
//     (Example 11's trap), and which need a different view,
//   * execute the accepted plans over the extension and verify the
//     probabilities against direct evaluation.

#include <cstdio>
#include <map>

#include "gen/docgen.h"
#include "gen/paper.h"
#include "prob/query_eval.h"
#include "rewrite/fr_tp.h"
#include "rewrite/rewriter.h"
#include "tp/parser.h"
#include "util/random.h"

using namespace pxv;

int main() {
  Rng rng(2026);
  const PDocument pd = PersonnelPDocument(rng, 25, /*rick_fraction=*/0.4);
  std::printf("personnel p-document: %d nodes (%d ordinary)\n\n", pd.size(),
              pd.OrdinaryCount());

  Rewriter rewriter;
  rewriter.AddView("bonuses", Tp("IT-personnel//person/bonus"));
  rewriter.AddView("rick_bonuses",
                   Tp("IT-personnel//person[name/Rick]/bonus"));
  const ViewExtensions exts = rewriter.Materialize(pd);
  for (const auto& [name, ext] : exts) {
    std::printf("extension doc(%s): %d nodes\n", name.c_str(), ext.size());
  }

  const char* queries[] = {
      "IT-personnel//person/bonus[laptop]",
      "IT-personnel//person[name/Rick]/bonus[laptop]",
      "IT-personnel//person[name/Rick]/bonus[pda]",
      "IT-personnel//person/bonus[tablet]",
      "IT-personnel//person/name",  // Not coverable by these views.
  };

  for (const char* text : queries) {
    const Pattern q = Tp(text);
    const auto rewritings = rewriter.FindTp(q);
    std::printf("\nquery %s\n", text);
    if (rewritings.empty()) {
      std::printf("    no probabilistic TP-rewriting from the registered "
                  "views\n");
      continue;
    }
    for (const TpRewriting& rw : rewritings) {
      std::printf("    via %-13s plan %-46s %s\n", rw.view_name.c_str(),
                  ToXPath(rw.plan).c_str(),
                  rw.restricted ? "[restricted]" : "[unrestricted]");
    }
    // Execute the first plan and spot-check against direct evaluation.
    const TpRewriting& rw = rewritings.front();
    const auto results = ExecuteTpRewriting(rw, exts.at(rw.view_name));
    double max_err = 0;
    for (const PidProb& pp : results) {
      const double direct =
          SelectionProbability(pd, q, pd.FindByPid(pp.pid));
      max_err = std::max(max_err, std::abs(direct - pp.prob));
    }
    std::printf("    %zu answers from the extension, max |error| vs direct "
                "= %.2e\n",
                results.size(), max_err);
  }

  // The Example 11 trap: deterministic-but-not-probabilistic rewritings.
  std::printf("\nExample 11 (q = a/b[c], v = a[.//c]/b):\n");
  Rewriter trap;
  trap.AddView("v", paper::View11());
  std::printf("    deterministic rewriting exists: %s\n",
              HasDeterministicTpRewriting(paper::Query11(), paper::View11())
                  ? "yes"
                  : "no");
  std::printf("    probabilistic rewriting found:  %s\n",
              trap.FindTp(paper::Query11()).empty() ? "no (correct!)" : "yes");
  return 0;
}
