// §5 walkthrough: multi-view TP∩-rewritings under persistent node Ids.
//
//   * Example 15: q_RBON from v1_BON ∩ comp(v2_BON, ·) — the product
//     formula of Theorem 3;
//   * Example 16: dependent views — the S(q,V) decomposition system and its
//     rational-exponent solution;
//   * a negative case: deterministically sufficient views whose
//     probabilities cannot be recombined.

#include <cstdio>

#include "gen/paper.h"
#include "prob/query_eval.h"
#include "pxml/parser.h"
#include "rewrite/decomposition.h"
#include "rewrite/rewriter.h"
#include "tp/parser.h"

using namespace pxv;

namespace {

void RunCase(const char* title, const Pattern& q,
             const std::vector<NamedView>& views, const PDocument& pd) {
  std::printf("\n=== %s ===\n", title);
  std::printf("q = %s\n", ToXPath(q).c_str());
  for (const NamedView& v : views) {
    std::printf("view %-6s = %s\n", v.name.c_str(), ToXPath(v.def).c_str());
  }
  const auto rw = TPIrewrite(q, views);
  if (!rw.has_value()) {
    std::printf("→ no probabilistic TP∩-rewriting (TPIrewrite refused)\n");
    return;
  }
  std::printf("→ canonical plan with %zu members; f_r exponents:",
              rw->members.size());
  for (size_t i = 0; i < rw->coefficients.size(); ++i) {
    std::printf(" %s", rw->coefficients[i].ToString().c_str());
  }
  std::printf("\n");

  Rewriter rewriter;
  for (const NamedView& v : views) rewriter.AddView(v.name, v.def.Clone());
  const ViewExtensions exts = rewriter.Materialize(pd);
  for (const PidProb& pp : ExecuteTpiRewriting(*rw, exts)) {
    const double direct = SelectionProbability(pd, q, pd.FindByPid(pp.pid));
    std::printf("   answer pid=%lld  Pr = %.6f   (direct %.6f)\n",
                static_cast<long long>(pp.pid), pp.prob, direct);
  }
}

}  // namespace

int main() {
  // Example 15 — pairwise independent views, product formula.
  RunCase("Example 15: q_RBON from v1_BON and v2_BON", paper::QueryRBON(),
          {{"v1BON", paper::ViewV1BON()}, {"v2BON", paper::ViewV2BON()}},
          paper::PDocPER());

  // Example 16 — dependent views, decomposition system.
  const auto pd16 = ParsePDocument(
      "a(mux(1@0.8), b(mux(2@0.7), c(mux(3@0.6), mux(d@0.9))))");
  std::vector<NamedView> views16;
  for (int i = 1; i <= 4; ++i) {
    views16.push_back({"v" + std::to_string(i), paper::View16(i)});
  }
  RunCase("Example 16: dependent views via S(q,V)", paper::Query16(), views16,
          *pd16);

  // Show the d-views and the system explicitly.
  std::printf("\nS(q,V) decomposition for Example 16:\n");
  std::vector<Pattern> defs;
  for (int i = 1; i <= 4; ++i) defs.push_back(paper::View16(i));
  const ViewDecomposition dec = DecomposeViews(paper::Query16(), defs);
  for (size_t c = 0; c < dec.dviews.size(); ++c) {
    std::printf("   w%zu = %s\n", c + 1, ToXPath(dec.dviews[c]).c_str());
  }
  for (size_t i = 0; i < dec.view_classes.size(); ++i) {
    std::printf("   v%zu decomposes into {", i + 1);
    for (int c : dec.view_classes[i]) std::printf(" w%d", c + 1);
    std::printf(" }\n");
  }

  // Negative case — v1, v2 alone: deterministically sufficient, but the
  // probabilities cannot be recombined (no unique solution).
  RunCase("Negative: v1, v2 only (Pr not retrievable)", paper::Query16(),
          {{"v1", paper::View16(1)}, {"v2", paper::View16(2)}}, *pd16);
  return 0;
}
