// Quickstart: the paper's running example end to end.
//
//   * build the personnel p-document of Figure 2,
//   * evaluate the queries of Figure 3 (probabilistic answers, Example 6),
//   * materialize a view and answer a query from the view alone
//     (Example 13), checking it against direct evaluation.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart

#include <cstdio>

#include "gen/paper.h"
#include "prob/query_eval.h"
#include "pxml/pdocument.h"
#include "rewrite/rewriter.h"
#include "tp/parser.h"

using namespace pxv;

namespace {

void ShowAnswers(const char* title, const PDocument& pd, const Pattern& q) {
  std::printf("%s  —  %s\n", title, ToXPath(q).c_str());
  for (const NodeProb& np : EvaluateTP(pd, q)) {
    std::printf("    node pid=%lld   Pr = %.4f\n",
                static_cast<long long>(pd.pid(np.node)), np.prob);
  }
}

}  // namespace

int main() {
  // 1. The probabilistic personnel document (paper Figure 2).
  const PDocument pd = paper::PDocPER();
  std::printf("p-document P_PER (%d nodes):\n%s\n", pd.size(),
              pd.DebugString().c_str());

  // 2. Probabilistic query answers (paper Example 6).
  ShowAnswers("q_BON ", pd, paper::QueryBON());
  ShowAnswers("q_RBON", pd, paper::QueryRBON());
  ShowAnswers("v1_BON", pd, paper::ViewV1BON());
  ShowAnswers("v2_BON", pd, paper::ViewV2BON());

  // 3. Answer q_BON from the materialized view v2_BON only (Example 13).
  Rewriter rewriter;
  rewriter.AddView("v2BON", paper::ViewV2BON());
  const ViewExtensions exts = rewriter.Materialize(pd);

  const auto answer = rewriter.Answer(paper::QueryBON(), exts);
  if (!answer.has_value()) {
    std::printf("no rewriting found (unexpected)\n");
    return 1;
  }
  std::printf("\nq_BON answered from doc(v2BON) alone:\n");
  for (const PidProb& pp : *answer) {
    std::printf("    node pid=%lld   Pr = %.4f   (direct: %.4f)\n",
                static_cast<long long>(pp.pid), pp.prob,
                SelectionProbability(pd, paper::QueryBON(),
                                     pd.FindByPid(pp.pid)));
  }
  return 0;
}
