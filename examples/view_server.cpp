// ViewServer quickstart: the serve-heavy workload the paper implies —
// materialize probabilistic view extensions once, then answer a stream of
// queries from the extensions alone, with
//   * the plan cache absorbing the exponential rewriting search for
//     repeated and isomorphic queries,
//   * cost-based selection picking the cheapest executable rewriting,
//   * the thread pool fanning materialization and batched answering out.
//
// Build & run:  cmake -B build && cmake --build build
//               ./build/example_view_server

#include <chrono>
#include <cstdio>

#include "gen/paper.h"
#include "serve/view_server.h"
#include "tp/parser.h"

using namespace pxv;

namespace {

double Ms(std::chrono::steady_clock::time_point a,
          std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

void Show(const char* title,
          const std::optional<std::vector<PidProb>>& answer) {
  std::printf("%s\n", title);
  if (!answer.has_value()) {
    std::printf("    (not answerable from the materialized views)\n");
    return;
  }
  for (const PidProb& pp : *answer) {
    std::printf("    node pid=%lld   Pr = %.4f\n",
                static_cast<long long>(pp.pid), pp.prob);
  }
}

}  // namespace

int main() {
  using Clock = std::chrono::steady_clock;

  // 1. A server with the running example's views (paper Figure 3).
  ViewServer server;
  server.AddView("v1BON", paper::ViewV1BON());
  server.AddView("v2BON", paper::ViewV2BON());

  // 2. Materialize every extension over the p-document — fanned out across
  //    the pool, one evaluation session per worker shard.
  const auto t0 = Clock::now();
  server.Materialize(paper::PDocPER());
  const auto t1 = Clock::now();
  std::printf("materialized %zu views in %.2f ms on %d thread(s)\n\n",
              server.extensions()->size(), Ms(t0, t1), server.pool().size());

  // 3. First answer pays the §4/§5 rewriting search (plan compilation)…
  const Pattern q = paper::QueryBON();
  const auto t2 = Clock::now();
  const auto cold = server.Answer(q);
  const auto t3 = Clock::now();
  Show("q_BON, cold (compiles the plan):", cold);
  std::printf("    took %.3f ms\n\n", Ms(t2, t3));

  // 4. …repeated and isomorphic queries hit the plan cache and only pay
  //    plan selection + f_r execution.
  const auto t4 = Clock::now();
  const auto warm = server.Answer(q);
  const auto t5 = Clock::now();
  Show("q_BON, cached plan:", warm);
  std::printf("    took %.3f ms\n\n", Ms(t4, t5));

  // 5. Batched serving shares the cache and pool across a query set.
  const auto batch = server.AnswerAll({paper::QueryBON(), paper::QueryRBON()});
  Show("batched q_BON:", batch[0]);
  Show("batched q_RBON:", batch[1]);

  const ViewServerStats stats = server.stats();
  std::printf(
      "\nserver stats: %lld queries, %lld plan-cache hits, %lld misses, "
      "%lld unanswerable\n",
      static_cast<long long>(stats.queries),
      static_cast<long long>(stats.plan_cache_hits),
      static_cast<long long>(stats.plan_cache_misses),
      static_cast<long long>(stats.unanswerable));
  return 0;
}
