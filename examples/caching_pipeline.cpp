// A query-cache scenario (the paper's motivating use case, §1): a stream of
// queries arrives against a probabilistic personnel database; materialized
// views act as a cache. Each query is answered from the cache when a
// probabilistic rewriting exists, and against the base p-document otherwise;
// the pipeline reports hit rates and the relative cost of the two paths.

#include <chrono>
#include <cstdio>
#include <vector>

#include "gen/docgen.h"
#include "prob/query_eval.h"
#include "rewrite/rewriter.h"
#include "tp/parser.h"
#include "util/random.h"

using namespace pxv;

namespace {

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main() {
  Rng rng(7);
  const PDocument pd = PersonnelPDocument(rng, 120, /*rick_fraction=*/0.25);
  std::printf("base p-document: %d nodes\n", pd.size());

  Rewriter cache;
  cache.AddView("bonuses", Tp("IT-personnel//person/bonus"));
  cache.AddView("rick", Tp("IT-personnel//person[name/Rick]/bonus"));

  const auto t_mat = std::chrono::steady_clock::now();
  const ViewExtensions exts = cache.Materialize(pd);
  std::printf("materialized %zu views in %.1f ms\n", exts.size(),
              MillisSince(t_mat));
  for (const auto& [name, ext] : exts) {
    std::printf("   doc(%s): %d nodes\n", name.c_str(), ext.size());
  }

  // The incoming query stream (some cache-answerable, some not).
  const char* stream[] = {
      "IT-personnel//person/bonus[laptop]",
      "IT-personnel//person[name/Rick]/bonus[laptop]",
      "IT-personnel//person/bonus[pda]",
      "IT-personnel//person[name/Rick]/bonus[pda]",
      "IT-personnel//person/bonus[tablet]",
      "IT-personnel//person/name",
      "IT-personnel//person[name/Rick]/bonus",
      "IT-personnel//person/bonus[phone]",
  };

  int hits = 0, misses = 0;
  double cache_ms = 0, base_ms = 0, check_ms = 0;
  for (const char* text : stream) {
    const Pattern q = Tp(text);
    const auto t0 = std::chrono::steady_clock::now();
    const auto answer = cache.Answer(q, exts);
    const double elapsed = MillisSince(t0);
    if (answer.has_value()) {
      ++hits;
      cache_ms += elapsed;
      // Validate against the base document.
      double max_err = 0;
      for (const PidProb& pp : *answer) {
        const double direct =
            SelectionProbability(pd, q, pd.FindByPid(pp.pid));
        max_err = std::max(max_err, std::abs(direct - pp.prob));
      }
      std::printf("HIT   %-55s %3zu answers  %6.1f ms  err %.1e\n", text,
                  answer->size(), elapsed, max_err);
    } else {
      ++misses;
      check_ms += elapsed;
      const auto t1 = std::chrono::steady_clock::now();
      const auto direct = EvaluateTP(pd, q);
      const double base_elapsed = MillisSince(t1);
      base_ms += base_elapsed;
      std::printf("MISS  %-55s %3zu answers  %6.1f ms (base eval)\n", text,
                  direct.size(), base_elapsed);
    }
  }
  std::printf(
      "\n%d hits / %d misses; cache path %.1f ms total, base path %.1f ms "
      "total (+%.1f ms wasted rewrite checks)\n",
      hits, misses, cache_ms, base_ms, check_ms);
  return 0;
}
