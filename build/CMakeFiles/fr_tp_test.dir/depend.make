# Empty dependencies file for fr_tp_test.
# This may be replaced when dependencies are built.
