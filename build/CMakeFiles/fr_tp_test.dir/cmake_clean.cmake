file(REMOVE_RECURSE
  "CMakeFiles/fr_tp_test.dir/tests/fr_tp_test.cc.o"
  "CMakeFiles/fr_tp_test.dir/tests/fr_tp_test.cc.o.d"
  "fr_tp_test"
  "fr_tp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fr_tp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
