# Empty compiler generated dependencies file for tpi_test.
# This may be replaced when dependencies are built.
