file(REMOVE_RECURSE
  "CMakeFiles/tpi_test.dir/tests/tpi_test.cc.o"
  "CMakeFiles/tpi_test.dir/tests/tpi_test.cc.o.d"
  "tpi_test"
  "tpi_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
