file(REMOVE_RECURSE
  "libpxv_gen.a"
)
