file(REMOVE_RECURSE
  "CMakeFiles/pxv_gen.dir/src/gen/docgen.cc.o"
  "CMakeFiles/pxv_gen.dir/src/gen/docgen.cc.o.d"
  "CMakeFiles/pxv_gen.dir/src/gen/matching.cc.o"
  "CMakeFiles/pxv_gen.dir/src/gen/matching.cc.o.d"
  "CMakeFiles/pxv_gen.dir/src/gen/paper.cc.o"
  "CMakeFiles/pxv_gen.dir/src/gen/paper.cc.o.d"
  "CMakeFiles/pxv_gen.dir/src/gen/querygen.cc.o"
  "CMakeFiles/pxv_gen.dir/src/gen/querygen.cc.o.d"
  "libpxv_gen.a"
  "libpxv_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pxv_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
