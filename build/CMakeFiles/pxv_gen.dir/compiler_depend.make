# Empty compiler generated dependencies file for pxv_gen.
# This may be replaced when dependencies are built.
