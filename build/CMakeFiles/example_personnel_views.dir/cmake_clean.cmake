file(REMOVE_RECURSE
  "CMakeFiles/example_personnel_views.dir/examples/personnel_views.cpp.o"
  "CMakeFiles/example_personnel_views.dir/examples/personnel_views.cpp.o.d"
  "example_personnel_views"
  "example_personnel_views.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_personnel_views.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
