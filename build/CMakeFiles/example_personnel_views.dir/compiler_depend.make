# Empty compiler generated dependencies file for example_personnel_views.
# This may be replaced when dependencies are built.
