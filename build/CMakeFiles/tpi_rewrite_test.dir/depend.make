# Empty dependencies file for tpi_rewrite_test.
# This may be replaced when dependencies are built.
