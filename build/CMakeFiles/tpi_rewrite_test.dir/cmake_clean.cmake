file(REMOVE_RECURSE
  "CMakeFiles/tpi_rewrite_test.dir/tests/tpi_rewrite_test.cc.o"
  "CMakeFiles/tpi_rewrite_test.dir/tests/tpi_rewrite_test.cc.o.d"
  "tpi_rewrite_test"
  "tpi_rewrite_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpi_rewrite_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
