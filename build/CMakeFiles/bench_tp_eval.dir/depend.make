# Empty dependencies file for bench_tp_eval.
# This may be replaced when dependencies are built.
