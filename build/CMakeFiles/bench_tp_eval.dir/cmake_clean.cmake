file(REMOVE_RECURSE
  "CMakeFiles/bench_tp_eval.dir/bench/bench_tp_eval.cc.o"
  "CMakeFiles/bench_tp_eval.dir/bench/bench_tp_eval.cc.o.d"
  "bench_tp_eval"
  "bench_tp_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tp_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
