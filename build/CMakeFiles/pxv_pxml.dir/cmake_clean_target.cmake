file(REMOVE_RECURSE
  "libpxv_pxml.a"
)
