
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pxml/parser.cc" "CMakeFiles/pxv_pxml.dir/src/pxml/parser.cc.o" "gcc" "CMakeFiles/pxv_pxml.dir/src/pxml/parser.cc.o.d"
  "/root/repo/src/pxml/pdocument.cc" "CMakeFiles/pxv_pxml.dir/src/pxml/pdocument.cc.o" "gcc" "CMakeFiles/pxv_pxml.dir/src/pxml/pdocument.cc.o.d"
  "/root/repo/src/pxml/sampler.cc" "CMakeFiles/pxv_pxml.dir/src/pxml/sampler.cc.o" "gcc" "CMakeFiles/pxv_pxml.dir/src/pxml/sampler.cc.o.d"
  "/root/repo/src/pxml/view_extension.cc" "CMakeFiles/pxv_pxml.dir/src/pxml/view_extension.cc.o" "gcc" "CMakeFiles/pxv_pxml.dir/src/pxml/view_extension.cc.o.d"
  "/root/repo/src/pxml/worlds.cc" "CMakeFiles/pxv_pxml.dir/src/pxml/worlds.cc.o" "gcc" "CMakeFiles/pxv_pxml.dir/src/pxml/worlds.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/CMakeFiles/pxv_xml.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/pxv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
