file(REMOVE_RECURSE
  "CMakeFiles/pxv_pxml.dir/src/pxml/parser.cc.o"
  "CMakeFiles/pxv_pxml.dir/src/pxml/parser.cc.o.d"
  "CMakeFiles/pxv_pxml.dir/src/pxml/pdocument.cc.o"
  "CMakeFiles/pxv_pxml.dir/src/pxml/pdocument.cc.o.d"
  "CMakeFiles/pxv_pxml.dir/src/pxml/sampler.cc.o"
  "CMakeFiles/pxv_pxml.dir/src/pxml/sampler.cc.o.d"
  "CMakeFiles/pxv_pxml.dir/src/pxml/view_extension.cc.o"
  "CMakeFiles/pxv_pxml.dir/src/pxml/view_extension.cc.o.d"
  "CMakeFiles/pxv_pxml.dir/src/pxml/worlds.cc.o"
  "CMakeFiles/pxv_pxml.dir/src/pxml/worlds.cc.o.d"
  "libpxv_pxml.a"
  "libpxv_pxml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pxv_pxml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
