# Empty compiler generated dependencies file for pxv_pxml.
# This may be replaced when dependencies are built.
