# Empty compiler generated dependencies file for bench_tpi_system.
# This may be replaced when dependencies are built.
