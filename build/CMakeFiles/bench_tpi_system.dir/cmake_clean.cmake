file(REMOVE_RECURSE
  "CMakeFiles/bench_tpi_system.dir/bench/bench_tpi_system.cc.o"
  "CMakeFiles/bench_tpi_system.dir/bench/bench_tpi_system.cc.o.d"
  "bench_tpi_system"
  "bench_tpi_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tpi_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
