file(REMOVE_RECURSE
  "libpxv_prob.a"
)
