# Empty compiler generated dependencies file for pxv_prob.
# This may be replaced when dependencies are built.
