file(REMOVE_RECURSE
  "CMakeFiles/pxv_prob.dir/src/prob/appearance.cc.o"
  "CMakeFiles/pxv_prob.dir/src/prob/appearance.cc.o.d"
  "CMakeFiles/pxv_prob.dir/src/prob/engine.cc.o"
  "CMakeFiles/pxv_prob.dir/src/prob/engine.cc.o.d"
  "CMakeFiles/pxv_prob.dir/src/prob/naive.cc.o"
  "CMakeFiles/pxv_prob.dir/src/prob/naive.cc.o.d"
  "CMakeFiles/pxv_prob.dir/src/prob/query_eval.cc.o"
  "CMakeFiles/pxv_prob.dir/src/prob/query_eval.cc.o.d"
  "libpxv_prob.a"
  "libpxv_prob.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pxv_prob.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
