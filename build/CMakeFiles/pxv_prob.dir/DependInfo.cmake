
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/prob/appearance.cc" "CMakeFiles/pxv_prob.dir/src/prob/appearance.cc.o" "gcc" "CMakeFiles/pxv_prob.dir/src/prob/appearance.cc.o.d"
  "/root/repo/src/prob/engine.cc" "CMakeFiles/pxv_prob.dir/src/prob/engine.cc.o" "gcc" "CMakeFiles/pxv_prob.dir/src/prob/engine.cc.o.d"
  "/root/repo/src/prob/naive.cc" "CMakeFiles/pxv_prob.dir/src/prob/naive.cc.o" "gcc" "CMakeFiles/pxv_prob.dir/src/prob/naive.cc.o.d"
  "/root/repo/src/prob/query_eval.cc" "CMakeFiles/pxv_prob.dir/src/prob/query_eval.cc.o" "gcc" "CMakeFiles/pxv_prob.dir/src/prob/query_eval.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/CMakeFiles/pxv_pxml.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/pxv_tp.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/pxv_tpi.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/pxv_xml.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/pxv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
