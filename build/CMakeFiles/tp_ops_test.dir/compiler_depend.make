# Empty compiler generated dependencies file for tp_ops_test.
# This may be replaced when dependencies are built.
