file(REMOVE_RECURSE
  "CMakeFiles/tp_ops_test.dir/tests/tp_ops_test.cc.o"
  "CMakeFiles/tp_ops_test.dir/tests/tp_ops_test.cc.o.d"
  "tp_ops_test"
  "tp_ops_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tp_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
