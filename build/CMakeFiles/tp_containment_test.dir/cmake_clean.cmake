file(REMOVE_RECURSE
  "CMakeFiles/tp_containment_test.dir/tests/tp_containment_test.cc.o"
  "CMakeFiles/tp_containment_test.dir/tests/tp_containment_test.cc.o.d"
  "tp_containment_test"
  "tp_containment_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tp_containment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
