# Empty dependencies file for tp_containment_test.
# This may be replaced when dependencies are built.
