# Empty dependencies file for bench_interleaving.
# This may be replaced when dependencies are built.
