file(REMOVE_RECURSE
  "CMakeFiles/bench_interleaving.dir/bench/bench_interleaving.cc.o"
  "CMakeFiles/bench_interleaving.dir/bench/bench_interleaving.cc.o.d"
  "bench_interleaving"
  "bench_interleaving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_interleaving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
