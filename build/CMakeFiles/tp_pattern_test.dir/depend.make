# Empty dependencies file for tp_pattern_test.
# This may be replaced when dependencies are built.
