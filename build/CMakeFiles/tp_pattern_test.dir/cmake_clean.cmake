file(REMOVE_RECURSE
  "CMakeFiles/tp_pattern_test.dir/tests/tp_pattern_test.cc.o"
  "CMakeFiles/tp_pattern_test.dir/tests/tp_pattern_test.cc.o.d"
  "tp_pattern_test"
  "tp_pattern_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tp_pattern_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
