file(REMOVE_RECURSE
  "CMakeFiles/example_caching_pipeline.dir/examples/caching_pipeline.cpp.o"
  "CMakeFiles/example_caching_pipeline.dir/examples/caching_pipeline.cpp.o.d"
  "example_caching_pipeline"
  "example_caching_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_caching_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
