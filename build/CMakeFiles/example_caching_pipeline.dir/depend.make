# Empty dependencies file for example_caching_pipeline.
# This may be replaced when dependencies are built.
