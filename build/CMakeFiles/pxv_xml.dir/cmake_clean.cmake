file(REMOVE_RECURSE
  "CMakeFiles/pxv_xml.dir/src/xml/canonical.cc.o"
  "CMakeFiles/pxv_xml.dir/src/xml/canonical.cc.o.d"
  "CMakeFiles/pxv_xml.dir/src/xml/document.cc.o"
  "CMakeFiles/pxv_xml.dir/src/xml/document.cc.o.d"
  "CMakeFiles/pxv_xml.dir/src/xml/label.cc.o"
  "CMakeFiles/pxv_xml.dir/src/xml/label.cc.o.d"
  "CMakeFiles/pxv_xml.dir/src/xml/parser.cc.o"
  "CMakeFiles/pxv_xml.dir/src/xml/parser.cc.o.d"
  "libpxv_xml.a"
  "libpxv_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pxv_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
