file(REMOVE_RECURSE
  "libpxv_xml.a"
)
