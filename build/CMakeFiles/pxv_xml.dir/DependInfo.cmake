
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xml/canonical.cc" "CMakeFiles/pxv_xml.dir/src/xml/canonical.cc.o" "gcc" "CMakeFiles/pxv_xml.dir/src/xml/canonical.cc.o.d"
  "/root/repo/src/xml/document.cc" "CMakeFiles/pxv_xml.dir/src/xml/document.cc.o" "gcc" "CMakeFiles/pxv_xml.dir/src/xml/document.cc.o.d"
  "/root/repo/src/xml/label.cc" "CMakeFiles/pxv_xml.dir/src/xml/label.cc.o" "gcc" "CMakeFiles/pxv_xml.dir/src/xml/label.cc.o.d"
  "/root/repo/src/xml/parser.cc" "CMakeFiles/pxv_xml.dir/src/xml/parser.cc.o" "gcc" "CMakeFiles/pxv_xml.dir/src/xml/parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/CMakeFiles/pxv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
