# Empty dependencies file for pxv_xml.
# This may be replaced when dependencies are built.
