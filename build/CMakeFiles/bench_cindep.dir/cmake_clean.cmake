file(REMOVE_RECURSE
  "CMakeFiles/bench_cindep.dir/bench/bench_cindep.cc.o"
  "CMakeFiles/bench_cindep.dir/bench/bench_cindep.cc.o.d"
  "bench_cindep"
  "bench_cindep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cindep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
