# Empty dependencies file for bench_cindep.
# This may be replaced when dependencies are built.
