
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rewrite/cindependence.cc" "CMakeFiles/pxv_rewrite.dir/src/rewrite/cindependence.cc.o" "gcc" "CMakeFiles/pxv_rewrite.dir/src/rewrite/cindependence.cc.o.d"
  "/root/repo/src/rewrite/decomposition.cc" "CMakeFiles/pxv_rewrite.dir/src/rewrite/decomposition.cc.o" "gcc" "CMakeFiles/pxv_rewrite.dir/src/rewrite/decomposition.cc.o.d"
  "/root/repo/src/rewrite/fr_tp.cc" "CMakeFiles/pxv_rewrite.dir/src/rewrite/fr_tp.cc.o" "gcc" "CMakeFiles/pxv_rewrite.dir/src/rewrite/fr_tp.cc.o.d"
  "/root/repo/src/rewrite/rewriter.cc" "CMakeFiles/pxv_rewrite.dir/src/rewrite/rewriter.cc.o" "gcc" "CMakeFiles/pxv_rewrite.dir/src/rewrite/rewriter.cc.o.d"
  "/root/repo/src/rewrite/tp_rewrite.cc" "CMakeFiles/pxv_rewrite.dir/src/rewrite/tp_rewrite.cc.o" "gcc" "CMakeFiles/pxv_rewrite.dir/src/rewrite/tp_rewrite.cc.o.d"
  "/root/repo/src/rewrite/tpi_rewrite.cc" "CMakeFiles/pxv_rewrite.dir/src/rewrite/tpi_rewrite.cc.o" "gcc" "CMakeFiles/pxv_rewrite.dir/src/rewrite/tpi_rewrite.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/CMakeFiles/pxv_prob.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/pxv_linalg.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/pxv_pxml.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/pxv_tpi.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/pxv_tp.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/pxv_xml.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/pxv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
