# Empty compiler generated dependencies file for pxv_rewrite.
# This may be replaced when dependencies are built.
