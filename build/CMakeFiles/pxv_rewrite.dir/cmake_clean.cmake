file(REMOVE_RECURSE
  "CMakeFiles/pxv_rewrite.dir/src/rewrite/cindependence.cc.o"
  "CMakeFiles/pxv_rewrite.dir/src/rewrite/cindependence.cc.o.d"
  "CMakeFiles/pxv_rewrite.dir/src/rewrite/decomposition.cc.o"
  "CMakeFiles/pxv_rewrite.dir/src/rewrite/decomposition.cc.o.d"
  "CMakeFiles/pxv_rewrite.dir/src/rewrite/fr_tp.cc.o"
  "CMakeFiles/pxv_rewrite.dir/src/rewrite/fr_tp.cc.o.d"
  "CMakeFiles/pxv_rewrite.dir/src/rewrite/rewriter.cc.o"
  "CMakeFiles/pxv_rewrite.dir/src/rewrite/rewriter.cc.o.d"
  "CMakeFiles/pxv_rewrite.dir/src/rewrite/tp_rewrite.cc.o"
  "CMakeFiles/pxv_rewrite.dir/src/rewrite/tp_rewrite.cc.o.d"
  "CMakeFiles/pxv_rewrite.dir/src/rewrite/tpi_rewrite.cc.o"
  "CMakeFiles/pxv_rewrite.dir/src/rewrite/tpi_rewrite.cc.o.d"
  "libpxv_rewrite.a"
  "libpxv_rewrite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pxv_rewrite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
