file(REMOVE_RECURSE
  "libpxv_rewrite.a"
)
