file(REMOVE_RECURSE
  "CMakeFiles/example_multi_view_intersection.dir/examples/multi_view_intersection.cpp.o"
  "CMakeFiles/example_multi_view_intersection.dir/examples/multi_view_intersection.cpp.o.d"
  "example_multi_view_intersection"
  "example_multi_view_intersection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_multi_view_intersection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
