# Empty dependencies file for example_multi_view_intersection.
# This may be replaced when dependencies are built.
