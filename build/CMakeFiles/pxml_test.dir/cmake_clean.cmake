file(REMOVE_RECURSE
  "CMakeFiles/pxml_test.dir/tests/pxml_test.cc.o"
  "CMakeFiles/pxml_test.dir/tests/pxml_test.cc.o.d"
  "pxml_test"
  "pxml_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pxml_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
