# Empty dependencies file for pxml_test.
# This may be replaced when dependencies are built.
