file(REMOVE_RECURSE
  "CMakeFiles/bench_tprewrite.dir/bench/bench_tprewrite.cc.o"
  "CMakeFiles/bench_tprewrite.dir/bench/bench_tprewrite.cc.o.d"
  "bench_tprewrite"
  "bench_tprewrite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tprewrite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
