# Empty dependencies file for bench_tprewrite.
# This may be replaced when dependencies are built.
