file(REMOVE_RECURSE
  "CMakeFiles/bench_fr_eval.dir/bench/bench_fr_eval.cc.o"
  "CMakeFiles/bench_fr_eval.dir/bench/bench_fr_eval.cc.o.d"
  "bench_fr_eval"
  "bench_fr_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fr_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
