# Empty dependencies file for bench_fr_eval.
# This may be replaced when dependencies are built.
