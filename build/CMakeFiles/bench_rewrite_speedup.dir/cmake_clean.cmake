file(REMOVE_RECURSE
  "CMakeFiles/bench_rewrite_speedup.dir/bench/bench_rewrite_speedup.cc.o"
  "CMakeFiles/bench_rewrite_speedup.dir/bench/bench_rewrite_speedup.cc.o.d"
  "bench_rewrite_speedup"
  "bench_rewrite_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rewrite_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
