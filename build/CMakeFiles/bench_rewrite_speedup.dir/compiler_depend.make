# Empty compiler generated dependencies file for bench_rewrite_speedup.
# This may be replaced when dependencies are built.
