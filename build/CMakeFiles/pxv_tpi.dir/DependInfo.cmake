
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tpi/equivalence.cc" "CMakeFiles/pxv_tpi.dir/src/tpi/equivalence.cc.o" "gcc" "CMakeFiles/pxv_tpi.dir/src/tpi/equivalence.cc.o.d"
  "/root/repo/src/tpi/eval.cc" "CMakeFiles/pxv_tpi.dir/src/tpi/eval.cc.o" "gcc" "CMakeFiles/pxv_tpi.dir/src/tpi/eval.cc.o.d"
  "/root/repo/src/tpi/interleaving.cc" "CMakeFiles/pxv_tpi.dir/src/tpi/interleaving.cc.o" "gcc" "CMakeFiles/pxv_tpi.dir/src/tpi/interleaving.cc.o.d"
  "/root/repo/src/tpi/intersection.cc" "CMakeFiles/pxv_tpi.dir/src/tpi/intersection.cc.o" "gcc" "CMakeFiles/pxv_tpi.dir/src/tpi/intersection.cc.o.d"
  "/root/repo/src/tpi/skeleton.cc" "CMakeFiles/pxv_tpi.dir/src/tpi/skeleton.cc.o" "gcc" "CMakeFiles/pxv_tpi.dir/src/tpi/skeleton.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/CMakeFiles/pxv_tp.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/pxv_xml.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/pxv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
