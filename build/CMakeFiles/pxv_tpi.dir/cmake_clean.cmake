file(REMOVE_RECURSE
  "CMakeFiles/pxv_tpi.dir/src/tpi/equivalence.cc.o"
  "CMakeFiles/pxv_tpi.dir/src/tpi/equivalence.cc.o.d"
  "CMakeFiles/pxv_tpi.dir/src/tpi/eval.cc.o"
  "CMakeFiles/pxv_tpi.dir/src/tpi/eval.cc.o.d"
  "CMakeFiles/pxv_tpi.dir/src/tpi/interleaving.cc.o"
  "CMakeFiles/pxv_tpi.dir/src/tpi/interleaving.cc.o.d"
  "CMakeFiles/pxv_tpi.dir/src/tpi/intersection.cc.o"
  "CMakeFiles/pxv_tpi.dir/src/tpi/intersection.cc.o.d"
  "CMakeFiles/pxv_tpi.dir/src/tpi/skeleton.cc.o"
  "CMakeFiles/pxv_tpi.dir/src/tpi/skeleton.cc.o.d"
  "libpxv_tpi.a"
  "libpxv_tpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pxv_tpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
