# Empty compiler generated dependencies file for pxv_tpi.
# This may be replaced when dependencies are built.
