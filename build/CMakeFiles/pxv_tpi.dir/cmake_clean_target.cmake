file(REMOVE_RECURSE
  "libpxv_tpi.a"
)
