# Empty compiler generated dependencies file for pxv_linalg.
# This may be replaced when dependencies are built.
