file(REMOVE_RECURSE
  "libpxv_linalg.a"
)
