file(REMOVE_RECURSE
  "CMakeFiles/pxv_linalg.dir/src/linalg/matrix.cc.o"
  "CMakeFiles/pxv_linalg.dir/src/linalg/matrix.cc.o.d"
  "CMakeFiles/pxv_linalg.dir/src/linalg/rational.cc.o"
  "CMakeFiles/pxv_linalg.dir/src/linalg/rational.cc.o.d"
  "CMakeFiles/pxv_linalg.dir/src/linalg/solver.cc.o"
  "CMakeFiles/pxv_linalg.dir/src/linalg/solver.cc.o.d"
  "libpxv_linalg.a"
  "libpxv_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pxv_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
