
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linalg/matrix.cc" "CMakeFiles/pxv_linalg.dir/src/linalg/matrix.cc.o" "gcc" "CMakeFiles/pxv_linalg.dir/src/linalg/matrix.cc.o.d"
  "/root/repo/src/linalg/rational.cc" "CMakeFiles/pxv_linalg.dir/src/linalg/rational.cc.o" "gcc" "CMakeFiles/pxv_linalg.dir/src/linalg/rational.cc.o.d"
  "/root/repo/src/linalg/solver.cc" "CMakeFiles/pxv_linalg.dir/src/linalg/solver.cc.o" "gcc" "CMakeFiles/pxv_linalg.dir/src/linalg/solver.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/CMakeFiles/pxv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
