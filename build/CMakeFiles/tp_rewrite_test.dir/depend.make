# Empty dependencies file for tp_rewrite_test.
# This may be replaced when dependencies are built.
