file(REMOVE_RECURSE
  "CMakeFiles/tp_rewrite_test.dir/tests/tp_rewrite_test.cc.o"
  "CMakeFiles/tp_rewrite_test.dir/tests/tp_rewrite_test.cc.o.d"
  "tp_rewrite_test"
  "tp_rewrite_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tp_rewrite_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
