file(REMOVE_RECURSE
  "CMakeFiles/prob_eval_test.dir/tests/prob_eval_test.cc.o"
  "CMakeFiles/prob_eval_test.dir/tests/prob_eval_test.cc.o.d"
  "prob_eval_test"
  "prob_eval_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prob_eval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
