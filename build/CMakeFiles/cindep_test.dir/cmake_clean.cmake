file(REMOVE_RECURSE
  "CMakeFiles/cindep_test.dir/tests/cindep_test.cc.o"
  "CMakeFiles/cindep_test.dir/tests/cindep_test.cc.o.d"
  "cindep_test"
  "cindep_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cindep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
