# Empty dependencies file for cindep_test.
# This may be replaced when dependencies are built.
