file(REMOVE_RECURSE
  "CMakeFiles/view_extension_test.dir/tests/view_extension_test.cc.o"
  "CMakeFiles/view_extension_test.dir/tests/view_extension_test.cc.o.d"
  "view_extension_test"
  "view_extension_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/view_extension_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
