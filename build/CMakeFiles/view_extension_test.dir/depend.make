# Empty dependencies file for view_extension_test.
# This may be replaced when dependencies are built.
