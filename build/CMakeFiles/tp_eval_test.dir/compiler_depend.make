# Empty compiler generated dependencies file for tp_eval_test.
# This may be replaced when dependencies are built.
