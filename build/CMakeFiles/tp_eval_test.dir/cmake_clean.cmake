file(REMOVE_RECURSE
  "CMakeFiles/tp_eval_test.dir/tests/tp_eval_test.cc.o"
  "CMakeFiles/tp_eval_test.dir/tests/tp_eval_test.cc.o.d"
  "tp_eval_test"
  "tp_eval_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tp_eval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
