file(REMOVE_RECURSE
  "libpxv_util.a"
)
