file(REMOVE_RECURSE
  "CMakeFiles/pxv_util.dir/src/util/random.cc.o"
  "CMakeFiles/pxv_util.dir/src/util/random.cc.o.d"
  "CMakeFiles/pxv_util.dir/src/util/strings.cc.o"
  "CMakeFiles/pxv_util.dir/src/util/strings.cc.o.d"
  "libpxv_util.a"
  "libpxv_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pxv_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
