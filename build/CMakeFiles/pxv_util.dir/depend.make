# Empty dependencies file for pxv_util.
# This may be replaced when dependencies are built.
