file(REMOVE_RECURSE
  "CMakeFiles/decomposition_test.dir/tests/decomposition_test.cc.o"
  "CMakeFiles/decomposition_test.dir/tests/decomposition_test.cc.o.d"
  "decomposition_test"
  "decomposition_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decomposition_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
