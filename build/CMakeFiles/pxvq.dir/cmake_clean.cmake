file(REMOVE_RECURSE
  "CMakeFiles/pxvq.dir/tools/pxvq.cc.o"
  "CMakeFiles/pxvq.dir/tools/pxvq.cc.o.d"
  "pxvq"
  "pxvq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pxvq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
