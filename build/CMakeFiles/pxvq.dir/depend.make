# Empty dependencies file for pxvq.
# This may be replaced when dependencies are built.
