
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tp/containment.cc" "CMakeFiles/pxv_tp.dir/src/tp/containment.cc.o" "gcc" "CMakeFiles/pxv_tp.dir/src/tp/containment.cc.o.d"
  "/root/repo/src/tp/eval.cc" "CMakeFiles/pxv_tp.dir/src/tp/eval.cc.o" "gcc" "CMakeFiles/pxv_tp.dir/src/tp/eval.cc.o.d"
  "/root/repo/src/tp/minimize.cc" "CMakeFiles/pxv_tp.dir/src/tp/minimize.cc.o" "gcc" "CMakeFiles/pxv_tp.dir/src/tp/minimize.cc.o.d"
  "/root/repo/src/tp/ops.cc" "CMakeFiles/pxv_tp.dir/src/tp/ops.cc.o" "gcc" "CMakeFiles/pxv_tp.dir/src/tp/ops.cc.o.d"
  "/root/repo/src/tp/parser.cc" "CMakeFiles/pxv_tp.dir/src/tp/parser.cc.o" "gcc" "CMakeFiles/pxv_tp.dir/src/tp/parser.cc.o.d"
  "/root/repo/src/tp/pattern.cc" "CMakeFiles/pxv_tp.dir/src/tp/pattern.cc.o" "gcc" "CMakeFiles/pxv_tp.dir/src/tp/pattern.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/CMakeFiles/pxv_xml.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/pxv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
