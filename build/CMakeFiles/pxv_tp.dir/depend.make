# Empty dependencies file for pxv_tp.
# This may be replaced when dependencies are built.
