file(REMOVE_RECURSE
  "CMakeFiles/pxv_tp.dir/src/tp/containment.cc.o"
  "CMakeFiles/pxv_tp.dir/src/tp/containment.cc.o.d"
  "CMakeFiles/pxv_tp.dir/src/tp/eval.cc.o"
  "CMakeFiles/pxv_tp.dir/src/tp/eval.cc.o.d"
  "CMakeFiles/pxv_tp.dir/src/tp/minimize.cc.o"
  "CMakeFiles/pxv_tp.dir/src/tp/minimize.cc.o.d"
  "CMakeFiles/pxv_tp.dir/src/tp/ops.cc.o"
  "CMakeFiles/pxv_tp.dir/src/tp/ops.cc.o.d"
  "CMakeFiles/pxv_tp.dir/src/tp/parser.cc.o"
  "CMakeFiles/pxv_tp.dir/src/tp/parser.cc.o.d"
  "CMakeFiles/pxv_tp.dir/src/tp/pattern.cc.o"
  "CMakeFiles/pxv_tp.dir/src/tp/pattern.cc.o.d"
  "libpxv_tp.a"
  "libpxv_tp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pxv_tp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
