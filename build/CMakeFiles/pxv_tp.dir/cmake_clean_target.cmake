file(REMOVE_RECURSE
  "libpxv_tp.a"
)
