// Probabilistic TP∩-rewritings (paper §5) — the persistent-Id case, where a
// rewriting intersects several (possibly compensated) view extensions by
// node identity.
//
//   Thm. 3   pairwise c-independent views whose intersection rewrites q,
//            with some v_i ⊒ mb(q) (Lemma 3): the product formula
//            f_r(n) = Π Pr(n ∈ v_i(P)) ÷ Pr(n ∈ P)^{m−1}.
//   Thm. 4   selecting such a subset is NP-hard (k-dimensional perfect
//            matching) — FindPairwiseIndependentSubset is exponential by
//            necessity; see bench/bench_matching.cc.
//   §5.3     general case: the S(q,V) system over view decompositions.
//   §5.4     compensated views: V → V′ (all comp(v, q_(a))) → V″ (those
//            whose result probabilities are computable from the original
//            extensions via the §4 machinery); algorithm TPIrewrite (Fig. 7).

#ifndef PXV_REWRITE_TPI_REWRITE_H_
#define PXV_REWRITE_TPI_REWRITE_H_

#include <optional>
#include <string>
#include <vector>

#include "linalg/rational.h"
#include "pxml/view_extension.h"
#include "rewrite/decomposition.h"
#include "rewrite/fr_tp.h"
#include "rewrite/tp_rewrite.h"

namespace pxv {

/// One member of the canonical plan ⋂ doc(v_i)/v_i.
struct TpiMember {
  std::string view_name;  ///< The original view whose extension is accessed.
  Pattern def;            ///< Unfolded definition over the original document.
  Pattern plan;           ///< Pattern over the extension document.
  bool compensated = false;
  int comp_depth = 0;  ///< a — the q-depth of the compensation (if any).
  /// §4 machinery for computing the compensated member's result
  /// probabilities from the original extension (valid iff `computable`).
  TpRewriting section4;
  bool computable = false;  ///< Member of V″.
};

/// A probabilistic TP∩-rewriting: canonical plan + f_r coefficients.
struct TpiRewriting {
  std::vector<TpiMember> members;
  /// f_r exponents, one per member of V″ (aligned with `computable_index`).
  std::vector<Rational> coefficients;
  std::vector<int> computable_index;  ///< Indices into `members`.
  ViewDecomposition decomposition;    ///< For inspection / reporting.
};

/// Algorithm TPIrewrite (Fig. 7). Returns the rewriting, or nullopt when no
/// probabilistic TP∩-rewriting is found (sound; complete unless mb(q) is
/// /-only, per Prop. 6).
std::optional<TpiRewriting> TPIrewrite(const Pattern& q,
                                       const std::vector<NamedView>& views);

/// Theorem 3 search: indices of a subset of pairwise c-independent views
/// whose intersection deterministically rewrites q, containing a view with
/// mb(q) ⊑ v_i. Exponential subset search (NP-hard per Theorem 4); subsets
/// up to `max_subset` members are explored.
std::optional<std::vector<int>> FindPairwiseIndependentSubset(
    const Pattern& q, const std::vector<NamedView>& views, int max_subset = 8);

/// Why-provenance of a TP∩ answer (§7): the per-view probability factors
/// and rational exponents that produced the value.
struct TpiProvenance {
  PersistentId pid = kNullPid;
  struct Factor {
    std::string member;      ///< View (or compensated-view) description.
    double value = 0;        ///< Pr(n ∈ v_i(P)) read from the extension.
    Rational exponent;       ///< The S(q,V) combination coefficient.
  };
  std::vector<Factor> factors;
  double value = 0;
  std::string ToString() const;
};

/// Executes a TP∩-rewriting over the extensions of the *original* views:
/// deterministic retrieval by pid-intersection, probabilities by the
/// coefficient product. Extensions must contain every member's view_name.
/// When `provenance` is non-null, one entry per answer is appended.
std::vector<PidProb> ExecuteTpiRewriting(
    const TpiRewriting& rw, const ExtensionSet& exts,
    std::vector<TpiProvenance>* provenance = nullptr);

/// Executes the Theorem 3 product formula directly for a pairwise
/// c-independent subset; `lemma3_index` names the member with mb(q) ⊑ v.
std::vector<PidProb> ExecuteProductRewriting(
    const std::vector<NamedView>& views, const std::vector<int>& subset,
    int lemma3_index, const ExtensionSet& exts);

}  // namespace pxv

#endif  // PXV_REWRITE_TPI_REWRITE_H_
