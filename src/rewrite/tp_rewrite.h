// Probabilistic TP-rewritings (paper §4) — the copy-semantics case, where a
// rewriting may navigate inside a single view extension.
//
//   Fact 1  (Xu–Özsoyoglu / Afrati et al.): a deterministic TP-rewriting of
//           q using v exists iff comp(v, q_(k)) ≡ q for k = |mb(v)|.
//   Def. 5  a rewriting is *restricted* iff mb(v) or the compensation's main
//           branch is //-free.
//   Prop. 3 a probabilistic rewriting additionally requires v' ⊥ q''.
//   Thm. 1  restricted: (q_r, f_r) exists iff v' ⊥ q''; f_r is a single
//           division.
//   Thm. 2  unrestricted: additionally the first u−1 nodes of v's last token
//           must carry no predicates, u = max prefix-suffix of the token's
//           label sequence; f_r is inclusion–exclusion over ancestor events.
//   Fig. 6  TPrewrite: sound and complete, PTime (Prop. 4).

#ifndef PXV_REWRITE_TP_REWRITE_H_
#define PXV_REWRITE_TP_REWRITE_H_

#include <string>
#include <vector>

#include "tp/pattern.h"

namespace pxv {

/// A named view definition.
struct NamedView {
  std::string name;
  Pattern def;
};

/// One probabilistic TP-rewriting candidate, with everything the executor
/// (rewrite/fr_tp.h) needs precomputed.
struct TpRewriting {
  std::string view_name;
  Pattern view;          ///< v
  int k = 0;             ///< |mb(v)|
  Pattern compensation;  ///< q_(k)
  Pattern plan;          ///< comp(doc(v)/lbl(v), q_(k)) — over the extension
  bool restricted = false;
  int u = 0;             ///< prefix-suffix size of v's last token
  Pattern v_prime;       ///< v' — v without out-predicates
  Pattern v_out_preds;   ///< v_(k) = l_m[Q_m] — out(v) with its predicates
  Pattern last_token;    ///< t — last token of v
};

/// Fact 1: true iff comp(v, q_(k)) ≡ q (deterministic rewriting exists).
bool HasDeterministicTpRewriting(const Pattern& q, const Pattern& v);

/// Builds the extension-side plan comp(doc(v)/lbl(v), compensation).
Pattern ExtensionPlan(const std::string& view_name, const Pattern& v,
                      const Pattern& compensation);

/// Algorithm TPrewrite (Fig. 6): every view of V that supports a
/// probabilistic TP-rewriting of q, with the rewriting assembled.
std::vector<TpRewriting> TPrewrite(const Pattern& q,
                                   const std::vector<NamedView>& views);

}  // namespace pxv

#endif  // PXV_REWRITE_TP_REWRITE_H_
