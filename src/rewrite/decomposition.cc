#include "rewrite/decomposition.h"

#include <algorithm>

#include "linalg/solver.h"
#include "rewrite/cindependence.h"
#include "tp/containment.h"
#include "tp/minimize.h"
#include "tp/ops.h"
#include "tpi/interleaving.h"
#include "util/check.h"

namespace pxv {
namespace {

// v with only the predicates of main-branch node `keep` (kNullPNode keeps
// none; `keep_middle` keeps the predicates of all the middle-token nodes).
Pattern MbWithPredicatesOf(const Pattern& v, PNodeId keep, bool keep_middle) {
  const auto mb = v.MainBranch();
  const auto tokens = TokenMbNodes(v);
  // Middle-token membership.
  std::vector<bool> middle(v.size(), false);
  for (size_t t = 1; t + 1 < tokens.size(); ++t) {
    for (PNodeId n : tokens[t]) middle[n] = true;
  }
  Pattern out;
  PNodeId prev = kNullPNode;
  for (PNodeId n : mb) {
    prev = (prev == kNullPNode) ? out.AddRoot(v.label(n))
                                : out.AddChild(prev, v.label(n), v.axis(n));
    const bool keep_here = (n == keep) || (keep_middle && middle[n]);
    if (keep_here) {
      for (PNodeId p : v.PredicateChildren(n)) {
        GraftSubtree(v, p, &out, prev, v.axis(p));
      }
    }
  }
  out.SetOut(prev);
  return out;
}

bool HasAnyPredicate(const Pattern& p) {
  for (PNodeId n = 0; n < p.size(); ++n) {
    if (!p.PredicateChildren(n).empty() && p.OnMainBranch(n)) return true;
    if (!p.OnMainBranch(n)) return true;
  }
  return false;
}

// Step 3: w ∩ mb(q), reduced back to a single TP. The intersection is
// equivalent to the union of its interleavings; it reduces to a TP when one
// interleaving contains all others.
std::optional<Pattern> IntersectWithMbQ(const Pattern& w,
                                        const Pattern& mb_q) {
  TpIntersection in({w.Clone(), mb_q.Clone()});
  StatusOr<std::vector<Pattern>> inter = Interleavings(in, /*limit=*/20000);
  if (!inter.ok() || inter->empty()) return std::nullopt;
  if (inter->size() == 1) return Minimize((*inter)[0]);
  for (const Pattern& candidate : *inter) {
    bool dominates = true;
    for (const Pattern& other : *inter) {
      if (!Contains(candidate, other)) {
        dominates = false;
        break;
      }
    }
    if (dominates) return Minimize(candidate);
  }
  return std::nullopt;
}

}  // namespace

StatusOr<std::vector<Pattern>> DecomposeOne(const Pattern& v,
                                            const Pattern& q) {
  const Pattern mb_q = MainBranchOnly(q);
  const auto tokens = TokenMbNodes(v);

  // Step 1: per-node queries for first and last token; bulk middle query.
  std::vector<Pattern> ws;
  std::vector<PNodeId> edge_nodes = tokens.front();
  if (tokens.size() > 1) {
    for (PNodeId n : tokens.back()) edge_nodes.push_back(n);
  }
  for (PNodeId n : edge_nodes) {
    if (v.PredicateChildren(n).empty()) continue;  // Trivial — carries nothing.
    ws.push_back(MbWithPredicatesOf(v, n, /*keep_middle=*/false));
  }
  if (tokens.size() > 2) {
    Pattern mid = MbWithPredicatesOf(v, kNullPNode, /*keep_middle=*/true);
    if (HasAnyPredicate(mid)) ws.push_back(std::move(mid));
  }

  // Step 2: merge c-dependent pairs (union-free: identical main branches).
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < ws.size() && !changed; ++i) {
      for (size_t j = i + 1; j < ws.size() && !changed; ++j) {
        if (!CIndependent(ws[i], ws[j])) {
          TpIntersection pair({ws[i].Clone(), ws[j].Clone()});
          Pattern merged = UnionFreeMerge(pair);
          ws.erase(ws.begin() + j);
          ws[i] = std::move(merged);
          changed = true;
        }
      }
    }
  }

  // Step 3: intersect with mb(q); drop patterns that reduce to the trivial
  // (predicate-free) query — they hold with probability 1 given n ∈ P for
  // every candidate answer.
  std::vector<Pattern> out;
  for (const Pattern& w : ws) {
    std::optional<Pattern> reduced = IntersectWithMbQ(w, mb_q);
    if (!reduced.has_value()) {
      return Status::Error("Step-3 reduction did not yield a single TP");
    }
    if (!HasAnyPredicate(*reduced)) continue;  // Trivial.
    out.push_back(std::move(*reduced));
  }
  return out;
}

ViewDecomposition DecomposeViews(const Pattern& q,
                                 const std::vector<Pattern>& views) {
  ViewDecomposition dec;
  auto classify = [&](const Pattern& w) -> int {
    for (size_t c = 0; c < dec.dviews.size(); ++c) {
      if (IsomorphicPatterns(dec.dviews[c], w) || Equivalent(dec.dviews[c], w)) {
        return static_cast<int>(c);
      }
    }
    dec.dviews.push_back(w.Clone());
    return static_cast<int>(dec.dviews.size()) - 1;
  };
  auto decompose = [&](const Pattern& v) -> std::optional<std::vector<int>> {
    StatusOr<std::vector<Pattern>> ws = DecomposeOne(v, q);
    if (!ws.ok()) return std::nullopt;
    std::vector<int> classes;
    for (const Pattern& w : *ws) {
      const int c = classify(w);
      bool seen = false;
      for (int existing : classes) seen |= (existing == c);
      if (!seen) classes.push_back(c);
    }
    std::sort(classes.begin(), classes.end());
    return classes;
  };

  for (const Pattern& v : views) {
    std::optional<std::vector<int>> classes = decompose(v);
    if (!classes.has_value()) {
      dec.ok = false;
      return dec;
    }
    dec.view_classes.push_back(std::move(*classes));
  }
  std::optional<std::vector<int>> qc = decompose(q);
  if (!qc.has_value()) {
    dec.ok = false;
    return dec;
  }
  dec.query_classes = std::move(*qc);
  return dec;
}

std::optional<std::vector<Rational>> SolveSystem(const ViewDecomposition& dec) {
  if (!dec.ok) return std::nullopt;
  const int vars = 1 + static_cast<int>(dec.dviews.size());  // y_P + classes.
  std::vector<std::vector<Rational>> rows;
  rows.reserve(dec.view_classes.size());
  for (const auto& classes : dec.view_classes) {
    std::vector<Rational> row(vars, Rational(0));
    row[0] = Rational(1);
    for (int c : classes) row[1 + c] = Rational(1);
    rows.push_back(std::move(row));
  }
  std::vector<Rational> target(vars, Rational(0));
  target[0] = Rational(1);
  for (int c : dec.query_classes) target[1 + c] = Rational(1);
  return ExpressInRowSpace(rows, target);
}

}  // namespace pxv
