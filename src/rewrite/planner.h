// Cost-based answer planning. CompileQuery runs the expensive rewriting
// searches of §4 and §5 *once* — every probabilistic TP-rewriting plus the
// TP∩-rewriting become AnswerPlan candidates — and the result is a reusable
// QueryPlan that serving layers cache by the query's canonical fingerprint.
// ExecuteQueryPlan then picks, per call, the cheapest candidate that is
// actually executable over the materialized extensions at hand, falling
// through to the next candidate instead of crashing when a view extension
// is missing.
//
// The cost model (EstimateCost) is deliberately coarse — it only has to
// rank candidates, not predict wall time:
//   TP plan   cost = |plan pattern| × |extension nodes|
//                    × (restricted f_r ? 1 : 2^min(candidates, 10))
//     — Theorem 1 plans are a single division per answer; Theorem 2 plans
//       pay inclusion–exclusion over ancestor events, exponential in the
//       worst case, so unrestricted f_r is penalized by the number of
//       extension result roots (the upper bound on selected ancestors).
//   TP∩ plan  cost = Σ_members |member plan| × |member extension nodes|,
//       plus the TP cost of each compensated member's §4 machinery
//     — every member is one pid-retrieval scan; compensated members in V″
//       additionally run ExecuteTpRewriting against their extension.

#ifndef PXV_REWRITE_PLANNER_H_
#define PXV_REWRITE_PLANNER_H_

#include <optional>
#include <string>
#include <vector>

#include "pxml/view_extension.h"
#include "rewrite/fr_tp.h"
#include "rewrite/tp_rewrite.h"
#include "rewrite/tpi_rewrite.h"
#include "tp/pattern.h"

namespace pxv {

/// One way to answer the query from extensions: a §4 TP-rewriting over a
/// single extension, or the §5 TP∩-rewriting over several.
struct AnswerPlan {
  enum class Kind { kTp, kTpi };
  Kind kind = Kind::kTp;

  TpRewriting tp;   ///< Valid iff kind == kTp.
  TpiRewriting tpi; ///< Valid iff kind == kTpi.

  /// Names of the view extensions the plan reads. The plan is executable
  /// against an extension set iff all of them are present.
  std::vector<std::string> required_views;

  /// One-line description for logs and tools.
  std::string DebugString() const;
};

/// The compiled, cacheable form of a query: every answer candidate found by
/// the §4/§5 searches, in discovery order (all TP rewritings, then TP∩).
struct QueryPlan {
  uint64_t fingerprint = 0;      ///< Pattern::Fingerprint() of the query.
  std::string canonical;         ///< Pattern canonical string (cache key).
  std::vector<AnswerPlan> candidates;

  /// True iff some rewriting exists at all (independent of materialization).
  bool answerable() const { return !candidates.empty(); }
};

struct CompileOptions {
  bool tp = true;   ///< Run the §4 TPrewrite search.
  bool tpi = true;  ///< Run the §5 TPIrewrite search (worst-case exponential
                    ///< in the registry size — Theorem 4).
};

/// Runs TPrewrite and TPIrewrite once and assembles the candidate list.
/// This is the expensive call the plan cache amortizes. Callers that cannot
/// amortize (one-shot answering) can stage the searches via `options` —
/// see Rewriter::Answer, which only pays for TPIrewrite when no TP
/// candidate is executable.
QueryPlan CompileQuery(const Pattern& q, const std::vector<NamedView>& views,
                       const CompileOptions& options = {});

/// Estimated execution cost of `plan` over `exts`; nullopt when a required
/// extension is missing (the plan is not executable right now). Extensions
/// are read through the ExtensionSet seam (pxml/view_extension.h), so owned
/// sets and shared snapshots both serve.
std::optional<double> EstimateCost(const AnswerPlan& plan,
                                   const ExtensionSet& exts);

/// Index of the cheapest executable candidate, or -1 when none is.
int SelectPlan(const QueryPlan& plan, const ExtensionSet& exts);

/// Executes the cheapest executable candidate. Returns nullopt when the
/// query has no rewriting *or* none of its candidates can run over `exts`
/// (never crashes on a missing extension). `chosen`, when non-null,
/// receives the executed candidate's index (-1 on nullopt).
std::optional<std::vector<PidProb>> ExecuteQueryPlan(
    const QueryPlan& plan, const ExtensionSet& exts, int* chosen = nullptr);

}  // namespace pxv

#endif  // PXV_REWRITE_PLANNER_H_
