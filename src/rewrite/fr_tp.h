// Execution of probabilistic TP-rewritings: the probability function f_r of
// Definition 4, computed **from the view extension only** (it never sees the
// original p-document).
//
//   Theorem 1 (restricted plans / unique ancestor):
//       Pr(n ∈ q(P)) = Pr(n ∈ q_r(P_v)) ÷ Pr(n_a ∈ v_(k)(P^{n_a}_v)).
//   Lemma 1 + Theorem 2 (unrestricted): inclusion–exclusion over the events
//       e_i = [n_i ∈ v'(P) ∧ n ∈ q_(k)(P^{n_i}_v)] for the ancestors-or-self
//       n_1 … n_a of n selected by v; joint events are computed with the
//       α patterns built from v's last token and the Id(n_j) markers, with
//       the s(i,j) truncation when images of the last token overlap
//       (prefix-suffix case u ≥ 1).

#ifndef PXV_REWRITE_FR_TP_H_
#define PXV_REWRITE_FR_TP_H_

#include <string>
#include <vector>

#include "pxml/pdocument.h"
#include "rewrite/tp_rewrite.h"

namespace pxv {

/// One answer of a probabilistic rewriting: an original-document node
/// identified by its persistent id, with Pr(n ∈ q(P)).
struct PidProb {
  PersistentId pid = kNullPid;
  double prob = 0;
};

/// Why-provenance of one f_r value — the paper's §7 closing suggestion
/// ("keeping and exploiting for rewritings a sort of why-provenance of
/// probability values"). Records every term that entered the computation so
/// a cached answer can be re-derived, audited, or incrementally updated when
/// a view's probabilities change.
struct FrProvenance {
  PersistentId pid = kNullPid;
  /// False: Theorem 1 path (one division). True: Lemma 1 path.
  bool inclusion_exclusion = false;

  /// Theorem 1 path: value = plan_probability / out_predicate_mass.
  double plan_probability = 0;   ///< Pr(n ∈ q_r(P_v)).
  double out_predicate_mass = 0; ///< Pr(n_a ∈ v_(k)(P^{n_a}_v)).

  /// Lemma 1 path: one term per nonempty ancestor subset.
  struct EventTerm {
    std::vector<PersistentId> chain;  ///< Ancestor pids, topmost first.
    int sign = 1;                     ///< +1 for odd subsets, −1 for even.
    double beta = 0;       ///< Pr(n_{i1} ∈ v(P)) — the extension edge.
    double out_preds = 0;  ///< Divisor Pr(n_{i1} ∈ l_m[Q_m](P^{n_{i1}}_v)).
    double alpha = 0;      ///< Pr(n ∈ α(P^{n_{i1}}_v)).
    double joint = 0;      ///< (beta / out_preds) × alpha.
  };
  std::vector<EventTerm> terms;

  double value = 0;  ///< The resulting Pr(n ∈ q(P)).

  /// Human-readable derivation.
  std::string ToString() const;
};

/// Runs (q_r, f_r) over the extension P̂_v of rw's view: returns q(P̂) as
/// pid–probability pairs. The extension must have been built with Id markers
/// (the default of BuildViewExtension). When `provenance` is non-null, one
/// FrProvenance entry per returned answer is appended.
std::vector<PidProb> ExecuteTpRewriting(
    const TpRewriting& rw, const PDocument& extension,
    std::vector<FrProvenance>* provenance = nullptr);

}  // namespace pxv

#endif  // PXV_REWRITE_FR_TP_H_
