#include "rewrite/fr_tp.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "prob/query_eval.h"
#include "pxml/view_extension.h"
#include "tp/ops.h"
#include "util/check.h"
#include "util/numeric.h"
#include "xml/label.h"

namespace pxv {
namespace {

// Occurrences of a persistent id among the *live* ordinary nodes of a
// p-document. The full-arena scan must skip detached tombstones: on a
// delta-patched extension a removed copy keeps its pid, and a tombstone in
// an anchor set would at best waste DP work and at worst keep a pid
// answerable after its last live occurrence is gone.
std::vector<NodeId> Occurrences(const PDocument& pd, PersistentId pid) {
  std::vector<NodeId> out;
  for (NodeId n = 0; n < pd.size(); ++n) {
    if (pd.ordinary(n) && !pd.detached(n) && pd.pid(n) == pid) out.push_back(n);
  }
  return out;
}

// Number of ordinary nodes on the path from the root of `sub` to `node`,
// inclusive of both — the paper's s(i,j).
int PathDataNodes(const PDocument& sub, NodeId node) {
  int count = 0;
  for (NodeId cur = node; cur != kNullNode; cur = sub.parent(cur)) {
    if (sub.ordinary(cur)) ++count;
  }
  return count;
}

// Builds the α-pattern member for a lower event n_j relative to the topmost
// ancestor's subdocument (whose root is an image of out(v), labeled l_m):
//   s > m : l_m // l_1[Q_1]/…/l_m[Q_m][Id(n_j)] compensated with q_(k)
//   s ≤ m : l_{m-s+1}[Q_{m-s+1}]/…/l_m[Q_m][Id(n_j)] compensated with q_(k)
//           (rooted directly at the subdocument root).
Pattern BuildAlphaMember(const TpRewriting& rw, int s, PersistentId lower_pid) {
  const Pattern& token = rw.last_token;
  const auto token_mb = token.MainBranch();
  const int m = static_cast<int>(token_mb.size());

  Pattern chain;
  PNodeId tail = kNullPNode;
  if (s > m) {
    // Full token below a descendant edge from the subdocument root.
    chain.AddRoot(rw.view.OutLabel());
    PNodeId prev = kNullPNode;
    for (int i = 0; i < m; ++i) {
      const Axis axis = (i == 0) ? Axis::kDescendant : Axis::kChild;
      const PNodeId attach = (i == 0) ? chain.root() : prev;
      prev = chain.AddChild(attach, token.label(token_mb[i]), axis);
      for (PNodeId p : token.PredicateChildren(token_mb[i])) {
        GraftSubtree(token, p, &chain, prev, token.axis(p));
      }
    }
    tail = prev;
  } else {
    // Truncated chain rooted at the subdocument root itself.
    const int start = m - s;  // Token index of the chain's first node.
    PXV_CHECK_EQ(token.label(token_mb[start]), rw.view.OutLabel())
        << "prefix-suffix overlap must align labels";
    PNodeId prev = kNullPNode;
    for (int i = start; i < m; ++i) {
      prev = (prev == kNullPNode)
                 ? chain.AddRoot(token.label(token_mb[i]))
                 : chain.AddChild(prev, token.label(token_mb[i]), Axis::kChild);
      for (PNodeId p : token.PredicateChildren(token_mb[i])) {
        GraftSubtree(token, p, &chain, prev, token.axis(p));
      }
    }
    tail = prev;
  }
  chain.SetOut(tail);
  // The Id(n_j) marker pins the chain's end to the lower occurrence.
  Pattern with_id = WithMarkerChild(chain, tail, IdMarkerLabel(lower_pid));
  with_id.SetOut(tail);
  // Continue with the compensation.
  return Compensate(with_id, rw.compensation);
}

// Pr(⋂_{i∈chain} e_i) for a chain of ancestors (result roots sorted topmost
// first), per the Theorem 2 construction, evaluated on the topmost
// ancestor's subdocument. Fills the provenance term when given.
double JointEventProbability(const TpRewriting& rw, const PDocument& ext,
                             const std::vector<NodeId>& chain,
                             PersistentId answer_pid,
                             FrProvenance::EventTerm* term) {
  const NodeId top = chain[0];
  const PDocument sub = ext.Subtree(top);
  const double beta = ext.edge_prob(top);  // Pr(n_{i1} ∈ v(P)).
  const double out_preds = BooleanProbability(sub, rw.v_out_preds);
  if (term != nullptr) {
    for (NodeId r : chain) term->chain.push_back(ext.pid(r));
    term->beta = beta;
    term->out_preds = out_preds;
  }
  if (out_preds <= kProbEps) return 0;

  const std::vector<NodeId> anchor = Occurrences(sub, answer_pid);
  if (anchor.empty()) return 0;

  std::vector<Pattern> members;
  members.push_back(rw.compensation.Clone());
  for (size_t j = 1; j < chain.size(); ++j) {
    const PersistentId lower_pid = ext.pid(chain[j]);
    const NodeId occurrence = sub.FindByPid(lower_pid);
    PXV_CHECK_NE(occurrence, kNullNode);
    const int s = PathDataNodes(sub, occurrence);
    members.push_back(BuildAlphaMember(rw, s, lower_pid));
  }
  std::vector<Goal> goals;
  goals.reserve(members.size());
  for (const Pattern& m : members) goals.push_back({&m, &anchor});
  const double alpha = JointProbability(sub, goals);
  if (term != nullptr) {
    term->alpha = alpha;
    term->joint = (beta / out_preds) * alpha;
  }
  return (beta / out_preds) * alpha;
}

}  // namespace

std::string FrProvenance::ToString() const {
  std::ostringstream out;
  out << "Pr(pid " << pid << " ∈ q(P)) = " << value << "\n";
  if (!inclusion_exclusion) {
    out << "  = plan " << plan_probability << " ÷ out-predicates "
        << out_predicate_mass << "   (Theorem 1)\n";
    return out.str();
  }
  out << "  by inclusion–exclusion over " << terms.size()
      << " ancestor subsets (Lemma 1):\n";
  for (const EventTerm& t : terms) {
    out << "   " << (t.sign > 0 ? "+" : "−") << " chain {";
    for (size_t i = 0; i < t.chain.size(); ++i) {
      out << (i ? "," : "") << t.chain[i];
    }
    out << "}: (β " << t.beta << " ÷ " << t.out_preds << ") × α " << t.alpha
        << " = " << t.joint << "\n";
  }
  return out.str();
}

std::vector<PidProb> ExecuteTpRewriting(const TpRewriting& rw,
                                        const PDocument& extension,
                                        std::vector<FrProvenance>* provenance) {
  std::vector<PidProb> result;
  // Candidate answers: pids the deterministic plan can retrieve (Prop. 1).
  std::set<PersistentId> candidates;
  for (const NodeProb& np : EvaluateTP(extension, rw.plan)) {
    candidates.insert(extension.pid(np.node));
  }

  const std::vector<NodeId> roots = ExtensionResultRoots(extension);
  for (const PersistentId pid : candidates) {
    // Ancestors-or-self of the answer selected by v: result roots whose
    // subtree contains an occurrence of the answer pid.
    auto subtree_contains = [&](NodeId r, PersistentId target) {
      std::vector<NodeId> stack{r};
      while (!stack.empty()) {
        const NodeId cur = stack.back();
        stack.pop_back();
        if (extension.ordinary(cur) && extension.pid(cur) == target) {
          return true;
        }
        for (NodeId c : extension.children(cur)) stack.push_back(c);
      }
      return false;
    };
    auto subtree_ordinary_size = [&](NodeId r) {
      int count = 0;
      std::vector<NodeId> stack{r};
      while (!stack.empty()) {
        const NodeId cur = stack.back();
        stack.pop_back();
        if (extension.ordinary(cur)) ++count;
        for (NodeId c : extension.children(cur)) stack.push_back(c);
      }
      return count;
    };
    std::vector<NodeId> ancestors;
    for (NodeId r : roots) {
      if (subtree_contains(r, pid)) ancestors.push_back(r);
    }
    PXV_CHECK(!ancestors.empty());
    // The selected ancestors lie on one root path of the original document,
    // so their subtrees nest; sort topmost (largest subtree) first.
    std::sort(ancestors.begin(), ancestors.end(), [&](NodeId a, NodeId b) {
      return subtree_ordinary_size(a) > subtree_ordinary_size(b);
    });

    double prob = 0;
    FrProvenance why;
    why.pid = pid;
    if (ancestors.size() == 1) {
      // Theorem 1 (also sound for a = 1 in unrestricted plans, see the
      // paper's footnote 3): one division, no event management.
      const std::vector<NodeId> anchor = Occurrences(extension, pid);
      const double numer = SelectionProbabilityAnyOf(extension, rw.plan, anchor);
      const PDocument sub = extension.Subtree(ancestors[0]);
      const double denom = BooleanProbability(sub, rw.v_out_preds);
      prob = denom > kProbEps ? numer / denom : 0;
      why.plan_probability = numer;
      why.out_predicate_mass = denom;
    } else {
      PXV_CHECK(!rw.restricted)
          << "restricted plans have a unique selected ancestor";
      // Lemma 1: inclusion–exclusion over nonempty subsets of events.
      why.inclusion_exclusion = true;
      const int a = static_cast<int>(ancestors.size());
      PXV_CHECK_LE(a, 16) << "too many ancestor events";
      for (int mask = 1; mask < (1 << a); ++mask) {
        std::vector<NodeId> chain;
        for (int i = 0; i < a; ++i) {
          if (mask & (1 << i)) chain.push_back(ancestors[i]);
        }
        FrProvenance::EventTerm term;
        term.sign = (__builtin_popcount(mask) % 2 == 1) ? 1 : -1;
        const double joint =
            JointEventProbability(rw, extension, chain, pid,
                                  provenance ? &term : nullptr);
        prob += term.sign * joint;
        if (provenance != nullptr) why.terms.push_back(std::move(term));
      }
    }
    if (prob > kProbEps) {
      result.push_back({pid, prob});
      if (provenance != nullptr) {
        why.value = prob;
        provenance->push_back(std::move(why));
      }
    }
  }
  return result;
}

}  // namespace pxv
