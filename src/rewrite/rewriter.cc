#include "rewrite/rewriter.h"

#include "prob/query_eval.h"
#include "util/check.h"

namespace pxv {

void Rewriter::AddView(std::string name, Pattern def) {
  for (const NamedView& v : views_) {
    PXV_CHECK_NE(v.name, name) << "duplicate view name";
  }
  views_.push_back({std::move(name), std::move(def)});
}

ViewExtensions Rewriter::Materialize(const PDocument& pd,
                                     const ViewExtensionOptions& options) const {
  EvalSession session(pd);
  return Materialize(session, options);
}

ViewExtensions Rewriter::Materialize(EvalSession& session,
                                     const ViewExtensionOptions& options) const {
  ViewExtensions exts;
  for (const NamedView& v : views_) {
    std::vector<ViewResultEntry> results;
    for (const NodeProb& np : session.EvaluateTP(v.def)) {
      results.push_back({np.node, np.prob});
    }
    exts.emplace(v.name,
                 BuildViewExtension(session.doc(), v.name, results, options));
  }
  return exts;
}

std::vector<TpRewriting> Rewriter::FindTp(const Pattern& q) const {
  return TPrewrite(q, views_);
}

std::optional<TpiRewriting> Rewriter::FindTpi(const Pattern& q) const {
  return TPIrewrite(q, views_);
}

std::optional<std::vector<PidProb>> Rewriter::Answer(
    const Pattern& q, const ViewExtensions& exts) const {
  const std::vector<TpRewriting> tp = FindTp(q);
  if (!tp.empty()) {
    const auto it = exts.find(tp[0].view_name);
    PXV_CHECK(it != exts.end()) << "extension not materialized";
    return ExecuteTpRewriting(tp[0], it->second);
  }
  const std::optional<TpiRewriting> tpi = FindTpi(q);
  if (tpi.has_value()) {
    return ExecuteTpiRewriting(*tpi, exts);
  }
  return std::nullopt;
}

}  // namespace pxv
