#include "rewrite/rewriter.h"

#include <algorithm>
#include <utility>

#include "prob/query_eval.h"
#include "util/check.h"
#include "xml/canonical.h"

namespace pxv {

void Rewriter::AddView(std::string name, Pattern def) {
  for (const NamedView& v : views_) {
    PXV_CHECK_NE(v.name, name) << "duplicate view name";
  }
  // XOR-combine per-view hashes: order-insensitive (registration order does
  // not change which rewritings exist) and incremental per AddView.
  fingerprint_ ^= CanonicalHash64(name + "=" + def.CanonicalString());
  views_.push_back({std::move(name), std::move(def)});
}

ViewExtensions Rewriter::Materialize(const PDocument& pd,
                                     const ViewExtensionOptions& options) const {
  EvalSession session(pd);
  return Materialize(session, options);
}

ViewExtensions Rewriter::Materialize(EvalSession& session,
                                     const ViewExtensionOptions& options) const {
  ViewExtensions exts;
  // Views sharing an output label materialize from one joint DP pass.
  std::vector<const Pattern*> defs;
  defs.reserve(views_.size());
  for (const NamedView& v : views_) defs.push_back(&v.def);
  session.PrefetchTP(defs);
  for (const NamedView& v : views_) {
    std::vector<ViewResultEntry> results;
    for (const NodeProb& np : session.EvaluateTP(v.def)) {
      results.push_back({np.node, np.prob});
    }
    exts.emplace(v.name,
                 BuildViewExtension(session.doc(), v.name, results, options));
  }
  return exts;
}

ViewExtensions Rewriter::Materialize(const PDocument& pd, ThreadPool& pool,
                                     const ViewExtensionOptions& options) const {
  const int n = static_cast<int>(views_.size());
  if (n <= 1 || pool.size() <= 1) return Materialize(pd, options);
  // One shard per worker; each shard owns its EvalSession (sessions are
  // single-threaded) and strides over the view list.
  const int shards = std::min(pool.size(), n);
  std::vector<ViewExtensions> partial(shards);
  pool.ParallelFor(shards, [&](int s) {
    EvalSession session(pd);
    std::vector<const Pattern*> defs;
    for (int i = s; i < n; i += shards) defs.push_back(&views_[i].def);
    session.PrefetchTP(defs);
    for (int i = s; i < n; i += shards) {
      const NamedView& v = views_[i];
      std::vector<ViewResultEntry> results;
      for (const NodeProb& np : session.EvaluateTP(v.def)) {
        results.push_back({np.node, np.prob});
      }
      partial[s].emplace(
          v.name, BuildViewExtension(session.doc(), v.name, results, options));
    }
  });
  ViewExtensions exts;
  for (ViewExtensions& p : partial) {
    for (auto& [name, ext] : p) exts.emplace(name, std::move(ext));
  }
  return exts;
}

std::vector<TpRewriting> Rewriter::FindTp(const Pattern& q) const {
  return TPrewrite(q, views_);
}

std::optional<TpiRewriting> Rewriter::FindTpi(const Pattern& q) const {
  return TPIrewrite(q, views_);
}

QueryPlan Rewriter::Compile(const Pattern& q) const {
  return CompileQuery(q, views_);
}

std::optional<std::vector<PidProb>> Rewriter::Answer(
    const Pattern& q, const ExtensionSet& exts) const {
  // Staged compile: one-shot callers should not pay the worst-case
  // exponential TPIrewrite search when a TP candidate can already serve.
  // (The serve layer's plan cache full-compiles instead — pay once, keep
  // the TP∩ candidate around for cost-based selection.)
  CompileOptions tp_only;
  tp_only.tpi = false;
  if (auto answer = ExecuteQueryPlan(CompileQuery(q, views_, tp_only), exts)) {
    return answer;
  }
  CompileOptions tpi_only;
  tpi_only.tp = false;
  return ExecuteQueryPlan(CompileQuery(q, views_, tpi_only), exts);
}

}  // namespace pxv
