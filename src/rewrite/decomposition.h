// View decompositions and the S(q,V) system (paper §5.3).
//
// Each view v_i = ft_i // m_i // lt_i is decomposed into d-views (Steps 1–4):
//   1. one query per main-branch node of the first and last token, keeping
//      only that node's predicates, plus one bulk query for the middle part;
//   2. within a view, queries that are not c-independent are merged
//      (union-free intersections on the shared main branch) to a fixpoint;
//   3. each query is intersected with mb(q) (reduced back to a TP);
//   4. equivalent queries across views (and the query itself) are grouped
//      into d-view classes w_1 … w_s.
// Taking logs of
//   Pr(n ∈ v_i(P)) = Pr(n ∈ P) · Π_{w ∈ W_i} Pr(n ∈ w(P) | n ∈ P)
// yields the linear system S(q,V); Pr(n ∈ q(P)) is retrievable iff the
// query's indicator vector lies in the row space of the view equations
// (Theorem 5), testable in PTime by exact rational elimination (Prop. 5).
// The combination coefficients c_i realize f_r(n) = Π Pr(n ∈ v_i(P))^{c_i}.

#ifndef PXV_REWRITE_DECOMPOSITION_H_
#define PXV_REWRITE_DECOMPOSITION_H_

#include <optional>
#include <vector>

#include "linalg/rational.h"
#include "tp/pattern.h"
#include "util/status.h"

namespace pxv {

/// Result of Steps 1–4.
struct ViewDecomposition {
  /// d-view class representatives (minimized patterns). Classes whose
  /// pattern is implied by the main branch of q (trivial, probability 1
  /// given n ∈ P) are dropped during construction.
  std::vector<Pattern> dviews;
  /// Per input view: the (sorted, distinct) classes it decomposes into.
  std::vector<std::vector<int>> view_classes;
  /// The input query's classes.
  std::vector<int> query_classes;
  /// False when a Step-3 reduction failed to produce a single TP (rare
  /// corner; the procedure then reports "no rewriting found").
  bool ok = true;
};

/// Runs Steps 1–4 for q and `views` (view definitions over the original
/// document).
ViewDecomposition DecomposeViews(const Pattern& q,
                                 const std::vector<Pattern>& views);

/// Decomposes a single pattern (Steps 1–3) against mb(q); exposed for tests.
/// Fails when a Step-3 reduction does not produce a single TP.
StatusOr<std::vector<Pattern>> DecomposeOne(const Pattern& v,
                                            const Pattern& q);

/// S(q,V) uniqueness test + witness: coefficients c with
/// log Pr(n∈q) = Σ c_i · log Pr(n∈v_i), or nullopt when the system does not
/// pin Pr(n ∈ q(P)) down.
std::optional<std::vector<Rational>> SolveSystem(const ViewDecomposition& dec);

}  // namespace pxv

#endif  // PXV_REWRITE_DECOMPOSITION_H_
