// Public façade: a view registry that materializes probabilistic view
// extensions and answers queries from views under either result semantics
// (paper §3):
//   * copy semantics      → TP-rewritings over a single extension (§4),
//   * persistent node Ids → TP∩-rewritings over several extensions (§5).

#ifndef PXV_REWRITE_REWRITER_H_
#define PXV_REWRITE_REWRITER_H_

#include <optional>
#include <string>
#include <vector>

#include "prob/eval_session.h"
#include "pxml/pdocument.h"
#include "pxml/view_extension.h"
#include "rewrite/fr_tp.h"
#include "rewrite/planner.h"
#include "rewrite/tp_rewrite.h"
#include "rewrite/tpi_rewrite.h"
#include "util/thread_pool.h"

namespace pxv {

/// View registry + rewriting entry points.
class Rewriter {
 public:
  /// Registers a view. Names must be unique.
  void AddView(std::string name, Pattern def);

  const std::vector<NamedView>& views() const { return views_; }

  /// Order-insensitive 64-bit fingerprint of the registry contents (view
  /// names + canonical definitions), updated by AddView. Two registries
  /// with the same views fingerprint identically, so a compiled plan keyed
  /// on (registry fingerprint, query) is safe to share across every
  /// Rewriter holding the same view set — the seam serve/'s shared
  /// PlanCache keys on.
  uint64_t Fingerprint() const { return fingerprint_; }

  /// Materializes every view over `pd`: evaluates it with the probabilistic
  /// engine and bundles the results into extensions (§3.1). Each view costs
  /// one batched DP pass over the document (not one pass per candidate).
  ViewExtensions Materialize(const PDocument& pd,
                             const ViewExtensionOptions& options = {}) const;

  /// Same, reusing a caller-owned evaluation session (index + caches + the
  /// ProbBackend chain) — the route for repeated materializations or when
  /// the caller also queries the document directly.
  ViewExtensions Materialize(EvalSession& session,
                             const ViewExtensionOptions& options = {}) const;

  /// Parallel materialization: views are sharded across `pool`'s workers,
  /// one EvalSession per shard (sessions are single-threaded). Falls back to
  /// the serial single-session path for ≤ 1 view or a single-worker pool.
  ViewExtensions Materialize(const PDocument& pd, ThreadPool& pool,
                             const ViewExtensionOptions& options = {}) const;

  /// §4 (copy semantics): all probabilistic TP-rewritings of q.
  std::vector<TpRewriting> FindTp(const Pattern& q) const;

  /// §5 (persistent ids): probabilistic TP∩-rewriting of q, if any.
  std::optional<TpiRewriting> FindTpi(const Pattern& q) const;

  /// Compiles q against the registered views: all TP rewritings plus the
  /// TP∩ rewriting as costed AnswerPlan candidates (rewrite/planner.h).
  /// This is the expensive call that serve/'s plan cache amortizes.
  QueryPlan Compile(const Pattern& q) const;

  /// End-to-end convenience: answer q from the extensions only — a thin
  /// façade over Compile + ExecuteQueryPlan, so the cheapest *executable*
  /// candidate runs and a missing view extension means falling through to
  /// the next candidate, not a crash. Returns nullopt when q has no
  /// rewriting or none of its candidates can run over `exts`.
  std::optional<std::vector<PidProb>> Answer(const Pattern& q,
                                             const ExtensionSet& exts) const;

 private:
  std::vector<NamedView> views_;
  uint64_t fingerprint_ = 0;
};

}  // namespace pxv

#endif  // PXV_REWRITE_REWRITER_H_
