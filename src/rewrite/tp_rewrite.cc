#include "rewrite/tp_rewrite.h"

#include "rewrite/cindependence.h"
#include "tp/containment.h"
#include "tp/ops.h"
#include "util/check.h"
#include "xml/label.h"

namespace pxv {

bool HasDeterministicTpRewriting(const Pattern& q, const Pattern& v) {
  const int k = v.MainBranchLength();
  const auto q_mb = q.MainBranch();
  if (k > static_cast<int>(q_mb.size())) return false;
  if (v.OutLabel() != q.label(q_mb[k - 1])) return false;
  if (v.label(v.root()) != q.label(q.root())) return false;
  const Pattern unfolded = Compensate(v, Suffix(q, k));
  return Equivalent(unfolded, q);
}

Pattern ExtensionPlan(const std::string& view_name, const Pattern& v,
                      const Pattern& compensation) {
  Pattern head;
  const PNodeId root = head.AddRoot(DocLabel(view_name));
  const PNodeId lbl = head.AddChild(root, v.OutLabel(), Axis::kChild);
  head.SetOut(lbl);
  return Compensate(head, compensation);
}

std::vector<TpRewriting> TPrewrite(const Pattern& q,
                                   const std::vector<NamedView>& views) {
  std::vector<TpRewriting> result;
  const auto q_mb = q.MainBranch();
  for (const NamedView& nv : views) {
    const Pattern& v = nv.def;
    const int k = v.MainBranchLength();
    if (k > static_cast<int>(q_mb.size())) continue;
    if (!HasDeterministicTpRewriting(q, v)) continue;

    // Probabilistic feasibility (Prop. 3): v' ⊥ q''.
    const Pattern v_prime = StripOutPredicates(v);
    const Pattern q_dprime = QDoublePrime(q, k);
    if (!CIndependent(v_prime, q_dprime)) continue;

    TpRewriting rw;
    rw.view_name = nv.name;
    rw.view = v.Clone();
    rw.k = k;
    rw.compensation = Suffix(q, k);
    rw.plan = ExtensionPlan(nv.name, v, rw.compensation);
    rw.v_prime = v_prime;
    rw.v_out_preds = Suffix(v, k);
    rw.last_token = LastToken(v);
    rw.u = MaxPrefixSuffix(TokenLabels(v, TokenCount(v) - 1));
    // Def. 5: restricted iff mb(v) is //-free or the compensation's main
    // branch (q's main branch strictly below depth k) is //-free.
    const bool view_df = !MbHasDescendantEdge(v, 2);
    const bool comp_df = !MbHasDescendantEdge(rw.compensation, 2);
    rw.restricted = view_df || comp_df;

    if (rw.restricted) {
      result.push_back(std::move(rw));
      continue;
    }
    // Thm. 2 condition 2: the first u−1 nodes of the last token carry no
    // predicates.
    const auto token_nodes = TokenMbNodes(v).back();
    bool ok = true;
    for (int i = 0; i < rw.u - 1 && i < static_cast<int>(token_nodes.size());
         ++i) {
      if (!v.PredicateChildren(token_nodes[i]).empty()) {
        ok = false;
        break;
      }
    }
    if (ok) result.push_back(std::move(rw));
  }
  return result;
}

}  // namespace pxv
