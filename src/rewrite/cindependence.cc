#include "rewrite/cindependence.h"

#include <climits>
#include <cmath>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "prob/naive.h"
#include "pxml/worlds.h"
#include "tp/containment.h"
#include "util/check.h"

namespace pxv {
namespace {

// One merged position of a pairwise main-branch alignment.
struct AlignedPos {
  Label label;
  Axis axis;                    // Edge into this position (root: unused).
  PNodeId src1 = kNullPNode;    // q1's mb node here, if any.
  PNodeId src2 = kNullPNode;    // q2's mb node here, if any.
};

using Alignment = std::vector<AlignedPos>;

// Enumerates all alignments (interleavings with coalesced roots and outs) of
// the two main branches; calls visit(alignment); stops early when visit
// returns true (dependency witnessed). Returns true iff some visit did.
class PairAligner {
 public:
  PairAligner(const Pattern& q1, const Pattern& q2,
              const std::function<bool(const Alignment&)>& visit)
      : q1_(q1), q2_(q2), visit_(visit), mb1_(q1.MainBranch()),
        mb2_(q2.MainBranch()) {}

  bool Run() {
    if (q1_.label(mb1_[0]) != q2_.label(mb2_[0])) return false;
    AlignedPos root{q1_.label(mb1_[0]), Axis::kChild, mb1_[0], mb2_[0]};
    merged_.push_back(root);
    const bool hit = Rec(1, 1);
    merged_.clear();
    return hit;
  }

 private:
  // i, j: next unconsumed mb indices; last1_/last2_ implicit: position of
  // the previously consumed node of each query is tracked via merged_ scan —
  // we store them explicitly instead.
  bool Rec(size_t i, size_t j) {
    const bool done1 = i >= mb1_.size();
    const bool done2 = j >= mb2_.size();
    if (done1 && done2) {
      // Outs coalesce: both last nodes must sit at the final position.
      const AlignedPos& last = merged_.back();
      if (last.src1 == mb1_.back() && last.src2 == mb2_.back()) {
        return visit_(merged_);
      }
      return false;
    }
    const int t = static_cast<int>(merged_.size());
    // Pending-edge bookkeeping.
    const bool slash1 =
        !done1 && q1_.axis(mb1_[i]) == Axis::kChild;
    const bool slash2 = !done2 && q2_.axis(mb2_[j]) == Axis::kChild;
    // Dead states: a pending '/' whose source has fallen behind.
    if (slash1 && last1_ < t - 1) return false;
    if (slash2 && last2_ < t - 1) return false;

    // Option A: coalesce next nodes of both.
    if (!done1 && !done2 && q1_.label(mb1_[i]) == q2_.label(mb2_[j]) &&
        (!slash1 || last1_ == t - 1) && (!slash2 || last2_ == t - 1)) {
      if (Push(mb1_[i], mb2_[j], (slash1 || slash2), t)) {
        if (Rec(i + 1, j + 1)) return true;
        Pop();
      }
    }
    // Option B: advance q1 only. Prune when q2 has a pending '/'-edge whose
    // source sits at the previous position — skipping q2 now kills it.
    if (!done1 && !(slash2 && last2_ == t - 1) &&
        (!slash1 || last1_ == t - 1)) {
      Push(mb1_[i], kNullPNode, slash1, t);
      if (Rec(i + 1, j)) return true;
      Pop();
    }
    // Option C: advance q2 only (symmetric).
    if (!done2 && !(slash1 && last1_ == t - 1) &&
        (!slash2 || last2_ == t - 1)) {
      Push(kNullPNode, mb2_[j], slash2, t);
      if (Rec(i, j + 1)) return true;
      Pop();
    }
    return false;
  }

  bool Push(PNodeId n1, PNodeId n2, bool slash, int t) {
    AlignedPos pos;
    pos.label = (n1 != kNullPNode) ? q1_.label(n1) : q2_.label(n2);
    pos.axis = slash ? Axis::kChild : Axis::kDescendant;
    pos.src1 = n1;
    pos.src2 = n2;
    saved_.push_back({last1_, last2_});
    if (n1 != kNullPNode) last1_ = t;
    if (n2 != kNullPNode) last2_ = t;
    merged_.push_back(pos);
    return true;
  }

  void Pop() {
    merged_.pop_back();
    last1_ = saved_.back().first;
    last2_ = saved_.back().second;
    saved_.pop_back();
  }

  const Pattern& q1_;
  const Pattern& q2_;
  const std::function<bool(const Alignment&)>& visit_;
  std::vector<PNodeId> mb1_, mb2_;
  Alignment merged_;
  int last1_ = 0, last2_ = 0;
  std::vector<std::pair<int, int>> saved_;
};

// Can the predicate subtree rooted at `pred_root` (attached at alignment
// position t1 of its query) place some node strictly below the alignment
// node at position t2 > t1? The descent may step on fixed merged nodes
// (labels must match), on adversary-labeled padding inside // gaps, or jump
// past everything with a //-edge.
//
// Positions: 2*t   = "on merged node t"
//            2*t+1 = "inside the gap after t" (exists iff gap t→t+1 is //)
// Accept: any pattern node placed at a position > 2*t2 conceptually — we
// model "beyond" as reaching below node t2, which requires passing through
// node t2 (every route below x_{t2} goes through it).
bool ReachesBelow(const Pattern& q, PNodeId pred_root, int t1, int t2,
                  const Alignment& align) {
  struct Item {
    PNodeId node;  // Pattern node just placed (kNullPNode = start).
    int pos;       // Encoded position (see above); kBeyond = below x_{t2}.
  };
  constexpr int kBeyond = INT32_MAX;
  auto gap_is_desc = [&](int t) {
    return t + 1 < static_cast<int>(align.size()) &&
           align[t + 1].axis == Axis::kDescendant;
  };

  std::vector<Item> stack{{kNullPNode, 2 * t1}};
  std::set<std::pair<PNodeId, int>> seen;
  while (!stack.empty()) {
    const Item item = stack.back();
    stack.pop_back();
    if (item.pos == kBeyond) return true;
    if (!seen.insert({item.node, item.pos}).second) continue;

    // Children of the current pattern node (or the predicate root at start).
    std::vector<PNodeId> nexts;
    if (item.node == kNullPNode) {
      nexts.push_back(pred_root);
    } else {
      for (PNodeId c : q.children(item.node)) nexts.push_back(c);
    }
    for (PNodeId c : nexts) {
      const Axis axis = q.axis(c);
      const Label label = q.label(c);
      const bool on_node = (item.pos % 2 == 0);
      const int t = item.pos / 2;
      if (axis == Axis::kDescendant) {
        // Jump anywhere strictly below: below x_{t2} always reachable.
        stack.push_back({c, kBeyond});
        continue;
      }
      // Child axis: one step down.
      if (on_node) {
        if (t == t2) {
          stack.push_back({c, kBeyond});  // Fresh child below x_{t2}.
        } else if (gap_is_desc(t)) {
          stack.push_back({c, 2 * t + 1});  // Step onto padding.
          if (align[t + 1].label == label) stack.push_back({c, 2 * (t + 1)});
        } else {
          if (t + 1 <= t2 && align[t + 1].label == label) {
            stack.push_back({c, 2 * (t + 1)});
          }
        }
      } else {
        // Inside gap after t: deeper padding, or step onto node t+1.
        stack.push_back({c, 2 * t + 1});
        if (align[t + 1].label == label) stack.push_back({c, 2 * (t + 1)});
      }
    }
  }
  return false;
}

// Is the predicate subtree `pred_root` of alignment position t implied by
// the alignment's fixed path structure below t? If x_t[pred] has a
// containment mapping into the merged path (suffix from t), every document
// realizing the path satisfies the predicate, so — given n ∈ P — it matches
// with probability 1 and cannot carry any dependency.
bool ImpliedByPath(const Pattern& q, PNodeId attach, PNodeId pred_root, int t,
                   const Alignment& align) {
  // Build the path suffix as a pattern.
  Pattern path;
  PNodeId prev = kNullPNode;
  for (size_t i = t; i < align.size(); ++i) {
    prev = (prev == kNullPNode)
               ? path.AddRoot(align[i].label)
               : path.AddChild(prev, align[i].label, align[i].axis);
  }
  path.SetOut(path.root());
  // Build attach[pred] as a pattern.
  Pattern sub;
  sub.AddRoot(q.label(attach));
  GraftSubtree(q, pred_root, &sub, sub.root(), q.axis(pred_root));
  sub.SetOut(sub.root());
  for (PNodeId img : MapOutImages(sub, path)) {
    if (img == path.root()) return true;
  }
  return false;
}

// Tests one alignment for a dependency witness.
bool AlignmentHasDependency(const Pattern& q1, const Pattern& q2,
                            const Alignment& align) {
  const int T = static_cast<int>(align.size());
  // Collect non-implied predicates per position per query.
  struct Pred {
    int pos;
    PNodeId attach;
    PNodeId root;
  };
  std::vector<Pred> preds1, preds2;
  for (int t = 0; t < T; ++t) {
    if (align[t].src1 != kNullPNode) {
      for (PNodeId p : q1.PredicateChildren(align[t].src1)) {
        if (!ImpliedByPath(q1, align[t].src1, p, t, align)) {
          preds1.push_back({t, align[t].src1, p});
        }
      }
    }
    if (align[t].src2 != kNullPNode) {
      for (PNodeId p : q2.PredicateChildren(align[t].src2)) {
        if (!ImpliedByPath(q2, align[t].src2, p, t, align)) {
          preds2.push_back({t, align[t].src2, p});
        }
      }
    }
  }
  for (const Pred& p1 : preds1) {
    for (const Pred& p2 : preds2) {
      if (p1.pos == p2.pos) return true;  // Same attach node: mux-correlable.
      const Pred& upper = (p1.pos < p2.pos) ? p1 : p2;
      const Pred& lower = (p1.pos < p2.pos) ? p2 : p1;
      const Pattern& uq = (p1.pos < p2.pos) ? q1 : q2;
      if (ReachesBelow(uq, upper.root, upper.pos, lower.pos, align)) {
        return true;
      }
    }
  }
  return false;
}

}  // namespace

bool CIndependent(const Pattern& q1, const Pattern& q2) {
  std::function<bool(const Alignment&)> visit =
      [&](const Alignment& align) {
        return AlignmentHasDependency(q1, q2, align);
      };
  PairAligner aligner(q1, q2, visit);
  return !aligner.Run();
}

bool CIndependentOn(const PDocument& pd, const Pattern& q1, const Pattern& q2,
                    double tolerance) {
  // Oracle: enumerate worlds; for every node compare the two sides of the
  // definitional equation.
  std::map<NodeId, double> r1 = NaiveEvaluateTP(pd, q1);
  std::map<NodeId, double> r2 = NaiveEvaluateTP(pd, q2);
  TpIntersection both({q1.Clone(), q2.Clone()});
  std::map<NodeId, double> joint = NaiveEvaluateTPI(pd, both);
  // Nodes to check: union of supports.
  std::set<NodeId> nodes;
  for (const auto& [n, p] : r1) nodes.insert(n);
  for (const auto& [n, p] : r2) nodes.insert(n);
  for (const auto& [n, p] : joint) nodes.insert(n);
  for (NodeId n : nodes) {
    const double appear = AppearanceProbability(pd, n);
    if (appear <= 0) continue;
    const double lhs = joint.count(n) ? joint.at(n) : 0.0;
    const double p1 = r1.count(n) ? r1.at(n) : 0.0;
    const double p2 = r2.count(n) ? r2.at(n) : 0.0;
    const double rhs = p1 * p2 / appear;
    if (std::abs(lhs - rhs) > tolerance) return false;
  }
  return true;
}

}  // namespace pxv
