// Probabilistic condition-independence of tree patterns (paper §4.1).
//
// q1 ⊥ q2 iff for every p-document P̂ and node n,
//
//   Pr(n ∈ (q1 ∩ q2)(P)) = Pr(n ∈ q1(P)) · Pr(n ∈ q2(P)) / Pr(n ∈ P).
//
// Proposition 2 states c-independence is decidable in PTime via a syntactic
// characterization proved equivalent in the paper's extended report [11]
// (not publicly available). `CIndependent` implements our reconstruction of
// that test, engineered from the paper's stated examples and validated
// against the probabilistic definition by exhaustive possible-world checking
// (see tests/cindep_test.cc):
//
//   The queries are *dependent* iff some alignment of their main branches
//   (an interleaving with roots and outputs coalesced — any document node
//   selected by both queries realizes one) admits a pair of predicate
//   subtrees, one per query, attached at aligned positions t1 ≤ t2, such
//   that a single distributional choice could influence both:
//     * t1 == t2 — both predicates constrain the subtree of the same
//       document node, so a mux can always correlate them (the paper's
//       a[b] ̸⊥ a[c]); or
//     * t1 < t2 and the upper predicate can reach strictly below the
//       aligned node at t2 (descending through the fixed path labels, the
//       padding of // gaps, or jumping with a //-edge) — then a choice
//       inside that shared region affects both (the paper's Example 11:
//       a[.//c] reaches below b, where [c] lives).
//   Predicates implied by the alignment's path structure match with
//   probability 1 given n ∈ P and are skipped.

#ifndef PXV_REWRITE_CINDEPENDENCE_H_
#define PXV_REWRITE_CINDEPENDENCE_H_

#include "pxml/pdocument.h"
#include "tp/pattern.h"

namespace pxv {

/// Syntactic PTime test: true iff q1 ⊥ q2.
bool CIndependent(const Pattern& q1, const Pattern& q2);

/// Oracle: checks the probabilistic definition on one p-document by
/// exhaustive world enumeration (tests only; exponential).
bool CIndependentOn(const PDocument& pd, const Pattern& q1, const Pattern& q2,
                    double tolerance = 1e-9);

}  // namespace pxv

#endif  // PXV_REWRITE_CINDEPENDENCE_H_
