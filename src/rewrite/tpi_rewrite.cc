#include "rewrite/tpi_rewrite.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <sstream>

#include "prob/query_eval.h"
#include "rewrite/cindependence.h"
#include "tp/containment.h"
#include "tp/ops.h"
#include "tpi/equivalence.h"
#include "util/check.h"
#include "util/numeric.h"
#include "xml/label.h"

namespace pxv {
namespace {

// Identity plan for an uncompensated view: doc(v)/lbl(v).
Pattern IdentityPlan(const std::string& name, const Pattern& v) {
  Pattern plan;
  const PNodeId root = plan.AddRoot(DocLabel(name));
  const PNodeId out = plan.AddChild(root, v.OutLabel(), Axis::kChild);
  plan.SetOut(out);
  return plan;
}

// Builds a compensated member comp(v, q_(a)) with its §4 machinery and the
// V″ computability verdict.
TpiMember BuildCompensatedMember(const NamedView& nv, const Pattern& q,
                                 int a) {
  const Pattern& v = nv.def;
  TpiMember member;
  member.view_name = nv.name;
  member.compensated = true;
  member.comp_depth = a;
  member.def = Compensate(v, Suffix(q, a));

  TpRewriting& rw = member.section4;
  rw.view_name = nv.name;
  rw.view = v.Clone();
  rw.k = v.MainBranchLength();
  rw.compensation = Suffix(q, a);
  rw.plan = ExtensionPlan(nv.name, v, rw.compensation);
  rw.v_prime = StripOutPredicates(v);
  rw.v_out_preds = Suffix(v, rw.k);
  rw.last_token = LastToken(v);
  rw.u = MaxPrefixSuffix(TokenLabels(v, TokenCount(v) - 1));
  const bool view_df = !MbHasDescendantEdge(v, 2);
  const bool comp_df = !MbHasDescendantEdge(rw.compensation, 2);
  rw.restricted = view_df || comp_df;
  member.plan = rw.plan.Clone();

  // V″ conditions (Fig. 7): v' ⊥ q''_a, and restricted or the first u−1
  // last-token nodes predicate-free.
  const Pattern q_dprime_a = Compensate(MainBranchOnly(v), Suffix(q, a));
  bool computable = CIndependent(rw.v_prime, q_dprime_a);
  if (computable && !rw.restricted) {
    const auto token_nodes = TokenMbNodes(v).back();
    for (int i = 0; i < rw.u - 1 && i < static_cast<int>(token_nodes.size());
         ++i) {
      if (!v.PredicateChildren(token_nodes[i]).empty()) {
        computable = false;
        break;
      }
    }
  }
  member.computable = computable;
  return member;
}

// Deterministic pid retrieval for one member over its extension.
std::set<PersistentId> RetrievePids(const TpiMember& member,
                                    const ExtensionSet& exts) {
  const PDocument* ext = exts.Find(member.view_name);
  PXV_CHECK(ext != nullptr) << "missing extension " << member.view_name;
  std::set<PersistentId> pids;
  for (const NodeProb& np : EvaluateTP(*ext, member.plan)) {
    pids.insert(ext->pid(np.node));
  }
  return pids;
}

// Pr(n ∈ v(P)) for an uncompensated view: the β on the extension's result
// root whose pid is n.
double ResultRootBeta(const PDocument& ext, PersistentId pid) {
  for (NodeId r : ExtensionResultRoots(ext)) {
    if (ext.pid(r) == pid) return ext.edge_prob(r);
  }
  return 0;
}

}  // namespace

std::optional<TpiRewriting> TPIrewrite(const Pattern& q,
                                       const std::vector<NamedView>& views) {
  TpiRewriting rw;
  const auto q_mb = q.MainBranch();

  // V′: original views containing q, plus all prefix-compensated views.
  for (const NamedView& nv : views) {
    const Pattern& v = nv.def;
    if (v.label(v.root()) != q.label(q.root())) continue;
    if (Contains(v, q)) {
      TpiMember member;
      member.view_name = nv.name;
      member.def = v.Clone();
      member.plan = IdentityPlan(nv.name, v);
      member.computable = true;  // Original views: β is directly available.
      rw.members.push_back(std::move(member));
    }
    // Prefs: depths a with q^(a) ⊑ v (and compatible output label).
    for (int a = 1; a <= static_cast<int>(q_mb.size()); ++a) {
      if (v.OutLabel() != q.label(q_mb[a - 1])) continue;
      if (!Contains(v, Prefix(q, a))) continue;
      // Skip the degenerate compensation that adds nothing (a == |mb(q)| and
      // suffix is a bare node with no predicates).
      const Pattern suffix = Suffix(q, a);
      if (suffix.size() == 1 && a == static_cast<int>(q_mb.size()) &&
          Contains(v, q)) {
        continue;  // comp(v, q_(a)) ≡ v, already included.
      }
      TpiMember member = BuildCompensatedMember({nv.name, v}, q, a);
      if (!Contains(member.def, q)) continue;  // Unusable in the plan.
      rw.members.push_back(std::move(member));
    }
  }
  if (rw.members.empty()) return std::nullopt;

  // Deterministic canonical plan: unfold(qr) ≡ q?
  TpIntersection unfolded;
  for (const TpiMember& m : rw.members) unfolded.Add(m.def.Clone());
  if (!EquivalentTpIntersection(q, unfolded)) return std::nullopt;

  // S(q, V″): can the probabilities be recombined?
  std::vector<Pattern> computable_defs;
  for (size_t i = 0; i < rw.members.size(); ++i) {
    if (rw.members[i].computable) {
      rw.computable_index.push_back(static_cast<int>(i));
      computable_defs.push_back(rw.members[i].def.Clone());
    }
  }
  rw.decomposition = DecomposeViews(q, computable_defs);
  std::optional<std::vector<Rational>> coefficients =
      SolveSystem(rw.decomposition);
  if (!coefficients.has_value()) return std::nullopt;
  rw.coefficients = std::move(*coefficients);
  return rw;
}

std::optional<std::vector<int>> FindPairwiseIndependentSubset(
    const Pattern& q, const std::vector<NamedView>& views, int max_subset) {
  const Pattern mb_q = MainBranchOnly(q);
  // Candidates: views containing q.
  std::vector<int> candidates;
  for (size_t i = 0; i < views.size(); ++i) {
    if (views[i].def.label(views[i].def.root()) == q.label(q.root()) &&
        Contains(views[i].def, q)) {
      candidates.push_back(static_cast<int>(i));
    }
  }
  const int c = static_cast<int>(candidates.size());
  PXV_CHECK_LE(c, 24) << "subset search too large";
  std::optional<std::vector<int>> best;
  for (uint32_t mask = 1; mask < (1u << c); ++mask) {
    if (__builtin_popcount(mask) > max_subset) continue;
    std::vector<int> subset;
    for (int b = 0; b < c; ++b) {
      if (mask & (1u << b)) subset.push_back(candidates[b]);
    }
    if (best.has_value() && subset.size() >= best->size()) continue;
    // Lemma 3: some member must contain mb(q).
    bool lemma3 = false;
    for (int i : subset) {
      if (Contains(views[i].def, mb_q)) {
        lemma3 = true;
        break;
      }
    }
    if (!lemma3) continue;
    // Pairwise c-independence.
    bool indep = true;
    for (size_t x = 0; x < subset.size() && indep; ++x) {
      for (size_t y = x + 1; y < subset.size() && indep; ++y) {
        indep = CIndependent(views[subset[x]].def, views[subset[y]].def);
      }
    }
    if (!indep) continue;
    // Deterministic rewriting: q ≡ ⋂ subset.
    TpIntersection in;
    for (int i : subset) in.Add(views[i].def.Clone());
    if (!EquivalentTpIntersection(q, in)) continue;
    best = subset;
  }
  return best;
}

std::string TpiProvenance::ToString() const {
  std::ostringstream out;
  out << "Pr(pid " << pid << " ∈ q(P)) = " << value << " = Π factors:\n";
  for (const Factor& f : factors) {
    out << "   " << f.member << " : " << f.value << " ^ "
        << f.exponent.ToString() << "\n";
  }
  return out.str();
}

std::vector<PidProb> ExecuteTpiRewriting(const TpiRewriting& rw,
                                         const ExtensionSet& exts,
                                         std::vector<TpiProvenance>* provenance) {
  PXV_CHECK(!rw.members.empty());
  // Deterministic retrieval: intersect the members' pid sets.
  std::set<PersistentId> pids = RetrievePids(rw.members[0], exts);
  for (size_t i = 1; i < rw.members.size() && !pids.empty(); ++i) {
    std::set<PersistentId> next = RetrievePids(rw.members[i], exts);
    std::set<PersistentId> merged;
    std::set_intersection(pids.begin(), pids.end(), next.begin(), next.end(),
                          std::inserter(merged, merged.begin()));
    pids = std::move(merged);
  }

  // Result probabilities per computable member.
  std::vector<std::map<PersistentId, double>> member_probs(
      rw.computable_index.size());
  for (size_t ci = 0; ci < rw.computable_index.size(); ++ci) {
    const TpiMember& member = rw.members[rw.computable_index[ci]];
    const PDocument& ext = *exts.Find(member.view_name);
    if (!member.compensated) {
      for (NodeId r : ExtensionResultRoots(ext)) {
        member_probs[ci][ext.pid(r)] = ext.edge_prob(r);
      }
    } else {
      for (const PidProb& pp : ExecuteTpRewriting(member.section4, ext)) {
        member_probs[ci][pp.pid] = pp.prob;
      }
    }
  }

  std::vector<PidProb> result;
  for (const PersistentId pid : pids) {
    double log_prob = 0;
    bool ok = true;
    TpiProvenance why;
    why.pid = pid;
    for (size_t ci = 0; ci < rw.computable_index.size(); ++ci) {
      const Rational& c = rw.coefficients[ci];
      if (c.IsZero()) continue;
      const auto it = member_probs[ci].find(pid);
      const double p = (it == member_probs[ci].end()) ? 0.0 : it->second;
      if (provenance != nullptr) {
        const TpiMember& member = rw.members[rw.computable_index[ci]];
        std::string desc = member.view_name;
        if (member.compensated) {
          desc += " (compensated at depth " +
                  std::to_string(member.comp_depth) + ")";
        }
        why.factors.push_back({std::move(desc), p, c});
      }
      if (p <= kProbEps) {
        ok = false;
        if (provenance == nullptr) break;
      }
      if (p > kProbEps) log_prob += c.ToDouble() * std::log(p);
    }
    const double prob = ok ? std::exp(log_prob) : 0.0;
    if (prob > kProbEps) {
      result.push_back({pid, prob});
      if (provenance != nullptr) {
        why.value = prob;
        provenance->push_back(std::move(why));
      }
    }
  }
  return result;
}

std::vector<PidProb> ExecuteProductRewriting(
    const std::vector<NamedView>& views, const std::vector<int>& subset,
    int lemma3_index, const ExtensionSet& exts) {
  PXV_CHECK(!subset.empty());
  // Candidates: pids selected by every view.
  std::set<PersistentId> pids;
  bool first = true;
  for (int i : subset) {
    const PDocument& ext = *exts.Find(views[i].name);
    std::set<PersistentId> selected;
    for (NodeId r : ExtensionResultRoots(ext)) selected.insert(ext.pid(r));
    if (first) {
      pids = std::move(selected);
      first = false;
    } else {
      std::set<PersistentId> merged;
      std::set_intersection(pids.begin(), pids.end(), selected.begin(),
                            selected.end(),
                            std::inserter(merged, merged.begin()));
      pids = std::move(merged);
    }
  }
  std::vector<PidProb> result;
  const int m = static_cast<int>(subset.size());
  for (const PersistentId pid : pids) {
    double product = 1;
    for (int i : subset) {
      product *= ResultRootBeta(*exts.Find(views[i].name), pid);
    }
    // Lemma 3: Pr(n ∈ P) read off the mb(q)-containing view's β.
    const double appearance =
        ResultRootBeta(*exts.Find(views[lemma3_index].name), pid);
    if (appearance <= kProbEps) continue;
    for (int j = 0; j < m - 1; ++j) product /= appearance;
    if (product > kProbEps) result.push_back({pid, product});
  }
  return result;
}

}  // namespace pxv
