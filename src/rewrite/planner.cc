#include "rewrite/planner.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/check.h"

namespace pxv {
namespace {

// Upper bound on the inclusion–exclusion blow-up charged to unrestricted
// f_r plans: 2^min(result roots, kMaxIePenaltyBits).
constexpr int kMaxIePenaltyBits = 10;

double TpCost(const TpRewriting& rw, const PDocument& ext) {
  const double plan_size = static_cast<double>(rw.plan.size());
  // live_size(), not size(): a delta-patched extension accumulates detached
  // tombstones that the DP never visits — charging them would systematically
  // overprice patched extensions against freshly rebuilt ones. ExpDpCost()
  // rides on top: the DP re-walks an exp node's child distributions once per
  // explicit subset, so exp-heavy extensions cost more at equal live size.
  const double ext_nodes =
      static_cast<double>(ext.live_size()) + ext.ExpDpCost();
  double cost = plan_size * ext_nodes;
  if (!rw.restricted) {
    const int roots =
        static_cast<int>(ExtensionResultRoots(ext).size());
    cost *= std::exp2(std::min(roots, kMaxIePenaltyBits));
  }
  return cost;
}

}  // namespace

std::string AnswerPlan::DebugString() const {
  std::ostringstream out;
  if (kind == Kind::kTp) {
    out << "TP via " << tp.view_name
        << (tp.restricted ? " [restricted]" : " [unrestricted]")
        << " plan-size " << tp.plan.size();
  } else {
    out << "TP∩ over {";
    for (size_t i = 0; i < required_views.size(); ++i) {
      out << (i ? "," : "") << required_views[i];
    }
    out << "} members " << tpi.members.size();
  }
  return out.str();
}

QueryPlan CompileQuery(const Pattern& q, const std::vector<NamedView>& views,
                       const CompileOptions& options) {
  QueryPlan plan;
  plan.canonical = q.CanonicalString();
  plan.fingerprint = q.Fingerprint();
  if (options.tp) {
    for (TpRewriting& rw : TPrewrite(q, views)) {
      AnswerPlan cand;
      cand.kind = AnswerPlan::Kind::kTp;
      cand.required_views.push_back(rw.view_name);
      cand.tp = std::move(rw);
      plan.candidates.push_back(std::move(cand));
    }
  }
  if (!options.tpi) return plan;
  if (std::optional<TpiRewriting> tpi = TPIrewrite(q, views)) {
    AnswerPlan cand;
    cand.kind = AnswerPlan::Kind::kTpi;
    for (const TpiMember& m : tpi->members) {
      if (std::find(cand.required_views.begin(), cand.required_views.end(),
                    m.view_name) == cand.required_views.end()) {
        cand.required_views.push_back(m.view_name);
      }
    }
    cand.tpi = std::move(*tpi);
    plan.candidates.push_back(std::move(cand));
  }
  return plan;
}

std::optional<double> EstimateCost(const AnswerPlan& plan,
                                   const ExtensionSet& exts) {
  for (const std::string& v : plan.required_views) {
    if (!exts.Has(v)) return std::nullopt;
  }
  if (plan.kind == AnswerPlan::Kind::kTp) {
    return TpCost(plan.tp, *exts.Find(plan.tp.view_name));
  }
  double cost = 0;
  for (const TpiMember& m : plan.tpi.members) {
    const PDocument& ext = *exts.Find(m.view_name);
    cost += static_cast<double>(m.plan.size()) *
            (static_cast<double>(ext.live_size()) + ext.ExpDpCost());
    if (m.compensated && m.computable) cost += TpCost(m.section4, ext);
  }
  return cost;
}

int SelectPlan(const QueryPlan& plan, const ExtensionSet& exts) {
  int best = -1;
  double best_cost = 0;
  for (size_t i = 0; i < plan.candidates.size(); ++i) {
    const std::optional<double> cost = EstimateCost(plan.candidates[i], exts);
    if (!cost.has_value()) continue;
    if (best < 0 || *cost < best_cost) {
      best = static_cast<int>(i);
      best_cost = *cost;
    }
  }
  return best;
}

std::optional<std::vector<PidProb>> ExecuteQueryPlan(const QueryPlan& plan,
                                                     const ExtensionSet& exts,
                                                     int* chosen) {
  const int pick = SelectPlan(plan, exts);
  if (chosen != nullptr) *chosen = pick;
  if (pick < 0) return std::nullopt;
  const AnswerPlan& cand = plan.candidates[pick];
  if (cand.kind == AnswerPlan::Kind::kTp) {
    return ExecuteTpRewriting(cand.tp, *exts.Find(cand.tp.view_name));
  }
  return ExecuteTpiRewriting(cand.tpi, exts);
}

}  // namespace pxv
