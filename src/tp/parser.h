// XPath notation for tree patterns (the paper's xpath(q)).
//
//   IT-personnel//person[name/Rick]/bonus[laptop]
//   a[.//c]/b
//   doc(v1BON)/bonus[laptop]
//
// Grammar (no wildcards — TP has none):
//   query    := step (('/' | '//') step)*
//   step     := label predicate*
//   predicate:= '[' ['.'] [('/' | '//')] step (('/' | '//') step)* ']'
// A leading '.' or '/' inside a predicate means child axis for the first
// step; './/' means descendant. Labels may embed one balanced parenthesis
// group — doc(v), Id(42) — or be quoted "...".

#ifndef PXV_TP_PARSER_H_
#define PXV_TP_PARSER_H_

#include <string>
#include <string_view>

#include "tp/pattern.h"
#include "util/status.h"

namespace pxv {

/// Parses XPath notation into a Pattern. The output node is the last step of
/// the outermost path.
StatusOr<Pattern> ParsePattern(std::string_view text);

/// Convenience: parses or dies (for literals in tests/examples).
Pattern Tp(std::string_view text);

/// Serializes to XPath notation (round-trips through ParsePattern).
std::string ToXPath(const Pattern& q);

}  // namespace pxv

#endif  // PXV_TP_PARSER_H_
