#include "tp/containment.h"

#include <cstdint>
#include <functional>

#include "tp/eval.h"
#include "util/check.h"
#include "xml/document.h"

namespace pxv {
namespace {

// Containment-mapping matcher: like eval's Matcher but the "document" is a
// pattern: / must map to a /-edge, // to any downward path of length >= 1.
class PatternMatcher {
 public:
  PatternMatcher(const Pattern& q, const Pattern& host)
      : q_(q),
        host_(host),
        sat_(static_cast<size_t>(q.size()) * host.size(), kUnknown),
        below_(static_cast<size_t>(q.size()) * host.size(), kUnknown) {}

  bool Sat(PNodeId qn, PNodeId hn) {
    int8_t& memo = sat_[Index(qn, hn)];
    if (memo != kUnknown) return memo;
    bool ok = q_.label(qn) == host_.label(hn);
    if (ok) {
      for (PNodeId c : q_.children(qn)) {
        bool found = false;
        if (q_.axis(c) == Axis::kDescendant) {
          found = Below(c, hn);
        } else {
          for (PNodeId y : host_.children(hn)) {
            if (host_.axis(y) == Axis::kChild && Sat(c, y)) {
              found = true;
              break;
            }
          }
        }
        if (!found) {
          ok = false;
          break;
        }
      }
    }
    memo = ok;
    return ok;
  }

  bool Below(PNodeId qn, PNodeId hn) {
    int8_t& memo = below_[Index(qn, hn)];
    if (memo != kUnknown) return memo;
    bool ok = false;
    for (PNodeId y : host_.children(hn)) {
      if (Sat(qn, y) || Below(qn, y)) {
        ok = true;
        break;
      }
    }
    memo = ok;
    return ok;
  }

 private:
  static constexpr int8_t kUnknown = -1;
  size_t Index(PNodeId qn, PNodeId hn) const {
    return static_cast<size_t>(qn) * host_.size() + hn;
  }

  const Pattern& q_;
  const Pattern& host_;
  std::vector<int8_t> sat_, below_;
};

// Canonical-model enumerator: instantiates every //-edge of `sub` with a
// chain of 0..bound-1 fresh z-labeled nodes; calls `visit(doc, out_image)`
// for each model; stops early when visit returns false. Returns false iff
// some visit returned false.
bool ForEachCanonicalModel(
    const Pattern& sub, int bound,
    const std::function<bool(const Document&, NodeId)>& visit);

class ModelEnumerator {
 public:
  ModelEnumerator(const Pattern& sub, int bound,
                  const std::function<bool(const Document&, NodeId)>& visit)
      : sub_(sub), bound_(bound), visit_(visit), z_(Intern("\x01z")) {
    // Collect //-edges (target nodes whose incoming axis is descendant).
    for (PNodeId n = 0; n < sub.size(); ++n) {
      if (n != sub.root() && sub.axis(n) == Axis::kDescendant) {
        desc_nodes_.push_back(n);
      }
    }
    chain_len_.assign(desc_nodes_.size(), 0);
  }

  bool Run() { return Rec(0); }

 private:
  bool Rec(size_t i) {
    if (i == desc_nodes_.size()) return Build();
    for (int len = 0; len < bound_; ++len) {
      chain_len_[i] = len;
      if (!Rec(i + 1)) return false;
    }
    return true;
  }

  bool Build() {
    Document doc;
    std::vector<NodeId> image(sub_.size(), kNullNode);
    // Preorder construction (parents precede children in the arena).
    for (PNodeId n = 0; n < sub_.size(); ++n) {
      if (n == sub_.root()) {
        image[n] = doc.AddRoot(sub_.label(n));
        continue;
      }
      NodeId attach = image[sub_.parent(n)];
      if (sub_.axis(n) == Axis::kDescendant) {
        const int len = ChainLenOf(n);
        for (int j = 0; j < len; ++j) attach = doc.AddChild(attach, z_);
      }
      image[n] = doc.AddChild(attach, sub_.label(n));
    }
    return visit_(doc, image[sub_.out()]);
  }

  int ChainLenOf(PNodeId n) const {
    for (size_t i = 0; i < desc_nodes_.size(); ++i) {
      if (desc_nodes_[i] == n) return chain_len_[i];
    }
    PXV_CHECK(false) << "not a descendant-edge node";
    return 0;
  }

  const Pattern& sub_;
  int bound_;
  const std::function<bool(const Document&, NodeId)>& visit_;
  Label z_;
  std::vector<PNodeId> desc_nodes_;
  std::vector<int> chain_len_;
};

bool ForEachCanonicalModel(
    const Pattern& sub, int bound,
    const std::function<bool(const Document&, NodeId)>& visit) {
  return ModelEnumerator(sub, bound, visit).Run();
}

}  // namespace

std::vector<PNodeId> MapOutImages(const Pattern& q, const Pattern& host) {
  std::vector<PNodeId> result;
  if (q.empty() || host.empty()) return result;
  if (q.label(q.root()) != host.label(host.root())) return result;

  PatternMatcher m(q, host);
  const auto mb = q.MainBranch();

  auto preds_ok = [&](PNodeId qn, PNodeId hn) {
    if (q.label(qn) != host.label(hn)) return false;
    for (PNodeId p : q.PredicateChildren(qn)) {
      bool found = false;
      if (q.axis(p) == Axis::kDescendant) {
        found = m.Below(p, hn);
      } else {
        for (PNodeId y : host.children(hn)) {
          if (host.axis(y) == Axis::kChild && m.Sat(p, y)) {
            found = true;
            break;
          }
        }
      }
      if (!found) return false;
    }
    return true;
  };

  std::vector<uint8_t> frontier(host.size(), 0);
  if (!preds_ok(mb[0], host.root())) return result;
  frontier[host.root()] = 1;

  for (size_t i = 1; i < mb.size(); ++i) {
    std::vector<uint8_t> next(host.size(), 0);
    if (q.axis(mb[i]) == Axis::kDescendant) {
      std::vector<uint8_t> under(host.size(), 0);
      for (PNodeId n = 0; n < host.size(); ++n) {
        const PNodeId p = host.parent(n);
        if (p != kNullPNode && (frontier[p] || under[p])) under[n] = 1;
      }
      for (PNodeId n = 0; n < host.size(); ++n) {
        if (under[n] && preds_ok(mb[i], n)) next[n] = 1;
      }
    } else {
      for (PNodeId n = 0; n < host.size(); ++n) {
        if (!frontier[n]) continue;
        for (PNodeId y : host.children(n)) {
          if (host.axis(y) == Axis::kChild && !next[y] && preds_ok(mb[i], y)) {
            next[y] = 1;
          }
        }
      }
    }
    frontier = std::move(next);
  }

  for (PNodeId n = 0; n < host.size(); ++n) {
    if (frontier[n]) result.push_back(n);
  }
  return result;
}

bool ContainsHom(const Pattern& sup, const Pattern& sub) {
  for (PNodeId n : MapOutImages(sup, sub)) {
    if (n == sub.out()) return true;
  }
  return false;
}

int LongestChildChain(const Pattern& q) {
  int best = 0;
  std::vector<int> chain(q.size(), 0);
  for (PNodeId n = 0; n < q.size(); ++n) {
    if (n == q.root()) continue;
    chain[n] =
        (q.axis(n) == Axis::kChild) ? chain[q.parent(n)] + 1 : 0;
    if (chain[n] > best) best = chain[n];
  }
  return best;
}

bool Contains(const Pattern& sup, const Pattern& sub) {
  if (sup.empty() || sub.empty()) return false;
  if (sup.label(sup.root()) != sub.label(sub.root())) return false;
  if (ContainsHom(sup, sub)) return true;

  // Canonical-model refutation/confirmation (Miklau–Suciu): sub ⊑ sup iff
  // sup selects the distinguished node in every canonical model of sub with
  // //-chains of length < bound.
  const int bound = LongestChildChain(sup) + 2;
  int desc_edges = 0;
  for (PNodeId n = 0; n < sub.size(); ++n) {
    if (n != sub.root() && sub.axis(n) == Axis::kDescendant) ++desc_edges;
  }
  double models = 1;
  for (int i = 0; i < desc_edges; ++i) models *= bound;
  PXV_CHECK_LE(models, 8e6) << "canonical-model containment test too large ("
                            << desc_edges << " //-edges, bound " << bound
                            << ")";

  return ForEachCanonicalModel(
      sub, bound, [&](const Document& doc, NodeId out_image) {
        for (NodeId n : Evaluate(sup, doc)) {
          if (n == out_image) return true;  // This model passes; continue.
        }
        return false;  // Counter-model: containment fails.
      });
}

bool Equivalent(const Pattern& a, const Pattern& b) {
  return Contains(a, b) && Contains(b, a);
}

}  // namespace pxv
