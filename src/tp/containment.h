// Containment and equivalence of tree patterns (paper §2; Miklau–Suciu).
//
// q1 ⊑ q2  iff  q1(d) ⊆ q2(d) for every document d.
//
// Containment mappings (homomorphisms respecting labels, /-edges, //-edges,
// root and output node) are sound: a mapping q2 → q1 witnesses q1 ⊑ q2. They
// are complete on the /-only fragment and on the fragments this paper's
// procedures manipulate, but not on full TP{/,//,[]} (containment there is
// coNP-complete). `Contains` is exact: it uses the homomorphism fast path
// and falls back to the Miklau–Suciu canonical-model check, which is
// exponential only in the number of //-edges of the contained query.

#ifndef PXV_TP_CONTAINMENT_H_
#define PXV_TP_CONTAINMENT_H_

#include <vector>

#include "tp/pattern.h"

namespace pxv {

/// Nodes of `host` that out(q) can map to under a containment mapping of q
/// into the tree pattern `host` (root ↦ root; /-edge ↦ /-edge; //-edge ↦ any
/// downward path of ≥ 1 edges).
std::vector<PNodeId> MapOutImages(const Pattern& q, const Pattern& host);

/// True iff there is a containment mapping sup → sub with out ↦ out.
/// Witnesses sub ⊑ sup (sound; complete on //-free sup).
bool ContainsHom(const Pattern& sup, const Pattern& sub);

/// Exact test for sub ⊑ sup. Homomorphism fast path, then canonical models.
bool Contains(const Pattern& sup, const Pattern& sub);

/// Exact equivalence: Contains both ways.
bool Equivalent(const Pattern& a, const Pattern& b);

/// Length (in edges) of the longest /-only chain in q (canonical-model bound).
int LongestChildChain(const Pattern& q);

}  // namespace pxv

#endif  // PXV_TP_CONTAINMENT_H_
