// Evaluation of tree patterns over deterministic documents via embeddings
// (paper §2): q(d) = { e(out(q)) | e an embedding of q into d }.

#ifndef PXV_TP_EVAL_H_
#define PXV_TP_EVAL_H_

#include <vector>

#include "tp/pattern.h"
#include "xml/document.h"

namespace pxv {

/// All output-node images over embeddings of q into d, ascending NodeIds.
/// Empty when lbl(root(q)) ≠ lbl(root(d)) (q not formulated over d) or no
/// embedding exists.
std::vector<NodeId> Evaluate(const Pattern& q, const Document& d);

/// True iff q has at least one embedding into d (Boolean semantics).
bool Matches(const Pattern& q, const Document& d);

/// True iff the pattern subtree rooted at `qn` embeds at document node `dn`
/// (with qn ↦ dn); ancestors/axis of qn are ignored. Exposed for the
/// containment and rewriting modules.
bool SubtreeEmbedsAt(const Pattern& q, PNodeId qn, const Document& d,
                     NodeId dn);

}  // namespace pxv

#endif  // PXV_TP_EVAL_H_
