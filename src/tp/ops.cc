#include "tp/ops.h"

#include "util/check.h"

namespace pxv {

Pattern Prefix(const Pattern& q, int y) {
  const auto mb = q.MainBranch();
  PXV_CHECK(y >= 1 && y <= static_cast<int>(mb.size()))
      << "prefix depth " << y << " out of range";
  Pattern out = q.Clone();
  out.SetOut(mb[y - 1]);
  return out;
}

Pattern Suffix(const Pattern& q, int y) {
  const auto mb = q.MainBranch();
  PXV_CHECK(y >= 1 && y <= static_cast<int>(mb.size()))
      << "suffix depth " << y << " out of range";
  Pattern out;
  PNodeId out_image = kNullPNode;
  GraftSubtree(q, mb[y - 1], &out, kNullPNode, Axis::kChild, &out_image);
  PXV_CHECK_NE(out_image, kNullPNode);
  out.SetOut(out_image);
  return out;
}

std::vector<std::vector<PNodeId>> TokenMbNodes(const Pattern& q) {
  std::vector<std::vector<PNodeId>> tokens;
  for (PNodeId n : q.MainBranch()) {
    const bool new_token =
        tokens.empty() || (n != q.root() && q.axis(n) == Axis::kDescendant);
    if (new_token) tokens.emplace_back();
    tokens.back().push_back(n);
  }
  return tokens;
}

int TokenCount(const Pattern& q) {
  return static_cast<int>(TokenMbNodes(q).size());
}

Pattern Token(const Pattern& q, int i) {
  const auto tokens = TokenMbNodes(q);
  PXV_CHECK(i >= 0 && i < static_cast<int>(tokens.size()));
  const auto& seg = tokens[i];
  Pattern out;
  PNodeId prev = kNullPNode;
  for (PNodeId n : seg) {
    const PNodeId copy = (prev == kNullPNode)
                             ? out.AddRoot(q.label(n))
                             : out.AddChild(prev, q.label(n), Axis::kChild);
    for (PNodeId p : q.PredicateChildren(n)) {
      GraftSubtree(q, p, &out, copy, q.axis(p));
    }
    prev = copy;
  }
  out.SetOut(prev);
  return out;
}

Pattern LastToken(const Pattern& q) { return Token(q, TokenCount(q) - 1); }

std::vector<Label> TokenLabels(const Pattern& q, int i) {
  const auto tokens = TokenMbNodes(q);
  PXV_CHECK(i >= 0 && i < static_cast<int>(tokens.size()));
  std::vector<Label> labels;
  labels.reserve(tokens[i].size());
  for (PNodeId n : tokens[i]) labels.push_back(q.label(n));
  return labels;
}

int MaxPrefixSuffix(const std::vector<Label>& labels) {
  const int m = static_cast<int>(labels.size());
  for (int u = m / 2; u >= 1; --u) {
    bool match = true;
    for (int j = 0; j < u; ++j) {
      if (labels[j] != labels[m - u + j]) {
        match = false;
        break;
      }
    }
    if (match) return u;
  }
  return 0;
}

Pattern Compensate(const Pattern& q1, const Pattern& q2) {
  PXV_CHECK_EQ(q1.OutLabel(), q2.label(q2.root()))
      << "comp requires lbl(out(q1)) == lbl(root(q2))";
  Pattern out = q1.Clone();
  PNodeId new_out = out.out();  // If out(q2) == root(q2).
  for (PNodeId c : q2.children(q2.root())) {
    PNodeId img = kNullPNode;
    GraftSubtree(q2, c, &out, out.out(), q2.axis(c), &img);
    if (img != kNullPNode) new_out = img;
  }
  out.SetOut(new_out);
  return out;
}

Pattern MainBranchOnly(const Pattern& q) {
  Pattern out;
  PNodeId prev = kNullPNode;
  for (PNodeId n : q.MainBranch()) {
    prev = (prev == kNullPNode) ? out.AddRoot(q.label(n))
                                : out.AddChild(prev, q.label(n), q.axis(n));
  }
  out.SetOut(prev);
  return out;
}

Pattern StripOutPredicates(const Pattern& q) {
  Pattern out;
  std::vector<PNodeId> image(q.size(), kNullPNode);
  for (PNodeId n = 0; n < q.size(); ++n) {
    const PNodeId par = q.parent(n);
    if (n != q.root()) {
      if (par == q.out()) continue;                  // Predicate of out.
      if (image[par] == kNullPNode) continue;        // Inside one.
    }
    image[n] = (n == q.root())
                   ? out.AddRoot(q.label(n))
                   : out.AddChild(image[par], q.label(n), q.axis(n));
  }
  PXV_CHECK_NE(image[q.out()], kNullPNode);
  out.SetOut(image[q.out()]);
  return out;
}

Pattern QPrime(const Pattern& q, int k) {
  return StripOutPredicates(Prefix(q, k));
}

Pattern QDoublePrime(const Pattern& q, int k) {
  const auto mb = q.MainBranch();
  PXV_CHECK(k >= 1 && k <= static_cast<int>(mb.size()));
  Pattern out;
  PNodeId prev = kNullPNode;
  for (int i = 0; i < k; ++i) {
    prev = (prev == kNullPNode)
               ? out.AddRoot(q.label(mb[i]))
               : out.AddChild(prev, q.label(mb[i]), q.axis(mb[i]));
  }
  // Depth-k node keeps its full subtree (predicates + former continuation).
  PNodeId new_out = prev;
  for (PNodeId c : q.children(mb[k - 1])) {
    GraftSubtree(q, c, &out, prev, q.axis(c));
  }
  out.SetOut(new_out);
  return out;
}

bool MbHasDescendantEdge(const Pattern& q, int from_depth) {
  const auto mb = q.MainBranch();
  for (int i = std::max(1, from_depth - 1); i < static_cast<int>(mb.size());
       ++i) {
    if (q.axis(mb[i]) == Axis::kDescendant) return true;
  }
  return false;
}

Pattern WithMarkerChild(const Pattern& q, PNodeId n, Label marker) {
  Pattern out = q.Clone();
  out.AddChild(n, marker, Axis::kChild);
  return out;
}

bool IsLinear(const Pattern& q) {
  for (PNodeId n = 0; n < q.size(); ++n) {
    if (q.children(n).size() > 1) return false;
  }
  return q.children(q.out()).empty();
}

}  // namespace pxv
