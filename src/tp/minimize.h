// Tree-pattern minimization (paper §2; Amer-Yahia et al.): remove subsumed
// predicate subtrees so that equivalence of minimized queries becomes
// isomorphism. All rewriting procedures assume minimized inputs.

#ifndef PXV_TP_MINIMIZE_H_
#define PXV_TP_MINIMIZE_H_

#include "tp/pattern.h"

namespace pxv {

/// Returns q without the subtree rooted at `n`. `n` must not lie on the main
/// branch (the main branch is never redundant for the unary semantics).
Pattern RemoveSubtree(const Pattern& q, PNodeId n);

/// Returns an equivalent pattern with no redundant predicate subtree.
Pattern Minimize(const Pattern& q);

/// True iff no predicate subtree of q is redundant.
bool IsMinimal(const Pattern& q);

}  // namespace pxv

#endif  // PXV_TP_MINIMIZE_H_
