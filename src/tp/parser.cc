#include "tp/parser.h"

#include <cctype>
#include <sstream>

#include "util/check.h"

namespace pxv {
namespace {

class XPathParser {
 public:
  explicit XPathParser(std::string_view text) : text_(text) {}

  StatusOr<Pattern> Parse() {
    Pattern q;
    PNodeId last = kNullPNode;
    Status s = ParsePath(&q, kNullPNode, Axis::kChild, &last);
    if (!s.ok()) return s;
    if (pos_ != text_.size()) {
      return Status::Error("trailing characters at offset " +
                           std::to_string(pos_));
    }
    q.SetOut(last);
    return q;
  }

 private:
  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  bool IsLabelChar(char c) const {
    return c != '/' && c != '[' && c != ']' && c != '"' &&
           !std::isspace(static_cast<unsigned char>(c));
  }

  Status ParseLabel(std::string* out) {
    out->clear();
    if (AtEnd()) return Status::Error("expected label, got EOF");
    if (Peek() == '"') {
      ++pos_;
      while (!AtEnd() && Peek() != '"') {
        if (Peek() == '\\' && pos_ + 1 < text_.size()) ++pos_;
        out->push_back(text_[pos_++]);
      }
      if (AtEnd()) return Status::Error("unterminated quote");
      ++pos_;
      return Status::Ok();
    }
    int paren_depth = 0;
    while (!AtEnd()) {
      char c = Peek();
      if (c == '(') {
        ++paren_depth;
      } else if (c == ')') {
        if (paren_depth == 0) break;
        --paren_depth;
      } else if (paren_depth == 0 && !IsLabelChar(c)) {
        break;
      }
      out->push_back(c);
      ++pos_;
    }
    if (paren_depth != 0) return Status::Error("unbalanced '(' in label");
    if (out->empty()) {
      return Status::Error("expected label at offset " + std::to_string(pos_));
    }
    return Status::Ok();
  }

  // Parses an axis separator: "/" → child, "//" → descendant.
  Status ParseAxis(Axis* axis) {
    if (AtEnd() || Peek() != '/') return Status::Error("expected '/'");
    ++pos_;
    if (!AtEnd() && Peek() == '/') {
      ++pos_;
      *axis = Axis::kDescendant;
    } else {
      *axis = Axis::kChild;
    }
    return Status::Ok();
  }

  // step := label predicate*
  Status ParseStep(Pattern* q, PNodeId parent, Axis axis, PNodeId* node) {
    std::string label;
    Status s = ParseLabel(&label);
    if (!s.ok()) return s;
    *node = (parent == kNullPNode) ? q->AddRoot(Intern(label))
                                   : q->AddChild(parent, Intern(label), axis);
    while (!AtEnd() && Peek() == '[') {
      Status ps = ParsePredicate(q, *node);
      if (!ps.ok()) return ps;
    }
    return Status::Ok();
  }

  // path := step (sep step)*; `last` receives the final step's node.
  Status ParsePath(Pattern* q, PNodeId parent, Axis axis, PNodeId* last) {
    PNodeId node = kNullPNode;
    Status s = ParseStep(q, parent, axis, &node);
    if (!s.ok()) return s;
    while (!AtEnd() && Peek() == '/') {
      Axis next_axis;
      Status as = ParseAxis(&next_axis);
      if (!as.ok()) return as;
      PNodeId child = kNullPNode;
      Status cs = ParseStep(q, node, next_axis, &child);
      if (!cs.ok()) return cs;
      node = child;
    }
    *last = node;
    return Status::Ok();
  }

  // predicate := '[' ['.'] [sep] path ']'
  Status ParsePredicate(Pattern* q, PNodeId attach) {
    PXV_CHECK(Peek() == '[');
    ++pos_;
    Axis first_axis = Axis::kChild;
    if (!AtEnd() && Peek() == '.') {
      ++pos_;
      if (AtEnd() || Peek() != '/') {
        return Status::Error("expected '/' after '.' in predicate");
      }
      Status as = ParseAxis(&first_axis);
      if (!as.ok()) return as;
    } else if (!AtEnd() && Peek() == '/') {
      Status as = ParseAxis(&first_axis);
      if (!as.ok()) return as;
    }
    PNodeId last = kNullPNode;
    Status s = ParsePath(q, attach, first_axis, &last);
    if (!s.ok()) return s;
    if (AtEnd() || Peek() != ']') {
      return Status::Error("expected ']' at offset " + std::to_string(pos_));
    }
    ++pos_;
    return Status::Ok();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

bool LabelNeedsQuoting(const std::string& name) {
  if (name.empty()) return true;
  int paren = 0;
  for (char c : name) {
    if (c == '(') ++paren;
    else if (c == ')') {
      if (paren == 0) return true;
      --paren;
    } else if (paren == 0 &&
               (c == '/' || c == '[' || c == ']' || c == '"' ||
                std::isspace(static_cast<unsigned char>(c)))) {
      return true;
    }
  }
  return paren != 0;
}

void EmitLabel(Label label, std::ostringstream* out) {
  const std::string& name = LabelName(label);
  if (!LabelNeedsQuoting(name)) {
    *out << name;
    return;
  }
  *out << '"';
  for (char c : name) {
    if (c == '"' || c == '\\') *out << '\\';
    *out << c;
  }
  *out << '"';
}

void EmitPredSubtree(const Pattern& q, PNodeId n, std::ostringstream* out);

void EmitPredBracket(const Pattern& q, PNodeId n, std::ostringstream* out) {
  *out << '[';
  if (q.axis(n) == Axis::kDescendant) *out << ".//";
  EmitPredSubtree(q, n, out);
  *out << ']';
}

// Prints a predicate subtree; linear chains use / and // separators,
// branching uses nested brackets.
void EmitPredSubtree(const Pattern& q, PNodeId n, std::ostringstream* out) {
  EmitLabel(q.label(n), out);
  const auto& kids = q.children(n);
  if (kids.size() == 1) {
    *out << (q.axis(kids[0]) == Axis::kChild ? "/" : "//");
    EmitPredSubtree(q, kids[0], out);
  } else {
    for (PNodeId c : kids) EmitPredBracket(q, c, out);
  }
}

}  // namespace

StatusOr<Pattern> ParsePattern(std::string_view text) {
  return XPathParser(text).Parse();
}

Pattern Tp(std::string_view text) {
  StatusOr<Pattern> q = ParsePattern(text);
  PXV_CHECK(q.ok()) << "bad pattern '" << std::string(text)
                    << "': " << q.status().message();
  return *std::move(q);
}

std::string ToXPath(const Pattern& q) {
  if (q.empty()) return "";
  std::ostringstream out;
  const auto mb = q.MainBranch();
  for (size_t i = 0; i < mb.size(); ++i) {
    if (i > 0) out << (q.axis(mb[i]) == Axis::kChild ? "/" : "//");
    EmitLabel(q.label(mb[i]), &out);
    for (PNodeId p : q.PredicateChildren(mb[i])) {
      EmitPredBracket(q, p, &out);
    }
  }
  return out.str();
}

}  // namespace pxv
