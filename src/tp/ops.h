// The structural calculus of §4: prefixes, suffixes, tokens, compensation,
// and the derived queries q', q'' used throughout the rewriting results.
//
// Conventions (paper §4, "Notation for splitting queries"):
//   prefix q^(y)  — q with the output mark moved up to the main branch node
//                   of depth y (the rest of the branch becomes a predicate);
//   suffix q_(y)  — the subtree of q rooted at the main branch node of
//                   depth y;
//   tokens        — the /-connected segments of the main branch (split at
//                   //-edges), each with the predicate subtrees of its nodes;
//   comp(q1, q2)  — q2's root merged onto out(q1): navigation continuing
//                   from a view's output (requires lbl(out(q1)) = lbl(root(q2)));
//   q'            — q^(k) with all predicates of its out node removed;
//   v'            — v with all predicates of out(v) removed;
//   q''           — comp(mb(q^(k)), (q^(k))_(k)).

#ifndef PXV_TP_OPS_H_
#define PXV_TP_OPS_H_

#include <vector>

#include "tp/pattern.h"

namespace pxv {

/// q^(y): same tree, out moved to depth y (1 ≤ y ≤ |mb(q)|).
Pattern Prefix(const Pattern& q, int y);

/// q_(y): subtree rooted at the main branch node of depth y; out preserved.
Pattern Suffix(const Pattern& q, int y);

/// Main-branch nodes of each token, in root→out order.
std::vector<std::vector<PNodeId>> TokenMbNodes(const Pattern& q);

/// Number of tokens of q.
int TokenCount(const Pattern& q);

/// Token i (0-based) as a pattern: its /-connected main-branch segment with
/// the predicate subtrees of those nodes; out = last segment node.
Pattern Token(const Pattern& q, int i);

/// The last token of q (the one ending at out(q)).
Pattern LastToken(const Pattern& q);

/// Main-branch labels of token i: (l_1, ..., l_m).
std::vector<Label> TokenLabels(const Pattern& q, int i);

/// Size u of the maximal prefix-suffix of `labels`: the largest u with
/// 2u ≤ m and (l_1..l_u) = (l_{m-u+1}..l_m).
int MaxPrefixSuffix(const std::vector<Label>& labels);

/// comp(q1, q2). Requires lbl(out(q1)) == lbl(root(q2)): q2's root merges
/// onto out(q1), out moves to the image of out(q2).
Pattern Compensate(const Pattern& q1, const Pattern& q2);

/// mb(q): the main branch as a linear pattern without predicates.
Pattern MainBranchOnly(const Pattern& q);

/// q with every predicate subtree of out(q) removed (yields v' for views).
Pattern StripOutPredicates(const Pattern& q);

/// q' of §4: StripOutPredicates(Prefix(q, k)).
Pattern QPrime(const Pattern& q, int k);

/// q'' of §4: linear main branch of q^(k) compensated with the full subtree
/// at depth k.
Pattern QDoublePrime(const Pattern& q, int k);

/// True iff the main branch of q has a //-edge strictly below depth
/// `from_depth` − 1 (i.e. among edges entering depths from_depth..|mb|).
bool MbHasDescendantEdge(const Pattern& q, int from_depth = 2);

/// q with an extra child-axis marker leaf labeled `marker` under node `n`.
Pattern WithMarkerChild(const Pattern& q, PNodeId n, Label marker);

/// True iff q has no predicate subtrees at all (linear pattern).
bool IsLinear(const Pattern& q);

}  // namespace pxv

#endif  // PXV_TP_OPS_H_
