#include "tp/pattern.h"

#include <algorithm>

#include "util/check.h"
#include "xml/canonical.h"

namespace pxv {

PNodeId Pattern::Check(PNodeId n) const {
  PXV_CHECK(n >= 0 && n < size()) << "bad PNodeId " << n;
  return n;
}

PNodeId Pattern::AddRoot(Label label) {
  PXV_CHECK(nodes_.empty()) << "root already exists";
  Node node;
  node.label = label;
  nodes_.push_back(std::move(node));
  out_ = 0;
  return 0;
}

PNodeId Pattern::AddChild(PNodeId parent, Label label, Axis axis) {
  Check(parent);
  Node node;
  node.label = label;
  node.parent = parent;
  node.axis = axis;
  nodes_.push_back(std::move(node));
  const PNodeId id = static_cast<PNodeId>(nodes_.size() - 1);
  nodes_[parent].children.push_back(id);
  return id;
}

void Pattern::SetOut(PNodeId n) { out_ = Check(n); }

std::vector<PNodeId> Pattern::MainBranch() const {
  std::vector<PNodeId> branch;
  for (PNodeId cur = out_; cur != kNullPNode; cur = parent(cur)) {
    branch.push_back(cur);
  }
  std::reverse(branch.begin(), branch.end());
  return branch;
}

bool Pattern::OnMainBranch(PNodeId n) const {
  Check(n);
  for (PNodeId cur = out_; cur != kNullPNode; cur = parent(cur)) {
    if (cur == n) return true;
  }
  return false;
}

int Pattern::Depth(PNodeId n) const {
  int d = 1;
  for (PNodeId cur = Check(n); parent(cur) != kNullPNode; cur = parent(cur)) {
    ++d;
  }
  return d;
}

std::vector<PNodeId> Pattern::PredicateChildren(PNodeId n) const {
  const PNodeId mb_child = MainBranchChild(n);
  std::vector<PNodeId> preds;
  for (PNodeId c : children(n)) {
    if (c != mb_child) preds.push_back(c);
  }
  return preds;
}

PNodeId Pattern::MainBranchChild(PNodeId n) const {
  Check(n);
  if (n == out_) return kNullPNode;
  // Walk up from out; the node whose parent is n is the mb child.
  for (PNodeId cur = out_; cur != kNullPNode; cur = parent(cur)) {
    if (parent(cur) == n) return cur;
  }
  return kNullPNode;
}

std::vector<PNodeId> Pattern::SubtreeNodes(PNodeId n) const {
  std::vector<PNodeId> out, stack{Check(n)};
  while (!stack.empty()) {
    const PNodeId cur = stack.back();
    stack.pop_back();
    out.push_back(cur);
    const auto& kids = children(cur);
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) stack.push_back(*it);
  }
  return out;
}

std::string Pattern::Canon(PNodeId n) const {
  std::vector<std::string> kids;
  kids.reserve(children(n).size());
  for (PNodeId c : children(n)) kids.push_back(Canon(c));
  std::sort(kids.begin(), kids.end());
  std::string out;
  out += (n == out_) ? "O" : "-";
  out += (n == root() || axis(n) == Axis::kChild) ? "/" : "~";
  out += LabelName(label(n));
  out += "(";
  for (const auto& k : kids) out += k + ",";
  out += ")";
  return out;
}

std::string Pattern::CanonicalString() const {
  if (empty()) return "";
  return Canon(root());
}

uint64_t Pattern::Fingerprint() const { return CanonicalHash64(CanonicalString()); }

PNodeId GraftSubtree(const Pattern& src, PNodeId src_node, Pattern* dst,
                     PNodeId dst_parent, Axis axis, PNodeId* out_image) {
  const PNodeId top =
      dst_parent == kNullPNode
          ? dst->AddRoot(src.label(src_node))
          : dst->AddChild(dst_parent, src.label(src_node), axis);
  if (out_image && src.out() == src_node) *out_image = top;
  std::vector<std::pair<PNodeId, PNodeId>> stack{{src_node, top}};
  while (!stack.empty()) {
    const auto [s, d] = stack.back();
    stack.pop_back();
    for (PNodeId c : src.children(s)) {
      const PNodeId copy = dst->AddChild(d, src.label(c), src.axis(c));
      if (out_image && src.out() == c) *out_image = copy;
      stack.emplace_back(c, copy);
    }
  }
  return top;
}

bool IsomorphicPatterns(const Pattern& a, const Pattern& b) {
  return a.CanonicalString() == b.CanonicalString();
}

}  // namespace pxv
