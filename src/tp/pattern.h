// Tree-pattern queries TP (paper §2, Definition 2): unordered, unranked
// rooted trees with L-labeled nodes, child (/) and descendant (//) edges,
// and a distinguished output node. TP is the navigational XPath fragment
// with child/descendant axes and predicates, without wildcards.
//
// The main branch mb(q) is the root→out path; everything hanging off it is
// a predicate subtree. The depth of the root is 1 and of out(q) is |mb(q)|
// (paper convention).

#ifndef PXV_TP_PATTERN_H_
#define PXV_TP_PATTERN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "xml/label.h"

namespace pxv {

/// Index of a node within one Pattern.
using PNodeId = int32_t;
inline constexpr PNodeId kNullPNode = -1;

/// Edge axes: / (child) and // (descendant, ≥ 1 step).
enum class Axis : uint8_t { kChild, kDescendant };

/// A tree-pattern query.
class Pattern {
 public:
  Pattern() = default;

  /// Creates the root; must be called exactly once, first. The root is the
  /// initial output node.
  PNodeId AddRoot(Label label);

  /// Adds a child of `parent` connected by `axis`.
  PNodeId AddChild(PNodeId parent, Label label, Axis axis);

  /// Moves the output marker. `n` may be any node; tree patterns are unary
  /// queries and out determines the main branch.
  void SetOut(PNodeId n);

  PNodeId root() const { return nodes_.empty() ? kNullPNode : 0; }
  PNodeId out() const { return out_; }
  bool empty() const { return nodes_.empty(); }
  int size() const { return static_cast<int>(nodes_.size()); }

  Label label(PNodeId n) const { return nodes_[Check(n)].label; }
  PNodeId parent(PNodeId n) const { return nodes_[Check(n)].parent; }
  /// Axis of the edge from parent(n) into n. Meaningless for the root.
  Axis axis(PNodeId n) const { return nodes_[Check(n)].axis; }
  void SetAxis(PNodeId n, Axis axis) { nodes_[Check(n)].axis = axis; }
  const std::vector<PNodeId>& children(PNodeId n) const {
    return nodes_[Check(n)].children;
  }

  /// lbl(q) := label of the output node (paper shorthand).
  Label OutLabel() const { return label(out()); }

  /// Main branch: the root→out node sequence; mb(q)[0] = root, depth 1.
  std::vector<PNodeId> MainBranch() const;

  /// |mb(q)|: number of main branch nodes = depth of out.
  int MainBranchLength() const { return static_cast<int>(MainBranch().size()); }

  /// True iff `n` lies on the main branch.
  bool OnMainBranch(PNodeId n) const;

  /// Depth of `n` (root = 1).
  int Depth(PNodeId n) const;

  /// Predicate children of `n`: children that are not on the main branch.
  std::vector<PNodeId> PredicateChildren(PNodeId n) const;

  /// The main-branch child of `n`, or kNullPNode (when n == out or n is not
  /// a main branch node).
  PNodeId MainBranchChild(PNodeId n) const;

  /// Nodes of the subtree rooted at `n`, preorder.
  std::vector<PNodeId> SubtreeNodes(PNodeId n) const;

  /// Structural deep copy.
  Pattern Clone() const { return *this; }

  /// Canonical string: equal iff the patterns are isomorphic as unordered
  /// trees with axes and the same out position. This is equality of
  /// minimized queries (paper: equivalence of minimized TPs = isomorphism).
  std::string CanonicalString() const;

  /// Stable 64-bit fingerprint of CanonicalString() (xml/canonical.h's
  /// CanonicalHash64 extended to patterns: //-edges, predicates and the out
  /// node all participate). Isomorphic patterns — e.g. the same predicates
  /// listed in a different order — fingerprint identically, which is what
  /// lets a plan cache serve repeated and isomorphic queries from one slot.
  uint64_t Fingerprint() const;

 private:
  struct Node {
    Label label = 0;
    PNodeId parent = kNullPNode;
    Axis axis = Axis::kChild;
    std::vector<PNodeId> children;
  };

  PNodeId Check(PNodeId n) const;
  std::string Canon(PNodeId n) const;

  std::vector<Node> nodes_;
  PNodeId out_ = kNullPNode;
};

/// Copies the subtree of `src` rooted at `src_node` into `dst` as a child of
/// `dst_parent` with `axis` on the top edge. Returns the copy of `src_node`.
/// If `out_image` is non-null and out(src) lies in the subtree, receives the
/// copied out node.
PNodeId GraftSubtree(const Pattern& src, PNodeId src_node, Pattern* dst,
                     PNodeId dst_parent, Axis axis,
                     PNodeId* out_image = nullptr);

/// True iff the two patterns are isomorphic (≡ for minimized queries).
bool IsomorphicPatterns(const Pattern& a, const Pattern& b);

}  // namespace pxv

#endif  // PXV_TP_PATTERN_H_
