#include "tp/minimize.h"

#include "tp/containment.h"
#include "util/check.h"

namespace pxv {
namespace {

// Rebuilds q skipping the subtree rooted at `skip`.
Pattern CopyWithout(const Pattern& q, PNodeId skip) {
  PXV_CHECK(!q.OnMainBranch(skip)) << "cannot remove a main branch node";
  Pattern out;
  std::vector<PNodeId> image(q.size(), kNullPNode);
  for (PNodeId n = 0; n < q.size(); ++n) {
    if (n == skip) continue;
    const PNodeId par = q.parent(n);
    if (par != kNullPNode && image[par] == kNullPNode) continue;  // Inside skip.
    image[n] = (n == q.root())
                   ? out.AddRoot(q.label(n))
                   : out.AddChild(image[par], q.label(n), q.axis(n));
  }
  PXV_CHECK_NE(image[q.out()], kNullPNode);
  out.SetOut(image[q.out()]);
  return out;
}

// Finds one redundant subtree; returns the reduced pattern or nullopt.
bool TryReduceOnce(const Pattern& q, Pattern* reduced) {
  for (PNodeId n = 0; n < q.size(); ++n) {
    if (n == q.root() || q.OnMainBranch(n)) continue;
    Pattern candidate = CopyWithout(q, n);
    // Removal generalizes (q ⊑ candidate always); the subtree is redundant
    // iff candidate ⊑ q as well.
    if (Contains(q, candidate)) {
      *reduced = std::move(candidate);
      return true;
    }
  }
  return false;
}

}  // namespace

Pattern RemoveSubtree(const Pattern& q, PNodeId n) { return CopyWithout(q, n); }

Pattern Minimize(const Pattern& q) {
  Pattern cur = q;
  Pattern next;
  while (TryReduceOnce(cur, &next)) cur = std::move(next);
  return cur;
}

bool IsMinimal(const Pattern& q) {
  Pattern unused;
  return !TryReduceOnce(q, &unused);
}

}  // namespace pxv
