#include "tp/eval.h"

#include <cstdint>

#include "util/check.h"

namespace pxv {
namespace {

// Memoized subtree-embedding tables: sat[qn][dn] = subtree of q at qn embeds
// with qn ↦ dn; below[qn][dn] = it embeds at some proper descendant of dn.
class Matcher {
 public:
  Matcher(const Pattern& q, const Document& d)
      : q_(q),
        d_(d),
        sat_(static_cast<size_t>(q.size()) * d.size(), kUnknown),
        below_(static_cast<size_t>(q.size()) * d.size(), kUnknown) {}

  bool Sat(PNodeId qn, NodeId dn) {
    int8_t& memo = sat_[Index(qn, dn)];
    if (memo != kUnknown) return memo;
    bool ok = q_.label(qn) == d_.label(dn);
    if (ok) {
      for (PNodeId c : q_.children(qn)) {
        const bool need_desc = q_.axis(c) == Axis::kDescendant;
        bool found = false;
        if (need_desc) {
          found = Below(c, dn);
        } else {
          for (NodeId y : d_.children(dn)) {
            if (Sat(c, y)) {
              found = true;
              break;
            }
          }
        }
        if (!found) {
          ok = false;
          break;
        }
      }
    }
    memo = ok;
    return ok;
  }

  // ∃ proper descendant y of dn with Sat(qn, y).
  bool Below(PNodeId qn, NodeId dn) {
    int8_t& memo = below_[Index(qn, dn)];
    if (memo != kUnknown) return memo;
    bool ok = false;
    for (NodeId y : d_.children(dn)) {
      if (Sat(qn, y) || Below(qn, y)) {
        ok = true;
        break;
      }
    }
    memo = ok;
    return ok;
  }

 private:
  static constexpr int8_t kUnknown = -1;
  size_t Index(PNodeId qn, NodeId dn) const {
    return static_cast<size_t>(qn) * d_.size() + dn;
  }

  const Pattern& q_;
  const Document& d_;
  std::vector<int8_t> sat_, below_;
};

}  // namespace

std::vector<NodeId> Evaluate(const Pattern& q, const Document& d) {
  std::vector<NodeId> result;
  if (q.empty() || d.empty()) return result;
  if (q.label(q.root()) != d.label(d.root())) return result;

  Matcher m(q, d);
  const auto mb = q.MainBranch();

  // Frontier walk down the main branch. A node enters the frontier for mb[i]
  // iff mb[0..i] maps onto its ancestor path and all predicates of mb[0..i]
  // are satisfied at the mapped nodes. Predicates of a main-branch node are
  // exactly its non-main-branch subtrees, which Sat covers; but Sat(mb[i])
  // would also require the rest of the main branch, so predicates are
  // checked individually here.
  auto preds_ok = [&](PNodeId qn, NodeId dn) {
    if (q.label(qn) != d.label(dn)) return false;
    for (PNodeId p : q.PredicateChildren(qn)) {
      const bool need_desc = q.axis(p) == Axis::kDescendant;
      bool found = false;
      if (need_desc) {
        found = m.Below(p, dn);
      } else {
        for (NodeId y : d.children(dn)) {
          if (m.Sat(p, y)) {
            found = true;
            break;
          }
        }
      }
      if (!found) return false;
    }
    return true;
  };

  std::vector<uint8_t> frontier(d.size(), 0);
  if (!preds_ok(mb[0], d.root())) return result;
  frontier[d.root()] = 1;

  for (size_t i = 1; i < mb.size(); ++i) {
    std::vector<uint8_t> next(d.size(), 0);
    const bool desc = q.axis(mb[i]) == Axis::kDescendant;
    // Collect child or descendant candidates of the current frontier.
    // For descendants, propagate a "has frontier ancestor" flag in node-id
    // order (parents precede children in the arena).
    if (desc) {
      std::vector<uint8_t> under(d.size(), 0);
      for (NodeId n = 0; n < d.size(); ++n) {
        const NodeId p = d.parent(n);
        if (p != kNullNode && (frontier[p] || under[p])) under[n] = 1;
      }
      for (NodeId n = 0; n < d.size(); ++n) {
        if (under[n] && preds_ok(mb[i], n)) next[n] = 1;
      }
    } else {
      for (NodeId n = 0; n < d.size(); ++n) {
        if (!frontier[n]) continue;
        for (NodeId y : d.children(n)) {
          if (!next[y] && preds_ok(mb[i], y)) next[y] = 1;
        }
      }
    }
    frontier = std::move(next);
  }

  for (NodeId n = 0; n < d.size(); ++n) {
    if (frontier[n]) result.push_back(n);
  }
  return result;
}

bool Matches(const Pattern& q, const Document& d) {
  return !Evaluate(q, d).empty();
}

bool SubtreeEmbedsAt(const Pattern& q, PNodeId qn, const Document& d,
                     NodeId dn) {
  Matcher m(q, d);
  return m.Sat(qn, dn);
}

}  // namespace pxv
