#include "xml/label.h"

#include <deque>
#include <mutex>
#include <unordered_map>

#include "util/check.h"
#include "util/strings.h"

namespace pxv {
namespace {

// Process-wide interner. A deque keeps string addresses stable so that
// LabelName can hand out long-lived references.
struct Pool {
  std::mutex mu;
  std::deque<std::string> names;
  std::unordered_map<std::string_view, Label> index;
};

Pool& GetPool() {
  static Pool* pool = new Pool();
  return *pool;
}

}  // namespace

Label Intern(std::string_view name) {
  Pool& pool = GetPool();
  std::lock_guard<std::mutex> lock(pool.mu);
  auto it = pool.index.find(name);
  if (it != pool.index.end()) return it->second;
  pool.names.emplace_back(name);
  const Label id = static_cast<Label>(pool.names.size() - 1);
  pool.index.emplace(pool.names.back(), id);
  return id;
}

const std::string& LabelName(Label label) {
  Pool& pool = GetPool();
  std::lock_guard<std::mutex> lock(pool.mu);
  PXV_CHECK_LT(label, pool.names.size());
  return pool.names[label];
}

Label IdMarkerLabel(int64_t persistent_id) {
  // Extension building stamps one marker per copied node; memoize the
  // pid → label mapping so the hot path skips string formatting and the
  // interner's string hash.
  struct MarkerCache {
    std::mutex mu;
    std::unordered_map<int64_t, Label> map;
  };
  static MarkerCache* cache = new MarkerCache();
  {
    std::lock_guard<std::mutex> lock(cache->mu);
    const auto it = cache->map.find(persistent_id);
    if (it != cache->map.end()) return it->second;
  }
  const Label l = Intern("Id(" + std::to_string(persistent_id) + ")");
  std::lock_guard<std::mutex> lock(cache->mu);
  cache->map.emplace(persistent_id, l);
  return l;
}

bool IsIdMarkerLabel(Label label) {
  const std::string& name = LabelName(label);
  return StartsWith(name, "Id(") && name.back() == ')';
}

Label DocLabel(std::string_view view_name) {
  return Intern("doc(" + std::string(view_name) + ")");
}

}  // namespace pxv
