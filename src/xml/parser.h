// Text formats for deterministic documents.
//
// Two formats are supported:
//
//  * Tree-term notation (compact, used throughout tests and examples):
//        IT-personnel(person(name(Rick), bonus(laptop(44, 50), pda(50))))
//    Optional explicit persistent ids with `#`:
//        bonus#5(laptop#24(44#25, 50#26))
//    Labels are runs of characters other than `( ) , #` and whitespace;
//    quoted labels "..." allow anything (with \" and \\ escapes).
//
//  * A minimal XML subset: nested elements, self-closing tags, text nodes
//    (which become leaf labels), and an optional pxv:pid attribute.

#ifndef PXV_XML_PARSER_H_
#define PXV_XML_PARSER_H_

#include <string>
#include <string_view>

#include "util/status.h"
#include "xml/document.h"

namespace pxv {

/// Parses tree-term notation into a Document.
StatusOr<Document> ParseTreeText(std::string_view text);

/// Serializes to tree-term notation. If `with_pids`, emits `#pid` markers.
std::string ToTreeText(const Document& doc, bool with_pids = false);

/// Parses the minimal XML subset.
StatusOr<Document> ParseXml(std::string_view text);

/// Serializes to XML. Persistent ids are emitted as pxv:pid attributes when
/// `with_pids` is set. Labels that are not valid XML names are emitted as
/// <node label="..."> elements.
std::string ToXml(const Document& doc, bool with_pids = false);

}  // namespace pxv

#endif  // PXV_XML_PARSER_H_
