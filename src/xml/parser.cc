#include "xml/parser.h"

#include <cctype>
#include <sstream>

#include "util/check.h"

namespace pxv {
namespace {

// --- Tree-term notation ---------------------------------------------------

class TreeTextParser {
 public:
  explicit TreeTextParser(std::string_view text) : text_(text) {}

  StatusOr<Document> Parse() {
    SkipSpace();
    Document doc;
    Status s = ParseNode(&doc, kNullNode);
    if (!s.ok()) return s;
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::Error("trailing characters at offset " +
                           std::to_string(pos_));
    }
    return doc;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(
                                      text_[pos_]))) {
      ++pos_;
    }
  }

  bool IsLabelChar(char c) const {
    return !std::isspace(static_cast<unsigned char>(c)) && c != '(' &&
           c != ')' && c != ',' && c != '#' && c != '"';
  }

  Status ParseLabel(std::string* out) {
    SkipSpace();
    if (pos_ >= text_.size()) return Status::Error("expected label, got EOF");
    out->clear();
    if (text_[pos_] == '"') {
      ++pos_;
      while (pos_ < text_.size() && text_[pos_] != '"') {
        if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) ++pos_;
        out->push_back(text_[pos_++]);
      }
      if (pos_ >= text_.size()) return Status::Error("unterminated quote");
      ++pos_;  // Closing quote.
      return Status::Ok();
    }
    while (pos_ < text_.size() && IsLabelChar(text_[pos_])) {
      out->push_back(text_[pos_++]);
    }
    if (out->empty()) {
      return Status::Error("expected label at offset " + std::to_string(pos_));
    }
    return Status::Ok();
  }

  Status ParseNode(Document* doc, NodeId parent) {
    std::string label;
    Status s = ParseLabel(&label);
    if (!s.ok()) return s;

    PersistentId pid = kNullPid;
    if (pos_ < text_.size() && text_[pos_] == '#') {
      ++pos_;
      size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ == start) return Status::Error("expected pid after '#'");
      pid = std::stoll(std::string(text_.substr(start, pos_ - start)));
    }

    const NodeId node = (parent == kNullNode)
                            ? doc->AddRoot(Intern(label), pid)
                            : doc->AddChild(parent, Intern(label), pid);

    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '(') {
      ++pos_;
      for (;;) {
        Status cs = ParseNode(doc, node);
        if (!cs.ok()) return cs;
        SkipSpace();
        if (pos_ < text_.size() && text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        break;
      }
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != ')') {
        return Status::Error("expected ')' at offset " + std::to_string(pos_));
      }
      ++pos_;
    }
    return Status::Ok();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

bool NeedsQuoting(const std::string& label) {
  if (label.empty()) return true;
  for (char c : label) {
    if (std::isspace(static_cast<unsigned char>(c)) || c == '(' || c == ')' ||
        c == ',' || c == '#' || c == '"') {
      return true;
    }
  }
  return false;
}

void EmitLabel(const std::string& label, std::ostringstream* out) {
  if (!NeedsQuoting(label)) {
    *out << label;
    return;
  }
  *out << '"';
  for (char c : label) {
    if (c == '"' || c == '\\') *out << '\\';
    *out << c;
  }
  *out << '"';
}

void EmitTreeText(const Document& doc, NodeId n, bool with_pids,
                  std::ostringstream* out) {
  EmitLabel(LabelName(doc.label(n)), out);
  if (with_pids) *out << '#' << doc.pid(n);
  const auto& kids = doc.children(n);
  if (!kids.empty()) {
    *out << '(';
    for (size_t i = 0; i < kids.size(); ++i) {
      if (i) *out << ", ";
      EmitTreeText(doc, kids[i], with_pids, out);
    }
    *out << ')';
  }
}

// --- XML subset ------------------------------------------------------------

bool IsXmlNameStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsXmlNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' ||
         c == '.' || c == ':';
}
bool IsXmlName(const std::string& s) {
  if (s.empty() || !IsXmlNameStart(s[0])) return false;
  for (char c : s) {
    if (!IsXmlNameChar(c)) return false;
  }
  return true;
}

std::string XmlEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '&': out += "&amp;"; break;
      case '"': out += "&quot;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

class XmlParser {
 public:
  explicit XmlParser(std::string_view text) : text_(text) {}

  StatusOr<Document> Parse() {
    SkipSpace();
    Document doc;
    Status s = ParseElement(&doc, kNullNode);
    if (!s.ok()) return s;
    SkipSpace();
    if (pos_ != text_.size()) return Status::Error("trailing content");
    return doc;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  std::string XmlUnescape(const std::string& s) {
    std::string out;
    for (size_t i = 0; i < s.size(); ++i) {
      if (s[i] != '&') {
        out.push_back(s[i]);
        continue;
      }
      const size_t semi = s.find(';', i);
      if (semi == std::string::npos) {
        out.push_back(s[i]);
        continue;
      }
      const std::string ent = s.substr(i + 1, semi - i - 1);
      if (ent == "lt") out.push_back('<');
      else if (ent == "gt") out.push_back('>');
      else if (ent == "amp") out.push_back('&');
      else if (ent == "quot") out.push_back('"');
      else out += "&" + ent + ";";
      i = semi;
    }
    return out;
  }

  Status ParseElement(Document* doc, NodeId parent) {
    if (pos_ >= text_.size() || text_[pos_] != '<') {
      return Status::Error("expected '<'");
    }
    ++pos_;
    // Tag name.
    size_t start = pos_;
    while (pos_ < text_.size() && IsXmlNameChar(text_[pos_])) ++pos_;
    std::string tag(text_.substr(start, pos_ - start));
    if (tag.empty()) return Status::Error("empty tag name");

    // Attributes: only label="..." and pxv:pid="..." are meaningful.
    std::string label_attr;
    PersistentId pid = kNullPid;
    for (;;) {
      SkipSpace();
      if (pos_ >= text_.size()) return Status::Error("unterminated tag");
      if (text_[pos_] == '>' || text_[pos_] == '/') break;
      size_t astart = pos_;
      while (pos_ < text_.size() && IsXmlNameChar(text_[pos_])) ++pos_;
      std::string attr(text_.substr(astart, pos_ - astart));
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != '=') {
        return Status::Error("malformed attribute");
      }
      ++pos_;
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Status::Error("expected attribute value");
      }
      ++pos_;
      size_t vstart = pos_;
      while (pos_ < text_.size() && text_[pos_] != '"') ++pos_;
      if (pos_ >= text_.size()) return Status::Error("unterminated attribute");
      std::string value(text_.substr(vstart, pos_ - vstart));
      ++pos_;
      if (attr == "label") label_attr = XmlUnescape(value);
      if (attr == "pxv:pid") pid = std::stoll(value);
    }

    const std::string label =
        (tag == "node" && !label_attr.empty()) ? label_attr : tag;
    const NodeId node = (parent == kNullNode)
                            ? doc->AddRoot(Intern(label), pid)
                            : doc->AddChild(parent, Intern(label), pid);

    if (text_[pos_] == '/') {
      ++pos_;
      if (pos_ >= text_.size() || text_[pos_] != '>') {
        return Status::Error("expected '/>'");
      }
      ++pos_;
      return Status::Ok();
    }
    ++pos_;  // '>'

    // Children: elements and text runs.
    for (;;) {
      size_t tstart = pos_;
      while (pos_ < text_.size() && text_[pos_] != '<') ++pos_;
      std::string textrun = XmlUnescape(
          std::string(text_.substr(tstart, pos_ - tstart)));
      // Trim whitespace; a nonempty text run becomes a leaf child.
      size_t b = textrun.find_first_not_of(" \t\r\n");
      size_t e = textrun.find_last_not_of(" \t\r\n");
      if (b != std::string::npos) {
        doc->AddChild(node, Intern(textrun.substr(b, e - b + 1)));
      }
      if (pos_ >= text_.size()) return Status::Error("unterminated element");
      if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '/') {
        pos_ += 2;
        size_t cstart = pos_;
        while (pos_ < text_.size() && text_[pos_] != '>') ++pos_;
        std::string close(text_.substr(cstart, pos_ - cstart));
        if (pos_ >= text_.size()) return Status::Error("unterminated close");
        ++pos_;
        if (close != tag) {
          return Status::Error("mismatched close tag: " + close + " vs " + tag);
        }
        return Status::Ok();
      }
      Status s = ParseElement(doc, node);
      if (!s.ok()) return s;
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

void EmitXml(const Document& doc, NodeId n, bool with_pids,
             std::ostringstream* out) {
  const std::string& label = LabelName(doc.label(n));
  const bool plain = IsXmlName(label);
  if (plain) {
    *out << '<' << label;
  } else {
    *out << "<node label=\"" << XmlEscape(label) << '"';
  }
  if (with_pids) *out << " pxv:pid=\"" << doc.pid(n) << '"';
  const auto& kids = doc.children(n);
  if (kids.empty()) {
    *out << "/>";
    return;
  }
  *out << '>';
  for (NodeId kid : kids) EmitXml(doc, kid, with_pids, out);
  *out << "</" << (plain ? label : std::string("node")) << '>';
}

}  // namespace

StatusOr<Document> ParseTreeText(std::string_view text) {
  return TreeTextParser(text).Parse();
}

std::string ToTreeText(const Document& doc, bool with_pids) {
  if (doc.empty()) return "";
  std::ostringstream out;
  EmitTreeText(doc, doc.root(), with_pids, &out);
  return out.str();
}

StatusOr<Document> ParseXml(std::string_view text) {
  return XmlParser(text).Parse();
}

std::string ToXml(const Document& doc, bool with_pids) {
  if (doc.empty()) return "";
  std::ostringstream out;
  EmitXml(doc, doc.root(), with_pids, &out);
  return out.str();
}

}  // namespace pxv
