#include "xml/canonical.h"

#include <algorithm>
#include <vector>

namespace pxv {
namespace {

std::string Canon(const Document& doc, NodeId n, bool with_pids) {
  std::vector<std::string> kids;
  kids.reserve(doc.children(n).size());
  for (NodeId kid : doc.children(n)) kids.push_back(Canon(doc, kid, with_pids));
  std::sort(kids.begin(), kids.end());
  std::string out = LabelName(doc.label(n));
  if (with_pids) out += "#" + std::to_string(doc.pid(n));
  out += "(";
  for (const auto& k : kids) out += k + ",";
  out += ")";
  return out;
}

}  // namespace

std::string CanonicalString(const Document& doc, NodeId n) {
  if (doc.empty()) return "";
  return Canon(doc, n == kNullNode ? doc.root() : n, /*with_pids=*/false);
}

std::string CanonicalStringWithPids(const Document& doc, NodeId n) {
  if (doc.empty()) return "";
  return Canon(doc, n == kNullNode ? doc.root() : n, /*with_pids=*/true);
}

uint64_t CanonicalHash64(std::string_view canonical) {
  uint64_t h = 14695981039346656037ull;  // FNV offset basis.
  for (const char c : canonical) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;  // FNV prime.
  }
  return h;
}

uint64_t CanonicalHash(const Document& doc, NodeId n) {
  return CanonicalHash64(CanonicalString(doc, n));
}

bool Isomorphic(const Document& a, const Document& b) {
  return CanonicalString(a) == CanonicalString(b);
}

bool EqualWithPids(const Document& a, const Document& b) {
  return CanonicalStringWithPids(a) == CanonicalStringWithPids(b);
}

}  // namespace pxv
