#include "xml/document.h"

#include "util/check.h"

namespace pxv {

NodeId Document::Check(NodeId n) const {
  PXV_CHECK(n >= 0 && n < size()) << "bad NodeId " << n;
  return n;
}

NodeId Document::AddRoot(Label label, PersistentId pid) {
  PXV_CHECK(nodes_.empty()) << "root already exists";
  Node node;
  node.label = label;
  node.pid = (pid == kNullPid) ? 0 : pid;
  nodes_.push_back(std::move(node));
  return 0;
}

NodeId Document::AddChild(NodeId parent, Label label, PersistentId pid) {
  Check(parent);
  Node node;
  node.label = label;
  node.parent = parent;
  node.pid = (pid == kNullPid) ? static_cast<PersistentId>(nodes_.size()) : pid;
  nodes_.push_back(std::move(node));
  const NodeId id = static_cast<NodeId>(nodes_.size() - 1);
  nodes_[parent].children.push_back(id);
  return id;
}

int Document::Depth(NodeId n) const {
  int d = 1;
  for (NodeId cur = Check(n); parent(cur) != kNullNode; cur = parent(cur)) ++d;
  return d;
}

bool Document::IsProperAncestor(NodeId anc, NodeId n) const {
  Check(anc);
  for (NodeId cur = parent(Check(n)); cur != kNullNode; cur = parent(cur)) {
    if (cur == anc) return true;
  }
  return false;
}

std::vector<NodeId> Document::SubtreeNodes(NodeId n) const {
  std::vector<NodeId> out, stack{Check(n)};
  while (!stack.empty()) {
    const NodeId cur = stack.back();
    stack.pop_back();
    out.push_back(cur);
    const auto& kids = children(cur);
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) stack.push_back(*it);
  }
  return out;
}

Document Document::Subtree(NodeId n) const {
  Document out;
  out.AddRoot(label(Check(n)), pid(n));
  // Recursive copy via explicit stack of (source node, destination node).
  std::vector<std::pair<NodeId, NodeId>> stack{{n, 0}};
  while (!stack.empty()) {
    const auto [src, dst] = stack.back();
    stack.pop_back();
    for (NodeId child : children(src)) {
      const NodeId copy = out.AddChild(dst, label(child), pid(child));
      stack.emplace_back(child, copy);
    }
  }
  return out;
}

NodeId Document::FindByPid(PersistentId pid) const {
  for (NodeId n = 0; n < size(); ++n) {
    if (nodes_[n].pid == pid) return n;
  }
  return kNullNode;
}

std::vector<NodeId> Document::FindAllByPid(PersistentId pid) const {
  std::vector<NodeId> out;
  for (NodeId n = 0; n < size(); ++n) {
    if (nodes_[n].pid == pid) out.push_back(n);
  }
  return out;
}

}  // namespace pxv
