// Canonical forms for unordered trees. Documents are unordered (paper §2),
// so equality and hashing must be invariant under sibling permutation.

#ifndef PXV_XML_CANONICAL_H_
#define PXV_XML_CANONICAL_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "xml/document.h"

namespace pxv {

/// Stable 64-bit FNV-1a of a canonical string. Unlike std::hash, the value
/// is fixed by the algorithm (not the standard library build), so it can be
/// persisted, compared across processes, and used as a cache fingerprint.
/// Shared by Document hashing below and tp::Pattern::Fingerprint, which
/// extends the same unordered-tree canonicalization to tree patterns
/// (axes, predicates and the output node included).
uint64_t CanonicalHash64(std::string_view canonical);

/// Canonical string of the subtree rooted at `n` (root = whole document if
/// n == kNullNode). Two subtrees are isomorphic as unordered labeled trees
/// iff their canonical strings are equal. Persistent ids are ignored.
std::string CanonicalString(const Document& doc, NodeId n = kNullNode);

/// Canonical string that also embeds persistent ids; equal iff the subtrees
/// are isomorphic *and* match pid-for-pid.
std::string CanonicalStringWithPids(const Document& doc, NodeId n = kNullNode);

/// 64-bit hash of CanonicalString.
uint64_t CanonicalHash(const Document& doc, NodeId n = kNullNode);

/// Unordered-tree isomorphism (ignores pids).
bool Isomorphic(const Document& a, const Document& b);

/// Isomorphism that additionally requires persistent ids to agree.
bool EqualWithPids(const Document& a, const Document& b);

}  // namespace pxv

#endif  // PXV_XML_CANONICAL_H_
