// Interned labels. The paper assumes a label set L subsuming XML tags and
// values; we intern every label into a process-wide pool so that documents,
// p-documents and queries compare labels by a 32-bit id.

#ifndef PXV_XML_LABEL_H_
#define PXV_XML_LABEL_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace pxv {

/// Interned label id. Equality of labels is equality of ids.
using Label = uint32_t;

/// Interns `name`, returning its id. Thread-safe; idempotent.
Label Intern(std::string_view name);

/// Returns the spelling of an interned label. The reference stays valid for
/// the lifetime of the process.
const std::string& LabelName(Label label);

/// Builds the reserved marker label "Id(<pid>)" used in view extensions
/// (paper §3.1: a fresh child labeled Id(n) is plugged below every node of a
/// view extension so that rewritings can pinpoint node occurrences).
Label IdMarkerLabel(int64_t persistent_id);

/// True iff `label` is an Id(...) marker label.
bool IsIdMarkerLabel(Label label);

/// Reserved label for the root of a view extension document: "doc(<view>)".
Label DocLabel(std::string_view view_name);

}  // namespace pxv

#endif  // PXV_XML_LABEL_H_
