// Deterministic XML documents (paper §2): unranked, unordered, rooted,
// labeled trees with persistent node identifiers.
//
// Nodes live in a contiguous arena indexed by NodeId. Each node additionally
// carries a PersistentId — the paper's Id(n) — which survives sampling from a
// p-document and copying into view extensions, and which implements the
// "persistent node Ids" result semantics of §3.

#ifndef PXV_XML_DOCUMENT_H_
#define PXV_XML_DOCUMENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "xml/label.h"

namespace pxv {

/// Arena index of a node within one Document (not stable across documents).
using NodeId = int32_t;
inline constexpr NodeId kNullNode = -1;

/// Persistent identifier (the paper's Id(n)); stable across worlds, view
/// extensions and copies.
using PersistentId = int64_t;
inline constexpr PersistentId kNullPid = -1;

/// An unordered labeled tree.
class Document {
 public:
  Document() = default;

  /// Creates the root node. Must be called exactly once, first.
  NodeId AddRoot(Label label, PersistentId pid = kNullPid);

  /// Adds a child of `parent`. `pid` defaults to the node's arena index.
  NodeId AddChild(NodeId parent, Label label, PersistentId pid = kNullPid);

  NodeId root() const { return nodes_.empty() ? kNullNode : 0; }
  bool empty() const { return nodes_.empty(); }
  int size() const { return static_cast<int>(nodes_.size()); }

  Label label(NodeId n) const { return nodes_[Check(n)].label; }
  NodeId parent(NodeId n) const { return nodes_[Check(n)].parent; }
  const std::vector<NodeId>& children(NodeId n) const {
    return nodes_[Check(n)].children;
  }
  PersistentId pid(NodeId n) const { return nodes_[Check(n)].pid; }
  void set_pid(NodeId n, PersistentId pid) { nodes_[Check(n)].pid = pid; }

  /// Root label == the paper's "document name".
  Label name() const { return label(root()); }

  /// Depth of `n`: root has depth 1 (paper convention).
  int Depth(NodeId n) const;

  /// True iff `anc` is a proper ancestor of `n`.
  bool IsProperAncestor(NodeId anc, NodeId n) const;

  /// All nodes of the subtree rooted at `n` (preorder, `n` first).
  std::vector<NodeId> SubtreeNodes(NodeId n) const;

  /// The subdocument d_n rooted at `n` (paper §2), preserving pids.
  Document Subtree(NodeId n) const;

  /// First node with the given persistent id, or kNullNode.
  NodeId FindByPid(PersistentId pid) const;

  /// All nodes with the given persistent id (extensions may repeat pids §3.1).
  std::vector<NodeId> FindAllByPid(PersistentId pid) const;

 private:
  struct Node {
    Label label = 0;
    NodeId parent = kNullNode;
    PersistentId pid = kNullPid;
    std::vector<NodeId> children;
  };

  NodeId Check(NodeId n) const;

  std::vector<Node> nodes_;
};

}  // namespace pxv

#endif  // PXV_XML_DOCUMENT_H_
