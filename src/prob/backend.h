// The ProbBackend seam: every probability the query-evaluation and rewriting
// layers need is served by a backend, so the exact DP engine, the naive
// possible-world oracle, and any future implementation (cached, sharded,
// remote) are interchangeable behind one interface. A backend may *decline*
// a call (error Status) when it falls outside its tractable range — the
// exact DP declines conjunctions whose packed state exceeds the slot cap,
// the naive oracle declines p-documents whose px-space explodes — and
// EvalSession falls back to the next backend in its chain.

#ifndef PXV_PROB_BACKEND_H_
#define PXV_PROB_BACKEND_H_

#include <vector>

#include "prob/engine.h"
#include "pxml/pdocument.h"
#include "util/status.h"

namespace pxv {

/// Abstract probability computation over one p-document.
class ProbBackend {
 public:
  virtual ~ProbBackend() = default;

  /// Stable identifier for diagnostics ("exact-dp", "naive").
  virtual const char* name() const = 0;

  /// Pr(every goal embeds into a random world, respecting anchors).
  virtual StatusOr<double> Conjunction(const PDocument& pd,
                                       const std::vector<Goal>& goals) = 0;

  /// Pr(n ∈ (m1 ∩ … ∩ mk)(P)) for every candidate node n, ascending node
  /// id, zero-probability entries omitted.
  virtual StatusOr<std::vector<NodeProb>> BatchAnchored(
      const PDocument& pd, const std::vector<const Pattern*>& members) = 0;
};

/// Exact bottom-up DP (prob/engine): PTime in |P̂|, exponential in query
/// size. Declines when the conjunction needs more than
/// kMaxConjunctionSlots packed DP slots.
class ExactDpBackend : public ProbBackend {
 public:
  const char* name() const override { return "exact-dp"; }
  StatusOr<double> Conjunction(const PDocument& pd,
                               const std::vector<Goal>& goals) override;
  StatusOr<std::vector<NodeProb>> BatchAnchored(
      const PDocument& pd,
      const std::vector<const Pattern*>& members) override;
};

/// Exhaustive possible-world enumeration (prob/naive): exact for any query
/// size but exponential in the number of distributional nodes. Declines
/// p-documents whose px-space exceeds `max_worlds`.
class NaiveBackend : public ProbBackend {
 public:
  explicit NaiveBackend(int max_worlds = 1 << 16) : max_worlds_(max_worlds) {}

  const char* name() const override { return "naive"; }
  StatusOr<double> Conjunction(const PDocument& pd,
                               const std::vector<Goal>& goals) override;
  StatusOr<std::vector<NodeProb>> BatchAnchored(
      const PDocument& pd,
      const std::vector<const Pattern*>& members) override;

 private:
  int max_worlds_;
};

}  // namespace pxv

#endif  // PXV_PROB_BACKEND_H_
