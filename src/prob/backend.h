// The ProbBackend seam: every probability the query-evaluation and rewriting
// layers need is served by a backend, so the exact DP engine, the naive
// possible-world oracle, and any future implementation (cached, sharded,
// remote) are interchangeable behind one interface. A backend may *decline*
// a call (error Status) when it falls outside its tractable range — the
// exact DP declines conjunctions whose packed state exceeds the slot cap,
// the naive oracle declines p-documents whose px-space explodes — and
// EvalSession falls back to the next backend in its chain.

#ifndef PXV_PROB_BACKEND_H_
#define PXV_PROB_BACKEND_H_

#include <vector>

#include "prob/engine.h"
#include "pxml/pdocument.h"
#include "util/status.h"

namespace pxv {

/// Abstract probability computation over one p-document.
class ProbBackend {
 public:
  virtual ~ProbBackend() = default;

  /// Stable identifier for diagnostics ("exact-dp", "naive").
  virtual const char* name() const = 0;

  /// Pr(every goal embeds into a random world, respecting anchors).
  virtual StatusOr<double> Conjunction(const PDocument& pd,
                                       const std::vector<Goal>& goals) = 0;

  /// Pr(n ∈ (m1 ∩ … ∩ mk)(P)) for every candidate node n, ascending node
  /// id, zero-probability entries omitted.
  virtual StatusOr<std::vector<NodeProb>> BatchAnchored(
      const PDocument& pd, const std::vector<const Pattern*>& members) = 0;

  /// result[i] = q_i(P̂) for every member (members must share their output
  /// label). Backends that can answer several queries in one pass override
  /// this; the default serves each member with BatchAnchored.
  virtual StatusOr<std::vector<std::vector<NodeProb>>> BatchAnchoredMany(
      const PDocument& pd, const std::vector<const Pattern*>& members) {
    std::vector<std::vector<NodeProb>> out;
    out.reserve(members.size());
    for (const Pattern* m : members) {
      StatusOr<std::vector<NodeProb>> r = BatchAnchored(pd, {m});
      if (!r.ok()) return r.status();
      out.push_back(*std::move(r));
    }
    return out;
  }
};

/// Exact bottom-up DP (prob/engine): PTime in |P̂|, exponential in query
/// size. Declines when the conjunction needs more than
/// kMaxConjunctionSlots packed DP slots.
///
/// The backend owns the flat-dist kernel's scratch state (arena + table
/// pool + profile counters, prob/dist.h): memory is recycled across calls,
/// so steady-state evaluation performs no heap allocation. Like the
/// EvalSession that owns it, a backend is single-threaded state — one per
/// thread.
///
/// Support pruning (`ExactDpOptions::prune_eps`): when eps > 0, every
/// intermediate distribution drops entries whose mass is <= eps after each
/// combine/rewrite step, trading exactness for smaller tables. Error
/// bound: each pruned entry forfeits at most eps of probability mass, and
/// a state is pruned at most once per DP step that touches it, so any
/// reported probability deviates from the exact value by at most
///   eps * S * |P̂|
/// where S is the largest intermediate support (at most 4^min(live slots,
/// kNarrowSlotCap) and in practice far smaller) and |P̂| the p-document
/// size. Results within eps of 0 may be dropped from batch outputs
/// entirely. The default eps = 0 keeps the DP exact; callers enabling it
/// should pick eps well below the probabilities they care about (e.g.
/// kProbEps = 1e-12 from util/numeric.h, matching the result-set filter).
struct ExactDpOptions {
  double prune_eps = 0.0;
  /// Pin the portable (scalar) convolution kernel instead of letting the
  /// backend resolve the best table for the host CPU at construction
  /// (prob/simd.h). The PXV_FORCE_SCALAR environment variable forces this
  /// process-wide regardless. Either way results are bitwise identical —
  /// the knob exists for A/B verification and the CI matrix.
  bool force_scalar = false;
  /// Sibling-product segment trees at high-fanout Combine sites (see
  /// EngineOptions::sibling_tree). On by default.
  bool sibling_tree = true;
  /// Memoize finished per-subtree DP regions keyed by (query signature,
  /// node, subtree version) so a re-evaluation after a delta update (see
  /// pxml/pdocument.h) recomputes only the dirty root-to-change spines —
  /// O(depth × |delta|) instead of O(|P̂|) — with bit-identical results.
  /// Off by default: the memo pays a capture clone per region on cold runs
  /// and only earns it back when the same document is re-evaluated across
  /// mutations (the DocumentStore serving path). Ignored (per call) for
  /// fixed-anchor conjunctions and when prune_eps > 0.
  bool cache_subtrees = false;
};

class ExactDpBackend : public ProbBackend {
 public:
  ExactDpBackend() : ExactDpBackend(ExactDpOptions{}) {}
  explicit ExactDpBackend(const ExactDpOptions& options);
  ~ExactDpBackend() override;

  const char* name() const override { return "exact-dp"; }
  StatusOr<double> Conjunction(const PDocument& pd,
                               const std::vector<Goal>& goals) override;
  StatusOr<std::vector<NodeProb>> BatchAnchored(
      const PDocument& pd,
      const std::vector<const Pattern*>& members) override;
  /// One joint DP pass for all members (Σ|q_i| slots); declines over the
  /// slot cap like BatchAnchored.
  StatusOr<std::vector<std::vector<NodeProb>>> BatchAnchoredMany(
      const PDocument& pd,
      const std::vector<const Pattern*>& members) override;

  /// Cumulative kernel counters for every call served by this backend.
  const DistProfile& profile() const { return scratch_.profile(); }

  /// Name of the vector kernel this backend resolved at construction
  /// ("avx2" or "portable"; prob/simd.h).
  const char* kernel_name() const;

  /// Incremental-memo counters; zeros when cache_subtrees is off.
  SubtreeCacheStats subtree_cache_stats() const;

  /// Drops the subtree memo (no-op when cache_subtrees is off), keeping the
  /// backend — scratch, profile — intact. Required after an id remap of the
  /// evaluated document (PDocument::Compact): memo entries are NodeId-keyed.
  void InvalidateSubtreeCache();

 private:
  EngineOptions RunOptions(const std::vector<const Pattern*>& members);

  ExactDpOptions options_;
  const KernelOps* kernel_;   // Resolved once at construction (simd.h).
  DpScratch scratch_;
  SubtreeCachePtr cache_;     // Non-null iff options_.cache_subtrees.
  std::string run_signature_; // Scratch for the current call's cache key.
};

/// Exhaustive possible-world enumeration (prob/naive): exact for any query
/// size but exponential in the number of distributional nodes. Declines
/// p-documents whose px-space exceeds `max_worlds`.
class NaiveBackend : public ProbBackend {
 public:
  explicit NaiveBackend(int max_worlds = 1 << 16) : max_worlds_(max_worlds) {}

  const char* name() const override { return "naive"; }
  StatusOr<double> Conjunction(const PDocument& pd,
                               const std::vector<Goal>& goals) override;
  StatusOr<std::vector<NodeProb>> BatchAnchored(
      const PDocument& pd,
      const std::vector<const Pattern*>& members) override;

 private:
  int max_worlds_;
};

}  // namespace pxv

#endif  // PXV_PROB_BACKEND_H_
