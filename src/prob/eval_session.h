// EvalSession: per-document evaluation state for the probability stack.
//
// A session owns everything derivable from one p-document that repeated
// queries would otherwise recompute — the label→nodes index, interned
// pattern metadata keyed by canonical form, and memoized batched q(P̂)
// results — plus the ProbBackend chain that actually serves probabilities.
// query_eval, view materialization and the rewriting execution paths all
// route through this seam, so swapping or stacking backends (exact DP,
// naive oracle, future cached/sharded implementations) is a one-line
// change, and evaluating k views over one document costs k single DP
// passes instead of k × |candidates|.

#ifndef PXV_PROB_EVAL_SESSION_H_
#define PXV_PROB_EVAL_SESSION_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "prob/backend.h"
#include "prob/circuit_backend.h"
#include "pxml/pdocument.h"
#include "tp/pattern.h"
#include "tpi/intersection.h"

namespace pxv {

/// Backend preference for an EvalSession.
enum class BackendKind {
  kAuto,   ///< Exact DP first; world enumeration when the DP declines.
  kExact,  ///< Exact DP only; dies if the query exceeds the DP slot cap.
  kNaive,  ///< World enumeration only; dies if the px-space explodes.
  /// Lineage-circuit serving (prob/circuit_backend.h): the first batched
  /// evaluation records and compiles the DP's arithmetic; later evaluations
  /// of the same document structure are served by value re-propagation.
  /// World enumeration backs it up when it declines. Sensitivities() is
  /// available under this kind.
  kCircuit,
};

struct EvalOptions {
  BackendKind backend = BackendKind::kAuto;
  /// World cap for the naive oracle before it declines.
  int naive_max_worlds = 1 << 16;
  /// Memoize batched q(P̂) results per canonical pattern.
  bool cache_results = true;
  /// Support pruning threshold for the exact DP (0 = exact; see the error
  /// bound on ExactDpOptions in prob/backend.h).
  double prune_eps = 0.0;
  /// Incremental per-subtree memoization in the exact DP, for sessions that
  /// outlive mutations of their document (ExactDpOptions::cache_subtrees).
  bool cache_subtrees = false;
  /// Pin the portable convolution kernel (ExactDpOptions::force_scalar).
  bool force_scalar = false;
  /// Sibling-product segment trees at high-fanout Combine sites
  /// (ExactDpOptions::sibling_tree). On by default.
  bool sibling_tree = true;
};

/// Per-document derived state + backend routing. Not thread-safe; create
/// one session per document per thread.
///
/// Sessions may outlive mutations of their document (the DocumentStore
/// write path): every derived structure keyed on content — the label index
/// and the memoized batch results — is invalidated automatically when the
/// document's uid changes, while the exact-DP subtree memo (when enabled)
/// persists and serves the unchanged subtrees of the next evaluation.
class EvalSession {
 public:
  explicit EvalSession(const PDocument& pd, EvalOptions options = {});

  const PDocument& doc() const { return *pd_; }
  const EvalOptions& options() const { return options_; }

  /// Ordinary nodes labeled `l`, ascending — served from the session's
  /// label index (built lazily on first use, then reused).
  const std::vector<NodeId>& NodesWithLabel(Label l) const;

  /// q(P̂) via the batched single-pass engine; memoized per canonical
  /// pattern when caching is on. The reference stays valid for the session's
  /// lifetime while caching is on; with caching off it is reused by the next
  /// evaluation call — copy the results if they must outlive it.
  const std::vector<NodeProb>& EvaluateTP(const Pattern& q);

  /// Evaluates (and memoizes) a whole set of queries, answering every
  /// group that shares an output label in ONE joint DP pass (chunked to the
  /// engine slot cap) instead of one pass per query. Subsequent
  /// EvaluateTP calls are cache hits. Queries whose group cannot be served
  /// jointly (slot overflow, backend declines) are simply left for
  /// EvaluateTP's per-query path — prefetching never fails. No-op when
  /// result caching is off.
  void PrefetchTP(const std::vector<const Pattern*>& queries);

  /// Evaluates every query, memoizing like EvaluateTP; result[i]
  /// corresponds to queries[i]. Under BackendKind::kCircuit this is the
  /// standing-query batch path: each query registers on the session's ONE
  /// shared lineage circuit, so the first query served after a document
  /// delta pays a single merged dirty-cone propagation and the rest replay
  /// their registered outputs. Other backends prefetch jointly where the
  /// slot cap allows.
  std::vector<std::vector<NodeProb>> EvaluateAll(
      const std::vector<const Pattern*>& queries);

  /// (q1 ∩ … ∩ qk)(P̂) with all members anchored to the same node, one pass.
  std::vector<NodeProb> EvaluateTPI(const TpIntersection& q);

  /// Pr(n ∈ q(P)). Served from the memoized batch when available; a second
  /// point query on the same pattern triggers the batch so later points are
  /// O(1) lookups.
  double SelectionProbability(const Pattern& q, NodeId n);

  /// Pr(out(q) selected at *some* node of `anchor`) (§3.1).
  double SelectionProbabilityAnyOf(const Pattern& q,
                                   const std::vector<NodeId>& anchor);

  /// Pr(all goals hold simultaneously); see prob/engine.h.
  double JointProbability(const std::vector<Goal>& goals);

  /// Pr(q matches P) — Boolean (out unanchored).
  double BooleanProbability(const Pattern& q);

  /// q(P̂) under the hypothetical probability overrides in `changes` —
  /// results exactly as if the overrides had been committed, while the
  /// document, the session caches and the circuit all stay bitwise
  /// untouched. With BackendKind::kCircuit the answer is one overlay
  /// re-propagation through the shared lineage circuit (overlay → read →
  /// restore); overrides that flip a recorded guard, or any other backend
  /// kind, fall back to a fresh evaluation of a mutated copy — both routes
  /// produce the same bits. Errors when the overrides are not valid
  /// probabilities (out of [0, 1], or a mux/exp mass sum pushed past 1).
  StatusOr<std::vector<NodeProb>> WhatIf(
      const Pattern& q,
      const std::vector<std::pair<CircuitInput, double>>& changes);

  /// ∂Pr(n ∈ q(P))/∂p for every edge/exp probability the evaluation reads,
  /// descending |gradient| — which probabilities drive this answer, from
  /// the compiled lineage circuit's backward pass. Requires
  /// BackendKind::kCircuit; empty when `n` is not an answer candidate of
  /// `q`. Dies when the circuit route declines the query (slot or gate
  /// cap) — probe EvaluateTP first for queries near the caps.
  std::vector<LineageCircuit::Sensitivity> Sensitivities(const Pattern& q,
                                                         NodeId n);

  /// The lineage-circuit backend when this session runs
  /// BackendKind::kCircuit, else null — shared-circuit shape introspection
  /// (CircuitBackend::shared_stats, merged counters).
  const CircuitBackend* circuit_backend() const;

  /// Backend that served the most recent probability ("exact-dp"/"naive").
  const char* last_backend() const { return last_backend_; }
  /// Point or batch answers served from the memoized cache.
  int cache_hits() const { return cache_hits_; }
  /// Flat-dist kernel counters of the exact-DP backend, cumulative over the
  /// session; null when the session runs naive-only.
  const DistProfile* dp_profile() const { return dp_profile_; }
  /// Incremental subtree-memo counters of the exact-DP backend; zeros when
  /// cache_subtrees is off or the session runs naive-only.
  SubtreeCacheStats subtree_cache_stats() const;

  /// Scoped invalidation for a document whose node ids were remapped
  /// (PDocument::Compact): drops ONLY the exact-DP subtree memo — its
  /// entries are NodeId-keyed and version equality does not protect them
  /// across a remap — while every uid-keyed structure (result cache, label
  /// index, analysis buffers) re-keys off the compaction's fresh uid by
  /// itself. The session object, backend chain, scratch arenas and
  /// counters all survive; no-op without an exact-DP backend or memo.
  void InvalidateSubtreeMemo();

 private:
  // Drops every uid-derived structure when the document mutated since the
  // last call, so a session can never serve results computed for an earlier
  // document version. Called by every public evaluation entry point.
  void MaybeInvalidate();
  struct TpEntry {
    std::vector<NodeProb> results;
    std::unordered_map<NodeId, double> by_node;  // Lazy point-lookup index.
    int point_queries = 0;
    bool computed = false;
    bool by_node_built = false;
  };

  TpEntry& Entry(const Pattern& q);
  void ComputeBatch(const std::vector<const Pattern*>& members, TpEntry* e);
  double Conjunction(const std::vector<Goal>& goals);

  const PDocument* pd_;
  EvalOptions options_;
  uint64_t doc_uid_ = 0;  // uid the result cache was derived from.
  mutable uint64_t index_uid_ = 0;  // uid the label index was built from.
  mutable std::unique_ptr<LabelIndex> index_;  // Built on first use.
  std::vector<std::unique_ptr<ProbBackend>> chain_;
  std::unordered_map<std::string, TpEntry> tp_cache_;
  TpEntry scratch_;  // Backing storage when caching is off.
  const char* last_backend_ = "";
  const DistProfile* dp_profile_ = nullptr;
  int cache_hits_ = 0;
};

}  // namespace pxv

#endif  // PXV_PROB_EVAL_SESSION_H_
