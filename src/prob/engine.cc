// Flat-kernel implementation of the bottom-up DP declared in engine.h.
//
// Two ideas on top of the textbook pass (see engine_reference.cc for the
// plain version):
//
//  1. Flat arena-backed distributions. Every sparse (A, D) distribution is
//     a FlatDist (prob/dist.h): open addressing over one pool block, so a
//     pass bump-allocates and recycles blocks instead of exercising
//     malloc/free per hash-map node.
//
//  2. Live-slot key narrowing. For each p-document subtree, the set of
//     query slots that can possibly be set is known up front: a slot's
//     label must occur on an ordinary node of the subtree. Each node's
//     *frame* is its subtree's live slot list; while at most
//     kNarrowSlotCap (32) slots are live, the whole subtree's algebra runs
//     on a 1-word key holding 2 bits per live slot — one hash, one
//     compare, one OR per operation instead of four. Keys are remapped
//     (a bit permutation) only where a region crosses into a parent frame
//     with a different live set; frames with more than 32 live slots fall
//     back to the 256-bit WideKey over global slot positions. Regions
//     travel upward in their own frame until a combine forces a common
//     one, so deterministic chains never pay a remap.
//
// Candidate application (Rewrite) is also mask-compiled per node: each
// candidate slot becomes a (need, set) key-mask pair, so applying it to a
// key is an AND+compare+OR rather than per-child bit probing.

#include "prob/engine.h"

#include <algorithm>
#include <array>
#include <cstdint>
#include <new>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "prob/circuit.h"
#include "prob/simd.h"
#include "util/check.h"

namespace pxv {

// Incremental per-subtree memo (see engine.h). Lives at namespace scope so
// ExactDpBackend can own one through the opaque pointer; the entry payloads
// are plain FlatDists over the cache's own persistent scratch (its arena is
// only reset when every signature is evicted at once).
class SubtreeCache {
 public:
  struct Entry {
    uint64_t version = 0;
    NodeId frame = kNullNode;
    bool wide = false;
    FlatDist<uint64_t> base_n;  // Valid iff !wide …
    FlatDist<WideKey> base_w;   // … valid iff wide.
    std::vector<NodeId> tracked_nodes;
    std::vector<FlatDist<uint64_t>> tracked_n;
    std::vector<FlatDist<WideKey>> tracked_w;
  };

  // Memoized sibling-product segment tree of one high-fanout Combine site
  // (see Engine::Combine). Heap-ordered internal products over the site's
  // post-identity-drop child list: internal node t in [1, n) holds the
  // convolution of its two children (2t, 2t+1); leaf j maps to heap index
  // n + j and is node kids[j]'s base dist (never stored — the subtree memo
  // or a recompute reproduces it bit-identically). Validity is per leaf via
  // the child's subtree version stamp: an incremental delta dirties only
  // the O(log n) internal products on the changed leaves' root paths.
  struct SiblingTree {
    bool wide = false;
    std::vector<NodeId> kids;        // Child ids, post identity-drop order.
    std::vector<uint64_t> versions;  // pd.version(kids[j]) at capture.
    std::vector<FlatDist<uint64_t>> prod_n;  // [1, n) used iff !wide …
    std::vector<FlatDist<WideKey>> prod_w;   // … iff wide. Cache-pool blocks.
  };

  // Frame epoch + per-node entries of one query signature.
  struct SigState {
    bool valid = false;
    bool root_wide = false;
    std::vector<int8_t> root_slots;  // Root live slot list (narrow roots).
    std::unordered_map<NodeId, Entry> entries;
    std::unordered_map<NodeId, SiblingTree> trees;  // High-fanout sites.
  };

  // Signatures a cache holds before evicting wholesale. Eviction drops
  // everything at once so the arena can be reclaimed wholesale too (blocks
  // bump-allocated from it are never returned individually).
  static constexpr size_t kMaxSignatures = 16;

  SigState* Acquire(const std::string& sig) {
    auto it = sigs_.find(sig);
    if (it != sigs_.end()) return &it->second;
    if (sigs_.size() >= kMaxSignatures) {
      sigs_.clear();        // Releases every entry's blocks into the pool…
      scratch_.BeginRun();  // …then reclaims pool and arena wholesale.
      ++stats.flushes;
    }
    return &sigs_[sig];
  }

  DistPool* pool() { return scratch_.pool(); }

  // Whole-cache drop (see engine.h InvalidateSubtreeCache): same wholesale
  // reclamation as the kMaxSignatures eviction, different counter.
  void Invalidate() {
    sigs_.clear();
    scratch_.BeginRun();
    ++stats.invalidations;
  }

  SubtreeCacheStats stats;

  uint64_t EntryCount() const {
    uint64_t n = 0;
    for (const auto& [sig, st] : sigs_) n += st.entries.size();
    return n;
  }
  uint64_t SignatureCount() const { return sigs_.size(); }

 private:
  DpScratch scratch_;
  std::unordered_map<std::string, SigState> sigs_;
};

void SubtreeCacheDeleter::operator()(SubtreeCache* cache) const {
  delete cache;
}

SubtreeCachePtr MakeSubtreeCache() { return SubtreeCachePtr(new SubtreeCache); }

SubtreeCacheStats GetSubtreeCacheStats(const SubtreeCache& cache) {
  SubtreeCacheStats s = cache.stats;
  s.signatures = cache.SignatureCount();
  s.entries = cache.EntryCount();
  return s;
}

void InvalidateSubtreeCache(SubtreeCache* cache) {
  if (cache != nullptr) cache->Invalidate();
}

namespace {

using NarrowKey = uint64_t;

constexpr uint64_t kNarrowDMask = 0x5555555555555555ULL;

inline void WideSetBit(WideKey* k, int bit) {
  k->w[bit >> 6] |= uint64_t{1} << (bit & 63);
}

inline NarrowKey KeyAnd(NarrowKey a, NarrowKey b) { return a & b; }
inline WideKey KeyAnd(const WideKey& a, const WideKey& b) {
  WideKey r;
  for (int i = 0; i < 4; ++i) r.w[i] = a.w[i] & b.w[i];
  return r;
}

inline bool HasAll(NarrowKey k, NarrowKey need) { return (k & need) == need; }
inline bool HasAll(const WideKey& k, const WideKey& need) {
  for (int i = 0; i < 4; ++i) {
    if ((k.w[i] & need.w[i]) != need.w[i]) return false;
  }
  return true;
}

template <typename K>
K DMask();
template <>
NarrowKey DMask<NarrowKey>() {
  return kNarrowDMask;
}
template <>
WideKey DMask<WideKey>() {
  WideKey m;
  for (int i = 0; i < 4; ++i) m.w[i] = kNarrowDMask;
  return m;
}

// A distribution in either key width: `wide` keys live in the global slot
// space, narrow keys are 2 bits per live slot of the owning frame. A tagged
// union — regions move through vectors millions of times per pass, so the
// object stays one FlatDist wide. Storage releases to the pool on
// destruction (RAII recycling).
struct Dist {
  bool wide = false;
  union {
    FlatDist<NarrowKey> n;
    FlatDist<WideKey> w;
  };

  Dist() : n() {}
  Dist(const Dist&) = delete;
  Dist& operator=(const Dist&) = delete;
  Dist(Dist&& o) : wide(o.wide) {
    if (wide) {
      new (&w) FlatDist<WideKey>(std::move(o.w));
    } else {
      new (&n) FlatDist<NarrowKey>(std::move(o.n));
    }
  }
  Dist& operator=(Dist&& o) {
    if (this != &o) {
      Destroy();
      wide = o.wide;
      if (wide) {
        new (&w) FlatDist<WideKey>(std::move(o.w));
      } else {
        new (&n) FlatDist<NarrowKey>(std::move(o.n));
      }
    }
    return *this;
  }
  ~Dist() { Destroy(); }

  /// Activates the member for `new_wide` (destroying the other if needed).
  void SetWide(bool new_wide) {
    if (wide == new_wide) return;
    Destroy();
    wide = new_wide;
    if (wide) {
      new (&w) FlatDist<WideKey>();
    } else {
      new (&n) FlatDist<NarrowKey>();
    }
  }

  size_t size() const { return wide ? w.size() : n.size(); }
  bool initialized() const { return wide ? w.initialized() : n.initialized(); }
  int cap_log2() const { return wide ? w.cap_log2() : n.cap_log2(); }

 private:
  void Destroy() {
    if (wide) {
      w.~FlatDist();
    } else {
      n.~FlatDist();
    }
  }
};

// Per-lane gate annotations (circuit recording, see prob/circuit.h):
// FlatDist::shadow points at a recorder-owned GateVec whose i-th element is
// the gate computing the i-th dense lane's value. Null whenever no recorder
// is attached.
template <typename K>
inline GateVec* LaneGates(const FlatDist<K>& d) {
  return static_cast<GateVec*>(d.shadow);
}
inline GateVec* LaneGates(const Dist& d) {
  return d.wide ? LaneGates(d.w) : LaneGates(d.n);
}

// The state a p-document region passes to its parent: the base (A, D)
// distribution, plus one joint distribution per candidate anchor inside the
// region (see engine.h). `frame` is the p-document node whose live slot set
// defines the key space of every dist in the region.
struct Region {
  NodeId frame = kNullNode;
  Dist base;
  PoolVec<std::pair<NodeId, Dist>> tracked;
};

// Per-node-width candidate masks: (need, set) pairs — a key that contains
// every `need` bit (children requirements) gains the `set` bits (A and D of
// the candidate slot).
struct Masks {
  std::vector<std::pair<NarrowKey, NarrowKey>> n;
  std::vector<std::pair<WideKey, WideKey>> w;
};

class Engine {
 public:
  Engine(const PDocument& pd, const std::vector<Goal>& goals,
         const std::vector<const Pattern*>& batch, DpScratch* scratch,
         const EngineOptions& options)
      : pd_(pd),
        batch_count_(static_cast<int>(batch.size())),
        pool_(scratch->pool()),
        prof_(scratch->profile()),
        conv_(scratch->conv()),
        kernel_(options.kernel != nullptr ? options.kernel : ActiveKernel()),
        prune_eps_(options.prune_eps),
        sibling_tree_(options.sibling_tree),
        cache_candidate_(options.subtree_cache),
        cache_sig_(options.cache_signature),
        bufs_(scratch->buffers()),
        live_(scratch->buffers()->live),
        wide_(scratch->buffers()->wide),
        region_slot_(scratch->buffers()->region_slot),
        slots_flat_(scratch->buffers()->slots_flat),
        slots_len_(scratch->buffers()->slots_len),
        obs_(scratch->buffers()->obs),
        skip_(scratch->buffers()->skip),
        active_slot_(scratch->buffers()->active_slot),
        label_slot_(scratch->buffers()->label_slot) {
    rec_ = options.recorder;
    if (rec_ != nullptr) {
      PXV_CHECK_EQ(prune_eps_, 0.0)
          << "circuit recording requires the exact DP (prune_eps == 0)";
      PXV_CHECK(goals.empty())
          << "circuit recording covers the batched anchored paths only";
    }
    int total = 0;
    // Fixed-anchor / Boolean conjuncts: every pattern node is a base slot.
    for (const Goal& g : goals) {
      PXV_CHECK(g.pattern != nullptr);
      const Pattern& p = *g.pattern;
      const int offset = total;
      total += p.size();
      PXV_CHECK_LE(total, kMaxConjunctionSlots)
          << "conjunction too large for the packed DP";
      qnodes_.resize(total);
      for (PNodeId n = 0; n < p.size(); ++n) {
        QNode& qn = qnodes_[offset + n];
        qn.label = p.label(n);
        for (PNodeId c : p.children(n)) {
          (p.axis(c) == Axis::kChild ? qn.slash_kids : qn.desc_kids)
              .push_back(offset + c);
        }
        by_label_[qn.label].push_back(offset + n);
        if (n == p.root()) goal_root_slots_.push_back(offset + n);
      }
      if (g.anchor != nullptr) {
        anchor_sets_.emplace_back();
        for (NodeId a : *g.anchor) anchor_sets_.back().insert(a);
        anchor_of_[offset + p.out()] =
            static_cast<int>(anchor_sets_.size()) - 1;
      }
    }
    // Batched members: predicate-subtree nodes are base slots; main-branch
    // nodes are starred slots (match only along the pinned output chain);
    // out itself is the pin slot, set exclusively at the tracked anchor.
    for (const Pattern* pp : batch) {
      PXV_CHECK(pp != nullptr);
      const Pattern& p = *pp;
      const int offset = total;
      total += p.size();
      PXV_CHECK_LE(total, kMaxConjunctionSlots)
          << "batched conjunction too large for the packed DP";
      qnodes_.resize(total);
      std::vector<char> on_mb(p.size(), 0);
      for (PNodeId n : p.MainBranch()) on_mb[n] = 1;
      for (PNodeId n = 0; n < p.size(); ++n) {
        QNode& qn = qnodes_[offset + n];
        qn.label = p.label(n);
        for (PNodeId c : p.children(n)) {
          (p.axis(c) == Axis::kChild ? qn.slash_kids : qn.desc_kids)
              .push_back(offset + c);
        }
        if (n == p.out()) {
          pin_slots_.push_back(offset + n);
        } else if (on_mb[n]) {
          by_label_star_[qn.label].push_back(offset + n);
        } else {
          by_label_[qn.label].push_back(offset + n);
        }
        if (n == p.root()) batch_root_slots_.push_back(offset + n);
      }
      // All members must share the output label, or no candidate exists.
      if (batch_out_label_set_ && batch_out_label_ != p.OutLabel()) {
        batch_feasible_ = false;
      }
      batch_out_label_ = p.OutLabel();
      batch_out_label_set_ = true;
    }
    // Analysis cache: the live/wide/region-slot buffers (and the obs masks)
    // depend only on the document's *structure* — tree shape, labels,
    // detached flags — and on the query's structure. Steady-state serving
    // (same doc, same query set, run after run) skips the whole O(|P̂|)
    // pass, and so do probability-only deltas (SetEdgeProb /
    // SetExpDistribution do not bump the structure version), which is what
    // keeps an incremental re-evaluation from paying O(|P̂|) in analysis.
    // The signature encodes every structural input of the analysis + obs
    // passes — per slot: label, role (base / starred / pin), root flags,
    // and the slash/descendant kid edges — and is compared outright, so a
    // collision can never serve stale analysis.
    std::vector<uint32_t> query_sig;
    query_sig.reserve(qnodes_.size() * 4);
    for (int s = 0; s < static_cast<int>(qnodes_.size()); ++s) {
      const QNode& qn = qnodes_[s];
      query_sig.push_back(qn.label);
      for (int t : qn.slash_kids) query_sig.push_back(0x40000000u + t);
      for (int t : qn.desc_kids) query_sig.push_back(0x20000000u + t);
      query_sig.push_back(0x10000000u);  // Slot terminator.
    }
    // Root/pin flags pin down each slot's role (starred main-branch slots
    // are derivable: the chain from a batch root to its pin slot).
    for (int s : goal_root_slots_) query_sig.push_back(0x50000000u + s);
    for (int s : batch_root_slots_) query_sig.push_back(0x60000000u + s);
    for (int s : pin_slots_) query_sig.push_back(0x70000000u + s);
    EngineBuffers* bufs = scratch->buffers();
    if (bufs->cache_valid &&
        bufs->cached_structure == pd.structure_version() &&
        bufs->cached_query_sig == query_sig &&
        live_.size() == static_cast<size_t>(pd.size())) {
      region_count_ = bufs->cached_region_count;
      uniform_frame_ = bufs->cached_uniform;
      analysis_cached_ = true;
      return;
    }
    bufs->obs_valid = false;

    // Live-slot analysis (one reverse scan; children follow parents in the
    // node arena, so subtree unions are already final when read). A subtree
    // whose live set is empty contributes the empty state with probability 1
    // and holds no anchors — the old label-relevance pruning — and a live
    // set of <= kNarrowSlotCap slots lets the whole subtree run narrow.
    std::unordered_map<Label, SlotSet> slots_by_label;
    for (int s = 0; s < total; ++s) {
      slots_by_label[qnodes_[s].label].Set(s);
    }
    live_.assign(pd.size(), SlotSet{});
    wide_.assign(pd.size(), 0);
    for (NodeId n = pd.size() - 1; n >= 0; --n) {
      SlotSet s;
      // Detached (removed) subtrees are invisible to the deletion process:
      // their nodes stay dead, so the pass never computes them and their
      // labels never leak into any frame.
      if (!pd.detached(n)) {
        if (pd.ordinary(n)) {
          const auto it = slots_by_label.find(pd.label(n));
          if (it != slots_by_label.end()) s = it->second;
        }
        for (NodeId c : pd.children(n)) s.UnionWith(live_[c]);
      }
      live_[n] = s;
      wide_[n] = s.Count() > kNarrowSlotCap;
    }
    // Dead subtrees (no live slot) contribute the empty state with
    // probability 1 — an exact identity element everywhere they are
    // consumed — so only live nodes get a region slot, and the bottom-up
    // pass touches nothing else.
    region_slot_.assign(pd.size(), -1);
    region_count_ = 0;
    for (NodeId n = 0; n < pd.size(); ++n) {
      if (live_[n].Any()) region_slot_[n] = region_count_++;
    }
    // Dense label index over live ordinary nodes: the run-time candidate
    // mask table becomes an array lookup (labels repeat heavily — one
    // distinct label per document "schema" element).
    std::unordered_map<Label, int32_t> label_index;
    label_slot_.assign(pd.size(), -1);
    for (NodeId n = 0; n < pd.size(); ++n) {
      if (live_[n].Any() && pd.ordinary(n)) {
        const auto [it, ins] = label_index.try_emplace(
            pd.label(n), static_cast<int32_t>(label_index.size()));
        label_slot_[n] = it->second;
      }
    }
    bufs->label_count = static_cast<int32_t>(label_index.size());
    // Uniform-frame fast path: live sets only shrink downward, so when the
    // *root* fits a narrow key every subtree does too — one shared frame,
    // and every remap becomes the identity. Per-subtree frames only earn
    // their keep in the wide regime (> kNarrowSlotCap slots at the root),
    // where they let deep subtrees keep 1-word keys under a wide root.
    uniform_frame_ = !pd.empty() && !wide_[pd.root()];
    // Narrow slot lists live in one flat buffer (kNarrowSlotCap bytes per
    // live node), extracted lazily; len 0 marks "not extracted yet" (live
    // nodes always have at least one slot).
    slots_flat_.resize(static_cast<size_t>(region_count_) * kNarrowSlotCap);
    slots_len_.assign(region_count_, 0);
    bufs->cached_structure = pd.structure_version();
    bufs->cached_query_sig = std::move(query_sig);
    bufs->cached_region_count = region_count_;
    bufs->cached_uniform = uniform_frame_;
    bufs->cache_valid = true;
  }

  double Probability() {
    PXV_CHECK_EQ(batch_count_, 0) << "use BatchResults for batched members";
    const NodeId r = pd_.root();
    Region root = EvalRegions();
    double p = 0;
    if (wide_[r]) {
      WideKey mask;
      for (int slot : goal_root_slots_) WideSetBit(&mask, 2 * slot + 1);
      root.base.w.ForEach([&](const WideKey& key, double prob) {
        if (HasAll(key, mask)) p += prob;
      });
    } else {
      NarrowKey mask = 0;
      for (int slot : goal_root_slots_) {
        const int pos = PosInFrame(r, slot);
        if (pos < 0) return 0.0;  // Goal root label absent from the doc.
        mask |= NarrowKey{1} << (2 * pos + 1);
      }
      root.base.n.ForEach([&](NarrowKey key, double prob) {
        if (HasAll(key, mask)) p += prob;
      });
    }
    return p;
  }

  // Per-member readout of one joint pass: result[i] = q_i(P̂). The tracked
  // keys carry every member's slots jointly; member i's selection
  // probability at an anchor is the mass of keys containing its root's A
  // bit (the other members' bits marginalize out in the sum).
  std::vector<std::vector<NodeProb>> BatchResultsMany() {
    const int m = static_cast<int>(batch_root_slots_.size());
    std::vector<std::vector<NodeProb>> out(m);
    if (rec_ != nullptr) rec_->SetMemberCount(m);
    if (!batch_feasible_ || batch_count_ == 0) return out;
    const NodeId r = pd_.root();
    Region root = EvalRegions();
    std::vector<double> acc(m);
    // Readout recording: per (anchor, member), the mask-matching lanes fold
    // into one left-to-right Add chain in lane order — the exact `acc += p`
    // order below (the first add is 0.0 + x == x for the DP's non-negative
    // masses). Every structurally matching chain is recorded; the > 0
    // inclusion filter replays per evaluation (LineageCircuit::Results).
    std::vector<GateId> gacc(m, kNoGate);
    if (wide_[r]) {
      WideKey goal_mask;
      for (int slot : goal_root_slots_) WideSetBit(&goal_mask, 2 * slot + 1);
      std::vector<WideKey> masks(m);
      for (int i = 0; i < m; ++i) {
        masks[i] = goal_mask;
        WideSetBit(&masks[i], 2 * batch_root_slots_[i] + 1);
      }
      for (const auto& [n, dist] : root.tracked) {
        std::fill(acc.begin(), acc.end(), 0.0);
        const GateVec* gv = nullptr;
        size_t li = 0;
        if (rec_ != nullptr) {
          std::fill(gacc.begin(), gacc.end(), kNoGate);
          gv = LaneGates(dist);
        }
        dist.w.ForEach([&](const WideKey& key, double prob) {
          for (int i = 0; i < m; ++i) {
            if (HasAll(key, masks[i])) {
              if (rec_ != nullptr) {
                gacc[i] = gacc[i] == kNoGate
                              ? (*gv)[li]
                              : rec_->Add(gacc[i], (*gv)[li]);
              }
              acc[i] += prob;
            }
          }
          ++li;
        });
        for (int i = 0; i < m; ++i) {
          if (rec_ != nullptr && gacc[i] != kNoGate) {
            rec_->AddOutput(i, n, gacc[i]);
          }
          if (acc[i] > 0) out[i].push_back({n, acc[i]});
        }
      }
    } else {
      NarrowKey goal_mask = 0;
      bool feasible = true;
      for (int slot : goal_root_slots_) {
        const int pos = PosInFrame(r, slot);
        if (pos < 0) feasible = false;
        goal_mask |= feasible ? NarrowKey{1} << (2 * pos + 1) : 0;
      }
      if (!feasible) return out;
      std::vector<NarrowKey> masks(m);
      std::vector<char> member_ok(m, 1);
      for (int i = 0; i < m; ++i) {
        const int pos = PosInFrame(r, batch_root_slots_[i]);
        if (pos < 0) {
          member_ok[i] = 0;  // Member root label absent: empty result.
          continue;
        }
        masks[i] = goal_mask | (NarrowKey{1} << (2 * pos + 1));
      }
      for (const auto& [n, dist] : root.tracked) {
        std::fill(acc.begin(), acc.end(), 0.0);
        const GateVec* gv = nullptr;
        size_t li = 0;
        if (rec_ != nullptr) {
          std::fill(gacc.begin(), gacc.end(), kNoGate);
          gv = LaneGates(dist);
        }
        dist.n.ForEach([&](NarrowKey key, double prob) {
          for (int i = 0; i < m; ++i) {
            if (member_ok[i] && HasAll(key, masks[i])) {
              if (rec_ != nullptr) {
                gacc[i] = gacc[i] == kNoGate
                              ? (*gv)[li]
                              : rec_->Add(gacc[i], (*gv)[li]);
              }
              acc[i] += prob;
            }
          }
          ++li;
        });
        for (int i = 0; i < m; ++i) {
          if (rec_ != nullptr && gacc[i] != kNoGate) {
            rec_->AddOutput(i, n, gacc[i]);
          }
          if (acc[i] > 0) out[i].push_back({n, acc[i]});
        }
      }
    }
    for (auto& v : out) {
      std::sort(v.begin(), v.end(), [](const NodeProb& a, const NodeProb& b) {
        return a.node < b.node;
      });
    }
    return out;
  }

  std::vector<NodeProb> BatchResults() {
    std::vector<NodeProb> out;
    if (rec_ != nullptr) rec_->SetMemberCount(1);
    if (!batch_feasible_ || batch_count_ == 0) return out;
    const NodeId r = pd_.root();
    Region root = EvalRegions();
    out.reserve(root.tracked.size());
    // Acceptance at the root: every goal root and every member root embeds
    // (their A bits are set in the tracked key). Readout recording mirrors
    // BatchResultsMany (single output group).
    if (wide_[r]) {
      WideKey mask;
      for (int slot : goal_root_slots_) WideSetBit(&mask, 2 * slot + 1);
      for (int slot : batch_root_slots_) WideSetBit(&mask, 2 * slot + 1);
      for (const auto& [n, dist] : root.tracked) {
        double p = 0;
        GateId gacc = kNoGate;
        size_t li = 0;
        const GateVec* gv = rec_ != nullptr ? LaneGates(dist) : nullptr;
        dist.w.ForEach([&](const WideKey& key, double prob) {
          if (HasAll(key, mask)) {
            if (rec_ != nullptr) {
              gacc = gacc == kNoGate ? (*gv)[li] : rec_->Add(gacc, (*gv)[li]);
            }
            p += prob;
          }
          ++li;
        });
        if (rec_ != nullptr && gacc != kNoGate) rec_->AddOutput(0, n, gacc);
        if (p > 0) out.push_back({n, p});
      }
    } else {
      NarrowKey mask = 0;
      bool feasible = true;
      for (int slot : goal_root_slots_) {
        const int pos = PosInFrame(r, slot);
        if (pos < 0) feasible = false;
        mask |= feasible ? NarrowKey{1} << (2 * pos + 1) : 0;
      }
      for (int slot : batch_root_slots_) {
        const int pos = PosInFrame(r, slot);
        if (pos < 0) feasible = false;
        mask |= feasible ? NarrowKey{1} << (2 * pos + 1) : 0;
      }
      if (!feasible) return out;
      for (const auto& [n, dist] : root.tracked) {
        double p = 0;
        GateId gacc = kNoGate;
        size_t li = 0;
        const GateVec* gv = rec_ != nullptr ? LaneGates(dist) : nullptr;
        dist.n.ForEach([&](NarrowKey key, double prob) {
          if (HasAll(key, mask)) {
            if (rec_ != nullptr) {
              gacc = gacc == kNoGate ? (*gv)[li] : rec_->Add(gacc, (*gv)[li]);
            }
            p += prob;
          }
          ++li;
        });
        if (rec_ != nullptr && gacc != kNoGate) rec_->AddOutput(0, n, gacc);
        if (p > 0) out.push_back({n, p});
      }
    }
    std::sort(out.begin(), out.end(),
              [](const NodeProb& a, const NodeProb& b) {
                return a.node < b.node;
              });
    return out;
  }

 private:
  struct QNode {
    Label label = 0;
    std::vector<int> slash_kids, desc_kids;
  };

  // ------------------------------------------------------------ frames ----

  // Ascending live slots of `n`'s frame; meaningful for narrow frames
  // (<= kNarrowSlotCap entries). Extracted lazily into the flat buffer.
  const int8_t* NarrowSlots(NodeId n, int* count) {
    if (uniform_frame_) n = pd_.root();
    const int32_t slot = region_slot_[n];
    if (slot < 0) {
      *count = 0;
      return nullptr;
    }
    int8_t* v = &slots_flat_[static_cast<size_t>(slot) * kNarrowSlotCap];
    if (slots_len_[slot] == 0) {
      int len = 0;
      for (int word = 0; word < 2; ++word) {
        uint64_t bits = live_[n].b[word];
        while (bits != 0) {
          const int b = __builtin_ctzll(bits);
          bits &= bits - 1;
          v[len++] = static_cast<int8_t>(word * 64 + b);
        }
      }
      slots_len_[slot] = static_cast<uint8_t>(len);
    }
    *count = slots_len_[slot];
    return v;
  }

  int PosInFrame(NodeId n, int slot) {
    int count;
    const int8_t* v = NarrowSlots(n, &count);
    for (int i = 0; i < count; ++i) {
      if (v[i] == slot) return i;
    }
    return -1;
  }

  // ---------------------------------------------------------- dist ops ----

  Dist MakeDist(bool wide, int cap_log2 = FlatDist<NarrowKey>::kInlineCapLog2) {
    Dist d;
    d.SetWide(wide);
    if (wide) {
      d.w.Init(pool_, cap_log2);
    } else {
      d.n.Init(pool_, cap_log2);
    }
    return d;
  }

  // ------------------------------------------------- circuit recording ----
  // All Rec* helpers assume rec_ != nullptr (callers gate on it). The
  // invariant they maintain: whenever a recorder is attached, every lane of
  // every live FlatDist has a gate computing exactly its value, in lane
  // order (FlatDist growth re-inserts in lane order, so the annotation
  // vector stays aligned; see FlatDist::shadow).

  // Records `gate` being merged into `f` at key `k`, mirroring the
  // f.Add(k, value-of-gate) the caller performs right after: a fresh lane
  // appends the gate, an existing lane becomes Add(old, gate) — the same
  // `lanes[e] += v` accumulation, bitwise.
  template <typename K>
  void RecMergeAdd(FlatDist<K>* f, const K& k, GateId g) {
    GateVec* v = LaneGates(*f);
    if (v == nullptr) {
      v = rec_->NewVec();
      f->shadow = v;
    }
    const int64_t lane = f->Lane(k);
    if (lane < 0) {
      v->push_back(g);
    } else {
      (*v)[size_t(lane)] = rec_->Add((*v)[size_t(lane)], g);
    }
  }

  void RecAddEmptyKey(Dist* d, GateId g) {
    if (d->wide) {
      RecMergeAdd(&d->w, WideKey{}, g);
    } else {
      RecMergeAdd(&d->n, NarrowKey{0}, g);
    }
  }

  // Seeds an *empty* dist's annotation with the gate of the single lane the
  // caller is about to insert (whatever its key).
  void RecSeedSingleton(Dist* d, GateId g) {
    GateVec* v = rec_->NewVec();
    v->push_back(g);
    if (d->wide) {
      d->w.shadow = v;
    } else {
      d->n.shadow = v;
    }
  }

  // Replaces `f`'s lane gates with Mul(lane, gp) — the recorded image of
  // ScaleAll(p). A fresh vector (not in-place) so clones sharing the old
  // annotation stay valid.
  template <typename K>
  void RecScaleAll(FlatDist<K>* f, GateId gp) {
    if (f->size() == 0) return;
    const GateVec* v = LaneGates(*f);
    PXV_CHECK(v != nullptr);
    GateVec* nv = rec_->NewVec();
    nv->reserve(f->size());
    for (const GateId g : *v) nv->push_back(rec_->Mul(g, gp));
    f->shadow = nv;
  }

  // Guard for the engine's `is this dist the unit δ(∅, 1)?` tests: the
  // branch is value-dependent only through the singleton's mass (the
  // single-lane shape itself is structural), so when the dist is
  // structurally a singleton-∅ the mass gate is guarded on == 1.0.
  void RecUnitGuard(const Dist& d) {
    double mass;
    if (SingletonEmpty(d, &mass)) {
      rec_->Guard((*LaneGates(d))[0], GuardKind::kIsOne, mass == 1.0);
    }
  }

  // ---------------------------------------------------------------------

  Dist DeltaDist(NodeId frame) {
    Dist d = MakeDist(wide_[frame]);
    AddEmptyMassInit(&d, 1.0, wide_[frame],
                     rec_ != nullptr ? rec_->Const(1.0) : kNoGate);
    return d;
  }

  void AddEmptyMassInit(Dist* d, double mass, bool wide,
                        GateId gmass = kNoGate) {
    if (!d->initialized()) *d = MakeDist(wide);
    if (rec_ != nullptr) RecAddEmptyKey(d, gmass);
    if (d->wide) {
      d->w.Add(WideKey{}, mass);
    } else {
      d->n.Add(NarrowKey{0}, mass);
    }
  }

  void DistScale(Dist* d, double p, GateId gp = kNoGate) {
    if (rec_ != nullptr) {
      if (d->wide) {
        RecScaleAll(&d->w, gp);
      } else {
        RecScaleAll(&d->n, gp);
      }
    }
    if (d->wide) {
      d->w.ScaleAll(p);
    } else {
      d->n.ScaleAll(p);
    }
  }

  static bool SingletonEmpty(const Dist& d, double* mass) {
    return d.wide ? d.w.IsSingletonEmpty(mass) : d.n.IsSingletonEmpty(mass);
  }

  Dist CloneDist(const Dist& d) {
    Dist out;
    out.SetWide(d.wide);
    if (d.wide) {
      out.w = d.w.Clone();
    } else {
      out.n = d.n.Clone();
    }
    return out;
  }

  Region CloneRegion(const Region& r) {
    Region out;
    out.frame = r.frame;
    out.base = CloneDist(r.base);
    out.tracked.Reserve(pool_, r.tracked.size());
    for (const auto& [a, t] : r.tracked) {
      out.tracked.EmplaceBack(pool_, a, CloneDist(t));
    }
    return out;
  }

  void MaybePrune(Dist* d) {
    if (prune_eps_ <= 0 || !d->initialized()) return;
    if (d->wide) {
      d->w.Prune(prune_eps_);
    } else {
      d->n.Prune(prune_eps_);
    }
  }

  static int CeilLog2(size_t x) {
    int l = 0;
    while ((size_t{1} << l) < x) ++l;
    return l;
  }

  // Capacity hint for a convolution output. The old code reserved
  // a.size() * b.size() slots — a hint that can explode (and in principle
  // overflow size_t); cap it by the true support bound 4^{live slots} of
  // the frame and a sane constant.
  int ConvCapLog2(size_t a, size_t b, NodeId frame) {
    if (a <= 1 && b <= 1) return FlatDist<NarrowKey>::kInlineCapLog2;
    int hint = CeilLog2(a) + CeilLog2(b) + 1;  // +1: stay under 75% load.
    const int support = 2 * live_[frame].Count();
    if (hint > support) hint = support;
    if (hint > 20) hint = 20;
    if (hint < FlatDist<NarrowKey>::kMinCapLog2) {
      hint = FlatDist<NarrowKey>::kMinCapLog2;
    }
    return hint;
  }

  template <typename K>
  static FlatDist<K>& DistAs(Dist& d) {
    if constexpr (std::is_same_v<K, WideKey>) {
      return d.w;
    } else {
      return d.n;
    }
  }
  template <typename K>
  static const FlatDist<K>& DistAs(const Dist& d) {
    if constexpr (std::is_same_v<K, WideKey>) {
      return d.w;
    } else {
      return d.n;
    }
  }

  template <typename K>
  void MaybePruneF(FlatDist<K>* d) {
    if (prune_eps_ > 0 && d->initialized()) d->Prune(prune_eps_);
  }

  // Hash-path convolution: each left entry is staged as one kernel row
  // (broadcast OR / MUL over the right operand's dense lanes), then the row
  // is folded into the output table. The staging keeps the arithmetic —
  // one product per pair, accumulated in (left insertion order × right
  // insertion order) — identical for every kernel, so AVX2 and portable
  // runs are bitwise equal (the simd.h contract).
  template <typename K>
  FlatDist<K> ConvolveT(const FlatDist<K>& a, const FlatDist<K>& b,
                        int cap_log2) {
    FlatDist<K> out;
    out.Init(pool_, cap_log2);
    const K* ak;
    const double* av;
    const size_t na = a.LaneView(&ak, &av);
    const K* bk;
    const double* bv;
    const size_t nb = b.LaneView(&bk, &bv);
    ConvScratch& cs = *conv_;
    if (cs.row_vals.size() < nb) cs.row_vals.resize(nb);
    double* rv = cs.row_vals.data();
    K* rk;
    if constexpr (std::is_same_v<K, WideKey>) {
      if (cs.wrow_keys.size() < nb) cs.wrow_keys.resize(nb);
      rk = cs.wrow_keys.data();
    } else {
      if (cs.row_keys.size() < nb) cs.row_keys.resize(nb);
      rk = cs.row_keys.data();
    }
    const GateVec* ga = nullptr;
    const GateVec* gb = nullptr;
    if (rec_ != nullptr) {
      ga = LaneGates(a);
      gb = LaneGates(b);
      PXV_CHECK(na == 0 || ga != nullptr);
      PXV_CHECK(nb == 0 || gb != nullptr);
    }
    for (size_t i = 0; i < na; ++i) {
      if constexpr (std::is_same_v<K, WideKey>) {
        kernel_->conv_row_w(ak[i], av[i], bk, bv, nb, rk, rv);
      } else {
        kernel_->conv_row_n(ak[i], av[i], bk, bv, nb, rk, rv);
      }
      if (rec_ != nullptr) {
        // One product per (i, j) pair, folded in the same order the value
        // loop below uses (the kernel's conv_row is a plain per-pair
        // multiply; see simd.h).
        for (size_t j = 0; j < nb; ++j) {
          RecMergeAdd(&out, rk[j], rec_->Mul((*ga)[i], (*gb)[j]));
          out.Add(rk[j], rv[j]);
        }
      } else {
        for (size_t j = 0; j < nb; ++j) out.Add(rk[j], rv[j]);
      }
    }
    return out;
  }

  // Smallest table capacity holding `n` entries under 75% load.
  static int CapForSupport(size_t n) {
    if (n <= 1) return FlatDist<NarrowKey>::kInlineCapLog2;
    int l = FlatDist<NarrowKey>::kMinCapLog2;
    while ((size_t{1} << l) * 3 < n * 4) ++l;
    return l;
  }

  // Narrow frames this small skip hashing entirely: a key indexes the
  // scatter array directly. 2^12 doubles = one 32 KB array, reused for
  // every convolution of the scratch's lifetime.
  static constexpr int kDenseConvBits = 12;

  // True when every key of `frame` fits below 2^kDenseConvBits. Under a
  // uniform frame keys live in root positions regardless of `frame`, so the
  // bound is the root's live count.
  bool DenseEligible(NodeId frame) const {
    const NodeId ef = uniform_frame_ ? pd_.root() : frame;
    return 2 * live_[ef].Count() <= kDenseConvBits;
  }

  // Dense scatter-accumulate convolution (narrow keys only): kernel rows
  // scatter straight into the dense array; `seen`/`touched` record
  // first-touch order so the output table is rebuilt deterministically and
  // the array is re-zeroed by walking exactly the touched entries.
  FlatDist<NarrowKey> DenseConvolve(const FlatDist<NarrowKey>& a,
                                    const FlatDist<NarrowKey>& b) {
    ConvScratch& cs = *conv_;
    if (cs.dense.empty()) {
      cs.dense.assign(size_t{1} << kDenseConvBits, 0.0);
      cs.seen.assign(size_t{1} << kDenseConvBits, 0);
    }
    const NarrowKey* ak;
    const double* av;
    const size_t na = a.LaneView(&ak, &av);
    const NarrowKey* bk;
    const double* bv;
    const size_t nb = b.LaneView(&bk, &bv);
    if (cs.row_keys.size() < nb) cs.row_keys.resize(nb);
    if (cs.row_vals.size() < nb) cs.row_vals.resize(nb);
    uint64_t* rk = cs.row_keys.data();
    double* rv = cs.row_vals.data();
    const GateVec* ga = nullptr;
    const GateVec* gb = nullptr;
    if (rec_ != nullptr) {
      ga = LaneGates(a);
      gb = LaneGates(b);
      PXV_CHECK(na == 0 || ga != nullptr);
      PXV_CHECK(nb == 0 || gb != nullptr);
      // Gate image of the dense scatter array, touched-entries only. The
      // first touch of a slot is the product itself (the array held +0.0
      // and every staged product is non-negative, so 0.0 + x == x bitwise).
      if (gdense_.empty()) gdense_.assign(size_t{1} << kDenseConvBits, kNoGate);
    }
    for (size_t i = 0; i < na; ++i) {
      kernel_->conv_row_n(ak[i], av[i], bk, bv, nb, rk, rv);
      for (size_t j = 0; j < nb; ++j) {
        const uint32_t key = static_cast<uint32_t>(rk[j]);
        if (!cs.seen[key]) {
          cs.seen[key] = 1;
          cs.touched.push_back(key);
          if (rec_ != nullptr) gdense_[key] = rec_->Mul((*ga)[i], (*gb)[j]);
        } else if (rec_ != nullptr) {
          gdense_[key] =
              rec_->Add(gdense_[key], rec_->Mul((*ga)[i], (*gb)[j]));
        }
        cs.dense[key] += rv[j];
      }
    }
    FlatDist<NarrowKey> out;
    out.Init(pool_, CapForSupport(cs.touched.size()));
    for (const uint32_t key : cs.touched) {
      if (rec_ != nullptr) {
        RecMergeAdd(&out, NarrowKey{key}, gdense_[key]);
        gdense_[key] = kNoGate;
      }
      out.Add(key, cs.dense[key]);
      cs.dense[key] = 0.0;
      cs.seen[key] = 0;
    }
    cs.touched.clear();
    return out;
  }

  // FlatDist-level union-convolution in `frame` (both operands already in
  // it). The Dist-level Convolve and the sibling-product tree share this.
  template <typename K>
  FlatDist<K> ConvolveF(const FlatDist<K>& a, const FlatDist<K>& b,
                        NodeId frame) {
    double p;
    if (a.IsSingletonEmpty(&p)) {
      FlatDist<K> out = b.CloneInto(pool_);
      // CloneInto shares b's lane gates; replace with the scaled image
      // before b's annotation could be mutated through the clone.
      if (rec_ != nullptr) RecScaleAll(&out, (*LaneGates(a))[0]);
      out.ScaleAll(p);
      return out;
    }
    if (b.IsSingletonEmpty(&p)) {
      FlatDist<K> out = a.CloneInto(pool_);
      if (rec_ != nullptr) RecScaleAll(&out, (*LaneGates(b))[0]);
      out.ScaleAll(p);
      return out;
    }
    K ka, kb;
    double pa, pb;
    if (a.GetSingle(&ka, &pa) && b.GetSingle(&kb, &pb)) {
      FlatDist<K> out;
      out.Init(pool_);
      if (rec_ != nullptr) {
        RecMergeAdd(&out,
                    ka | kb,
                    rec_->Mul((*LaneGates(a))[0], (*LaneGates(b))[0]));
      }
      out.Add(ka | kb, pa * pb);
      MaybePruneF(&out);
      return out;
    }
    if constexpr (std::is_same_v<K, NarrowKey>) {
      if (DenseEligible(frame)) {
        ++prof_->dense_convs;
        FlatDist<K> out = DenseConvolve(a, b);
        MaybePruneF(&out);
        return out;
      }
    }
    ++prof_->hash_convs;
    FlatDist<K> out = ConvolveT(a, b, ConvCapLog2(a.size(), b.size(), frame));
    MaybePruneF(&out);
    return out;
  }

  // Union-convolution of two distributions in the same frame.
  Dist Convolve(const Dist& a, const Dist& b, NodeId frame) {
    Dist out;
    out.SetWide(wide_[frame]);
    if (out.wide) {
      out.w = ConvolveF<WideKey>(a.w, b.w, frame);
    } else {
      out.n = ConvolveF<NarrowKey>(a.n, b.n, frame);
    }
    return out;
  }

  // acc += p * d (accumulating into acc's table; initializes acc to d's
  // width if needed). Frames must already agree. The products are staged
  // through the kernel's scale sweep, then folded in insertion order (same
  // bitwise-identity reasoning as ConvolveT).
  void AddScaledDist(Dist* acc, const Dist& d, double p,
                     GateId gp = kNoGate) {
    if (!d.initialized()) return;
    if (!acc->initialized()) {
      *acc = MakeDist(d.wide, d.size() <= 1
                                  ? FlatDist<NarrowKey>::kInlineCapLog2
                                  : d.cap_log2());
    }
    PXV_CHECK_EQ(acc->wide, d.wide);
    // Singleton fast path: one multiply and one insert — the kernel's
    // staged sweep computes the identical dv[0] * p, so results match
    // bitwise while the mix-heavy paths (one AddScaledDist per mux
    // alternative / ind child) skip the staging round trip.
    if (d.size() == 1) {
      if (d.wide) {
        WideKey k;
        double v;
        d.w.GetSingle(&k, &v);
        if (rec_ != nullptr) {
          RecMergeAdd(&acc->w, k, rec_->Mul((*LaneGates(d.w))[0], gp));
        }
        acc->w.Add(k, v * p);
      } else {
        NarrowKey k;
        double v;
        d.n.GetSingle(&k, &v);
        if (rec_ != nullptr) {
          RecMergeAdd(&acc->n, k, rec_->Mul((*LaneGates(d.n))[0], gp));
        }
        acc->n.Add(k, v * p);
      }
      return;
    }
    ConvScratch& cs = *conv_;
    if (d.wide) {
      const WideKey* dk;
      const double* dv;
      const size_t n = d.w.LaneView(&dk, &dv);
      if (cs.row_vals.size() < n) cs.row_vals.resize(n);
      kernel_->scale(dv, n, p, cs.row_vals.data());
      const GateVec* gd = rec_ != nullptr ? LaneGates(d.w) : nullptr;
      for (size_t j = 0; j < n; ++j) {
        if (rec_ != nullptr) {
          RecMergeAdd(&acc->w, dk[j], rec_->Mul((*gd)[j], gp));
        }
        acc->w.Add(dk[j], cs.row_vals[j]);
      }
    } else {
      const NarrowKey* dk;
      const double* dv;
      const size_t n = d.n.LaneView(&dk, &dv);
      if (cs.row_vals.size() < n) cs.row_vals.resize(n);
      kernel_->scale(dv, n, p, cs.row_vals.data());
      const GateVec* gd = rec_ != nullptr ? LaneGates(d.n) : nullptr;
      for (size_t j = 0; j < n; ++j) {
        if (rec_ != nullptr) {
          RecMergeAdd(&acc->n, dk[j], rec_->Mul((*gd)[j], gp));
        }
        acc->n.Add(dk[j], cs.row_vals[j]);
      }
    }
  }

  // ------------------------------------------------------------ remaps ----

  // True iff the two frames have identical key spaces.
  bool SameFrame(NodeId f, NodeId g) const {
    return uniform_frame_ || live_[f] == live_[g];
  }

  // Translates `d` from frame `f` into enclosing frame `g`
  // (live(f) ⊆ live(g)): a bit embedding, narrow→narrow or narrow→wide.
  Dist RemapDist(Dist d, NodeId f, NodeId g) {
    if (!d.initialized() || SameFrame(f, g)) return d;
    if (wide_[f]) return d;  // Wide keys already use global positions.
    int fcount;
    const int8_t* fs = NarrowSlots(f, &fcount);
    Dist out;
    if (wide_[g]) {
      out = MakeDist(true, d.size() <= 1 ? FlatDist<WideKey>::kInlineCapLog2
                                         : d.cap_log2());
      // Narrow bit 2i(+1) → global bit 2*slot(+1).
      const GateVec* gv = rec_ != nullptr ? LaneGates(d.n) : nullptr;
      size_t li = 0;
      d.n.ForEach([&](NarrowKey k, double v) {
        WideKey wk;
        while (k != 0) {
          const int b = __builtin_ctzll(k);
          k &= k - 1;
          WideSetBit(&wk, 2 * fs[b >> 1] + (b & 1));
        }
        if (rec_ != nullptr) RecMergeAdd(&out.w, wk, (*gv)[li++]);
        out.w.Add(wk, v);
        ++prof_->keys_remapped;
      });
      return out;
    }
    // Narrow→narrow: position map via one walk of the two sorted lists.
    int gcount;
    const int8_t* gs = NarrowSlots(g, &gcount);
    int map[2 * kNarrowSlotCap];
    int j = 0;
    for (int i = 0; i < fcount; ++i) {
      while (j < gcount && gs[j] < fs[i]) ++j;
      PXV_CHECK(j < gcount && gs[j] == fs[i])
          << "child live set escapes the parent frame";
      map[2 * i] = 2 * j;
      map[2 * i + 1] = 2 * j + 1;
    }
    out = MakeDist(false, d.size() <= 1
                               ? FlatDist<NarrowKey>::kInlineCapLog2
                               : d.cap_log2());
    const GateVec* gv = rec_ != nullptr ? LaneGates(d.n) : nullptr;
    size_t li = 0;
    d.n.ForEach([&](NarrowKey k, double v) {
      NarrowKey nk = 0;
      while (k != 0) {
        const int b = __builtin_ctzll(k);
        k &= k - 1;
        nk |= NarrowKey{1} << map[b];
      }
      if (rec_ != nullptr) RecMergeAdd(&out.n, nk, (*gv)[li++]);
      out.n.Add(nk, v);
      ++prof_->keys_remapped;
    });
    return out;
  }

  void RemapRegionInPlace(Region* r, NodeId g) {
    if (r->frame == g || SameFrame(r->frame, g)) {
      r->frame = g;
      return;
    }
    r->base = RemapDist(std::move(r->base), r->frame, g);
    for (auto& [a, t] : r->tracked) {
      t = RemapDist(std::move(t), r->frame, g);
    }
    r->frame = g;
  }

  // ----------------------------------------------------------- combine ----

  // Fanout at which Combine switches to a sibling-product segment tree.
  // The threshold gates on fanout only — never on cache state — so cached
  // and uncached runs use the same association and stay bit-identical.
  static constexpr int kSiblingTreeMinFanout = 16;

  template <typename K>
  static std::vector<FlatDist<K>>& ProdVec(SubtreeCache::SiblingTree* tc) {
    if constexpr (std::is_same_v<K, WideKey>) {
      return tc->prod_w;
    } else {
      return tc->prod_n;
    }
  }

  // Combines probabilistically independent sibling regions: bases convolve;
  // each tracked anchor (living in exactly one part) convolves with every
  // other part's base. A single part passes through in its own frame (no
  // remap until an ancestor forces one). `kids` — when non-null — is the
  // child-id list aligned with `parts` (compacted in lockstep with the
  // identity drop); it keys the sibling-product tree memo for the site.
  Region Combine(PoolVec<Region> parts, NodeId g,
                 std::vector<NodeId>* kids = nullptr) {
    Region out;
    out.frame = g;
    if (parts.empty()) {
      out.base = DeltaDist(g);
      return out;
    }
    if (parts.size() == 1) return std::move(parts[0]);
    // Identity parts — delta base with mass 1, nothing tracked — arise from
    // mixes that collapsed (e.g. a mux over dead branches); convolving with
    // them is a no-op, so drop them before paying for it.
    {
      size_t kept = 0;
      for (size_t i = 0; i < parts.size(); ++i) {
        double mass;
        // The drop below branches on the singleton's mass — a value read.
        // Guard it so a probability delta that moves a unit base off 1.0
        // (or onto it) recompiles instead of replaying the wrong shape.
        if (rec_ != nullptr && parts[i].tracked.empty()) {
          RecUnitGuard(parts[i].base);
        }
        if (parts[i].tracked.empty() &&
            SingletonEmpty(parts[i].base, &mass) && mass == 1.0) {
          continue;
        }
        if (kept != i) {
          parts[kept] = std::move(parts[i]);
          if (kids != nullptr) (*kids)[kept] = (*kids)[i];
        }
        ++kept;
      }
      parts.Truncate(kept);
      if (kids != nullptr) kids->resize(kept);
      if (parts.empty()) {
        out.base = DeltaDist(g);
        return out;
      }
      if (parts.size() == 1) return std::move(parts[0]);
    }
    for (Region& r : parts) RemapRegionInPlace(&r, g);
    int tracked_parts = 0;
    for (const Region& r : parts) {
      if (!r.tracked.empty()) ++tracked_parts;
    }
    const int k = static_cast<int>(parts.size());
    // Tree route: high fanout, and few enough tracked parts that the
    // per-part O(log k) except-path products beat the prefix/suffix
    // arrays' 2k convolutions. Both inputs are pure functions of the
    // document + query, so every run of the same state routes the same way
    // (the bitwise cold-vs-incremental contract).
    if (sibling_tree_ && k >= kSiblingTreeMinFanout &&
        (tracked_parts + 1) * CeilLog2(k) <= 2 * k) {
      if (wide_[g]) return CombineTree<WideKey>(parts, g, kids);
      return CombineTree<NarrowKey>(parts, g, kids);
    }
    if (tracked_parts == 0) {
      Dist acc = std::move(parts[0].base);
      for (int i = 1; i < k; ++i) {
        acc = Convolve(acc, parts[i].base, g);
      }
      out.base = std::move(acc);
      return out;
    }
    // Unit bases — δ(∅, 1) — are exact multiplicative identities (every
    // value × 1.0 is bitwise itself), so they drop out of every sibling
    // product. The parts still carrying one here all have tracked anchors
    // (the identity-drop above removed the rest); their "everyone else"
    // product is just the full product over the non-unit bases. On
    // projected documents most bases collapse to units, so this turns a
    // 2k-convolution prefix/suffix sweep into a handful of real products
    // plus pure moves.
    combine_nz_.clear();
    for (int i = 0; i < k; ++i) {
      double mass;
      if (rec_ != nullptr) RecUnitGuard(parts[i].base);
      if (!(SingletonEmpty(parts[i].base, &mass) && mass == 1.0)) {
        combine_nz_.push_back(i);
      }
    }
    const int m = static_cast<int>(combine_nz_.size());
    size_t tracked_total = 0;
    for (const Region& r : parts) tracked_total += r.tracked.size();
    out.tracked.Reserve(pool_, tracked_total);
    if (m == 0) {
      out.base = DeltaDist(g);
      for (int i = 0; i < k; ++i) {
        for (auto& [n, t] : parts[i].tracked) {
          out.tracked.EmplaceBack(pool_, n, std::move(t));
        }
      }
      return out;
    }
    if (m <= 2) {
      // One or two real factors (the typical low-fanout shape): the sibling
      // products are the factors themselves — no prefix/suffix arrays. Same
      // products and association as the array path, so bit-identical.
      const int nz0 = combine_nz_[0];
      const int nz1 = m == 2 ? combine_nz_[1] : -1;
      Dist full;  // Product of both factors (m == 2 only).
      if (m == 2) full = Convolve(parts[nz0].base, parts[nz1].base, g);
      const Dist& all = m == 2 ? full : parts[nz0].base;
      const auto unit = [this](const Dist& d) {
        double mass;
        if (rec_ != nullptr) RecUnitGuard(d);
        return SingletonEmpty(d, &mass) && mass == 1.0;
      };
      for (int i = 0; i < k; ++i) {
        if (parts[i].tracked.empty()) continue;
        const Dist* other = nullptr;  // Unit sibling product → pass through.
        if (i == nz0) {
          if (m == 2) other = &parts[nz1].base;
        } else if (i == nz1) {
          other = &parts[nz0].base;
        } else {
          other = &all;
        }
        if (other == nullptr || unit(*other)) {
          for (auto& [n, t] : parts[i].tracked) {
            out.tracked.EmplaceBack(pool_, n, std::move(t));
          }
        } else {
          for (auto& [n, t] : parts[i].tracked) {
            out.tracked.EmplaceBack(pool_, n, Convolve(t, *other, g));
          }
        }
      }
      out.base = m == 2 ? std::move(full) : std::move(parts[nz0].base);
      return out;
    }
    // The prefix/suffix arrays persist across Combine calls (engine
    // members): steady-state high-fanout sites stop paying two pool
    // acquisitions per call.
    PoolVec<Dist>& prefix = prefix_scratch_;
    PoolVec<Dist>& suffix = suffix_scratch_;
    if (prefix.capacity() >= static_cast<size_t>(m) + 1) {
      ++prof_->combine_scratch_reuses;
    }
    prefix.Reserve(pool_, m + 1);
    suffix.Reserve(pool_, m + 1);
    for (int j = 0; j <= m; ++j) {
      prefix.EmplaceBack(pool_);
      suffix.EmplaceBack(pool_);
    }
    prefix[0] = DeltaDist(g);
    suffix[m] = DeltaDist(g);
    for (int j = 0; j < m; ++j) {
      prefix[j + 1] = Convolve(prefix[j], parts[combine_nz_[j]].base, g);
    }
    for (int j = m - 1; j >= 1; --j) {  // suffix[0] is never read.
      suffix[j] = Convolve(parts[combine_nz_[j]].base, suffix[j + 1], g);
    }
    const auto unit = [this](const Dist& d) {
      double mass;
      if (rec_ != nullptr) RecUnitGuard(d);
      return SingletonEmpty(d, &mass) && mass == 1.0;
    };
    int j = 0;  // Position of part i among the non-unit bases.
    for (int i = 0; i < k; ++i) {
      const bool non_unit = j < m && combine_nz_[j] == i;
      if (!parts[i].tracked.empty()) {
        // t × (prefix × suffix), not (t × prefix) × suffix: the sibling
        // product saturates at the base-state support, while a tracked
        // intermediate would cross starred keys with it and blow up first.
        // A unit-base part's sibling product is the full base product.
        const Dist* other = &prefix[m];
        Dist split;
        if (non_unit) {
          split = Convolve(prefix[j], suffix[j + 1], g);
          other = &split;
        }
        if (unit(*other)) {
          for (auto& [n, t] : parts[i].tracked) {
            out.tracked.EmplaceBack(pool_, n, std::move(t));
          }
        } else {
          for (auto& [n, t] : parts[i].tracked) {
            out.tracked.EmplaceBack(pool_, n, Convolve(t, *other, g));
          }
        }
      }
      if (non_unit) ++j;
    }
    out.base = std::move(prefix[m]);
    prefix.Truncate(0);
    suffix.Truncate(0);
    return out;
  }

  // High-fanout Combine through a sibling-product segment tree. Implicit
  // heap over the k parts: leaf j sits at heap index k + j, internal node
  // t in [1, k) is the convolution of its children 2t and 2t+1 (valid for
  // arbitrary k, not just powers of two); t = 1 is the product of every
  // part — the region base. Tracked anchors get their "product of everyone
  // else" by folding the O(log k) siblings on their leaf-to-root path.
  //
  // Under the subtree cache (kids != nullptr), the internal products are
  // memoized per site in the signature state, each validated by its leaf
  // span's child subtree version stamps: a delta under one child dirties
  // exactly the root path, so the incremental run recomputes O(log k)
  // products and serves the rest from the memo. Clean products are read in
  // place from the cache pool; recomputed ones are built in the run pool
  // and memcpy-cloned back, so cached and cold runs stay bit-identical.
  template <typename K>
  Region CombineTree(PoolVec<Region>& parts, NodeId g,
                     std::vector<NodeId>* kids) {
    const size_t n = parts.size();
    ++prof_->sibling_tree_sites;
    SubtreeCache::SiblingTree* tc = nullptr;
    bool fresh = true;  // No usable memoized products for this shape.
    if (cache_ != nullptr && sig_ != nullptr && kids != nullptr) {
      tc = &sig_->trees[g];
      constexpr bool kIsWide = std::is_same_v<K, WideKey>;
      if (tc->wide == kIsWide && tc->kids == *kids) {
        fresh = false;
      } else {
        tc->wide = kIsWide;
        tc->kids = *kids;
        tc->versions.assign(n, 0);
        tc->prod_n.clear();
        tc->prod_w.clear();
        ProdVec<K>(tc).resize(n);  // [1, n) used; default uninitialized.
      }
    }
    // Dirty plan: a leaf is dirty when its child's subtree version moved
    // (or there is no memo); an internal product is dirty when either child
    // is, or its cached dist was never captured.
    std::vector<uint8_t>& dirty = tree_dirty_;
    dirty.assign(2 * n, 1);
    if (!fresh) {
      for (size_t j = 0; j < n; ++j) {
        dirty[n + j] = tc->versions[j] != pd_.version((*kids)[j]);
      }
      for (size_t t = n - 1; t >= 1; --t) {
        dirty[t] = dirty[2 * t] || dirty[2 * t + 1] ||
                   !ProdVec<K>(tc)[t].initialized();
      }
    }
    // This run's recomputed products ([1, n) used, run pool).
    PoolVec<FlatDist<K>> tprod;
    tprod.Reserve(pool_, n);
    for (size_t t = 0; t < n; ++t) tprod.EmplaceBack(pool_);
    auto node = [&](size_t t) -> const FlatDist<K>& {
      if (t >= n) return DistAs<K>(parts[t - n].base);
      if (tprod[t].initialized()) return tprod[t];
      return ProdVec<K>(tc)[t];  // Clean ⇒ memo exists and holds it.
    };
    // Batched sweep over dirty leaf pairs whose dists are singletons: one
    // kernel pair_conv call per chunk instead of one convolution each.
    // Exact mode only — the scalar path would prune these 1-entry results.
    if (prune_eps_ == 0) {
      constexpr size_t kChunk = 64;
      K ka[kChunk], kb[kChunk], ok[kChunk];
      double va[kChunk], vb[kChunk], ov[kChunk];
      GateId gla[kChunk], glb[kChunk];
      size_t idx[kChunk];
      size_t m = 0;
      const auto flush = [&]() {
        if (m == 0) return;
        if constexpr (std::is_same_v<K, WideKey>) {
          kernel_->pair_conv_w(ka, va, kb, vb, m, ok, ov);
        } else {
          kernel_->pair_conv_n(ka, va, kb, vb, m, ok, ov);
        }
        for (size_t i = 0; i < m; ++i) {
          FlatDist<K> d;
          d.Init(pool_);
          if (rec_ != nullptr) {
            // pair_conv is one plain multiply per pair (simd.h contract).
            GateVec* v = rec_->NewVec();
            v->push_back(rec_->Mul(gla[i], glb[i]));
            d.shadow = v;
          }
          d.Add(ok[i], ov[i]);
          tprod[idx[i]] = std::move(d);
        }
        prof_->batched_pair_convs += m;
        m = 0;
      };
      for (size_t t = n - 1; t >= 1 && 2 * t >= n; --t) {
        if (!dirty[t]) continue;
        const FlatDist<K>& l = DistAs<K>(parts[2 * t - n].base);
        const FlatDist<K>& r = DistAs<K>(parts[2 * t + 1 - n].base);
        if (l.size() != 1 || r.size() != 1) continue;
        l.GetSingle(&ka[m], &va[m]);
        r.GetSingle(&kb[m], &vb[m]);
        if (rec_ != nullptr) {
          gla[m] = (*LaneGates(l))[0];
          glb[m] = (*LaneGates(r))[0];
        }
        idx[m] = t;
        if (++m == kChunk) flush();
      }
      flush();
    }
    for (size_t t = n - 1; t >= 1; --t) {
      if (!dirty[t]) {
        ++prof_->sibling_tree_reused;
        continue;
      }
      if (tprod[t].initialized()) continue;  // Batched sweep built it.
      tprod[t] = ConvolveF<K>(node(2 * t), node(2 * t + 1), g);
      ++prof_->sibling_tree_convs;
    }
    // Capture before the root product is moved out.
    if (tc != nullptr) {
      DistPool* cpool = cache_->pool();
      for (size_t t = 1; t < n; ++t) {
        if (tprod[t].initialized()) {
          ProdVec<K>(tc)[t] = tprod[t].CloneInto(cpool);
        }
      }
      for (size_t j = 0; j < n; ++j) {
        tc->versions[j] = pd_.version((*kids)[j]);
      }
    }
    Region out;
    out.frame = g;
    out.base.SetWide(std::is_same_v<K, WideKey>);
    if (tprod[1].initialized()) {
      DistAs<K>(out.base) = std::move(tprod[1]);
    } else {
      DistAs<K>(out.base) = ProdVec<K>(tc)[1].CloneInto(pool_);
    }
    size_t tracked_total = 0;
    for (const Region& r : parts) tracked_total += r.tracked.size();
    out.tracked.Reserve(pool_, tracked_total);
    for (size_t i = 0; i < n; ++i) {
      if (parts[i].tracked.empty()) continue;
      // Product of every part except i: fold the sibling of each node on
      // leaf i's root path, bottom-up (fixed association per site).
      FlatDist<K> other;
      other.Init(pool_);
      if (rec_ != nullptr) {
        GateVec* v = rec_->NewVec();
        v->push_back(rec_->Const(1.0));
        other.shadow = v;
      }
      other.Add(K{}, 1.0);
      for (size_t t = n + i; t > 1; t >>= 1) {
        other = ConvolveF<K>(other, node(t ^ 1), g);
        ++prof_->sibling_except_convs;
      }
      for (auto& [a, tr] : parts[i].tracked) {
        Dist o;
        o.SetWide(std::is_same_v<K, WideKey>);
        DistAs<K>(o) = ConvolveF<K>(DistAs<K>(tr), other, g);
        out.tracked.EmplaceBack(pool_, a, std::move(o));
      }
    }
    return out;
  }

  // One iterative bottom-up pass: children always carry larger node ids
  // than their parents (the arena appends), so a reverse scan computes
  // every node's contribution — the region conditioned on the edge into it
  // being taken — with its children's regions already final. No recursion,
  // so document depth is bounded by memory, not stack (the 3000-deep chain
  // stress test runs through here). Returns the root's region.
  // Dead-bit projection (uniform narrow frames only): a key bit is
  // *observable* above a node if some candidate at an ancestor reads it
  // (need mask) or the root acceptance does. A bits are read exactly one
  // ordinary level up and D bits survive each rewrite's DOnly, so
  //   obs(children of ordinary y) = reads(label(y)) | (DMask & obs(y)),
  // distributional nodes pass obs through. Projecting each region onto its
  // mask merges states that differ only in dead bits — the support of the
  // high-level sibling convolutions collapses to the few observable bits.
  void ComputeObs() {
    project_ = uniform_frame_;
    if (!project_) return;
    // Shares the analysis cache's key: obs reads only tree shape, labels
    // and the query structure, so a hit skips this whole O(|P̂|) pass too.
    if (analysis_cached_ && bufs_->obs_valid) return;
    // need-bit masks per label over every slot (anchor filtering only
    // removes candidates, so this is a safe superset).
    std::unordered_map<Label, NarrowKey> reads;
    for (int s = 0; s < static_cast<int>(qnodes_.size()); ++s) {
      const QNode& qn = qnodes_[s];
      NarrowKey need = 0;
      bool ok = true;
      for (int t : qn.slash_kids) {
        const int pt = PosInFrame(pd_.root(), t);
        if (pt < 0) ok = false; else need |= NarrowKey{1} << (2 * pt + 1);
      }
      for (int t : qn.desc_kids) {
        const int pt = PosInFrame(pd_.root(), t);
        if (pt < 0) ok = false; else need |= NarrowKey{1} << (2 * pt);
      }
      if (ok) reads[qn.label] |= need;
    }
    NarrowKey accept = 0;
    for (int slot : goal_root_slots_) {
      const int pos = PosInFrame(pd_.root(), slot);
      if (pos >= 0) accept |= NarrowKey{1} << (2 * pos + 1);
    }
    for (int slot : batch_root_slots_) {
      const int pos = PosInFrame(pd_.root(), slot);
      if (pos >= 0) accept |= NarrowKey{1} << (2 * pos + 1);
    }
    obs_.assign(pd_.size(), ~uint64_t{0});
    obs_[pd_.root()] = accept;
    for (NodeId n = 0; n < pd_.size(); ++n) {
      uint64_t child_obs;
      if (pd_.ordinary(n)) {
        NarrowKey r = 0;
        if (const auto it = reads.find(pd_.label(n)); it != reads.end()) {
          r = it->second;
        }
        child_obs = r | (kNarrowDMask & obs_[n]);
      } else {
        child_obs = obs_[n];
      }
      for (NodeId c : pd_.children(n)) obs_[c] = child_obs;
    }
    bufs_->obs_valid = true;
  }

  // ------------------------------------------------------ subtree cache ----

  enum : uint8_t { kCompute = 0, kHit = 1, kCovered = 2 };

  // Decides whether this run can use the incremental memo and, if so, plans
  // it: hits (nodes whose cached subtree version still matches) are marked
  // along with everything they cover, and the signature's entries are
  // flushed when the root frame epoch shifted (key bit layout / projection
  // masks would no longer line up).
  void SetupCache() {
    // Recording replays the full cold pass: cached regions would hide the
    // arithmetic that produced them from the circuit.
    if (rec_ != nullptr) return;
    if (cache_candidate_ == nullptr || cache_sig_ == nullptr) return;
    // Only the pure batched paths: fixed-anchor goals key candidate masks by
    // anchor sets, and support pruning makes results run-history-dependent.
    if (batch_count_ == 0 || !batch_feasible_) return;
    if (!goal_root_slots_.empty() || !anchor_of_.empty()) return;
    if (prune_eps_ > 0) return;
    cache_ = cache_candidate_;
    sig_ = cache_->Acquire(*cache_sig_);
    const NodeId root = pd_.root();
    const bool root_wide = wide_[root] != 0;
    std::vector<int8_t> root_slots;
    if (!root_wide) {
      int count;
      const int8_t* rs = NarrowSlots(root, &count);
      root_slots.assign(rs, rs + count);
    }
    if (sig_->valid &&
        (sig_->root_wide != root_wide || sig_->root_slots != root_slots)) {
      // Key bit layout shifted: sibling-tree products are keyed states too,
      // so they go with the entries.
      sig_->entries.clear();
      sig_->trees.clear();
      ++cache_->stats.flushes;
    }
    sig_->valid = true;
    sig_->root_wide = root_wide;
    sig_->root_slots = std::move(root_slots);
    // Forward plan: parents precede children in the arena, so each node can
    // inherit coverage from its parent before being inspected itself. Only
    // top-most valid entries become hits — everything below them is skipped
    // without even a map lookup. Non-covered live nodes get a *compact*
    // region slot so the pass constructs exactly as many Region objects as
    // it will touch — O(spine + hits), not O(live nodes).
    skip_.assign(pd_.size(), kCompute);
    active_slot_.assign(pd_.size(), -1);
    active_count_ = 0;
    for (NodeId n = 0; n < pd_.size(); ++n) {
      const NodeId par = pd_.parent(n);
      if (par != kNullNode && skip_[par] != kCompute) {
        skip_[n] = kCovered;
        continue;
      }
      if (region_slot_[n] < 0) continue;  // Dead regions are identities.
      const auto it = sig_->entries.find(n);
      if (it != sig_->entries.end() && it->second.version == pd_.version(n)) {
        skip_[n] = kHit;
      }
      active_slot_[n] = active_count_++;
    }
  }

  // Region storage slot of node `n` this run: the compact plan slot under
  // the subtree cache, the full per-live-node slot otherwise. -1 = the node
  // contributes the identity (dead) or is covered by a cached ancestor.
  int32_t SlotOf(NodeId n) const {
    return cache_ != nullptr ? active_slot_[n] : region_slot_[n];
  }

  // Rebuilds the cached region of `n` in the run arena. Blocks are
  // memcpy-cloned, so table layout — hence downstream iteration order and
  // floating-point rounding — matches the capture exactly.
  Region LoadCached(NodeId n) {
    const SubtreeCache::Entry& e = sig_->entries.find(n)->second;
    Region r;
    r.frame = e.frame;
    r.base.SetWide(e.wide);
    if (e.wide) {
      r.base.w = e.base_w.CloneInto(pool_);
    } else {
      r.base.n = e.base_n.CloneInto(pool_);
    }
    r.tracked.Reserve(pool_, e.tracked_nodes.size());
    for (size_t i = 0; i < e.tracked_nodes.size(); ++i) {
      Dist d;
      d.SetWide(e.wide);
      if (e.wide) {
        d.w = e.tracked_w[i].CloneInto(pool_);
      } else {
        d.n = e.tracked_n[i].CloneInto(pool_);
      }
      r.tracked.EmplaceBack(pool_, e.tracked_nodes[i], std::move(d));
    }
    return r;
  }

  void StoreCached(NodeId n, const Region& r) {
    SubtreeCache::Entry& e = sig_->entries[n];
    DistPool* cpool = cache_->pool();
    e.version = pd_.version(n);
    e.frame = r.frame;
    e.wide = r.base.wide;
    e.base_n = FlatDist<uint64_t>();
    e.base_w = FlatDist<WideKey>();
    if (e.wide) {
      e.base_w = r.base.w.CloneInto(cpool);
    } else {
      e.base_n = r.base.n.CloneInto(cpool);
    }
    e.tracked_nodes.clear();
    e.tracked_n.clear();
    e.tracked_w.clear();
    for (const auto& [a, t] : r.tracked) {
      PXV_CHECK_EQ(t.wide, e.wide);
      e.tracked_nodes.push_back(a);
      if (e.wide) {
        e.tracked_w.push_back(t.w.CloneInto(cpool));
      } else {
        e.tracked_n.push_back(t.n.CloneInto(cpool));
      }
    }
    ++cache_->stats.stores;
  }

  Region EvalRegions() {
    ComputeObs();
    SetupCache();
    const NodeId root = pd_.root();
    if (SlotOf(root) < 0) {
      // No query label occurs anywhere: the whole document is one identity.
      Region r;
      r.frame = root;
      r.base = DeltaDist(root);
      return r;
    }
    const int32_t slots = cache_ != nullptr ? active_count_ : region_count_;
    PoolVec<Region> regions;
    regions.Reserve(pool_, slots);
    for (int32_t i = 0; i < slots; ++i) regions.EmplaceBack(pool_);
    for (NodeId n = pd_.size() - 1; n >= 0; --n) {
      const int32_t slot = SlotOf(n);
      if (slot < 0) continue;
      if (cache_ != nullptr) {
        if (skip_[n] == kHit) {
          ++cache_->stats.hits;
          regions[slot] = LoadCached(n);
          continue;
        }
        ComputeRegion(n, &regions, &regions[slot]);
        StoreCached(n, regions[slot]);
        continue;
      }
      ComputeRegion(n, &regions, &regions[slot]);
    }
    return std::move(regions[SlotOf(root)]);
  }

  // Contribution of node `n`, consuming the already-computed child regions,
  // written directly into `*out` (the node's region slot — skipping a
  // Region move-assign per node). The result may live in a descendant's
  // frame (lazy remapping); callers needing a specific frame remap it
  // themselves.
  void ComputeRegion(NodeId n, PoolVec<Region>* regions, Region* out) {
    switch (pd_.kind(n)) {
      case PKind::kOrdinary:
        NodeDist(n, regions, out);
        return;
      case PKind::kDet: {
        PoolVec<Region> parts;
        parts.Reserve(pool_, pd_.children(n).size());
        combine_kids_.clear();
        for (NodeId c : pd_.children(n)) {
          if (SlotOf(c) < 0) continue;  // Identity contribution.
          parts.EmplaceBack(pool_, std::move((*regions)[SlotOf(c)]));
          combine_kids_.push_back(c);
        }
        *out = Combine(std::move(parts), n, &combine_kids_);
        return;
      }
      case PKind::kMux: {
        Region& acc = *out;
        acc.frame = n;
        double total = 0;
        GateId gtotal = rec_ != nullptr ? rec_->Const(0.0) : kNoGate;
        for (NodeId c : pd_.children(n)) {
          const double p = pd_.edge_prob(c);
          GateId gp = kNoGate;
          if (rec_ != nullptr) {
            gp = rec_->InputEdge(c, p);
            gtotal = rec_->Add(gtotal, gp);
            // The skip below branches on p == 0 — dead alternatives leave
            // no gates behind, so a flip must recompile.
            rec_->Guard(gp, GuardKind::kIsZero, p == 0);
          }
          total += p;
          if (p == 0) continue;
          if (SlotOf(c) < 0) {
            // Dead alternative: contributes the empty state with mass p.
            AddEmptyMassInit(&acc.base, p, wide_[n], gp);
            continue;
          }
          Region r = std::move((*regions)[SlotOf(c)]);
          RemapRegionInPlace(&r, n);
          AddScaledDist(&acc.base, r.base, p, gp);
          // Alternatives are exclusive, so an anchor lives in one branch.
          if (acc.tracked.empty()) {
            acc.tracked = std::move(r.tracked);
            for (auto& [a, t] : acc.tracked) DistScale(&t, p, gp);
          } else {
            for (auto& [a, t] : r.tracked) {
              DistScale(&t, p, gp);
              acc.tracked.EmplaceBack(pool_, a, std::move(t));
            }
          }
        }
        if (rec_ != nullptr) {
          rec_->Guard(gtotal, GuardKind::kLtOne, total < 1.0);
        }
        if (total < 1.0) {
          AddEmptyMassInit(
              &acc.base, 1.0 - total, wide_[n],
              rec_ != nullptr ? rec_->Sub(rec_->Const(1.0), gtotal)
                              : kNoGate);
        }
        MaybePrune(&acc.base);
        return;
      }
      case PKind::kInd: {
        PoolVec<Region> parts;
        parts.Reserve(pool_, pd_.children(n).size());
        combine_kids_.clear();
        for (NodeId c : pd_.children(n)) {
          if (SlotOf(c) < 0) continue;  // p·δ + (1−p)·δ = identity.
          combine_kids_.push_back(c);
          const double p = pd_.edge_prob(c);
          GateId gp = kNoGate;
          if (rec_ != nullptr) {
            gp = rec_->InputEdge(c, p);
            // Both branches below read p (p ∈ [0, 1], so p > 0 ⇔ p != 0
            // and p < 1 ⇔ p != 1): a delta crossing either boundary
            // changes which gates exist and must recompile.
            rec_->Guard(gp, GuardKind::kIsZero, p == 0);
            rec_->Guard(gp, GuardKind::kIsOne, p == 1.0);
          }
          Region mixed;
          mixed.frame = c;
          if (p > 0) {
            Region r = std::move((*regions)[SlotOf(c)]);
            mixed.frame = r.frame;
            AddScaledDist(&mixed.base, r.base, p, gp);
            // The anchor requires its own edge to be taken.
            mixed.tracked = std::move(r.tracked);
            for (auto& [a, t] : mixed.tracked) DistScale(&t, p, gp);
          }
          if (p < 1.0) {
            AddEmptyMassInit(
                &mixed.base, 1.0 - p, wide_[mixed.frame],
                rec_ != nullptr ? rec_->Sub(rec_->Const(1.0), gp)
                                : kNoGate);
          }
          parts.EmplaceBack(pool_, std::move(mixed));
        }
        *out = Combine(std::move(parts), n, &combine_kids_);
        return;
      }
      case PKind::kExp: {
        const auto& kids = pd_.children(n);
        // Each child's region once; subsets recombine cloned copies. Dead
        // children materialize as explicit identities: subset indices must
        // stay aligned with child positions.
        PoolVec<Region> kid_regions;
        kid_regions.Reserve(pool_, kids.size());
        for (NodeId c : kids) {
          if (SlotOf(c) < 0) {
            Region r;
            r.frame = c;
            r.base = DeltaDist(c);
            kid_regions.EmplaceBack(pool_, std::move(r));
          } else {
            kid_regions.EmplaceBack(pool_, std::move((*regions)[SlotOf(c)]));
          }
        }
        Region& acc = *out;
        acc.frame = n;
        double total = 0;
        GateId gtotal = rec_ != nullptr ? rec_->Const(0.0) : kNoGate;
        int32_t subset_idx = -1;
        if (rec_ != nullptr) {
          // Probability-only SetExpDistribution keeps the circuit; a subset
          // reshape is caught by this signature at serve time.
          rec_->NoteExpStructure(n, ExpStructureSig(pd_, n));
        }
        std::unordered_map<NodeId, Dist> tracked_acc;
        for (const auto& [subset, p] : pd_.exp_distribution(n)) {
          ++subset_idx;
          GateId gp = kNoGate;
          if (rec_ != nullptr) {
            gp = rec_->InputExp(n, subset_idx, p);
            gtotal = rec_->Add(gtotal, gp);
            rec_->Guard(gp, GuardKind::kIsZero, p == 0);
          }
          total += p;
          if (p == 0) continue;
          PoolVec<Region> parts;
          parts.Reserve(pool_, subset.size());
          for (int idx : subset) {
            parts.EmplaceBack(pool_, CloneRegion(kid_regions[idx]));
          }
          Region sub = Combine(std::move(parts), n);
          RemapRegionInPlace(&sub, n);
          AddScaledDist(&acc.base, sub.base, p, gp);
          // The same anchor can survive through several subsets.
          for (auto& [a, t] : sub.tracked) {
            AddScaledDist(&tracked_acc[a], t, p, gp);
          }
        }
        if (rec_ != nullptr) {
          rec_->Guard(gtotal, GuardKind::kLtOne, total < 1.0);
        }
        if (total < 1.0) {
          AddEmptyMassInit(
              &acc.base, 1.0 - total, wide_[n],
              rec_ != nullptr ? rec_->Sub(rec_->Const(1.0), gtotal)
                              : kNoGate);
        }
        MaybePrune(&acc.base);
        acc.tracked.Reserve(pool_, tracked_acc.size());
        for (auto& [a, t] : tracked_acc) {
          acc.tracked.EmplaceBack(pool_, a, std::move(t));
        }
        return;
      }
    }
    PXV_CHECK(false);
  }

  // ----------------------------------------------------------- rewrite ----

  // Rewrites a distribution at an ordinary node: D bits flow up, then every
  // candidate whose (need) bits hold in the incoming key gains its (set)
  // bits. Mask-compiled form of the per-child bit probing. The dead-bit
  // projection (see ComputeObs) is fused into the same pass: each output
  // key is masked onto the upward-observable bits as it is inserted, so a
  // projected rewrite costs one table build instead of two.
  template <typename K>
  FlatDist<K> RewriteT(const FlatDist<K>& in,
                       const std::vector<std::pair<K, K>>& cands,
                       const std::vector<std::pair<K, K>>& extra,
                       const K& proj) {
    FlatDist<K> out;
    out.Init(pool_, in.size() <= 1 ? FlatDist<K>::kInlineCapLog2
                                   : in.cap_log2());
    const K dmask = DMask<K>();
    const GateVec* gin = rec_ != nullptr ? LaneGates(in) : nullptr;
    size_t li = 0;
    in.ForEach([&](const K& key, double p) {
      K nk = KeyAnd(key, dmask);
      for (const auto& [need, set] : cands) {
        if (HasAll(key, need)) nk = nk | set;
      }
      for (const auto& [need, set] : extra) {
        if (HasAll(key, need)) nk = nk | set;
      }
      // Rewrites move/merge masses between keys without arithmetic on the
      // values themselves — lane gates just follow their lanes.
      if (rec_ != nullptr) RecMergeAdd(&out, KeyAnd(nk, proj), (*gin)[li++]);
      out.Add(KeyAnd(nk, proj), p);
    });
    return out;
  }

  // In-place RewriteT: stages the lanes aside in the conv scratch, resets
  // the table keeping its block (a rewrite never yields more distinct keys
  // than it consumed, so the capacity always suffices) and re-inserts.
  // Same per-entry expressions and insertion order as RewriteT — results
  // are bit-identical — minus the pool release/acquire round trip per
  // rewritten dist, which dominates the per-node cost on documents whose
  // dists are small.
  template <typename K>
  void RewriteTInPlace(FlatDist<K>* d,
                       const std::vector<std::pair<K, K>>& cands,
                       const std::vector<std::pair<K, K>>& extra,
                       const K& proj) {
    if (!d->initialized()) {
      d->Init(pool_);  // Match RewriteT: initialized, empty.
      return;
    }
    const K dmask = DMask<K>();
    const size_t n = d->size();
    if (n <= 1) {
      K key;
      double p;
      if (!d->GetSingle(&key, &p)) return;
      K nk = KeyAnd(key, dmask);
      for (const auto& [need, set] : cands) {
        if (HasAll(key, need)) nk = nk | set;
      }
      for (const auto& [need, set] : extra) {
        if (HasAll(key, need)) nk = nk | set;
      }
      d->ResetEntries();
      d->Add(KeyAnd(nk, proj), p);
      return;
    }
    ConvScratch& cs = *conv_;
    const K* keys;
    const double* vals;
    d->LaneView(&keys, &vals);
    if constexpr (std::is_same_v<K, WideKey>) {
      cs.wrow_keys.assign(keys, keys + n);
    } else {
      cs.row_keys.assign(keys, keys + n);
    }
    cs.row_vals.assign(vals, vals + n);
    // Stage the lane gates aside too: the re-insert below rebuilds the lane
    // list (possibly merging keys), and the annotation must follow it.
    GateVec staged_gates;
    if (rec_ != nullptr) {
      GateVec* v = LaneGates(*d);
      PXV_CHECK(v != nullptr);
      staged_gates = *v;
      v->clear();
    }
    d->ResetEntries();
    const K* sk;
    if constexpr (std::is_same_v<K, WideKey>) {
      sk = cs.wrow_keys.data();
    } else {
      sk = cs.row_keys.data();
    }
    for (size_t i = 0; i < n; ++i) {
      const K key = sk[i];
      K nk = KeyAnd(key, dmask);
      for (const auto& [need, set] : cands) {
        if (HasAll(key, need)) nk = nk | set;
      }
      for (const auto& [need, set] : extra) {
        if (HasAll(key, need)) nk = nk | set;
      }
      if (rec_ != nullptr) RecMergeAdd(d, KeyAnd(nk, proj), staged_gates[i]);
      d->Add(KeyAnd(nk, proj), cs.row_vals[i]);
    }
  }

  // Projection mask for ordinary node `x` in each key width (wide keys are
  // never projected — projection is a uniform-narrow-frame optimization).
  NarrowKey ProjMaskN(NodeId x) const {
    return project_ ? obs_[x] : ~NarrowKey{0};
  }
  static WideKey ProjMaskW() {
    WideKey all;
    for (auto& w : all.w) w = ~uint64_t{0};
    return all;
  }

  // Applies `masks` plus optionally `extra` (star or pin candidates),
  // projecting the result onto `x`'s observable bits.
  Dist RewriteDist(const Dist& in, NodeId x, bool wide, const Masks& masks,
                   const Masks& extra) {
    Dist out;
    out.SetWide(wide);
    if (wide) {
      out.w = RewriteT(in.w, masks.w, extra.w, ProjMaskW());
    } else {
      out.n = RewriteT(in.n, masks.n, extra.n, ProjMaskN(x));
    }
    MaybePrune(&out);
    return out;
  }

  // In-place variant of RewriteDist (bit-identical results; see
  // RewriteTInPlace).
  void RewriteDistInPlace(Dist* d, NodeId x, bool wide, const Masks& masks,
                          const Masks& extra) {
    if (wide) {
      RewriteTInPlace(&d->w, masks.w, extra.w, ProjMaskW());
    } else {
      RewriteTInPlace(&d->n, masks.n, extra.n, ProjMaskN(x));
    }
    MaybePrune(d);
  }

  struct LabelMasks {
    Masks base, star, pin;
    // Leaf fast path: Rewrite(δ) yields one key — the OR of `set` masks of
    // candidates with no child requirements. Cached per label/width.
    NarrowKey leaf_base_n = 0, leaf_pin_n = 0;
    WideKey leaf_base_w, leaf_pin_w;
  };

  // Compiles every candidate list for label `xl` at node `x` (positions are
  // node-independent when the frame is uniform).
  void CompileLabelMasks(NodeId x, Label xl, LabelMasks* out) {
    if (auto it = by_label_.find(xl); it != by_label_.end()) {
      for (int slot : it->second) {
        const auto ait = anchor_of_.find(slot);
        if (ait != anchor_of_.end() &&
            anchor_sets_[ait->second].count(x) == 0) {
          continue;  // Anchored elsewhere.
        }
        CompileCandidate(x, slot, &out->base);
      }
    }
    // Tracked dists additionally apply starred (main-branch) candidates.
    if (auto it = by_label_star_.find(xl); it != by_label_star_.end()) {
      for (int slot : it->second) CompileCandidate(x, slot, &out->star);
    }
    if (batch_feasible_ && batch_count_ > 0 && xl == batch_out_label_) {
      for (int slot : pin_slots_) CompileCandidate(x, slot, &out->pin);
    }
    for (const auto& [need, set] : out->base.n) {
      if (need == 0) out->leaf_base_n |= set;
    }
    for (const auto& [need, set] : out->base.w) {
      if (need.IsEmpty()) out->leaf_base_w = out->leaf_base_w | set;
    }
    out->leaf_pin_n = out->leaf_base_n;
    out->leaf_pin_w = out->leaf_base_w;
    for (const auto& [need, set] : out->pin.n) {
      if (need == 0) out->leaf_pin_n |= set;
    }
    for (const auto& [need, set] : out->pin.w) {
      if (need.IsEmpty()) out->leaf_pin_w = out->leaf_pin_w | set;
    }
  }

  // Per-label mask table for uniform-frame, unanchored runs (masks depend
  // on the node only through its label there): an array lookup through the
  // dense label index from the analysis pass, compiled on first touch.
  const LabelMasks& MasksForLabel(NodeId x, Label xl) {
    const int32_t ls = label_slot_[x];
    if (ls < 0) {  // Not a live ordinary node (defensive; never on-path).
      auto [it, inserted] = label_masks_.try_emplace(xl);
      if (inserted) CompileLabelMasks(x, xl, &it->second);
      return it->second;
    }
    if (label_masks_flat_.empty()) {
      label_masks_flat_.resize(bufs_->label_count);
      label_masks_ready_.assign(bufs_->label_count, 0);
    }
    if (!label_masks_ready_[ls]) {
      CompileLabelMasks(x, xl, &label_masks_flat_[ls]);
      label_masks_ready_[ls] = 1;
    }
    return label_masks_flat_[ls];
  }

  // Compiles candidate slot `s` into a (need, set) mask pair in `x`'s frame.
  // Returns false when a required child slot is not live in the subtree —
  // the candidate can never fire at `x`.
  bool CompileCandidate(NodeId x, int s, Masks* masks) {
    const QNode& qn = qnodes_[s];
    if (wide_[x]) {
      WideKey need, set;
      for (int t : qn.slash_kids) WideSetBit(&need, 2 * t + 1);  // A(t).
      for (int t : qn.desc_kids) WideSetBit(&need, 2 * t);       // D(t).
      WideSetBit(&set, 2 * s + 1);
      WideSetBit(&set, 2 * s);
      masks->w.emplace_back(need, set);
      return true;
    }
    NarrowKey need = 0;
    for (int t : qn.slash_kids) {
      const int pt = PosInFrame(x, t);
      if (pt < 0) return false;  // Need A(t) at a kept child.
      need |= NarrowKey{1} << (2 * pt + 1);
    }
    for (int t : qn.desc_kids) {
      const int pt = PosInFrame(x, t);
      if (pt < 0) return false;  // Need D(t): strictly below x.
      need |= NarrowKey{1} << (2 * pt);
    }
    const int ps = PosInFrame(x, s);
    PXV_CHECK_GE(ps, 0);  // s's label is x's label, so s is live here.
    masks->n.emplace_back(need, NarrowKey{3} << (2 * ps));  // A and D.
    return true;
  }

  // (A, D) region of ordinary node `x`, given x appears, written into
  // `*outp` (x's region slot). Always produced in x's own frame.
  void NodeDist(NodeId x, PoolVec<Region>* regions, Region* outp) {
    (wide_[x] ? prof_->wide_nodes : prof_->narrow_nodes)++;
    const Label xl = pd_.label(x);
    bool any_parts = false;
    for (NodeId c : pd_.children(x)) {
      if (SlotOf(c) >= 0) {
        any_parts = true;
        break;
      }
    }
    // Leaf fast path (also: nodes whose children are all dead): the
    // combined child state is δ, so the rewrite collapses to one
    // precomputed key per label — no tables, no iteration.
    if (!any_parts && (uniform_frame_ && anchor_of_.empty())) {
      const LabelMasks& lm = MasksForLabel(x, xl);
      Region& out = *outp;
      out.frame = x;
      out.base = MakeDist(wide_[x]);
      if (rec_ != nullptr) RecSeedSingleton(&out.base, rec_->Const(1.0));
      if (wide_[x]) {
        out.base.w.Add(lm.leaf_base_w, 1.0);
      } else {
        out.base.n.Add(lm.leaf_base_n & ProjMaskN(x), 1.0);
      }
      if (batch_feasible_ && batch_count_ > 0 && xl == batch_out_label_) {
        Dist pin = MakeDist(wide_[x]);
        if (rec_ != nullptr) RecSeedSingleton(&pin, rec_->Const(1.0));
        if (wide_[x]) {
          pin.w.Add(lm.leaf_pin_w, 1.0);
        } else {
          pin.n.Add(lm.leaf_pin_n & ProjMaskN(x), 1.0);
        }
        out.tracked.EmplaceBack(pool_, x, std::move(pin));
      }
      return;
    }

    PoolVec<Region> parts;
    parts.Reserve(pool_, pd_.children(x).size());
    combine_kids_.clear();
    for (NodeId c : pd_.children(x)) {
      if (SlotOf(c) < 0) continue;  // Identity contribution.
      parts.EmplaceBack(pool_, std::move((*regions)[SlotOf(c)]));
      combine_kids_.push_back(c);
    }
    Region comb = Combine(std::move(parts), x, &combine_kids_);
    RemapRegionInPlace(&comb, x);
    // With a uniform frame and no per-node anchor filtering, candidate
    // masks depend on the node only through its label — compile them once
    // per label. (Anchored conjunctions and the wide/narrow frontier fall
    // back to per-node compilation.)
    const LabelMasks* cached = nullptr;
    LabelMasks local;
    if (uniform_frame_ && anchor_of_.empty()) {
      cached = &MasksForLabel(x, xl);
    } else {
      CompileLabelMasks(x, xl, &local);
      cached = &local;
    }
    const Masks& base_masks = cached->base;
    const Masks& star_masks = cached->star;
    const Masks& pin_masks = cached->pin;

    Region& out = *outp;
    out.frame = x;
    // x itself becomes a tracked anchor: pin every member's out slot here.
    // (Computed first — it reads the pre-rewrite comb.base, which the base
    // rewrite below then consumes in place.)
    const bool pin_here =
        batch_feasible_ && batch_count_ > 0 && xl == batch_out_label_;
    Dist pinned;
    if (pin_here) {
      pinned = RewriteDist(comb.base, x, wide_[x], base_masks, pin_masks);
    }
    RewriteDistInPlace(&comb.base, x, wide_[x], base_masks, kNoMasks);
    out.base = std::move(comb.base);
    // Rewrite tracked dists in place: the vector, its pairs and each
    // dist's storage block all carry over.
    out.tracked = std::move(comb.tracked);
    for (auto& [n, t] : out.tracked) {
      RewriteDistInPlace(&t, x, wide_[x], base_masks, star_masks);
    }
    if (pin_here) {
      out.tracked.EmplaceBack(pool_, x, std::move(pinned));
    }
  }

  const PDocument& pd_;
  const int batch_count_;
  DistPool* pool_;
  DistProfile* prof_;
  ConvScratch* conv_;        // Kernel staging buffers (scratch-owned).
  const KernelOps* kernel_;  // Resolved once per backend (see simd.h).
  const double prune_eps_;
  const bool sibling_tree_;
  SubtreeCache* const cache_candidate_;  // From EngineOptions (may be null).
  const std::string* const cache_sig_;
  SubtreeCache* cache_ = nullptr;  // Non-null once SetupCache accepts the run.
  SubtreeCache::SigState* sig_ = nullptr;
  CircuitRecorder* rec_ = nullptr;  // Circuit sink; null = no recording.
  std::vector<GateId> gdense_;  // DenseConvolve's gate scatter (record only).
  EngineBuffers* bufs_;
  bool analysis_cached_ = false;  // This run reused the cached analysis.
  std::vector<QNode> qnodes_;
  std::vector<int> goal_root_slots_;
  std::vector<int> batch_root_slots_;
  std::vector<int> pin_slots_;
  std::unordered_map<Label, std::vector<int>> by_label_;
  std::unordered_map<Label, std::vector<int>> by_label_star_;
  std::unordered_map<int, int> anchor_of_;
  std::vector<std::unordered_set<NodeId>> anchor_sets_;
  // Analysis buffers borrowed from the scratch (reused across runs).
  std::vector<SlotSet>& live_;
  std::vector<uint8_t>& wide_;
  std::vector<int32_t>& region_slot_;  // Compact slot per live node; -1 dead.
  std::vector<int8_t>& slots_flat_;  // kNarrowSlotCap bytes per live node.
  std::vector<uint8_t>& slots_len_;  // 0 = not yet extracted.
  std::vector<uint64_t>& obs_;  // Per-node upward-observable key masks.
  std::vector<uint8_t>& skip_;  // Per-node cache plan (kCompute/kHit/kCovered).
  std::vector<int32_t>& active_slot_;  // Compact slots (cache-enabled runs).
  std::vector<int32_t>& label_slot_;  // Dense label index at live ordinary.
  int32_t active_count_ = 0;
  bool project_ = false;  // Dead-bit projection active (uniform narrow).
  int32_t region_count_ = 0;
  bool uniform_frame_ = false;  // Root narrow ⇒ one frame for everything.
  std::unordered_map<Label, LabelMasks> label_masks_;
  // Flat per-run mask table indexed by label_slot_ (uniform-frame runs);
  // `ready` marks compiled entries.
  std::vector<LabelMasks> label_masks_flat_;
  std::vector<uint8_t> label_masks_ready_;
  // Combine scratch, reused across calls within the run: prefix/suffix
  // arrays of the tracked path, the child-id list threaded into the
  // sibling-tree memo, and the tree's dirty plan.
  PoolVec<Dist> prefix_scratch_, suffix_scratch_;
  std::vector<NodeId> combine_kids_;
  std::vector<int> combine_nz_;  // Non-unit-base part indices (Combine).
  std::vector<uint8_t> tree_dirty_;
  static const Masks kNoMasks;
  Label batch_out_label_ = 0;
  bool batch_out_label_set_ = false;
  bool batch_feasible_ = true;
};

const Masks Engine::kNoMasks;

}  // namespace

int ConjunctionSlotCount(const std::vector<Goal>& goals) {
  int total = 0;
  for (const Goal& g : goals) {
    PXV_CHECK(g.pattern != nullptr);
    total += g.pattern->size();
  }
  return total;
}

int BatchSlotCount(const std::vector<const Pattern*>& members) {
  int total = 0;
  for (const Pattern* m : members) {
    PXV_CHECK(m != nullptr);
    total += m->size();
  }
  return total;
}

double ConjunctionProbability(const PDocument& pd,
                              const std::vector<Goal>& goals,
                              DpScratch* scratch,
                              const EngineOptions& options) {
  PXV_CHECK(!pd.empty());
  if (goals.empty()) return 1.0;
  scratch->BeginRun();
  double p;
  {
    Engine engine(pd, goals, {}, scratch, options);
    p = engine.Probability();
  }
  scratch->EndRun();
  return p;
}

double ConjunctionProbability(const PDocument& pd,
                              const std::vector<Goal>& goals) {
  // Per-thread scratch: the legacy per-call API stays allocation-free in
  // steady state instead of building a fresh arena every call.
  static thread_local DpScratch scratch;
  return ConjunctionProbability(pd, goals, &scratch, {});
}

std::vector<NodeProb> BatchAnchoredProbabilities(
    const PDocument& pd, const std::vector<const Pattern*>& members,
    DpScratch* scratch, const EngineOptions& options) {
  PXV_CHECK(!pd.empty());
  if (members.empty()) return {};
  scratch->BeginRun();
  std::vector<NodeProb> out;
  {
    Engine engine(pd, {}, members, scratch, options);
    out = engine.BatchResults();
  }
  scratch->EndRun();
  return out;
}

std::vector<NodeProb> BatchAnchoredProbabilities(
    const PDocument& pd, const std::vector<const Pattern*>& members) {
  static thread_local DpScratch scratch;
  return BatchAnchoredProbabilities(pd, members, &scratch, {});
}

std::vector<NodeProb> BatchSelectionProbabilities(const PDocument& pd,
                                                  const Pattern& q) {
  return BatchAnchoredProbabilities(pd, {&q});
}

std::vector<std::vector<NodeProb>> BatchManyProbabilities(
    const PDocument& pd, const std::vector<const Pattern*>& members,
    DpScratch* scratch, const EngineOptions& options) {
  PXV_CHECK(!pd.empty());
  if (members.empty()) return {};
  for (const Pattern* m : members) {
    PXV_CHECK(m != nullptr);
    PXV_CHECK_EQ(m->OutLabel(), members[0]->OutLabel())
        << "BatchManyProbabilities members must share the output label";
  }
  scratch->BeginRun();
  std::vector<std::vector<NodeProb>> out;
  {
    Engine engine(pd, {}, members, scratch, options);
    out = engine.BatchResultsMany();
  }
  scratch->EndRun();
  return out;
}

std::vector<std::vector<NodeProb>> BatchManyProbabilities(
    const PDocument& pd, const std::vector<const Pattern*>& members) {
  static thread_local DpScratch scratch;
  return BatchManyProbabilities(pd, members, &scratch, {});
}

}  // namespace pxv
