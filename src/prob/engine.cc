// Flat-kernel implementation of the bottom-up DP declared in engine.h.
//
// Two ideas on top of the textbook pass (see engine_reference.cc for the
// plain version):
//
//  1. Flat arena-backed distributions. Every sparse (A, D) distribution is
//     a FlatDist (prob/dist.h): open addressing over one pool block, so a
//     pass bump-allocates and recycles blocks instead of exercising
//     malloc/free per hash-map node.
//
//  2. Live-slot key narrowing. For each p-document subtree, the set of
//     query slots that can possibly be set is known up front: a slot's
//     label must occur on an ordinary node of the subtree. Each node's
//     *frame* is its subtree's live slot list; while at most
//     kNarrowSlotCap (32) slots are live, the whole subtree's algebra runs
//     on a 1-word key holding 2 bits per live slot — one hash, one
//     compare, one OR per operation instead of four. Keys are remapped
//     (a bit permutation) only where a region crosses into a parent frame
//     with a different live set; frames with more than 32 live slots fall
//     back to the 256-bit WideKey over global slot positions. Regions
//     travel upward in their own frame until a combine forces a common
//     one, so deterministic chains never pay a remap.
//
// Candidate application (Rewrite) is also mask-compiled per node: each
// candidate slot becomes a (need, set) key-mask pair, so applying it to a
// key is an AND+compare+OR rather than per-child bit probing.

#include "prob/engine.h"

#include <algorithm>
#include <array>
#include <cstdint>
#include <new>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "util/check.h"

namespace pxv {

// Incremental per-subtree memo (see engine.h). Lives at namespace scope so
// ExactDpBackend can own one through the opaque pointer; the entry payloads
// are plain FlatDists over the cache's own persistent scratch (its arena is
// only reset when every signature is evicted at once).
class SubtreeCache {
 public:
  struct Entry {
    uint64_t version = 0;
    NodeId frame = kNullNode;
    bool wide = false;
    FlatDist<uint64_t> base_n;  // Valid iff !wide …
    FlatDist<WideKey> base_w;   // … valid iff wide.
    std::vector<NodeId> tracked_nodes;
    std::vector<FlatDist<uint64_t>> tracked_n;
    std::vector<FlatDist<WideKey>> tracked_w;
  };

  // Frame epoch + per-node entries of one query signature.
  struct SigState {
    bool valid = false;
    bool root_wide = false;
    std::vector<int8_t> root_slots;  // Root live slot list (narrow roots).
    std::unordered_map<NodeId, Entry> entries;
  };

  // Signatures a cache holds before evicting wholesale. Eviction drops
  // everything at once so the arena can be reclaimed wholesale too (blocks
  // bump-allocated from it are never returned individually).
  static constexpr size_t kMaxSignatures = 16;

  SigState* Acquire(const std::string& sig) {
    auto it = sigs_.find(sig);
    if (it != sigs_.end()) return &it->second;
    if (sigs_.size() >= kMaxSignatures) {
      sigs_.clear();        // Releases every entry's blocks into the pool…
      scratch_.BeginRun();  // …then reclaims pool and arena wholesale.
      ++stats.flushes;
    }
    return &sigs_[sig];
  }

  DistPool* pool() { return scratch_.pool(); }

  // Whole-cache drop (see engine.h InvalidateSubtreeCache): same wholesale
  // reclamation as the kMaxSignatures eviction, different counter.
  void Invalidate() {
    sigs_.clear();
    scratch_.BeginRun();
    ++stats.invalidations;
  }

  SubtreeCacheStats stats;

  uint64_t EntryCount() const {
    uint64_t n = 0;
    for (const auto& [sig, st] : sigs_) n += st.entries.size();
    return n;
  }
  uint64_t SignatureCount() const { return sigs_.size(); }

 private:
  DpScratch scratch_;
  std::unordered_map<std::string, SigState> sigs_;
};

void SubtreeCacheDeleter::operator()(SubtreeCache* cache) const {
  delete cache;
}

SubtreeCachePtr MakeSubtreeCache() { return SubtreeCachePtr(new SubtreeCache); }

SubtreeCacheStats GetSubtreeCacheStats(const SubtreeCache& cache) {
  SubtreeCacheStats s = cache.stats;
  s.signatures = cache.SignatureCount();
  s.entries = cache.EntryCount();
  return s;
}

void InvalidateSubtreeCache(SubtreeCache* cache) {
  if (cache != nullptr) cache->Invalidate();
}

namespace {

using NarrowKey = uint64_t;

constexpr uint64_t kNarrowDMask = 0x5555555555555555ULL;

inline void WideSetBit(WideKey* k, int bit) {
  k->w[bit >> 6] |= uint64_t{1} << (bit & 63);
}

inline NarrowKey KeyAnd(NarrowKey a, NarrowKey b) { return a & b; }
inline WideKey KeyAnd(const WideKey& a, const WideKey& b) {
  WideKey r;
  for (int i = 0; i < 4; ++i) r.w[i] = a.w[i] & b.w[i];
  return r;
}

inline bool HasAll(NarrowKey k, NarrowKey need) { return (k & need) == need; }
inline bool HasAll(const WideKey& k, const WideKey& need) {
  for (int i = 0; i < 4; ++i) {
    if ((k.w[i] & need.w[i]) != need.w[i]) return false;
  }
  return true;
}

template <typename K>
K DMask();
template <>
NarrowKey DMask<NarrowKey>() {
  return kNarrowDMask;
}
template <>
WideKey DMask<WideKey>() {
  WideKey m;
  for (int i = 0; i < 4; ++i) m.w[i] = kNarrowDMask;
  return m;
}

// A distribution in either key width: `wide` keys live in the global slot
// space, narrow keys are 2 bits per live slot of the owning frame. A tagged
// union — regions move through vectors millions of times per pass, so the
// object stays one FlatDist wide. Storage releases to the pool on
// destruction (RAII recycling).
struct Dist {
  bool wide = false;
  union {
    FlatDist<NarrowKey> n;
    FlatDist<WideKey> w;
  };

  Dist() : n() {}
  Dist(const Dist&) = delete;
  Dist& operator=(const Dist&) = delete;
  Dist(Dist&& o) : wide(o.wide) {
    if (wide) {
      new (&w) FlatDist<WideKey>(std::move(o.w));
    } else {
      new (&n) FlatDist<NarrowKey>(std::move(o.n));
    }
  }
  Dist& operator=(Dist&& o) {
    if (this != &o) {
      Destroy();
      wide = o.wide;
      if (wide) {
        new (&w) FlatDist<WideKey>(std::move(o.w));
      } else {
        new (&n) FlatDist<NarrowKey>(std::move(o.n));
      }
    }
    return *this;
  }
  ~Dist() { Destroy(); }

  /// Activates the member for `new_wide` (destroying the other if needed).
  void SetWide(bool new_wide) {
    if (wide == new_wide) return;
    Destroy();
    wide = new_wide;
    if (wide) {
      new (&w) FlatDist<WideKey>();
    } else {
      new (&n) FlatDist<NarrowKey>();
    }
  }

  size_t size() const { return wide ? w.size() : n.size(); }
  bool initialized() const { return wide ? w.initialized() : n.initialized(); }
  int cap_log2() const { return wide ? w.cap_log2() : n.cap_log2(); }

 private:
  void Destroy() {
    if (wide) {
      w.~FlatDist();
    } else {
      n.~FlatDist();
    }
  }
};

// The state a p-document region passes to its parent: the base (A, D)
// distribution, plus one joint distribution per candidate anchor inside the
// region (see engine.h). `frame` is the p-document node whose live slot set
// defines the key space of every dist in the region.
struct Region {
  NodeId frame = kNullNode;
  Dist base;
  PoolVec<std::pair<NodeId, Dist>> tracked;
};

// Per-node-width candidate masks: (need, set) pairs — a key that contains
// every `need` bit (children requirements) gains the `set` bits (A and D of
// the candidate slot).
struct Masks {
  std::vector<std::pair<NarrowKey, NarrowKey>> n;
  std::vector<std::pair<WideKey, WideKey>> w;
};

class Engine {
 public:
  Engine(const PDocument& pd, const std::vector<Goal>& goals,
         const std::vector<const Pattern*>& batch, DpScratch* scratch,
         const EngineOptions& options)
      : pd_(pd),
        batch_count_(static_cast<int>(batch.size())),
        pool_(scratch->pool()),
        prof_(scratch->profile()),
        prune_eps_(options.prune_eps),
        cache_candidate_(options.subtree_cache),
        cache_sig_(options.cache_signature),
        bufs_(scratch->buffers()),
        live_(scratch->buffers()->live),
        wide_(scratch->buffers()->wide),
        region_slot_(scratch->buffers()->region_slot),
        slots_flat_(scratch->buffers()->slots_flat),
        slots_len_(scratch->buffers()->slots_len),
        obs_(scratch->buffers()->obs),
        skip_(scratch->buffers()->skip),
        active_slot_(scratch->buffers()->active_slot) {
    int total = 0;
    // Fixed-anchor / Boolean conjuncts: every pattern node is a base slot.
    for (const Goal& g : goals) {
      PXV_CHECK(g.pattern != nullptr);
      const Pattern& p = *g.pattern;
      const int offset = total;
      total += p.size();
      PXV_CHECK_LE(total, kMaxConjunctionSlots)
          << "conjunction too large for the packed DP";
      qnodes_.resize(total);
      for (PNodeId n = 0; n < p.size(); ++n) {
        QNode& qn = qnodes_[offset + n];
        qn.label = p.label(n);
        for (PNodeId c : p.children(n)) {
          (p.axis(c) == Axis::kChild ? qn.slash_kids : qn.desc_kids)
              .push_back(offset + c);
        }
        by_label_[qn.label].push_back(offset + n);
        if (n == p.root()) goal_root_slots_.push_back(offset + n);
      }
      if (g.anchor != nullptr) {
        anchor_sets_.emplace_back();
        for (NodeId a : *g.anchor) anchor_sets_.back().insert(a);
        anchor_of_[offset + p.out()] =
            static_cast<int>(anchor_sets_.size()) - 1;
      }
    }
    // Batched members: predicate-subtree nodes are base slots; main-branch
    // nodes are starred slots (match only along the pinned output chain);
    // out itself is the pin slot, set exclusively at the tracked anchor.
    for (const Pattern* pp : batch) {
      PXV_CHECK(pp != nullptr);
      const Pattern& p = *pp;
      const int offset = total;
      total += p.size();
      PXV_CHECK_LE(total, kMaxConjunctionSlots)
          << "batched conjunction too large for the packed DP";
      qnodes_.resize(total);
      std::vector<char> on_mb(p.size(), 0);
      for (PNodeId n : p.MainBranch()) on_mb[n] = 1;
      for (PNodeId n = 0; n < p.size(); ++n) {
        QNode& qn = qnodes_[offset + n];
        qn.label = p.label(n);
        for (PNodeId c : p.children(n)) {
          (p.axis(c) == Axis::kChild ? qn.slash_kids : qn.desc_kids)
              .push_back(offset + c);
        }
        if (n == p.out()) {
          pin_slots_.push_back(offset + n);
        } else if (on_mb[n]) {
          by_label_star_[qn.label].push_back(offset + n);
        } else {
          by_label_[qn.label].push_back(offset + n);
        }
        if (n == p.root()) batch_root_slots_.push_back(offset + n);
      }
      // All members must share the output label, or no candidate exists.
      if (batch_out_label_set_ && batch_out_label_ != p.OutLabel()) {
        batch_feasible_ = false;
      }
      batch_out_label_ = p.OutLabel();
      batch_out_label_set_ = true;
    }
    // Analysis cache: the live/wide/region-slot buffers (and the obs masks)
    // depend only on the document's *structure* — tree shape, labels,
    // detached flags — and on the query's structure. Steady-state serving
    // (same doc, same query set, run after run) skips the whole O(|P̂|)
    // pass, and so do probability-only deltas (SetEdgeProb /
    // SetExpDistribution do not bump the structure version), which is what
    // keeps an incremental re-evaluation from paying O(|P̂|) in analysis.
    // The signature encodes every structural input of the analysis + obs
    // passes — per slot: label, role (base / starred / pin), root flags,
    // and the slash/descendant kid edges — and is compared outright, so a
    // collision can never serve stale analysis.
    std::vector<uint32_t> query_sig;
    query_sig.reserve(qnodes_.size() * 4);
    for (int s = 0; s < static_cast<int>(qnodes_.size()); ++s) {
      const QNode& qn = qnodes_[s];
      query_sig.push_back(qn.label);
      for (int t : qn.slash_kids) query_sig.push_back(0x40000000u + t);
      for (int t : qn.desc_kids) query_sig.push_back(0x20000000u + t);
      query_sig.push_back(0x10000000u);  // Slot terminator.
    }
    // Root/pin flags pin down each slot's role (starred main-branch slots
    // are derivable: the chain from a batch root to its pin slot).
    for (int s : goal_root_slots_) query_sig.push_back(0x50000000u + s);
    for (int s : batch_root_slots_) query_sig.push_back(0x60000000u + s);
    for (int s : pin_slots_) query_sig.push_back(0x70000000u + s);
    EngineBuffers* bufs = scratch->buffers();
    if (bufs->cache_valid &&
        bufs->cached_structure == pd.structure_version() &&
        bufs->cached_query_sig == query_sig &&
        live_.size() == static_cast<size_t>(pd.size())) {
      region_count_ = bufs->cached_region_count;
      uniform_frame_ = bufs->cached_uniform;
      analysis_cached_ = true;
      return;
    }
    bufs->obs_valid = false;

    // Live-slot analysis (one reverse scan; children follow parents in the
    // node arena, so subtree unions are already final when read). A subtree
    // whose live set is empty contributes the empty state with probability 1
    // and holds no anchors — the old label-relevance pruning — and a live
    // set of <= kNarrowSlotCap slots lets the whole subtree run narrow.
    std::unordered_map<Label, SlotSet> slots_by_label;
    for (int s = 0; s < total; ++s) {
      slots_by_label[qnodes_[s].label].Set(s);
    }
    live_.assign(pd.size(), SlotSet{});
    wide_.assign(pd.size(), 0);
    for (NodeId n = pd.size() - 1; n >= 0; --n) {
      SlotSet s;
      // Detached (removed) subtrees are invisible to the deletion process:
      // their nodes stay dead, so the pass never computes them and their
      // labels never leak into any frame.
      if (!pd.detached(n)) {
        if (pd.ordinary(n)) {
          const auto it = slots_by_label.find(pd.label(n));
          if (it != slots_by_label.end()) s = it->second;
        }
        for (NodeId c : pd.children(n)) s.UnionWith(live_[c]);
      }
      live_[n] = s;
      wide_[n] = s.Count() > kNarrowSlotCap;
    }
    // Dead subtrees (no live slot) contribute the empty state with
    // probability 1 — an exact identity element everywhere they are
    // consumed — so only live nodes get a region slot, and the bottom-up
    // pass touches nothing else.
    region_slot_.assign(pd.size(), -1);
    region_count_ = 0;
    for (NodeId n = 0; n < pd.size(); ++n) {
      if (live_[n].Any()) region_slot_[n] = region_count_++;
    }
    // Uniform-frame fast path: live sets only shrink downward, so when the
    // *root* fits a narrow key every subtree does too — one shared frame,
    // and every remap becomes the identity. Per-subtree frames only earn
    // their keep in the wide regime (> kNarrowSlotCap slots at the root),
    // where they let deep subtrees keep 1-word keys under a wide root.
    uniform_frame_ = !pd.empty() && !wide_[pd.root()];
    // Narrow slot lists live in one flat buffer (kNarrowSlotCap bytes per
    // live node), extracted lazily; len 0 marks "not extracted yet" (live
    // nodes always have at least one slot).
    slots_flat_.resize(static_cast<size_t>(region_count_) * kNarrowSlotCap);
    slots_len_.assign(region_count_, 0);
    bufs->cached_structure = pd.structure_version();
    bufs->cached_query_sig = std::move(query_sig);
    bufs->cached_region_count = region_count_;
    bufs->cached_uniform = uniform_frame_;
    bufs->cache_valid = true;
  }

  double Probability() {
    PXV_CHECK_EQ(batch_count_, 0) << "use BatchResults for batched members";
    const NodeId r = pd_.root();
    Region root = EvalRegions();
    double p = 0;
    if (wide_[r]) {
      WideKey mask;
      for (int slot : goal_root_slots_) WideSetBit(&mask, 2 * slot + 1);
      root.base.w.ForEach([&](const WideKey& key, double prob) {
        if (HasAll(key, mask)) p += prob;
      });
    } else {
      NarrowKey mask = 0;
      for (int slot : goal_root_slots_) {
        const int pos = PosInFrame(r, slot);
        if (pos < 0) return 0.0;  // Goal root label absent from the doc.
        mask |= NarrowKey{1} << (2 * pos + 1);
      }
      root.base.n.ForEach([&](NarrowKey key, double prob) {
        if (HasAll(key, mask)) p += prob;
      });
    }
    return p;
  }

  // Per-member readout of one joint pass: result[i] = q_i(P̂). The tracked
  // keys carry every member's slots jointly; member i's selection
  // probability at an anchor is the mass of keys containing its root's A
  // bit (the other members' bits marginalize out in the sum).
  std::vector<std::vector<NodeProb>> BatchResultsMany() {
    const int m = static_cast<int>(batch_root_slots_.size());
    std::vector<std::vector<NodeProb>> out(m);
    if (!batch_feasible_ || batch_count_ == 0) return out;
    const NodeId r = pd_.root();
    Region root = EvalRegions();
    std::vector<double> acc(m);
    if (wide_[r]) {
      WideKey goal_mask;
      for (int slot : goal_root_slots_) WideSetBit(&goal_mask, 2 * slot + 1);
      std::vector<WideKey> masks(m);
      for (int i = 0; i < m; ++i) {
        masks[i] = goal_mask;
        WideSetBit(&masks[i], 2 * batch_root_slots_[i] + 1);
      }
      for (const auto& [n, dist] : root.tracked) {
        std::fill(acc.begin(), acc.end(), 0.0);
        dist.w.ForEach([&](const WideKey& key, double prob) {
          for (int i = 0; i < m; ++i) {
            if (HasAll(key, masks[i])) acc[i] += prob;
          }
        });
        for (int i = 0; i < m; ++i) {
          if (acc[i] > 0) out[i].push_back({n, acc[i]});
        }
      }
    } else {
      NarrowKey goal_mask = 0;
      bool feasible = true;
      for (int slot : goal_root_slots_) {
        const int pos = PosInFrame(r, slot);
        if (pos < 0) feasible = false;
        goal_mask |= feasible ? NarrowKey{1} << (2 * pos + 1) : 0;
      }
      if (!feasible) return out;
      std::vector<NarrowKey> masks(m);
      std::vector<char> member_ok(m, 1);
      for (int i = 0; i < m; ++i) {
        const int pos = PosInFrame(r, batch_root_slots_[i]);
        if (pos < 0) {
          member_ok[i] = 0;  // Member root label absent: empty result.
          continue;
        }
        masks[i] = goal_mask | (NarrowKey{1} << (2 * pos + 1));
      }
      for (const auto& [n, dist] : root.tracked) {
        std::fill(acc.begin(), acc.end(), 0.0);
        dist.n.ForEach([&](NarrowKey key, double prob) {
          for (int i = 0; i < m; ++i) {
            if (member_ok[i] && HasAll(key, masks[i])) acc[i] += prob;
          }
        });
        for (int i = 0; i < m; ++i) {
          if (acc[i] > 0) out[i].push_back({n, acc[i]});
        }
      }
    }
    for (auto& v : out) {
      std::sort(v.begin(), v.end(), [](const NodeProb& a, const NodeProb& b) {
        return a.node < b.node;
      });
    }
    return out;
  }

  std::vector<NodeProb> BatchResults() {
    std::vector<NodeProb> out;
    if (!batch_feasible_ || batch_count_ == 0) return out;
    const NodeId r = pd_.root();
    Region root = EvalRegions();
    out.reserve(root.tracked.size());
    // Acceptance at the root: every goal root and every member root embeds
    // (their A bits are set in the tracked key).
    if (wide_[r]) {
      WideKey mask;
      for (int slot : goal_root_slots_) WideSetBit(&mask, 2 * slot + 1);
      for (int slot : batch_root_slots_) WideSetBit(&mask, 2 * slot + 1);
      for (const auto& [n, dist] : root.tracked) {
        double p = 0;
        dist.w.ForEach([&](const WideKey& key, double prob) {
          if (HasAll(key, mask)) p += prob;
        });
        if (p > 0) out.push_back({n, p});
      }
    } else {
      NarrowKey mask = 0;
      bool feasible = true;
      for (int slot : goal_root_slots_) {
        const int pos = PosInFrame(r, slot);
        if (pos < 0) feasible = false;
        mask |= feasible ? NarrowKey{1} << (2 * pos + 1) : 0;
      }
      for (int slot : batch_root_slots_) {
        const int pos = PosInFrame(r, slot);
        if (pos < 0) feasible = false;
        mask |= feasible ? NarrowKey{1} << (2 * pos + 1) : 0;
      }
      if (!feasible) return out;
      for (const auto& [n, dist] : root.tracked) {
        double p = 0;
        dist.n.ForEach([&](NarrowKey key, double prob) {
          if (HasAll(key, mask)) p += prob;
        });
        if (p > 0) out.push_back({n, p});
      }
    }
    std::sort(out.begin(), out.end(),
              [](const NodeProb& a, const NodeProb& b) {
                return a.node < b.node;
              });
    return out;
  }

 private:
  struct QNode {
    Label label = 0;
    std::vector<int> slash_kids, desc_kids;
  };

  // ------------------------------------------------------------ frames ----

  // Ascending live slots of `n`'s frame; meaningful for narrow frames
  // (<= kNarrowSlotCap entries). Extracted lazily into the flat buffer.
  const int8_t* NarrowSlots(NodeId n, int* count) {
    if (uniform_frame_) n = pd_.root();
    const int32_t slot = region_slot_[n];
    if (slot < 0) {
      *count = 0;
      return nullptr;
    }
    int8_t* v = &slots_flat_[static_cast<size_t>(slot) * kNarrowSlotCap];
    if (slots_len_[slot] == 0) {
      int len = 0;
      for (int word = 0; word < 2; ++word) {
        uint64_t bits = live_[n].b[word];
        while (bits != 0) {
          const int b = __builtin_ctzll(bits);
          bits &= bits - 1;
          v[len++] = static_cast<int8_t>(word * 64 + b);
        }
      }
      slots_len_[slot] = static_cast<uint8_t>(len);
    }
    *count = slots_len_[slot];
    return v;
  }

  int PosInFrame(NodeId n, int slot) {
    int count;
    const int8_t* v = NarrowSlots(n, &count);
    for (int i = 0; i < count; ++i) {
      if (v[i] == slot) return i;
    }
    return -1;
  }

  // ---------------------------------------------------------- dist ops ----

  Dist MakeDist(bool wide, int cap_log2 = FlatDist<NarrowKey>::kInlineCapLog2) {
    Dist d;
    d.SetWide(wide);
    if (wide) {
      d.w.Init(pool_, cap_log2);
    } else {
      d.n.Init(pool_, cap_log2);
    }
    return d;
  }

  Dist DeltaDist(NodeId frame) {
    Dist d = MakeDist(wide_[frame]);
    AddEmptyMassInit(&d, 1.0, wide_[frame]);
    return d;
  }

  void AddEmptyMassInit(Dist* d, double mass, bool wide) {
    if (!d->initialized()) *d = MakeDist(wide);
    if (d->wide) {
      d->w.Add(WideKey{}, mass);
    } else {
      d->n.Add(NarrowKey{0}, mass);
    }
  }

  static void DistScale(Dist* d, double p) {
    if (d->wide) {
      d->w.ScaleAll(p);
    } else {
      d->n.ScaleAll(p);
    }
  }

  static bool SingletonEmpty(const Dist& d, double* mass) {
    return d.wide ? d.w.IsSingletonEmpty(mass) : d.n.IsSingletonEmpty(mass);
  }

  Dist CloneDist(const Dist& d) {
    Dist out;
    out.SetWide(d.wide);
    if (d.wide) {
      out.w = d.w.Clone();
    } else {
      out.n = d.n.Clone();
    }
    return out;
  }

  Region CloneRegion(const Region& r) {
    Region out;
    out.frame = r.frame;
    out.base = CloneDist(r.base);
    out.tracked.Reserve(pool_, r.tracked.size());
    for (const auto& [a, t] : r.tracked) {
      out.tracked.EmplaceBack(pool_, a, CloneDist(t));
    }
    return out;
  }

  void MaybePrune(Dist* d) {
    if (prune_eps_ <= 0 || !d->initialized()) return;
    if (d->wide) {
      d->w.Prune(prune_eps_);
    } else {
      d->n.Prune(prune_eps_);
    }
  }

  static int CeilLog2(size_t x) {
    int l = 0;
    while ((size_t{1} << l) < x) ++l;
    return l;
  }

  // Capacity hint for a convolution output. The old code reserved
  // a.size() * b.size() slots — a hint that can explode (and in principle
  // overflow size_t); cap it by the true support bound 4^{live slots} of
  // the frame and a sane constant.
  int ConvCapLog2(size_t a, size_t b, NodeId frame) {
    if (a <= 1 && b <= 1) return FlatDist<NarrowKey>::kInlineCapLog2;
    int hint = CeilLog2(a) + CeilLog2(b) + 1;  // +1: stay under 75% load.
    const int support = 2 * live_[frame].Count();
    if (hint > support) hint = support;
    if (hint > 20) hint = 20;
    if (hint < FlatDist<NarrowKey>::kMinCapLog2) {
      hint = FlatDist<NarrowKey>::kMinCapLog2;
    }
    return hint;
  }

  template <typename K>
  FlatDist<K> ConvolveT(const FlatDist<K>& a, const FlatDist<K>& b,
                        int cap_log2) {
    FlatDist<K> out;
    out.Init(pool_, cap_log2);
    a.ForEach([&](const K& ka, double pa) {
      b.ForEach([&](const K& kb, double pb) { out.Add(ka | kb, pa * pb); });
    });
    return out;
  }

  // Union-convolution of two distributions in the same frame.
  Dist Convolve(const Dist& a, const Dist& b, NodeId frame) {
    double p;
    if (SingletonEmpty(a, &p)) {
      Dist out = CloneDist(b);
      DistScale(&out, p);
      return out;
    }
    if (SingletonEmpty(b, &p)) {
      Dist out = CloneDist(a);
      DistScale(&out, p);
      return out;
    }
    Dist out;
    out.SetWide(wide_[frame]);
    const int cap = ConvCapLog2(a.size(), b.size(), frame);
    if (out.wide) {
      out.w = ConvolveT(a.w, b.w, cap);
    } else {
      out.n = ConvolveT(a.n, b.n, cap);
    }
    MaybePrune(&out);
    return out;
  }

  // acc += p * d (accumulating into acc's table; initializes acc to d's
  // width if needed). Frames must already agree.
  void AddScaledDist(Dist* acc, const Dist& d, double p) {
    if (!d.initialized()) return;
    if (!acc->initialized()) {
      *acc = MakeDist(d.wide, d.size() <= 1
                                  ? FlatDist<NarrowKey>::kInlineCapLog2
                                  : d.cap_log2());
    }
    PXV_CHECK_EQ(acc->wide, d.wide);
    if (d.wide) {
      d.w.ForEach([&](const WideKey& k, double v) { acc->w.Add(k, p * v); });
    } else {
      d.n.ForEach([&](NarrowKey k, double v) { acc->n.Add(k, p * v); });
    }
  }

  // ------------------------------------------------------------ remaps ----

  // True iff the two frames have identical key spaces.
  bool SameFrame(NodeId f, NodeId g) const {
    return uniform_frame_ || live_[f] == live_[g];
  }

  // Translates `d` from frame `f` into enclosing frame `g`
  // (live(f) ⊆ live(g)): a bit embedding, narrow→narrow or narrow→wide.
  Dist RemapDist(Dist d, NodeId f, NodeId g) {
    if (!d.initialized() || SameFrame(f, g)) return d;
    if (wide_[f]) return d;  // Wide keys already use global positions.
    int fcount;
    const int8_t* fs = NarrowSlots(f, &fcount);
    Dist out;
    if (wide_[g]) {
      out = MakeDist(true, d.size() <= 1 ? FlatDist<WideKey>::kInlineCapLog2
                                         : d.cap_log2());
      // Narrow bit 2i(+1) → global bit 2*slot(+1).
      d.n.ForEach([&](NarrowKey k, double v) {
        WideKey wk;
        while (k != 0) {
          const int b = __builtin_ctzll(k);
          k &= k - 1;
          WideSetBit(&wk, 2 * fs[b >> 1] + (b & 1));
        }
        out.w.Add(wk, v);
        ++prof_->keys_remapped;
      });
      return out;
    }
    // Narrow→narrow: position map via one walk of the two sorted lists.
    int gcount;
    const int8_t* gs = NarrowSlots(g, &gcount);
    int map[2 * kNarrowSlotCap];
    int j = 0;
    for (int i = 0; i < fcount; ++i) {
      while (j < gcount && gs[j] < fs[i]) ++j;
      PXV_CHECK(j < gcount && gs[j] == fs[i])
          << "child live set escapes the parent frame";
      map[2 * i] = 2 * j;
      map[2 * i + 1] = 2 * j + 1;
    }
    out = MakeDist(false, d.size() <= 1
                               ? FlatDist<NarrowKey>::kInlineCapLog2
                               : d.cap_log2());
    d.n.ForEach([&](NarrowKey k, double v) {
      NarrowKey nk = 0;
      while (k != 0) {
        const int b = __builtin_ctzll(k);
        k &= k - 1;
        nk |= NarrowKey{1} << map[b];
      }
      out.n.Add(nk, v);
      ++prof_->keys_remapped;
    });
    return out;
  }

  void RemapRegionInPlace(Region* r, NodeId g) {
    if (r->frame == g || SameFrame(r->frame, g)) {
      r->frame = g;
      return;
    }
    r->base = RemapDist(std::move(r->base), r->frame, g);
    for (auto& [a, t] : r->tracked) {
      t = RemapDist(std::move(t), r->frame, g);
    }
    r->frame = g;
  }

  // ----------------------------------------------------------- combine ----

  // Combines probabilistically independent sibling regions: bases convolve;
  // each tracked anchor (living in exactly one part) convolves with every
  // other part's base via prefix/suffix products. A single part passes
  // through in its own frame (no remap until an ancestor forces one).
  Region Combine(PoolVec<Region> parts, NodeId g) {
    Region out;
    out.frame = g;
    if (parts.empty()) {
      out.base = DeltaDist(g);
      return out;
    }
    if (parts.size() == 1) return std::move(parts[0]);
    // Identity parts — delta base with mass 1, nothing tracked — arise from
    // mixes that collapsed (e.g. a mux over dead branches); convolving with
    // them is a no-op, so drop them before paying for it.
    {
      size_t kept = 0;
      for (size_t i = 0; i < parts.size(); ++i) {
        double mass;
        if (parts[i].tracked.empty() &&
            SingletonEmpty(parts[i].base, &mass) && mass == 1.0) {
          continue;
        }
        if (kept != i) parts[kept] = std::move(parts[i]);
        ++kept;
      }
      parts.Truncate(kept);
      if (parts.empty()) {
        out.base = DeltaDist(g);
        return out;
      }
      if (parts.size() == 1) return std::move(parts[0]);
    }
    for (Region& r : parts) RemapRegionInPlace(&r, g);
    bool any_tracked = false;
    for (const Region& r : parts) {
      if (!r.tracked.empty()) {
        any_tracked = true;
        break;
      }
    }
    const int k = static_cast<int>(parts.size());
    if (!any_tracked) {
      Dist acc = std::move(parts[0].base);
      for (int i = 1; i < k; ++i) {
        acc = Convolve(acc, parts[i].base, g);
      }
      out.base = std::move(acc);
      return out;
    }
    PoolVec<Dist> prefix, suffix;
    prefix.Reserve(pool_, k + 1);
    suffix.Reserve(pool_, k + 1);
    for (int i = 0; i <= k; ++i) {
      prefix.EmplaceBack(pool_);
      suffix.EmplaceBack(pool_);
    }
    prefix[0] = DeltaDist(g);
    suffix[k] = DeltaDist(g);
    for (int i = 0; i < k; ++i) {
      prefix[i + 1] = Convolve(prefix[i], parts[i].base, g);
    }
    for (int i = k - 1; i >= 1; --i) {  // suffix[0] is never read.
      suffix[i] = Convolve(parts[i].base, suffix[i + 1], g);
    }
    out.base = std::move(prefix[k]);
    size_t tracked_total = 0;
    for (const Region& r : parts) tracked_total += r.tracked.size();
    out.tracked.Reserve(pool_, tracked_total);
    for (int i = 0; i < k; ++i) {
      if (parts[i].tracked.empty()) continue;
      // t × (prefix × suffix), not (t × prefix) × suffix: the sibling
      // product saturates at the base-state support, while a tracked
      // intermediate would cross starred keys with it and blow up first.
      Dist other = Convolve(prefix[i], suffix[i + 1], g);
      for (auto& [n, t] : parts[i].tracked) {
        out.tracked.EmplaceBack(pool_, n, Convolve(t, other, g));
      }
    }
    return out;
  }

  // One iterative bottom-up pass: children always carry larger node ids
  // than their parents (the arena appends), so a reverse scan computes
  // every node's contribution — the region conditioned on the edge into it
  // being taken — with its children's regions already final. No recursion,
  // so document depth is bounded by memory, not stack (the 3000-deep chain
  // stress test runs through here). Returns the root's region.
  // Dead-bit projection (uniform narrow frames only): a key bit is
  // *observable* above a node if some candidate at an ancestor reads it
  // (need mask) or the root acceptance does. A bits are read exactly one
  // ordinary level up and D bits survive each rewrite's DOnly, so
  //   obs(children of ordinary y) = reads(label(y)) | (DMask & obs(y)),
  // distributional nodes pass obs through. Projecting each region onto its
  // mask merges states that differ only in dead bits — the support of the
  // high-level sibling convolutions collapses to the few observable bits.
  void ComputeObs() {
    project_ = uniform_frame_;
    if (!project_) return;
    // Shares the analysis cache's key: obs reads only tree shape, labels
    // and the query structure, so a hit skips this whole O(|P̂|) pass too.
    if (analysis_cached_ && bufs_->obs_valid) return;
    // need-bit masks per label over every slot (anchor filtering only
    // removes candidates, so this is a safe superset).
    std::unordered_map<Label, NarrowKey> reads;
    for (int s = 0; s < static_cast<int>(qnodes_.size()); ++s) {
      const QNode& qn = qnodes_[s];
      NarrowKey need = 0;
      bool ok = true;
      for (int t : qn.slash_kids) {
        const int pt = PosInFrame(pd_.root(), t);
        if (pt < 0) ok = false; else need |= NarrowKey{1} << (2 * pt + 1);
      }
      for (int t : qn.desc_kids) {
        const int pt = PosInFrame(pd_.root(), t);
        if (pt < 0) ok = false; else need |= NarrowKey{1} << (2 * pt);
      }
      if (ok) reads[qn.label] |= need;
    }
    NarrowKey accept = 0;
    for (int slot : goal_root_slots_) {
      const int pos = PosInFrame(pd_.root(), slot);
      if (pos >= 0) accept |= NarrowKey{1} << (2 * pos + 1);
    }
    for (int slot : batch_root_slots_) {
      const int pos = PosInFrame(pd_.root(), slot);
      if (pos >= 0) accept |= NarrowKey{1} << (2 * pos + 1);
    }
    obs_.assign(pd_.size(), ~uint64_t{0});
    obs_[pd_.root()] = accept;
    for (NodeId n = 0; n < pd_.size(); ++n) {
      uint64_t child_obs;
      if (pd_.ordinary(n)) {
        NarrowKey r = 0;
        if (const auto it = reads.find(pd_.label(n)); it != reads.end()) {
          r = it->second;
        }
        child_obs = r | (kNarrowDMask & obs_[n]);
      } else {
        child_obs = obs_[n];
      }
      for (NodeId c : pd_.children(n)) obs_[c] = child_obs;
    }
    bufs_->obs_valid = true;
  }

  // ------------------------------------------------------ subtree cache ----

  enum : uint8_t { kCompute = 0, kHit = 1, kCovered = 2 };

  // Decides whether this run can use the incremental memo and, if so, plans
  // it: hits (nodes whose cached subtree version still matches) are marked
  // along with everything they cover, and the signature's entries are
  // flushed when the root frame epoch shifted (key bit layout / projection
  // masks would no longer line up).
  void SetupCache() {
    if (cache_candidate_ == nullptr || cache_sig_ == nullptr) return;
    // Only the pure batched paths: fixed-anchor goals key candidate masks by
    // anchor sets, and support pruning makes results run-history-dependent.
    if (batch_count_ == 0 || !batch_feasible_) return;
    if (!goal_root_slots_.empty() || !anchor_of_.empty()) return;
    if (prune_eps_ > 0) return;
    cache_ = cache_candidate_;
    sig_ = cache_->Acquire(*cache_sig_);
    const NodeId root = pd_.root();
    const bool root_wide = wide_[root] != 0;
    std::vector<int8_t> root_slots;
    if (!root_wide) {
      int count;
      const int8_t* rs = NarrowSlots(root, &count);
      root_slots.assign(rs, rs + count);
    }
    if (sig_->valid &&
        (sig_->root_wide != root_wide || sig_->root_slots != root_slots)) {
      sig_->entries.clear();
      ++cache_->stats.flushes;
    }
    sig_->valid = true;
    sig_->root_wide = root_wide;
    sig_->root_slots = std::move(root_slots);
    // Forward plan: parents precede children in the arena, so each node can
    // inherit coverage from its parent before being inspected itself. Only
    // top-most valid entries become hits — everything below them is skipped
    // without even a map lookup. Non-covered live nodes get a *compact*
    // region slot so the pass constructs exactly as many Region objects as
    // it will touch — O(spine + hits), not O(live nodes).
    skip_.assign(pd_.size(), kCompute);
    active_slot_.assign(pd_.size(), -1);
    active_count_ = 0;
    for (NodeId n = 0; n < pd_.size(); ++n) {
      const NodeId par = pd_.parent(n);
      if (par != kNullNode && skip_[par] != kCompute) {
        skip_[n] = kCovered;
        continue;
      }
      if (region_slot_[n] < 0) continue;  // Dead regions are identities.
      const auto it = sig_->entries.find(n);
      if (it != sig_->entries.end() && it->second.version == pd_.version(n)) {
        skip_[n] = kHit;
      }
      active_slot_[n] = active_count_++;
    }
  }

  // Region storage slot of node `n` this run: the compact plan slot under
  // the subtree cache, the full per-live-node slot otherwise. -1 = the node
  // contributes the identity (dead) or is covered by a cached ancestor.
  int32_t SlotOf(NodeId n) const {
    return cache_ != nullptr ? active_slot_[n] : region_slot_[n];
  }

  // Rebuilds the cached region of `n` in the run arena. Blocks are
  // memcpy-cloned, so table layout — hence downstream iteration order and
  // floating-point rounding — matches the capture exactly.
  Region LoadCached(NodeId n) {
    const SubtreeCache::Entry& e = sig_->entries.find(n)->second;
    Region r;
    r.frame = e.frame;
    r.base.SetWide(e.wide);
    if (e.wide) {
      r.base.w = e.base_w.CloneInto(pool_);
    } else {
      r.base.n = e.base_n.CloneInto(pool_);
    }
    r.tracked.Reserve(pool_, e.tracked_nodes.size());
    for (size_t i = 0; i < e.tracked_nodes.size(); ++i) {
      Dist d;
      d.SetWide(e.wide);
      if (e.wide) {
        d.w = e.tracked_w[i].CloneInto(pool_);
      } else {
        d.n = e.tracked_n[i].CloneInto(pool_);
      }
      r.tracked.EmplaceBack(pool_, e.tracked_nodes[i], std::move(d));
    }
    return r;
  }

  void StoreCached(NodeId n, const Region& r) {
    SubtreeCache::Entry& e = sig_->entries[n];
    DistPool* cpool = cache_->pool();
    e.version = pd_.version(n);
    e.frame = r.frame;
    e.wide = r.base.wide;
    e.base_n = FlatDist<uint64_t>();
    e.base_w = FlatDist<WideKey>();
    if (e.wide) {
      e.base_w = r.base.w.CloneInto(cpool);
    } else {
      e.base_n = r.base.n.CloneInto(cpool);
    }
    e.tracked_nodes.clear();
    e.tracked_n.clear();
    e.tracked_w.clear();
    for (const auto& [a, t] : r.tracked) {
      PXV_CHECK_EQ(t.wide, e.wide);
      e.tracked_nodes.push_back(a);
      if (e.wide) {
        e.tracked_w.push_back(t.w.CloneInto(cpool));
      } else {
        e.tracked_n.push_back(t.n.CloneInto(cpool));
      }
    }
    ++cache_->stats.stores;
  }

  Region EvalRegions() {
    ComputeObs();
    SetupCache();
    const NodeId root = pd_.root();
    if (SlotOf(root) < 0) {
      // No query label occurs anywhere: the whole document is one identity.
      Region r;
      r.frame = root;
      r.base = DeltaDist(root);
      return r;
    }
    const int32_t slots = cache_ != nullptr ? active_count_ : region_count_;
    PoolVec<Region> regions;
    regions.Reserve(pool_, slots);
    for (int32_t i = 0; i < slots; ++i) regions.EmplaceBack(pool_);
    for (NodeId n = pd_.size() - 1; n >= 0; --n) {
      const int32_t slot = SlotOf(n);
      if (slot < 0) continue;
      if (cache_ != nullptr) {
        if (skip_[n] == kHit) {
          ++cache_->stats.hits;
          regions[slot] = LoadCached(n);
          continue;
        }
        regions[slot] = ComputeRegion(n, &regions);
        StoreCached(n, regions[slot]);
        continue;
      }
      regions[slot] = ComputeRegion(n, &regions);
    }
    return std::move(regions[SlotOf(root)]);
  }

  // Contribution of node `n`, consuming the already-computed child regions.
  // The result may live in a descendant's frame (lazy remapping); callers
  // needing a specific frame remap it themselves.
  Region ComputeRegion(NodeId n, PoolVec<Region>* regions) {
    switch (pd_.kind(n)) {
      case PKind::kOrdinary:
        return NodeDist(n, regions);
      case PKind::kDet: {
        PoolVec<Region> parts;
        parts.Reserve(pool_, pd_.children(n).size());
        for (NodeId c : pd_.children(n)) {
          if (SlotOf(c) < 0) continue;  // Identity contribution.
          parts.EmplaceBack(pool_, std::move((*regions)[SlotOf(c)]));
        }
        return Combine(std::move(parts), n);
      }
      case PKind::kMux: {
        Region acc;
        acc.frame = n;
        double total = 0;
        for (NodeId c : pd_.children(n)) {
          const double p = pd_.edge_prob(c);
          total += p;
          if (p == 0) continue;
          if (SlotOf(c) < 0) {
            // Dead alternative: contributes the empty state with mass p.
            AddEmptyMassInit(&acc.base, p, wide_[n]);
            continue;
          }
          Region r = std::move((*regions)[SlotOf(c)]);
          RemapRegionInPlace(&r, n);
          AddScaledDist(&acc.base, r.base, p);
          // Alternatives are exclusive, so an anchor lives in one branch.
          if (acc.tracked.empty()) {
            acc.tracked = std::move(r.tracked);
            for (auto& [a, t] : acc.tracked) DistScale(&t, p);
          } else {
            for (auto& [a, t] : r.tracked) {
              DistScale(&t, p);
              acc.tracked.EmplaceBack(pool_, a, std::move(t));
            }
          }
        }
        if (total < 1.0) AddEmptyMassInit(&acc.base, 1.0 - total, wide_[n]);
        MaybePrune(&acc.base);
        return acc;
      }
      case PKind::kInd: {
        PoolVec<Region> parts;
        parts.Reserve(pool_, pd_.children(n).size());
        for (NodeId c : pd_.children(n)) {
          if (SlotOf(c) < 0) continue;  // p·δ + (1−p)·δ = identity.
          const double p = pd_.edge_prob(c);
          Region mixed;
          mixed.frame = c;
          if (p > 0) {
            Region r = std::move((*regions)[SlotOf(c)]);
            mixed.frame = r.frame;
            AddScaledDist(&mixed.base, r.base, p);
            // The anchor requires its own edge to be taken.
            mixed.tracked = std::move(r.tracked);
            for (auto& [a, t] : mixed.tracked) DistScale(&t, p);
          }
          if (p < 1.0) {
            AddEmptyMassInit(&mixed.base, 1.0 - p, wide_[mixed.frame]);
          }
          parts.EmplaceBack(pool_, std::move(mixed));
        }
        return Combine(std::move(parts), n);
      }
      case PKind::kExp: {
        const auto& kids = pd_.children(n);
        // Each child's region once; subsets recombine cloned copies. Dead
        // children materialize as explicit identities: subset indices must
        // stay aligned with child positions.
        PoolVec<Region> kid_regions;
        kid_regions.Reserve(pool_, kids.size());
        for (NodeId c : kids) {
          if (SlotOf(c) < 0) {
            Region r;
            r.frame = c;
            r.base = DeltaDist(c);
            kid_regions.EmplaceBack(pool_, std::move(r));
          } else {
            kid_regions.EmplaceBack(pool_, std::move((*regions)[SlotOf(c)]));
          }
        }
        Region acc;
        acc.frame = n;
        double total = 0;
        std::unordered_map<NodeId, Dist> tracked_acc;
        for (const auto& [subset, p] : pd_.exp_distribution(n)) {
          total += p;
          if (p == 0) continue;
          PoolVec<Region> parts;
          parts.Reserve(pool_, subset.size());
          for (int idx : subset) {
            parts.EmplaceBack(pool_, CloneRegion(kid_regions[idx]));
          }
          Region sub = Combine(std::move(parts), n);
          RemapRegionInPlace(&sub, n);
          AddScaledDist(&acc.base, sub.base, p);
          // The same anchor can survive through several subsets.
          for (auto& [a, t] : sub.tracked) AddScaledDist(&tracked_acc[a], t, p);
        }
        if (total < 1.0) AddEmptyMassInit(&acc.base, 1.0 - total, wide_[n]);
        MaybePrune(&acc.base);
        acc.tracked.Reserve(pool_, tracked_acc.size());
        for (auto& [a, t] : tracked_acc) {
          acc.tracked.EmplaceBack(pool_, a, std::move(t));
        }
        return acc;
      }
    }
    PXV_CHECK(false);
    return Region{};
  }

  // ----------------------------------------------------------- rewrite ----

  // Rewrites a distribution at an ordinary node: D bits flow up, then every
  // candidate whose (need) bits hold in the incoming key gains its (set)
  // bits. Mask-compiled form of the per-child bit probing. The dead-bit
  // projection (see ComputeObs) is fused into the same pass: each output
  // key is masked onto the upward-observable bits as it is inserted, so a
  // projected rewrite costs one table build instead of two.
  template <typename K>
  FlatDist<K> RewriteT(const FlatDist<K>& in,
                       const std::vector<std::pair<K, K>>& cands,
                       const std::vector<std::pair<K, K>>& extra,
                       const K& proj) {
    FlatDist<K> out;
    out.Init(pool_, in.size() <= 1 ? FlatDist<K>::kInlineCapLog2
                                   : in.cap_log2());
    const K dmask = DMask<K>();
    in.ForEach([&](const K& key, double p) {
      K nk = KeyAnd(key, dmask);
      for (const auto& [need, set] : cands) {
        if (HasAll(key, need)) nk = nk | set;
      }
      for (const auto& [need, set] : extra) {
        if (HasAll(key, need)) nk = nk | set;
      }
      out.Add(KeyAnd(nk, proj), p);
    });
    return out;
  }

  // Projection mask for ordinary node `x` in each key width (wide keys are
  // never projected — projection is a uniform-narrow-frame optimization).
  NarrowKey ProjMaskN(NodeId x) const {
    return project_ ? obs_[x] : ~NarrowKey{0};
  }
  static WideKey ProjMaskW() {
    WideKey all;
    for (auto& w : all.w) w = ~uint64_t{0};
    return all;
  }

  // Applies `masks` plus optionally `extra` (star or pin candidates),
  // projecting the result onto `x`'s observable bits.
  Dist RewriteDist(const Dist& in, NodeId x, bool wide, const Masks& masks,
                   const Masks& extra) {
    Dist out;
    out.SetWide(wide);
    if (wide) {
      out.w = RewriteT(in.w, masks.w, extra.w, ProjMaskW());
    } else {
      out.n = RewriteT(in.n, masks.n, extra.n, ProjMaskN(x));
    }
    MaybePrune(&out);
    return out;
  }

  struct LabelMasks {
    Masks base, star, pin;
    // Leaf fast path: Rewrite(δ) yields one key — the OR of `set` masks of
    // candidates with no child requirements. Cached per label/width.
    NarrowKey leaf_base_n = 0, leaf_pin_n = 0;
    WideKey leaf_base_w, leaf_pin_w;
  };

  // Compiles every candidate list for label `xl` at node `x` (positions are
  // node-independent when the frame is uniform).
  void CompileLabelMasks(NodeId x, Label xl, LabelMasks* out) {
    if (auto it = by_label_.find(xl); it != by_label_.end()) {
      for (int slot : it->second) {
        const auto ait = anchor_of_.find(slot);
        if (ait != anchor_of_.end() &&
            anchor_sets_[ait->second].count(x) == 0) {
          continue;  // Anchored elsewhere.
        }
        CompileCandidate(x, slot, &out->base);
      }
    }
    // Tracked dists additionally apply starred (main-branch) candidates.
    if (auto it = by_label_star_.find(xl); it != by_label_star_.end()) {
      for (int slot : it->second) CompileCandidate(x, slot, &out->star);
    }
    if (batch_feasible_ && batch_count_ > 0 && xl == batch_out_label_) {
      for (int slot : pin_slots_) CompileCandidate(x, slot, &out->pin);
    }
    for (const auto& [need, set] : out->base.n) {
      if (need == 0) out->leaf_base_n |= set;
    }
    for (const auto& [need, set] : out->base.w) {
      if (need.IsEmpty()) out->leaf_base_w = out->leaf_base_w | set;
    }
    out->leaf_pin_n = out->leaf_base_n;
    out->leaf_pin_w = out->leaf_base_w;
    for (const auto& [need, set] : out->pin.n) {
      if (need == 0) out->leaf_pin_n |= set;
    }
    for (const auto& [need, set] : out->pin.w) {
      if (need.IsEmpty()) out->leaf_pin_w = out->leaf_pin_w | set;
    }
  }

  // Compiles candidate slot `s` into a (need, set) mask pair in `x`'s frame.
  // Returns false when a required child slot is not live in the subtree —
  // the candidate can never fire at `x`.
  bool CompileCandidate(NodeId x, int s, Masks* masks) {
    const QNode& qn = qnodes_[s];
    if (wide_[x]) {
      WideKey need, set;
      for (int t : qn.slash_kids) WideSetBit(&need, 2 * t + 1);  // A(t).
      for (int t : qn.desc_kids) WideSetBit(&need, 2 * t);       // D(t).
      WideSetBit(&set, 2 * s + 1);
      WideSetBit(&set, 2 * s);
      masks->w.emplace_back(need, set);
      return true;
    }
    NarrowKey need = 0;
    for (int t : qn.slash_kids) {
      const int pt = PosInFrame(x, t);
      if (pt < 0) return false;  // Need A(t) at a kept child.
      need |= NarrowKey{1} << (2 * pt + 1);
    }
    for (int t : qn.desc_kids) {
      const int pt = PosInFrame(x, t);
      if (pt < 0) return false;  // Need D(t): strictly below x.
      need |= NarrowKey{1} << (2 * pt);
    }
    const int ps = PosInFrame(x, s);
    PXV_CHECK_GE(ps, 0);  // s's label is x's label, so s is live here.
    masks->n.emplace_back(need, NarrowKey{3} << (2 * ps));  // A and D.
    return true;
  }

  // (A, D) region of ordinary node `x`, given x appears. Always returned in
  // x's own frame.
  Region NodeDist(NodeId x, PoolVec<Region>* regions) {
    (wide_[x] ? prof_->wide_nodes : prof_->narrow_nodes)++;
    const Label xl = pd_.label(x);
    bool any_parts = false;
    for (NodeId c : pd_.children(x)) {
      if (SlotOf(c) >= 0) {
        any_parts = true;
        break;
      }
    }
    // Leaf fast path (also: nodes whose children are all dead): the
    // combined child state is δ, so the rewrite collapses to one
    // precomputed key per label — no tables, no iteration.
    if (!any_parts && (uniform_frame_ && anchor_of_.empty())) {
      auto [it, inserted] = label_masks_.try_emplace(xl);
      if (inserted) CompileLabelMasks(x, xl, &it->second);
      const LabelMasks& lm = it->second;
      Region out;
      out.frame = x;
      out.base = MakeDist(wide_[x]);
      if (wide_[x]) {
        out.base.w.Add(lm.leaf_base_w, 1.0);
      } else {
        out.base.n.Add(lm.leaf_base_n & ProjMaskN(x), 1.0);
      }
      if (batch_feasible_ && batch_count_ > 0 && xl == batch_out_label_) {
        Dist pin = MakeDist(wide_[x]);
        if (wide_[x]) {
          pin.w.Add(lm.leaf_pin_w, 1.0);
        } else {
          pin.n.Add(lm.leaf_pin_n & ProjMaskN(x), 1.0);
        }
        out.tracked.EmplaceBack(pool_, x, std::move(pin));
      }
      return out;
    }

    PoolVec<Region> parts;
    parts.Reserve(pool_, pd_.children(x).size());
    for (NodeId c : pd_.children(x)) {
      if (SlotOf(c) < 0) continue;  // Identity contribution.
      parts.EmplaceBack(pool_, std::move((*regions)[SlotOf(c)]));
    }
    Region comb = Combine(std::move(parts), x);
    RemapRegionInPlace(&comb, x);
    // With a uniform frame and no per-node anchor filtering, candidate
    // masks depend on the node only through its label — compile them once
    // per label. (Anchored conjunctions and the wide/narrow frontier fall
    // back to per-node compilation.)
    const LabelMasks* cached = nullptr;
    LabelMasks local;
    if (uniform_frame_ && anchor_of_.empty()) {
      auto [it, inserted] = label_masks_.try_emplace(xl);
      if (inserted) CompileLabelMasks(x, xl, &it->second);
      cached = &it->second;
    } else {
      CompileLabelMasks(x, xl, &local);
      cached = &local;
    }
    const Masks& base_masks = cached->base;
    const Masks& star_masks = cached->star;
    const Masks& pin_masks = cached->pin;

    Region out;
    out.frame = x;
    out.base = RewriteDist(comb.base, x, wide_[x], base_masks, kNoMasks);
    // Rewrite tracked dists in place: the vector (and its pairs) carry over.
    out.tracked = std::move(comb.tracked);
    for (auto& [n, t] : out.tracked) {
      t = RewriteDist(t, x, wide_[x], base_masks, star_masks);
    }
    // x itself becomes a tracked anchor: pin every member's out slot here.
    if (batch_feasible_ && batch_count_ > 0 && xl == batch_out_label_) {
      out.tracked.EmplaceBack(pool_, x, RewriteDist(comb.base, x, wide_[x],
                                                    base_masks, pin_masks));
    }
    return out;
  }

  const PDocument& pd_;
  const int batch_count_;
  DistPool* pool_;
  DistProfile* prof_;
  const double prune_eps_;
  SubtreeCache* const cache_candidate_;  // From EngineOptions (may be null).
  const std::string* const cache_sig_;
  SubtreeCache* cache_ = nullptr;  // Non-null once SetupCache accepts the run.
  SubtreeCache::SigState* sig_ = nullptr;
  EngineBuffers* bufs_;
  bool analysis_cached_ = false;  // This run reused the cached analysis.
  std::vector<QNode> qnodes_;
  std::vector<int> goal_root_slots_;
  std::vector<int> batch_root_slots_;
  std::vector<int> pin_slots_;
  std::unordered_map<Label, std::vector<int>> by_label_;
  std::unordered_map<Label, std::vector<int>> by_label_star_;
  std::unordered_map<int, int> anchor_of_;
  std::vector<std::unordered_set<NodeId>> anchor_sets_;
  // Analysis buffers borrowed from the scratch (reused across runs).
  std::vector<SlotSet>& live_;
  std::vector<uint8_t>& wide_;
  std::vector<int32_t>& region_slot_;  // Compact slot per live node; -1 dead.
  std::vector<int8_t>& slots_flat_;  // kNarrowSlotCap bytes per live node.
  std::vector<uint8_t>& slots_len_;  // 0 = not yet extracted.
  std::vector<uint64_t>& obs_;  // Per-node upward-observable key masks.
  std::vector<uint8_t>& skip_;  // Per-node cache plan (kCompute/kHit/kCovered).
  std::vector<int32_t>& active_slot_;  // Compact slots (cache-enabled runs).
  int32_t active_count_ = 0;
  bool project_ = false;  // Dead-bit projection active (uniform narrow).
  int32_t region_count_ = 0;
  bool uniform_frame_ = false;  // Root narrow ⇒ one frame for everything.
  std::unordered_map<Label, LabelMasks> label_masks_;
  static const Masks kNoMasks;
  Label batch_out_label_ = 0;
  bool batch_out_label_set_ = false;
  bool batch_feasible_ = true;
};

const Masks Engine::kNoMasks;

}  // namespace

int ConjunctionSlotCount(const std::vector<Goal>& goals) {
  int total = 0;
  for (const Goal& g : goals) {
    PXV_CHECK(g.pattern != nullptr);
    total += g.pattern->size();
  }
  return total;
}

int BatchSlotCount(const std::vector<const Pattern*>& members) {
  int total = 0;
  for (const Pattern* m : members) {
    PXV_CHECK(m != nullptr);
    total += m->size();
  }
  return total;
}

double ConjunctionProbability(const PDocument& pd,
                              const std::vector<Goal>& goals,
                              DpScratch* scratch,
                              const EngineOptions& options) {
  PXV_CHECK(!pd.empty());
  if (goals.empty()) return 1.0;
  scratch->BeginRun();
  double p;
  {
    Engine engine(pd, goals, {}, scratch, options);
    p = engine.Probability();
  }
  scratch->EndRun();
  return p;
}

double ConjunctionProbability(const PDocument& pd,
                              const std::vector<Goal>& goals) {
  // Per-thread scratch: the legacy per-call API stays allocation-free in
  // steady state instead of building a fresh arena every call.
  static thread_local DpScratch scratch;
  return ConjunctionProbability(pd, goals, &scratch, {});
}

std::vector<NodeProb> BatchAnchoredProbabilities(
    const PDocument& pd, const std::vector<const Pattern*>& members,
    DpScratch* scratch, const EngineOptions& options) {
  PXV_CHECK(!pd.empty());
  if (members.empty()) return {};
  scratch->BeginRun();
  std::vector<NodeProb> out;
  {
    Engine engine(pd, {}, members, scratch, options);
    out = engine.BatchResults();
  }
  scratch->EndRun();
  return out;
}

std::vector<NodeProb> BatchAnchoredProbabilities(
    const PDocument& pd, const std::vector<const Pattern*>& members) {
  static thread_local DpScratch scratch;
  return BatchAnchoredProbabilities(pd, members, &scratch, {});
}

std::vector<NodeProb> BatchSelectionProbabilities(const PDocument& pd,
                                                  const Pattern& q) {
  return BatchAnchoredProbabilities(pd, {&q});
}

std::vector<std::vector<NodeProb>> BatchManyProbabilities(
    const PDocument& pd, const std::vector<const Pattern*>& members,
    DpScratch* scratch, const EngineOptions& options) {
  PXV_CHECK(!pd.empty());
  if (members.empty()) return {};
  for (const Pattern* m : members) {
    PXV_CHECK(m != nullptr);
    PXV_CHECK_EQ(m->OutLabel(), members[0]->OutLabel())
        << "BatchManyProbabilities members must share the output label";
  }
  scratch->BeginRun();
  std::vector<std::vector<NodeProb>> out;
  {
    Engine engine(pd, {}, members, scratch, options);
    out = engine.BatchResultsMany();
  }
  scratch->EndRun();
  return out;
}

std::vector<std::vector<NodeProb>> BatchManyProbabilities(
    const PDocument& pd, const std::vector<const Pattern*>& members) {
  static thread_local DpScratch scratch;
  return BatchManyProbabilities(pd, members, &scratch, {});
}

}  // namespace pxv
