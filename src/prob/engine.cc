#include "prob/engine.h"

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "util/check.h"

namespace pxv {
namespace {

// Packed (A, D) pair: 2 bits per global query node — bit 2i = "D" (embeds
// at-or-below), bit 2i+1 = "A" (embeds exactly here); A implies D.
struct StateKey {
  uint64_t lo = 0, hi = 0;
  bool operator==(const StateKey& o) const { return lo == o.lo && hi == o.hi; }
  StateKey operator|(const StateKey& o) const { return {lo | o.lo, hi | o.hi}; }
};

struct StateKeyHash {
  size_t operator()(const StateKey& k) const {
    uint64_t x = k.lo * 0x9E3779B97F4A7C15ULL;
    x ^= (k.hi + 0x9E3779B97F4A7C15ULL + (x << 6) + (x >> 2));
    return static_cast<size_t>(x ^ (x >> 29));
  }
};

using Dist = std::unordered_map<StateKey, double, StateKeyHash>;

void SetBit(StateKey* k, int bit) {
  if (bit < 64) {
    k->lo |= (uint64_t{1} << bit);
  } else {
    k->hi |= (uint64_t{1} << (bit - 64));
  }
}

bool GetBit(const StateKey& k, int bit) {
  return bit < 64 ? (k.lo >> bit) & 1 : (k.hi >> (bit - 64)) & 1;
}

class Engine {
 public:
  Engine(const PDocument& pd, const std::vector<Goal>& goals) : pd_(pd) {
    // Assign global query-node ids.
    int total = 0;
    for (const Goal& g : goals) {
      PXV_CHECK(g.pattern != nullptr);
      offsets_.push_back(total);
      total += g.pattern->size();
    }
    PXV_CHECK_LE(total, 64) << "conjunction too large for the packed DP";
    qnodes_.resize(total);
    for (size_t gi = 0; gi < goals.size(); ++gi) {
      const Pattern& p = *goals[gi].pattern;
      for (PNodeId n = 0; n < p.size(); ++n) {
        QNode& qn = qnodes_[offsets_[gi] + n];
        qn.label = p.label(n);
        qn.anchored = (n == p.out()) && goals[gi].anchor != nullptr;
        for (PNodeId c : p.children(n)) {
          (p.axis(c) == Axis::kChild ? qn.slash_kids : qn.desc_kids)
              .push_back(offsets_[gi] + c);
        }
        by_label_[qn.label].push_back(offsets_[gi] + n);
        if (n == p.root()) root_qids_.push_back(offsets_[gi] + n);
      }
      if (goals[gi].anchor != nullptr) {
        anchor_sets_.emplace_back();
        for (NodeId a : *goals[gi].anchor) anchor_sets_.back().insert(a);
        anchor_of_[offsets_[gi] + p.out()] =
            static_cast<int>(anchor_sets_.size()) - 1;
      }
    }
    // Label-relevance pruning: a p-document subtree without any query label
    // contributes the empty state with probability 1.
    relevant_.assign(pd.size(), 0);
    for (NodeId n = pd.size() - 1; n >= 0; --n) {
      bool rel = pd.ordinary(n) && by_label_.count(pd.label(n)) > 0;
      if (!rel) {
        for (NodeId c : pd.children(n)) {
          if (relevant_[c]) {
            rel = true;
            break;
          }
        }
      }
      relevant_[n] = rel;
    }
  }

  double Probability() {
    Dist root = NodeDist(pd_.root());
    double p = 0;
    for (const auto& [key, prob] : root) {
      bool all = true;
      for (int qid : root_qids_) {
        if (!GetBit(key, 2 * qid + 1)) {
          all = false;
          break;
        }
      }
      if (all) p += prob;
    }
    return p;
  }

 private:
  struct QNode {
    Label label = 0;
    bool anchored = false;
    std::vector<int> slash_kids, desc_kids;
  };

  static Dist Delta() { return Dist{{StateKey{}, 1.0}}; }

  static Dist Convolve(const Dist& a, const Dist& b) {
    if (a.size() == 1 && a.begin()->first == StateKey{}) {
      Dist out = b;
      const double p = a.begin()->second;
      if (p != 1.0) {
        for (auto& [k, v] : out) v *= p;
      }
      return out;
    }
    Dist out;
    out.reserve(a.size() * b.size());
    for (const auto& [ka, pa] : a) {
      for (const auto& [kb, pb] : b) {
        out[ka | kb] += pa * pb;
      }
    }
    return out;
  }

  // Distribution contributed by the region rooted at `n`, conditioned on the
  // edge into `n` being taken.
  Dist Contribution(NodeId n) {
    if (!relevant_[n]) return Delta();
    switch (pd_.kind(n)) {
      case PKind::kOrdinary:
        return NodeDist(n);
      case PKind::kDet: {
        Dist acc = Delta();
        for (NodeId c : pd_.children(n)) acc = Convolve(acc, Contribution(c));
        return acc;
      }
      case PKind::kMux: {
        Dist acc;
        double total = 0;
        for (NodeId c : pd_.children(n)) {
          const double p = pd_.edge_prob(c);
          total += p;
          if (p == 0) continue;
          for (const auto& [k, v] : Contribution(c)) acc[k] += p * v;
        }
        if (total < 1.0) acc[StateKey{}] += 1.0 - total;
        return acc;
      }
      case PKind::kInd: {
        Dist acc = Delta();
        for (NodeId c : pd_.children(n)) {
          const double p = pd_.edge_prob(c);
          Dist mixed;
          if (p > 0) {
            for (const auto& [k, v] : Contribution(c)) mixed[k] += p * v;
          }
          if (p < 1.0) mixed[StateKey{}] += 1.0 - p;
          acc = Convolve(acc, mixed);
        }
        return acc;
      }
      case PKind::kExp: {
        const auto& kids = pd_.children(n);
        Dist acc;
        double total = 0;
        for (const auto& [subset, p] : pd_.exp_distribution(n)) {
          total += p;
          if (p == 0) continue;
          Dist chosen = Delta();
          for (int idx : subset) {
            chosen = Convolve(chosen, Contribution(kids[idx]));
          }
          for (const auto& [k, v] : chosen) acc[k] += p * v;
        }
        if (total < 1.0) acc[StateKey{}] += 1.0 - total;
        return acc;
      }
    }
    PXV_CHECK(false);
    return Delta();
  }

  // (A, D) distribution of ordinary node `x`, given x appears.
  Dist NodeDist(NodeId x) {
    Dist combined = Delta();
    for (NodeId c : pd_.children(x)) {
      combined = Convolve(combined, Contribution(c));
    }
    // Candidate query nodes matching x's label.
    std::vector<int> candidates;
    auto it = by_label_.find(pd_.label(x));
    if (it != by_label_.end()) {
      for (int qid : it->second) {
        const auto anchor_it = anchor_of_.find(qid);
        if (anchor_it != anchor_of_.end() &&
            anchor_sets_[anchor_it->second].count(x) == 0) {
          continue;  // Anchored elsewhere.
        }
        candidates.push_back(qid);
      }
    }
    Dist out;
    out.reserve(combined.size());
    for (const auto& [key, p] : combined) {
      // New key: D-bits flow up; A-bits are recomputed at x.
      StateKey nk{key.lo & kDMaskLo, key.hi & kDMaskHi};
      for (int qid : candidates) {
        const QNode& qn = qnodes_[qid];
        bool ok = true;
        for (int t : qn.slash_kids) {
          if (!GetBit(key, 2 * t + 1)) {  // Need A(t) at some kept child.
            ok = false;
            break;
          }
        }
        if (ok) {
          for (int t : qn.desc_kids) {
            if (!GetBit(key, 2 * t)) {  // Need D(t): strictly below x.
              ok = false;
              break;
            }
          }
        }
        if (ok) {
          SetBit(&nk, 2 * qid + 1);  // A
          SetBit(&nk, 2 * qid);      // D
        }
      }
      out[nk] += p;
    }
    return out;
  }

  static constexpr uint64_t kDMaskLo = 0x5555555555555555ULL;
  static constexpr uint64_t kDMaskHi = 0x5555555555555555ULL;

  const PDocument& pd_;
  std::vector<int> offsets_;
  std::vector<QNode> qnodes_;
  std::vector<int> root_qids_;
  std::unordered_map<Label, std::vector<int>> by_label_;
  std::unordered_map<int, int> anchor_of_;
  std::vector<std::unordered_set<NodeId>> anchor_sets_;
  std::vector<uint8_t> relevant_;
};

}  // namespace

double ConjunctionProbability(const PDocument& pd,
                              const std::vector<Goal>& goals) {
  PXV_CHECK(!pd.empty());
  if (goals.empty()) return 1.0;
  Engine engine(pd, goals);
  return engine.Probability();
}

}  // namespace pxv
