#include "prob/naive.h"

#include <algorithm>

#include "pxml/worlds.h"
#include "tp/eval.h"
#include "tpi/eval.h"
#include "util/check.h"

namespace pxv {
namespace {

std::vector<World> Worlds(const PDocument& pd) {
  StatusOr<std::vector<World>> worlds = EnumerateWorlds(pd);
  PXV_CHECK(worlds.ok()) << worlds.status().message();
  return *std::move(worlds);
}

// Inverts pdoc_to_doc: document node → p-document node.
std::vector<NodeId> DocToPdoc(const World& w, int doc_size) {
  std::vector<NodeId> inverse(doc_size, kNullNode);
  for (NodeId pn = 0; pn < static_cast<NodeId>(w.pdoc_to_doc.size()); ++pn) {
    if (w.pdoc_to_doc[pn] != kNullNode) inverse[w.pdoc_to_doc[pn]] = pn;
  }
  return inverse;
}

}  // namespace

std::map<NodeId, double> NaiveEvaluateTP(const PDocument& pd,
                                         const Pattern& q) {
  std::map<NodeId, double> result;
  for (const World& w : Worlds(pd)) {
    const auto inverse = DocToPdoc(w, w.doc.size());
    for (NodeId dn : Evaluate(q, w.doc)) {
      result[inverse[dn]] += w.prob;
    }
  }
  return result;
}

std::map<NodeId, double> NaiveEvaluateTPI(const PDocument& pd,
                                          const TpIntersection& q) {
  std::map<NodeId, double> result;
  for (const World& w : Worlds(pd)) {
    const auto inverse = DocToPdoc(w, w.doc.size());
    for (NodeId dn : EvaluateIntersectionNodes(q, w.doc)) {
      result[inverse[dn]] += w.prob;
    }
  }
  return result;
}

double NaiveBooleanProbability(const PDocument& pd, const Pattern& q) {
  double p = 0;
  for (const World& w : Worlds(pd)) {
    if (Matches(q, w.doc)) p += w.prob;
  }
  return p;
}

double NaiveAppearanceProbability(const PDocument& pd, NodeId n) {
  double p = 0;
  for (const World& w : Worlds(pd)) {
    if (w.pdoc_to_doc[n] != kNullNode) p += w.prob;
  }
  return p;
}

StatusOr<double> NaiveTryConjunction(const PDocument& pd,
                                     const std::vector<Goal>& goals,
                                     int max_worlds) {
  StatusOr<std::vector<World>> worlds = EnumerateWorlds(pd, max_worlds);
  if (!worlds.ok()) return worlds.status();
  double p = 0;
  for (const World& w : *worlds) {
    bool all = true;
    for (const Goal& g : goals) {
      PXV_CHECK(g.pattern != nullptr);
      if (g.anchor == nullptr) {
        if (!Matches(*g.pattern, w.doc)) {
          all = false;
          break;
        }
        continue;
      }
      // Anchored: out must land on a surviving anchor node.
      const std::vector<NodeId> selected = Evaluate(*g.pattern, w.doc);
      bool hit = false;
      for (NodeId a : *g.anchor) {
        const NodeId dn = w.pdoc_to_doc[a];
        if (dn != kNullNode &&
            std::binary_search(selected.begin(), selected.end(), dn)) {
          hit = true;
          break;
        }
      }
      if (!hit) {
        all = false;
        break;
      }
    }
    if (all) p += w.prob;
  }
  return p;
}

StatusOr<std::map<NodeId, double>> NaiveTryBatchAnchored(
    const PDocument& pd, const std::vector<const Pattern*>& members,
    int max_worlds) {
  StatusOr<std::vector<World>> worlds = EnumerateWorlds(pd, max_worlds);
  if (!worlds.ok()) return worlds.status();
  TpIntersection q;
  for (const Pattern* m : members) {
    PXV_CHECK(m != nullptr);
    q.Add(m->Clone());
  }
  std::map<NodeId, double> result;
  for (const World& w : *worlds) {
    const auto inverse = DocToPdoc(w, w.doc.size());
    for (NodeId dn : EvaluateIntersectionNodes(q, w.doc)) {
      result[inverse[dn]] += w.prob;
    }
  }
  return result;
}

}  // namespace pxv
