#include "prob/circuit_backend.h"

#include <string>
#include <utility>

#include "prob/simd.h"

namespace pxv {
namespace {

Status DeclineTooLarge(const char* what, int slots) {
  return Status::Error(std::string("circuit declines: ") + what + " needs " +
                       std::to_string(slots) + " slots, cap is " +
                       std::to_string(kMaxConjunctionSlots));
}

}  // namespace

CircuitBackend::CircuitBackend(const CircuitBackendOptions& options)
    : options_(options),
      kernel_(ResolveKernel(options.force_scalar)),
      shared_(options.max_gates) {}

CircuitBackend::~CircuitBackend() = default;

const char* CircuitBackend::kernel_name() const { return kernel_->name; }

std::string CircuitBackend::CacheKey(
    char mode, const std::vector<const Pattern*>& members) {
  std::string key;
  key += mode;
  key += '\n';
  for (const Pattern* m : members) {
    key += m->CanonicalString();
    key += '\n';
  }
  return key;
}

EngineOptions CircuitBackend::RecordOptions(CircuitRecorder* rec) const {
  EngineOptions options;
  options.kernel = kernel_;
  options.sibling_tree = options_.sibling_tree;
  options.recorder = rec;
  return options;
}

void CircuitBackend::UpdateGauges() {
  DistProfile* prof = scratch_.profile();
  const LineageCircuit::Stats s = shared_.stats();
  prof->circuit_shared_gates = s.shared_gates;
  prof->circuit_private_gates = s.private_gates;
  prof->circuit_roots = s.roots;
}

void CircuitBackend::EvictOverflow(const std::string& keep) {
  DistProfile* prof = scratch_.profile();
  while (queries_.size() > options_.max_cached_queries) {
    auto victim = queries_.end();
    for (auto it = queries_.begin(); it != queries_.end(); ++it) {
      if (it->first == keep) continue;
      if (victim == queries_.end() || it->second.tick < victim->second.tick) {
        victim = it;
      }
    }
    if (victim == queries_.end()) return;
    shared_.Unregister(victim->first);
    queries_.erase(victim);
    ++prof->circuit_evictions;
  }
}

template <typename ColdFn>
bool CircuitBackend::Sync(const PDocument& pd, const std::string& key,
                          ColdFn run_cold,
                          std::vector<std::vector<NodeProb>>* cold) {
  DistProfile* prof = scratch_.profile();
  // A structural mutation stales every recorded schedule at once: drop the
  // pool (and the bans — the document changed shape, so a formerly huge
  // recording may now fit) and let the queries re-record lazily.
  if (structure_version_ != pd.structure_version()) {
    shared_.Reset();
    queries_.clear();
    structure_version_ = pd.structure_version();
  }
  QueryState& qs = queries_[key];
  qs.tick = ++tick_;
  if (qs.banned) {
    // Ladder step 4, steady state: this query's recording does not fit the
    // pool; it pays a plain (unrecorded) DP pass per call.
    *cold = run_cold(nullptr);
    ++prof->circuit_recompiles;
    return false;
  }
  bool registered = shared_.Registered(key);
  if (registered && shared_.pending(pd)) {
    // Ladder step 2: ONE merged input-diff + dirty-cone pass refreshes
    // every registration, not just this query's. Reshaped exp subsets
    // deactivate exactly the registrations that recorded them.
    prof->circuit_dirty_gates += shared_.Sync(pd, nullptr);
    ++prof->circuit_merged_propagations;
    registered = shared_.Registered(key);
  }
  if (registered && !shared_.GuardsHold(key)) {
    // Ladder step 3: a guard flipped — the engine would have branched
    // differently, so the recorded straight line no longer reproduces this
    // query (and only this query). Re-record it into the pool.
    shared_.Deactivate(key);
    registered = false;
  }
  if (registered) return true;  // Ladder step 1/2: replay the outputs.
  // Cold or re-record: one full engine pass streamed into the shared pool —
  // hash-consing folds it onto every gate the other registrations already
  // built. The pass's own results serve this call, so bit-identity with
  // ExactDpBackend is trivial on cold serves.
  if (shared_.NeedsRebuild()) {
    // Mostly dead pool (evictions / re-records): drop it; live queries
    // re-record lazily on their next serve.
    shared_.Reset();
  }
  const size_t before = shared_.pool_gate_count();
  shared_.BeginRecording();
  *cold = run_cold(shared_.recorder());
  ++prof->circuit_recompiles;
  if (!shared_.CommitRecording(key, pd)) {
    qs.banned = true;
    UpdateGauges();
    return false;
  }
  prof->circuit_gates += shared_.pool_gate_count() - before;
  EvictOverflow(key);
  UpdateGauges();
  return true;
}

StatusOr<double> CircuitBackend::Conjunction(const PDocument& pd,
                                             const std::vector<Goal>& goals) {
  const int slots = ConjunctionSlotCount(goals);
  if (slots > kMaxConjunctionSlots) {
    return DeclineTooLarge("conjunction", slots);
  }
  EngineOptions options;
  options.kernel = kernel_;
  options.sibling_tree = options_.sibling_tree;
  return ConjunctionProbability(pd, goals, &scratch_, options);
}

StatusOr<std::vector<NodeProb>> CircuitBackend::BatchAnchored(
    const PDocument& pd, const std::vector<const Pattern*>& members) {
  const int slots = BatchSlotCount(members);
  if (slots > kMaxConjunctionSlots) return DeclineTooLarge("batch", slots);
  std::vector<std::vector<NodeProb>> cold;
  SyncJoint(pd, members, &cold);
  if (!cold.empty()) return std::move(cold[0]);
  return shared_.Results(key_, 0);
}

StatusOr<std::vector<std::vector<NodeProb>>> CircuitBackend::BatchAnchoredMany(
    const PDocument& pd, const std::vector<const Pattern*>& members) {
  const int slots = BatchSlotCount(members);
  if (slots > kMaxConjunctionSlots) return DeclineTooLarge("batch", slots);
  key_ = CacheKey('M', members);
  std::vector<std::vector<NodeProb>> cold;
  const bool servable = Sync(
      pd, key_,
      [&](CircuitRecorder* rec) {
        return BatchManyProbabilities(pd, members, &scratch_,
                                      RecordOptions(rec));
      },
      &cold);
  if (!cold.empty()) return std::move(cold);
  PXV_CHECK(servable);
  std::vector<std::vector<NodeProb>> out;
  const int n = shared_.member_count(key_);
  out.reserve(size_t(n));
  for (int i = 0; i < n; ++i) out.push_back(shared_.Results(key_, i));
  return out;
}

// Syncs the shared circuit for the joint ('J'-mode) readout of `members` —
// the one BatchAnchored serves — recording it if needed. Leaves the key in
// key_. False when the query is banned by the gate cap; a slot-cap overflow
// has already been declined by the caller.
bool CircuitBackend::SyncJoint(const PDocument& pd,
                               const std::vector<const Pattern*>& members,
                               std::vector<std::vector<NodeProb>>* cold) {
  key_ = CacheKey('J', members);
  return Sync(
      pd, key_,
      [&](CircuitRecorder* rec) {
        std::vector<std::vector<NodeProb>> r(1);
        r[0] = BatchAnchoredProbabilities(pd, members, &scratch_,
                                          RecordOptions(rec));
        return r;
      },
      cold);
}

StatusOr<std::vector<NodeProb>> CircuitBackend::WhatIf(
    const PDocument& pd, const std::vector<const Pattern*>& members,
    const std::vector<std::pair<CircuitInput, double>>& changes) {
  const int slots = BatchSlotCount(members);
  if (slots > kMaxConjunctionSlots) return DeclineTooLarge("batch", slots);
  std::vector<std::vector<NodeProb>> cold;
  if (!SyncJoint(pd, members, &cold)) {
    return Status::Error(
        "circuit declines: recording exceeds the gate cap (" +
        std::to_string(options_.max_gates) + " gates)");
  }
  // The joint readout has a single output group (group 0).
  StatusOr<std::vector<std::vector<NodeProb>>> r =
      shared_.WhatIf(key_, changes);
  if (!r.ok()) return r.status();
  return std::move((*r)[0]);
}

StatusOr<std::vector<LineageCircuit::Sensitivity>> CircuitBackend::Sensitivities(
    const PDocument& pd, const std::vector<const Pattern*>& members,
    NodeId node) {
  const int slots = BatchSlotCount(members);
  if (slots > kMaxConjunctionSlots) return DeclineTooLarge("batch", slots);
  std::vector<std::vector<NodeProb>> cold;
  if (!SyncJoint(pd, members, &cold)) {
    return Status::Error(
        "circuit declines: recording exceeds the gate cap (" +
        std::to_string(options_.max_gates) + " gates)");
  }
  // The joint readout has a single output group (group 0).
  return shared_.Sensitivities(key_, 0, node);
}

}  // namespace pxv
