#include "prob/circuit_backend.h"

#include <string>
#include <utility>

#include "prob/simd.h"

namespace pxv {
namespace {

Status DeclineTooLarge(const char* what, int slots) {
  return Status::Error(std::string("circuit declines: ") + what + " needs " +
                       std::to_string(slots) + " slots, cap is " +
                       std::to_string(kMaxConjunctionSlots));
}

}  // namespace

CircuitBackend::CircuitBackend(const CircuitBackendOptions& options)
    : options_(options), kernel_(ResolveKernel(options.force_scalar)) {}

CircuitBackend::~CircuitBackend() = default;

const char* CircuitBackend::kernel_name() const { return kernel_->name; }

std::string CircuitBackend::CacheKey(
    char mode, const std::vector<const Pattern*>& members) {
  std::string key;
  key += mode;
  key += '\n';
  for (const Pattern* m : members) {
    key += m->CanonicalString();
    key += '\n';
  }
  return key;
}

EngineOptions CircuitBackend::RecordOptions(CircuitRecorder* rec) const {
  EngineOptions options;
  options.kernel = kernel_;
  options.sibling_tree = options_.sibling_tree;
  options.recorder = rec;
  return options;
}

template <typename ColdFn>
CircuitBackend::Entry* CircuitBackend::Sync(
    const PDocument& pd, const std::string& key,
    const std::vector<const Pattern*>& members, ColdFn run_cold,
    std::vector<std::vector<NodeProb>>* cold) {
  (void)members;
  DistProfile* prof = scratch_.profile();
  Entry& e = cache_[key];
  if (e.circuit != nullptr && e.structure_version == pd.structure_version()) {
    LineageCircuit& c = *e.circuit;
    // Ladder step 1: nothing mutated since the last serve — the gate values
    // already reflect pd, replay the outputs as they stand.
    if (e.served_uid == pd.uid()) return &e;
    // Ladder step 2: probability-only churn. SetExpDistribution can reshape
    // the subset structure without moving structure_version, so re-check the
    // recorded shapes before trusting the input diff.
    bool shapes_ok = true;
    for (const auto& [node, sig] : c.exp_sigs()) {
      if (ExpStructureSig(pd, node) != sig) {
        shapes_ok = false;
        break;
      }
    }
    if (shapes_ok) {
      updates_.clear();
      const std::vector<CircuitInput>& ins = c.inputs();
      updates_.reserve(ins.size());
      for (size_t i = 0; i < ins.size(); ++i) {
        const CircuitInput& in = ins[i];
        const double v =
            in.kind == CircuitInput::Kind::kEdgeProb
                ? pd.edge_prob(in.node)
                : pd.exp_distribution(in.node)[size_t(in.index)].second;
        updates_.emplace_back(c.input_gate(i), v);
      }
      prof->circuit_dirty_gates += c.Propagate(updates_);
      if (c.GuardsHold()) {
        e.served_uid = pd.uid();
        return &e;
      }
      // A guard flipped: the engine would have branched differently, so the
      // recorded straight line no longer reproduces it. Fall through to a
      // fresh recording (the half-propagated gate values are discarded with
      // the circuit).
    }
  }
  // Ladder step 3: record one full engine pass and compile it. The pass's
  // own results serve this call — bit-identity with ExactDpBackend is
  // trivial on cold serves.
  CircuitRecorder rec;
  *cold = run_cold(&rec);
  ++prof->circuit_recompiles;
  if (rec.gate_count() > options_.max_gates) {
    // Ladder step 4: too big to keep. Drop any stale circuit; this query
    // set pays a plain DP pass per call until the document shrinks.
    e = Entry{};
    return nullptr;
  }
  prof->circuit_gates += rec.gate_count();
  e.circuit = LineageCircuit::Compile(std::move(rec));
  e.structure_version = pd.structure_version();
  e.served_uid = pd.uid();
  return &e;
}

StatusOr<double> CircuitBackend::Conjunction(const PDocument& pd,
                                             const std::vector<Goal>& goals) {
  const int slots = ConjunctionSlotCount(goals);
  if (slots > kMaxConjunctionSlots) {
    return DeclineTooLarge("conjunction", slots);
  }
  EngineOptions options;
  options.kernel = kernel_;
  options.sibling_tree = options_.sibling_tree;
  return ConjunctionProbability(pd, goals, &scratch_, options);
}

StatusOr<std::vector<NodeProb>> CircuitBackend::BatchAnchored(
    const PDocument& pd, const std::vector<const Pattern*>& members) {
  const int slots = BatchSlotCount(members);
  if (slots > kMaxConjunctionSlots) return DeclineTooLarge("batch", slots);
  std::vector<std::vector<NodeProb>> cold;
  Entry* e = SyncJoint(pd, members, &cold);
  if (!cold.empty()) return std::move(cold[0]);
  PXV_CHECK(e != nullptr);
  return e->circuit->Results(0);
}

StatusOr<std::vector<std::vector<NodeProb>>> CircuitBackend::BatchAnchoredMany(
    const PDocument& pd, const std::vector<const Pattern*>& members) {
  const int slots = BatchSlotCount(members);
  if (slots > kMaxConjunctionSlots) return DeclineTooLarge("batch", slots);
  key_ = CacheKey('M', members);
  std::vector<std::vector<NodeProb>> cold;
  Entry* e = Sync(
      pd, key_, members,
      [&](CircuitRecorder* rec) {
        return BatchManyProbabilities(pd, members, &scratch_,
                                      RecordOptions(rec));
      },
      &cold);
  if (!cold.empty()) return std::move(cold);
  PXV_CHECK(e != nullptr);
  std::vector<std::vector<NodeProb>> out;
  out.reserve(size_t(e->circuit->member_count()));
  for (int i = 0; i < e->circuit->member_count(); ++i) {
    out.push_back(e->circuit->Results(i));
  }
  return out;
}

// Syncs the joint ('J'-mode) circuit for `members` — the one BatchAnchored
// serves — compiling it if needed. Null when the recording exceeds the gate
// cap; a slot-cap overflow has already been declined by the caller.
CircuitBackend::Entry* CircuitBackend::SyncJoint(
    const PDocument& pd, const std::vector<const Pattern*>& members,
    std::vector<std::vector<NodeProb>>* cold) {
  key_ = CacheKey('J', members);
  return Sync(
      pd, key_, members,
      [&](CircuitRecorder* rec) {
        std::vector<std::vector<NodeProb>> r(1);
        r[0] = BatchAnchoredProbabilities(pd, members, &scratch_,
                                          RecordOptions(rec));
        return r;
      },
      cold);
}

StatusOr<std::vector<LineageCircuit::Sensitivity>> CircuitBackend::Sensitivities(
    const PDocument& pd, const std::vector<const Pattern*>& members,
    NodeId node) {
  const int slots = BatchSlotCount(members);
  if (slots > kMaxConjunctionSlots) return DeclineTooLarge("batch", slots);
  std::vector<std::vector<NodeProb>> cold;
  Entry* e = SyncJoint(pd, members, &cold);
  if (e == nullptr) {
    return Status::Error(
        "circuit declines: recording exceeds the gate cap (" +
        std::to_string(options_.max_gates) + " gates)");
  }
  // The compiled joint readout has a single output group (group 0).
  return e->circuit->Sensitivities(0, node);
}

StatusOr<const LineageCircuit*> CircuitBackend::Compiled(
    const PDocument& pd, const std::vector<const Pattern*>& members) {
  const int slots = BatchSlotCount(members);
  if (slots > kMaxConjunctionSlots) return DeclineTooLarge("batch", slots);
  std::vector<std::vector<NodeProb>> cold;
  Entry* e = SyncJoint(pd, members, &cold);
  if (e == nullptr) {
    return Status::Error(
        "circuit declines: recording exceeds the gate cap (" +
        std::to_string(options_.max_gates) + " gates)");
  }
  return static_cast<const LineageCircuit*>(e->circuit.get());
}

}  // namespace pxv
