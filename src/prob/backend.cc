#include "prob/backend.h"

#include <algorithm>
#include <map>
#include <string>

#include "prob/naive.h"
#include "prob/simd.h"

namespace pxv {
namespace {

Status DeclineTooLarge(const char* what, int slots) {
  return Status::Error(std::string("exact-dp declines: ") + what + " needs " +
                       std::to_string(slots) + " slots, cap is " +
                       std::to_string(kMaxConjunctionSlots));
}

}  // namespace

// Kernel dispatch happens exactly once, here: every engine run this backend
// serves uses the same resolved table (prob/simd.h).
ExactDpBackend::ExactDpBackend(const ExactDpOptions& options)
    : options_(options), kernel_(ResolveKernel(options.force_scalar)) {
  if (options_.cache_subtrees) cache_ = MakeSubtreeCache();
}

ExactDpBackend::~ExactDpBackend() = default;

const char* ExactDpBackend::kernel_name() const { return kernel_->name; }

SubtreeCacheStats ExactDpBackend::subtree_cache_stats() const {
  return cache_ != nullptr ? GetSubtreeCacheStats(*cache_)
                           : SubtreeCacheStats{};
}

void ExactDpBackend::InvalidateSubtreeCache() {
  pxv::InvalidateSubtreeCache(cache_.get());
}

// Engine options for one batched call: the incremental memo is keyed by the
// concatenated canonical member patterns — the same member set in the same
// order always lands on the same signature, and any other set cannot
// collide (canonical forms are unambiguous and '\n'-separated).
EngineOptions ExactDpBackend::RunOptions(
    const std::vector<const Pattern*>& members) {
  EngineOptions options;
  options.prune_eps = options_.prune_eps;
  options.kernel = kernel_;
  options.sibling_tree = options_.sibling_tree;
  if (cache_ != nullptr) {
    run_signature_.clear();
    for (const Pattern* m : members) {
      run_signature_ += m->CanonicalString();
      run_signature_ += '\n';
    }
    options.subtree_cache = cache_.get();
    options.cache_signature = &run_signature_;
  }
  return options;
}

StatusOr<double> ExactDpBackend::Conjunction(const PDocument& pd,
                                             const std::vector<Goal>& goals) {
  const int slots = ConjunctionSlotCount(goals);
  if (slots > kMaxConjunctionSlots) return DeclineTooLarge("conjunction", slots);
  EngineOptions options;
  options.prune_eps = options_.prune_eps;
  options.kernel = kernel_;
  options.sibling_tree = options_.sibling_tree;
  return ConjunctionProbability(pd, goals, &scratch_, options);
}

StatusOr<std::vector<NodeProb>> ExactDpBackend::BatchAnchored(
    const PDocument& pd, const std::vector<const Pattern*>& members) {
  const int slots = BatchSlotCount(members);
  if (slots > kMaxConjunctionSlots) return DeclineTooLarge("batch", slots);
  return BatchAnchoredProbabilities(pd, members, &scratch_,
                                    RunOptions(members));
}

StatusOr<std::vector<std::vector<NodeProb>>> ExactDpBackend::BatchAnchoredMany(
    const PDocument& pd, const std::vector<const Pattern*>& members) {
  const int slots = BatchSlotCount(members);
  if (slots > kMaxConjunctionSlots) return DeclineTooLarge("batch", slots);
  return BatchManyProbabilities(pd, members, &scratch_, RunOptions(members));
}

StatusOr<double> NaiveBackend::Conjunction(const PDocument& pd,
                                           const std::vector<Goal>& goals) {
  return NaiveTryConjunction(pd, goals, max_worlds_);
}

StatusOr<std::vector<NodeProb>> NaiveBackend::BatchAnchored(
    const PDocument& pd, const std::vector<const Pattern*>& members) {
  StatusOr<std::map<NodeId, double>> by_node =
      NaiveTryBatchAnchored(pd, members, max_worlds_);
  if (!by_node.ok()) return by_node.status();
  std::vector<NodeProb> out;
  out.reserve(by_node->size());
  for (const auto& [n, p] : *by_node) {
    if (p > 0) out.push_back({n, p});
  }
  return out;
}

}  // namespace pxv
