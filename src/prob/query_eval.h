// Façade for probabilistic query evaluation over p-documents: the q(P̂)
// semantics of §2 (sets of node–probability pairs) plus the anchored and
// conditional probabilities the rewriting algorithms need.

#ifndef PXV_PROB_QUERY_EVAL_H_
#define PXV_PROB_QUERY_EVAL_H_

#include <vector>

#include "prob/engine.h"
#include "pxml/pdocument.h"
#include "tp/pattern.h"
#include "tpi/intersection.h"

namespace pxv {

/// q(P̂) = { (n, p) : p = Pr(n ∈ q(P)) > 0 }, ascending node id. PTime in
/// |P̂| for fixed q. (NodeProb lives in prob/engine.h.)
std::vector<NodeProb> EvaluateTP(const PDocument& pd, const Pattern& q);

/// (q1 ∩ … ∩ qk)(P̂) over a single p-document: Pr(n selected by every
/// member).
std::vector<NodeProb> EvaluateTPI(const PDocument& pd,
                                  const TpIntersection& q);

/// Pr(n ∈ q(P)) for one node.
double SelectionProbability(const PDocument& pd, const Pattern& q, NodeId n);

/// Pr(out(q) selected at *some* node of `anchor`) — used over view
/// extensions where a persistent id occurs several times (§3.1).
double SelectionProbabilityAnyOf(const PDocument& pd, const Pattern& q,
                                 const std::vector<NodeId>& anchor);

/// Pr(all goals hold simultaneously); see prob/engine.h.
double JointProbability(const PDocument& pd, const std::vector<Goal>& goals);

/// Pr(q matches P) — Boolean (out unanchored).
double BooleanProbability(const PDocument& pd, const Pattern& q);

}  // namespace pxv

#endif  // PXV_PROB_QUERY_EVAL_H_
