// Pr(n ∈ P): the appearance probability of a node (paper §5.2). For local
// PrXML models it factorizes along the root path — each distributional
// ancestor must keep n's branch, independently.

#ifndef PXV_PROB_APPEARANCE_H_
#define PXV_PROB_APPEARANCE_H_

#include "pxml/pdocument.h"

namespace pxv {

/// Pr(n ∈ P) for an ordinary node n of pd. PTime (linear in depth).
double NodeAppearanceProbability(const PDocument& pd, NodeId n);

}  // namespace pxv

#endif  // PXV_PROB_APPEARANCE_H_
