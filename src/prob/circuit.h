// Lineage circuits for the exact DP (prob/engine.cc): the knowledge-
// compilation route. On the paper's tractable fragments the exact DP's
// arithmetic is polynomial in |P̂|, so the whole derivation — every
// floating-point add/multiply the bottom-up pass performs, in the exact
// order it performs them — can be *recorded once* into an arithmetic
// circuit over input gates (edge probabilities and exp-distribution slots)
// and then re-evaluated per probability-only delta by propagating changed
// values through the dirty cone, instead of re-running the DP spine.
//
// Since PR 9 the circuit is SHARED across queries: one multi-root gate pool
// per document serves every cached query signature. Hash-consing does the
// sharing by construction — the pool's CSE tables persist across
// recordings, so when a second query's DP pass re-derives a subcomputation
// the first one already recorded (the same input gates, the same subtree
// convolution chains, the same sibling-product internals), it folds onto
// the existing gates and only the query-private remainder is appended. A
// probability delta then costs ONE input diff + ONE dirty-cone sweep over
// the merged DAG for *all* registered queries, instead of one per query.
//
// Two classes:
//
//   * CircuitRecorder — the persistent gate pool and build-time sink the
//     engine streams gates into when EngineOptions::recorder is set. Gates
//     are hash-consed (common-subexpression folding; Add/Mul canonicalize
//     operand order, which is sound because IEEE-754 + and × are bitwise
//     commutative) and constant operations fold at build time. The gate
//     arrays and CSE tables survive across recordings (that is what shares
//     subcircuits between queries); the per-recording capture — *guards*
//     (the value-dependent branch decisions the engine took while this
//     recording ran), exp subset-structure signatures, and output gates —
//     is bracketed by BeginRecording()/TakeRecording() and attributed to
//     one registration. A recorded query replays straight-line arithmetic,
//     so it is valid exactly while every one of ITS guards still evaluates
//     the way it did at record time; a flipped guard invalidates that
//     query's registration and no other.
//
//   * LineageCircuit — the document's shared circuit: it owns the recorder
//     pool plus the compiled serving structures (liveness-filtered CSR
//     consumer index, topological levels, dirty-cone scratch) and a
//     registration table keyed by query signature. Registrations commit a
//     finished recording under a key; Sync() applies the document's current
//     input values in one merged pass (bitwise early exit per gate) and
//     deactivates registrations whose exp subset shapes moved; GuardsHold()
//     is the per-registration validity check. Because the gates reproduce
//     the engine's operations verbatim — same operands, same association
//     order — every registration's outputs stay bit-identical to a fresh
//     ExactDpBackend run for as long as its guards hold. Sensitivities() is
//     one reverse adjoint sweep from a registered root producing ∂Pr/∂p for
//     every live input gate.
//
// Staleness discipline for the shared pool: a new recording may hash-cons
// onto gates whose cached values predate the current document (they were
// recorded, or last propagated, at older probabilities — CSE is structural,
// so reuse is still sound). Committing a registration therefore recompiles
// the liveness/level/CSR structures and re-evaluates every live gate from
// the document's current inputs in topological order, which is exactly the
// engine's arithmetic replayed and hence bit-faithful. Dead gates (from
// dropped or re-recorded registrations) keep stale values but are excluded
// from propagation, input diffing and sensitivity readouts until CSE
// resurrects them — at which point the commit-time refresh fixes them.
//
// Value-dependence audit (why guards are sufficient): with prune_eps == 0
// the DP's *support* structure — which keys exist in which distribution,
// and in which lane order — depends only on the document structure and the
// query, never on probability values (FlatDist::Add inserts a lane whether
// the mass is 0 or not). The only value-dependent control flow is the
// guarded branch set, each of which is captured per recording. Recording
// therefore requires prune_eps == 0 and no subtree cache; CircuitBackend
// (prob/circuit_backend.h) enforces both.

#ifndef PXV_PROB_CIRCUIT_H_
#define PXV_PROB_CIRCUIT_H_

#include <cstdint>
#include <cstring>
#include <deque>
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "prob/engine.h"
#include "util/check.h"
#include "util/status.h"
#include "xml/document.h"

namespace pxv {

/// Gate handle into the shared pool. Gates are created in topological
/// order: a gate's operands always have smaller ids.
using GateId = int32_t;
inline constexpr GateId kNoGate = -1;

enum class GateOp : uint8_t { kConst, kInput, kAdd, kSub, kMul };

/// A recorded branch decision. A registration is valid while every one of
/// its guards' gates still evaluates to the recorded side of its predicate.
enum class GuardKind : uint8_t {
  kIsZero,  ///< expected == (value == 0.0)
  kIsOne,   ///< expected == (value == 1.0)
  kLtOne,   ///< expected == (value < 1.0)
};

/// Identity of one circuit input: an edge probability (the probability
/// PDocument assigns to `node` under its distributional parent) or one slot
/// of an exp node's subset distribution (`node` is the exp node, `index`
/// the subset's position in exp_distribution(node)).
struct CircuitInput {
  enum class Kind : uint8_t { kEdgeProb, kExpSlot };
  Kind kind = Kind::kEdgeProb;
  NodeId node = kNullNode;
  int32_t index = 0;
};

/// Order-sensitive hash of exp node `n`'s subset structure (subset count,
/// sizes and child indices — not the probabilities). Recorded per
/// registration and re-checked at serve time: a SetExpDistribution that
/// reshapes the subsets invalidates the registrations that read the node
/// without moving structure_version — and no other registration.
uint64_t ExpStructureSig(const PDocument& pd, NodeId n);

/// Per-lane gate annotations riding on a FlatDist during recording: the
/// i-th element is the gate computing the i-th dense lane's value. Owned by
/// the recorder (stable addresses via deque, cleared per recording);
/// FlatDist carries only an opaque pointer (FlatDist::shadow).
using GateVec = std::vector<GateId>;

/// Persistent gate pool + build-time sink. The pool (gate arrays, CSE
/// tables, input memo) lives for the document structure's lifetime and is
/// what shares subcircuits across queries; BeginRecording() brackets one
/// engine pass's capture. LineageCircuit owns one.
class CircuitRecorder {
 public:
  struct GuardRec {
    GateId gate;
    GuardKind kind;
    bool expected;
  };

  CircuitRecorder() = default;
  CircuitRecorder(const CircuitRecorder&) = delete;
  CircuitRecorder& operator=(const CircuitRecorder&) = delete;

  /// Opens a recording: clears the per-recording capture (guards, exp
  /// signatures, outputs, lane annotations) and marks the pool size so an
  /// over-cap recording can be rolled back. The gate pool itself persists —
  /// the new pass hash-conses onto every gate any earlier recording built.
  void BeginRecording() {
    gate_mark_ = ops_.size();
    input_mark_ = input_gates_.size();
    guards_.clear();
    guard_seen_.clear();
    exp_sigs_.clear();
    outputs_.clear();
    vecs_.clear();
  }

  /// Closes a recording, moving its capture out. The pool keeps the gates.
  void TakeRecording(std::vector<GuardRec>* guards,
                     std::vector<std::pair<NodeId, uint64_t>>* exp_sigs,
                     std::vector<std::vector<std::pair<NodeId, GateId>>>* outs) {
    *guards = std::move(guards_);
    *exp_sigs = std::move(exp_sigs_);
    *outs = std::move(outputs_);
    guards_.clear();
    exp_sigs_.clear();
    outputs_.clear();
  }

  /// Drops every gate the current recording appended (an over-cap
  /// recording): truncates the pool to the BeginRecording() mark and erases
  /// the CSE/memo entries that point past it, so the next recording cannot
  /// cons onto truncated ids.
  void RollbackRecording();

  /// Drops the whole pool (structural mutation: every recorded schedule is
  /// stale). Keeps the object and its allocations' capacity where cheap.
  void Clear();

  /// Constant gate (hash-consed on the exact bit pattern).
  GateId Const(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    auto [it, fresh] = consts_.try_emplace(bits, GateId(ops_.size()));
    if (fresh) PushGate(GateOp::kConst, kNoGate, kNoGate, v);
    return it->second;
  }

  /// Input gate for an edge probability / exp subset slot (memoized across
  /// recordings: every query reading the same probability shares one gate).
  GateId InputEdge(NodeId node, double v) {
    return Input(CircuitInput::Kind::kEdgeProb, node, 0, v);
  }
  GateId InputExp(NodeId node, int32_t subset, double v) {
    return Input(CircuitInput::Kind::kExpSlot, node, subset, v);
  }

  // Arithmetic gates. Hash-consed; constant operands fold. The folds are
  // bitwise-faithful to the engine's arithmetic: const∘const is evaluated
  // with the same IEEE operation, x·1 ≡ x exactly, and x + (+0.0) ≡ x for
  // the non-negative values the DP produces (a sign-of-zero divergence can
  // only reach a mux/exp Σp total, where it is unobservable: both ±0
  // compare equal against the guards and 1 − ±0 ≡ 1). A consed hit may
  // return a gate whose cached value predates the current document; the
  // structure is still exact, and LineageCircuit re-evaluates every live
  // gate at commit time (see the staleness discipline above).
  GateId Add(GateId a, GateId b) {
    if (IsConstBits(a, 0)) return b;
    if (IsConstBits(b, 0)) return a;
    if (IsConst(a) && IsConst(b)) return Const(val_[a] + val_[b]);
    if (b < a) std::swap(a, b);
    return Binary(GateOp::kAdd, a, b, val_[a] + val_[b]);
  }
  GateId Sub(GateId a, GateId b) {
    if (IsConstBits(b, 0)) return a;
    if (IsConst(a) && IsConst(b)) return Const(val_[a] - val_[b]);
    return Binary(GateOp::kSub, a, b, val_[a] - val_[b]);
  }
  GateId Mul(GateId a, GateId b) {
    if (IsConst(a) && val_[a] == 1.0) return b;
    if (IsConst(b) && val_[b] == 1.0) return a;
    if (IsConst(a) && IsConst(b)) return Const(val_[a] * val_[b]);
    if (b < a) std::swap(a, b);
    return Binary(GateOp::kMul, a, b, val_[a] * val_[b]);
  }

  /// Records that the engine branched on `kind(value(g))` and saw
  /// `expected`. Constant gates can never flip; they are checked once here
  /// and not stored. Deduplication is per recording — two registrations
  /// that both branch on a shared gate each carry their own guard, so a
  /// flip invalidates each of them independently.
  void Guard(GateId g, GuardKind kind, bool expected) {
    PXV_CHECK(g >= 0);
    if (IsConst(g)) {
      PXV_CHECK(Holds(kind, val_[g]) == expected);
      return;
    }
    const uint64_t key =
        (uint64_t(uint32_t(g)) << 2) | uint64_t(uint8_t(kind));
    if (guard_seen_.insert(key).second) {
      guards_.push_back({g, kind, expected});
    }
  }

  static bool Holds(GuardKind kind, double v) {
    switch (kind) {
      case GuardKind::kIsZero: return v == 0.0;
      case GuardKind::kIsOne: return v == 1.0;
      case GuardKind::kLtOne: return v < 1.0;
    }
    return false;
  }

  /// Records the subset *structure* of an exp node (sizes + child indices)
  /// for the current recording: a SetExpDistribution that changes structure,
  /// not just probabilities, invalidates the registrations that read it
  /// even though structure_version does not move.
  void NoteExpStructure(NodeId node, uint64_t sig) {
    exp_sigs_.emplace_back(node, sig);
  }

  /// Declares `member_count` output groups for the current recording (one
  /// per batched member; the joint BatchAnchored readout uses one group).
  void SetMemberCount(int n) { outputs_.assign(size_t(n), {}); }
  /// Records the gate computing Pr(node ∈ answers) for output group
  /// `member`. The > 0 inclusion filter and the node-id sort are applied at
  /// replay time.
  void AddOutput(int member, NodeId node, GateId g) {
    outputs_[size_t(member)].emplace_back(node, g);
  }

  /// Fresh per-lane annotation vector (stable address for FlatDist::shadow,
  /// valid for the current recording).
  GateVec* NewVec() { return &vecs_.emplace_back(); }

  /// The pool's input gate for an edge probability / exp slot identity, or
  /// kNoGate when no recording ever read that probability (in which case a
  /// hypothetical change to it cannot move any recorded answer).
  GateId FindInput(CircuitInput::Kind kind, NodeId node, int32_t index) const {
    const uint64_t key = (uint64_t(uint8_t(kind)) << 56) |
                         (uint64_t(uint32_t(node)) << 24) |
                         uint64_t(uint32_t(index) & 0xFFFFFF);
    const auto it = inputs_.find(key);
    return it == inputs_.end() ? kNoGate : it->second;
  }

  size_t gate_count() const { return ops_.size(); }
  /// Gates the current (or last committed) recording appended to the pool —
  /// the query-private growth; everything else was shared.
  size_t gates_added() const { return ops_.size() - gate_mark_; }
  double value(GateId g) const { return val_[size_t(g)]; }
  bool IsConst(GateId g) const { return ops_[size_t(g)] == GateOp::kConst; }

 private:
  friend class LineageCircuit;

  bool IsConstBits(GateId g, uint64_t bits) const {
    if (!IsConst(g)) return false;
    uint64_t b;
    std::memcpy(&b, &val_[size_t(g)], sizeof b);
    return b == bits;
  }

  GateId PushGate(GateOp op, GateId a, GateId b, double v) {
    const GateId id = GateId(ops_.size());
    ops_.push_back(op);
    a_.push_back(a);
    b_.push_back(b);
    val_.push_back(v);
    return id;
  }

  GateId Binary(GateOp op, GateId a, GateId b, double v) {
    // Exact structural key: 2 op bits | 31-bit a | 31-bit b. Gate counts
    // are capped well below 2^31 (CircuitBackend::max_gates).
    const uint64_t key = (uint64_t(uint8_t(op)) << 62) |
                         (uint64_t(uint32_t(a)) << 31) | uint64_t(uint32_t(b));
    auto [it, fresh] = cse_.try_emplace(key, GateId(ops_.size()));
    if (fresh) PushGate(op, a, b, v);
    return it->second;
  }

  GateId Input(CircuitInput::Kind kind, NodeId node, int32_t index,
               double v) {
    const uint64_t key = (uint64_t(uint8_t(kind)) << 56) |
                         (uint64_t(uint32_t(node)) << 24) |
                         uint64_t(uint32_t(index) & 0xFFFFFF);
    auto [it, fresh] = inputs_.try_emplace(key, GateId(ops_.size()));
    if (fresh) {
      input_keys_.push_back({kind, node, index});
      input_gates_.push_back(PushGate(GateOp::kInput, kNoGate, kNoGate, v));
    }
    return it->second;
  }

  // Pool state: survives across recordings (this is the sharing).
  std::vector<GateOp> ops_;
  std::vector<GateId> a_, b_;
  std::vector<double> val_;
  std::unordered_map<uint64_t, GateId> cse_;
  std::unordered_map<uint64_t, GateId> consts_;
  std::unordered_map<uint64_t, GateId> inputs_;
  std::vector<CircuitInput> input_keys_;
  std::vector<GateId> input_gates_;

  // Per-recording capture: bracketed by BeginRecording()/TakeRecording().
  size_t gate_mark_ = 0;
  size_t input_mark_ = 0;
  std::vector<GuardRec> guards_;
  std::unordered_set<uint64_t> guard_seen_;
  std::vector<std::pair<NodeId, uint64_t>> exp_sigs_;
  std::vector<std::vector<std::pair<NodeId, GateId>>> outputs_;
  std::deque<GateVec> vecs_;
};

/// The document's shared multi-root lineage circuit: the recorder pool plus
/// compiled serving structures (liveness-filtered CSR consumers,
/// topological levels, dirty-cone scratch) and a registration table keyed
/// by query signature. Single-threaded state, like the scratch that feeds
/// it; CircuitBackend owns one per document.
class LineageCircuit {
 public:
  struct Sensitivity {
    CircuitInput input;
    double value = 0;  ///< The input's probability at the last Sync.
    double grad = 0;   ///< ∂Pr(answer)/∂input at that point.
  };

  /// Merged-shape observability (pxvq circuit, DistProfile gauges). Gate
  /// classes partition the LIVE non-constant gates: shared = in ≥ 2 active
  /// registrations' cones, private = in exactly one.
  struct Stats {
    size_t pool_gates = 0;     ///< All gates in the pool, dead included.
    size_t live_gates = 0;     ///< shared_gates + private_gates.
    size_t shared_gates = 0;
    size_t private_gates = 0;
    size_t live_inputs = 0;
    size_t guards = 0;         ///< Across active registrations.
    size_t levels = 0;
    size_t registrations = 0;  ///< Active registrations.
    size_t roots = 0;          ///< Output groups across active registrations.
    size_t outputs = 0;        ///< Output gates across active registrations.
    size_t memory_bytes = 0;   ///< Pool + compiled arrays + scratch.
  };

  explicit LineageCircuit(size_t max_gates) : max_gates_(max_gates) {}

  /// The engine's gate sink (EngineOptions::recorder).
  CircuitRecorder* recorder() { return &rec_; }

  /// Brackets one engine pass's recording; see CircuitRecorder.
  void BeginRecording() { rec_.BeginRecording(); }

  /// Commits the recording opened by BeginRecording under `key`, replacing
  /// any previous registration with that key, then recompiles the merged
  /// structures and re-evaluates every live gate from `pd`'s current
  /// probabilities (the pool-staleness discipline). False when the pool
  /// exceeded max_gates: the recording is rolled back gate-for-gate, any
  /// previous registration under `key` is dropped, and the other
  /// registrations keep serving from the shared circuit.
  bool CommitRecording(const std::string& key, const PDocument& pd);

  /// Drops a registration (cache eviction). Its query-private gates go
  /// dead in the pool until a rebuild; shared gates keep serving the rest.
  void Unregister(const std::string& key);

  /// Marks a registration invalid (flipped guard) without touching the
  /// pool; the caller re-records it or unregisters it.
  void Deactivate(const std::string& key);

  /// True while `key` has an active (servable) registration.
  bool Registered(const std::string& key) const {
    auto it = regs_.find(key);
    return it != regs_.end() && it->second.active;
  }

  /// Drops the pool and every registration (structural mutation).
  void Reset();

  /// True when Sync(pd) would do work: the document moved since the last
  /// sync, or the registration set changed.
  bool pending(const PDocument& pd) const {
    return structures_stale_ || served_uid_ != pd.uid();
  }

  /// ONE merged pass bringing every registration to `pd`'s current values:
  /// re-checks each active registration's exp subset shapes (a reshaped
  /// registration is deactivated and its key appended to `reshaped`; the
  /// others are unaffected), then either diffs the live input gates and
  /// forward-propagates the dirty cone by topological level (bitwise early
  /// exit per gate), or — when the registration set changed — recompiles
  /// and re-evaluates the live gates in full. Returns the number of gates
  /// recomputed. Guards are NOT checked here: they are per-registration
  /// (GuardsHold), so one flipped query never blocks the merged pass.
  size_t Sync(const PDocument& pd, std::vector<std::string>* reshaped);

  /// True while every guard of `key`'s registration evaluates as it did at
  /// record time. O(1) in the common case — Propagate maintains the set of
  /// currently-violated guard predicates as a side effect of the dirty-cone
  /// sweep (a guarded gate whose value changed bitwise re-probes only its
  /// watched predicates), so this degenerates to an empty-set test; when
  /// some predicate IS violated it binary-searches the registration's
  /// sorted guard keys per violated entry. Call after Sync.
  bool GuardsHold(const std::string& key) const;

  /// Output groups of `key`'s registration.
  int member_count(const std::string& key) const {
    return int(regs_.at(key).outputs.size());
  }

  /// Output group `member` of `key` at the current gate values: entries
  /// with value > 0, ascending node id — the exact readout contract of
  /// BatchAnchoredProbabilities / BatchManyProbabilities.
  std::vector<NodeProb> Results(const std::string& key, int member) const;

  /// One reverse adjoint sweep from `key`'s output gate for `node` in
  /// group `member`: ∂Pr/∂p for every live input gate, descending |grad|.
  /// Empty when the node is not a recorded output of that group.
  std::vector<Sensitivity> Sensitivities(const std::string& key, int member,
                                         NodeId node);

  /// Hypothetical serving: every output group of `key` evaluated as if the
  /// inputs in `changes` held the overridden probabilities — overlay the
  /// live input gates, propagate the dirty cone, read the results, then
  /// propagate the saved values back, leaving every gate (and the violated-
  /// guard set, via its flip-then-unflip discipline) bitwise where it was.
  /// Inputs no recording ever read are skipped: they cannot move a recorded
  /// answer. Errors without reading results when an override flips one of
  /// the registration's guards — the recorded straight-line arithmetic is
  /// not valid at those values, and the caller falls back to evaluating a
  /// mutated copy. Requires a synced circuit (Sync) and an active `key`.
  StatusOr<std::vector<std::vector<NodeProb>>> WhatIf(
      const std::string& key,
      const std::vector<std::pair<CircuitInput, double>>& changes);

  /// True once dead gates (dropped / re-recorded registrations) outweigh
  /// the live ones — time for the owner to Reset() and re-record lazily.
  bool NeedsRebuild() const {
    const size_t pool = rec_.ops_.size();
    return pool > kRebuildMinGates && pool - live_total_ > live_total_;
  }

  uint64_t served_uid() const { return served_uid_; }
  size_t pool_gate_count() const { return rec_.ops_.size(); }
  size_t registration_count() const;
  Stats stats() const;

 private:
  static constexpr size_t kRebuildMinGates = 4096;

  struct Registration {
    bool active = false;
    std::vector<CircuitRecorder::GuardRec> guards;
    /// GuardKey(guards[i]) for all i, sorted — the GuardsHold fast path
    /// intersects the pool's violated set against this by binary search.
    std::vector<uint64_t> guard_keys;
    std::vector<std::pair<NodeId, uint64_t>> exp_sigs;
    /// Per member group, sorted ascending by node id.
    std::vector<std::vector<std::pair<NodeId, GateId>>> outputs;
  };

  /// Packed identity of one guard predicate: gate | kind | expected side.
  static uint64_t GuardKey(GateId g, GuardKind kind, bool expected) {
    return (uint64_t(uint32_t(g)) << 3) | (uint64_t(uint8_t(kind)) << 1) |
           uint64_t(expected ? 1 : 0);
  }

  /// Rebuilds cover/levels/CSR/scratch over the live cone of the active
  /// registrations.
  void Recompile();
  /// Re-probes every watched predicate at gate `g` against its current
  /// value, inserting/erasing `violated_` entries. Called from Propagate
  /// for gates whose value changed bitwise, pre-filtered by guard_mask_.
  void CheckGuardsAt(GateId g);
  /// Recomputes `violated_` from scratch over the active registrations'
  /// guards (after FullRefresh rewrote gate values wholesale).
  void RebuildViolated();
  /// Sets every live input gate from `pd` and re-evaluates every live
  /// arithmetic gate in topological order. Returns gates recomputed.
  size_t FullRefresh(const PDocument& pd);
  size_t Propagate(const std::vector<std::pair<GateId, double>>& updates);
  void MarkDirty(GateId g);
  double InputValue(const PDocument& pd, const CircuitInput& in) const {
    return in.kind == CircuitInput::Kind::kEdgeProb
               ? pd.edge_prob(in.node)
               : pd.exp_distribution(in.node)[size_t(in.index)].second;
  }
  double Eval(GateId g) const {
    const double a = rec_.val_[size_t(rec_.a_[size_t(g)])];
    const double b = rec_.val_[size_t(rec_.b_[size_t(g)])];
    switch (rec_.ops_[size_t(g)]) {
      case GateOp::kAdd: return a + b;
      case GateOp::kSub: return a - b;
      case GateOp::kMul: return a * b;
      default: return rec_.val_[size_t(g)];
    }
  }
  bool IsArith(GateId g) const {
    const GateOp op = rec_.ops_[size_t(g)];
    return op == GateOp::kAdd || op == GateOp::kSub || op == GateOp::kMul;
  }

  CircuitRecorder rec_;
  size_t max_gates_;
  // Deterministic iteration: Sync's reshape audit and the stats walk the
  // registrations in key order.
  std::map<std::string, Registration> regs_;
  uint64_t served_uid_ = 0;
  bool structures_stale_ = false;

  // Compiled serving structures, indexed by pool GateId; rebuilt by
  // Recompile(). cover_ is the registration coverage count saturated at 2
  // (0 = dead, 1 = query-private, 2 = shared).
  std::vector<uint8_t> cover_;
  std::vector<int32_t> level_;
  size_t levels_ = 0;
  // CSR consumer index over live gates: live gates that read gate g are
  // uses_[use_off_[g] .. use_off_[g+1]).
  std::vector<uint32_t> use_off_;
  std::vector<GateId> uses_;
  // Guard violation tracking (the GuardsHold fast path). guard_mask_[g] is
  // a 6-bit mask of the predicates watched at gate g by any active
  // registration — bit (kind*2 + expected); rebuilt by Recompile().
  // violated_ holds the GuardKeys whose predicate currently evaluates
  // against its recorded side, maintained incrementally by Propagate (a
  // flip-then-unflip erases its entry again) and rebuilt after FullRefresh.
  std::vector<uint8_t> guard_mask_;
  std::unordered_set<uint64_t> violated_;
  // Propagation scratch: per-gate dirty flag + per-level worklists (only
  // touched levels are allocated/cleared).
  std::vector<uint8_t> dirty_;
  std::vector<std::vector<GateId>> level_work_;
  std::vector<int32_t> touched_levels_;
  std::vector<std::pair<GateId, double>> updates_;  // Input-diff scratch.
  std::vector<double> adj_;                         // Backward-pass scratch.
  std::vector<int32_t> visit_;  // Recompile scratch: last reg that reached g.
  std::vector<GateId> stack_;   // Recompile DFS scratch.
  // Shape gauges refreshed by Recompile().
  size_t live_total_ = 0;   // Live gates, constants included.
  size_t shared_gates_ = 0;
  size_t private_gates_ = 0;
  size_t live_inputs_ = 0;
};

}  // namespace pxv

#endif  // PXV_PROB_CIRCUIT_H_
