// Lineage circuits for the exact DP (prob/engine.cc): the knowledge-
// compilation route. On the paper's tractable fragments the exact DP's
// arithmetic is polynomial in |P̂|, so the whole derivation — every
// floating-point add/multiply the bottom-up pass performs, in the exact
// order it performs them — can be *recorded once* into an arithmetic
// circuit over input gates (edge probabilities and exp-distribution slots)
// and then re-evaluated per probability-only delta by propagating changed
// values through the dirty cone, instead of re-running the DP spine.
//
// Two classes:
//
//   * CircuitRecorder — the build-time sink the engine streams gates into
//     when EngineOptions::recorder is set. Gates are hash-consed (common-
//     subexpression folding; Add/Mul canonicalize operand order, which is
//     sound because IEEE-754 + and × are bitwise commutative) and constant
//     operations fold at build time. The recorder also collects *guards*:
//     the value-dependent branch decisions the engine took while the
//     recording ran (a mux alternative with p == 0 is skipped, a residual
//     ∅-mass is appended only when Σp < 1, a Combine part is dropped only
//     when it is the unit distribution). A compiled circuit replays the
//     recorded straight-line arithmetic, so it is valid exactly while every
//     guard still evaluates the way it did at record time; a flipped guard
//     means the engine would have taken a different branch and the circuit
//     must be recompiled.
//
//   * LineageCircuit — the compiled artifact: a flat SoA gate array
//     (op/a/b/value lanes) in topological order, a CSR consumer index, and
//     topological levels for the dirty-cone sweep. Propagate() applies a
//     batch of input-value updates and recomputes only gates whose operand
//     values actually changed (bitwise early exit). Because the gates
//     reproduce the engine's operations verbatim — same operands, same
//     association order — the output values stay bit-identical to a fresh
//     ExactDpBackend run for as long as the guards hold. Backward() is one
//     reverse adjoint sweep producing ∂Pr/∂p for every input gate
//     (sensitivity analysis / explanation, near-free once compiled).
//
// Value-dependence audit (why guards are sufficient): with prune_eps == 0
// the DP's *support* structure — which keys exist in which distribution,
// and in which lane order — depends only on the document structure and the
// query, never on probability values (FlatDist::Add inserts a lane whether
// the mass is 0 or not). The only value-dependent control flow is the
// branch set listed above, each of which is captured as a guard. Recording
// therefore requires prune_eps == 0 and no subtree cache; CircuitBackend
// (prob/circuit_backend.h) enforces both.

#ifndef PXV_PROB_CIRCUIT_H_
#define PXV_PROB_CIRCUIT_H_

#include <cstdint>
#include <cstring>
#include <deque>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "prob/engine.h"
#include "util/check.h"
#include "xml/document.h"

namespace pxv {

/// Gate handle into a CircuitRecorder / LineageCircuit. Gates are created
/// in topological order: a gate's operands always have smaller ids.
using GateId = int32_t;
inline constexpr GateId kNoGate = -1;

enum class GateOp : uint8_t { kConst, kInput, kAdd, kSub, kMul };

/// A recorded branch decision. The circuit is valid while every guard's
/// gate still evaluates to the recorded side of its predicate.
enum class GuardKind : uint8_t {
  kIsZero,  ///< expected == (value == 0.0)
  kIsOne,   ///< expected == (value == 1.0)
  kLtOne,   ///< expected == (value < 1.0)
};

/// Identity of one circuit input: an edge probability (the probability
/// PDocument assigns to `node` under its distributional parent) or one slot
/// of an exp node's subset distribution (`node` is the exp node, `index`
/// the subset's position in exp_distribution(node)).
struct CircuitInput {
  enum class Kind : uint8_t { kEdgeProb, kExpSlot };
  Kind kind = Kind::kEdgeProb;
  NodeId node = kNullNode;
  int32_t index = 0;
};

/// Order-sensitive hash of exp node `n`'s subset structure (subset count,
/// sizes and child indices — not the probabilities). Recorded at compile
/// and re-checked at serve time: a SetExpDistribution that reshapes the
/// subsets invalidates the circuit without moving structure_version.
uint64_t ExpStructureSig(const PDocument& pd, NodeId n);

/// Per-lane gate annotations riding on a FlatDist during recording: the
/// i-th element is the gate computing the i-th dense lane's value. Owned by
/// the recorder (stable addresses via deque); FlatDist carries only an
/// opaque pointer (FlatDist::shadow).
using GateVec = std::vector<GateId>;

/// Build-time gate sink. One recorder per compilation; the engine streams
/// gates into it when EngineOptions::recorder is set, and
/// LineageCircuit::Compile consumes it.
class CircuitRecorder {
 public:
  CircuitRecorder() = default;
  CircuitRecorder(const CircuitRecorder&) = delete;
  CircuitRecorder& operator=(const CircuitRecorder&) = delete;

  /// Constant gate (hash-consed on the exact bit pattern).
  GateId Const(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    auto [it, fresh] = consts_.try_emplace(bits, GateId(ops_.size()));
    if (fresh) PushGate(GateOp::kConst, kNoGate, kNoGate, v);
    return it->second;
  }

  /// Input gate for an edge probability / exp subset slot (memoized: the
  /// same probability read twice yields the same gate).
  GateId InputEdge(NodeId node, double v) {
    return Input(CircuitInput::Kind::kEdgeProb, node, 0, v);
  }
  GateId InputExp(NodeId node, int32_t subset, double v) {
    return Input(CircuitInput::Kind::kExpSlot, node, subset, v);
  }

  // Arithmetic gates. Hash-consed; constant operands fold. The folds are
  // bitwise-faithful to the engine's arithmetic: const∘const is evaluated
  // with the same IEEE operation, x·1 ≡ x exactly, and x + (+0.0) ≡ x for
  // the non-negative values the DP produces (a sign-of-zero divergence can
  // only reach a mux/exp Σp total, where it is unobservable: both ±0
  // compare equal against the guards and 1 − ±0 ≡ 1).
  GateId Add(GateId a, GateId b) {
    if (IsConstBits(a, 0)) return b;
    if (IsConstBits(b, 0)) return a;
    if (IsConst(a) && IsConst(b)) return Const(val_[a] + val_[b]);
    if (b < a) std::swap(a, b);
    return Binary(GateOp::kAdd, a, b, val_[a] + val_[b]);
  }
  GateId Sub(GateId a, GateId b) {
    if (IsConstBits(b, 0)) return a;
    if (IsConst(a) && IsConst(b)) return Const(val_[a] - val_[b]);
    return Binary(GateOp::kSub, a, b, val_[a] - val_[b]);
  }
  GateId Mul(GateId a, GateId b) {
    if (IsConst(a) && val_[a] == 1.0) return b;
    if (IsConst(b) && val_[b] == 1.0) return a;
    if (IsConst(a) && IsConst(b)) return Const(val_[a] * val_[b]);
    if (b < a) std::swap(a, b);
    return Binary(GateOp::kMul, a, b, val_[a] * val_[b]);
  }

  /// Records that the engine branched on `kind(value(g))` and saw
  /// `expected`. Constant gates can never flip; they are checked once here
  /// and not stored.
  void Guard(GateId g, GuardKind kind, bool expected) {
    PXV_CHECK(g >= 0);
    if (IsConst(g)) {
      PXV_CHECK(Holds(kind, val_[g]) == expected);
      return;
    }
    const uint64_t key =
        (uint64_t(uint32_t(g)) << 2) | uint64_t(uint8_t(kind));
    if (guard_seen_.insert(key).second) {
      guards_.push_back({g, kind, expected});
    }
  }

  static bool Holds(GuardKind kind, double v) {
    switch (kind) {
      case GuardKind::kIsZero: return v == 0.0;
      case GuardKind::kIsOne: return v == 1.0;
      case GuardKind::kLtOne: return v < 1.0;
    }
    return false;
  }

  /// Records the subset *structure* of an exp node (sizes + child indices):
  /// a SetExpDistribution that changes structure, not just probabilities,
  /// invalidates the circuit even though structure_version does not move.
  void NoteExpStructure(NodeId node, uint64_t sig) {
    exp_sigs_.emplace_back(node, sig);
  }

  /// Declares `member_count` output groups (one per batched member; the
  /// joint BatchAnchored readout uses a single group).
  void SetMemberCount(int n) { outputs_.assign(size_t(n), {}); }
  /// Records the gate computing Pr(node ∈ answers) for output group
  /// `member`. The > 0 inclusion filter and the node-id sort are applied at
  /// replay time.
  void AddOutput(int member, NodeId node, GateId g) {
    outputs_[size_t(member)].emplace_back(node, g);
  }

  /// Fresh per-lane annotation vector (stable address for FlatDist::shadow).
  GateVec* NewVec() { return &vecs_.emplace_back(); }

  size_t gate_count() const { return ops_.size(); }
  double value(GateId g) const { return val_[size_t(g)]; }
  bool IsConst(GateId g) const { return ops_[size_t(g)] == GateOp::kConst; }

 private:
  friend class LineageCircuit;

  bool IsConstBits(GateId g, uint64_t bits) const {
    if (!IsConst(g)) return false;
    uint64_t b;
    std::memcpy(&b, &val_[size_t(g)], sizeof b);
    return b == bits;
  }

  GateId PushGate(GateOp op, GateId a, GateId b, double v) {
    const GateId id = GateId(ops_.size());
    ops_.push_back(op);
    a_.push_back(a);
    b_.push_back(b);
    val_.push_back(v);
    return id;
  }

  GateId Binary(GateOp op, GateId a, GateId b, double v) {
    // Exact structural key: 2 op bits | 31-bit a | 31-bit b. Gate counts
    // are capped well below 2^31 (CircuitBackend::max_gates).
    const uint64_t key = (uint64_t(uint8_t(op)) << 62) |
                         (uint64_t(uint32_t(a)) << 31) | uint64_t(uint32_t(b));
    auto [it, fresh] = cse_.try_emplace(key, GateId(ops_.size()));
    if (fresh) PushGate(op, a, b, v);
    return it->second;
  }

  GateId Input(CircuitInput::Kind kind, NodeId node, int32_t index,
               double v) {
    const uint64_t key = (uint64_t(uint8_t(kind)) << 56) |
                         (uint64_t(uint32_t(node)) << 24) |
                         uint64_t(uint32_t(index) & 0xFFFFFF);
    auto [it, fresh] = inputs_.try_emplace(key, GateId(ops_.size()));
    if (fresh) {
      input_keys_.push_back({kind, node, index});
      input_gates_.push_back(PushGate(GateOp::kInput, kNoGate, kNoGate, v));
    }
    return it->second;
  }

  struct GuardRec {
    GateId gate;
    GuardKind kind;
    bool expected;
  };

  std::vector<GateOp> ops_;
  std::vector<GateId> a_, b_;
  std::vector<double> val_;
  std::unordered_map<uint64_t, GateId> cse_;
  std::unordered_map<uint64_t, GateId> consts_;
  std::unordered_map<uint64_t, GateId> inputs_;
  std::vector<CircuitInput> input_keys_;
  std::vector<GateId> input_gates_;
  std::vector<GuardRec> guards_;
  std::unordered_set<uint64_t> guard_seen_;
  std::vector<std::pair<NodeId, uint64_t>> exp_sigs_;
  std::vector<std::vector<std::pair<NodeId, GateId>>> outputs_;
  std::deque<GateVec> vecs_;
};

/// Compiled circuit: flat SoA gates, CSR consumers, topological levels.
/// Single-threaded state, like the scratch that produced it.
class LineageCircuit {
 public:
  struct Sensitivity {
    CircuitInput input;
    double value = 0;  ///< The input's probability at the last Propagate.
    double grad = 0;   ///< ∂Pr(answer)/∂input at that point.
  };

  /// Consumes a finished recording. The recorder's CSE/memo side tables are
  /// dropped; only the gate arrays survive.
  static std::unique_ptr<LineageCircuit> Compile(CircuitRecorder&& rec);

  /// Applies a batch of (input gate, new value) updates and forward-
  /// propagates the dirty cone by topological level, early-exiting on
  /// bitwise-unchanged gate values. Returns the number of gates recomputed
  /// (dirty-cone size, excluding the inputs themselves).
  size_t Propagate(const std::vector<std::pair<GateId, double>>& updates);

  /// True while every recorded guard evaluates as it did at record time.
  /// O(#guards) compares; call after Propagate.
  bool GuardsHold() const;

  /// Output group `member` at the current gate values: entries with value
  /// > 0, ascending node id — the exact readout contract of
  /// BatchAnchoredProbabilities / BatchManyProbabilities.
  std::vector<NodeProb> Results(int member) const;

  /// One reverse adjoint sweep from output group `member`'s gate for
  /// `node`: ∂Pr/∂p for every input gate, descending |grad|. Empty when the
  /// node is not a recorded output of that group.
  std::vector<Sensitivity> Sensitivities(int member, NodeId node);

  const std::vector<CircuitInput>& inputs() const { return input_keys_; }
  GateId input_gate(size_t i) const { return input_gates_[i]; }
  double value(GateId g) const { return val_[size_t(g)]; }
  const std::vector<std::pair<NodeId, uint64_t>>& exp_sigs() const {
    return exp_sigs_;
  }

  size_t gate_count() const { return ops_.size(); }
  size_t input_count() const { return input_gates_.size(); }
  size_t guard_count() const { return guards_.size(); }
  size_t level_count() const { return levels_; }
  int member_count() const { return int(outputs_.size()); }
  size_t output_count(int member) const {
    return outputs_[size_t(member)].size();
  }
  /// Heap footprint of the compiled arrays (gates + CSR + scratch).
  size_t memory_bytes() const;

 private:
  LineageCircuit() = default;

  void MarkDirty(GateId g);
  double Eval(GateId g) const {
    const double a = val_[size_t(a_[size_t(g)])];
    const double b = val_[size_t(b_[size_t(g)])];
    switch (ops_[size_t(g)]) {
      case GateOp::kAdd: return a + b;
      case GateOp::kSub: return a - b;
      case GateOp::kMul: return a * b;
      default: return val_[size_t(g)];
    }
  }

  std::vector<GateOp> ops_;
  std::vector<GateId> a_, b_;
  std::vector<double> val_;
  std::vector<int32_t> level_;
  size_t levels_ = 0;
  // CSR consumer index: gates that read gate g are
  // uses_[use_off_[g] .. use_off_[g+1]).
  std::vector<uint32_t> use_off_;
  std::vector<GateId> uses_;
  std::vector<CircuitInput> input_keys_;
  std::vector<GateId> input_gates_;
  std::vector<CircuitRecorder::GuardRec> guards_;
  std::vector<std::pair<NodeId, uint64_t>> exp_sigs_;
  std::vector<std::vector<std::pair<NodeId, GateId>>> outputs_;
  // Propagation scratch: per-gate dirty flag + per-level worklists (only
  // touched levels are allocated/cleared).
  std::vector<uint8_t> dirty_;
  std::vector<std::vector<GateId>> level_work_;
  std::vector<int32_t> touched_levels_;
  std::vector<double> adj_;  // Backward-pass scratch.
};

}  // namespace pxv

#endif  // PXV_PROB_CIRCUIT_H_
