// Runtime-dispatched vector kernel for the flat distribution algebra.
//
// The exact DP's inner loops — convolution rows, scaled accumulation
// sweeps, batched sibling products — operate on the dense key/value lanes
// of the structure-of-arrays FlatDist (prob/dist.h). Those sweeps are
// packaged here as a table of function pointers (KernelOps) with two
// implementations:
//
//   * portable (simd_portable.cc): plain C++ loops, compiled with the
//     project's baseline flags;
//   * AVX2 (simd_avx2.cc): the same loops over 4-wide OR / MUL vectors,
//     compiled in its own TU with -mavx2 so the rest of the build stays
//     runnable on baseline x86-64 (and non-x86 hosts skip it entirely).
//
// Dispatch happens ONCE per ExactDpBackend (ResolveKernel), not per call:
// the backend captures the table at construction and threads it through
// EngineOptions. Setting PXV_FORCE_SCALAR=1 in the environment pins the
// portable table regardless of CPU support (the CI matrix leg).
//
// Summation-order contract: both implementations perform *identical*
// arithmetic in *identical* order — each output value is a single product
// a*b (one rounding, no FMA contraction: the AVX2 TU uses mul only, and
// the portable TU lives behind a function-pointer boundary so the compiler
// cannot fuse the multiply into the caller's accumulate) and every
// accumulation the engine performs on kernel output happens in the same
// staged order for both tables. Results are therefore bitwise identical
// between the AVX2 and portable paths; tests/dist_kernel_test.cc asserts
// exactly that.

#ifndef PXV_PROB_SIMD_H_
#define PXV_PROB_SIMD_H_

#include <cstddef>
#include <cstdint>

#include "prob/dist.h"

namespace pxv {

/// One resolved kernel implementation. All pointers are non-null.
struct KernelOps {
  const char* name;  ///< "avx2" or "portable" (diagnostics, bench JSON).

  /// One convolution row — broadcast entry (ka, pa) of the left operand
  /// against the right operand's lanes:
  ///   out_k[j] = ka | bk[j];  out_v[j] = pa * bv[j]   for j < nb.
  void (*conv_row_n)(uint64_t ka, double pa, const uint64_t* bk,
                     const double* bv, size_t nb, uint64_t* out_k,
                     double* out_v);
  void (*conv_row_w)(const WideKey& ka, double pa, const WideKey* bk,
                     const double* bv, size_t nb, WideKey* out_k,
                     double* out_v);

  /// Batched sibling-pair products — n independent singleton convolutions
  /// in one sweep (same frame, one slot each):
  ///   out_k[i] = ak[i] | bk[i];  out_v[i] = av[i] * bv[i]   for i < n.
  void (*pair_conv_n)(const uint64_t* ak, const double* av,
                      const uint64_t* bk, const double* bv, size_t n,
                      uint64_t* out_k, double* out_v);
  void (*pair_conv_w)(const WideKey* ak, const double* av, const WideKey* bk,
                      const double* bv, size_t n, WideKey* out_k,
                      double* out_v);

  /// AddScaled staging: out_v[i] = v[i] * p for i < n.
  void (*scale)(const double* v, size_t n, double p, double* out_v);
};

/// The portable table. Always available.
const KernelOps* PortableKernel();

/// The AVX2 table, or nullptr when the build has no AVX2 TU (non-x86 hosts
/// or a toolchain without -mavx2). Callers must still check CPU support —
/// use ResolveKernel.
const KernelOps* Avx2Kernel();

/// Picks the table for this process: portable when `force_scalar` is set,
/// when the environment carries PXV_FORCE_SCALAR=1, when the build has no
/// AVX2 TU, or when the CPU lacks AVX2; the AVX2 table otherwise.
const KernelOps* ResolveKernel(bool force_scalar = false);

/// ResolveKernel(false), memoized once per process — the default for
/// callers with no backend to hold a per-instance choice.
const KernelOps* ActiveKernel();

}  // namespace pxv

#endif  // PXV_PROB_SIMD_H_
