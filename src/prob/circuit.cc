#include "prob/circuit.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace pxv {

namespace {
// splitmix64 finalizer — good avalanche for the structural fold below.
inline uint64_t Mix(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

template <typename Map>
void EraseAtOrAbove(Map& m, GateId mark) {
  for (auto it = m.begin(); it != m.end();) {
    if (it->second >= mark) {
      it = m.erase(it);
    } else {
      ++it;
    }
  }
}
}  // namespace

uint64_t ExpStructureSig(const PDocument& pd, NodeId n) {
  uint64_t h = Mix(uint64_t(pd.exp_distribution(n).size()));
  for (const auto& [subset, p] : pd.exp_distribution(n)) {
    h = Mix(h ^ Mix(uint64_t(subset.size()) + 1));
    for (int idx : subset) h = Mix(h ^ (uint64_t(uint32_t(idx)) << 1));
  }
  return h;
}

void CircuitRecorder::RollbackRecording() {
  const GateId mark = GateId(gate_mark_);
  ops_.resize(gate_mark_);
  a_.resize(gate_mark_);
  b_.resize(gate_mark_);
  val_.resize(gate_mark_);
  // Any CSE/memo entry pointing past the mark was created by this
  // recording; drop it so the next pass cannot cons onto truncated ids.
  EraseAtOrAbove(cse_, mark);
  EraseAtOrAbove(consts_, mark);
  EraseAtOrAbove(inputs_, mark);
  input_keys_.resize(input_mark_);
  input_gates_.resize(input_mark_);
  guards_.clear();
  guard_seen_.clear();
  exp_sigs_.clear();
  outputs_.clear();
  vecs_.clear();
}

void CircuitRecorder::Clear() {
  ops_.clear();
  a_.clear();
  b_.clear();
  val_.clear();
  cse_.clear();
  consts_.clear();
  inputs_.clear();
  input_keys_.clear();
  input_gates_.clear();
  gate_mark_ = 0;
  input_mark_ = 0;
  guards_.clear();
  guard_seen_.clear();
  exp_sigs_.clear();
  outputs_.clear();
  vecs_.clear();
}

bool LineageCircuit::CommitRecording(const std::string& key,
                                     const PDocument& pd) {
  if (rec_.gate_count() > max_gates_) {
    rec_.RollbackRecording();
    // The key's previous registration (if any) was already invalid — that
    // is why it was being re-recorded. Drop it; the other registrations
    // keep serving from the shared circuit, restored to a consistent
    // compiled state right here.
    regs_.erase(key);
    Recompile();
    FullRefresh(pd);
    served_uid_ = pd.uid();
    structures_stale_ = false;
    return false;
  }
  Registration& reg = regs_[key];
  reg.active = true;
  rec_.TakeRecording(&reg.guards, &reg.exp_sigs, &reg.outputs);
  reg.guard_keys.clear();
  reg.guard_keys.reserve(reg.guards.size());
  for (const auto& g : reg.guards) {
    reg.guard_keys.push_back(GuardKey(g.gate, g.kind, g.expected));
  }
  std::sort(reg.guard_keys.begin(), reg.guard_keys.end());
  // Stable node-id order per output group: the engine sorts its batch
  // results ascending by node, so replay emits in the same order.
  for (auto& group : reg.outputs) {
    std::stable_sort(
        group.begin(), group.end(),
        [](const auto& x, const auto& y) { return x.first < y.first; });
  }
  // A consed gate's cached value may predate `pd` (recorded under older
  // probabilities); recompile the merged structures and replay every live
  // gate from the document's current inputs — the same IEEE operations in
  // the same order, hence bit-faithful.
  Recompile();
  FullRefresh(pd);
  served_uid_ = pd.uid();
  structures_stale_ = false;
  return true;
}

void LineageCircuit::Unregister(const std::string& key) {
  if (regs_.erase(key) > 0) structures_stale_ = true;
}

void LineageCircuit::Deactivate(const std::string& key) {
  auto it = regs_.find(key);
  if (it != regs_.end() && it->second.active) {
    it->second.active = false;
    structures_stale_ = true;
  }
}

void LineageCircuit::Reset() {
  rec_.Clear();
  regs_.clear();
  served_uid_ = 0;
  structures_stale_ = false;
  cover_.clear();
  level_.clear();
  levels_ = 0;
  use_off_.clear();
  uses_.clear();
  guard_mask_.clear();
  violated_.clear();
  dirty_.clear();
  level_work_.clear();
  touched_levels_.clear();
  live_total_ = 0;
  shared_gates_ = 0;
  private_gates_ = 0;
  live_inputs_ = 0;
}

size_t LineageCircuit::Sync(const PDocument& pd,
                            std::vector<std::string>* reshaped) {
  if (!pending(pd)) return 0;
  // Exp subset shapes can move without a structure_version bump
  // (SetExpDistribution); a reshaped registration's schedule is stale even
  // though its gates still parse. Deactivate exactly those registrations —
  // the others ride through the merged pass untouched.
  for (auto& [key, reg] : regs_) {
    if (!reg.active) continue;
    for (const auto& [node, sig] : reg.exp_sigs) {
      if (ExpStructureSig(pd, node) != sig) {
        reg.active = false;
        structures_stale_ = true;
        if (reshaped != nullptr) reshaped->push_back(key);
        break;
      }
    }
  }
  size_t recomputed;
  if (structures_stale_) {
    Recompile();
    recomputed = FullRefresh(pd);
    structures_stale_ = false;
  } else {
    // ONE input diff + ONE dirty-cone sweep serves every registration.
    updates_.clear();
    for (size_t i = 0; i < rec_.input_gates_.size(); ++i) {
      const GateId g = rec_.input_gates_[i];
      if (cover_[size_t(g)] == 0) continue;
      updates_.emplace_back(g, InputValue(pd, rec_.input_keys_[i]));
    }
    recomputed = Propagate(updates_);
  }
  served_uid_ = pd.uid();
  return recomputed;
}

void LineageCircuit::Recompile() {
  const size_t n = rec_.ops_.size();
  cover_.assign(n, 0);
  visit_.assign(n, -1);
  // Liveness + sharing classes: backward reachability from each active
  // registration's output and guard gates, counting covering
  // registrations saturated at 2 (0 dead, 1 private, 2 shared).
  int32_t r = 0;
  for (auto& [key, reg] : regs_) {
    if (!reg.active) continue;
    stack_.clear();
    for (const auto& group : reg.outputs) {
      for (const auto& [node, gate] : group) stack_.push_back(gate);
    }
    for (const auto& g : reg.guards) stack_.push_back(g.gate);
    while (!stack_.empty()) {
      const GateId g = stack_.back();
      stack_.pop_back();
      if (visit_[size_t(g)] == r) continue;
      visit_[size_t(g)] = r;
      if (cover_[size_t(g)] < 2) ++cover_[size_t(g)];
      if (IsArith(g)) {
        stack_.push_back(rec_.a_[size_t(g)]);
        stack_.push_back(rec_.b_[size_t(g)]);
      }
    }
    ++r;
  }

  // Topological levels over the live cone (gates are created
  // operands-first, so one forward scan suffices) with consumer-degree
  // counting in the same pass. Dead gates keep level 0 and no consumers.
  level_.assign(n, 0);
  use_off_.assign(n + 1, 0);
  int32_t max_level = 0;
  live_total_ = 0;
  shared_gates_ = 0;
  private_gates_ = 0;
  live_inputs_ = 0;
  for (size_t g = 0; g < n; ++g) {
    if (cover_[g] == 0) continue;
    ++live_total_;
    if (rec_.ops_[g] != GateOp::kConst) {
      if (cover_[g] >= 2) {
        ++shared_gates_;
      } else {
        ++private_gates_;
      }
    }
    if (rec_.ops_[g] == GateOp::kInput) ++live_inputs_;
    if (!IsArith(GateId(g))) continue;
    const GateId a = rec_.a_[g], b = rec_.b_[g];
    const int32_t la = level_[size_t(a)], lb = level_[size_t(b)];
    const int32_t l = 1 + (la > lb ? la : lb);
    level_[g] = l;
    if (l > max_level) max_level = l;
    ++use_off_[size_t(a) + 1];
    ++use_off_[size_t(b) + 1];
  }
  levels_ = live_total_ == 0 ? 0 : size_t(max_level) + 1;
  for (size_t g = 0; g < n; ++g) use_off_[g + 1] += use_off_[g];
  uses_.resize(use_off_[n]);
  std::vector<uint32_t> fill(use_off_.begin(), use_off_.end() - 1);
  for (size_t g = 0; g < n; ++g) {
    if (cover_[g] == 0 || !IsArith(GateId(g))) continue;
    uses_[fill[size_t(rec_.a_[g])]++] = GateId(g);
    uses_[fill[size_t(rec_.b_[g])]++] = GateId(g);
  }
  dirty_.assign(n, 0);
  level_work_.assign(levels_, {});
  touched_levels_.clear();

  // Guard watch masks for the active registrations (guard gates are live by
  // construction: the reachability pass above seeds from them).
  guard_mask_.assign(n, 0);
  for (const auto& [key, reg] : regs_) {
    if (!reg.active) continue;
    for (const auto& g : reg.guards) {
      guard_mask_[size_t(g.gate)] |=
          uint8_t(1u << (int(g.kind) * 2 + (g.expected ? 1 : 0)));
    }
  }
}

size_t LineageCircuit::FullRefresh(const PDocument& pd) {
  for (size_t i = 0; i < rec_.input_gates_.size(); ++i) {
    const GateId g = rec_.input_gates_[i];
    if (cover_[size_t(g)] == 0) continue;
    rec_.val_[size_t(g)] = InputValue(pd, rec_.input_keys_[i]);
  }
  size_t recomputed = 0;
  const size_t n = rec_.ops_.size();
  for (size_t g = 0; g < n; ++g) {
    if (cover_[g] == 0 || !IsArith(GateId(g))) continue;
    rec_.val_[g] = Eval(GateId(g));
    ++recomputed;
  }
  // Values were rewritten wholesale, bypassing the incremental guard
  // probes; recompute the violated set in one pass.
  RebuildViolated();
  return recomputed;
}

void LineageCircuit::CheckGuardsAt(GateId g) {
  const uint8_t mask = guard_mask_[size_t(g)];
  const double v = rec_.val_[size_t(g)];
  for (int kind = 0; kind < 3; ++kind) {
    const uint8_t pair = uint8_t((mask >> (kind * 2)) & 3u);
    if (pair == 0) continue;
    const bool holds = CircuitRecorder::Holds(GuardKind(kind), v);
    for (int expected = 0; expected < 2; ++expected) {
      if ((pair & (1u << expected)) == 0) continue;
      const uint64_t key = GuardKey(g, GuardKind(kind), expected != 0);
      if (holds != (expected != 0)) {
        violated_.insert(key);
      } else {
        violated_.erase(key);
      }
    }
  }
}

void LineageCircuit::RebuildViolated() {
  violated_.clear();
  for (const auto& [key, reg] : regs_) {
    if (!reg.active) continue;
    for (const auto& g : reg.guards) {
      if (CircuitRecorder::Holds(g.kind, rec_.val_[size_t(g.gate)]) !=
          g.expected) {
        violated_.insert(GuardKey(g.gate, g.kind, g.expected));
      }
    }
  }
}

void LineageCircuit::MarkDirty(GateId g) {
  if (dirty_[size_t(g)]) return;
  dirty_[size_t(g)] = 1;
  std::vector<GateId>& bucket = level_work_[size_t(level_[size_t(g)])];
  if (bucket.empty()) touched_levels_.push_back(level_[size_t(g)]);
  bucket.push_back(g);
}

size_t LineageCircuit::Propagate(
    const std::vector<std::pair<GateId, double>>& updates) {
  touched_levels_.clear();
  for (const auto& [g, v] : updates) {
    uint64_t old_bits, new_bits;
    std::memcpy(&old_bits, &rec_.val_[size_t(g)], sizeof old_bits);
    std::memcpy(&new_bits, &v, sizeof new_bits);
    if (old_bits == new_bits) continue;
    rec_.val_[size_t(g)] = v;
    if (guard_mask_[size_t(g)] != 0) CheckGuardsAt(g);
    for (uint32_t u = use_off_[size_t(g)]; u < use_off_[size_t(g) + 1]; ++u) {
      MarkDirty(uses_[u]);
    }
  }
  // Touched levels are visited ascending; MarkDirty only ever adds strictly
  // higher levels than the one being swept, so sorting the seed set once
  // and scanning upward covers every insertion.
  std::sort(touched_levels_.begin(), touched_levels_.end());
  size_t recomputed = 0;
  for (size_t i = 0; i < touched_levels_.size(); ++i) {
    std::vector<GateId>& bucket = level_work_[size_t(touched_levels_[i])];
    for (size_t j = 0; j < bucket.size(); ++j) {
      const GateId g = bucket[j];
      dirty_[size_t(g)] = 0;
      ++recomputed;
      const double nv = Eval(g);
      uint64_t old_bits, new_bits;
      std::memcpy(&old_bits, &rec_.val_[size_t(g)], sizeof old_bits);
      std::memcpy(&new_bits, &nv, sizeof new_bits);
      if (old_bits == new_bits) continue;
      rec_.val_[size_t(g)] = nv;
      if (guard_mask_[size_t(g)] != 0) CheckGuardsAt(g);
      for (uint32_t u = use_off_[size_t(g)]; u < use_off_[size_t(g) + 1];
           ++u) {
        const GateId c = uses_[u];
        // A freshly marked consumer lives on a strictly higher level; if
        // its level was untouched so far it lands behind `i` after the
        // sorted prefix — keep the scan order by inserting in place.
        if (!dirty_[size_t(c)]) {
          const int32_t lc = level_[size_t(c)];
          dirty_[size_t(c)] = 1;
          if (level_work_[size_t(lc)].empty()) {
            auto pos = std::lower_bound(touched_levels_.begin() + i + 1,
                                        touched_levels_.end(), lc);
            touched_levels_.insert(pos, lc);
          }
          level_work_[size_t(lc)].push_back(c);
        }
      }
    }
    bucket.clear();
  }
  return recomputed;
}

bool LineageCircuit::GuardsHold(const std::string& key) const {
  if (violated_.empty()) return true;
  // Something somewhere is violated; it concerns this registration only if
  // one of the violated predicates is among ITS guards.
  const Registration& reg = regs_.at(key);
  for (const uint64_t vk : violated_) {
    if (std::binary_search(reg.guard_keys.begin(), reg.guard_keys.end(),
                           vk)) {
      return false;
    }
  }
  return true;
}

std::vector<NodeProb> LineageCircuit::Results(const std::string& key,
                                              int member) const {
  std::vector<NodeProb> out;
  const auto& group = regs_.at(key).outputs[size_t(member)];
  out.reserve(group.size());
  for (const auto& [node, gate] : group) {
    const double p = rec_.val_[size_t(gate)];
    if (p > 0) out.push_back({node, p});
  }
  return out;
}

std::vector<LineageCircuit::Sensitivity> LineageCircuit::Sensitivities(
    const std::string& key, int member, NodeId node) {
  GateId out = kNoGate;
  for (const auto& [n, g] : regs_.at(key).outputs[size_t(member)]) {
    if (n == node) {
      out = g;
      break;
    }
  }
  std::vector<Sensitivity> result;
  if (out == kNoGate) return result;
  adj_.assign(rec_.ops_.size(), 0.0);
  adj_[size_t(out)] = 1.0;
  for (GateId g = out; g >= 0; --g) {
    const double ag = adj_[size_t(g)];
    if (ag == 0.0) continue;
    switch (rec_.ops_[size_t(g)]) {
      case GateOp::kAdd:
        adj_[size_t(rec_.a_[size_t(g)])] += ag;
        adj_[size_t(rec_.b_[size_t(g)])] += ag;
        break;
      case GateOp::kSub:
        adj_[size_t(rec_.a_[size_t(g)])] += ag;
        adj_[size_t(rec_.b_[size_t(g)])] -= ag;
        break;
      case GateOp::kMul:
        adj_[size_t(rec_.a_[size_t(g)])] +=
            ag * rec_.val_[size_t(rec_.b_[size_t(g)])];
        adj_[size_t(rec_.b_[size_t(g)])] +=
            ag * rec_.val_[size_t(rec_.a_[size_t(g)])];
        break;
      default:
        break;
    }
  }
  // Live input gates only: a dead gate's value may predate the current
  // document, and its adjoint is meaningless for every active
  // registration anyway.
  result.reserve(live_inputs_);
  for (size_t i = 0; i < rec_.input_gates_.size(); ++i) {
    const GateId g = rec_.input_gates_[i];
    if (cover_[size_t(g)] == 0) continue;
    result.push_back(
        {rec_.input_keys_[i], rec_.val_[size_t(g)], adj_[size_t(g)]});
  }
  std::stable_sort(result.begin(), result.end(),
                   [](const Sensitivity& x, const Sensitivity& y) {
                     return std::fabs(x.grad) > std::fabs(y.grad);
                   });
  return result;
}

StatusOr<std::vector<std::vector<NodeProb>>> LineageCircuit::WhatIf(
    const std::string& key,
    const std::vector<std::pair<CircuitInput, double>>& changes) {
  const auto it = regs_.find(key);
  PXV_CHECK(it != regs_.end() && it->second.active)
      << "WhatIf requires an active registration (Sync first)";
  PXV_CHECK(!structures_stale_);
  // Overlay: flip the live input gates to the hypothetical values and sweep
  // the dirty cone — exactly the propagation a committed mutation would
  // run. Inputs the recorded arithmetic never read (unknown or dead gates)
  // cannot move any live answer and are skipped.
  std::vector<std::pair<GateId, double>> overlay;
  std::vector<std::pair<GateId, double>> restore;
  overlay.reserve(changes.size());
  restore.reserve(changes.size());
  for (const auto& [in, p] : changes) {
    const GateId g = rec_.FindInput(in.kind, in.node, in.index);
    if (g == kNoGate || cover_[size_t(g)] == 0) continue;
    restore.emplace_back(g, rec_.val_[size_t(g)]);
    overlay.emplace_back(g, p);
  }
  Propagate(overlay);
  // The overridden values are only servable for `key` while its recorded
  // control flow stays valid at them; read before restoring.
  const bool guards_hold = GuardsHold(key);
  std::vector<std::vector<NodeProb>> out;
  if (guards_hold) {
    const int n = member_count(key);
    out.reserve(size_t(n));
    for (int m = 0; m < n; ++m) out.push_back(Results(key, m));
  }
  // Restore: propagate the saved values back. Bitwise identical to the
  // pre-overlay state, so the violated set unwinds (flip-then-unflip) and
  // served_uid_ stays truthful without touching it.
  Propagate(restore);
  if (!guards_hold) {
    return Status::Error(
        "what-if overrides flip a recorded guard; evaluate a mutated copy "
        "instead");
  }
  return out;
}

size_t LineageCircuit::registration_count() const {
  size_t n = 0;
  for (const auto& [key, reg] : regs_) n += reg.active ? 1 : 0;
  return n;
}

LineageCircuit::Stats LineageCircuit::stats() const {
  Stats s;
  s.pool_gates = rec_.ops_.size();
  s.shared_gates = shared_gates_;
  s.private_gates = private_gates_;
  s.live_gates = shared_gates_ + private_gates_;
  s.live_inputs = live_inputs_;
  s.levels = levels_;
  for (const auto& [key, reg] : regs_) {
    if (!reg.active) continue;
    ++s.registrations;
    s.guards += reg.guards.size();
    s.roots += reg.outputs.size();
    for (const auto& group : reg.outputs) s.outputs += group.size();
  }
  size_t bytes = 0;
  bytes += rec_.ops_.capacity() * sizeof(GateOp);
  bytes += (rec_.a_.capacity() + rec_.b_.capacity()) * sizeof(GateId);
  bytes += (rec_.val_.capacity() + adj_.capacity()) * sizeof(double);
  bytes += rec_.input_keys_.capacity() * sizeof(CircuitInput);
  bytes += rec_.input_gates_.capacity() * sizeof(GateId);
  bytes += (rec_.cse_.size() + rec_.consts_.size() + rec_.inputs_.size()) *
           (sizeof(uint64_t) + sizeof(GateId) + 2 * sizeof(void*));
  bytes += cover_.capacity() + dirty_.capacity() + guard_mask_.capacity();
  bytes += violated_.size() * (sizeof(uint64_t) + 2 * sizeof(void*));
  bytes += level_.capacity() * sizeof(int32_t);
  bytes += use_off_.capacity() * sizeof(uint32_t);
  bytes += (uses_.capacity() + stack_.capacity()) * sizeof(GateId);
  bytes += visit_.capacity() * sizeof(int32_t);
  for (const auto& w : level_work_) bytes += w.capacity() * sizeof(GateId);
  bytes += level_work_.capacity() * sizeof(std::vector<GateId>);
  for (const auto& [key, reg] : regs_) {
    bytes += reg.guards.capacity() * sizeof(CircuitRecorder::GuardRec);
    bytes += reg.guard_keys.capacity() * sizeof(uint64_t);
    bytes += reg.exp_sigs.capacity() * sizeof(std::pair<NodeId, uint64_t>);
    for (const auto& group : reg.outputs) {
      bytes += group.capacity() * sizeof(std::pair<NodeId, GateId>);
    }
  }
  s.memory_bytes = bytes;
  return s;
}

}  // namespace pxv
