#include "prob/circuit.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace pxv {

namespace {
// splitmix64 finalizer — good avalanche for the structural fold below.
inline uint64_t Mix(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}
}  // namespace

uint64_t ExpStructureSig(const PDocument& pd, NodeId n) {
  uint64_t h = Mix(uint64_t(pd.exp_distribution(n).size()));
  for (const auto& [subset, p] : pd.exp_distribution(n)) {
    h = Mix(h ^ Mix(uint64_t(subset.size()) + 1));
    for (int idx : subset) h = Mix(h ^ (uint64_t(uint32_t(idx)) << 1));
  }
  return h;
}

std::unique_ptr<LineageCircuit> LineageCircuit::Compile(
    CircuitRecorder&& rec) {
  std::unique_ptr<LineageCircuit> c(new LineageCircuit());
  c->ops_ = std::move(rec.ops_);
  c->a_ = std::move(rec.a_);
  c->b_ = std::move(rec.b_);
  c->val_ = std::move(rec.val_);
  c->input_keys_ = std::move(rec.input_keys_);
  c->input_gates_ = std::move(rec.input_gates_);
  c->guards_ = std::move(rec.guards_);
  c->exp_sigs_ = std::move(rec.exp_sigs_);
  c->outputs_ = std::move(rec.outputs_);
  // Stable node-id order per output group: the engine sorts its batch
  // results ascending by node, so replay emits in the same order.
  for (auto& group : c->outputs_) {
    std::stable_sort(group.begin(), group.end(),
                     [](const auto& x, const auto& y) {
                       return x.first < y.first;
                     });
  }

  const size_t n = c->ops_.size();
  // Topological levels (gates are created operands-first, so one forward
  // scan suffices) and consumer degree counting in the same pass.
  c->level_.assign(n, 0);
  c->use_off_.assign(n + 1, 0);
  int32_t max_level = 0;
  for (size_t g = 0; g < n; ++g) {
    if (c->ops_[g] == GateOp::kConst || c->ops_[g] == GateOp::kInput) {
      continue;
    }
    const GateId a = c->a_[g], b = c->b_[g];
    const int32_t la = c->level_[size_t(a)], lb = c->level_[size_t(b)];
    const int32_t l = 1 + (la > lb ? la : lb);
    c->level_[g] = l;
    if (l > max_level) max_level = l;
    ++c->use_off_[size_t(a) + 1];
    ++c->use_off_[size_t(b) + 1];
  }
  c->levels_ = size_t(max_level) + 1;
  for (size_t g = 0; g < n; ++g) c->use_off_[g + 1] += c->use_off_[g];
  c->uses_.resize(c->use_off_[n]);
  std::vector<uint32_t> fill(c->use_off_.begin(), c->use_off_.end() - 1);
  for (size_t g = 0; g < n; ++g) {
    if (c->ops_[g] == GateOp::kConst || c->ops_[g] == GateOp::kInput) {
      continue;
    }
    c->uses_[fill[size_t(c->a_[g])]++] = GateId(g);
    c->uses_[fill[size_t(c->b_[g])]++] = GateId(g);
  }
  c->dirty_.assign(n, 0);
  c->level_work_.resize(c->levels_);
  return c;
}

void LineageCircuit::MarkDirty(GateId g) {
  if (dirty_[size_t(g)]) return;
  dirty_[size_t(g)] = 1;
  std::vector<GateId>& bucket = level_work_[size_t(level_[size_t(g)])];
  if (bucket.empty()) touched_levels_.push_back(level_[size_t(g)]);
  bucket.push_back(g);
}

size_t LineageCircuit::Propagate(
    const std::vector<std::pair<GateId, double>>& updates) {
  touched_levels_.clear();
  for (const auto& [g, v] : updates) {
    uint64_t old_bits, new_bits;
    std::memcpy(&old_bits, &val_[size_t(g)], sizeof old_bits);
    std::memcpy(&new_bits, &v, sizeof new_bits);
    if (old_bits == new_bits) continue;
    val_[size_t(g)] = v;
    for (uint32_t u = use_off_[size_t(g)]; u < use_off_[size_t(g) + 1]; ++u) {
      MarkDirty(uses_[u]);
    }
  }
  // Touched levels are visited ascending; MarkDirty only ever adds strictly
  // higher levels than the one being swept, so sorting the seed set once
  // and scanning upward covers every insertion.
  std::sort(touched_levels_.begin(), touched_levels_.end());
  size_t recomputed = 0;
  for (size_t i = 0; i < touched_levels_.size(); ++i) {
    std::vector<GateId>& bucket = level_work_[size_t(touched_levels_[i])];
    for (size_t j = 0; j < bucket.size(); ++j) {
      const GateId g = bucket[j];
      dirty_[size_t(g)] = 0;
      ++recomputed;
      const double nv = Eval(g);
      uint64_t old_bits, new_bits;
      std::memcpy(&old_bits, &val_[size_t(g)], sizeof old_bits);
      std::memcpy(&new_bits, &nv, sizeof new_bits);
      if (old_bits == new_bits) continue;
      val_[size_t(g)] = nv;
      for (uint32_t u = use_off_[size_t(g)]; u < use_off_[size_t(g) + 1];
           ++u) {
        const GateId c = uses_[u];
        // A freshly marked consumer lives on a strictly higher level; if
        // its level was untouched so far it lands behind `i` after the
        // sorted prefix — keep the scan order by inserting in place.
        if (!dirty_[size_t(c)]) {
          const int32_t lc = level_[size_t(c)];
          dirty_[size_t(c)] = 1;
          if (level_work_[size_t(lc)].empty()) {
            auto pos = std::lower_bound(touched_levels_.begin() + i + 1,
                                        touched_levels_.end(), lc);
            touched_levels_.insert(pos, lc);
          }
          level_work_[size_t(lc)].push_back(c);
        }
      }
    }
    bucket.clear();
  }
  return recomputed;
}

bool LineageCircuit::GuardsHold() const {
  for (const auto& g : guards_) {
    if (CircuitRecorder::Holds(g.kind, val_[size_t(g.gate)]) != g.expected) {
      return false;
    }
  }
  return true;
}

std::vector<NodeProb> LineageCircuit::Results(int member) const {
  std::vector<NodeProb> out;
  const auto& group = outputs_[size_t(member)];
  out.reserve(group.size());
  for (const auto& [node, gate] : group) {
    const double p = val_[size_t(gate)];
    if (p > 0) out.push_back({node, p});
  }
  return out;
}

std::vector<LineageCircuit::Sensitivity> LineageCircuit::Sensitivities(
    int member, NodeId node) {
  GateId out = kNoGate;
  for (const auto& [n, g] : outputs_[size_t(member)]) {
    if (n == node) {
      out = g;
      break;
    }
  }
  std::vector<Sensitivity> result;
  if (out == kNoGate) return result;
  adj_.assign(ops_.size(), 0.0);
  adj_[size_t(out)] = 1.0;
  for (GateId g = out; g >= 0; --g) {
    const double ag = adj_[size_t(g)];
    if (ag == 0.0) continue;
    switch (ops_[size_t(g)]) {
      case GateOp::kAdd:
        adj_[size_t(a_[size_t(g)])] += ag;
        adj_[size_t(b_[size_t(g)])] += ag;
        break;
      case GateOp::kSub:
        adj_[size_t(a_[size_t(g)])] += ag;
        adj_[size_t(b_[size_t(g)])] -= ag;
        break;
      case GateOp::kMul:
        adj_[size_t(a_[size_t(g)])] += ag * val_[size_t(b_[size_t(g)])];
        adj_[size_t(b_[size_t(g)])] += ag * val_[size_t(a_[size_t(g)])];
        break;
      default:
        break;
    }
  }
  result.reserve(input_gates_.size());
  for (size_t i = 0; i < input_gates_.size(); ++i) {
    const GateId g = input_gates_[i];
    result.push_back({input_keys_[i], val_[size_t(g)], adj_[size_t(g)]});
  }
  std::stable_sort(result.begin(), result.end(),
                   [](const Sensitivity& x, const Sensitivity& y) {
                     return std::fabs(x.grad) > std::fabs(y.grad);
                   });
  return result;
}

size_t LineageCircuit::memory_bytes() const {
  size_t bytes = 0;
  bytes += ops_.capacity() * sizeof(GateOp);
  bytes += (a_.capacity() + b_.capacity()) * sizeof(GateId);
  bytes += (val_.capacity() + adj_.capacity()) * sizeof(double);
  bytes += level_.capacity() * sizeof(int32_t);
  bytes += use_off_.capacity() * sizeof(uint32_t);
  bytes += uses_.capacity() * sizeof(GateId);
  bytes += input_keys_.capacity() * sizeof(CircuitInput);
  bytes += input_gates_.capacity() * sizeof(GateId);
  bytes += guards_.capacity() * sizeof(CircuitRecorder::GuardRec);
  bytes += dirty_.capacity();
  for (const auto& group : outputs_) {
    bytes += group.capacity() * sizeof(std::pair<NodeId, GateId>);
  }
  for (const auto& w : level_work_) bytes += w.capacity() * sizeof(GateId);
  bytes += level_work_.capacity() * sizeof(std::vector<GateId>);
  return bytes;
}

}  // namespace pxv
