// Ground-truth oracle: probabilistic query evaluation by exhaustive
// possible-world enumeration. Exponential — test and validation use only.

#ifndef PXV_PROB_NAIVE_H_
#define PXV_PROB_NAIVE_H_

#include <map>
#include <vector>

#include "prob/engine.h"
#include "pxml/pdocument.h"
#include "tp/pattern.h"
#include "tpi/intersection.h"
#include "util/status.h"

namespace pxv {

/// Pr(n ∈ q(P)) for every ordinary node n with positive probability,
/// keyed by p-document node id.
std::map<NodeId, double> NaiveEvaluateTP(const PDocument& pd,
                                         const Pattern& q);

/// Same for an intersection (members evaluated over the same document; a
/// node is selected iff every member selects it).
std::map<NodeId, double> NaiveEvaluateTPI(const PDocument& pd,
                                          const TpIntersection& q);

/// Pr(q matches P) — Boolean semantics.
double NaiveBooleanProbability(const PDocument& pd, const Pattern& q);

/// Pr(n ∈ P): appearance probability by enumeration.
double NaiveAppearanceProbability(const PDocument& pd, NodeId n);

/// Backend-friendly variants: an error Status (instead of process death)
/// when the px-space exceeds `max_worlds`, so the naive oracle can serve as
/// a declining ProbBackend.
///
/// Pr(every goal embeds, respecting anchors) — the oracle counterpart of
/// ConjunctionProbability.
StatusOr<double> NaiveTryConjunction(const PDocument& pd,
                                     const std::vector<Goal>& goals,
                                     int max_worlds);

/// Pr(n ∈ (∩ members)(P)) per node — the oracle counterpart of
/// BatchAnchoredProbabilities.
StatusOr<std::map<NodeId, double>> NaiveTryBatchAnchored(
    const PDocument& pd, const std::vector<const Pattern*>& members,
    int max_worlds);

}  // namespace pxv

#endif  // PXV_PROB_NAIVE_H_
