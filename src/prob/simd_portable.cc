// Portable implementation of the KernelOps table (prob/simd.h) plus the
// process-wide kernel resolution. These loops are the semantic ground truth
// for the AVX2 TU: same arithmetic, same order, so the two tables produce
// bitwise-identical results (the summation-order contract in simd.h).
//
// The loops are written so the baseline compiler can auto-vectorize them
// where profitable; correctness never depends on it, because each output
// element is computed independently (no reassociation, no contraction — the
// multiply's rounding happens here, behind the function-pointer boundary,
// never fused into a caller-side add).

#include "prob/simd.h"

#include <cstdlib>
#include <cstring>

namespace pxv {
namespace {

void ConvRowN(uint64_t ka, double pa, const uint64_t* bk, const double* bv,
              size_t nb, uint64_t* out_k, double* out_v) {
  for (size_t j = 0; j < nb; ++j) {
    out_k[j] = ka | bk[j];
    out_v[j] = pa * bv[j];
  }
}

void ConvRowW(const WideKey& ka, double pa, const WideKey* bk,
              const double* bv, size_t nb, WideKey* out_k, double* out_v) {
  for (size_t j = 0; j < nb; ++j) {
    out_k[j] = ka | bk[j];
    out_v[j] = pa * bv[j];
  }
}

void PairConvN(const uint64_t* ak, const double* av, const uint64_t* bk,
               const double* bv, size_t n, uint64_t* out_k, double* out_v) {
  for (size_t i = 0; i < n; ++i) {
    out_k[i] = ak[i] | bk[i];
    out_v[i] = av[i] * bv[i];
  }
}

void PairConvW(const WideKey* ak, const double* av, const WideKey* bk,
               const double* bv, size_t n, WideKey* out_k, double* out_v) {
  for (size_t i = 0; i < n; ++i) {
    out_k[i] = ak[i] | bk[i];
    out_v[i] = av[i] * bv[i];
  }
}

void Scale(const double* v, size_t n, double p, double* out_v) {
  for (size_t i = 0; i < n; ++i) out_v[i] = v[i] * p;
}

const KernelOps kPortable = {
    "portable", ConvRowN, ConvRowW, PairConvN, PairConvW, Scale,
};

bool ForcedScalarByEnv() {
  const char* v = std::getenv("PXV_FORCE_SCALAR");
  return v != nullptr && v[0] != '\0' && std::strcmp(v, "0") != 0;
}

bool CpuHasAvx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

}  // namespace

const KernelOps* PortableKernel() { return &kPortable; }

const KernelOps* ResolveKernel(bool force_scalar) {
  if (force_scalar || ForcedScalarByEnv()) return &kPortable;
  const KernelOps* avx2 = Avx2Kernel();
  if (avx2 != nullptr && CpuHasAvx2()) return avx2;
  return &kPortable;
}

const KernelOps* ActiveKernel() {
  static const KernelOps* chosen = ResolveKernel(false);
  return chosen;
}

}  // namespace pxv
