// AVX2 implementation of the KernelOps table (prob/simd.h). This TU is the
// only one compiled with -mavx2 (CMake sets the per-source flag on x86-64);
// everything else in the build stays baseline, and ResolveKernel only hands
// this table out after a runtime __builtin_cpu_supports("avx2") check.
//
// Bitwise contract with the portable TU: multiplies only (never
// _mm256_fmadd_pd — FMA's single rounding of a*b+c would diverge from the
// portable mul-then-add), identical per-element arithmetic, identical
// element order, scalar tails using the very same expressions. See simd.h.

#include "prob/simd.h"

#if defined(__AVX2__)

#include <immintrin.h>

namespace pxv {
namespace {

void ConvRowN(uint64_t ka, double pa, const uint64_t* bk, const double* bv,
              size_t nb, uint64_t* out_k, double* out_v) {
  size_t j = 0;
  const __m256i vka = _mm256_set1_epi64x(static_cast<long long>(ka));
  const __m256d vpa = _mm256_set1_pd(pa);
  for (; j + 4 <= nb; j += 4) {
    const __m256i k =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bk + j));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out_k + j),
                        _mm256_or_si256(vka, k));
    _mm256_storeu_pd(out_v + j, _mm256_mul_pd(vpa, _mm256_loadu_pd(bv + j)));
  }
  for (; j < nb; ++j) {
    out_k[j] = ka | bk[j];
    out_v[j] = pa * bv[j];
  }
}

void ConvRowW(const WideKey& ka, double pa, const WideKey* bk,
              const double* bv, size_t nb, WideKey* out_k, double* out_v) {
  // A WideKey is exactly one 256-bit lane: the OR is a single vector op per
  // key; the value products run 4-wide alongside.
  const __m256i vka =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ka.w.data()));
  for (size_t j = 0; j < nb; ++j) {
    const __m256i k =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bk[j].w.data()));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out_k[j].w.data()),
                        _mm256_or_si256(vka, k));
  }
  size_t j = 0;
  const __m256d vpa = _mm256_set1_pd(pa);
  for (; j + 4 <= nb; j += 4) {
    _mm256_storeu_pd(out_v + j, _mm256_mul_pd(vpa, _mm256_loadu_pd(bv + j)));
  }
  for (; j < nb; ++j) out_v[j] = pa * bv[j];
}

void PairConvN(const uint64_t* ak, const double* av, const uint64_t* bk,
               const double* bv, size_t n, uint64_t* out_k, double* out_v) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ak + i));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bk + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out_k + i),
                        _mm256_or_si256(a, b));
    _mm256_storeu_pd(out_v + i, _mm256_mul_pd(_mm256_loadu_pd(av + i),
                                              _mm256_loadu_pd(bv + i)));
  }
  for (; i < n; ++i) {
    out_k[i] = ak[i] | bk[i];
    out_v[i] = av[i] * bv[i];
  }
}

void PairConvW(const WideKey* ak, const double* av, const WideKey* bk,
               const double* bv, size_t n, WideKey* out_k, double* out_v) {
  for (size_t i = 0; i < n; ++i) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ak[i].w.data()));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bk[i].w.data()));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out_k[i].w.data()),
                        _mm256_or_si256(a, b));
  }
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out_v + i, _mm256_mul_pd(_mm256_loadu_pd(av + i),
                                              _mm256_loadu_pd(bv + i)));
  }
  for (; i < n; ++i) out_v[i] = av[i] * bv[i];
}

void Scale(const double* v, size_t n, double p, double* out_v) {
  size_t i = 0;
  const __m256d vp = _mm256_set1_pd(p);
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out_v + i, _mm256_mul_pd(vp, _mm256_loadu_pd(v + i)));
  }
  for (; i < n; ++i) out_v[i] = v[i] * p;
}

const KernelOps kAvx2 = {
    "avx2", ConvRowN, ConvRowW, PairConvN, PairConvW, Scale,
};

}  // namespace

const KernelOps* Avx2Kernel() { return &kAvx2; }

}  // namespace pxv

#else  // !defined(__AVX2__)

namespace pxv {
const KernelOps* Avx2Kernel() { return nullptr; }
}  // namespace pxv

#endif
