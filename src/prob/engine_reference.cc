// Test-only reference engine: the pre-flat-kernel bottom-up DP, verbatim —
// one std::unordered_map per distribution, 256-bit keys everywhere, no
// arena, no narrowing. Kept solely so the randomized equivalence suite can
// pin the rewritten kernel (engine.cc) against the implementation it
// replaced; production code must never call these. Scheduled for deletion
// once the flat kernel has soaked.

#include "prob/engine.h"

#include <algorithm>
#include <array>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "util/check.h"

namespace pxv {
namespace {

// Packed (A, D) pair: 2 bits per query slot — bit 2i = "D" (embeds
// at-or-below), bit 2i+1 = "A" (embeds exactly here); A implies D. Four
// 64-bit words hold kMaxConjunctionSlots = 128 slots.
struct StateKey {
  std::array<uint64_t, 4> w{};

  bool operator==(const StateKey& o) const { return w == o.w; }
  StateKey operator|(const StateKey& o) const {
    StateKey r;
    for (int i = 0; i < 4; ++i) r.w[i] = w[i] | o.w[i];
    return r;
  }
  bool IsEmpty() const { return (w[0] | w[1] | w[2] | w[3]) == 0; }
};

struct StateKeyHash {
  size_t operator()(const StateKey& k) const {
    uint64_t x = 0x9E3779B97F4A7C15ULL;
    for (uint64_t v : k.w) {
      x ^= v + 0x9E3779B97F4A7C15ULL + (x << 6) + (x >> 2);
      x *= 0xFF51AFD7ED558CCDULL;
    }
    return static_cast<size_t>(x ^ (x >> 29));
  }
};

using Dist = std::unordered_map<StateKey, double, StateKeyHash>;

void SetBit(StateKey* k, int bit) {
  k->w[bit >> 6] |= uint64_t{1} << (bit & 63);
}

bool GetBit(const StateKey& k, int bit) {
  return (k.w[bit >> 6] >> (bit & 63)) & 1;
}

// Keeps the D bits (even positions), clears the A bits.
StateKey DOnly(const StateKey& k) {
  constexpr uint64_t kDMask = 0x5555555555555555ULL;
  StateKey r;
  for (int i = 0; i < 4; ++i) r.w[i] = k.w[i] & kDMask;
  return r;
}

Dist Delta() { return Dist{{StateKey{}, 1.0}}; }

Dist Convolve(const Dist& a, const Dist& b) {
  if (a.size() == 1 && a.begin()->first.IsEmpty()) {
    Dist out = b;
    const double p = a.begin()->second;
    if (p != 1.0) {
      for (auto& [k, v] : out) v *= p;
    }
    return out;
  }
  if (b.size() == 1 && b.begin()->first.IsEmpty()) {
    Dist out = a;
    const double p = b.begin()->second;
    if (p != 1.0) {
      for (auto& [k, v] : out) v *= p;
    }
    return out;
  }
  Dist out;
  out.reserve(a.size() * b.size());
  for (const auto& [ka, pa] : a) {
    for (const auto& [kb, pb] : b) {
      out[ka | kb] += pa * pb;
    }
  }
  return out;
}

void AddScaled(Dist* acc, const Dist& d, double p) {
  for (const auto& [k, v] : d) (*acc)[k] += p * v;
}

void ScaleInPlace(Dist* d, double p) {
  if (p == 1.0) return;
  for (auto& [k, v] : *d) v *= p;
}

// The state a p-document region passes to its parent: the base (A, D)
// distribution, plus one joint distribution per candidate anchor inside the
// region whose keys additionally carry the starred main-branch bits pinning
// the output mapping to that anchor.
struct Region {
  Dist base;
  std::vector<std::pair<NodeId, Dist>> tracked;
};

class Engine {
 public:
  Engine(const PDocument& pd, const std::vector<Goal>& goals,
         const std::vector<const Pattern*>& batch)
      : pd_(pd), batch_count_(static_cast<int>(batch.size())) {
    int total = 0;
    // Fixed-anchor / Boolean conjuncts: every pattern node is a base slot.
    for (const Goal& g : goals) {
      PXV_CHECK(g.pattern != nullptr);
      const Pattern& p = *g.pattern;
      const int offset = total;
      total += p.size();
      PXV_CHECK_LE(total, kMaxConjunctionSlots)
          << "conjunction too large for the packed DP";
      qnodes_.resize(total);
      for (PNodeId n = 0; n < p.size(); ++n) {
        QNode& qn = qnodes_[offset + n];
        qn.label = p.label(n);
        for (PNodeId c : p.children(n)) {
          (p.axis(c) == Axis::kChild ? qn.slash_kids : qn.desc_kids)
              .push_back(offset + c);
        }
        by_label_[qn.label].push_back(offset + n);
        if (n == p.root()) goal_root_slots_.push_back(offset + n);
      }
      if (g.anchor != nullptr) {
        anchor_sets_.emplace_back();
        for (NodeId a : *g.anchor) anchor_sets_.back().insert(a);
        anchor_of_[offset + p.out()] =
            static_cast<int>(anchor_sets_.size()) - 1;
      }
    }
    // Batched members: predicate-subtree nodes are base slots; main-branch
    // nodes are starred slots (match only along the pinned output chain);
    // out itself is the pin slot, set exclusively at the tracked anchor.
    for (const Pattern* pp : batch) {
      PXV_CHECK(pp != nullptr);
      const Pattern& p = *pp;
      const int offset = total;
      total += p.size();
      PXV_CHECK_LE(total, kMaxConjunctionSlots)
          << "batched conjunction too large for the packed DP";
      qnodes_.resize(total);
      std::vector<char> on_mb(p.size(), 0);
      for (PNodeId n : p.MainBranch()) on_mb[n] = 1;
      for (PNodeId n = 0; n < p.size(); ++n) {
        QNode& qn = qnodes_[offset + n];
        qn.label = p.label(n);
        for (PNodeId c : p.children(n)) {
          (p.axis(c) == Axis::kChild ? qn.slash_kids : qn.desc_kids)
              .push_back(offset + c);
        }
        if (n == p.out()) {
          pin_slots_.push_back(offset + n);
        } else if (on_mb[n]) {
          by_label_star_[qn.label].push_back(offset + n);
        } else {
          by_label_[qn.label].push_back(offset + n);
        }
        if (n == p.root()) batch_root_slots_.push_back(offset + n);
      }
      // All members must share the output label, or no candidate exists.
      if (batch_out_label_set_ && batch_out_label_ != p.OutLabel()) {
        batch_feasible_ = false;
      }
      batch_out_label_ = p.OutLabel();
      batch_out_label_set_ = true;
    }
    // Label-relevance pruning: a p-document subtree without any query label
    // contributes the empty state with probability 1 and holds no anchors
    // (the output label is itself a query label).
    std::unordered_set<Label> qlabels;
    for (const QNode& qn : qnodes_) qlabels.insert(qn.label);
    relevant_.assign(pd.size(), 0);
    for (NodeId n = pd.size() - 1; n >= 0; --n) {
      // Detached tombstones must not leak relevance (they are unreachable
      // from the root, but this scan walks the raw arena).
      bool rel = !pd.detached(n) && pd.ordinary(n) &&
                 qlabels.count(pd.label(n)) > 0;
      if (!rel) {
        for (NodeId c : pd.children(n)) {
          if (relevant_[c]) {
            rel = true;
            break;
          }
        }
      }
      relevant_[n] = rel;
    }
  }

  double Probability() {
    PXV_CHECK_EQ(batch_count_, 0) << "use BatchResults for batched members";
    Region root = NodeDist(pd_.root());
    double p = 0;
    for (const auto& [key, prob] : root.base) {
      if (AcceptsGoals(key)) p += prob;
    }
    return p;
  }

  std::vector<NodeProb> BatchResults() {
    std::vector<NodeProb> out;
    if (!batch_feasible_ || batch_count_ == 0) return out;
    Region root = NodeDist(pd_.root());
    out.reserve(root.tracked.size());
    for (const auto& [n, dist] : root.tracked) {
      double p = 0;
      for (const auto& [key, prob] : dist) {
        bool all = AcceptsGoals(key);
        for (size_t i = 0; all && i < batch_root_slots_.size(); ++i) {
          if (!GetBit(key, 2 * batch_root_slots_[i] + 1)) all = false;
        }
        if (all) p += prob;
      }
      if (p > 0) out.push_back({n, p});
    }
    std::sort(out.begin(), out.end(),
              [](const NodeProb& a, const NodeProb& b) {
                return a.node < b.node;
              });
    return out;
  }

 private:
  struct QNode {
    Label label = 0;
    std::vector<int> slash_kids, desc_kids;
  };

  bool AcceptsGoals(const StateKey& key) const {
    for (int slot : goal_root_slots_) {
      if (!GetBit(key, 2 * slot + 1)) return false;
    }
    return true;
  }

  // Combines probabilistically independent sibling regions: bases convolve;
  // each tracked anchor (living in exactly one part) convolves with every
  // other part's base via prefix/suffix products.
  static Region Combine(std::vector<Region> parts) {
    Region out;
    if (parts.empty()) {
      out.base = Delta();
      return out;
    }
    if (parts.size() == 1) return std::move(parts[0]);
    bool any_tracked = false;
    for (const Region& r : parts) {
      if (!r.tracked.empty()) {
        any_tracked = true;
        break;
      }
    }
    const int k = static_cast<int>(parts.size());
    if (!any_tracked) {
      out.base = Delta();
      for (Region& r : parts) out.base = Convolve(out.base, r.base);
      return out;
    }
    std::vector<Dist> prefix(k + 1), suffix(k + 1);
    prefix[0] = Delta();
    suffix[k] = Delta();
    for (int i = 0; i < k; ++i) {
      prefix[i + 1] = Convolve(prefix[i], parts[i].base);
    }
    for (int i = k - 1; i >= 1; --i) {  // suffix[0] is never read.
      suffix[i] = Convolve(parts[i].base, suffix[i + 1]);
    }
    out.base = prefix[k];
    for (int i = 0; i < k; ++i) {
      for (auto& [n, t] : parts[i].tracked) {
        out.tracked.emplace_back(
            n, Convolve(Convolve(t, prefix[i]), suffix[i + 1]));
      }
    }
    return out;
  }

  // Distribution contributed by the region rooted at `n`, conditioned on the
  // edge into `n` being taken.
  Region Contribution(NodeId n) {
    if (!relevant_[n]) return Region{Delta(), {}};
    switch (pd_.kind(n)) {
      case PKind::kOrdinary:
        return NodeDist(n);
      case PKind::kDet: {
        std::vector<Region> parts;
        parts.reserve(pd_.children(n).size());
        for (NodeId c : pd_.children(n)) parts.push_back(Contribution(c));
        return Combine(std::move(parts));
      }
      case PKind::kMux: {
        Region acc;
        double total = 0;
        for (NodeId c : pd_.children(n)) {
          const double p = pd_.edge_prob(c);
          total += p;
          if (p == 0) continue;
          Region r = Contribution(c);
          AddScaled(&acc.base, r.base, p);
          // Alternatives are exclusive, so an anchor lives in one branch.
          for (auto& [a, t] : r.tracked) {
            ScaleInPlace(&t, p);
            acc.tracked.emplace_back(a, std::move(t));
          }
        }
        if (total < 1.0) acc.base[StateKey{}] += 1.0 - total;
        return acc;
      }
      case PKind::kInd: {
        std::vector<Region> parts;
        parts.reserve(pd_.children(n).size());
        for (NodeId c : pd_.children(n)) {
          const double p = pd_.edge_prob(c);
          Region mixed;
          if (p > 0) {
            Region r = Contribution(c);
            AddScaled(&mixed.base, r.base, p);
            // The anchor requires its own edge to be taken.
            for (auto& [a, t] : r.tracked) {
              ScaleInPlace(&t, p);
              mixed.tracked.emplace_back(a, std::move(t));
            }
          }
          if (p < 1.0) mixed.base[StateKey{}] += 1.0 - p;
          parts.push_back(std::move(mixed));
        }
        return Combine(std::move(parts));
      }
      case PKind::kExp: {
        const auto& kids = pd_.children(n);
        // Each child's region once; subsets recombine the memoized copies.
        std::vector<Region> kid_regions;
        kid_regions.reserve(kids.size());
        for (NodeId c : kids) kid_regions.push_back(Contribution(c));
        Region acc;
        double total = 0;
        std::unordered_map<NodeId, Dist> tracked_acc;
        for (const auto& [subset, p] : pd_.exp_distribution(n)) {
          total += p;
          if (p == 0) continue;
          std::vector<Region> parts;
          parts.reserve(subset.size());
          for (int idx : subset) parts.push_back(kid_regions[idx]);
          Region sub = Combine(std::move(parts));
          AddScaled(&acc.base, sub.base, p);
          // The same anchor can survive through several subsets.
          for (auto& [a, t] : sub.tracked) AddScaled(&tracked_acc[a], t, p);
        }
        if (total < 1.0) acc.base[StateKey{}] += 1.0 - total;
        acc.tracked.reserve(tracked_acc.size());
        for (auto& [a, t] : tracked_acc) {
          acc.tracked.emplace_back(a, std::move(t));
        }
        return acc;
      }
    }
    PXV_CHECK(false);
    return Region{Delta(), {}};
  }

  // Rewrites a distribution at ordinary node x: D bits flow up, then every
  // candidate slot whose child requirements hold in the incoming key gets
  // its A and D bits set.
  Dist Rewrite(const Dist& in, const std::vector<int>& base_cands,
               const std::vector<int>& star_cands,
               const std::vector<int>& pin_cands) const {
    Dist out;
    out.reserve(in.size());
    for (const auto& [key, p] : in) {
      StateKey nk = DOnly(key);
      const auto apply = [&](int slot) {
        const QNode& qn = qnodes_[slot];
        for (int t : qn.slash_kids) {
          if (!GetBit(key, 2 * t + 1)) return;  // Need A(t) at a kept child.
        }
        for (int t : qn.desc_kids) {
          if (!GetBit(key, 2 * t)) return;  // Need D(t): strictly below x.
        }
        SetBit(&nk, 2 * slot + 1);  // A
        SetBit(&nk, 2 * slot);      // D
      };
      for (int s : base_cands) apply(s);
      for (int s : star_cands) apply(s);
      for (int s : pin_cands) apply(s);
      out[nk] += p;
    }
    return out;
  }

  // (A, D) region of ordinary node `x`, given x appears.
  Region NodeDist(NodeId x) {
    std::vector<Region> parts;
    parts.reserve(pd_.children(x).size());
    for (NodeId c : pd_.children(x)) parts.push_back(Contribution(c));
    Region comb = Combine(std::move(parts));

    const Label xl = pd_.label(x);
    std::vector<int> base_cands;
    if (auto it = by_label_.find(xl); it != by_label_.end()) {
      for (int slot : it->second) {
        const auto ait = anchor_of_.find(slot);
        if (ait != anchor_of_.end() &&
            anchor_sets_[ait->second].count(x) == 0) {
          continue;  // Anchored elsewhere.
        }
        base_cands.push_back(slot);
      }
    }
    static const std::vector<int> kNone;
    const std::vector<int>* star_cands = &kNone;
    if (auto it = by_label_star_.find(xl); it != by_label_star_.end()) {
      star_cands = &it->second;
    }

    Region out;
    out.base = Rewrite(comb.base, base_cands, kNone, kNone);
    out.tracked.reserve(comb.tracked.size() + 1);
    for (auto& [n, t] : comb.tracked) {
      out.tracked.emplace_back(n, Rewrite(t, base_cands, *star_cands, kNone));
    }
    // x itself becomes a tracked anchor: pin every member's out slot here.
    if (batch_feasible_ && batch_count_ > 0 && xl == batch_out_label_) {
      out.tracked.emplace_back(x,
                               Rewrite(comb.base, base_cands, kNone,
                                       pin_slots_));
    }
    return out;
  }

  const PDocument& pd_;
  const int batch_count_;
  std::vector<QNode> qnodes_;
  std::vector<int> goal_root_slots_;
  std::vector<int> batch_root_slots_;
  std::vector<int> pin_slots_;
  std::unordered_map<Label, std::vector<int>> by_label_;
  std::unordered_map<Label, std::vector<int>> by_label_star_;
  std::unordered_map<int, int> anchor_of_;
  std::vector<std::unordered_set<NodeId>> anchor_sets_;
  std::vector<uint8_t> relevant_;
  Label batch_out_label_ = 0;
  bool batch_out_label_set_ = false;
  bool batch_feasible_ = true;
};

}  // namespace

double ReferenceConjunctionProbability(const PDocument& pd,
                                       const std::vector<Goal>& goals) {
  PXV_CHECK(!pd.empty());
  if (goals.empty()) return 1.0;
  Engine engine(pd, goals, {});
  return engine.Probability();
}

std::vector<NodeProb> ReferenceBatchAnchoredProbabilities(
    const PDocument& pd, const std::vector<const Pattern*>& members) {
  PXV_CHECK(!pd.empty());
  if (members.empty()) return {};
  Engine engine(pd, {}, members);
  return engine.BatchResults();
}

}  // namespace pxv
