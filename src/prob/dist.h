// Flat distribution kernel for the exact DP (prob/engine.cc).
//
// The bottom-up DP carries sparse probability distributions over packed
// (A, D) state keys. The previous representation — one std::unordered_map
// per Convolve/AddScaled — spent most of its cycles in malloc/free and in
// hashing 4x64-bit keys. This kernel replaces it with:
//
//   * FlatDist<K>: a distribution that stores zero or one entries inline
//     (the overwhelming majority in the DP — deterministic regions
//     collapse to a single state) and promotes to a structure-of-arrays
//     table: a u32 open-addressing index (power-of-two capacity, linear
//     probing, no tombstones — the DP only inserts and accumulates, never
//     erases) over *dense* key and value lanes filled in insertion order.
//     One storage block [index | key lane | value lane] comes from a bump
//     arena. The dense lanes are what the vector kernel (prob/simd.h)
//     sweeps: iteration is a linear lane walk (insertion order, so it is
//     deterministic given the operation sequence), scaling is a contiguous
//     multiply, and convolution rows read the lanes directly;
//   * DistPool: a free-list of table blocks bucketed by size class on top
//     of the arena, so the scratch tables a pass churns through are
//     recycled instead of reallocated;
//   * DpScratch: the per-session bundle (arena + pool + profile counters)
//     that EvalSession/ProbBackend thread through the engine. One scratch
//     per thread, like EvalSession itself.
//
// Keys come in two widths. The engine runs each p-document subtree over a
// *narrowed* key — 2 bits per live query slot, remapped into one uint64_t —
// whenever at most 32 slots are live in that subtree, and falls back to the
// 256-bit WideKey (2 bits x kMaxConjunctionSlots = 128 slots, global slot
// positions) otherwise. See engine.cc for the narrowing pass.

#ifndef PXV_PROB_DIST_H_
#define PXV_PROB_DIST_H_

#include <array>
#include <cstdint>
#include <cstring>
#include <new>
#include <utility>
#include <vector>

#include "util/arena.h"
#include "util/check.h"

namespace pxv {

/// 256-bit packed DP state key over the global query-slot space: bit 2s is
/// "D(s)" (subtree s embeds at-or-below), bit 2s+1 is "A(s)" (embeds exactly
/// here). Used when more than 32 slots are live.
struct WideKey {
  std::array<uint64_t, 4> w{};

  bool operator==(const WideKey& o) const { return w == o.w; }
  WideKey operator|(const WideKey& o) const {
    WideKey r;
    for (int i = 0; i < 4; ++i) r.w[i] = w[i] | o.w[i];
    return r;
  }
  bool IsEmpty() const { return (w[0] | w[1] | w[2] | w[3]) == 0; }
};

/// Kernel observability: cheap counters the engine and pool bump while
/// running. Cumulative per DpScratch; bench_batch_eval --profile emits them
/// into its JSON.
struct DistProfile {
  uint64_t table_allocs = 0;      ///< Fresh blocks bumped from the arena.
  uint64_t table_reuses = 0;      ///< Blocks served from a pool free list.
  uint64_t rehashes = 0;          ///< Table growth (rehash) events.
  uint64_t narrow_nodes = 0;      ///< Ordinary nodes evaluated on 1-word keys.
  uint64_t wide_nodes = 0;        ///< Ordinary nodes on 256-bit keys.
  uint64_t keys_remapped = 0;     ///< Keys translated between slot frames.
  uint64_t pruned_entries = 0;    ///< Entries dropped by eps support pruning.
  uint64_t runs = 0;              ///< Engine passes served.
  uint64_t arena_peak_bytes = 0;  ///< High-water arena usage of any pass.
  // Convolution path split (see Engine::Convolve): dense scatter-accumulate
  // for small narrow frames vs hash-insert rows.
  uint64_t dense_convs = 0;       ///< Convolutions via the dense scatter path.
  uint64_t hash_convs = 0;        ///< Convolutions via the hash-insert path.
  // Sibling-product segment trees at high-fanout Combine sites.
  uint64_t sibling_tree_sites = 0;   ///< Combine calls run through a tree.
  uint64_t sibling_tree_convs = 0;   ///< Internal products computed.
  uint64_t sibling_tree_reused = 0;  ///< Internal products served from memo.
  uint64_t sibling_except_convs = 0; ///< Tracked except-path convolutions.
  uint64_t batched_pair_convs = 0;   ///< Singleton sibling pairs swept jointly.
  uint64_t combine_scratch_reuses = 0;  ///< prefix/suffix blocks reused.
  // Lineage-circuit backend (prob/circuit_backend.h).
  uint64_t circuit_gates = 0;        ///< Gates appended to the shared pool.
  uint64_t circuit_dirty_gates = 0;  ///< Gates recomputed by delta sweeps.
  uint64_t circuit_recompiles = 0;   ///< Recording passes (cold + fallback).
  // Shared-circuit shape gauges (latest merged compile, not cumulative):
  // live non-constant gates in ≥ 2 registrations' cones vs exactly one,
  // and output root groups across the registrations.
  uint64_t circuit_shared_gates = 0;
  uint64_t circuit_private_gates = 0;
  uint64_t circuit_roots = 0;
  // Cumulative shared-circuit events.
  uint64_t circuit_merged_propagations = 0;  ///< Merged one-pass syncs.
  uint64_t circuit_evictions = 0;  ///< Registrations dropped by the LRU cap.

  /// Zeroes every counter. All DistProfile counters are cumulative for the
  /// scratch's whole lifetime (across BeginRun/EndRun brackets and backend
  /// reuse alike — combine_scratch_reuses included, even though the
  /// prefix/suffix buffers it observes are per-run); callers that want
  /// per-phase deltas reset explicitly between phases instead of relying on
  /// any implicit per-run scope.
  void Reset() { *this = DistProfile{}; }
};

/// Free-list recycler of table blocks over an arena. Blocks of one size
/// class are identical, so a released block satisfies the next acquisition
/// of its class without touching the arena.
class DistPool {
 public:
  DistPool(Arena* arena, DistProfile* profile)
      : arena_(arena), profile_(profile) {}

  void* Acquire(int size_class, size_t bytes) {
    if (size_class < static_cast<int>(free_.size()) &&
        !free_[size_class].empty()) {
      void* p = free_[size_class].back();
      free_[size_class].pop_back();
      ++profile_->table_reuses;
      return p;
    }
    ++profile_->table_allocs;
    return arena_->Alloc(bytes, alignof(uint64_t));
  }

  void Release(void* block, int size_class) {
    if (size_class >= static_cast<int>(free_.size())) {
      free_.resize(size_class + 1);
    }
    free_[size_class].push_back(block);
  }

  /// Drops every free list (arena about to be Reset; the blocks' storage is
  /// reclaimed wholesale).
  void Clear() {
    for (auto& list : free_) list.clear();
  }

  Arena* arena() { return arena_; }
  DistProfile* profile() { return profile_; }

 private:
  Arena* arena_;
  DistProfile* profile_;
  std::vector<std::vector<void*>> free_;
};

namespace dist_internal {

inline uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

template <typename K>
struct KeyTraits;

template <>
struct KeyTraits<uint64_t> {
  static uint64_t Hash(uint64_t k) { return Mix64(k); }
  static constexpr int kSizeClassBit = 0;
};

template <>
struct KeyTraits<WideKey> {
  static uint64_t Hash(const WideKey& k) {
    uint64_t x = 0x9E3779B97F4A7C15ULL;
    for (uint64_t v : k.w) {
      x ^= v + 0x9E3779B97F4A7C15ULL + (x << 6) + (x >> 2);
      x *= 0xFF51AFD7ED558CCDULL;
    }
    return x ^ (x >> 29);
  }
  static constexpr int kSizeClassBit = 1;
};

}  // namespace dist_internal

/// Sparse distribution over keys of type K: insert-or-accumulate, lookup,
/// iterate, scale, prune — no erase, so probing never meets a tombstone.
///
/// A distribution initialized with cap_log2 == kInlineCapLog2 (0, the
/// default) starts *inline*: its zero-or-one entries live in the object,
/// no pool block is touched, and the second distinct key promotes it to a
/// real table. Callers that know the output is multi-entry pass a real
/// capacity hint to skip the promotion step. Table storage is one pool
/// block, returned on Release()/destruction (or reclaimed wholesale when
/// the arena resets). Default-constructed instances own no storage and
/// behave as empty; the first Add() must follow Init().
template <typename K>
class FlatDist {
 public:
  static constexpr int kInlineCapLog2 = 0;
  static constexpr int kMinCapLog2 = 2;

  FlatDist() = default;
  FlatDist(const FlatDist&) = delete;
  FlatDist& operator=(const FlatDist&) = delete;
  FlatDist(FlatDist&& o) { MoveFrom(&o); }
  FlatDist& operator=(FlatDist&& o) {
    if (this != &o) {
      Release();
      MoveFrom(&o);
    }
    return *this;
  }
  ~FlatDist() { Release(); }

  bool initialized() const { return inited_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  int cap_log2() const { return cap_log2_; }
  bool inline_mode() const { return block_ == nullptr; }

  /// Opaque per-lane annotation hook, used only while a circuit recording
  /// runs (prob/circuit.h: a GateVec* aligned with the dense lanes — the
  /// i-th element is the gate computing lane i's value). Null outside
  /// recording; the recorder owns the pointee. Moves carry it, CloneInto
  /// shares it (clones are only ever read), Release drops it. Plain data so
  /// the non-recording paths pay nothing.
  void* shadow = nullptr;

  void Init(DistPool* pool, int cap_log2 = kInlineCapLog2) {
    PXV_CHECK(!inited_);
    pool_ = pool;
    inited_ = true;
    size_ = 0;
    if (cap_log2 <= kInlineCapLog2) {
      cap_log2_ = kInlineCapLog2;
      return;
    }
    cap_log2_ = cap_log2 < kMinCapLog2 ? kMinCapLog2 : cap_log2;
    AcquireBlock();
  }

  /// Returns any storage block to the pool; the dist becomes uninitialized.
  void Release() {
    if (block_ != nullptr) {
      pool_->Release(block_, SizeClass(cap_log2_));
      block_ = nullptr;
    }
    inited_ = false;
    size_ = 0;
    cap_log2_ = kInlineCapLog2;
    shadow = nullptr;
  }

  /// dist[k] += v, inserting if absent. Promotes / grows as needed.
  void Add(const K& k, double v) {
    if (block_ == nullptr) {
      if (size_ == 0) {
        ikey_ = k;
        ival_ = v;
        size_ = 1;
        return;
      }
      if (ikey_ == k) {
        ival_ += v;
        return;
      }
      Promote();
    } else if ((size_ + 1) * 4 > Cap() * 3) {
      Grow();
    }
    TableAdd(k, v);
  }

  /// Probability mass at `k`; 0 when absent (or uninitialized).
  double Mass(const K& k) const {
    if (size_ == 0) return 0;
    if (block_ == nullptr) return ikey_ == k ? ival_ : 0;
    const uint32_t* idx = Index();
    const K* keys = Keys();
    const size_t mask = Cap() - 1;
    size_t i = dist_internal::KeyTraits<K>::Hash(k) & mask;
    for (;;) {
      const uint32_t e = idx[i];
      if (e == 0) return 0;
      if (keys[e - 1] == k) return Vals()[e - 1];
      i = (i + 1) & mask;
    }
  }

  /// f(key, value) over every entry, in insertion order (first-insert order
  /// of each distinct key — deterministic given the operation sequence).
  template <typename F>
  void ForEach(F&& f) const {
    if (size_ == 0) return;
    if (block_ == nullptr) {
      f(ikey_, ival_);
      return;
    }
    const K* keys = Keys();
    const double* vals = Vals();
    for (size_t i = 0; i < size_; ++i) f(keys[i], vals[i]);
  }

  /// Dense lane index of `k`, or -1 when absent: the position ForEach /
  /// LaneView would present the key at. The circuit recorder
  /// (prob/circuit.h) interleaves Lane() lookups with Add() calls to tell a
  /// merge (value accumulates into an existing lane) from an append (a new
  /// lane), mirroring Add's own probe.
  int64_t Lane(const K& k) const {
    if (size_ == 0) return -1;
    if (block_ == nullptr) return ikey_ == k ? 0 : -1;
    const uint32_t* idx = Index();
    const K* keys = Keys();
    const size_t mask = Cap() - 1;
    size_t i = dist_internal::KeyTraits<K>::Hash(k) & mask;
    for (;;) {
      const uint32_t e = idx[i];
      if (e == 0) return -1;
      if (keys[e - 1] == k) return int64_t(e) - 1;
      i = (i + 1) & mask;
    }
  }

  /// Dense lane view for the vector kernel: `*keys`/`*vals` point at the
  /// entries in insertion order; returns the entry count. Valid for inline
  /// dists too (points at the inline entry). Pointers are invalidated by
  /// any mutating call.
  size_t LaneView(const K** keys, const double** vals) const {
    if (block_ == nullptr) {
      *keys = &ikey_;
      *vals = &ival_;
      return size_;
    }
    *keys = Keys();
    *vals = Vals();
    return size_;
  }

  void ScaleAll(double p) {
    if (p == 1.0 || size_ == 0) return;
    if (block_ == nullptr) {
      ival_ *= p;
      return;
    }
    double* vals = Vals();
    for (size_t i = 0; i < size_; ++i) vals[i] *= p;
  }

  /// If the dist holds exactly one entry, returns it.
  bool GetSingle(K* k, double* v) const {
    if (size_ != 1) return false;
    if (block_ == nullptr) {
      *k = ikey_;
      *v = ival_;
      return true;
    }
    *k = Keys()[0];
    *v = Vals()[0];
    return true;
  }

  /// Drops every entry but keeps the storage block and capacity: the
  /// engine's in-place rewrite stages the lanes aside, resets, and
  /// re-inserts, skipping a pool release/acquire round trip per rewrite.
  void ResetEntries() {
    if (block_ != nullptr) {
      std::memset(Index(), 0, Cap() * sizeof(uint32_t));
    }
    size_ = 0;
  }

  /// True iff the dist holds exactly the all-zero key; returns its mass.
  bool IsSingletonEmpty(double* mass) const {
    K k;
    double v;
    if (!GetSingle(&k, &v) || !(k == K{})) return false;
    *mass = v;
    return true;
  }

  /// Drops entries with |value| <= eps (support pruning; see backend.h for
  /// the error bound). Rebuilds table storage at the same capacity.
  void Prune(double eps) {
    if (size_ == 0) return;
    DistProfile* prof = pool_->profile();
    if (block_ == nullptr) {
      if (ival_ <= eps && ival_ >= -eps) {
        size_ = 0;
        ++prof->pruned_entries;
      }
      return;
    }
    FlatDist<K> out;
    out.Init(pool_, cap_log2_);
    uint64_t dropped = 0;
    ForEach([&](const K& k, double v) {
      if (v > eps || v < -eps) {
        out.Add(k, v);
      } else {
        ++dropped;
      }
    });
    prof->pruned_entries += dropped;
    *this = std::move(out);
  }

  /// Deep copy (same capacity; inline dists copy without touching the pool).
  FlatDist<K> Clone() const { return CloneInto(pool_); }

  /// Deep copy whose storage comes from `pool` (which may belong to a
  /// different arena — the incremental subtree cache clones between its
  /// persistent pool and the per-run scratch). The block is memcpy'd, so
  /// the clone's table layout — and therefore its ForEach iteration order —
  /// is bit-identical to the source's: results computed from a cached clone
  /// match a from-scratch run down to floating-point rounding.
  FlatDist<K> CloneInto(DistPool* pool) const {
    FlatDist<K> out;
    if (!inited_) return out;
    if (block_ == nullptr) {
      out.pool_ = pool;
      out.inited_ = true;
      out.cap_log2_ = kInlineCapLog2;
      out.size_ = size_;
      out.ikey_ = ikey_;
      out.ival_ = ival_;
      out.shadow = shadow;
      return out;
    }
    out.Init(pool, cap_log2_);
    std::memcpy(out.block_, block_, BlockBytes(cap_log2_));
    out.size_ = size_;
    out.shadow = shadow;
    return out;
  }

 private:
  size_t Cap() const { return size_t{1} << cap_log2_; }
  // Structure-of-arrays block: [u32 index | key lane | value lane], every
  // section `cap` entries wide. The index holds lane_index + 1 (0 = empty
  // slot); lanes fill densely in insertion order. Entries never exceed
  // 3/4 · cap before Grow fires, so the lanes never overflow.
  static size_t BlockBytes(int cap_log2) {
    return (size_t{1} << cap_log2) *
           (sizeof(uint32_t) + sizeof(K) + sizeof(double));
  }
  static int SizeClass(int cap_log2) {
    return cap_log2 * 2 + dist_internal::KeyTraits<K>::kSizeClassBit;
  }

  uint32_t* Index() const { return static_cast<uint32_t*>(block_); }
  K* Keys() const { return reinterpret_cast<K*>(Index() + Cap()); }
  double* Vals() const { return reinterpret_cast<double*>(Keys() + Cap()); }

  // Insert-or-accumulate into table storage (no capacity check).
  void TableAdd(const K& k, double v) {
    uint32_t* idx = Index();
    K* keys = Keys();
    const size_t mask = Cap() - 1;
    size_t i = dist_internal::KeyTraits<K>::Hash(k) & mask;
    for (;;) {
      const uint32_t e = idx[i];
      if (e == 0) {
        idx[i] = size_ + 1;
        keys[size_] = k;
        Vals()[size_] = v;
        ++size_;
        return;
      }
      if (keys[e - 1] == k) {
        Vals()[e - 1] += v;
        return;
      }
      i = (i + 1) & mask;
    }
  }

  void AcquireBlock() {
    block_ = pool_->Acquire(SizeClass(cap_log2_), BlockBytes(cap_log2_));
    std::memset(Index(), 0, Cap() * sizeof(uint32_t));
    size_ = 0;
  }

  // Inline → table: acquire the smallest block, reinsert the inline entry.
  void Promote() {
    const K k = ikey_;
    const double v = ival_;
    cap_log2_ = kMinCapLog2;
    AcquireBlock();  // Resets size_ to 0.
    TableAdd(k, v);
  }

  void Grow() {
    ++pool_->profile()->rehashes;
    FlatDist<K> bigger;
    bigger.Init(pool_, cap_log2_ + 1);
    ForEach([&](const K& k, double v) { bigger.Add(k, v); });
    // Growth re-inserts in lane order, so per-lane annotations stay aligned.
    bigger.shadow = shadow;
    *this = std::move(bigger);
  }

  void MoveFrom(FlatDist* o) {
    pool_ = o->pool_;
    block_ = o->block_;
    size_ = o->size_;
    cap_log2_ = o->cap_log2_;
    inited_ = o->inited_;
    ikey_ = o->ikey_;
    ival_ = o->ival_;
    shadow = o->shadow;
    o->block_ = nullptr;
    o->size_ = 0;
    o->inited_ = false;
    o->cap_log2_ = kInlineCapLog2;
    o->shadow = nullptr;
  }

  DistPool* pool_ = nullptr;
  void* block_ = nullptr;
  uint32_t size_ = 0;
  uint8_t cap_log2_ = kInlineCapLog2;
  bool inited_ = false;
  K ikey_{};       // Inline single entry (block_ == nullptr, size_ <= 1).
  double ival_ = 0;
};

/// Pool-backed growable array for trivially *relocatable* element types
/// (movable objects with no self/back-pointers — FlatDist and the engine's
/// region types qualify): growth is one memcpy plus a block swap, storage
/// recycles through the DistPool byte-size classes, and the DP stops paying
/// malloc/free for its thousands of per-region vectors. Elements are
/// destroyed on release; the pool pointer is supplied at the first append.
template <typename T>
class PoolVec {
 public:
  PoolVec() = default;
  PoolVec(const PoolVec&) = delete;
  PoolVec& operator=(const PoolVec&) = delete;
  PoolVec(PoolVec&& o)
      : pool_(o.pool_), data_(o.data_), size_(o.size_), cap_(o.cap_) {
    o.data_ = nullptr;
    o.size_ = 0;
    o.cap_ = 0;
  }
  PoolVec& operator=(PoolVec&& o) {
    if (this != &o) {
      Clear();
      pool_ = o.pool_;
      data_ = o.data_;
      size_ = o.size_;
      cap_ = o.cap_;
      o.data_ = nullptr;
      o.size_ = 0;
      o.cap_ = 0;
    }
    return *this;
  }
  ~PoolVec() { Clear(); }

  size_t size() const { return size_; }
  size_t capacity() const { return cap_; }
  bool empty() const { return size_ == 0; }
  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }
  T& operator[](size_t i) { return data_[i]; }
  const T& operator[](size_t i) const { return data_[i]; }
  T& back() { return data_[size_ - 1]; }

  void Reserve(DistPool* pool, size_t n) {
    pool_ = pool;
    if (n > cap_) Grow(n);
  }

  template <typename... Args>
  T& EmplaceBack(DistPool* pool, Args&&... args) {
    pool_ = pool;
    if (size_ == cap_) Grow(size_ + 1);
    return *new (data_ + size_++) T(std::forward<Args>(args)...);
  }

  /// Destroys elements past `n` (keeps storage).
  void Truncate(size_t n) {
    while (size_ > n) data_[--size_].~T();
  }

  /// Destroys the elements and returns the block to the pool.
  void Clear() {
    for (size_t i = 0; i < size_; ++i) data_[i].~T();
    if (data_ != nullptr) {
      pool_->Release(data_, ByteClass(cap_ * sizeof(T)));
      data_ = nullptr;
    }
    size_ = 0;
    cap_ = 0;
  }

 private:
  static int ByteClassLog2(size_t bytes) {
    int l = 4;  // 16-byte minimum block.
    while ((size_t{1} << l) < bytes) ++l;
    return l;
  }
  // Byte-sized classes live in their own range above the table classes
  // (table classes are 2 * cap_log2 + kind <= ~60).
  static int ByteClass(size_t bytes) { return 64 + ByteClassLog2(bytes); }

  void Grow(size_t need) {
    const int log2 = ByteClassLog2(need * sizeof(T));
    const size_t bytes = size_t{1} << log2;
    T* bigger = static_cast<T*>(pool_->Acquire(64 + log2, bytes));
    if (data_ != nullptr) {
      std::memcpy(static_cast<void*>(bigger), static_cast<void*>(data_),
                  size_ * sizeof(T));  // Relocation, not copy construction.
      pool_->Release(data_, ByteClass(cap_ * sizeof(T)));
    }
    data_ = bigger;
    cap_ = bytes / sizeof(T);
  }

  DistPool* pool_ = nullptr;
  T* data_ = nullptr;
  size_t size_ = 0;
  size_t cap_ = 0;
};

/// Bitset over the global query-slot space (kMaxConjunctionSlots = 128
/// slots); the engine's live-slot analysis stores one per p-document node.
struct SlotSet {
  std::array<uint64_t, 2> b{};
  void Set(int s) { b[s >> 6] |= uint64_t{1} << (s & 63); }
  void UnionWith(const SlotSet& o) {
    b[0] |= o.b[0];
    b[1] |= o.b[1];
  }
  bool Any() const { return (b[0] | b[1]) != 0; }
  int Count() const {
    return __builtin_popcountll(b[0]) + __builtin_popcountll(b[1]);
  }
  bool operator==(const SlotSet& o) const { return b == o.b; }
};

/// Reusable per-document analysis buffers (live-slot pass, frame lists):
/// kept in the scratch so repeated engine runs re-fill warm capacity
/// instead of reallocating vectors sized by |P̂| every call.
struct EngineBuffers {
  std::vector<SlotSet> live;
  std::vector<uint8_t> wide;
  std::vector<int32_t> region_slot;
  std::vector<int8_t> slots_flat;
  std::vector<uint8_t> slots_len;
  std::vector<uint64_t> obs;  // Upward-observable bit masks (narrow keys).
  std::vector<uint8_t> skip;  // Subtree-cache plan (compute / hit / covered).
  std::vector<int32_t> active_slot;  // Compact slot over non-covered nodes.
  // Dense per-label index over live ordinary nodes (-1 elsewhere): the
  // per-run candidate-mask table is indexed by it instead of hashing the
  // label at every node.
  std::vector<int32_t> label_slot;
  int32_t label_count = 0;
  // Analysis cache tag: when the same (document *structure* version, query
  // structure signature) comes back — steady-state serving of one query
  // set over one document, including across probability-only deltas, which
  // do not bump the structure version — the buffers above are still valid
  // and the engine skips the whole pass. The signature (slot labels, kid
  // edges, slot roles) is compared outright, not merely hashed, so a
  // collision can never serve stale analysis. The obs masks share the key:
  // they read only tree shape, labels and the query.
  uint64_t cached_structure = 0;
  std::vector<uint32_t> cached_query_sig;
  int32_t cached_region_count = 0;
  bool cached_uniform = false;
  bool cache_valid = false;
  bool obs_valid = false;  // obs[] filled for the cached key.
};

/// Staging buffers for the vector convolution kernel, reused across every
/// convolution of a scratch's lifetime (they survive BeginRun — the dense
/// array's zero-maintenance invariant must hold across runs):
///   * row_*: one convolution row (left entry × right lanes) staged by the
///     kernel before insertion;
///   * dense/seen/touched: the scatter-accumulate array for small narrow
///     frames (keys < 2^kDenseConvBits index `dense` directly; `seen` marks
///     first touches; `touched` lists them in first-touch order). `dense`
///     and `seen` are kept all-zero BETWEEN convolutions — each convolution
///     clears exactly the entries it touched.
struct ConvScratch {
  std::vector<uint64_t> row_keys;
  std::vector<WideKey> wrow_keys;
  std::vector<double> row_vals;
  std::vector<double> dense;
  std::vector<uint8_t> seen;
  std::vector<uint32_t> touched;
};

/// Per-session scratch state for the exact DP: the arena, the block pool on
/// top of it, and the profile counters. Owned by ExactDpBackend (one per
/// EvalSession, hence one per thread); the free engine functions make a
/// transient one when the caller has none. BeginRun/EndRun bracket one
/// engine pass: memory is recycled across passes, counters accumulate.
class DpScratch {
 public:
  DpScratch() : pool_(&arena_, &profile_) {}

  DistPool* pool() { return &pool_; }
  DistProfile* profile() { return &profile_; }
  const DistProfile& profile() const { return profile_; }
  EngineBuffers* buffers() { return &buffers_; }
  ConvScratch* conv() { return &conv_; }

  void BeginRun() {
    pool_.Clear();
    arena_.Reset();
    ++profile_.runs;
  }

  void EndRun() {
    if (arena_.allocated_bytes() > profile_.arena_peak_bytes) {
      profile_.arena_peak_bytes = arena_.allocated_bytes();
    }
  }

 private:
  Arena arena_;
  DistProfile profile_;
  DistPool pool_;
  EngineBuffers buffers_;
  ConvScratch conv_;
};

}  // namespace pxv

#endif  // PXV_PROB_DIST_H_
