#include "prob/appearance.h"

#include "pxml/worlds.h"

namespace pxv {

double NodeAppearanceProbability(const PDocument& pd, NodeId n) {
  return AppearanceProbability(pd, n);
}

}  // namespace pxv
