// Exact probabilistic evaluation of conjunctions of tree patterns over
// p-documents — the substrate the paper takes from Kimelfeld–Kosharovsky–
// Sagiv [22]: PTime in the size of the p-document (data complexity),
// worst-case exponential in query size.
//
// The engine computes Pr over random worlds P ~ ⟦P̂⟧ that *every* goal
// pattern embeds into P with root ↦ root and, when a goal carries an anchor
// set, with its output node mapped into the anchor set. Anchoring expresses
// node-selection semantics: Pr(n ∈ q(P)) is the anchored match probability
// with anchor {n} — the paper's own Id(n) device, applied internally.
// Conjunctions cover TP∩ evaluation and the joint events e_i ∩ e_j of §4.4.
//
// Algorithm: one bottom-up pass over the p-document. The state contributed
// by a region to its parent is the pair of query-node sets
//   A = { s : the goal subtree rooted at s embeds with s ↦ this node },
//   D = { s : it embeds at-or-below this node },
// and the DP carries a sparse distribution over (A, D) pairs. Sibling
// regions of a local PrXML model are probabilistically independent given the
// parent appears, so children distributions combine by union-convolution;
// mux/ind/det/exp nodes mix or convolve their children's distributions with
// the edge probabilities. Sparsity keeps the state count small: fully
// deterministic regions collapse to a single state.
//
// Batched anchored evaluation: the per-node selection probabilities
// Pr(n ∈ q(P)) for *all* label-matching candidates n are computed in the
// same single pass. Alongside the base (A, D) distribution, each region
// carries one small distribution per candidate anchor inside it, whose keys
// additionally hold "starred" bits for the main-branch query nodes: A*(s)
// means the subtree at s embeds here *with out routed to that anchor*. The
// starred chain pins the output mapping exactly (the inside–outside device
// of tractable-lineage evaluation over treelike instances), so the root
// reads off every candidate's anchored acceptance at once instead of
// re-running the DP per candidate.

#ifndef PXV_PROB_ENGINE_H_
#define PXV_PROB_ENGINE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "prob/dist.h"
#include "pxml/pdocument.h"
#include "tp/pattern.h"

namespace pxv {

/// One conjunct: a pattern, optionally with its output anchored to a set of
/// p-document nodes (ordinary nodes of `pd`).
struct Goal {
  const Pattern* pattern = nullptr;
  /// When non-null, embeddings must map out(pattern) into this set.
  const std::vector<NodeId>* anchor = nullptr;
};

/// One entry of q(P̂).
struct NodeProb {
  NodeId node = kNullNode;
  double prob = 0;
};

/// Hard cap on the packed DP state: total query slots per evaluation. Every
/// pattern node of every conjunct or batched member costs exactly one slot
/// (a batched member's main-branch nodes take a starred slot *instead of* a
/// base one, not in addition).
inline constexpr int kMaxConjunctionSlots = 128;

/// Per-subtree key narrowing threshold: a p-document subtree whose live
/// slot set (slots whose pattern label occurs in the subtree) fits in this
/// many slots runs its whole DP algebra on a 1-word key; larger live sets
/// fall back to the 256-bit WideKey.
inline constexpr int kNarrowSlotCap = 32;

/// Incremental per-subtree memoization for the batched exact DP (delta
/// updates, see pxml/pdocument.h). The cache persists across engine runs —
/// it owns its own arena + block pool, separate from the per-run DpScratch —
/// and maps (query signature, p-document node, subtree version) to the
/// node's finished DP region (base FlatDist + tracked anchor FlatDists).
/// On a re-run after a mutation, every node whose subtree version still
/// matches its entry is served from the cache and its whole subtree is
/// skipped, so the pass costs O(depth × |delta|) region computations
/// instead of O(|P̂|). Entries are memcpy-cloned in both directions
/// (FlatDist::CloneInto), so an incremental run produces bit-identical
/// probabilities to a from-scratch run.
///
/// Validity: version stamps are process-unique counter draws shared only by
/// copies (pxml/pdocument.h), so a matching (node, version) pair implies an
/// identical subtree — except that under a *uniform narrow frame* the key
/// bit layout and the dead-bit projection masks also depend on the root's
/// live slot set. The cache records that frame epoch per signature and
/// flushes the signature's entries when it shifts (e.g. a mutation removed
/// a query label's last occurrence), falling back to one full recompute.
///
/// The type is opaque (defined in engine.cc next to the kernel types);
/// ExactDpBackend owns one. Like the scratch, a cache is single-threaded
/// state.
class SubtreeCache;
struct SubtreeCacheDeleter {
  void operator()(SubtreeCache* cache) const;
};
using SubtreeCachePtr = std::unique_ptr<SubtreeCache, SubtreeCacheDeleter>;
SubtreeCachePtr MakeSubtreeCache();

/// Observability counters for a SubtreeCache (tests, bench --profile).
struct SubtreeCacheStats {
  uint64_t hits = 0;        ///< Subtrees served from the cache (skipped).
  uint64_t stores = 0;      ///< Regions captured into the cache.
  uint64_t flushes = 0;     ///< Signature flushes (frame epoch shifted).
  uint64_t signatures = 0;  ///< Distinct query signatures currently held.
  uint64_t entries = 0;     ///< Cached (node, region) entries currently held.
  uint64_t invalidations = 0;  ///< Whole-cache invalidations (compaction).
};
SubtreeCacheStats GetSubtreeCacheStats(const SubtreeCache& cache);

/// Drops every memoized entry (all signatures) and reclaims the cache's
/// arena wholesale, keeping the cache object — and its cumulative counters
/// — alive. The scoped invalidation PDocument::Compact() requires: entries
/// are keyed by NodeId and only *validated* by subtree version, and
/// versions are shared along a stamped spine, so after an id remap a stale
/// entry could collide with a remapped node of equal version. Flushing the
/// memo (and nothing else: result caches and analysis buffers re-key off
/// the fresh uid/structure_version by themselves) is exactly the scope a
/// compaction invalidates.
void InvalidateSubtreeCache(SubtreeCache* cache);

/// Resolved vector kernel table (prob/simd.h). Opaque here; the engine
/// calls through it for every convolution row / scaled sweep.
struct KernelOps;

/// Lineage-circuit gate sink (prob/circuit.h). Opaque here; when
/// EngineOptions::recorder is set, the batched anchored passes stream every
/// floating-point operation they perform into it.
class CircuitRecorder;

/// Exact-DP tuning knobs, threaded from ProbBackend/EvalSession.
struct EngineOptions {
  /// When > 0, distribution entries with mass <= prune_eps are dropped as
  /// the DP runs (support pruning). 0 keeps the DP exact. See
  /// prob/backend.h for the resulting error bound.
  double prune_eps = 0.0;
  /// Incremental per-subtree memo. Only consulted by the batched anchored
  /// paths (BatchAnchoredProbabilities / BatchManyProbabilities) with no
  /// fixed-anchor goals and prune_eps == 0; requires `cache_signature`.
  SubtreeCache* subtree_cache = nullptr;
  /// Stable identity of the query set being evaluated (canonical pattern
  /// strings) — the cache's first key component.
  const std::string* cache_signature = nullptr;
  /// Vector kernel to run the convolution sweeps on. Callers that hold one
  /// (ExactDpBackend resolves once at construction) pass it through; null
  /// falls back to the process-wide ActiveKernel().
  const KernelOps* kernel = nullptr;
  /// Sibling-product segment trees at high-fanout Combine sites: O(log
  /// fanout) sibling products per incremental delta instead of a full
  /// prefix/suffix rebuild. Exact in all modes (association is fixed per
  /// site regardless of caching); off only for A/B benchmarking.
  bool sibling_tree = true;
  /// When set, the batched anchored passes record their full arithmetic
  /// into this lineage-circuit sink (prob/circuit.h). Requires
  /// prune_eps == 0 and subtree_cache == nullptr (circuit validity depends
  /// on the support structure being value-independent; see circuit.h). Off
  /// by default; the hook costs one predictable null check per recorded
  /// operation when disabled.
  CircuitRecorder* recorder = nullptr;
};

/// DP slots a plain conjunction needs (sum of pattern sizes). Callers gate
/// on this against kMaxConjunctionSlots before invoking the engine.
int ConjunctionSlotCount(const std::vector<Goal>& goals);

/// DP slots a batched evaluation needs: every member node gets one slot,
/// main-branch nodes get a starred slot instead of a base one, predicate
/// nodes a base one.
int BatchSlotCount(const std::vector<const Pattern*>& members);

/// Pr(every goal embeds into a random world of pd, respecting anchors).
/// The scratch-threaded overloads reuse `scratch`'s arena and table pool
/// across calls (the ProbBackend path); the plain overloads make a
/// transient scratch.
double ConjunctionProbability(const PDocument& pd,
                              const std::vector<Goal>& goals);
double ConjunctionProbability(const PDocument& pd,
                              const std::vector<Goal>& goals,
                              DpScratch* scratch,
                              const EngineOptions& options = {});

/// Pr(n ∈ (m1 ∩ … ∩ mk)(P)) for every candidate node n — ordinary nodes
/// labeled with the members' shared output label — computed in one pass over
/// the p-document. Entries with probability 0 are omitted; ascending node
/// id. Equivalent to anchoring every member to {n} and calling
/// ConjunctionProbability once per candidate, but a single DP pass instead
/// of one per candidate.
std::vector<NodeProb> BatchAnchoredProbabilities(
    const PDocument& pd, const std::vector<const Pattern*>& members);
std::vector<NodeProb> BatchAnchoredProbabilities(
    const PDocument& pd, const std::vector<const Pattern*>& members,
    DpScratch* scratch, const EngineOptions& options = {});

/// Single-pattern convenience: q(P̂) in one pass.
std::vector<NodeProb> BatchSelectionProbabilities(const PDocument& pd,
                                                  const Pattern& q);

/// result[i] = q_i(P̂) for every member — k same-output-label queries
/// answered by ONE bottom-up pass instead of k: the joint DP carries all
/// members' slots, and each member's selection probabilities are read off
/// its own acceptance mask at the root (the other members' bits marginalize
/// out). Precondition: every member shares OutLabel() (group by output
/// label first — view materialization does). Costs one pass with
/// Σ|q_i| slots, so callers should chunk groups to kMaxConjunctionSlots.
std::vector<std::vector<NodeProb>> BatchManyProbabilities(
    const PDocument& pd, const std::vector<const Pattern*>& members);
std::vector<std::vector<NodeProb>> BatchManyProbabilities(
    const PDocument& pd, const std::vector<const Pattern*>& members,
    DpScratch* scratch, const EngineOptions& options = {});

/// Test-only reference implementations (prob/engine_reference.cc): the
/// pre-flat-kernel hash-map DP, kept temporarily so the equivalence suite
/// can pin the rewritten kernel against the code it replaced. Do not call
/// from production paths; slated for removal once the kernel has soaked.
double ReferenceConjunctionProbability(const PDocument& pd,
                                       const std::vector<Goal>& goals);
std::vector<NodeProb> ReferenceBatchAnchoredProbabilities(
    const PDocument& pd, const std::vector<const Pattern*>& members);

}  // namespace pxv

#endif  // PXV_PROB_ENGINE_H_
