// Exact probabilistic evaluation of conjunctions of tree patterns over
// p-documents — the substrate the paper takes from Kimelfeld–Kosharovsky–
// Sagiv [22]: PTime in the size of the p-document (data complexity),
// worst-case exponential in query size.
//
// The engine computes Pr over random worlds P ~ ⟦P̂⟧ that *every* goal
// pattern embeds into P with root ↦ root and, when a goal carries an anchor
// set, with its output node mapped into the anchor set. Anchoring expresses
// node-selection semantics: Pr(n ∈ q(P)) is the anchored match probability
// with anchor {n} — the paper's own Id(n) device, applied internally.
// Conjunctions cover TP∩ evaluation and the joint events e_i ∩ e_j of §4.4.
//
// Algorithm: one bottom-up pass over the p-document. The state contributed
// by a region to its parent is the pair of query-node sets
//   A = { s : the goal subtree rooted at s embeds with s ↦ this node },
//   D = { s : it embeds at-or-below this node },
// and the DP carries a sparse distribution over (A, D) pairs. Sibling
// regions of a local PrXML model are probabilistically independent given the
// parent appears, so children distributions combine by union-convolution;
// mux/ind/det/exp nodes mix or convolve their children's distributions with
// the edge probabilities. Sparsity keeps the state count small: fully
// deterministic regions collapse to a single state.

#ifndef PXV_PROB_ENGINE_H_
#define PXV_PROB_ENGINE_H_

#include <vector>

#include "pxml/pdocument.h"
#include "tp/pattern.h"

namespace pxv {

/// One conjunct: a pattern, optionally with its output anchored to a set of
/// p-document nodes (ordinary nodes of `pd`).
struct Goal {
  const Pattern* pattern = nullptr;
  /// When non-null, embeddings must map out(pattern) into this set.
  const std::vector<NodeId>* anchor = nullptr;
};

/// Pr(every goal embeds into a random world of pd, respecting anchors).
/// Total query size (sum of pattern sizes) is limited to 64 nodes.
double ConjunctionProbability(const PDocument& pd,
                              const std::vector<Goal>& goals);

}  // namespace pxv

#endif  // PXV_PROB_ENGINE_H_
