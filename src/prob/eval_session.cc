#include "prob/eval_session.h"

#include <utility>

#include "util/check.h"
#include "util/numeric.h"
#include "util/strings.h"

namespace pxv {

EvalSession::EvalSession(const PDocument& pd, EvalOptions options)
    : pd_(&pd), options_(options), doc_uid_(pd.uid()) {
  PXV_CHECK(!pd.empty());
  ExactDpOptions dp_options;
  dp_options.prune_eps = options_.prune_eps;
  dp_options.cache_subtrees = options_.cache_subtrees;
  dp_options.force_scalar = options_.force_scalar;
  dp_options.sibling_tree = options_.sibling_tree;
  switch (options_.backend) {
    case BackendKind::kAuto:
      chain_.push_back(std::make_unique<ExactDpBackend>(dp_options));
      chain_.push_back(
          std::make_unique<NaiveBackend>(options_.naive_max_worlds));
      break;
    case BackendKind::kExact:
      chain_.push_back(std::make_unique<ExactDpBackend>(dp_options));
      break;
    case BackendKind::kNaive:
      chain_.push_back(
          std::make_unique<NaiveBackend>(options_.naive_max_worlds));
      break;
    case BackendKind::kCircuit: {
      CircuitBackendOptions circuit_options;
      circuit_options.force_scalar = options_.force_scalar;
      circuit_options.sibling_tree = options_.sibling_tree;
      chain_.push_back(std::make_unique<CircuitBackend>(circuit_options));
      chain_.push_back(
          std::make_unique<NaiveBackend>(options_.naive_max_worlds));
      break;
    }
  }
  switch (options_.backend) {
    case BackendKind::kNaive:
      break;
    case BackendKind::kCircuit:
      dp_profile_ =
          &static_cast<CircuitBackend*>(chain_.front().get())->profile();
      break;
    default:
      dp_profile_ =
          &static_cast<ExactDpBackend*>(chain_.front().get())->profile();
      break;
  }
}

void EvalSession::MaybeInvalidate() {
  if (pd_->uid() == doc_uid_) return;
  // The document mutated since the last evaluation: memoized q(P̂) results
  // describe its previous contents. The subtree memo inside the exact-DP
  // backend stays — it is version-checked per node, which is exactly what
  // makes the next evaluation incremental.
  tp_cache_.clear();
  doc_uid_ = pd_->uid();
}

SubtreeCacheStats EvalSession::subtree_cache_stats() const {
  if (options_.backend == BackendKind::kNaive ||
      options_.backend == BackendKind::kCircuit) {
    return {};
  }
  return static_cast<const ExactDpBackend*>(chain_.front().get())
      ->subtree_cache_stats();
}

void EvalSession::InvalidateSubtreeMemo() {
  // The circuit backend needs no scoped invalidation here: Compact() draws
  // a fresh structure_version, which already forces a recompile.
  if (options_.backend == BackendKind::kNaive ||
      options_.backend == BackendKind::kCircuit) {
    return;
  }
  static_cast<ExactDpBackend*>(chain_.front().get())->InvalidateSubtreeCache();
}

double EvalSession::Conjunction(const std::vector<Goal>& goals) {
  std::string declines;
  for (const auto& backend : chain_) {
    StatusOr<double> p = backend->Conjunction(*pd_, goals);
    if (p.ok()) {
      last_backend_ = backend->name();
      return *p;
    }
    declines += std::string("\n  ") + backend->name() + ": " +
                p.status().message();
  }
  PXV_CHECK(false) << "every backend declined the conjunction:" << declines;
  return 0;
}

void EvalSession::ComputeBatch(const std::vector<const Pattern*>& members,
                               TpEntry* e) {
  std::string declines;
  for (const auto& backend : chain_) {
    StatusOr<std::vector<NodeProb>> r = backend->BatchAnchored(*pd_, members);
    if (!r.ok()) {
      declines += std::string("\n  ") + backend->name() + ": " +
                  r.status().message();
      continue;
    }
    last_backend_ = backend->name();
    e->by_node.clear();
    e->by_node_built = false;  // Built lazily on the first point lookup.
    e->results.clear();
    e->results.reserve(r->size());
    for (const NodeProb& np : *r) {
      if (np.prob > kProbEps) e->results.push_back(np);
    }
    e->computed = true;
    return;
  }
  PXV_CHECK(false) << "every backend declined the batch:" << declines;
}

const std::vector<NodeId>& EvalSession::NodesWithLabel(Label l) const {
  if (index_ == nullptr || index_uid_ != pd_->uid()) {
    index_ = std::make_unique<LabelIndex>(*pd_);
    index_uid_ = pd_->uid();
  }
  return index_->Nodes(l);
}

EvalSession::TpEntry& EvalSession::Entry(const Pattern& q) {
  if (!options_.cache_results) {
    // One stable scratch slot: its contents are overwritten by the next
    // evaluation, but references handed out never dangle.
    scratch_.results.clear();
    scratch_.by_node.clear();
    scratch_.point_queries = 0;
    scratch_.computed = false;
    return scratch_;
  }
  return tp_cache_[q.CanonicalString()];
}

void EvalSession::PrefetchTP(const std::vector<const Pattern*>& queries) {
  if (!options_.cache_results) return;
  MaybeInvalidate();
  // Group the not-yet-cached queries by output label; each group is served
  // by one joint pass, chunked to the DP slot cap.
  std::unordered_map<Label, std::vector<const Pattern*>> groups;
  for (const Pattern* q : queries) {
    PXV_CHECK(q != nullptr);
    if (!Entry(*q).computed) groups[q->OutLabel()].push_back(q);
  }
  for (auto& [label, group] : groups) {
    size_t begin = 0;
    while (begin < group.size()) {
      size_t end = begin;
      int slots = 0;
      while (end < group.size() &&
             (end == begin || slots + group[end]->size() <= kMaxConjunctionSlots)) {
        slots += group[end]->size();
        ++end;
      }
      const std::vector<const Pattern*> chunk(group.begin() + begin,
                                              group.begin() + end);
      begin = end;
      if (chunk.size() < 2) continue;  // A lone query gains nothing.
      for (const auto& backend : chain_) {
        StatusOr<std::vector<std::vector<NodeProb>>> r =
            backend->BatchAnchoredMany(*pd_, chunk);
        if (!r.ok()) continue;
        last_backend_ = backend->name();
        for (size_t i = 0; i < chunk.size(); ++i) {
          TpEntry& e = Entry(*chunk[i]);
          e.by_node.clear();
          e.by_node_built = false;
          e.results.clear();
          e.results.reserve((*r)[i].size());
          for (const NodeProb& np : (*r)[i]) {
            if (np.prob > kProbEps) e.results.push_back(np);
          }
          e.computed = true;
        }
        break;  // Chunk served; declines fall through to EvaluateTP later.
      }
    }
  }
}

std::vector<std::vector<NodeProb>> EvalSession::EvaluateAll(
    const std::vector<const Pattern*>& queries) {
  // The circuit backend shares one multi-root circuit across the queries
  // already; prefetching would register extra chunked 'M'-mode recordings
  // in the same pool for no gain. Other backends benefit from the joint
  // passes.
  if (options_.backend != BackendKind::kCircuit) PrefetchTP(queries);
  std::vector<std::vector<NodeProb>> out;
  out.reserve(queries.size());
  for (const Pattern* q : queries) {
    PXV_CHECK(q != nullptr);
    out.push_back(EvaluateTP(*q));
  }
  return out;
}

const CircuitBackend* EvalSession::circuit_backend() const {
  if (options_.backend != BackendKind::kCircuit) return nullptr;
  return static_cast<const CircuitBackend*>(chain_.front().get());
}

const std::vector<NodeProb>& EvalSession::EvaluateTP(const Pattern& q) {
  MaybeInvalidate();
  TpEntry& e = Entry(q);
  if (e.computed) {
    ++cache_hits_;
  } else {
    ComputeBatch({&q}, &e);
  }
  return e.results;
}

std::vector<NodeProb> EvalSession::EvaluateTPI(const TpIntersection& q) {
  PXV_CHECK(!q.empty());
  MaybeInvalidate();
  std::vector<const Pattern*> members;
  members.reserve(q.size());
  for (const Pattern& m : q.members()) members.push_back(&m);
  TpEntry scratch;
  ComputeBatch(members, &scratch);
  return std::move(scratch.results);
}

double EvalSession::SelectionProbability(const Pattern& q, NodeId n) {
  MaybeInvalidate();
  TpEntry& e = Entry(q);
  if (!e.computed && ++e.point_queries >= 2) {
    // A second point query on the same pattern: answer the whole batch once,
    // every later point is a lookup.
    ComputeBatch({&q}, &e);
  }
  if (e.computed) {
    ++cache_hits_;
    if (!e.by_node_built) {
      // Deferred from ComputeBatch: batch-only consumers (materialization)
      // never pay for the point-lookup index.
      e.by_node.reserve(e.results.size());
      for (const NodeProb& np : e.results) e.by_node[np.node] = np.prob;
      e.by_node_built = true;
    }
    const auto it = e.by_node.find(n);
    return it == e.by_node.end() ? 0.0 : it->second;
  }
  std::vector<NodeId> anchor{n};
  return Conjunction({{&q, &anchor}});
}

double EvalSession::SelectionProbabilityAnyOf(
    const Pattern& q, const std::vector<NodeId>& anchor) {
  if (anchor.empty()) return 0;
  MaybeInvalidate();
  return Conjunction({{&q, &anchor}});
}

double EvalSession::JointProbability(const std::vector<Goal>& goals) {
  if (goals.empty()) return 1.0;
  MaybeInvalidate();
  return Conjunction(goals);
}

double EvalSession::BooleanProbability(const Pattern& q) {
  MaybeInvalidate();
  return Conjunction({{&q, nullptr}});
}

namespace {

// Mirrors the validation a committed SetEdgeProb / SetExpDistribution batch
// would pass through PDocument::Validate, without building the copy:
// probabilities in [0, 1], mux children keep Σp ≤ 1, exp subsets keep
// Σp ≤ 1 — all evaluated with the overrides applied.
Status ValidateWhatIf(
    const PDocument& pd,
    const std::vector<std::pair<CircuitInput, double>>& changes) {
  std::unordered_map<NodeId, double> edge_over;
  std::unordered_map<uint64_t, double> exp_over;  // node << 24 | slot
  for (const auto& [in, p] : changes) {
    if (!(p >= 0.0 && p <= 1.0)) {
      return Status::Error("what-if probability " + FormatProbability(p) +
                           " outside [0, 1]");
    }
    if (in.kind == CircuitInput::Kind::kEdgeProb) {
      if (in.node == pd.root()) {
        return Status::Error("what-if: the root has no edge probability");
      }
      edge_over[in.node] = p;
    } else {
      if (pd.kind(in.node) != PKind::kExp ||
          size_t(in.index) >= pd.exp_distribution(in.node).size()) {
        return Status::Error("what-if: invalid exp slot address");
      }
      exp_over[(uint64_t(uint32_t(in.node)) << 24) | uint32_t(in.index)] = p;
    }
  }
  for (const auto& [n, p] : edge_over) {
    const NodeId parent = pd.parent(n);
    if (pd.kind(parent) != PKind::kMux) continue;
    double sum = 0;
    for (NodeId c : pd.children(parent)) {
      const auto it = edge_over.find(c);
      sum += it == edge_over.end() ? pd.edge_prob(c) : it->second;
    }
    if (sum > 1.0 + 1e-9) {
      return Status::Error("what-if: mux children probabilities sum to " +
                           FormatProbability(sum) + " > 1");
    }
  }
  for (const auto& [key, p] : exp_over) {
    const NodeId n = NodeId(key >> 24);
    const auto& dist = pd.exp_distribution(n);
    double sum = 0;
    for (size_t i = 0; i < dist.size(); ++i) {
      const auto it = exp_over.find((uint64_t(uint32_t(n)) << 24) | uint32_t(i));
      sum += it == exp_over.end() ? dist[i].second : it->second;
    }
    if (sum > 1.0 + 1e-9) {
      return Status::Error("what-if: exp distribution sums to " +
                           FormatProbability(sum) + " > 1");
    }
  }
  return Status::Ok();
}

}  // namespace

StatusOr<std::vector<NodeProb>> EvalSession::WhatIf(
    const Pattern& q,
    const std::vector<std::pair<CircuitInput, double>>& changes) {
  MaybeInvalidate();
  if (Status s = ValidateWhatIf(*pd_, changes); !s.ok()) return s;
  if (options_.backend == BackendKind::kCircuit) {
    auto* backend = static_cast<CircuitBackend*>(chain_.front().get());
    StatusOr<std::vector<NodeProb>> r = backend->WhatIf(*pd_, {&q}, changes);
    if (r.ok()) {
      last_backend_ = backend->name();
      // The same > kProbEps inclusion filter ComputeBatch applies, so the
      // circuit route and the mutated-copy route return identical answers.
      std::vector<NodeProb> out;
      out.reserve(r->size());
      for (const NodeProb& np : *r) {
        if (np.prob > kProbEps) out.push_back(np);
      }
      return out;
    }
    // Slot/gate-cap decline or a flipped guard: the recorded arithmetic is
    // not valid at the overridden values — fall through to the copy.
  }
  // Fallback: commit the overrides to a private copy (same arena layout, so
  // node ids carry over) and evaluate it from scratch.
  PDocument copy = *pd_;
  {
    PDocument::MutationBatch batch(&copy);
    std::unordered_map<NodeId, std::vector<std::pair<std::vector<int>, double>>>
        exp_dists;
    for (const auto& [in, p] : changes) {
      if (in.kind == CircuitInput::Kind::kEdgeProb) {
        copy.SetEdgeProb(in.node, p);
      } else {
        // Read-modify-write the whole distribution; batch multiple slot
        // overrides of one node into a single SetExpDistribution.
        auto it =
            exp_dists.try_emplace(in.node, copy.exp_distribution(in.node))
                .first;
        it->second[size_t(in.index)].second = p;
      }
    }
    for (auto& [n, dist] : exp_dists) {
      copy.SetExpDistribution(n, std::move(dist));
    }
  }
  EvalOptions opts = options_;
  opts.backend = BackendKind::kAuto;
  opts.cache_results = false;
  opts.cache_subtrees = false;
  EvalSession hypothetical(copy, opts);
  std::vector<NodeProb> out = hypothetical.EvaluateTP(q);
  last_backend_ = hypothetical.last_backend();
  return out;
}

std::vector<LineageCircuit::Sensitivity> EvalSession::Sensitivities(
    const Pattern& q, NodeId n) {
  PXV_CHECK(options_.backend == BackendKind::kCircuit)
      << "Sensitivities requires BackendKind::kCircuit";
  MaybeInvalidate();
  auto* backend = static_cast<CircuitBackend*>(chain_.front().get());
  StatusOr<std::vector<LineageCircuit::Sensitivity>> s =
      backend->Sensitivities(*pd_, {&q}, n);
  PXV_CHECK(s.ok()) << s.status().message();
  last_backend_ = backend->name();
  return *std::move(s);
}

}  // namespace pxv
