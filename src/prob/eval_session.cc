#include "prob/eval_session.h"

#include <utility>

#include "util/check.h"
#include "util/numeric.h"

namespace pxv {

EvalSession::EvalSession(const PDocument& pd, EvalOptions options)
    : pd_(&pd), options_(options) {
  PXV_CHECK(!pd.empty());
  switch (options_.backend) {
    case BackendKind::kAuto:
      chain_.push_back(std::make_unique<ExactDpBackend>());
      chain_.push_back(
          std::make_unique<NaiveBackend>(options_.naive_max_worlds));
      break;
    case BackendKind::kExact:
      chain_.push_back(std::make_unique<ExactDpBackend>());
      break;
    case BackendKind::kNaive:
      chain_.push_back(
          std::make_unique<NaiveBackend>(options_.naive_max_worlds));
      break;
  }
}

double EvalSession::Conjunction(const std::vector<Goal>& goals) {
  std::string declines;
  for (const auto& backend : chain_) {
    StatusOr<double> p = backend->Conjunction(*pd_, goals);
    if (p.ok()) {
      last_backend_ = backend->name();
      return *p;
    }
    declines += std::string("\n  ") + backend->name() + ": " +
                p.status().message();
  }
  PXV_CHECK(false) << "every backend declined the conjunction:" << declines;
  return 0;
}

void EvalSession::ComputeBatch(const std::vector<const Pattern*>& members,
                               TpEntry* e) {
  std::string declines;
  for (const auto& backend : chain_) {
    StatusOr<std::vector<NodeProb>> r = backend->BatchAnchored(*pd_, members);
    if (!r.ok()) {
      declines += std::string("\n  ") + backend->name() + ": " +
                  r.status().message();
      continue;
    }
    last_backend_ = backend->name();
    e->by_node.clear();
    e->results.clear();
    for (const NodeProb& np : *r) {
      e->by_node[np.node] = np.prob;
      if (np.prob > kProbEps) e->results.push_back(np);
    }
    e->computed = true;
    return;
  }
  PXV_CHECK(false) << "every backend declined the batch:" << declines;
}

const std::vector<NodeId>& EvalSession::NodesWithLabel(Label l) const {
  if (index_ == nullptr) index_ = std::make_unique<LabelIndex>(*pd_);
  return index_->Nodes(l);
}

EvalSession::TpEntry& EvalSession::Entry(const Pattern& q) {
  if (!options_.cache_results) {
    // One stable scratch slot: its contents are overwritten by the next
    // evaluation, but references handed out never dangle.
    scratch_.results.clear();
    scratch_.by_node.clear();
    scratch_.point_queries = 0;
    scratch_.computed = false;
    return scratch_;
  }
  return tp_cache_[q.CanonicalString()];
}

const std::vector<NodeProb>& EvalSession::EvaluateTP(const Pattern& q) {
  TpEntry& e = Entry(q);
  if (e.computed) {
    ++cache_hits_;
  } else {
    ComputeBatch({&q}, &e);
  }
  return e.results;
}

std::vector<NodeProb> EvalSession::EvaluateTPI(const TpIntersection& q) {
  PXV_CHECK(!q.empty());
  std::vector<const Pattern*> members;
  members.reserve(q.size());
  for (const Pattern& m : q.members()) members.push_back(&m);
  TpEntry scratch;
  ComputeBatch(members, &scratch);
  return std::move(scratch.results);
}

double EvalSession::SelectionProbability(const Pattern& q, NodeId n) {
  TpEntry& e = Entry(q);
  if (!e.computed && ++e.point_queries >= 2) {
    // A second point query on the same pattern: answer the whole batch once,
    // every later point is a lookup.
    ComputeBatch({&q}, &e);
  }
  if (e.computed) {
    ++cache_hits_;
    const auto it = e.by_node.find(n);
    return it == e.by_node.end() ? 0.0 : it->second;
  }
  std::vector<NodeId> anchor{n};
  return Conjunction({{&q, &anchor}});
}

double EvalSession::SelectionProbabilityAnyOf(
    const Pattern& q, const std::vector<NodeId>& anchor) {
  if (anchor.empty()) return 0;
  return Conjunction({{&q, &anchor}});
}

double EvalSession::JointProbability(const std::vector<Goal>& goals) {
  if (goals.empty()) return 1.0;
  return Conjunction(goals);
}

double EvalSession::BooleanProbability(const Pattern& q) {
  return Conjunction({{&q, nullptr}});
}

}  // namespace pxv
