#include "prob/query_eval.h"

#include "util/check.h"

namespace pxv {
namespace {

constexpr double kEps = 1e-12;

std::vector<NodeId> CandidateNodes(const PDocument& pd, Label out_label) {
  std::vector<NodeId> candidates;
  for (NodeId n = 0; n < pd.size(); ++n) {
    if (pd.ordinary(n) && pd.label(n) == out_label) candidates.push_back(n);
  }
  return candidates;
}

}  // namespace

std::vector<NodeProb> EvaluateTP(const PDocument& pd, const Pattern& q) {
  std::vector<NodeProb> result;
  for (NodeId n : CandidateNodes(pd, q.OutLabel())) {
    const double p = SelectionProbability(pd, q, n);
    if (p > kEps) result.push_back({n, p});
  }
  return result;
}

std::vector<NodeProb> EvaluateTPI(const PDocument& pd,
                                  const TpIntersection& q) {
  PXV_CHECK(!q.empty());
  std::vector<NodeProb> result;
  for (NodeId n : CandidateNodes(pd, q.members()[0].OutLabel())) {
    std::vector<NodeId> anchor{n};
    std::vector<Goal> goals;
    goals.reserve(q.size());
    for (const Pattern& m : q.members()) goals.push_back({&m, &anchor});
    const double p = ConjunctionProbability(pd, goals);
    if (p > kEps) result.push_back({n, p});
  }
  return result;
}

double SelectionProbability(const PDocument& pd, const Pattern& q, NodeId n) {
  std::vector<NodeId> anchor{n};
  return ConjunctionProbability(pd, {{&q, &anchor}});
}

double SelectionProbabilityAnyOf(const PDocument& pd, const Pattern& q,
                                 const std::vector<NodeId>& anchor) {
  if (anchor.empty()) return 0;
  return ConjunctionProbability(pd, {{&q, &anchor}});
}

double JointProbability(const PDocument& pd, const std::vector<Goal>& goals) {
  return ConjunctionProbability(pd, goals);
}

double BooleanProbability(const PDocument& pd, const Pattern& q) {
  return ConjunctionProbability(pd, {{&q, nullptr}});
}

}  // namespace pxv
