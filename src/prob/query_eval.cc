#include "prob/query_eval.h"

#include "prob/eval_session.h"
#include "util/check.h"

// Free-function façade: each call routes through a transient EvalSession so
// it hits the same backend seam (and the same batched single-pass engine) as
// the session-based paths. Callers issuing several queries against one
// document should hold an EvalSession instead and reuse its index + caches.

namespace pxv {

std::vector<NodeProb> EvaluateTP(const PDocument& pd, const Pattern& q) {
  EvalSession session(pd);
  return session.EvaluateTP(q);
}

std::vector<NodeProb> EvaluateTPI(const PDocument& pd,
                                  const TpIntersection& q) {
  PXV_CHECK(!q.empty());
  EvalSession session(pd);
  return session.EvaluateTPI(q);
}

double SelectionProbability(const PDocument& pd, const Pattern& q, NodeId n) {
  EvalSession session(pd);
  return session.SelectionProbability(q, n);
}

double SelectionProbabilityAnyOf(const PDocument& pd, const Pattern& q,
                                 const std::vector<NodeId>& anchor) {
  if (anchor.empty()) return 0;
  EvalSession session(pd);
  return session.SelectionProbabilityAnyOf(q, anchor);
}

double JointProbability(const PDocument& pd, const std::vector<Goal>& goals) {
  if (goals.empty()) return 1.0;
  EvalSession session(pd);
  return session.JointProbability(goals);
}

double BooleanProbability(const PDocument& pd, const Pattern& q) {
  EvalSession session(pd);
  return session.BooleanProbability(q);
}

}  // namespace pxv
