// CircuitBackend: the serve side of the lineage-circuit route
// (prob/circuit.h). The first batched evaluation of a query set over a
// document runs the exact DP once with the circuit recorder attached and
// compiles the recording; every later evaluation of the same (document
// structure, query set) pair is served by *value re-propagation* — diff the
// edge/exp probabilities against the circuit's input gates, forward-
// propagate the dirty cone, replay the outputs — instead of re-running the
// DP pass. Results are bit-identical to ExactDpBackend in every mode: the
// cold pass IS an engine pass, and the warm path replays the engine's
// recorded arithmetic verbatim while the guards hold.
//
// Fallback ladder per call:
//   1. document uid unchanged since the last serve      → replay outputs
//   2. structure_version unchanged, exp subset shapes
//      unchanged, guards hold after Propagate           → dirty-cone sweep
//   3. otherwise (structural mutation, reshaped exp
//      distribution, flipped guard)                     → recompile (one
//      fresh recorded DP pass), counted in
//      DistProfile::circuit_recompiles
//   4. recording exceeds max_gates                      → serve that pass's
//      results, cache nothing; later calls pay a plain
//      DP pass each (the circuit route is declined for
//      this query set until the document shrinks)
//
// Conjunction() (fixed-anchor goals) is outside the recordable fragment and
// always delegates to a plain engine pass. Slot-cap declines mirror
// ExactDpBackend so an EvalSession chain falls back identically.

#ifndef PXV_PROB_CIRCUIT_BACKEND_H_
#define PXV_PROB_CIRCUIT_BACKEND_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "prob/backend.h"
#include "prob/circuit.h"

namespace pxv {

struct CircuitBackendOptions {
  /// Pin the portable convolution kernel (see ExactDpOptions::force_scalar).
  bool force_scalar = false;
  /// Sibling-product segment trees in the underlying DP (recorded circuits
  /// inherit the tree's association order; both settings are exact).
  bool sibling_tree = true;
  /// Recordings above this gate count are not compiled or cached; the call
  /// is served by the plain DP pass that produced them. Bounds memory to
  /// ~48 bytes/gate (SoA lanes + CSR index).
  size_t max_gates = size_t{4} << 20;
};

class CircuitBackend : public ProbBackend {
 public:
  CircuitBackend() : CircuitBackend(CircuitBackendOptions{}) {}
  explicit CircuitBackend(const CircuitBackendOptions& options);
  ~CircuitBackend() override;

  const char* name() const override { return "circuit"; }
  /// Fixed-anchor conjunctions are not recordable (the anchored goal set is
  /// baked into the DP's slot layout per call); always a plain DP pass.
  StatusOr<double> Conjunction(const PDocument& pd,
                               const std::vector<Goal>& goals) override;
  StatusOr<std::vector<NodeProb>> BatchAnchored(
      const PDocument& pd,
      const std::vector<const Pattern*>& members) override;
  StatusOr<std::vector<std::vector<NodeProb>>> BatchAnchoredMany(
      const PDocument& pd,
      const std::vector<const Pattern*>& members) override;

  /// ∂Pr(node ∈ answers)/∂p for every circuit input, descending |∂Pr/∂p|:
  /// one reverse adjoint sweep over the compiled circuit for the joint
  /// evaluation of `members` (compiling it first if needed). Empty when
  /// `node` is not an answer candidate; declines like BatchAnchored (slot
  /// cap, gate cap).
  StatusOr<std::vector<LineageCircuit::Sensitivity>> Sensitivities(
      const PDocument& pd, const std::vector<const Pattern*>& members,
      NodeId node);

  /// The compiled circuit serving BatchAnchored(pd, members), compiling it
  /// first if needed — introspection for `pxvq circuit`. The pointer stays
  /// valid until the next call on this backend.
  StatusOr<const LineageCircuit*> Compiled(
      const PDocument& pd, const std::vector<const Pattern*>& members);

  /// Cumulative kernel + circuit counters for every call served by this
  /// backend (circuit_gates / circuit_dirty_gates / circuit_recompiles).
  const DistProfile& profile() const { return scratch_.profile(); }

  /// Name of the vector kernel the underlying DP resolved at construction.
  const char* kernel_name() const;

  /// Compiled circuits currently cached (distinct query sets).
  size_t cached_circuits() const { return cache_.size(); }

 private:
  struct Entry {
    uint64_t structure_version = 0;  ///< Of the recording's document state.
    uint64_t served_uid = 0;  ///< Doc uid the gate values currently reflect.
    std::unique_ptr<LineageCircuit> circuit;
  };

  /// Returns the cache entry for `key` holding a circuit whose gate values
  /// reflect `pd`'s current probabilities, serving the whole ladder above.
  /// Null when the recording exceeded max_gates — `cold` then already holds
  /// the plain pass's member results, which the caller must use.
  template <typename ColdFn>
  Entry* Sync(const PDocument& pd, const std::string& key,
              const std::vector<const Pattern*>& members, ColdFn run_cold,
              std::vector<std::vector<NodeProb>>* cold);

  /// Sync for the joint ('J'-mode) circuit — shared by BatchAnchored,
  /// Sensitivities and Compiled.
  Entry* SyncJoint(const PDocument& pd,
                   const std::vector<const Pattern*>& members,
                   std::vector<std::vector<NodeProb>>* cold);

  /// "J\n" (joint BatchAnchored) or "M\n" (per-member BatchAnchoredMany)
  /// plus the canonical member patterns — the two modes record different
  /// readouts, so they cache separately.
  std::string CacheKey(char mode, const std::vector<const Pattern*>& members);

  EngineOptions RecordOptions(CircuitRecorder* rec) const;

  CircuitBackendOptions options_;
  const KernelOps* kernel_;  // Resolved once at construction (simd.h).
  DpScratch scratch_;
  std::unordered_map<std::string, Entry> cache_;
  std::vector<std::pair<GateId, double>> updates_;  // Diff scratch.
  std::string key_;                                 // Key scratch.
};

}  // namespace pxv

#endif  // PXV_PROB_CIRCUIT_BACKEND_H_
