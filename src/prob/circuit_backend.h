// CircuitBackend: the serve side of the lineage-circuit route
// (prob/circuit.h). The first batched evaluation of a query set over a
// document runs the exact DP once with the circuit recorder attached and
// registers the recording; every later evaluation of the same (document
// structure, query set) pair is served by *value re-propagation* — diff the
// probabilities against the circuit's input gates, forward-propagate the
// dirty cone, replay the outputs — instead of re-running the DP pass.
// Results are bit-identical to ExactDpBackend in every mode: the cold pass
// IS an engine pass, and the warm path replays the engine's recorded
// arithmetic verbatim while the query's guards hold.
//
// All registrations of one backend share ONE multi-root LineageCircuit
// (the per-document gate pool): structurally identical subcircuits across
// query signatures compile once, and a document delta costs ONE merged
// input-diff + dirty-cone pass that refreshes every registered query's
// answers simultaneously — the first query served after the delta pays it,
// the rest replay (DistProfile::circuit_merged_propagations counts the
// passes, circuit_shared_gates / circuit_private_gates / circuit_roots
// gauge the merged shape).
//
// Fallback ladder per call, PER QUERY — one query falling off the shared
// circuit never forces the others to recompile:
//   1. document uid unchanged since the last merged sync  → replay outputs
//   2. structure_version unchanged, the query's exp subset
//      shapes unchanged, its guards hold after the merged
//      sync                                               → served by the
//      shared dirty-cone sweep
//   3. reshaped exp distribution or flipped guard         → re-record that
//      query into the pool (one fresh recorded DP pass,
//      counted in DistProfile::circuit_recompiles); a
//      structural mutation resets the whole pool and every
//      query re-records lazily
//   4. the recording pushes the pool past max_gates       → roll the gates
//      back and ban the query: it pays a plain DP pass per
//      call until the document structure changes, while the
//      other registrations keep serving from the shared
//      circuit
//
// Conjunction() (fixed-anchor goals) is outside the recordable fragment and
// always delegates to a plain engine pass. Slot-cap declines mirror
// ExactDpBackend so an EvalSession chain falls back identically.

#ifndef PXV_PROB_CIRCUIT_BACKEND_H_
#define PXV_PROB_CIRCUIT_BACKEND_H_

#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "prob/backend.h"
#include "prob/circuit.h"

namespace pxv {

struct CircuitBackendOptions {
  /// Pin the portable convolution kernel (see ExactDpOptions::force_scalar).
  bool force_scalar = false;
  /// Sibling-product segment trees in the underlying DP (recorded circuits
  /// inherit the tree's association order; both settings are exact).
  bool sibling_tree = true;
  /// Shared-pool gate budget. A recording that would push the pool past it
  /// is rolled back and its query banned to the plain DP until the document
  /// structure changes. Bounds memory to ~48 bytes/gate (SoA lanes + CSR).
  size_t max_gates = size_t{4} << 20;
  /// LRU cap on registered query signatures. Long-lived stores under query
  /// churn evict the least-recently-served registration past this count
  /// (DistProfile::circuit_evictions); its private gates go dead in the
  /// pool until the dead/live ratio triggers a rebuild.
  size_t max_cached_queries = 64;
};

class CircuitBackend : public ProbBackend {
 public:
  CircuitBackend() : CircuitBackend(CircuitBackendOptions{}) {}
  explicit CircuitBackend(const CircuitBackendOptions& options);
  ~CircuitBackend() override;

  const char* name() const override { return "circuit"; }
  /// Fixed-anchor conjunctions are not recordable (the anchored goal set is
  /// baked into the DP's slot layout per call); always a plain DP pass.
  StatusOr<double> Conjunction(const PDocument& pd,
                               const std::vector<Goal>& goals) override;
  StatusOr<std::vector<NodeProb>> BatchAnchored(
      const PDocument& pd,
      const std::vector<const Pattern*>& members) override;
  StatusOr<std::vector<std::vector<NodeProb>>> BatchAnchoredMany(
      const PDocument& pd,
      const std::vector<const Pattern*>& members) override;

  /// ∂Pr(node ∈ answers)/∂p for every live input gate of the shared
  /// circuit, descending |∂Pr/∂p|: one reverse adjoint sweep from the joint
  /// readout of `members` (registering it first if needed). Empty when
  /// `node` is not an answer candidate; declines like BatchAnchored (slot
  /// cap, gate cap).
  StatusOr<std::vector<LineageCircuit::Sensitivity>> Sensitivities(
      const PDocument& pd, const std::vector<const Pattern*>& members,
      NodeId node);

  /// Hypothetical serving: the joint readout of `members` evaluated as if
  /// the circuit inputs in `changes` held the overridden probabilities,
  /// WITHOUT mutating the document or disturbing the circuit — one overlay
  /// re-propagation, read, restore (LineageCircuit::WhatIf). Registers the
  /// query first if needed (one recorded DP pass at the CURRENT values).
  /// Declines like BatchAnchored (slot cap, gate cap) and errors when an
  /// override flips a recorded guard; the caller falls back to evaluating
  /// a mutated copy in both cases.
  StatusOr<std::vector<NodeProb>> WhatIf(
      const PDocument& pd, const std::vector<const Pattern*>& members,
      const std::vector<std::pair<CircuitInput, double>>& changes);

  /// Merged shape of the shared circuit as of the last serve —
  /// introspection for `pxvq circuit` and the bench counters.
  LineageCircuit::Stats shared_stats() const { return shared_.stats(); }

  /// Cumulative kernel + circuit counters for every call served by this
  /// backend (see DistProfile's circuit_* block).
  const DistProfile& profile() const { return scratch_.profile(); }

  /// Name of the vector kernel the underlying DP resolved at construction.
  const char* kernel_name() const;

  /// Query signatures currently cached (registered or banned).
  size_t cached_circuits() const { return queries_.size(); }

 private:
  struct QueryState {
    bool banned = false;  ///< Tripped the gate cap; plain DP until reset.
    uint64_t tick = 0;    ///< LRU clock of the last serve.
  };

  /// Brings the shared circuit to `pd`'s current values for `key`,
  /// recording the query's engine pass when it is not (or no longer)
  /// registered — the whole ladder above. Returns true when the
  /// registration is servable; false when the query is banned, in which
  /// case `cold` already holds the plain pass's member results. On a
  /// fresh/re-recording `cold` is also filled (the cold pass serves the
  /// call); on a warm serve it stays empty.
  template <typename ColdFn>
  bool Sync(const PDocument& pd, const std::string& key, ColdFn run_cold,
            std::vector<std::vector<NodeProb>>* cold);

  /// Sync for the joint ('J'-mode) readout — shared by BatchAnchored and
  /// Sensitivities.
  bool SyncJoint(const PDocument& pd,
                 const std::vector<const Pattern*>& members,
                 std::vector<std::vector<NodeProb>>* cold);

  /// Evicts least-recently-served registrations past max_cached_queries,
  /// never evicting `keep`.
  void EvictOverflow(const std::string& keep);
  void UpdateGauges();

  /// "J\n" (joint BatchAnchored) or "M\n" (per-member BatchAnchoredMany)
  /// plus the canonical member patterns — the two modes record different
  /// readouts, so they register separately.
  std::string CacheKey(char mode, const std::vector<const Pattern*>& members);

  EngineOptions RecordOptions(CircuitRecorder* rec) const;

  CircuitBackendOptions options_;
  const KernelOps* kernel_;  // Resolved once at construction (simd.h).
  DpScratch scratch_;
  LineageCircuit shared_;  // The document's multi-root gate pool.
  uint64_t structure_version_ = 0;  ///< Of the pool's recordings.
  std::unordered_map<std::string, QueryState> queries_;
  uint64_t tick_ = 0;
  std::string key_;  // Key scratch.
};

}  // namespace pxv

#endif  // PXV_PROB_CIRCUIT_BACKEND_H_
