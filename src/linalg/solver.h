// Exact Gaussian elimination utilities: rank, and expressing a target vector
// as a linear combination of given rows (row-space membership with witness).
// This is precisely what Theorem 5 / Proposition 5 need: Pr(n ∈ q(P)) is
// retrievable iff the query's d-view indicator vector lies in the row space
// of the view equations, and the combination coefficients give the f_r
// product formula with rational exponents.

#ifndef PXV_LINALG_SOLVER_H_
#define PXV_LINALG_SOLVER_H_

#include <optional>
#include <vector>

#include "linalg/matrix.h"

namespace pxv {

/// Rank of the matrix over ℚ.
int Rank(const Matrix& m);

/// Finds coefficients c with Σ c[i]·rows[i] == target, if any (free
/// coefficients set to zero).
std::optional<std::vector<Rational>> ExpressInRowSpace(
    const std::vector<std::vector<Rational>>& rows,
    const std::vector<Rational>& target);

}  // namespace pxv

#endif  // PXV_LINALG_SOLVER_H_
