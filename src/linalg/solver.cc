#include "linalg/solver.h"

#include "util/check.h"

namespace pxv {

int Rank(const Matrix& m) {
  Matrix a = m;
  int rank = 0;
  for (int col = 0; col < a.cols() && rank < a.rows(); ++col) {
    // Find pivot.
    int pivot = -1;
    for (int r = rank; r < a.rows(); ++r) {
      if (!a.at(r, col).IsZero()) {
        pivot = r;
        break;
      }
    }
    if (pivot < 0) continue;
    // Swap into place.
    if (pivot != rank) {
      for (int c = 0; c < a.cols(); ++c) std::swap(a.at(pivot, c), a.at(rank, c));
    }
    // Eliminate below.
    for (int r = rank + 1; r < a.rows(); ++r) {
      if (a.at(r, col).IsZero()) continue;
      const Rational f = a.at(r, col) / a.at(rank, col);
      for (int c = col; c < a.cols(); ++c) {
        a.at(r, c) = a.at(r, c) - f * a.at(rank, c);
      }
    }
    ++rank;
  }
  return rank;
}

std::optional<std::vector<Rational>> ExpressInRowSpace(
    const std::vector<std::vector<Rational>>& rows,
    const std::vector<Rational>& target) {
  if (rows.empty()) {
    for (const Rational& t : target) {
      if (!t.IsZero()) return std::nullopt;
    }
    return std::vector<Rational>{};
  }
  const int m = static_cast<int>(rows.size());
  const int n = static_cast<int>(target.size());
  // Solve Aᵀ c = target: one equation per vector component, m unknowns.
  Matrix a(n, m + 1);
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < m; ++i) {
      PXV_CHECK_EQ(rows[i].size(), static_cast<size_t>(n));
      a.at(j, i) = rows[i][j];
    }
    a.at(j, m) = target[j];
  }
  // Forward elimination with column pivoting over the unknown columns.
  std::vector<int> pivot_col_of_row(n, -1);
  int rank = 0;
  for (int col = 0; col < m && rank < n; ++col) {
    int pivot = -1;
    for (int r = rank; r < n; ++r) {
      if (!a.at(r, col).IsZero()) {
        pivot = r;
        break;
      }
    }
    if (pivot < 0) continue;
    if (pivot != rank) {
      for (int c = 0; c <= m; ++c) std::swap(a.at(pivot, c), a.at(rank, c));
    }
    for (int r = 0; r < n; ++r) {
      if (r == rank || a.at(r, col).IsZero()) continue;
      const Rational f = a.at(r, col) / a.at(rank, col);
      for (int c = 0; c <= m; ++c) a.at(r, c) = a.at(r, c) - f * a.at(rank, c);
    }
    pivot_col_of_row[rank] = col;
    ++rank;
  }
  // Inconsistency: a zero row with nonzero rhs.
  for (int r = rank; r < n; ++r) {
    if (!a.at(r, m).IsZero()) return std::nullopt;
  }
  std::vector<Rational> c(m, Rational(0));
  for (int r = 0; r < rank; ++r) {
    const int col = pivot_col_of_row[r];
    c[col] = a.at(r, m) / a.at(r, col);
  }
  return c;
}

}  // namespace pxv
