// Exact rational arithmetic for the S(q,V) systems of §5.3. Deciding whether
// Pr(n ∈ q(P)) has a unique solution is a rank question over ℚ; floating
// point would make the decision procedure flaky, so coefficients are exact
// int64 fractions with overflow checks (the systems have 0/1 coefficients,
// so values stay tiny in practice).

#ifndef PXV_LINALG_RATIONAL_H_
#define PXV_LINALG_RATIONAL_H_

#include <cstdint>
#include <string>

namespace pxv {

/// An exact rational number num/den, den > 0, gcd(num, den) = 1.
class Rational {
 public:
  Rational() : num_(0), den_(1) {}
  Rational(int64_t value) : num_(value), den_(1) {}  // NOLINT
  Rational(int64_t num, int64_t den);

  int64_t num() const { return num_; }
  int64_t den() const { return den_; }
  bool IsZero() const { return num_ == 0; }
  bool IsOne() const { return num_ == 1 && den_ == 1; }

  Rational operator+(const Rational& o) const;
  Rational operator-(const Rational& o) const;
  Rational operator*(const Rational& o) const;
  Rational operator/(const Rational& o) const;
  Rational operator-() const { return Rational(-num_, den_); }

  bool operator==(const Rational& o) const {
    return num_ == o.num_ && den_ == o.den_;
  }
  bool operator!=(const Rational& o) const { return !(*this == o); }

  double ToDouble() const { return static_cast<double>(num_) / den_; }
  std::string ToString() const;

 private:
  int64_t num_, den_;
};

}  // namespace pxv

#endif  // PXV_LINALG_RATIONAL_H_
