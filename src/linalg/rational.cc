#include "linalg/rational.h"

#include <numeric>

#include "util/check.h"

namespace pxv {
namespace {

int64_t CheckedNarrow(__int128 v) {
  PXV_CHECK(v <= INT64_MAX && v >= INT64_MIN) << "rational overflow";
  return static_cast<int64_t>(v);
}

}  // namespace

Rational::Rational(int64_t num, int64_t den) {
  PXV_CHECK_NE(den, 0) << "zero denominator";
  if (den < 0) {
    num = -num;
    den = -den;
  }
  const int64_t g = std::gcd(num < 0 ? -num : num, den);
  num_ = g ? num / g : num;
  den_ = g ? den / g : den;
}

Rational Rational::operator+(const Rational& o) const {
  const __int128 num =
      static_cast<__int128>(num_) * o.den_ + static_cast<__int128>(o.num_) * den_;
  const __int128 den = static_cast<__int128>(den_) * o.den_;
  return Rational(CheckedNarrow(num), CheckedNarrow(den));
}

Rational Rational::operator-(const Rational& o) const { return *this + (-o); }

Rational Rational::operator*(const Rational& o) const {
  const __int128 num = static_cast<__int128>(num_) * o.num_;
  const __int128 den = static_cast<__int128>(den_) * o.den_;
  return Rational(CheckedNarrow(num), CheckedNarrow(den));
}

Rational Rational::operator/(const Rational& o) const {
  PXV_CHECK(!o.IsZero()) << "division by zero";
  return *this * Rational(o.den_, o.num_);
}

std::string Rational::ToString() const {
  if (den_ == 1) return std::to_string(num_);
  return std::to_string(num_) + "/" + std::to_string(den_);
}

}  // namespace pxv
