// Dense rational matrices (small systems only — one row per view).

#ifndef PXV_LINALG_MATRIX_H_
#define PXV_LINALG_MATRIX_H_

#include <vector>

#include "linalg/rational.h"

namespace pxv {

/// Row-major dense rational matrix.
class Matrix {
 public:
  Matrix(int rows, int cols)
      : rows_(rows), cols_(cols), data_(static_cast<size_t>(rows) * cols) {}

  int rows() const { return rows_; }
  int cols() const { return cols_; }

  Rational& at(int r, int c) { return data_[Index(r, c)]; }
  const Rational& at(int r, int c) const { return data_[Index(r, c)]; }

  /// Appends a row (must have cols() entries).
  static Matrix FromRows(const std::vector<std::vector<Rational>>& rows);

  std::vector<Rational> Row(int r) const;

 private:
  size_t Index(int r, int c) const {
    return static_cast<size_t>(r) * cols_ + c;
  }

  int rows_, cols_;
  std::vector<Rational> data_;
};

}  // namespace pxv

#endif  // PXV_LINALG_MATRIX_H_
