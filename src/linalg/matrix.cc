#include "linalg/matrix.h"

#include "util/check.h"

namespace pxv {

Matrix Matrix::FromRows(const std::vector<std::vector<Rational>>& rows) {
  PXV_CHECK(!rows.empty());
  Matrix m(static_cast<int>(rows.size()), static_cast<int>(rows[0].size()));
  for (int r = 0; r < m.rows(); ++r) {
    PXV_CHECK_EQ(rows[r].size(), static_cast<size_t>(m.cols()));
    for (int c = 0; c < m.cols(); ++c) m.at(r, c) = rows[r][c];
  }
  return m;
}

std::vector<Rational> Matrix::Row(int r) const {
  std::vector<Rational> row(cols_);
  for (int c = 0; c < cols_; ++c) row[c] = at(r, c);
  return row;
}

}  // namespace pxv
