#include "tpi/skeleton.h"

#include <vector>

namespace pxv {
namespace {

// One label sequence is a prefix of the other (empty maps into anything).
bool PathsMap(const std::vector<Label>& a, const std::vector<Label>& b) {
  const size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;  // The shorter is a prefix of the longer.
}

// Walks a /-connected chain inside a predicate, recording the incoming
// /-path (labels from the mb node, exclusive, down to the //-edge source,
// inclusive) of every //-subpredicate found.
void CollectFromPredicate(const Pattern& q, PNodeId pred_root,
                          std::vector<Label>* path,
                          std::vector<std::vector<Label>>* out) {
  path->push_back(q.label(pred_root));
  for (PNodeId c : q.children(pred_root)) {
    if (q.axis(c) == Axis::kDescendant) {
      out->push_back(*path);
    } else {
      CollectFromPredicate(q, c, path, out);
    }
  }
  path->pop_back();
}

}  // namespace

bool IsExtendedSkeleton(const Pattern& q) {
  const auto mb = q.MainBranch();
  for (size_t i = 0; i < mb.size(); ++i) {
    const PNodeId n = mb[i];
    // The /-path following n on the main branch (labels up to the first
    // //-edge or out).
    std::vector<Label> follow;
    for (size_t j = i + 1; j < mb.size(); ++j) {
      if (q.axis(mb[j]) == Axis::kDescendant) break;
      follow.push_back(q.label(mb[j]));
    }
    // Incoming /-paths of every //-subpredicate of n.
    std::vector<std::vector<Label>> incoming;
    for (PNodeId c : q.children(n)) {
      if (q.OnMainBranch(c)) continue;
      std::vector<Label> path;
      if (q.axis(c) == Axis::kDescendant) {
        incoming.push_back(path);  // Empty incoming path.
      } else {
        CollectFromPredicate(q, c, &path, &incoming);
      }
    }
    for (const auto& l : incoming) {
      if (PathsMap(l, follow)) return false;
    }
  }
  return true;
}

}  // namespace pxv
