#include "tpi/interleaving.h"

#include <set>
#include <string>

#include "util/check.h"

namespace pxv {
namespace {

// Recursive merge of the members' main branches.
//
// State per member j: how many of its mb nodes are consumed (pos_[j]) and at
// which merged position its last consumed node sits (last_[j]). At each step
// we create one merged position and pick a nonempty subset S of members that
// contribute their next mb node to it, subject to:
//   * all contributed nodes carry the same label;
//   * a member whose next edge is '/' may contribute only if its previous
//     node sits at the immediately preceding merged position;
//   * a member whose next edge is '/' and whose previous node has fallen
//     behind can never be placed again — dead branch, prune;
//   * the final merged position must absorb the out node (last mb node) of
//     every member simultaneously (unary semantics: outs coalesce).
// The merged edge into the new position is '/' iff some contributor's edge
// is '/', else '//'.
class Merger {
 public:
  Merger(const TpIntersection& q, int64_t limit, bool materialize)
      : q_(q), limit_(limit), materialize_(materialize) {
    for (const Pattern& m : q.members()) mbs_.push_back(m.MainBranch());
    pos_.assign(q.size(), 0);
    last_.assign(q.size(), -1);
  }

  Status Run() {
    const int k = q_.size();
    if (k == 0) return Status::Ok();
    // Merged position 0: all roots coalesce; labels must agree.
    const Label root_label = q_.members()[0].label(mbs_[0][0]);
    for (int j = 1; j < k; ++j) {
      if (q_.members()[j].label(mbs_[j][0]) != root_label) return Status::Ok();
    }
    MergedNode root;
    root.label = root_label;
    root.axis = Axis::kChild;  // Unused for the root.
    for (int j = 0; j < k; ++j) {
      root.sources.emplace_back(j, 0);
      pos_[j] = 1;
      last_[j] = 0;
    }
    merged_.push_back(std::move(root));
    Status s = Rec();
    merged_.clear();
    return s;
  }

  int64_t count() const { return count_; }
  std::vector<Pattern> TakeResults() { return std::move(results_); }

 private:
  struct MergedNode {
    Label label;
    Axis axis;
    std::vector<std::pair<int, int>> sources;  // (member, mb index)
  };

  bool AllConsumed() const {
    for (size_t j = 0; j < mbs_.size(); ++j) {
      if (pos_[j] < static_cast<int>(mbs_[j].size())) return false;
    }
    return true;
  }

  Status Rec() {
    if (AllConsumed()) {
      // Outs coalesce: every member's last node must sit at the final
      // merged position.
      const int t = static_cast<int>(merged_.size()) - 1;
      for (size_t j = 0; j < mbs_.size(); ++j) {
        if (last_[j] != t) return Status::Ok();
      }
      ++count_;
      if (count_ > limit_) {
        return Status::Error("interleaving enumeration exceeded limit");
      }
      if (materialize_) Emit();
      return Status::Ok();
    }

    const int k = q_.size();
    const int t = static_cast<int>(merged_.size());  // New position index.
    // Dead-branch check: a pending '/'-edge member that has fallen behind
    // can never be placed.
    std::vector<int> pending(k, 0);  // 0 done, 1 eligible, 2 must-place.
    for (int j = 0; j < k; ++j) {
      if (pos_[j] >= static_cast<int>(mbs_[j].size())) continue;
      const Pattern& m = q_.members()[j];
      const bool slash = m.axis(mbs_[j][pos_[j]]) == Axis::kChild;
      if (slash) {
        if (last_[j] < t - 1) return Status::Ok();  // Dead.
        pending[j] = 2;  // '/' with last at t-1: place now or never.
      } else {
        pending[j] = 1;
      }
    }

    // Enumerate nonempty subsets of eligible members; must-place members are
    // forced in (otherwise the branch dies — skip those subsets).
    std::vector<int> eligible;
    for (int j = 0; j < k; ++j) {
      if (pending[j]) eligible.push_back(j);
    }
    const int e = static_cast<int>(eligible.size());
    for (int mask = 1; mask < (1 << e); ++mask) {
      std::vector<int> subset;
      bool forced_ok = true;
      for (int b = 0; b < e; ++b) {
        const int j = eligible[b];
        if (mask & (1 << b)) {
          subset.push_back(j);
        } else if (pending[j] == 2) {
          forced_ok = false;  // A must-place member left out: dead later.
          break;
        }
      }
      if (!forced_ok || subset.empty()) continue;

      // Labels must agree.
      const Label label =
          q_.members()[subset[0]].label(mbs_[subset[0]][pos_[subset[0]]]);
      bool labels_ok = true;
      bool any_slash = false;
      for (int j : subset) {
        const Pattern& m = q_.members()[j];
        const PNodeId node = mbs_[j][pos_[j]];
        if (m.label(node) != label) {
          labels_ok = false;
          break;
        }
        if (m.axis(node) == Axis::kChild) any_slash = true;
      }
      if (!labels_ok) continue;

      // Apply.
      MergedNode mn;
      mn.label = label;
      mn.axis = any_slash ? Axis::kChild : Axis::kDescendant;
      std::vector<int> saved_last(subset.size());
      for (size_t s = 0; s < subset.size(); ++s) {
        const int j = subset[s];
        mn.sources.emplace_back(j, pos_[j]);
        saved_last[s] = last_[j];
        last_[j] = t;
        ++pos_[j];
      }
      merged_.push_back(std::move(mn));

      Status st = Rec();
      // Undo.
      merged_.pop_back();
      for (size_t s = 0; s < subset.size(); ++s) {
        const int j = subset[s];
        --pos_[j];
        last_[j] = saved_last[s];
      }
      if (!st.ok()) return st;
    }
    return Status::Ok();
  }

  void Emit() {
    Pattern out;
    PNodeId prev = kNullPNode;
    for (const MergedNode& mn : merged_) {
      prev = (prev == kNullPNode) ? out.AddRoot(mn.label)
                                  : out.AddChild(prev, mn.label, mn.axis);
      for (const auto& [j, idx] : mn.sources) {
        const Pattern& m = q_.members()[j];
        for (PNodeId p : m.PredicateChildren(mbs_[j][idx])) {
          GraftSubtree(m, p, &out, prev, m.axis(p));
        }
      }
    }
    out.SetOut(prev);
    const std::string key = out.CanonicalString();
    if (seen_.insert(key).second) results_.push_back(std::move(out));
  }

  const TpIntersection& q_;
  int64_t limit_;
  bool materialize_;
  std::vector<std::vector<PNodeId>> mbs_;
  std::vector<int> pos_, last_;
  std::vector<MergedNode> merged_;
  int64_t count_ = 0;
  std::vector<Pattern> results_;
  std::set<std::string> seen_;
};

}  // namespace

StatusOr<std::vector<Pattern>> Interleavings(const TpIntersection& q,
                                             int limit) {
  Merger merger(q, limit, /*materialize=*/true);
  Status s = merger.Run();
  if (!s.ok()) return s;
  return merger.TakeResults();
}

int64_t CountInterleavings(const TpIntersection& q, int64_t limit) {
  Merger merger(q, limit, /*materialize=*/false);
  (void)merger.Run();  // Error just means "hit the limit".
  return merger.count();
}

bool IntersectionSatisfiable(const TpIntersection& q) {
  return CountInterleavings(q, 1) >= 1;
}

Pattern UnionFreeMerge(const TpIntersection& q) {
  PXV_CHECK(!q.empty());
  const Pattern& first = q.members()[0];
  const auto mb0 = first.MainBranch();
  // Verify all members share the main branch (labels and axes).
  for (const Pattern& m : q.members()) {
    const auto mb = m.MainBranch();
    PXV_CHECK_EQ(mb.size(), mb0.size()) << "UnionFreeMerge: branch mismatch";
    for (size_t i = 0; i < mb.size(); ++i) {
      PXV_CHECK_EQ(m.label(mb[i]), first.label(mb0[i]));
      if (i > 0) {
        PXV_CHECK(m.axis(mb[i]) == first.axis(mb0[i]));
      }
    }
  }
  Pattern out;
  PNodeId prev = kNullPNode;
  for (size_t i = 0; i < mb0.size(); ++i) {
    prev = (prev == kNullPNode)
               ? out.AddRoot(first.label(mb0[i]))
               : out.AddChild(prev, first.label(mb0[i]), first.axis(mb0[i]));
    for (const Pattern& m : q.members()) {
      const auto mb = m.MainBranch();
      for (PNodeId p : m.PredicateChildren(mb[i])) {
        GraftSubtree(m, p, &out, prev, m.axis(p));
      }
    }
  }
  out.SetOut(prev);
  return out;
}

}  // namespace pxv
