// Containment and equivalence between TP and TP∩ queries (paper §5.1).
//
//   q ⊑ ∩qi   iff  q ⊑ qi for every i                  (cheap direction)
//   ∩qi ⊑ q   iff  Qj ⊑ q for every interleaving Qj     (hard direction)
//   q ≡ ∩qi   iff  both, equivalently: every interleaving ⊑ q and q ⊑ some
//              interleaving. coNP-hard in general; PTime for extended
//              skeletons (see skeleton.h) because the interleaving blowup is
//              avoidable there.

#ifndef PXV_TPI_EQUIVALENCE_H_
#define PXV_TPI_EQUIVALENCE_H_

#include "tpi/intersection.h"

namespace pxv {

/// q ⊑ ∩qi: containment in every member.
bool TpContainedInIntersection(const Pattern& q, const TpIntersection& in);

/// ∩qi ⊑ q: every interleaving contained in q.
bool IntersectionContainedInTp(const TpIntersection& in, const Pattern& q);

/// q ≡ ∩qi.
bool EquivalentTpIntersection(const Pattern& q, const TpIntersection& in);

}  // namespace pxv

#endif  // PXV_TPI_EQUIVALENCE_H_
