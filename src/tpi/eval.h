// Evaluating TP∩ queries over deterministic documents. Members formulated
// over different documents (view extensions) join by persistent Id, which is
// exactly the §3 persistent-Id result semantics.

#ifndef PXV_TPI_EVAL_H_
#define PXV_TPI_EVAL_H_

#include <vector>

#include "tpi/intersection.h"
#include "xml/document.h"

namespace pxv {

/// ∩ members over a single document: nodes selected by every member.
std::vector<NodeId> EvaluateIntersectionNodes(const TpIntersection& q,
                                              const Document& d);

/// ∩ members over a document set: member i is evaluated over every document
/// whose root label equals lbl(root(member i)); result sets join by
/// persistent Id. Returns the sorted intersection of the members' pid sets.
std::vector<PersistentId> EvaluateIntersectionByPid(
    const TpIntersection& q, const std::vector<const Document*>& docs);

}  // namespace pxv

#endif  // PXV_TPI_EVAL_H_
