// TP∩ — intersections of tree patterns (paper §2): q1 ∩ … ∩ qk. Under
// persistent node Ids, members evaluated over different documents (view
// extensions) join by Id; over a single document they join by node.

#ifndef PXV_TPI_INTERSECTION_H_
#define PXV_TPI_INTERSECTION_H_

#include <string>
#include <vector>

#include "tp/pattern.h"

namespace pxv {

/// An intersection of tree patterns.
class TpIntersection {
 public:
  TpIntersection() = default;
  explicit TpIntersection(std::vector<Pattern> members)
      : members_(std::move(members)) {}

  const std::vector<Pattern>& members() const { return members_; }
  std::vector<Pattern>& members() { return members_; }
  int size() const { return static_cast<int>(members_.size()); }
  bool empty() const { return members_.empty(); }

  void Add(Pattern p) { members_.push_back(std::move(p)); }

  /// "q1 ∩ q2 ∩ …" in XPath notation.
  std::string ToString() const;

 private:
  std::vector<Pattern> members_;
};

}  // namespace pxv

#endif  // PXV_TPI_INTERSECTION_H_
