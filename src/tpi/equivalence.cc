#include "tpi/equivalence.h"

#include "tp/containment.h"
#include "tpi/interleaving.h"
#include "util/check.h"

namespace pxv {

bool TpContainedInIntersection(const Pattern& q, const TpIntersection& in) {
  for (const Pattern& member : in.members()) {
    if (!Contains(member, q)) return false;
  }
  return true;
}

bool IntersectionContainedInTp(const TpIntersection& in, const Pattern& q) {
  StatusOr<std::vector<Pattern>> inter = Interleavings(in);
  PXV_CHECK(inter.ok()) << inter.status().message();
  for (const Pattern& candidate : *inter) {
    if (!Contains(q, candidate)) return false;
  }
  return true;
}

bool EquivalentTpIntersection(const Pattern& q, const TpIntersection& in) {
  // The cheap direction first: q ⊑ every member.
  if (!TpContainedInIntersection(q, in)) return false;
  return IntersectionContainedInTp(in, q);
}

}  // namespace pxv
