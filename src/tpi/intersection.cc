#include "tpi/intersection.h"

#include "tp/parser.h"

namespace pxv {

std::string TpIntersection::ToString() const {
  std::string out;
  for (size_t i = 0; i < members_.size(); ++i) {
    if (i) out += " ∩ ";
    out += ToXPath(members_[i]);
  }
  return out;
}

}  // namespace pxv
