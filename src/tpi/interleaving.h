// Interleavings of a TP∩ query (paper §5.1, after [10]). A TP∩ query
// q1 ∩ … ∩ qk over a common root is equivalent to the union of its
// interleavings: all the ways to order or coalesce the members' main branch
// nodes into one main branch, with every member's output node coalesced into
// the final merged node (tree patterns are unary). The number of
// interleavings is worst-case exponential in the intersection size — this is
// the source of the coNP-hardness of TP∩ equivalence, and the PTime story
// for extended skeletons avoids enumerating them.

#ifndef PXV_TPI_INTERLEAVING_H_
#define PXV_TPI_INTERLEAVING_H_

#include <vector>

#include "tpi/intersection.h"
#include "util/status.h"

namespace pxv {

/// All interleavings (deduplicated up to isomorphism). Fails with an error
/// Status if more than `limit` raw merges are produced.
StatusOr<std::vector<Pattern>> Interleavings(const TpIntersection& q,
                                             int limit = 500000);

/// Counts raw merges without materializing them (bench support). Stops at
/// `limit`.
int64_t CountInterleavings(const TpIntersection& q, int64_t limit);

/// A TP∩ query is satisfiable iff it has at least one interleaving.
bool IntersectionSatisfiable(const TpIntersection& q);

/// Union-free node-wise merge: valid when all members share an identical
/// main branch (labels and axes); predicates are unioned onto the shared
/// branch. Used by the §5.3 decomposition (Step 2), whose intersections are
/// always over the same view's main branch.
Pattern UnionFreeMerge(const TpIntersection& q);

}  // namespace pxv

#endif  // PXV_TPI_INTERLEAVING_H_
