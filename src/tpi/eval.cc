#include "tpi/eval.h"

#include <algorithm>
#include <set>

#include "tp/eval.h"
#include "util/check.h"

namespace pxv {

std::vector<NodeId> EvaluateIntersectionNodes(const TpIntersection& q,
                                              const Document& d) {
  PXV_CHECK(!q.empty());
  std::vector<NodeId> acc = Evaluate(q.members()[0], d);
  for (int i = 1; i < q.size() && !acc.empty(); ++i) {
    std::vector<NodeId> next = Evaluate(q.members()[i], d);
    std::vector<NodeId> merged;
    std::set_intersection(acc.begin(), acc.end(), next.begin(), next.end(),
                          std::back_inserter(merged));
    acc = std::move(merged);
  }
  return acc;
}

std::vector<PersistentId> EvaluateIntersectionByPid(
    const TpIntersection& q, const std::vector<const Document*>& docs) {
  PXV_CHECK(!q.empty());
  std::set<PersistentId> acc;
  bool first = true;
  for (const Pattern& member : q.members()) {
    std::set<PersistentId> selected;
    bool found_doc = false;
    for (const Document* d : docs) {
      if (d->empty() || d->label(d->root()) != member.label(member.root())) {
        continue;
      }
      found_doc = true;
      for (NodeId n : Evaluate(member, *d)) selected.insert(d->pid(n));
    }
    if (!found_doc) return {};  // Member formulated over no document.
    if (first) {
      acc = std::move(selected);
      first = false;
    } else {
      std::set<PersistentId> merged;
      std::set_intersection(acc.begin(), acc.end(), selected.begin(),
                            selected.end(),
                            std::inserter(merged, merged.begin()));
      acc = std::move(merged);
    }
    if (acc.empty()) break;
  }
  return std::vector<PersistentId>(acc.begin(), acc.end());
}

}  // namespace pxv
