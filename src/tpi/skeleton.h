// Extended skeletons (paper §5.1): the TP fragment over which TP-vs-TP∩
// equivalence — hence the rewriting decision procedures — run in PTime.
//
// A //-subpredicate st of a main branch node n is a predicate subtree whose
// root is connected by a //-edge to a linear /-path l coming from n (the
// incoming /-path; possibly empty). A pattern is an extended skeleton iff
// for every such (n, st) there is no mapping in either direction between l
// and the /-path that follows n on the main branch — where the empty path
// maps into every path. //-edges on the main branch and /-only predicates
// are unrestricted.
//
// Paper examples: a[b//c//d]/e//d and a[b//c]/d//e are extended skeletons;
// a[b//c]/b//d, a[b//c]//d, a[.//b]/c//d, a[.//b]//c are not.

#ifndef PXV_TPI_SKELETON_H_
#define PXV_TPI_SKELETON_H_

#include "tp/pattern.h"

namespace pxv {

/// True iff q is an extended skeleton.
bool IsExtendedSkeleton(const Pattern& q);

}  // namespace pxv

#endif  // PXV_TPI_SKELETON_H_
