// Theorem 4 instances: the reduction from k-DIMENSIONAL PERFECT MATCHING to
// "does a TP∩-rewriting from pairwise c-independent views exist".
//
// For a k-hypergraph H = (U, E) with |U| = s: the query is
//     q = a[1]/a[2]/…/a[s]//b
// and each hyperedge e = {i1,…,ik} becomes the view with predicates
// [i1],…,[ik] on the corresponding a-nodes of the same /-chain. A subset of
// pairwise c-independent views rewriting q exists iff H has a perfect
// matching.

#ifndef PXV_GEN_MATCHING_H_
#define PXV_GEN_MATCHING_H_

#include <vector>

#include "rewrite/tp_rewrite.h"
#include "tp/pattern.h"
#include "util/random.h"

namespace pxv {

/// A k-uniform hypergraph on vertices 0..s-1.
struct Hypergraph {
  int s = 0;  ///< Vertex count; must be divisible by k for a matching.
  int k = 3;
  std::vector<std::vector<int>> edges;
};

/// Random k-hypergraph with `extra_edges` beyond a planted perfect matching
/// (so the instance is satisfiable by construction).
Hypergraph PlantedMatchingInstance(Rng& rng, int s, int k, int extra_edges);

/// Random k-hypergraph without planting (may or may not have a matching).
Hypergraph RandomHypergraph(Rng& rng, int s, int k, int num_edges);

/// The Theorem 4 query for vertex count s.
Pattern MatchingQuery(int s);

/// The Theorem 4 views, one per hyperedge.
std::vector<NamedView> MatchingViews(const Hypergraph& h);

/// Exact exhaustive search for a perfect matching (reference solver).
bool HasPerfectMatching(const Hypergraph& h);

}  // namespace pxv

#endif  // PXV_GEN_MATCHING_H_
