#include "gen/matching.h"

#include <algorithm>
#include <set>
#include <string>

#include "util/check.h"
#include "xml/label.h"

namespace pxv {
namespace {

Label PredLabel(int vertex) { return Intern("p" + std::to_string(vertex)); }

}  // namespace

Hypergraph PlantedMatchingInstance(Rng& rng, int s, int k, int extra_edges) {
  PXV_CHECK_EQ(s % k, 0);
  Hypergraph h;
  h.s = s;
  h.k = k;
  // Planted matching over a random permutation.
  std::vector<int> perm(s);
  for (int i = 0; i < s; ++i) perm[i] = i;
  for (int i = s - 1; i > 0; --i) {
    std::swap(perm[i], perm[rng.NextBounded(i + 1)]);
  }
  for (int i = 0; i < s; i += k) {
    std::vector<int> edge(perm.begin() + i, perm.begin() + i + k);
    std::sort(edge.begin(), edge.end());
    h.edges.push_back(std::move(edge));
  }
  // Extra random edges.
  std::set<std::vector<int>> seen(h.edges.begin(), h.edges.end());
  while (static_cast<int>(h.edges.size()) < s / k + extra_edges) {
    std::set<int> edge;
    while (static_cast<int>(edge.size()) < k) {
      edge.insert(static_cast<int>(rng.NextBounded(s)));
    }
    std::vector<int> e(edge.begin(), edge.end());
    if (seen.insert(e).second) h.edges.push_back(std::move(e));
  }
  // Shuffle edges so the matching is not the prefix.
  for (int i = static_cast<int>(h.edges.size()) - 1; i > 0; --i) {
    std::swap(h.edges[i], h.edges[rng.NextBounded(i + 1)]);
  }
  return h;
}

Hypergraph RandomHypergraph(Rng& rng, int s, int k, int num_edges) {
  Hypergraph h;
  h.s = s;
  h.k = k;
  std::set<std::vector<int>> seen;
  while (static_cast<int>(h.edges.size()) < num_edges) {
    std::set<int> edge;
    while (static_cast<int>(edge.size()) < k) {
      edge.insert(static_cast<int>(rng.NextBounded(s)));
    }
    std::vector<int> e(edge.begin(), edge.end());
    if (seen.insert(e).second) h.edges.push_back(std::move(e));
  }
  return h;
}

Pattern MatchingQuery(int s) {
  Pattern q;
  PNodeId cur = q.AddRoot(Intern("a"));
  q.AddChild(cur, PredLabel(0), Axis::kChild);
  for (int i = 1; i < s; ++i) {
    cur = q.AddChild(cur, Intern("a"), Axis::kChild);
    q.AddChild(cur, PredLabel(i), Axis::kChild);
  }
  const PNodeId b = q.AddChild(cur, Intern("b"), Axis::kDescendant);
  q.SetOut(b);
  return q;
}

std::vector<NamedView> MatchingViews(const Hypergraph& h) {
  std::vector<NamedView> views;
  for (size_t e = 0; e < h.edges.size(); ++e) {
    Pattern v;
    PNodeId cur = v.AddRoot(Intern("a"));
    for (int i = 0; i < h.s; ++i) {
      if (i > 0) cur = v.AddChild(cur, Intern("a"), Axis::kChild);
      if (std::find(h.edges[e].begin(), h.edges[e].end(), i) !=
          h.edges[e].end()) {
        v.AddChild(cur, PredLabel(i), Axis::kChild);
      }
    }
    const PNodeId b = v.AddChild(cur, Intern("b"), Axis::kDescendant);
    v.SetOut(b);
    views.push_back({"e" + std::to_string(e), std::move(v)});
  }
  return views;
}

namespace {

bool MatchRec(const Hypergraph& h, std::vector<bool>& covered, int covered_count,
              size_t from) {
  if (covered_count == h.s) return true;
  // First uncovered vertex drives the branching.
  int target = -1;
  for (int i = 0; i < h.s; ++i) {
    if (!covered[i]) {
      target = i;
      break;
    }
  }
  for (size_t e = from; e < h.edges.size(); ++e) {
    const auto& edge = h.edges[e];
    if (std::find(edge.begin(), edge.end(), target) == edge.end()) continue;
    bool clash = false;
    for (int v : edge) clash |= covered[v];
    if (clash) continue;
    for (int v : edge) covered[v] = true;
    if (MatchRec(h, covered, covered_count + h.k, 0)) return true;
    for (int v : edge) covered[v] = false;
  }
  return false;
}

}  // namespace

bool HasPerfectMatching(const Hypergraph& h) {
  if (h.s % h.k != 0) return false;
  std::vector<bool> covered(h.s, false);
  return MatchRec(h, covered, 0, 0);
}

}  // namespace pxv
