// Random query and view generators.

#ifndef PXV_GEN_QUERYGEN_H_
#define PXV_GEN_QUERYGEN_H_

#include <vector>

#include "rewrite/tp_rewrite.h"
#include "tp/pattern.h"
#include "util/random.h"

namespace pxv {

struct QueryGenOptions {
  int depth = 4;             ///< Main branch length.
  double pred_prob = 0.5;    ///< Probability a main-branch node gets a predicate.
  double desc_prob = 0.3;    ///< Probability an edge is //.
  int pred_depth = 2;        ///< Max predicate subtree depth.
  int label_count = 4;       ///< Same alphabet as DocGenOptions.
};

/// Random TP query with root label "root" (matching RandomPDocument).
Pattern RandomQuery(Rng& rng, const QueryGenOptions& options = {});

/// A view from q: the prefix of length k, optionally with out-node
/// predicates removed (guarantees comp(v, q_(k)) ≡ q — a Fact 1 positive).
Pattern PrefixView(const Pattern& q, int k, bool strip_out_preds);

/// A set of views for q: a mix of usable prefixes and decoys (random
/// queries), for TPrewrite benchmarks.
std::vector<NamedView> ViewWorkload(const Pattern& q, Rng& rng,
                                    int num_usable, int num_decoys,
                                    const QueryGenOptions& options = {});

}  // namespace pxv

#endif  // PXV_GEN_QUERYGEN_H_
