#include "gen/paper.h"

#include "tp/parser.h"
#include "util/check.h"
#include "xml/label.h"

namespace pxv {
namespace paper {
namespace {

Label L(const char* name) { return Intern(name); }

}  // namespace

Document DocPER() {
  Document d;
  const NodeId it = d.AddRoot(L("IT-personnel"), 1);
  const NodeId p2 = d.AddChild(it, L("person"), 2);
  const NodeId n4 = d.AddChild(p2, L("name"), 4);
  d.AddChild(n4, L("Rick"), 8);
  const NodeId b5 = d.AddChild(p2, L("bonus"), 5);
  const NodeId laptop = d.AddChild(b5, L("laptop"), 24);
  d.AddChild(laptop, L("44"), 25);
  d.AddChild(laptop, L("50"), 26);
  const NodeId pda31 = d.AddChild(b5, L("pda"), 31);
  d.AddChild(pda31, L("50"), 32);
  const NodeId p3 = d.AddChild(it, L("person"), 3);
  const NodeId n6 = d.AddChild(p3, L("name"), 6);
  d.AddChild(n6, L("Mary"), 41);
  const NodeId b7 = d.AddChild(p3, L("bonus"), 7);
  const NodeId pda51 = d.AddChild(b7, L("pda"), 51);
  d.AddChild(pda51, L("15"), 54);
  d.AddChild(pda51, L("44"), 55);
  return d;
}

PDocument PDocPER() {
  PDocument pd;
  const NodeId it = pd.AddRoot(L("IT-personnel"), 1);
  // Left person [2]: name with mux{Rick 0.75, John 0.25}, bonus with
  // mux{pda(25) 0.1, laptop(44,50) 0.9} plus a certain pda(50).
  const NodeId p2 = pd.AddOrdinary(it, L("person"), 1.0, 2);
  const NodeId n4 = pd.AddOrdinary(p2, L("name"), 1.0, 4);
  const NodeId mux11 = pd.AddDistributional(n4, PKind::kMux);
  pd.AddOrdinary(mux11, L("Rick"), 0.75, 8);
  pd.AddOrdinary(mux11, L("John"), 0.25, 13);
  const NodeId b5 = pd.AddOrdinary(p2, L("bonus"), 1.0, 5);
  const NodeId mux21 = pd.AddDistributional(b5, PKind::kMux);
  const NodeId pda22 = pd.AddOrdinary(mux21, L("pda"), 0.1, 22);
  pd.AddOrdinary(pda22, L("25"), 1.0, 23);
  const NodeId laptop24 = pd.AddOrdinary(mux21, L("laptop"), 0.9, 24);
  pd.AddOrdinary(laptop24, L("44"), 1.0, 25);
  pd.AddOrdinary(laptop24, L("50"), 1.0, 26);
  const NodeId pda31 = pd.AddOrdinary(b5, L("pda"), 1.0, 31);
  pd.AddOrdinary(pda31, L("50"), 1.0, 32);
  // Right person [3]: name(Mary), bonus with pda whose amounts are under
  // mux{ind{15, 44} 0.7, 15 0.3}.
  const NodeId p3 = pd.AddOrdinary(it, L("person"), 1.0, 3);
  const NodeId n6 = pd.AddOrdinary(p3, L("name"), 1.0, 6);
  pd.AddOrdinary(n6, L("Mary"), 1.0, 41);
  const NodeId b7 = pd.AddOrdinary(p3, L("bonus"), 1.0, 7);
  const NodeId pda51 = pd.AddOrdinary(b7, L("pda"), 1.0, 51);
  const NodeId mux52 = pd.AddDistributional(pda51, PKind::kMux);
  const NodeId ind53 = pd.AddDistributional(mux52, PKind::kInd, 0.7);
  pd.AddOrdinary(ind53, L("15"), 1.0, 54);
  pd.AddOrdinary(ind53, L("44"), 1.0, 55);
  pd.AddOrdinary(mux52, L("15"), 0.3, 56);
  PXV_CHECK(pd.Validate().ok());
  return pd;
}

Pattern QueryRBON() {
  return Tp("IT-personnel//person[name/Rick]/bonus[laptop]");
}
Pattern QueryBON() { return Tp("IT-personnel//person/bonus[laptop]"); }
Pattern ViewV1BON() { return Tp("IT-personnel//person[name/Rick]/bonus"); }
Pattern ViewV2BON() { return Tp("IT-personnel//person/bonus"); }

Pattern Query11() { return Tp("a/b[c]"); }
Pattern View11() { return Tp("a[.//c]/b"); }

PDocument PDoc1() {
  // a with a certain c child; b under mux (0.65); c under b via mux (0.5).
  PDocument pd;
  const NodeId a = pd.AddRoot(L("a"), 0);
  pd.AddOrdinary(a, L("c"), 1.0, 1);
  const NodeId mux1 = pd.AddDistributional(a, PKind::kMux);
  const NodeId b = pd.AddOrdinary(mux1, L("b"), 0.65, 2);
  const NodeId mux2 = pd.AddDistributional(b, PKind::kMux);
  pd.AddOrdinary(mux2, L("c"), 0.5, 3);
  PXV_CHECK(pd.Validate().ok());
  return pd;
}

PDocument PDoc2() {
  // a with an uncertain c (0.3); certain b; c under b via mux (0.5).
  PDocument pd;
  const NodeId a = pd.AddRoot(L("a"), 0);
  const NodeId mux1 = pd.AddDistributional(a, PKind::kMux);
  pd.AddOrdinary(mux1, L("c"), 0.3, 1);
  const NodeId b = pd.AddOrdinary(a, L("b"), 1.0, 2);
  const NodeId mux2 = pd.AddDistributional(b, PKind::kMux);
  pd.AddOrdinary(mux2, L("c"), 0.5, 3);
  PXV_CHECK(pd.Validate().ok());
  return pd;
}

Pattern Query12() { return Tp("a//b[e]/c/b/c//d"); }
Pattern View12() { return Tp("a//b[e]/c/b/c"); }

namespace {

// Shared shape of P̂3/P̂4: a/b1{ind:e,c1}/…; the chain below c1 is
// deterministic: c1/b2{ind:e}/c2/b3/c3/d. Only the three probabilities
// differ between the two documents.
PDocument PDoc12(double e1, double c1_prob, double e2) {
  PDocument pd;
  const NodeId a = pd.AddRoot(L("a"), 0);
  const NodeId b1 = pd.AddOrdinary(a, L("b"), 1.0, 1);
  const NodeId ind1 = pd.AddDistributional(b1, PKind::kInd);
  pd.AddOrdinary(ind1, L("e"), e1, 2);
  const NodeId c1 = pd.AddOrdinary(ind1, L("c"), c1_prob, 3);
  const NodeId b2 = pd.AddOrdinary(c1, L("b"), 1.0, 4);
  const NodeId ind2 = pd.AddDistributional(b2, PKind::kInd);
  pd.AddOrdinary(ind2, L("e"), e2, 5);
  const NodeId c2 = pd.AddOrdinary(b2, L("c"), 1.0, kPid12_C2);
  const NodeId b3 = pd.AddOrdinary(c2, L("b"), 1.0, 7);
  const NodeId c3 = pd.AddOrdinary(b3, L("c"), 1.0, kPid12_C3);
  pd.AddOrdinary(c3, L("d"), 1.0, kPid12_D);
  PXV_CHECK(pd.Validate().ok());
  return pd;
}

}  // namespace

PDocument PDoc3() { return PDoc12(0.3, 0.4, 0.6); }
PDocument PDoc4() { return PDoc12(0.4, 0.3, 0.8); }

Pattern Query16() { return Tp("a[1]/b[2]/c[3]/d"); }

Pattern View16(int i) {
  switch (i) {
    case 1: return Tp("a[1]/b/c[3]/d");
    case 2: return Tp("a/b[2]/c[3]/d");
    case 3: return Tp("a[1]/b[2]/c/d");
    case 4: return Tp("a//d");
  }
  PXV_CHECK(false) << "View16 index must be 1..4";
  return Pattern();
}

}  // namespace paper
}  // namespace pxv
