#include "gen/querygen.h"

#include <string>

#include "tp/ops.h"
#include "util/check.h"
#include "xml/label.h"

namespace pxv {
namespace {

Label RandomLabel(Rng& rng, int label_count) {
  return Intern("l" + std::to_string(rng.NextBounded(label_count)));
}

void AddPredicate(Pattern* q, PNodeId attach, Rng& rng,
                  const QueryGenOptions& o) {
  PNodeId cur = attach;
  const int len = 1 + static_cast<int>(rng.NextBounded(o.pred_depth));
  for (int i = 0; i < len; ++i) {
    const Axis axis =
        rng.NextBool(o.desc_prob) ? Axis::kDescendant : Axis::kChild;
    cur = q->AddChild(cur, RandomLabel(rng, o.label_count), axis);
  }
}

}  // namespace

Pattern RandomQuery(Rng& rng, const QueryGenOptions& o) {
  Pattern q;
  PNodeId cur = q.AddRoot(Intern("root"));
  for (int d = 1; d < o.depth; ++d) {
    const Axis axis =
        rng.NextBool(o.desc_prob) ? Axis::kDescendant : Axis::kChild;
    const PNodeId next = q.AddChild(cur, RandomLabel(rng, o.label_count), axis);
    if (rng.NextBool(o.pred_prob)) AddPredicate(&q, cur, rng, o);
    cur = next;
  }
  if (rng.NextBool(o.pred_prob)) AddPredicate(&q, cur, rng, o);
  q.SetOut(cur);
  return q;
}

Pattern PrefixView(const Pattern& q, int k, bool strip_out_preds) {
  Pattern v = Prefix(q, k);
  if (strip_out_preds) v = StripOutPredicates(v);
  return v;
}

std::vector<NamedView> ViewWorkload(const Pattern& q, Rng& rng, int num_usable,
                                    int num_decoys,
                                    const QueryGenOptions& options) {
  std::vector<NamedView> views;
  const int mb = q.MainBranchLength();
  for (int i = 0; i < num_usable; ++i) {
    const int k = 1 + static_cast<int>(rng.NextBounded(mb));
    const bool strip = rng.NextBool(0.5);
    views.push_back(
        {"u" + std::to_string(i), PrefixView(q, k, strip)});
  }
  for (int i = 0; i < num_decoys; ++i) {
    views.push_back({"d" + std::to_string(i), RandomQuery(rng, options)});
  }
  return views;
}

}  // namespace pxv
