// Random p-document generators for tests and benchmarks.

#ifndef PXV_GEN_DOCGEN_H_
#define PXV_GEN_DOCGEN_H_

#include "pxml/pdocument.h"
#include "util/random.h"

namespace pxv {

/// Shape parameters for random p-documents.
struct DocGenOptions {
  int target_nodes = 50;       ///< Approximate ordinary-node count.
  int max_fanout = 3;          ///< Max children per ordinary node.
  double dist_prob = 0.35;     ///< Probability a child hangs under mux/ind.
  int label_count = 4;         ///< Labels drawn from l0..l{label_count-1}.
  int max_depth = 8;
};

/// Random p-document with mux and ind nodes. Valid by construction.
PDocument RandomPDocument(Rng& rng, const DocGenOptions& options = {});

/// A personnel-style p-document in the spirit of the paper's running
/// example: IT-personnel with `num_persons` persons, each with an uncertain
/// name (mux) and bonuses with uncertain projects/amounts. The fraction
/// `rick_fraction` of persons may be Rick, and `laptop_fraction` of bonuses
/// may be laptop bonuses.
PDocument PersonnelPDocument(Rng& rng, int num_persons,
                             double rick_fraction = 0.3,
                             double laptop_fraction = 0.4);

}  // namespace pxv

#endif  // PXV_GEN_DOCGEN_H_
