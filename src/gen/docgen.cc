#include "gen/docgen.h"

#include <string>

#include "util/check.h"
#include "xml/label.h"

namespace pxv {
namespace {

Label RandomLabel(Rng& rng, int label_count) {
  return Intern("l" + std::to_string(rng.NextBounded(label_count)));
}

void Grow(PDocument* pd, NodeId parent, int depth, int* budget, Rng& rng,
          const DocGenOptions& o) {
  if (*budget <= 0 || depth >= o.max_depth) return;
  // The root always branches so documents are never trivial.
  const int fanout = (depth == 1 ? 1 : 0) +
                     static_cast<int>(rng.NextBounded(o.max_fanout + 1));
  for (int i = 0; i < fanout && *budget > 0; ++i) {
    if (rng.NextBool(o.dist_prob)) {
      // Distributional child with 1–3 ordinary alternatives.
      const PKind kind = rng.NextBool(0.5) ? PKind::kMux : PKind::kInd;
      const NodeId dist = pd->AddDistributional(parent, kind);
      const int alts = 1 + static_cast<int>(rng.NextBounded(3));
      double remaining = 1.0;
      for (int a = 0; a < alts && *budget > 0; ++a) {
        double p = rng.NextDouble();
        if (kind == PKind::kMux) {
          p = std::min(p, remaining);
          remaining -= p;
        }
        const NodeId child =
            pd->AddOrdinary(dist, RandomLabel(rng, o.label_count), p);
        --*budget;
        Grow(pd, child, depth + 1, budget, rng, o);
      }
    } else {
      const NodeId child =
          pd->AddOrdinary(parent, RandomLabel(rng, o.label_count));
      --*budget;
      Grow(pd, child, depth + 1, budget, rng, o);
    }
  }
}

// Removes invalidity: distributional leaves get an ordinary child. Raw
// arena scan — skip tombstones (re-attaching a child under one would trip
// the insert-under-detached check if a caller ever churns a generated doc).
void FixLeaves(PDocument* pd) {
  const int n = pd->size();
  for (NodeId i = 0; i < n; ++i) {
    if (!pd->ordinary(i) && !pd->detached(i) && pd->children(i).empty()) {
      pd->AddOrdinary(i, Intern("leaf"), 0.5);
    }
  }
}

}  // namespace

PDocument RandomPDocument(Rng& rng, const DocGenOptions& options) {
  PDocument pd;
  {
    PDocument::MutationBatch batch(&pd);  // One stamp for the whole build.
    const NodeId root = pd.AddRoot(Intern("root"));
    int budget = options.target_nodes;
    Grow(&pd, root, 1, &budget, rng, options);
    FixLeaves(&pd);
  }
  PXV_CHECK(pd.Validate().ok());
  pd.ClearDirtyPaths();
  return pd;
}

PDocument PersonnelPDocument(Rng& rng, int num_persons, double rick_fraction,
                             double laptop_fraction) {
  PDocument pd;
  {
    PDocument::MutationBatch batch(&pd);  // One stamp; scoped before return.
    const NodeId it = pd.AddRoot(Intern("IT-personnel"));
    const Label names[] = {Intern("Mary"), Intern("John"), Intern("Paula"),
                           Intern("Ivan")};
    const Label projects[] = {Intern("pda"), Intern("tablet"), Intern("phone")};
    for (int i = 0; i < num_persons; ++i) {
      const NodeId person = pd.AddOrdinary(it, Intern("person"));
      const NodeId name = pd.AddOrdinary(person, Intern("name"));
      // Uncertain identity: a mux over two candidate names.
      const NodeId mux = pd.AddDistributional(name, PKind::kMux);
      const bool maybe_rick = rng.NextBool(rick_fraction);
      const double p = 0.4 + 0.5 * rng.NextDouble();
      pd.AddOrdinary(mux,
                     maybe_rick ? Intern("Rick") : names[rng.NextBounded(4)], p);
      pd.AddOrdinary(mux, names[rng.NextBounded(4)], 1.0 - p);
      // Bonuses: one or two, each with an uncertain project.
      const int bonuses = 1 + static_cast<int>(rng.NextBounded(2));
      for (int b = 0; b < bonuses; ++b) {
        const NodeId bonus = pd.AddOrdinary(person, Intern("bonus"));
        const NodeId pmux = pd.AddDistributional(bonus, PKind::kMux);
        const bool maybe_laptop = rng.NextBool(laptop_fraction);
        const double lp = 0.3 + 0.6 * rng.NextDouble();
        const NodeId proj = pd.AddOrdinary(
            pmux, maybe_laptop ? Intern("laptop") : projects[rng.NextBounded(3)],
            lp);
        pd.AddOrdinary(proj,
                       Intern(std::to_string(10 + rng.NextBounded(90))));
        const NodeId alt =
            pd.AddOrdinary(pmux, projects[rng.NextBounded(3)], 1.0 - lp);
        pd.AddOrdinary(alt, Intern(std::to_string(10 + rng.NextBounded(90))));
      }
    }
  }
  PXV_CHECK(pd.Validate().ok());
  pd.ClearDirtyPaths();
  return pd;
}

}  // namespace pxv
