// Every worked instance of the paper, as named constructors.
//
// Figures 1–4 are given explicitly in the paper. Figure 5 (the p-documents
// P̂1, P̂2 of Example 11 and P̂3, P̂4 of Example 12) is partially garbled in
// the available text; the constructors below are reconstructions that
// reproduce *all* the published probability values — see DESIGN.md §3.5 and
// tests/paper_examples_test.cc, which asserts every constant from the paper.

#ifndef PXV_GEN_PAPER_H_
#define PXV_GEN_PAPER_H_

#include "pxml/pdocument.h"
#include "tp/pattern.h"
#include "xml/document.h"

namespace pxv {
namespace paper {

/// Figure 1: the deterministic personnel document d_PER (paper node ids as
/// persistent ids).
Document DocPER();

/// Figure 2: the p-document P̂_PER.
PDocument PDocPER();

/// Figure 3: q_RBON = IT-personnel//person[name/Rick]/bonus[laptop].
Pattern QueryRBON();
/// Figure 3: q_BON = IT-personnel//person/bonus[laptop].
Pattern QueryBON();
/// Figure 3: v1_BON = IT-personnel//person[name/Rick]/bonus.
Pattern ViewV1BON();
/// Figure 3: v2_BON = IT-personnel//person/bonus.
Pattern ViewV2BON();

/// Example 11: q = a/b[c].
Pattern Query11();
/// Example 11: v = a[.//c]/b.
Pattern View11();
/// Example 11: P̂1 — Pr(b ∈ q(P1)) = 0.65·0.5 = 0.325, view prob 0.65.
PDocument PDoc1();
/// Example 11: P̂2 — Pr(b ∈ q(P2)) = 0.5, view prob 1−(1−0.3)(1−0.5) = 0.65.
PDocument PDoc2();

/// Example 12: q = a//b[e]/c/b/c//d.
Pattern Query12();
/// Example 12: v = a//b[e]/c/b/c.
Pattern View12();
/// Example 12: P̂3 — view selects nc1 with 0.12 and nc2 with 0.24; the
/// direct answer is 0.4·0.3 + 0.6·0.4 − 0.3·0.4·0.6 = 0.288.
PDocument PDoc3();
/// Example 12: P̂4 — same view probabilities; direct answer
/// 0.3·0.4 + 0.3·0.8 − 0.3·0.4·0.8 = 0.264.
PDocument PDoc4();

/// Persistent ids of the interesting nodes of P̂3/P̂4.
inline constexpr PersistentId kPid12_C2 = 6;  ///< n_c1 in the paper's naming.
inline constexpr PersistentId kPid12_C3 = 8;  ///< n_c2.
inline constexpr PersistentId kPid12_D = 9;   ///< n_d.

/// Example 16: q = a[1]/b[2]/c[3]/d.
Pattern Query16();
/// Example 16 views: v1 = a[1]/b/c[3]/d, v2 = a/b[2]/c[3]/d,
/// v3 = a[1]/b[2]/c/d, v4 = a//d.
Pattern View16(int i);

}  // namespace paper
}  // namespace pxv

#endif  // PXV_GEN_PAPER_H_
