#include "pxml/view_extension.h"

#include <atomic>

#include "util/check.h"
#include "xml/label.h"

namespace pxv {
namespace {

// Fresh persistent ids for extension-local nodes (markers, copies). A
// process-wide counter keeps fresh ids unique *across* extensions — under
// copy semantics two different views' copies of the same node must not
// accidentally share an id (that would reintroduce identity).
PersistentId NextFreshPid() {
  static std::atomic<PersistentId> counter{-2};
  return counter.fetch_sub(1, std::memory_order_relaxed);
}

// Copies the p-subdocument rooted at `src` under `dst_parent` of `out`.
// Ordinary nodes keep their pid (or get fresh negative ids under copy
// semantics) and receive Id(original pid) marker children when requested.
// Iterative preorder (explicit stack) so arbitrarily deep subdocuments —
// production-scale extensions — cannot overflow the call stack; child order
// is preserved, which exp distributions rely on.
struct CopyItem {
  NodeId src;
  NodeId dst_parent;
  double edge_prob;
};

void CopySubtree(const PDocument& pd, NodeId src, PDocument* out,
                 NodeId dst_parent, double edge_prob,
                 const ViewExtensionOptions& options,
                 PersistentId* marker_pid, std::vector<CopyItem>* stack_buf) {
  std::vector<CopyItem>& stack = *stack_buf;
  stack.clear();
  stack.push_back({src, dst_parent, edge_prob});
  while (!stack.empty()) {
    const CopyItem item = stack.back();
    stack.pop_back();
    NodeId dst;
    if (pd.ordinary(item.src)) {
      const PersistentId original = pd.pid(item.src);
      // Copy semantics draws from the global counter (copies of the same
      // node in different extensions must not share an id); markers are
      // extension-local bookkeeping and use a deterministic local counter,
      // keeping extension equality well-defined (Examples 11/12).
      const PersistentId pid =
          options.copy_semantics ? NextFreshPid() : original;
      dst = out->AddOrdinary(item.dst_parent, pd.label(item.src),
                             item.edge_prob, pid);
      out->ReserveChildren(
          dst, static_cast<int>(pd.children(item.src).size()) +
                   (options.add_id_markers ? 1 : 0));
      if (options.add_id_markers) {
        out->AddOrdinary(dst, IdMarkerLabel(original), 1.0, (*marker_pid)--);
      }
    } else if (pd.kind(item.src) == PKind::kExp) {
      dst = out->AddExp(item.dst_parent, item.edge_prob);
      // Markers attach to ordinary nodes only, so the exp node's child
      // positions are preserved and the distribution copies verbatim.
      out->SetExpDistribution(dst, pd.exp_distribution(item.src));
    } else {
      dst = out->AddDistributional(item.dst_parent, pd.kind(item.src),
                                   item.edge_prob);
    }
    const auto& kids = pd.children(item.src);
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
      stack.push_back({*it, dst, pd.edge_prob(*it)});
    }
  }
}

}  // namespace

PDocument BuildViewExtension(const PDocument& pd, std::string_view view_name,
                             const std::vector<ViewResultEntry>& results,
                             const ViewExtensionOptions& options) {
  PDocument ext;
  // Extension-local nodes (root, ind, markers, copies) get fresh negative
  // pids so they can never collide with original persistent ids.
  const NodeId root = ext.AddRoot(DocLabel(view_name), /*pid=*/-1);
  const NodeId ind = ext.AddDistributional(root, PKind::kInd);
  // Size hint: result subtrees can jointly cover the whole source document
  // (and may overlap, so this is a heuristic, not a bound), and with id
  // markers every copied ordinary node gains one marker child.
  ext.Reserve(pd.size() * (options.add_id_markers ? 2 : 1) + 2);
  PersistentId marker_pid = -1000;
  std::vector<CopyItem> stack;  // Shared across entries: one allocation.
  for (const auto& entry : results) {
    PXV_CHECK(pd.ordinary(entry.node))
        << "view results must be ordinary nodes";
    CopySubtree(pd, entry.node, &ext, ind, entry.prob, options, &marker_pid,
                &stack);
  }
  return ext;
}

std::vector<NodeId> ExtensionResultRoots(const PDocument& ext) {
  std::vector<NodeId> roots;
  if (ext.empty()) return roots;
  const auto& root_kids = ext.children(ext.root());
  PXV_CHECK_EQ(root_kids.size(), 1u);
  PXV_CHECK(ext.kind(root_kids[0]) == PKind::kInd);
  for (NodeId c : ext.children(root_kids[0])) roots.push_back(c);
  return roots;
}

}  // namespace pxv
