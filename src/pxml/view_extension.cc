#include "pxml/view_extension.h"

#include <atomic>

#include "util/check.h"
#include "xml/label.h"

namespace pxv {
namespace {

// Fresh persistent ids for extension-local nodes (markers, copies). A
// process-wide counter keeps fresh ids unique *across* extensions — under
// copy semantics two different views' copies of the same node must not
// accidentally share an id (that would reintroduce identity).
PersistentId NextFreshPid() {
  static std::atomic<PersistentId> counter{-2};
  return counter.fetch_sub(1, std::memory_order_relaxed);
}

// Copies the p-subdocument rooted at `src` under `dst_parent` of `out`.
// Ordinary nodes keep their pid (or get fresh negative ids under copy
// semantics) and receive Id(original pid) marker children when requested.
// Iterative preorder (explicit stack) so arbitrarily deep subdocuments —
// production-scale extensions — cannot overflow the call stack; child order
// is preserved, which exp distributions rely on.
struct CopyItem {
  NodeId src;
  NodeId dst_parent;
  double edge_prob;
};

NodeId CopySubtree(const PDocument& pd, NodeId src, PDocument* out,
                   NodeId dst_parent, double edge_prob,
                   const ViewExtensionOptions& options,
                   PersistentId* marker_pid, std::vector<CopyItem>* stack_buf) {
  NodeId copy_root = kNullNode;
  std::vector<CopyItem>& stack = *stack_buf;
  stack.clear();
  stack.push_back({src, dst_parent, edge_prob});
  while (!stack.empty()) {
    const CopyItem item = stack.back();
    stack.pop_back();
    NodeId dst;
    if (pd.ordinary(item.src)) {
      const PersistentId original = pd.pid(item.src);
      // Copy semantics draws from the global counter (copies of the same
      // node in different extensions must not share an id); markers are
      // extension-local bookkeeping and use a deterministic local counter,
      // keeping extension equality well-defined (Examples 11/12).
      const PersistentId pid =
          options.copy_semantics ? NextFreshPid() : original;
      dst = out->AddOrdinary(item.dst_parent, pd.label(item.src),
                             item.edge_prob, pid);
      out->ReserveChildren(
          dst, static_cast<int>(pd.children(item.src).size()) +
                   (options.add_id_markers ? 1 : 0));
      if (options.add_id_markers) {
        out->AddOrdinary(dst, IdMarkerLabel(original), 1.0, (*marker_pid)--);
      }
    } else if (pd.kind(item.src) == PKind::kExp) {
      dst = out->AddExp(item.dst_parent, item.edge_prob);
      // Markers attach to ordinary nodes only, so the exp node's child
      // positions are preserved and the distribution copies verbatim.
      out->SetExpDistribution(dst, pd.exp_distribution(item.src));
    } else {
      dst = out->AddDistributional(item.dst_parent, pd.kind(item.src),
                                   item.edge_prob);
    }
    if (item.src == src) copy_root = dst;
    const auto& kids = pd.children(item.src);
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
      stack.push_back({*it, dst, pd.edge_prob(*it)});
    }
  }
  return copy_root;
}

// The ind bundling node of an extension (single child of the root).
NodeId ExtensionIndNode(const PDocument& ext) {
  const auto& root_kids = ext.children(ext.root());
  PXV_CHECK_EQ(root_kids.size(), 1u);
  PXV_CHECK(ext.kind(root_kids[0]) == PKind::kInd);
  return root_kids[0];
}

}  // namespace

MaterializedView BuildMaterializedView(const PDocument& pd,
                                       std::string_view view_name,
                                       const std::vector<ViewResultEntry>& results,
                                       const ViewExtensionOptions& options) {
  MaterializedView view;
  PDocument& ext = view.ext;
  {
    // One version stamp for the whole construction (amortizes the per-node
    // spine stamping of the mutation model); the scope closes the batch
    // before the return so the result never travels with an open batch.
    PDocument::MutationBatch batch(&ext);
    // Extension-local nodes (root, ind, markers, copies) get fresh negative
    // pids so they can never collide with original persistent ids.
    const NodeId root = ext.AddRoot(DocLabel(view_name), /*pid=*/-1);
    const NodeId ind = ext.AddDistributional(root, PKind::kInd);
    // Size hint: result subtrees can jointly cover the whole source document
    // (and may overlap, so this is a heuristic, not a bound), and with id
    // markers every copied ordinary node gains one marker child.
    ext.Reserve(pd.size() * (options.add_id_markers ? 2 : 1) + 2);
    std::vector<CopyItem> stack;  // Shared across entries: one allocation.
    view.results = results;
    view.ext_roots.reserve(results.size());
    view.versions.reserve(results.size());
    for (const auto& entry : results) {
      PXV_CHECK(pd.ordinary(entry.node))
          << "view results must be ordinary nodes";
      view.ext_roots.push_back(CopySubtree(pd, entry.node, &ext, ind,
                                           entry.prob, options,
                                           &view.next_marker_pid, &stack));
      view.versions.push_back(pd.version(entry.node));
    }
  }
  ext.ClearDirtyPaths();  // Construction is not a delta.
  return view;
}

PDocument BuildViewExtension(const PDocument& pd, std::string_view view_name,
                             const std::vector<ViewResultEntry>& results,
                             const ViewExtensionOptions& options) {
  return BuildMaterializedView(pd, view_name, results, options).ext;
}

ExtensionDeltaStats BuildViewExtensionDelta(
    const PDocument& pd, const std::vector<ViewResultEntry>& new_results,
    MaterializedView* view, const ViewExtensionOptions& options) {
  ExtensionDeltaStats stats;
  PDocument& ext = view->ext;
  PDocument::MutationBatch batch(&ext);
  const NodeId ind = ExtensionIndNode(ext);
  std::vector<NodeId> new_roots;
  std::vector<uint64_t> new_versions;
  new_roots.reserve(new_results.size());
  new_versions.reserve(new_results.size());
  std::vector<CopyItem> stack;
  // Both result lists ascend by source node id, so one two-pointer sweep
  // classifies every entry; only changed entries touch the extension.
  size_t i = 0, j = 0;
  while (i < view->results.size() || j < new_results.size()) {
    const bool take_old = j >= new_results.size() ||
                          (i < view->results.size() &&
                           view->results[i].node < new_results[j].node);
    const bool take_new = i >= view->results.size() ||
                          (j < new_results.size() &&
                           new_results[j].node < view->results[i].node);
    if (take_old) {
      ext.RemoveSubtree(view->ext_roots[i]);
      ++stats.removed;
      ++i;
      continue;
    }
    if (take_new) {
      new_roots.push_back(CopySubtree(pd, new_results[j].node, &ext, ind,
                                      new_results[j].prob, options,
                                      &view->next_marker_pid, &stack));
      new_versions.push_back(pd.version(new_results[j].node));
      ++stats.inserted;
      ++j;
      continue;
    }
    // Same source node on both sides.
    const NodeId node = new_results[j].node;
    const uint64_t version = pd.version(node);
    if (version != view->versions[i]) {
      // The source subtree itself mutated: the copy must be redone.
      ext.RemoveSubtree(view->ext_roots[i]);
      new_roots.push_back(CopySubtree(pd, node, &ext, ind,
                                      new_results[j].prob, options,
                                      &view->next_marker_pid, &stack));
      ++stats.replaced;
    } else if (new_results[j].prob != view->results[i].prob) {
      // Subtree intact, anchored probability changed: one edge update.
      ext.SetEdgeProb(view->ext_roots[i], new_results[j].prob);
      new_roots.push_back(view->ext_roots[i]);
      ++stats.reprob;
    } else {
      new_roots.push_back(view->ext_roots[i]);
      ++stats.kept;
    }
    new_versions.push_back(version);
    ++i;
    ++j;
  }
  // Restore the exact sibling order a from-scratch build would produce
  // (ascending source node id): answers evaluated over the patched
  // extension then match a rebuild bit for bit.
  ext.SetChildOrder(ind, new_roots);
  ext.ClearDirtyPaths();
  view->results = new_results;
  view->ext_roots = std::move(new_roots);
  view->versions = std::move(new_versions);
  return stats;
}

const PDocument* ExtensionSet::Find(std::string_view name) const {
  if (owned_ != nullptr) {
    const auto it = owned_->find(name);
    return it == owned_->end() ? nullptr : &it->second;
  }
  const auto it = shared_->find(name);
  return it == shared_->end() ? nullptr : it->second.get();
}

std::vector<NodeId> ExtensionResultRoots(const PDocument& ext) {
  std::vector<NodeId> roots;
  if (ext.empty()) return roots;
  for (NodeId c : ext.children(ExtensionIndNode(ext))) roots.push_back(c);
  return roots;
}

}  // namespace pxv
