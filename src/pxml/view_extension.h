// Probabilistic view extensions P̂_v (paper §3.1).
//
// Given view results v(P̂) = {(n, β)}, the extension is a p-document rooted
// at a doc(v)-labeled node with a single ind child; for each result (n, β)
// the p-subdocument P̂_n hangs under the ind node with edge probability β.
// The ind node only *bundles* the results — no independence between view
// outputs is assumed or exploited (the paper is explicit about this).
//
// Per the paper's w.l.o.g. post-processing, every copied node receives a
// fresh child labeled Id(pid) so that all occurrences of a node are
// addressable by queries, and extensions consist of subtrees of the original
// document even under copy semantics. The probability functions f_r of the
// rewriting modules receive only ViewExtensions objects — by construction
// they can never touch the original p-document.

#ifndef PXV_PXML_VIEW_EXTENSION_H_
#define PXV_PXML_VIEW_EXTENSION_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "pxml/pdocument.h"

namespace pxv {

/// One node selected by a view, with its probability Pr(n ∈ v(P)).
struct ViewResultEntry {
  NodeId node = kNullNode;  // Node of the original p-document.
  double prob = 0;
};

struct ViewExtensionOptions {
  /// Plug an Id(pid) marker child below every copied node (§3.1 w.l.o.g.).
  bool add_id_markers = true;
  /// Copy semantics: nodes of the extension receive fresh pids (original
  /// identities are still recorded by the Id(...) markers).
  bool copy_semantics = false;
};

/// Builds P̂_v. `results` come from evaluating the view (see prob/query_eval).
PDocument BuildViewExtension(const PDocument& pd, std::string_view view_name,
                             const std::vector<ViewResultEntry>& results,
                             const ViewExtensionOptions& options = {});

/// The set D^P̂_V: one extension per view name.
using ViewExtensions = std::map<std::string, PDocument, std::less<>>;

/// Top-level result subtree roots of an extension (the children of the ind
/// node), in construction order — one per ViewResultEntry.
std::vector<NodeId> ExtensionResultRoots(const PDocument& ext);

}  // namespace pxv

#endif  // PXV_PXML_VIEW_EXTENSION_H_
