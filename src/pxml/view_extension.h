// Probabilistic view extensions P̂_v (paper §3.1).
//
// Given view results v(P̂) = {(n, β)}, the extension is a p-document rooted
// at a doc(v)-labeled node with a single ind child; for each result (n, β)
// the p-subdocument P̂_n hangs under the ind node with edge probability β.
// The ind node only *bundles* the results — no independence between view
// outputs is assumed or exploited (the paper is explicit about this).
//
// Per the paper's w.l.o.g. post-processing, every copied node receives a
// fresh child labeled Id(pid) so that all occurrences of a node are
// addressable by queries, and extensions consist of subtrees of the original
// document even under copy semantics. The probability functions f_r of the
// rewriting modules receive only ViewExtensions objects — by construction
// they can never touch the original p-document.

#ifndef PXV_PXML_VIEW_EXTENSION_H_
#define PXV_PXML_VIEW_EXTENSION_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "pxml/pdocument.h"

namespace pxv {

/// One node selected by a view, with its probability Pr(n ∈ v(P)).
struct ViewResultEntry {
  NodeId node = kNullNode;  // Node of the original p-document.
  double prob = 0;
};

struct ViewExtensionOptions {
  /// Plug an Id(pid) marker child below every copied node (§3.1 w.l.o.g.).
  bool add_id_markers = true;
  /// Copy semantics: nodes of the extension receive fresh pids (original
  /// identities are still recorded by the Id(...) markers).
  bool copy_semantics = false;
};

/// Builds P̂_v. `results` come from evaluating the view (see prob/query_eval).
PDocument BuildViewExtension(const PDocument& pd, std::string_view view_name,
                             const std::vector<ViewResultEntry>& results,
                             const ViewExtensionOptions& options = {});

/// The set D^P̂_V: one extension per view name.
using ViewExtensions = std::map<std::string, PDocument, std::less<>>;

/// Snapshot form of the set: per-view shared ownership, so publishing a new
/// snapshot after a delta update shares the untouched extensions instead of
/// copying them (see serve/document_store.h).
using SharedExtensions =
    std::map<std::string, std::shared_ptr<const PDocument>, std::less<>>;

/// Non-owning name → extension lookup over either representation. The
/// execution layer (rewrite/planner, rewrite/tpi_rewrite) reads extensions
/// exclusively through this seam, so owned sets (Rewriter::Materialize) and
/// shared snapshots (DocumentStore) serve the same plans. Implicitly
/// constructible from both — existing ViewExtensions call sites just work.
class ExtensionSet {
 public:
  ExtensionSet(const ViewExtensions& owned) : owned_(&owned) {}      // NOLINT
  ExtensionSet(const SharedExtensions& shared) : shared_(&shared) {} // NOLINT

  /// The named extension, or nullptr when absent.
  const PDocument* Find(std::string_view name) const;
  bool Has(std::string_view name) const { return Find(name) != nullptr; }

 private:
  const ViewExtensions* owned_ = nullptr;
  const SharedExtensions* shared_ = nullptr;
};

/// A view extension together with the bookkeeping that makes it patchable:
/// the result entries it was built from (ascending source node id, the
/// engine's order), each entry's subtree root inside `ext`, and the source
/// subtree version captured at copy time (stale ⇒ the copy must be redone).
struct MaterializedView {
  PDocument ext;
  std::vector<ViewResultEntry> results;
  std::vector<NodeId> ext_roots;
  std::vector<uint64_t> versions;
  PersistentId next_marker_pid = -1000;  // Continues across patches.
};

/// BuildViewExtension plus the patch bookkeeping.
MaterializedView BuildMaterializedView(
    const PDocument& pd, std::string_view view_name,
    const std::vector<ViewResultEntry>& results,
    const ViewExtensionOptions& options = {});

/// What one delta patch did (observability; also exercised by tests).
struct ExtensionDeltaStats {
  int kept = 0;      ///< Result untouched (same subtree, same probability).
  int reprob = 0;    ///< Only the anchored probability changed (one
                     ///< SetEdgeProb on the copy's root).
  int replaced = 0;  ///< Source subtree mutated: copy removed and redone.
  int inserted = 0;  ///< New result node.
  int removed = 0;   ///< Result node no longer selected.
};

/// Patches `view` in place so it equals BuildMaterializedView(pd, name,
/// new_results, options) — same result subtrees, same anchored
/// probabilities, same sibling order under the ind node (detached tombstones
/// and node-id layout excepted) — touching only the changed entries:
/// O(|delta|) instead of O(|P̂_v|). `new_results` must be ascending by node,
/// and `options` must match the ones the view was built with.
///
/// After a source-document compaction (PDocument::Compact) the caller
/// remaps `view->results[i].node` through the remap table: dropped sources
/// become kNullNode, which this diff classifies as "removed" on sight
/// (kNullNode precedes every live id), and the surviving entries keep their
/// relative order (stable-rank remap), so the two-pointer alignment — and
/// with it O(|delta|) patching — carries across the compaction.
ExtensionDeltaStats BuildViewExtensionDelta(
    const PDocument& pd, const std::vector<ViewResultEntry>& new_results,
    MaterializedView* view, const ViewExtensionOptions& options = {});

/// Top-level result subtree roots of an extension (the children of the ind
/// node), in construction order — one per ViewResultEntry.
std::vector<NodeId> ExtensionResultRoots(const PDocument& ext);

}  // namespace pxv

#endif  // PXV_PXML_VIEW_EXTENSION_H_
