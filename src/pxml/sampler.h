// Monte-Carlo sampling of random documents from a p-document — one run of
// the §2 random process. Used for statistical cross-checks of the exact
// engines and for workload generation at scales where enumeration blows up.

#ifndef PXV_PXML_SAMPLER_H_
#define PXV_PXML_SAMPLER_H_

#include <vector>

#include "pxml/pdocument.h"
#include "util/random.h"
#include "xml/document.h"

namespace pxv {

/// A sampled world with the node correspondence.
struct SampledWorld {
  Document doc;
  /// p-document node → document node (kNullNode if deleted/distributional).
  std::vector<NodeId> pdoc_to_doc;
};

/// Draws one random document P ~ ⟦P̂⟧.
SampledWorld SampleWorld(const PDocument& pd, Rng& rng);

}  // namespace pxv

#endif  // PXV_PXML_SAMPLER_H_
