#include "pxml/sampler.h"

#include "util/check.h"

namespace pxv {
namespace {

// Recursively materializes the region rooted at p-doc node `n` (whose
// incoming edge was taken) under document node `doc_parent`.
void Materialize(const PDocument& pd, NodeId n, NodeId doc_parent,
                 SampledWorld* out, Rng& rng) {
  NodeId attach = doc_parent;
  if (pd.ordinary(n)) {
    attach = (doc_parent == kNullNode)
                 ? out->doc.AddRoot(pd.label(n), pd.pid(n))
                 : out->doc.AddChild(doc_parent, pd.label(n), pd.pid(n));
    out->pdoc_to_doc[n] = attach;
  }
  const auto& kids = pd.children(n);
  switch (pd.kind(n)) {
    case PKind::kOrdinary:
    case PKind::kDet:
      for (NodeId c : kids) Materialize(pd, c, attach, out, rng);
      break;
    case PKind::kMux: {
      double r = rng.NextDouble();
      for (NodeId c : kids) {
        r -= pd.edge_prob(c);
        if (r < 0) {
          Materialize(pd, c, attach, out, rng);
          break;
        }
      }
      break;  // Falling through all children = "keep none".
    }
    case PKind::kInd:
      for (NodeId c : kids) {
        if (rng.NextBool(pd.edge_prob(c))) Materialize(pd, c, attach, out, rng);
      }
      break;
    case PKind::kExp: {
      double r = rng.NextDouble();
      for (const auto& [subset, p] : pd.exp_distribution(n)) {
        r -= p;
        if (r < 0) {
          for (int idx : subset) Materialize(pd, kids[idx], attach, out, rng);
          break;
        }
      }
      break;
    }
  }
}

}  // namespace

SampledWorld SampleWorld(const PDocument& pd, Rng& rng) {
  PXV_CHECK(!pd.empty());
  SampledWorld out;
  out.pdoc_to_doc.assign(pd.size(), kNullNode);
  Materialize(pd, pd.root(), kNullNode, &out, rng);
  return out;
}

}  // namespace pxv
