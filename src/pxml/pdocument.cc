#include "pxml/pdocument.h"

#include <algorithm>
#include <atomic>

#include <sstream>

#include "util/check.h"
#include "util/strings.h"

namespace pxv {

const char* PKindName(PKind kind) {
  switch (kind) {
    case PKind::kOrdinary: return "ordinary";
    case PKind::kMux: return "mux";
    case PKind::kInd: return "ind";
    case PKind::kDet: return "det";
    case PKind::kExp: return "exp";
  }
  return "?";
}

namespace {

// Process-global uid/version source. A namespace-scope atomic (not a
// function-local static) so BumpVersionCounterPast can raise it when
// deserialization imports stamps drawn by another process.
std::atomic<uint64_t> g_uid_counter{1};

}  // namespace

uint64_t PDocument::NextUid() {
  return g_uid_counter.fetch_add(1, std::memory_order_relaxed);
}

void PDocument::BumpVersionCounterPast(uint64_t v) {
  uint64_t cur = g_uid_counter.load(std::memory_order_relaxed);
  while (cur <= v &&
         !g_uid_counter.compare_exchange_weak(cur, v + 1,
                                              std::memory_order_relaxed)) {
  }
}

PDocument::MutationBatch::MutationBatch(PDocument* pd) : pd_(pd) {
  PXV_CHECK(!pd->in_batch_) << "mutation batches must not nest";
  pd->in_batch_ = true;
  pd->batch_stamped_ = false;
}

PDocument::MutationBatch::~MutationBatch() {
  pd_->in_batch_ = false;
  pd_->batch_stamped_ = false;
}

void PDocument::Stamp(NodeId n) {
  if (!in_batch_ || !batch_stamped_) {
    uid_ = NextUid();
    batch_stamped_ = true;
  }
  // Within one batch every stamped node carries uid_, so the walk can stop
  // at the first ancestor already stamped: batched bulk construction pays
  // O(1) amortized instead of O(depth) per node.
  for (NodeId cur = n; cur != kNullNode; cur = nodes_[cur].parent) {
    if (nodes_[cur].version == uid_) break;
    nodes_[cur].version = uid_;
  }
}

NodeId PDocument::Add(NodeId parent, PNode node) {
  node.parent = parent;
  node.detached = false;
  nodes_.push_back(std::move(node));
  const NodeId id = static_cast<NodeId>(nodes_.size() - 1);
  if (parent != kNullNode) nodes_[parent].children.push_back(id);
  Stamp(id);
  structure_version_ = uid_;
  return id;
}

NodeId PDocument::AddRoot(Label label, PersistentId pid) {
  PXV_CHECK(nodes_.empty()) << "root already exists";
  PNode node;
  node.kind = PKind::kOrdinary;
  node.label = label;
  node.pid = (pid == kNullPid) ? 0 : pid;
  return Add(kNullNode, std::move(node));
}

NodeId PDocument::AddOrdinary(NodeId parent, Label label, double edge_prob,
                              PersistentId pid) {
  Check(parent);
  PNode node;
  node.kind = PKind::kOrdinary;
  node.label = label;
  node.edge_prob = edge_prob;
  node.pid = (pid == kNullPid) ? static_cast<PersistentId>(nodes_.size()) : pid;
  return Add(parent, std::move(node));
}

NodeId PDocument::AddDistributional(NodeId parent, PKind kind,
                                    double edge_prob) {
  Check(parent);
  PXV_CHECK(kind == PKind::kMux || kind == PKind::kInd || kind == PKind::kDet)
      << "use AddExp for exp nodes";
  PNode node;
  node.kind = kind;
  node.edge_prob = edge_prob;
  return Add(parent, std::move(node));
}

NodeId PDocument::AddExp(NodeId parent, double edge_prob) {
  Check(parent);
  PNode node;
  node.kind = PKind::kExp;
  node.edge_prob = edge_prob;
  return Add(parent, std::move(node));
}

void PDocument::SetExpDistribution(
    NodeId n, std::vector<std::pair<std::vector<int>, double>> dist) {
  PXV_CHECK(kind(n) == PKind::kExp);
  nodes_[n].exp_dist = std::move(dist);
  Stamp(n);
  dirty_.push_back(n);
}

void PDocument::SetEdgeProb(NodeId n, double p) {
  Check(n);
  nodes_[n].edge_prob = p;
  Stamp(n);
  dirty_.push_back(n);
}

NodeId PDocument::InsertSubtree(NodeId parent, const PDocument& sub,
                                double edge_prob) {
  Check(parent);
  PXV_CHECK(&sub != this) << "cannot insert a document into itself";
  PXV_CHECK(!sub.empty()) << "empty insert payload";
  PXV_CHECK(!nodes_[parent].detached) << "insert under a detached node";
  PXV_CHECK(kind(parent) != PKind::kExp)
      << "cannot insert under an exp node (subset indices are positional)";
  // Refresh uid_ and stamp the spine first so the copied nodes below can
  // all carry the same fresh stamp (every inserted node is new content).
  Stamp(parent);
  const uint64_t stamp = uid_;
  nodes_.reserve(nodes_.size() + sub.size());
  // Iterative preorder copy preserving child order (exp subsets are
  // positional) — the same scheme as Subtree(), in the other direction.
  std::vector<std::pair<NodeId, NodeId>> stack;  // (src in sub, dst here)
  PNode root_copy = sub.nodes_[sub.root()];
  root_copy.children.clear();
  root_copy.edge_prob = edge_prob;
  root_copy.version = stamp;
  nodes_.push_back(std::move(root_copy));
  const NodeId new_root = static_cast<NodeId>(nodes_.size() - 1);
  nodes_[new_root].parent = parent;
  nodes_[parent].children.push_back(new_root);
  stack.emplace_back(sub.root(), new_root);
  while (!stack.empty()) {
    const auto [src, dst] = stack.back();
    stack.pop_back();
    for (NodeId child : sub.children(src)) {
      PNode copy = sub.nodes_[child];
      copy.children.clear();
      copy.parent = dst;
      copy.detached = false;
      copy.version = stamp;
      nodes_.push_back(std::move(copy));
      const NodeId nid = static_cast<NodeId>(nodes_.size() - 1);
      nodes_[dst].children.push_back(nid);
      stack.emplace_back(child, nid);
    }
  }
  structure_version_ = uid_;
  dirty_.push_back(new_root);
  return new_root;
}

void PDocument::RemoveSubtree(NodeId n) {
  Check(n);
  PXV_CHECK(n != root()) << "cannot remove the root";
  PXV_CHECK(!nodes_[n].detached) << "subtree already detached";
  const NodeId par = nodes_[n].parent;
  PXV_CHECK(kind(par) != PKind::kExp)
      << "cannot remove a child of an exp node (subset indices are positional)";
  auto& kids = nodes_[par].children;
  kids.erase(std::find(kids.begin(), kids.end(), n));
  // Flag the whole subtree: the nodes stay in the arena (ids are never
  // reused) but every scan must skip them.
  std::vector<NodeId> stack{n};
  while (!stack.empty()) {
    const NodeId cur = stack.back();
    stack.pop_back();
    nodes_[cur].detached = true;
    ++detached_count_;
    for (NodeId c : nodes_[cur].children) stack.push_back(c);
  }
  Stamp(par);
  structure_version_ = uid_;
  dirty_.push_back(n);
}

std::vector<NodeId> PDocument::Compact() {
  PXV_CHECK(!in_batch_) << "cannot compact inside an open mutation batch";
  std::vector<NodeId> remap(nodes_.size(), kNullNode);
  if (detached_count_ == 0) {
    // Nothing to drop: identity remap, no uid churn (callers' caches stay).
    for (NodeId n = 0; n < size(); ++n) remap[n] = n;
    return remap;
  }
  // Stable-rank remap: live nodes keep their relative id order, so the
  // parent-precedes-child arena invariant survives and ascending-id scans
  // (LabelIndex, batch results, extension construction order) visit the
  // same live nodes in the same order as before compaction.
  NodeId next = 0;
  for (NodeId n = 0; n < size(); ++n) {
    if (!nodes_[n].detached) remap[n] = next++;
  }
  // Dirty entries whose target is dropped (a not-yet-consumed removal) fall
  // back to the nearest live ancestor: the removed labels are gone, but the
  // structural change still dirties its spine. Resolved against the old
  // parent links, before the arena is rebuilt.
  for (NodeId& d : dirty_) {
    NodeId cur = d;
    while (remap[cur] == kNullNode) cur = nodes_[cur].parent;
    d = remap[cur];
  }
  std::vector<PNode> fresh(next);
  for (NodeId n = 0; n < size(); ++n) {
    if (nodes_[n].detached) continue;
    PNode node = std::move(nodes_[n]);
    if (node.parent != kNullNode) node.parent = remap[node.parent];
    // A live node's children are all live: removal unlinks the detached
    // root from its (live) parent, and interior detached nodes only hang
    // off detached parents.
    for (NodeId& c : node.children) {
      PXV_CHECK_NE(remap[c], kNullNode) << "live node with detached child";
      c = remap[c];
    }
    fresh[remap[n]] = std::move(node);
  }
  nodes_ = std::move(fresh);
  detached_count_ = 0;
  // Node ids are cache keys (subtree memos, analysis buffers, label
  // indexes): a fresh uid/structure_version guarantees none of them can be
  // served across the remap. Versions stay — they stamp *content*, which
  // compaction preserves.
  uid_ = NextUid();
  structure_version_ = uid_;
  return remap;
}

void PDocument::SetChildOrder(NodeId parent, const std::vector<NodeId>& order) {
  Check(parent);
  PXV_CHECK(kind(parent) != PKind::kExp)
      << "cannot reorder exp children (subset indices are positional)";
  auto& kids = nodes_[parent].children;
  PXV_CHECK_EQ(kids.size(), order.size());
  std::vector<NodeId> a = kids;
  std::vector<NodeId> b = order;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  PXV_CHECK(a == b) << "SetChildOrder: not a permutation of the child list";
  kids = order;
}

const std::vector<std::pair<std::vector<int>, double>>&
PDocument::exp_distribution(NodeId n) const {
  PXV_CHECK(kind(n) == PKind::kExp);
  return nodes_[n].exp_dist;
}

double PDocument::ExpDpCost() const {
  if (exp_cost_uid_ == uid_) return exp_cost_;
  // One descending-id sweep: children always follow their parents in the
  // arena, so by the time `n` is visited its whole live subtree is summed.
  std::vector<int64_t> sub(nodes_.size(), 0);
  double cost = 0;
  for (NodeId n = size() - 1; n >= 0; --n) {
    const PNode& node = nodes_[n];
    if (node.detached) continue;
    ++sub[n];
    if (node.parent != kNullNode) sub[node.parent] += sub[n];
    if (node.kind == PKind::kExp) {
      cost += static_cast<double>(node.exp_dist.size()) *
              static_cast<double>(sub[n]);
    }
  }
  exp_cost_uid_ = uid_;
  exp_cost_ = cost;
  return cost;
}

int PDocument::OrdinaryCount() const {
  int count = 0;
  for (NodeId n = 0; n < size(); ++n) {
    if (ordinary(n) && !nodes_[n].detached) ++count;
  }
  return count;
}

NodeId PDocument::OrdinaryAncestor(NodeId n) const {
  for (NodeId cur = parent(Check(n)); cur != kNullNode; cur = parent(cur)) {
    if (ordinary(cur)) return cur;
  }
  return kNullNode;
}

PDocument PDocument::Subtree(NodeId n) const {
  PXV_CHECK(ordinary(n)) << "p-subdocument roots must be ordinary";
  PXV_CHECK(!nodes_[n].detached) << "p-subdocument root is detached";
  PDocument out;
  {
    // One stamp for the whole copy; the scope closes the batch before the
    // return so the result never travels with an open batch (a moved-from
    // document would otherwise keep in_batch_ set when NRVO is off).
    MutationBatch batch(&out);
    out.AddRoot(label(n), pid(n));
    std::vector<std::pair<NodeId, NodeId>> stack{{n, 0}};
    while (!stack.empty()) {
      const auto [src, dst] = stack.back();
      stack.pop_back();
      for (NodeId child : children(src)) {
        PNode copy = nodes_[child];
        copy.children.clear();
        copy.parent = kNullNode;
        NodeId nid = out.Add(dst, std::move(copy));
        stack.emplace_back(child, nid);
      }
    }
  }
  return out;
}

NodeId PDocument::FindByPid(PersistentId pid) const {
  for (NodeId n = 0; n < size(); ++n) {
    if (ordinary(n) && !nodes_[n].detached && nodes_[n].pid == pid) return n;
  }
  return kNullNode;
}

Status PDocument::Validate() const {
  if (empty()) return Status::Error("empty p-document");
  if (!ordinary(root())) return Status::Error("root must be ordinary");
  for (NodeId n = 0; n < size(); ++n) {
    const PNode& node = nodes_[n];
    if (node.detached) continue;  // Invisible to the deletion process.
    if (node.edge_prob < 0.0 || node.edge_prob > 1.0) {
      return Status::Error("edge probability out of [0,1] at node " +
                           std::to_string(n));
    }
    if (!ordinary(n) && node.children.empty()) {
      return Status::Error("distributional leaf at node " + std::to_string(n));
    }
    if (node.kind == PKind::kMux) {
      double sum = 0;
      for (NodeId c : node.children) sum += edge_prob(c);
      if (sum > 1.0 + 1e-9) {
        return Status::Error("mux children probabilities sum to " +
                             FormatProbability(sum) + " > 1 at node " +
                             std::to_string(n));
      }
    }
    if (node.kind == PKind::kExp) {
      double sum = 0;
      for (const auto& [subset, p] : node.exp_dist) {
        if (p < 0 || p > 1) return Status::Error("exp probability out of range");
        for (int idx : subset) {
          if (idx < 0 || idx >= static_cast<int>(node.children.size())) {
            return Status::Error("exp subset index out of range");
          }
        }
        sum += p;
      }
      if (sum > 1.0 + 1e-9) {
        return Status::Error("exp distribution sums to > 1");
      }
    }
    // Children of ordinary/det parents must have edge probability 1.
    if (node.kind == PKind::kOrdinary || node.kind == PKind::kDet) {
      for (NodeId c : node.children) {
        if (edge_prob(c) != 1.0) {
          return Status::Error(
              "child of ordinary/det node must have edge probability 1");
        }
      }
    }
  }
  return Status::Ok();
}

std::string PDocument::DebugString() const {
  std::ostringstream out;
  // Preorder with indentation.
  std::vector<std::pair<NodeId, int>> stack{{root(), 0}};
  while (!stack.empty()) {
    const auto [n, depth] = stack.back();
    stack.pop_back();
    for (int i = 0; i < depth; ++i) out << "  ";
    if (ordinary(n)) {
      out << '[' << pid(n) << "] " << LabelName(label(n));
    } else {
      out << PKindName(kind(n));
    }
    if (parent(n) != kNullNode && !ordinary(parent(n)) &&
        kind(parent(n)) != PKind::kDet && kind(parent(n)) != PKind::kExp) {
      out << "  p=" << FormatProbability(edge_prob(n));
    }
    out << '\n';
    const auto& kids = children(n);
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
      stack.emplace_back(*it, depth + 1);
    }
  }
  return out.str();
}

LabelIndex::LabelIndex(const PDocument& pd) {
  for (NodeId n = 0; n < pd.size(); ++n) {
    if (pd.ordinary(n) && !pd.detached(n)) index_[pd.label(n)].push_back(n);
  }
}

const std::vector<NodeId>& LabelIndex::Nodes(Label l) const {
  static const std::vector<NodeId> kEmpty;
  const auto it = index_.find(l);
  return it == index_.end() ? kEmpty : it->second;
}

}  // namespace pxv
