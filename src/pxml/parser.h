// Text notation for p-documents, extending the tree-term document format:
//
//   IT-personnel(
//     person(name(mux(Rick@0.75, John@0.25)),
//            bonus(mux(pda(25)@0.1, laptop(44, 50)@0.9), pda(50))))
//
// `mux`, `ind` and `det` are reserved words introducing distributional
// nodes; `@p` after a child subtree gives the probability its (mux/ind)
// parent assigns to it. `#pid` after a label sets the persistent id, as for
// documents. `exp` nodes have no text syntax (construct programmatically).
// A real label spelled like a reserved word can be written quoted: "mux".

#ifndef PXV_PXML_PARSER_H_
#define PXV_PXML_PARSER_H_

#include <string>
#include <string_view>

#include "pxml/pdocument.h"
#include "util/status.h"

namespace pxv {

/// Parses the p-document text notation. Validates the result.
StatusOr<PDocument> ParsePDocument(std::string_view text);

/// Serializes to the text notation (exp nodes are not supported).
std::string ToPText(const PDocument& pd, bool with_pids = false);

}  // namespace pxv

#endif  // PXV_PXML_PARSER_H_
