// Binary arena serialization of p-documents (PDocument::SerializeTo /
// Deserialize — declared in pdocument.h, implemented here to keep the codec
// out of the mutation translation unit).
//
// Layout (all integers little-endian, util/codec.h):
//
//   magic "PXD1"
//   u32 label_count, label_count × bytes   — label spellings, deduplicated;
//                                            labels are interned per process,
//                                            so only names travel
//   u32 node_count, detached_count
//   node_count × node:
//     u8  kind, u8 detached, u32 label_table_index (ordinary only)
//     i32 parent, f64 edge_prob (bit image), i64 pid, u64 version
//     u32 child_count, child_count × i32    — child order is semantics for
//                                             exp subsets and for the
//                                             delta-patcher's traversal order
//     u32 exp_entries × (u32 size, size × i32, f64 prob)
//
// The image is framed and checksummed by its consumers (WAL records,
// checkpoint files) — this layer only guarantees that decoding never reads
// out of bounds and never produces a structurally inconsistent arena.

#include <string_view>
#include <unordered_map>
#include <vector>

#include "pxml/pdocument.h"
#include "util/codec.h"

namespace pxv {

namespace {
constexpr char kMagic[4] = {'P', 'X', 'D', '1'};
constexpr uint32_t kNoLabel = 0xFFFFFFFFu;
}  // namespace

void PDocument::SerializeTo(std::string* out) const {
  out->append(kMagic, sizeof(kMagic));
  // Deduplicated label table (ordinary nodes only; distributional nodes
  // carry no label).
  std::unordered_map<Label, uint32_t> table;
  std::vector<Label> order;
  for (const PNode& node : nodes_) {
    if (node.kind != PKind::kOrdinary) continue;
    if (table.emplace(node.label, static_cast<uint32_t>(order.size())).second) {
      order.push_back(node.label);
    }
  }
  PutU32(out, static_cast<uint32_t>(order.size()));
  for (Label l : order) PutBytes(out, LabelName(l));
  PutU32(out, static_cast<uint32_t>(nodes_.size()));
  PutU32(out, static_cast<uint32_t>(detached_count_));
  for (const PNode& node : nodes_) {
    PutU8(out, static_cast<uint8_t>(node.kind));
    PutU8(out, node.detached ? 1 : 0);
    PutU32(out, node.kind == PKind::kOrdinary ? table[node.label] : kNoLabel);
    PutI32(out, node.parent);
    PutF64(out, node.edge_prob);
    PutI64(out, node.pid);
    PutU64(out, node.version);
    PutU32(out, static_cast<uint32_t>(node.children.size()));
    for (NodeId c : node.children) PutI32(out, c);
    PutU32(out, static_cast<uint32_t>(node.exp_dist.size()));
    for (const auto& [subset, p] : node.exp_dist) {
      PutU32(out, static_cast<uint32_t>(subset.size()));
      for (int idx : subset) PutI32(out, idx);
      PutF64(out, p);
    }
  }
}

StatusOr<PDocument> PDocument::Deserialize(std::string_view bytes) {
  const auto corrupt = [](const char* what) {
    return Status::Error(std::string("corrupt p-document image: ") + what);
  };
  if (bytes.size() < sizeof(kMagic) ||
      std::string_view(bytes.data(), sizeof(kMagic)) !=
          std::string_view(kMagic, sizeof(kMagic))) {
    return corrupt("bad magic");
  }
  ByteReader in(bytes.substr(sizeof(kMagic)));
  const uint32_t label_count = in.GetU32();
  // Re-intern by spelling into this process's pool.
  std::vector<Label> labels;
  if (label_count > in.remaining()) return corrupt("label table overflows");
  labels.reserve(label_count);
  for (uint32_t i = 0; i < label_count && in.ok(); ++i) {
    labels.push_back(Intern(in.GetBytes()));
  }
  const uint32_t node_count = in.GetU32();
  const uint32_t detached = in.GetU32();
  if (!in.ok()) return corrupt("truncated header");
  // Each node costs ≥ 34 bytes on the wire — a cheap bound that rejects
  // absurd counts before the resize below can over-allocate.
  if (node_count > in.remaining() / 34 + 1 || detached > node_count) {
    return corrupt("node count overflows");
  }
  PDocument pd;
  pd.nodes_.resize(node_count);
  int actual_detached = 0;
  for (uint32_t n = 0; n < node_count && in.ok(); ++n) {
    PNode& node = pd.nodes_[n];
    const uint8_t kind = in.GetU8();
    if (kind > static_cast<uint8_t>(PKind::kExp)) {
      in.Fail();
      break;
    }
    node.kind = static_cast<PKind>(kind);
    const uint8_t det = in.GetU8();
    node.detached = det != 0;
    actual_detached += node.detached ? 1 : 0;
    const uint32_t label_idx = in.GetU32();
    if (node.kind == PKind::kOrdinary) {
      if (label_idx >= labels.size()) {
        in.Fail();
        break;
      }
      node.label = labels[label_idx];
    }
    node.parent = in.GetI32();
    // Parents must precede children (the arena invariant every ascending-id
    // scan relies on); the root and only the root has no parent.
    if (n == 0 ? node.parent != kNullNode
               : (node.parent < 0 || node.parent >= static_cast<int>(n))) {
      in.Fail();
      break;
    }
    node.edge_prob = in.GetF64();
    node.pid = in.GetI64();
    node.version = in.GetU64();
    const uint32_t child_count = in.GetU32();
    if (child_count > in.remaining() / 4 + 1) {
      in.Fail();
      break;
    }
    node.children.reserve(child_count);
    for (uint32_t c = 0; c < child_count && in.ok(); ++c) {
      const NodeId child = in.GetI32();
      if (child <= static_cast<NodeId>(n) ||
          child >= static_cast<NodeId>(node_count)) {
        in.Fail();
        break;
      }
      node.children.push_back(child);
    }
    const uint32_t exp_entries = in.GetU32();
    if (exp_entries > in.remaining() / 8 + 1) {
      in.Fail();
      break;
    }
    node.exp_dist.reserve(exp_entries);
    for (uint32_t e = 0; e < exp_entries && in.ok(); ++e) {
      const uint32_t subset_size = in.GetU32();
      if (subset_size > in.remaining() / 4 + 1) {
        in.Fail();
        break;
      }
      std::vector<int> subset;
      subset.reserve(subset_size);
      for (uint32_t s = 0; s < subset_size && in.ok(); ++s) {
        subset.push_back(in.GetI32());
      }
      node.exp_dist.emplace_back(std::move(subset), in.GetF64());
    }
  }
  if (!in.ok() || !in.AtEnd()) return corrupt("truncated or trailing bytes");
  if (actual_detached != static_cast<int>(detached)) {
    return corrupt("detached count mismatch");
  }
  // Cross-check the child lists against the parent links: every non-root
  // node must appear in exactly its parent's child list (decoded images
  // feed straight into traversals that assume link consistency).
  {
    std::vector<int> seen(node_count, 0);
    for (uint32_t n = 0; n < node_count; ++n) {
      for (NodeId c : pd.nodes_[n].children) {
        if (pd.nodes_[c].parent != static_cast<NodeId>(n)) {
          return corrupt("child/parent link mismatch");
        }
        if (++seen[c] > 1) return corrupt("node linked twice");
      }
    }
    // A detached subtree root is legitimately unlinked from its parent's
    // child list; every other node must be linked exactly once.
    for (uint32_t n = 1; n < node_count; ++n) {
      if (seen[n] == 0 && !pd.nodes_[n].detached) {
        return corrupt("live node not linked by its parent");
      }
    }
  }
  pd.detached_count_ = actual_detached;
  // Imported stamps were drawn by another process's counter: raise ours
  // past them so future draws stay unique, then key this copy with a fresh
  // uid (restored uids could alias a live in-process document's caches).
  uint64_t max_version = 0;
  for (const PNode& node : pd.nodes_) {
    if (node.version > max_version) max_version = node.version;
  }
  BumpVersionCounterPast(max_version);
  pd.uid_ = NextUid();
  pd.structure_version_ = pd.uid_;
  return pd;
}

}  // namespace pxv
