// Exact possible-world semantics ⟦P̂⟧ (paper §2). A run of the random
// deletion process keeps a subset of the ordinary nodes; two runs yield the
// same random document iff they keep the same subset, so the px-space is a
// distribution over surviving ordinary-node sets. Enumeration is exponential
// in the number of distributional nodes — this module is the ground-truth
// oracle for tests and for the probabilistic definitions (c-independence,
// rewriting correctness); production paths use src/prob/ instead.

#ifndef PXV_PXML_WORLDS_H_
#define PXV_PXML_WORLDS_H_

#include <vector>

#include "pxml/pdocument.h"
#include "util/status.h"
#include "xml/document.h"

namespace pxv {

/// One possible world of a p-document.
struct World {
  /// The random document P (ordinary nodes only, distributional nodes
  /// spliced out). Node pids are inherited from the p-document.
  Document doc;
  /// Pr(P): total probability of all runs yielding this document.
  double prob = 0;
  /// Surviving p-document ordinary nodes, ascending.
  std::vector<NodeId> kept;
  /// Maps each p-document node to its node in `doc` (kNullNode if absent
  /// or distributional).
  std::vector<NodeId> pdoc_to_doc;
};

/// Enumerates the full px-space. Fails if more than `max_worlds` distinct
/// intermediate outcomes arise. Probabilities sum to 1.
StatusOr<std::vector<World>> EnumerateWorlds(const PDocument& pd,
                                             int max_worlds = 200000);

/// Probability that the ordinary node `n` of `pd` appears in a random world,
/// i.e. Pr(n ∈ P). For local models this is the product, over the
/// distributional ancestors of n, of the probability that the choice keeps
/// n's branch. PTime; exact for mux/ind/det; for exp it sums the subsets
/// keeping the branch.
double AppearanceProbability(const PDocument& pd, NodeId n);

}  // namespace pxv

#endif  // PXV_PXML_WORLDS_H_
