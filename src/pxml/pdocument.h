// p-Documents (paper §2, Definition 1; model PrXML{mux,ind,det,exp} of
// Abiteboul–Kimelfeld–Sagiv–Senellart). A p-document is an unranked,
// unordered tree whose nodes are either ordinary (labeled) or distributional:
//
//   mux  — at most one child is kept, child c with probability Pr(c),
//          no child with probability 1 − Σ Pr(c)          (Σ Pr(c) ≤ 1)
//   ind  — each child kept independently with probability Pr(c)
//   det  — all children kept (deterministic grouping)
//   exp  — an explicit distribution over subsets of children
//
// Leaves and the root must be ordinary. The semantics ⟦P̂⟧ is the px-space
// produced by the random deletion process of §2; see worlds.h / sampler.h.
//
// Mutation model (delta updates): documents support post-hoc mutation —
// InsertSubtree / RemoveSubtree / SetEdgeProb / SetExpDistribution. Every
// mutation stamps the root-to-change spine with a fresh per-node *subtree
// version* (version(n) changes iff something in n's subtree changed), which
// is what incremental evaluation keys its per-subtree memo on (see
// prob/engine.h SubtreeCache). Removal detaches: the subtree stays in the
// node arena (ids are never reused, so caches keyed on node ids can never
// alias) but is flagged `detached` and excluded from traversal, indexing and
// validation. Mutations grouped in a MutationBatch share one uid/version
// stamp; unbatched mutations each get their own.

#ifndef PXV_PXML_PDOCUMENT_H_
#define PXV_PXML_PDOCUMENT_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/check.h"
#include "util/status.h"
#include "xml/document.h"
#include "xml/label.h"

namespace pxv {

/// Node kinds of a p-document.
enum class PKind : uint8_t { kOrdinary, kMux, kInd, kDet, kExp };

/// Returns "ordinary", "mux", "ind", "det" or "exp".
const char* PKindName(PKind kind);

/// A p-document. Node ids index a contiguous arena, root is node 0.
class PDocument {
 public:
  PDocument() = default;

  /// Creates the (ordinary) root. Must be called exactly once, first.
  NodeId AddRoot(Label label, PersistentId pid = kNullPid);

  /// Adds an ordinary child. `edge_prob` is the probability assigned by the
  /// parent if the parent is mux/ind; it must be 1 under ordinary/det parents
  /// (exp parents ignore it — subset probabilities rule).
  NodeId AddOrdinary(NodeId parent, Label label, double edge_prob = 1.0,
                     PersistentId pid = kNullPid);

  /// Adds a distributional child (mux/ind/det). Distributional nodes can nest.
  NodeId AddDistributional(NodeId parent, PKind kind, double edge_prob = 1.0);

  /// Adds an exp node. Subsets are set afterwards with SetExpDistribution.
  NodeId AddExp(NodeId parent, double edge_prob = 1.0);

  /// Defines the explicit distribution of an exp node: each entry is a set of
  /// child indices (positions in children(n)) with its probability.
  /// Probabilities must sum to ≤ 1 (the rest = "keep nothing").
  void SetExpDistribution(
      NodeId n, std::vector<std::pair<std::vector<int>, double>> dist);

  /// Pre-sizes the node arena (builder use; avoids reallocation churn).
  void Reserve(int nodes) { nodes_.reserve(nodes); }

  /// Pre-sizes a node's child list (bulk-copy use).
  void ReserveChildren(NodeId n, int children) {
    nodes_[Check(n)].children.reserve(children);
  }

  // ------------------------------------------------------------ mutation ----

  /// Copies the whole of `sub` (root included) as a new child of `parent`,
  /// preserving labels, kinds, pids, edge probabilities and exp
  /// distributions; the new subtree root gets `edge_prob`. Stamps the
  /// root-to-parent spine. Returns the new subtree root. `parent` must not
  /// be an exp node (subset indices are positional).
  NodeId InsertSubtree(NodeId parent, const PDocument& sub,
                       double edge_prob = 1.0);

  /// Detaches the subtree rooted at `n`: unlinks it from its parent's child
  /// list and flags every node in it `detached`. Detached nodes stay in the
  /// arena (ids are never reused) but are invisible to traversal, indexes
  /// and Validate. Stamps the root-to-parent spine. `n` must not be the
  /// root, and its parent must not be an exp node.
  void RemoveSubtree(NodeId n);

  /// Overrides the edge probability of `n`. Stamps the root-to-`n` spine
  /// (the appearance probability of everything below `n` changes).
  void SetEdgeProb(NodeId n, double p);

  /// True iff `n` was removed by RemoveSubtree (directly or via an
  /// ancestor).
  bool detached(NodeId n) const { return nodes_[Check(n)].detached; }

  /// Subtree version stamp of `n`: drawn from the same process-global
  /// counter as uid(), updated for `n` and all its ancestors on every
  /// mutation inside `n`'s subtree. Two nodes carry the same stamp only if
  /// they were stamped by the same event, so version(n) equality across
  /// document copies implies identical subtree content.
  uint64_t version(NodeId n) const { return nodes_[Check(n)].version; }

  /// Mutation targets stamped since the last ClearDirtyPaths(): the roots
  /// of the changed regions (insert → new subtree root, remove → detached
  /// root, SetEdgeProb/SetExpDistribution → the node). Together with their
  /// root paths these form the dirty spines incremental consumers patch.
  const std::vector<NodeId>& dirty_paths() const { return dirty_; }
  void ClearDirtyPaths() { dirty_.clear(); }

  /// Groups mutations into one batch: uid() and the spine stamps advance
  /// once for the whole scope instead of once per call. Batches must not
  /// nest, and the document must not be moved, copied-from-into, or
  /// returned by value while a batch on it is open (close the scope first —
  /// a moved document would otherwise carry the open-batch flag while the
  /// batch destructor resets the dead source).
  class MutationBatch {
   public:
    explicit MutationBatch(PDocument* pd);
    ~MutationBatch();
    MutationBatch(const MutationBatch&) = delete;
    MutationBatch& operator=(const MutationBatch&) = delete;

   private:
    PDocument* pd_;
  };

  /// Reorders `parent`'s children to `order` (a permutation of the current
  /// child list). Sibling order is semantically free in the unordered-tree
  /// model but fixes traversal order — delta-patched view extensions use it
  /// to keep the exact construction order a from-scratch build would
  /// produce. `parent` must not be an exp node. Does not stamp versions
  /// (content is unchanged).
  void SetChildOrder(NodeId parent, const std::vector<NodeId>& order);

  /// Version tag: process-unique, refreshed by every mutating call (one
  /// refresh per MutationBatch scope when batching). A copy initially
  /// shares the tag with its source — equal tags mean equal content — and
  /// the tags diverge permanently as soon as either side mutates, so
  /// evaluation caches keyed on uid (see prob/dist.h EngineBuffers) can
  /// never serve state computed for the other copy's later contents.
  uint64_t uid() const { return uid_; }

  /// Like uid(), but refreshed only by *structural* changes — node
  /// additions, InsertSubtree, RemoveSubtree — not by probability edits
  /// (SetEdgeProb, SetExpDistribution). Derived state that reads only the
  /// tree shape and labels (the engine's live-slot / frame / projection
  /// analysis) stays valid across probability-only deltas by keying on
  /// this instead of uid().
  uint64_t structure_version() const { return structure_version_; }

  /// Nodes currently flagged detached. Grows monotonically until Compact()
  /// rebuilds the arena — consumers patching documents in place use the
  /// ratio against size() to decide when compaction beats further patching.
  int detached_count() const { return detached_count_; }

  /// Nodes that are actually part of the document: size() minus the
  /// detached tombstones. This — not size() — is the |P̂| every cost model
  /// and O(|P̂|)-style estimate should charge; raw size() counts garbage on
  /// a churned document.
  int live_size() const { return size() - detached_count_; }

  /// Rebuilds the node arena dropping every detached node. Live nodes keep
  /// their pids, labels, kinds, edge probabilities, exp distributions,
  /// sibling order and *subtree version stamps*; node ids are remapped to a
  /// dense range preserving relative order (so parents still precede
  /// children and ascending-id traversals visit live nodes in the same
  /// order as before). Returns the old→new id table, kNullNode for dropped
  /// nodes; the identity (and no other change) when nothing is detached.
  ///
  /// Node ids are an arena detail, but caches key on them: compaction
  /// draws a fresh uid()/structure_version() so uid- and structure-keyed
  /// derived state can never be served across the remap. Callers holding
  /// NodeId-based bookkeeping (e.g. MaterializedView results) must remap it
  /// through the returned table; pid-keyed state needs nothing.
  ///
  /// Pending dirty_paths() are remapped too (entries for dropped subtree
  /// roots are kept pointing at their nearest live ancestor-or-root so a
  /// not-yet-consumed removal still dirties its spine). Must not be called
  /// inside an open MutationBatch.
  std::vector<NodeId> Compact();

  NodeId root() const { return nodes_.empty() ? kNullNode : 0; }
  bool empty() const { return nodes_.empty(); }
  int size() const { return static_cast<int>(nodes_.size()); }

  PKind kind(NodeId n) const { return nodes_[Check(n)].kind; }
  bool ordinary(NodeId n) const { return kind(n) == PKind::kOrdinary; }
  Label label(NodeId n) const {
    PXV_CHECK(ordinary(n)) << "label of distributional node";
    return nodes_[n].label;
  }
  NodeId parent(NodeId n) const { return nodes_[Check(n)].parent; }
  const std::vector<NodeId>& children(NodeId n) const {
    return nodes_[Check(n)].children;
  }
  /// Probability of the edge from `n`'s parent to `n` (meaningful when the
  /// parent is mux or ind; 1.0 otherwise).
  double edge_prob(NodeId n) const { return nodes_[Check(n)].edge_prob; }
  PersistentId pid(NodeId n) const { return nodes_[Check(n)].pid; }
  const std::vector<std::pair<std::vector<int>, double>>& exp_distribution(
      NodeId n) const;

  /// Root label (document name); root is ordinary by construction.
  Label name() const { return label(root()); }

  /// Number of ordinary nodes.
  int OrdinaryCount() const;

  /// DP work surcharge of the exp nodes: Σ over live exp nodes of
  /// |exp_distribution(n)| × (live nodes in n's subtree). The exact DP
  /// evaluates an exp node once per explicit subset, re-walking the child
  /// distributions each time, so two documents of equal live_size() can
  /// differ by orders of magnitude in DP cost when one routes its matches
  /// through exp-heavy regions — cost models (rewrite/planner) charge this
  /// on top of live_size(). Zero for exp-free documents. Cached per uid();
  /// one O(live_size) sweep to recompute after a mutation.
  double ExpDpCost() const;

  /// Nearest ordinary proper ancestor, or kNullNode for the root.
  NodeId OrdinaryAncestor(NodeId n) const;

  /// The p-subdocument P̂_n rooted at ordinary node `n` (paper §2),
  /// preserving pids; the new root appears with probability 1.
  PDocument Subtree(NodeId n) const;

  /// First ordinary node with the given persistent id, or kNullNode.
  NodeId FindByPid(PersistentId pid) const;

  /// Validates Definition 1: root/leaves ordinary, mux sums ≤ 1, edge
  /// probabilities in [0,1], exp distributions well-formed.
  Status Validate() const;

  // ------------------------------------------------------ serialization ----

  /// Appends a self-contained binary image of the whole node arena to
  /// `out` (pxml/serialize.cc): every node's kind, detached flag, label
  /// *spelling* (labels are process-interned ids — the image must survive
  /// into a process with a different intern pool), parent, child order,
  /// IEEE-754-exact edge probability, pid, exp distribution and subtree
  /// version stamp. Deserialize(SerializeTo(P)) reproduces P bit for bit,
  /// tombstones and sibling order included. Pending dirty_paths() and the
  /// open-batch flag are transient and not serialized.
  void SerializeTo(std::string* out) const;

  /// Inverse of SerializeTo over an UNTRUSTED buffer: any malformed input
  /// (truncation, bit rot) returns an error, never crashes. The restored
  /// document draws a fresh uid()/structure_version() (uids are
  /// process-unique — restoring a stored one could alias a live document's
  /// caches), and the process-global version counter is advanced past every
  /// restored stamp so no future mutation can ever re-draw one (version
  /// equality must keep implying "stamped by the same event").
  static StatusOr<PDocument> Deserialize(std::string_view bytes);

  /// Advances the process-global uid/version counter so every future draw
  /// exceeds `v`. Deserialize calls this with the maximum restored stamp;
  /// exposed for consumers importing version stamps by other means.
  static void BumpVersionCounterPast(uint64_t v);

  /// Human-readable multi-line dump (for debugging and examples).
  std::string DebugString() const;

 private:
  struct PNode {
    PKind kind = PKind::kOrdinary;
    bool detached = false;
    Label label = 0;  // Ordinary nodes only.
    NodeId parent = kNullNode;
    double edge_prob = 1.0;
    PersistentId pid = kNullPid;
    uint64_t version = 0;  // Subtree version stamp (see version()).
    std::vector<NodeId> children;
    std::vector<std::pair<std::vector<int>, double>> exp_dist;
  };

  NodeId Check(NodeId n) const {
    PXV_CHECK(n >= 0 && n < size()) << "bad NodeId " << n;
    return n;
  }
  NodeId Add(NodeId parent, PNode node);
  // Refreshes uid_ (once per open batch) and stamps `n` and every ancestor
  // with it. Dirty-path recording is each mutation entry point's own job
  // (construction-time Adds stamp without recording).
  void Stamp(NodeId n);
  static uint64_t NextUid();

  std::vector<PNode> nodes_;
  mutable uint64_t exp_cost_uid_ = 0;  // uid the cached ExpDpCost is for.
  mutable double exp_cost_ = 0;
  uint64_t uid_ = NextUid();
  uint64_t structure_version_ = uid_;
  int detached_count_ = 0;
  bool in_batch_ = false;
  bool batch_stamped_ = false;  // uid_ refreshed for the open batch yet?
  std::vector<NodeId> dirty_;
};

/// Label → ordinary-node index over one p-document, built in a single scan.
/// Owned by evaluation sessions so repeated queries against the same
/// document stop re-scanning the node arena per output label.
class LabelIndex {
 public:
  explicit LabelIndex(const PDocument& pd);

  /// Ordinary nodes labeled `l`, ascending node id; empty if none.
  const std::vector<NodeId>& Nodes(Label l) const;

  /// Number of distinct ordinary labels.
  int LabelCount() const { return static_cast<int>(index_.size()); }

 private:
  std::unordered_map<Label, std::vector<NodeId>> index_;
};

}  // namespace pxv

#endif  // PXV_PXML_PDOCUMENT_H_
