// p-Documents (paper §2, Definition 1; model PrXML{mux,ind,det,exp} of
// Abiteboul–Kimelfeld–Sagiv–Senellart). A p-document is an unranked,
// unordered tree whose nodes are either ordinary (labeled) or distributional:
//
//   mux  — at most one child is kept, child c with probability Pr(c),
//          no child with probability 1 − Σ Pr(c)          (Σ Pr(c) ≤ 1)
//   ind  — each child kept independently with probability Pr(c)
//   det  — all children kept (deterministic grouping)
//   exp  — an explicit distribution over subsets of children
//
// Leaves and the root must be ordinary. The semantics ⟦P̂⟧ is the px-space
// produced by the random deletion process of §2; see worlds.h / sampler.h.

#ifndef PXV_PXML_PDOCUMENT_H_
#define PXV_PXML_PDOCUMENT_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/check.h"
#include "util/status.h"
#include "xml/document.h"
#include "xml/label.h"

namespace pxv {

/// Node kinds of a p-document.
enum class PKind : uint8_t { kOrdinary, kMux, kInd, kDet, kExp };

/// Returns "ordinary", "mux", "ind", "det" or "exp".
const char* PKindName(PKind kind);

/// A p-document. Node ids index a contiguous arena, root is node 0.
class PDocument {
 public:
  PDocument() = default;

  /// Creates the (ordinary) root. Must be called exactly once, first.
  NodeId AddRoot(Label label, PersistentId pid = kNullPid);

  /// Adds an ordinary child. `edge_prob` is the probability assigned by the
  /// parent if the parent is mux/ind; it must be 1 under ordinary/det parents
  /// (exp parents ignore it — subset probabilities rule).
  NodeId AddOrdinary(NodeId parent, Label label, double edge_prob = 1.0,
                     PersistentId pid = kNullPid);

  /// Adds a distributional child (mux/ind/det). Distributional nodes can nest.
  NodeId AddDistributional(NodeId parent, PKind kind, double edge_prob = 1.0);

  /// Adds an exp node. Subsets are set afterwards with SetExpDistribution.
  NodeId AddExp(NodeId parent, double edge_prob = 1.0);

  /// Defines the explicit distribution of an exp node: each entry is a set of
  /// child indices (positions in children(n)) with its probability.
  /// Probabilities must sum to ≤ 1 (the rest = "keep nothing").
  void SetExpDistribution(
      NodeId n, std::vector<std::pair<std::vector<int>, double>> dist);

  /// Pre-sizes the node arena (builder use; avoids reallocation churn).
  void Reserve(int nodes) { nodes_.reserve(nodes); }

  /// Pre-sizes a node's child list (bulk-copy use).
  void ReserveChildren(NodeId n, int children) {
    nodes_[Check(n)].children.reserve(children);
  }

  /// Version tag: process-unique until mutated — every structural change
  /// assigns a fresh value, and copies share the tag until one side
  /// mutates. Lets evaluation caches key on document identity without
  /// hashing content (see prob/dist.h EngineBuffers).
  uint64_t uid() const { return uid_; }

  NodeId root() const { return nodes_.empty() ? kNullNode : 0; }
  bool empty() const { return nodes_.empty(); }
  int size() const { return static_cast<int>(nodes_.size()); }

  PKind kind(NodeId n) const { return nodes_[Check(n)].kind; }
  bool ordinary(NodeId n) const { return kind(n) == PKind::kOrdinary; }
  Label label(NodeId n) const {
    PXV_CHECK(ordinary(n)) << "label of distributional node";
    return nodes_[n].label;
  }
  NodeId parent(NodeId n) const { return nodes_[Check(n)].parent; }
  const std::vector<NodeId>& children(NodeId n) const {
    return nodes_[Check(n)].children;
  }
  /// Probability of the edge from `n`'s parent to `n` (meaningful when the
  /// parent is mux or ind; 1.0 otherwise).
  double edge_prob(NodeId n) const { return nodes_[Check(n)].edge_prob; }
  /// Overrides the edge probability of `n` (parser / generator use).
  void SetEdgeProb(NodeId n, double p) {
    uid_ = NextUid();
    nodes_[Check(n)].edge_prob = p;
  }
  PersistentId pid(NodeId n) const { return nodes_[Check(n)].pid; }
  const std::vector<std::pair<std::vector<int>, double>>& exp_distribution(
      NodeId n) const;

  /// Root label (document name); root is ordinary by construction.
  Label name() const { return label(root()); }

  /// Number of ordinary nodes.
  int OrdinaryCount() const;

  /// Nearest ordinary proper ancestor, or kNullNode for the root.
  NodeId OrdinaryAncestor(NodeId n) const;

  /// The p-subdocument P̂_n rooted at ordinary node `n` (paper §2),
  /// preserving pids; the new root appears with probability 1.
  PDocument Subtree(NodeId n) const;

  /// First ordinary node with the given persistent id, or kNullNode.
  NodeId FindByPid(PersistentId pid) const;

  /// Validates Definition 1: root/leaves ordinary, mux sums ≤ 1, edge
  /// probabilities in [0,1], exp distributions well-formed.
  Status Validate() const;

  /// Human-readable multi-line dump (for debugging and examples).
  std::string DebugString() const;

 private:
  struct PNode {
    PKind kind = PKind::kOrdinary;
    Label label = 0;  // Ordinary nodes only.
    NodeId parent = kNullNode;
    double edge_prob = 1.0;
    PersistentId pid = kNullPid;
    std::vector<NodeId> children;
    std::vector<std::pair<std::vector<int>, double>> exp_dist;
  };

  NodeId Check(NodeId n) const {
    PXV_CHECK(n >= 0 && n < size()) << "bad NodeId " << n;
    return n;
  }
  NodeId Add(NodeId parent, PNode node);
  static uint64_t NextUid();

  std::vector<PNode> nodes_;
  uint64_t uid_ = NextUid();
};

/// Label → ordinary-node index over one p-document, built in a single scan.
/// Owned by evaluation sessions so repeated queries against the same
/// document stop re-scanning the node arena per output label.
class LabelIndex {
 public:
  explicit LabelIndex(const PDocument& pd);

  /// Ordinary nodes labeled `l`, ascending node id; empty if none.
  const std::vector<NodeId>& Nodes(Label l) const;

  /// Number of distinct ordinary labels.
  int LabelCount() const { return static_cast<int>(index_.size()); }

 private:
  std::unordered_map<Label, std::vector<NodeId>> index_;
};

}  // namespace pxv

#endif  // PXV_PXML_PDOCUMENT_H_
