#include "pxml/worlds.h"

#include <algorithm>
#include <string>
#include <unordered_map>

#include "util/check.h"

namespace pxv {
namespace {

// A partial outcome: set of surviving ordinary nodes (sorted) + probability.
struct Outcome {
  std::vector<NodeId> kept;
  double prob = 0;
};

std::string KeyOf(const std::vector<NodeId>& kept) {
  return std::string(reinterpret_cast<const char*>(kept.data()),
                     kept.size() * sizeof(NodeId));
}

// Deduplicates outcomes by kept-set, summing probabilities.
std::vector<Outcome> Dedup(std::vector<Outcome> outs) {
  std::unordered_map<std::string, size_t> index;
  std::vector<Outcome> result;
  for (auto& o : outs) {
    std::string key = KeyOf(o.kept);
    auto it = index.find(key);
    if (it == index.end()) {
      index.emplace(std::move(key), result.size());
      result.push_back(std::move(o));
    } else {
      result[it->second].prob += o.prob;
    }
  }
  return result;
}

// Cross product: for independent regions, kept sets merge by sorted union
// (they are disjoint by construction).
std::vector<Outcome> Combine(const std::vector<Outcome>& a,
                             const std::vector<Outcome>& b) {
  std::vector<Outcome> out;
  out.reserve(a.size() * b.size());
  for (const auto& x : a) {
    for (const auto& y : b) {
      Outcome o;
      o.kept.resize(x.kept.size() + y.kept.size());
      std::merge(x.kept.begin(), x.kept.end(), y.kept.begin(), y.kept.end(),
                 o.kept.begin());
      o.prob = x.prob * y.prob;
      out.push_back(std::move(o));
    }
  }
  return Dedup(std::move(out));
}

class Enumerator {
 public:
  Enumerator(const PDocument& pd, int max_worlds)
      : pd_(pd), max_worlds_(max_worlds) {}

  StatusOr<std::vector<World>> Run() {
    std::vector<Outcome> outs;
    Status s = Outcomes(pd_.root(), &outs);
    if (!s.ok()) return s;
    std::vector<World> worlds;
    worlds.reserve(outs.size());
    for (auto& o : outs) {
      worlds.push_back(BuildWorld(std::move(o)));
    }
    return worlds;
  }

 private:
  Status Guard(const std::vector<Outcome>& outs) {
    if (static_cast<int>(outs.size()) > max_worlds_) {
      return Status::Error("world enumeration exceeded max_worlds=" +
                           std::to_string(max_worlds_));
    }
    return Status::Ok();
  }

  // Distribution over surviving ordinary-node sets of the region rooted at
  // node n, *given that the edge into n is taken*.
  Status Outcomes(NodeId n, std::vector<Outcome>* result) {
    const auto& kids = pd_.children(n);
    switch (pd_.kind(n)) {
      case PKind::kOrdinary:
      case PKind::kDet: {
        std::vector<Outcome> acc{{{}, 1.0}};
        if (pd_.ordinary(n)) acc[0].kept.push_back(n);
        for (NodeId c : kids) {
          std::vector<Outcome> child;
          Status s = Outcomes(c, &child);
          if (!s.ok()) return s;
          acc = Combine(acc, child);
          Status g = Guard(acc);
          if (!g.ok()) return g;
        }
        *result = std::move(acc);
        return Status::Ok();
      }
      case PKind::kMux: {
        std::vector<Outcome> acc;
        double total = 0;
        for (NodeId c : kids) {
          const double p = pd_.edge_prob(c);
          total += p;
          std::vector<Outcome> child;
          Status s = Outcomes(c, &child);
          if (!s.ok()) return s;
          for (auto& o : child) {
            o.prob *= p;
            acc.push_back(std::move(o));
          }
        }
        if (total < 1.0) acc.push_back({{}, 1.0 - total});
        acc = Dedup(std::move(acc));
        Status g = Guard(acc);
        if (!g.ok()) return g;
        *result = std::move(acc);
        return Status::Ok();
      }
      case PKind::kInd: {
        std::vector<Outcome> acc{{{}, 1.0}};
        for (NodeId c : kids) {
          const double p = pd_.edge_prob(c);
          std::vector<Outcome> child;
          Status s = Outcomes(c, &child);
          if (!s.ok()) return s;
          std::vector<Outcome> mixed;
          for (auto& o : child) {
            o.prob *= p;
            mixed.push_back(std::move(o));
          }
          if (p < 1.0) mixed.push_back({{}, 1.0 - p});
          mixed = Dedup(std::move(mixed));
          acc = Combine(acc, mixed);
          Status g = Guard(acc);
          if (!g.ok()) return g;
        }
        *result = std::move(acc);
        return Status::Ok();
      }
      case PKind::kExp: {
        std::vector<Outcome> acc;
        double total = 0;
        for (const auto& [subset, p] : pd_.exp_distribution(n)) {
          total += p;
          std::vector<Outcome> chosen{{{}, p}};
          for (int idx : subset) {
            std::vector<Outcome> child;
            Status s = Outcomes(kids[idx], &child);
            if (!s.ok()) return s;
            chosen = Combine(chosen, child);
            Status g = Guard(chosen);
            if (!g.ok()) return g;
          }
          for (auto& o : chosen) acc.push_back(std::move(o));
        }
        if (total < 1.0) acc.push_back({{}, 1.0 - total});
        acc = Dedup(std::move(acc));
        Status g = Guard(acc);
        if (!g.ok()) return g;
        *result = std::move(acc);
        return Status::Ok();
      }
    }
    return Status::Error("unreachable");
  }

  World BuildWorld(Outcome o) {
    World w;
    w.prob = o.prob;
    w.kept = std::move(o.kept);
    w.pdoc_to_doc.assign(pd_.size(), kNullNode);
    // Node ids ascend from parents to children, so ascending order is
    // topological; every surviving node's nearest ordinary ancestor survives.
    for (NodeId n : w.kept) {
      NodeId anc = pd_.OrdinaryAncestor(n);
      if (anc == kNullNode) {
        w.pdoc_to_doc[n] = w.doc.AddRoot(pd_.label(n), pd_.pid(n));
      } else {
        PXV_CHECK_NE(w.pdoc_to_doc[anc], kNullNode);
        w.pdoc_to_doc[n] =
            w.doc.AddChild(w.pdoc_to_doc[anc], pd_.label(n), pd_.pid(n));
      }
    }
    return w;
  }

  const PDocument& pd_;
  int max_worlds_;
};

}  // namespace

StatusOr<std::vector<World>> EnumerateWorlds(const PDocument& pd,
                                             int max_worlds) {
  return Enumerator(pd, max_worlds).Run();
}

double AppearanceProbability(const PDocument& pd, NodeId n) {
  PXV_CHECK(pd.ordinary(n));
  // A tombstone's parent link survives detachment, so the walk below would
  // happily price a node that appears with probability 0 — reject it.
  PXV_CHECK(!pd.detached(n)) << "appearance probability of a detached node";
  double p = 1.0;
  NodeId cur = n;
  while (pd.parent(cur) != kNullNode) {
    const NodeId par = pd.parent(cur);
    switch (pd.kind(par)) {
      case PKind::kOrdinary:
      case PKind::kDet:
        break;  // Edge always taken.
      case PKind::kMux:
      case PKind::kInd:
        p *= pd.edge_prob(cur);
        break;
      case PKind::kExp: {
        // Probability mass of subsets containing cur's position.
        const auto& kids = pd.children(par);
        int pos = -1;
        for (size_t i = 0; i < kids.size(); ++i) {
          if (kids[i] == cur) pos = static_cast<int>(i);
        }
        PXV_CHECK_GE(pos, 0);
        double mass = 0;
        for (const auto& [subset, sp] : pd.exp_distribution(par)) {
          for (int idx : subset) {
            if (idx == pos) {
              mass += sp;
              break;
            }
          }
        }
        p *= mass;
        break;
      }
    }
    cur = par;
  }
  return p;
}

}  // namespace pxv
