#include "pxml/parser.h"

#include <cctype>
#include <sstream>

#include "util/check.h"
#include "util/strings.h"

namespace pxv {
namespace {

class PParser {
 public:
  explicit PParser(std::string_view text) : text_(text) {}

  StatusOr<PDocument> Parse() {
    SkipSpace();
    PDocument pd;
    {
      // Node-by-node construction shares one version stamp: the per-node
      // spine stamping of the mutation model amortizes to O(1) per Add
      // inside a batch (O(depth) otherwise). Scoped so the batch closes
      // before the document is returned.
      PDocument::MutationBatch batch(&pd);
      Status s = ParseNode(&pd, kNullNode, /*prob_allowed=*/false);
      if (!s.ok()) return s;
    }
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::Error("trailing characters at offset " +
                           std::to_string(pos_));
    }
    Status v = pd.Validate();
    if (!v.ok()) return v;
    pd.ClearDirtyPaths();  // Construction is not a delta.
    return pd;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool IsLabelChar(char c) const {
    return !std::isspace(static_cast<unsigned char>(c)) && c != '(' &&
           c != ')' && c != ',' && c != '#' && c != '@' && c != '"';
  }

  Status ParseToken(std::string* out, bool* quoted) {
    SkipSpace();
    *quoted = false;
    out->clear();
    if (pos_ >= text_.size()) return Status::Error("expected label, got EOF");
    if (text_[pos_] == '"') {
      *quoted = true;
      ++pos_;
      while (pos_ < text_.size() && text_[pos_] != '"') {
        if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) ++pos_;
        out->push_back(text_[pos_++]);
      }
      if (pos_ >= text_.size()) return Status::Error("unterminated quote");
      ++pos_;
      return Status::Ok();
    }
    while (pos_ < text_.size() && IsLabelChar(text_[pos_])) {
      out->push_back(text_[pos_++]);
    }
    if (out->empty()) {
      return Status::Error("expected label at offset " + std::to_string(pos_));
    }
    return Status::Ok();
  }

  Status ParseNumber(double* out) {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) return Status::Error("expected number");
    *out = std::stod(std::string(text_.substr(start, pos_ - start)));
    return Status::Ok();
  }

  // Parses one node (and its subtree). The node's @prob annotation, if any,
  // is applied afterwards by the caller via last_prob_.
  Status ParseNode(PDocument* pd, NodeId parent, bool prob_allowed) {
    std::string token;
    bool quoted = false;
    Status s = ParseToken(&token, &quoted);
    if (!s.ok()) return s;

    NodeId node;
    const bool distributional =
        !quoted && (token == "mux" || token == "ind" || token == "det");
    if (distributional) {
      if (parent == kNullNode) {
        return Status::Error("root must be ordinary");
      }
      PKind kind = token == "mux" ? PKind::kMux
                   : token == "ind" ? PKind::kInd
                                    : PKind::kDet;
      node = pd->AddDistributional(parent, kind);
    } else {
      PersistentId pid = kNullPid;
      if (pos_ < text_.size() && text_[pos_] == '#') {
        ++pos_;
        size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '-')) {
          ++pos_;
        }
        if (pos_ == start) return Status::Error("expected pid after '#'");
        pid = std::stoll(std::string(text_.substr(start, pos_ - start)));
      }
      node = (parent == kNullNode) ? pd->AddRoot(Intern(token), pid)
                                   : pd->AddOrdinary(parent, Intern(token),
                                                     /*edge_prob=*/1.0, pid);
    }

    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '(') {
      ++pos_;
      const bool child_probs = distributional && node != kNullNode &&
                               (pd->kind(node) == PKind::kMux ||
                                pd->kind(node) == PKind::kInd);
      for (;;) {
        Status cs = ParseNode(pd, node, child_probs);
        if (!cs.ok()) return cs;
        SkipSpace();
        if (pos_ < text_.size() && text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        break;
      }
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != ')') {
        return Status::Error("expected ')' at offset " + std::to_string(pos_));
      }
      ++pos_;
    }

    // Optional @prob annotation, only under mux/ind parents.
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '@') {
      if (!prob_allowed) {
        return Status::Error("'@' probability only allowed under mux/ind");
      }
      ++pos_;
      double p = 0;
      Status ps = ParseNumber(&p);
      if (!ps.ok()) return ps;
      pd->SetEdgeProb(node, p);
    }
    return Status::Ok();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

void Emit(const PDocument& pd, NodeId n, bool with_pids,
          std::ostringstream* out) {
  if (pd.ordinary(n)) {
    const std::string& name = LabelName(pd.label(n));
    const bool reserved =
        name == "mux" || name == "ind" || name == "det" || name == "exp";
    if (reserved) {
      *out << '"' << name << '"';
    } else {
      *out << name;
    }
    if (with_pids) *out << '#' << pd.pid(n);
  } else {
    PXV_CHECK(pd.kind(n) != PKind::kExp) << "exp has no text syntax";
    *out << PKindName(pd.kind(n));
  }
  const auto& kids = pd.children(n);
  if (!kids.empty()) {
    *out << '(';
    for (size_t i = 0; i < kids.size(); ++i) {
      if (i) *out << ", ";
      Emit(pd, kids[i], with_pids, out);
      const PKind pk = pd.kind(n);
      if (pk == PKind::kMux || pk == PKind::kInd) {
        *out << '@' << FormatProbability(pd.edge_prob(kids[i]));
      }
    }
    *out << ')';
  }
}

}  // namespace

StatusOr<PDocument> ParsePDocument(std::string_view text) {
  return PParser(text).Parse();
}

std::string ToPText(const PDocument& pd, bool with_pids) {
  if (pd.empty()) return "";
  std::ostringstream out;
  Emit(pd, pd.root(), with_pids, &out);
  return out.str();
}

}  // namespace pxv
