#include "serve/view_catalog.h"

#include <utility>

namespace pxv {

std::shared_ptr<const QueryPlan> ViewCatalog::PlanFor(const Pattern& q) {
  // (registry fingerprint, query) — the canonical pattern string is the
  // full-fidelity query fingerprint (invariant under predicate reordering,
  // so isomorphic queries share one slot); the registry fingerprint keeps
  // plans compiled against different view sets from colliding when catalogs
  // are swapped or rebuilt.
  std::string key = std::to_string(rewriter_.Fingerprint());
  key += '\n';
  key += q.CanonicalString();
  if (std::shared_ptr<const QueryPlan> plan = cache_.Lookup(key)) return plan;
  // Compile outside the cache lock; a concurrent compile of the same query
  // races benignly — Insert keeps the first plan and both callers use it.
  auto plan = std::make_shared<const QueryPlan>(rewriter_.Compile(q));
  return cache_.Insert(key, std::move(plan));
}

}  // namespace pxv
