// Thread-safe LRU cache of compiled QueryPlans, keyed by the query's
// canonical pattern string (tp/pattern.h — invariant under predicate
// reordering, so repeated *and isomorphic* queries share one slot; the
// 64-bit Fingerprint rides along in the plan for cheap external keying).
// Values are shared_ptr<const QueryPlan> so a reader can keep executing a
// plan that a concurrent insert has just evicted.

#ifndef PXV_SERVE_PLAN_CACHE_H_
#define PXV_SERVE_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "rewrite/planner.h"

namespace pxv {

class PlanCache {
 public:
  explicit PlanCache(size_t capacity = 1024);

  /// Returns the cached plan and refreshes its LRU position, or nullptr.
  std::shared_ptr<const QueryPlan> Lookup(const std::string& key);

  /// Inserts (or replaces) the plan under `key`, evicting the least
  /// recently used entry when over capacity. Returns the stored pointer.
  std::shared_ptr<const QueryPlan> Insert(const std::string& key,
                                          std::shared_ptr<const QueryPlan> plan);

  size_t size() const;
  size_t capacity() const { return capacity_; }
  int64_t hits() const;
  int64_t misses() const;
  void Clear();

 private:
  using LruList = std::list<std::pair<std::string, std::shared_ptr<const QueryPlan>>>;

  const size_t capacity_;
  mutable std::mutex mu_;
  LruList lru_;  // Front = most recently used.
  std::unordered_map<std::string, LruList::iterator> index_;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
};

}  // namespace pxv

#endif  // PXV_SERVE_PLAN_CACHE_H_
