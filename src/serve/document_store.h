// DocumentStore — the versioned document layer under the ViewServer.
//
// The paper's serving model (§3.1, §4–§5) materializes view extensions over
// one immutable p-document. Real probabilistic sources mutate — new results
// arrive, confidences get revised — so the store owns *named* documents and
// pushes delta updates through the whole stack:
//
//   * mutation batches (pxml/pdocument.h) are applied transactionally: the
//     batch is validated as a whole and rolled back entirely when any step
//     or the resulting document is invalid;
//   * each document keeps one persistent EvalSession whose exact-DP subtree
//     memo (prob/engine.h SubtreeCache) makes re-evaluation after a batch
//     cost O(depth × |delta|) region computations instead of O(|P̂|);
//   * per (document, view) the store tracks dirtiness by label overlap —
//     a batch can only change a view's results if some label of the view's
//     pattern occurs in a changed subtree — and MaterializeIncremental
//     patches only the dirty views' extensions (BuildViewExtensionDelta),
//     republishing the untouched ones by shared pointer;
//   * snapshots swap atomically per document: Answer/AnswerAll keep reading
//     the snapshot they started with while MaterializeIncremental runs, the
//     same contract ViewServer gives for its own single-document snapshot.
//
// Incremental materialization is bit-identical to a from-scratch
// Materialize over the mutated document: same result sets, same anchored
// probabilities (down to floating-point rounding), same traversal order of
// every extension. It falls back to a full per-view rebuild when a view has
// no previous materialization; the engine-level memo likewise falls back to
// a full recompute when a mutation shifts the root frame epoch (e.g. the
// last occurrence of a query label disappeared).
//
// Threading: Answer/AnswerAll/Snapshot may be called freely from any
// thread. Put/Apply/MaterializeIncremental are serialized per document by
// the store (sessions are single-threaded state); calls for different
// documents proceed in parallel.

#ifndef PXV_SERVE_DOCUMENT_STORE_H_
#define PXV_SERVE_DOCUMENT_STORE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "prob/eval_session.h"
#include "pxml/pdocument.h"
#include "pxml/view_extension.h"
#include "serve/view_server.h"
#include "serve/wal.h"
#include "util/status.h"

namespace pxv {

/// One mutation of a stored document. Targets are addressed by persistent
/// id (stable across versions), not NodeId (an arena detail).
struct DocMutation {
  enum class Kind {
    kInsertSubtree,        ///< Copy `subtree` as a new child of `target`.
    kRemoveSubtree,        ///< Detach the subtree rooted at `target`.
    kSetEdgeProb,          ///< Set `target`'s incoming edge probability.
    kSetExpDistribution,   ///< Replace an exp node's subset distribution
                           ///< (exp nodes have no pid — address them via
                           ///< `target` + `dist_child_index`).
  };
  Kind kind = Kind::kSetEdgeProb;
  PersistentId target = kNullPid;  ///< Ordinary node addressed by pid.
  /// Exp nodes carry no pid; kSetExpDistribution addresses one as the
  /// `dist_child_index`-th child of the ordinary node `target`. (Edge
  /// probabilities never need this: every edge whose probability is free —
  /// a mux/ind alternative — either enters an ordinary node, which has its
  /// own pid, or enters a nested distributional node, which this model
  /// treats as structure, not as an adjustable weight.)
  int dist_child_index = -1;
  double prob = 1.0;               ///< Edge probability (insert / setedge).
  PDocument subtree;               ///< Insert payload.
  std::vector<std::pair<std::vector<int>, double>> exp_dist;

  /// `sub`'s ordinary nodes must carry pids that do not occur in the
  /// target document (and are unique within `sub`) — persistent-id
  /// uniqueness is what every pid-addressed path relies on; colliding
  /// payloads reject the batch.
  static DocMutation InsertSubtree(PersistentId parent, PDocument sub,
                                   double prob = 1.0);
  static DocMutation RemoveSubtree(PersistentId target);
  static DocMutation SetEdgeProb(PersistentId target, double prob);
  static DocMutation SetExpDistribution(
      PersistentId target, int child_index,
      std::vector<std::pair<std::vector<int>, double>> dist);
};

struct DocumentStoreOptions {
  /// Session options for the per-document evaluation sessions. The store
  /// forces cache_subtrees = true unless `incremental` is off.
  EvalOptions eval;
  /// Passed through to extension building / patching.
  ViewExtensionOptions extension_options;
  /// When false, every materialization rebuilds every view from scratch
  /// (debug / baseline benchmarking).
  bool incremental = true;
  /// Compact a stored document inside Apply once its detached tombstones
  /// outweigh the live nodes (detached_count * 2 > size — the same rule
  /// the extension patcher uses). Off ⇒ the node arena grows forever under
  /// sustained RemoveSubtree churn (tombstone ids are never reused).
  bool compact_documents = true;
  /// Refresh the standing-query answers (the server's RegisterCachedQuery
  /// set) inside Apply, right after a batch commits: one merged propagation
  /// of the document's shared lineage circuit re-serves every cached query
  /// (AnswerAllCached then costs a copy). Off ⇒ the refresh happens lazily
  /// on the next AnswerAllCached call instead.
  bool refresh_cached_on_apply = true;

  // ------------------------------------------------------- durability ----
  /// When non-empty, the store is durable: every Put/Apply/Drop/Compact is
  /// written to a write-ahead log in this directory before it takes effect,
  /// and DocumentStore::Open recovers the full document set from the latest
  /// checkpoint plus the WAL tail. Durable stores must be created via
  /// Open(); the plain constructor rejects a non-empty durable_dir.
  std::string durable_dir;
  /// When to fsync the WAL (see serve/wal.h for the loss windows).
  FsyncPolicy fsync = FsyncPolicy::kBatch;
  /// kBatch hard bound: the write path fsyncs inline once this many
  /// records are outstanding. Under kBatch a background flusher thread
  /// fsyncs continuously off the write path, so the TYPICAL loss window
  /// is one fsync latency worth of records; this bound only kicks in when
  /// the flusher cannot keep up (or failed). Keep it several times the
  /// number of records one fsync-duration admits — a sustained fdatasync
  /// runs hundreds of microseconds, and a bound near that threshold makes
  /// every write stall behind a barrier fsync it did not need.
  int sync_every_records = 1024;
  /// Auto-checkpoint once the live WAL segment exceeds this many bytes
  /// (checked after Apply commits, outside the document lock). <= 0
  /// disables automatic checkpoints; Checkpoint() is always available.
  int64_t checkpoint_after_wal_bytes = 8 << 20;
  /// File-system seam, for fault injection in tests. nullptr ⇒ the real
  /// POSIX environment. Must outlive the store.
  IoEnv* io_env = nullptr;
};

/// Monotonic counters (one consistent snapshot per stats() call).
struct DocumentStoreStats {
  int64_t batches = 0;            ///< Successfully applied mutation batches.
  int64_t mutations = 0;          ///< Mutations inside those batches.
  int64_t rejected_batches = 0;   ///< Batches rolled back.
  int64_t materializations = 0;   ///< MaterializeIncremental calls.
  int64_t views_patched = 0;      ///< Views updated via extension delta.
  int64_t views_rebuilt = 0;      ///< Views rebuilt from scratch.
  int64_t views_clean = 0;        ///< Views republished untouched.
  int64_t compactions = 0;        ///< Document arenas rebuilt (tombstones).
  int64_t nodes_reclaimed = 0;    ///< Tombstones dropped by those rebuilds.
  int64_t wal_appends = 0;        ///< Records appended to the WAL.
  int64_t wal_bytes = 0;          ///< Framed bytes appended to the WAL.
  int64_t checkpoints = 0;        ///< Checkpoints durably written.
  int64_t recoveries = 0;         ///< 1 when this store came up via Open().
  int64_t torn_records_dropped = 0;  ///< Torn WAL tails dropped at recovery.
  int64_t read_only = 0;          ///< 1 once the store degraded (see below).
  int64_t cached_refreshes = 0;   ///< Standing-query answer refreshes
                                  ///< (merged shared-circuit propagations).
};

/// Serialization of a DocMutation batch — the kApply WAL record body.
/// Exposed for tests and tooling; the encoding round-trips every mutation
/// field (insert payloads ride as full PDocument images).
std::string EncodeMutationBatch(const std::vector<DocMutation>& batch);
StatusOr<std::vector<DocMutation>> DecodeMutationBatch(std::string_view bytes);

class DocumentStore {
 public:
  /// The server supplies the view registry, plan cache and stats; it must
  /// outlive the store. Register views (server->AddView) before Put.
  /// In-memory stores only — a non-empty options.durable_dir is a checked
  /// fatal error here; durable stores are created via Open().
  explicit DocumentStore(ViewServer* server,
                         DocumentStoreOptions options = {});

  ~DocumentStore();

  /// Opens (or creates) a durable store rooted at options.durable_dir:
  /// loads the newest valid checkpoint, replays the WAL tail beyond each
  /// document's checkpointed lsn — a torn or corrupt trailing record is
  /// dropped without disturbing any earlier committed batch — rebuilds
  /// every materialized view, and starts a fresh WAL segment for new
  /// writes. Register views (server->AddView) before calling: recovery
  /// materializes against the server's view set.
  static StatusOr<std::unique_ptr<DocumentStore>> Open(
      ViewServer* server, DocumentStoreOptions options);

  /// Durably snapshots every stored document and truncates the WAL to the
  /// records newer than the snapshot. Document serialization runs under
  /// each document's write lock in turn; the file I/O runs with no lock
  /// held. A failed checkpoint leaves the store fully writable — the WAL
  /// is still the source of truth — and is simply retried later. No-op
  /// returning OK when another thread is already checkpointing.
  Status Checkpoint();

  /// True once the store has degraded to read-only: a WAL append or fsync
  /// failed, so new writes could no longer be made durable. Every
  /// subsequent Put/Apply/Drop/Compact fails fast; reads (Answer/Snapshot/
  /// Find/stats) keep serving the last acknowledged state.
  ///
  /// Durability of the write that tripped this flag is INDETERMINATE (the
  /// standard WAL contract): if the append itself failed, the record never
  /// reached the log (or reached it torn — recovery drops it); if the
  /// fsync failed after a complete append, the frame sits unsynced in the
  /// OS file, so a process restart replays it while a machine crash loses
  /// it. In-memory state always rolls back, so this store keeps serving
  /// the pre-batch state either way. Batches rejected by VALIDATION are a
  /// different matter entirely: they are never written to the log.
  bool read_only() const {
    return read_only_.load(std::memory_order_acquire);
  }

  /// Registers (or replaces) a named document and fully materializes every
  /// registered view over it. Returns an error when the document is invalid.
  Status Put(const std::string& name, PDocument doc);

  /// Removes a named document (snapshots already handed out stay valid).
  Status Drop(const std::string& name);

  std::vector<std::string> Names() const;

  /// Applies `batch` to the named document as one transaction: either every
  /// mutation applies and the resulting document validates, or the document
  /// is left exactly as before and an error is returned. On success the
  /// affected views are marked dirty (label overlap with the changed
  /// subtrees) and the document's new uid is returned. Extensions are NOT
  /// refreshed — call MaterializeIncremental (the snapshot keeps serving
  /// the pre-batch state until then).
  StatusOr<uint64_t> Apply(const std::string& name,
                           const std::vector<DocMutation>& batch);

  /// Re-materializes the named document's dirty views — incrementally when
  /// possible — and atomically publishes a new snapshot. Clean views are
  /// republished without copying.
  Status MaterializeIncremental(const std::string& name);

  /// Forces a tombstone compaction of the named document regardless of the
  /// detached ratio (Apply triggers the same rebuild automatically past
  /// the threshold). Runs under the document's write lock; published
  /// extension snapshots are untouched (extensions key on pids and own
  /// their arenas), each view's NodeId bookkeeping is remapped so the next
  /// MaterializeIncremental still patches instead of rebuilding, and only
  /// this document's subtree memo is dropped. Returns the number of
  /// tombstone nodes reclaimed (0 when none were detached).
  StatusOr<int> Compact(const std::string& name);

  /// Views currently marked dirty for the named document (empty when the
  /// name is unknown).
  std::vector<std::string> DirtyViews(const std::string& name) const;

  /// The named document's current extension snapshot (nullptr when the
  /// name is unknown). Valid and immutable forever.
  std::shared_ptr<const SharedExtensions> Snapshot(
      const std::string& name) const;

  /// Answers q from the named document's current snapshot through the
  /// server's plan cache. nullopt when the name is unknown, q has no
  /// rewriting, or no plan candidate is executable.
  std::optional<std::vector<PidProb>> Answer(const std::string& name,
                                             const Pattern& q);

  /// Batched serving over one snapshot of the named document.
  std::vector<std::optional<std::vector<PidProb>>> AnswerAll(
      const std::string& name, const std::vector<Pattern>& queries);

  /// Answers every standing query registered on the server
  /// (ViewServer::RegisterCachedQuery) over the named document's CURRENT
  /// contents, pid-keyed; result i corresponds to
  /// server->cached_queries()[i]. Served straight from the answers the
  /// last Apply refreshed when the document has not moved since
  /// (refresh_cached_on_apply); otherwise one merged propagation of the
  /// document's shared lineage circuit refreshes the whole set first.
  /// nullopt when the name is unknown. Serialized with the write path per
  /// document (the standing session is single-threaded state).
  std::optional<std::vector<std::vector<PidProb>>> AnswerAllCached(
      const std::string& name);

  /// Hypothetical serving: answers q over the named document as if the
  /// probability overrides in `changes` had been committed, WITHOUT
  /// mutating anything — the document, its views, its WAL and its uid are
  /// bitwise untouched afterwards. Runs through the document's standing
  /// lineage-circuit session (one overlay re-propagation in the common
  /// case; see ViewServer::WhatIf), created on first use. Errors when the
  /// name is unknown, a pid does not resolve, or the overrides are not
  /// valid probabilities. Serialized with the write path per document.
  StatusOr<std::vector<PidProb>> WhatIf(const std::string& name,
                                        const Pattern& q,
                                        const std::vector<WhatIfChange>& changes);

  /// Read-only access to a stored document (write paths lock internally;
  /// the reference is only safe while no Apply/Put/Drop runs concurrently).
  const PDocument* Find(const std::string& name) const;

  DocumentStoreStats stats() const;

  /// Cumulative exact-DP subtree-memo counters of the named document's
  /// session (zeros when the name is unknown).
  SubtreeCacheStats SessionCacheStats(const std::string& name) const;

 private:
  struct ViewState {
    /// The published materialization (aliased into snapshots). Shared so
    /// old snapshots keep the extension they reference alive after a newer
    /// one is published.
    std::shared_ptr<MaterializedView> view;
    /// Double buffer: the previously published materialization, reused as
    /// the patch target once every snapshot referencing it is gone
    /// (use_count == 1) — steady-state incremental materialization then
    /// copies nothing at all. When old snapshots are still alive the store
    /// falls back to copy-on-patch.
    std::shared_ptr<MaterializedView> spare;
    bool dirty = true;
  };

  struct DocState {
    std::mutex mu;  // Serializes the write path (doc + session + views).
    PDocument doc;
    std::unique_ptr<EvalSession> session;
    std::map<std::string, ViewState, std::less<>> views;
    /// Lsn of the last WAL record applied to this document (durable stores
    /// only; guarded by mu). Checkpoints persist it so recovery replays
    /// exactly the records the snapshot misses.
    uint64_t last_lsn = 0;
    /// Standing-query serving (guarded by mu): a lazily-created
    /// BackendKind::kCircuit session holding the document's shared
    /// lineage circuit, plus the cached answers of the server's standing
    /// queries and the doc uid they reflect.
    std::unique_ptr<EvalSession> standing;
    std::vector<std::vector<PidProb>> standing_answers;
    uint64_t standing_uid = 0;
    mutable std::mutex snap_mu;  // Guards only the snapshot pointer swap.
    std::shared_ptr<const SharedExtensions> snapshot;
  };

  struct DurableTag {};
  DocumentStore(ViewServer* server, DocumentStoreOptions options, DurableTag);

  /// Recovery: load checkpoint + replay WAL into `this` (empty store).
  Status Recover();
  /// Installs a recovered document (no WAL write; views materialize).
  void InstallRecovered(const std::string& name, PDocument doc,
                        uint64_t last_lsn);

  /// Assigns the next lsn and appends one record under wal_mu_. On failure
  /// the store degrades to read-only. `out_lsn` receives the record's lsn.
  Status WalAppend(WalRecordKind kind, const std::string& doc,
                   std::string body, uint64_t* out_lsn);
  /// Auto-checkpoint trigger; called with no document lock held.
  void MaybeCheckpoint();
  /// Background group-commit thread body (kBatch only): flushes buffered
  /// frames under wal_mu_, then fsyncs the segment through an independent
  /// descriptor with no lock held, so the write path almost never pays an
  /// inline fsync (the sync_every barrier remains as the hard bound).
  void FlusherLoop();

  std::shared_ptr<DocState> FindState(const std::string& name) const;
  // Creates the document's standing circuit session on first use (under
  // the write lock).
  void EnsureStandingLocked(DocState* state);
  static Status PrecheckOne(const PDocument& doc, const DocMutation& m,
                            NodeId* out_node);
  static void ApplyChecked(PDocument* doc, const DocMutation& m, NodeId node);
  Status ApplyOne(DocState* state, const DocMutation& m);
  // Labels of ordinary nodes in the subtree rooted at `root` (detached
  // subtrees included — removed labels dirty the views that matched them).
  static void CollectLabels(const PDocument& doc, NodeId root,
                            std::set<Label>* out);
  void MaterializeLocked(DocState* state);
  // Recomputes the standing-query answers under the write lock: one
  // ViewServer::AnswerAllCached batch over the document's standing session
  // (creating it on first use).
  void RefreshStandingLocked(DocState* state);
  // Tombstone compaction under the write lock (see Compact()). Returns the
  // nodes reclaimed. Must run only after the batch's dirty labels were
  // collected — compaction drops the detached subtrees they live in.
  int CompactLocked(DocState* state);

  ViewServer* server_;
  DocumentStoreOptions options_;

  mutable std::mutex docs_mu_;  // Guards the map itself, not the DocStates.
  std::map<std::string, std::shared_ptr<DocState>, std::less<>> docs_;

  // Durable state (unused when options_.durable_dir is empty). Lock order:
  // DocState::mu → docs_mu_ → wal_mu_.
  IoEnv* env_ = nullptr;
  mutable std::mutex wal_mu_;  // Guards the writer, segment seq and lsn.
  std::unique_ptr<WalWriter> wal_;
  uint64_t wal_seq_ = 0;   ///< Seq of the segment wal_ appends to.
  uint64_t next_lsn_ = 1;  ///< Next lsn to assign.
  std::atomic<bool> read_only_{false};
  std::atomic<bool> checkpointing_{false};
  std::thread flusher_;
  std::condition_variable flusher_cv_;  // Paired with wal_mu_.
  bool flusher_stop_ = false;           // Guarded by wal_mu_.

  std::atomic<int64_t> batches_{0};
  std::atomic<int64_t> mutations_{0};
  std::atomic<int64_t> rejected_batches_{0};
  std::atomic<int64_t> materializations_{0};
  std::atomic<int64_t> views_patched_{0};
  std::atomic<int64_t> views_rebuilt_{0};
  std::atomic<int64_t> views_clean_{0};
  std::atomic<int64_t> compactions_{0};
  std::atomic<int64_t> nodes_reclaimed_{0};
  std::atomic<int64_t> wal_appends_{0};
  std::atomic<int64_t> wal_bytes_{0};
  std::atomic<int64_t> checkpoints_{0};
  std::atomic<int64_t> recoveries_{0};
  std::atomic<int64_t> torn_records_dropped_{0};
  std::atomic<int64_t> cached_refreshes_{0};
};

}  // namespace pxv

#endif  // PXV_SERVE_DOCUMENT_STORE_H_
