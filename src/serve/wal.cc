#include "serve/wal.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "util/codec.h"
#include "util/crc32c.h"

namespace pxv {

namespace {
constexpr size_t kFrameHeader = 8;  // u32 len + u32 masked crc.
}  // namespace

const char* FsyncPolicyName(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kAlways: return "always";
    case FsyncPolicy::kBatch: return "batch";
    case FsyncPolicy::kNone: return "none";
  }
  return "?";
}

const char* WalRecordKindName(WalRecordKind kind) {
  switch (kind) {
    case WalRecordKind::kPut: return "put";
    case WalRecordKind::kApply: return "apply";
    case WalRecordKind::kDrop: return "drop";
    case WalRecordKind::kCompact: return "compact";
  }
  return "?";
}

void EncodeWalRecordTo(const WalRecord& record, std::string* out) {
  const size_t frame_start = out->size();
  // Header written after the payload, once its length and CRC are known.
  out->append(kFrameHeader, '\0');
  PutU8(out, static_cast<uint8_t>(record.kind));
  PutU64(out, record.lsn);
  PutBytes(out, record.doc);
  out->append(record.body);
  const std::string_view payload(out->data() + frame_start + kFrameHeader,
                                 out->size() - frame_start - kFrameHeader);
  std::string header;
  header.reserve(kFrameHeader);
  PutU32(&header, static_cast<uint32_t>(payload.size()));
  PutU32(&header, Crc32cMask(Crc32c(payload)));
  out->replace(frame_start, kFrameHeader, header);
}

std::string EncodeWalRecord(const WalRecord& record) {
  std::string frame;
  EncodeWalRecordTo(record, &frame);
  return frame;
}

WalReadResult DecodeWalSegment(std::string_view bytes) {
  WalReadResult out;
  size_t pos = 0;
  while (pos < bytes.size()) {
    // Torn header / torn payload / bad CRC / undecodable payload all end
    // the valid prefix here.
    if (bytes.size() - pos < kFrameHeader) break;
    ByteReader header(bytes.substr(pos, kFrameHeader));
    const uint32_t len = header.GetU32();
    const uint32_t masked_crc = header.GetU32();
    if (bytes.size() - pos - kFrameHeader < len) break;
    const std::string_view payload = bytes.substr(pos + kFrameHeader, len);
    if (Crc32c(payload) != Crc32cUnmask(masked_crc)) break;
    ByteReader in(payload);
    WalRecord record;
    const uint8_t kind = in.GetU8();
    record.lsn = in.GetU64();
    record.doc = std::string(in.GetBytes());
    if (!in.ok() || kind < static_cast<uint8_t>(WalRecordKind::kPut) ||
        kind > static_cast<uint8_t>(WalRecordKind::kCompact)) {
      break;
    }
    record.kind = static_cast<WalRecordKind>(kind);
    record.body = std::string(payload.substr(payload.size() - in.remaining()));
    record.offset = pos;
    out.records.push_back(std::move(record));
    pos += kFrameHeader + len;
  }
  out.valid_bytes = pos;
  out.torn_tail_dropped = pos < bytes.size() ? 1 : 0;
  return out;
}

StatusOr<WalReadResult> ReadWalSegment(IoEnv* env, const std::string& path) {
  auto bytes = env->ReadFile(path);
  if (!bytes.ok()) return bytes.status();
  return DecodeWalSegment(*bytes);
}

StatusOr<std::unique_ptr<WalWriter>> WalWriter::Open(IoEnv* env,
                                                     const std::string& path,
                                                     FsyncPolicy policy,
                                                     int sync_every) {
  auto file = env->OpenForAppend(path);
  if (!file.ok()) return file.status();
  return std::unique_ptr<WalWriter>(
      new WalWriter(std::move(file.value()), policy, sync_every));
}

namespace {
// Group-commit buffer cap: once the pending frames exceed this, they are
// written (without fsync) even under kBatch/kNone so memory stays bounded
// and the page cache can start its own writeback.
constexpr size_t kFlushCapBytes = 64u << 10;
}  // namespace

Status WalWriter::Flush() {
  if (poisoned_) {
    return Status::Error("WAL writer poisoned by an earlier I/O error");
  }
  if (buffer_.empty()) return Status::Ok();
  if (Status s = file_->Append(buffer_); !s.ok()) {
    // The segment may now hold a torn frame; nothing may be appended after
    // it (recovery drops the tail, and bytes past a torn frame would be
    // unreachable garbage at best).
    poisoned_ = true;
    return s;
  }
  buffer_.clear();
  return Status::Ok();
}

Status WalWriter::Append(const WalRecord& record) {
  if (poisoned_) {
    return Status::Error("WAL writer poisoned by an earlier I/O error");
  }
  const size_t before = buffer_.size();
  EncodeWalRecordTo(record, &buffer_);
  appended_bytes_ += static_cast<int64_t>(buffer_.size() - before);
  ++appended_records_;
  switch (policy_) {
    case FsyncPolicy::kAlways:
      return Sync();
    case FsyncPolicy::kBatch:
      if (unsynced_records() >= sync_every_) return Sync();
      break;
    case FsyncPolicy::kNone:
      break;
  }
  if (buffer_.size() >= kFlushCapBytes) return Flush();
  return Status::Ok();
}

Status WalWriter::Sync() {
  if (poisoned_) {
    return Status::Error("WAL writer poisoned by an earlier I/O error");
  }
  if (Status s = Flush(); !s.ok()) return s;
  if (Status s = file_->Sync(); !s.ok()) {
    poisoned_ = true;
    return s;
  }
  synced_records_ = appended_records_;
  return Status::Ok();
}

void WalWriter::NoteSynced(int64_t upto_records) {
  synced_records_ = std::max(synced_records_,
                             std::min(upto_records, appended_records_));
}

Status WalWriter::Close() {
  if (file_ == nullptr) return Status::Ok();
  Status flush = poisoned_ ? Status::Ok() : Flush();
  Status sync = poisoned_ || policy_ == FsyncPolicy::kNone
                    ? Status::Ok()
                    : file_->Sync();
  Status close = file_->Close();
  file_ = nullptr;
  if (!flush.ok()) return flush;
  return sync.ok() ? close : sync;
}

std::string WalSegmentFileName(uint64_t seq) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "wal-%012" PRIu64 ".log", seq);
  return buf;
}

std::string CheckpointFileName(uint64_t seq) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "ckpt-%012" PRIu64, seq);
  return buf;
}

namespace {

bool ParseSeqName(const std::string& name, const char* prefix,
                  const char* suffix, uint64_t* seq) {
  const size_t plen = std::char_traits<char>::length(prefix);
  const size_t slen = std::char_traits<char>::length(suffix);
  if (name.size() <= plen + slen || name.compare(0, plen, prefix) != 0 ||
      name.compare(name.size() - slen, slen, suffix) != 0) {
    return false;
  }
  uint64_t value = 0;
  for (size_t i = plen; i < name.size() - slen; ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    value = value * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  *seq = value;
  return true;
}

}  // namespace

bool ParseWalSegmentFileName(const std::string& name, uint64_t* seq) {
  return ParseSeqName(name, "wal-", ".log", seq);
}

bool ParseCheckpointFileName(const std::string& name, uint64_t* seq) {
  return ParseSeqName(name, "ckpt-", "", seq);
}

}  // namespace pxv
