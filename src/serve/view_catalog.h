// ViewCatalog — the shared, logical half of the serving stack: the view
// registry (Rewriter), the standing-query list, and the compiled-plan
// cache. Compiled rewritings are a property of (view registry, query
// shape), not of any particular shard, so one catalog serves every
// ViewServer in a ShardedCorpus: the first shard to see a query shape pays
// the exponential TPrewrite/TPIrewrite compile, every other shard hits the
// shared cache. Plans are keyed on (registry fingerprint, canonical query)
// so a catalog can never serve a plan compiled against a different view
// set.
//
// Concurrency contract: registration (AddView / RegisterCachedQuery)
// happens before serving and is NOT thread-safe; after that the catalog is
// immutable except for the internally synchronized PlanCache, and every
// accessor may be called freely from any number of threads.

#ifndef PXV_SERVE_VIEW_CATALOG_H_
#define PXV_SERVE_VIEW_CATALOG_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "rewrite/planner.h"
#include "rewrite/rewriter.h"
#include "serve/plan_cache.h"
#include "tp/pattern.h"

namespace pxv {

class ViewCatalog {
 public:
  explicit ViewCatalog(size_t plan_cache_capacity = 1024)
      : cache_(plan_cache_capacity) {}

  /// Registers a view. Must happen before serving (the plan cache would
  /// otherwise serve plans compiled against the old registry — the
  /// fingerprint in the cache key makes that a miss, not a wrong answer,
  /// but the registration contract stays "register first").
  void AddView(std::string name, Pattern def) {
    rewriter_.AddView(std::move(name), std::move(def));
  }

  /// Registers a standing (cached) query for the shared-circuit batch path.
  /// Duplicate canonical forms are kept once.
  void RegisterCachedQuery(const Pattern& q) {
    if (!cached_keys_.insert(q.CanonicalString()).second) return;
    cached_queries_.push_back(q);
  }

  const Rewriter& rewriter() const { return rewriter_; }
  PlanCache& plan_cache() { return cache_; }
  const PlanCache& plan_cache() const { return cache_; }

  /// The standing queries, in registration order.
  const std::vector<Pattern>& cached_queries() const {
    return cached_queries_;
  }

  /// Fingerprint of the registered view set (Rewriter::Fingerprint).
  uint64_t registry_fingerprint() const { return rewriter_.Fingerprint(); }

  /// The compiled plan for q: plan-cache lookup keyed on (registry
  /// fingerprint, canonical query string), compiling (TPrewrite +
  /// TPIrewrite) only on a miss. Thread-safe.
  std::shared_ptr<const QueryPlan> PlanFor(const Pattern& q);

 private:
  Rewriter rewriter_;
  PlanCache cache_;
  std::vector<Pattern> cached_queries_;  // Registered before serving.
  std::unordered_set<std::string> cached_keys_;
};

}  // namespace pxv

#endif  // PXV_SERVE_VIEW_CATALOG_H_
