#include "serve/document_store.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "serve/checkpoint.h"
#include "util/check.h"
#include "util/codec.h"

namespace pxv {

DocMutation DocMutation::InsertSubtree(PersistentId parent, PDocument sub,
                                       double prob) {
  DocMutation m;
  m.kind = Kind::kInsertSubtree;
  m.target = parent;
  m.subtree = std::move(sub);
  m.prob = prob;
  return m;
}

DocMutation DocMutation::RemoveSubtree(PersistentId target) {
  DocMutation m;
  m.kind = Kind::kRemoveSubtree;
  m.target = target;
  return m;
}

DocMutation DocMutation::SetEdgeProb(PersistentId target, double prob) {
  DocMutation m;
  m.kind = Kind::kSetEdgeProb;
  m.target = target;
  m.prob = prob;
  return m;
}

DocMutation DocMutation::SetExpDistribution(
    PersistentId target, int child_index,
    std::vector<std::pair<std::vector<int>, double>> dist) {
  DocMutation m;
  m.kind = Kind::kSetExpDistribution;
  m.target = target;
  m.dist_child_index = child_index;
  m.exp_dist = std::move(dist);
  return m;
}

std::string EncodeMutationBatch(const std::vector<DocMutation>& batch) {
  std::string out;
  PutU32(&out, static_cast<uint32_t>(batch.size()));
  for (const DocMutation& m : batch) {
    PutU8(&out, static_cast<uint8_t>(m.kind));
    PutI64(&out, m.target);
    PutI32(&out, m.dist_child_index);
    PutF64(&out, m.prob);
    if (m.kind == DocMutation::Kind::kInsertSubtree) {
      std::string sub;
      m.subtree.SerializeTo(&sub);
      PutBytes(&out, sub);
    } else {
      PutU32(&out, 0);
    }
    PutU32(&out, static_cast<uint32_t>(m.exp_dist.size()));
    for (const auto& [subset, p] : m.exp_dist) {
      PutU32(&out, static_cast<uint32_t>(subset.size()));
      for (int idx : subset) PutI32(&out, idx);
      PutF64(&out, p);
    }
  }
  return out;
}

StatusOr<std::vector<DocMutation>> DecodeMutationBatch(
    std::string_view bytes) {
  const auto corrupt = [](const char* what) {
    return Status::Error(std::string("corrupt mutation batch: ") + what);
  };
  ByteReader in(bytes);
  const uint32_t count = in.GetU32();
  if (count > in.remaining() + 1) return corrupt("batch size");
  std::vector<DocMutation> batch;
  batch.reserve(count);
  for (uint32_t i = 0; i < count && in.ok(); ++i) {
    DocMutation m;
    const uint8_t kind = in.GetU8();
    if (kind >
        static_cast<uint8_t>(DocMutation::Kind::kSetExpDistribution)) {
      return corrupt("mutation kind");
    }
    m.kind = static_cast<DocMutation::Kind>(kind);
    m.target = in.GetI64();
    m.dist_child_index = in.GetI32();
    m.prob = in.GetF64();
    const std::string_view sub = in.GetBytes();
    if (m.kind == DocMutation::Kind::kInsertSubtree) {
      auto doc = PDocument::Deserialize(sub);
      if (!doc.ok()) return doc.status();
      m.subtree = std::move(doc.value());
    }
    const uint32_t dist_count = in.GetU32();
    if (dist_count > in.remaining() + 1) return corrupt("exp dist size");
    m.exp_dist.reserve(dist_count);
    for (uint32_t d = 0; d < dist_count && in.ok(); ++d) {
      const uint32_t subset_size = in.GetU32();
      if (subset_size > in.remaining() / 4 + 1) return corrupt("exp subset");
      std::vector<int> subset;
      subset.reserve(subset_size);
      for (uint32_t k = 0; k < subset_size && in.ok(); ++k) {
        subset.push_back(in.GetI32());
      }
      const double p = in.GetF64();
      m.exp_dist.emplace_back(std::move(subset), p);
    }
    batch.push_back(std::move(m));
  }
  if (!in.ok() || !in.AtEnd()) return corrupt("truncated");
  return batch;
}

namespace {

Status ReadOnlyError() {
  return Status::Error("store is read-only after an unrecoverable I/O error");
}

// The one compaction rule, shared by stored documents (Put/Apply) and
// patched view extensions (MaterializeLocked): rebuild once detached
// tombstones outweigh the live nodes — amortized, one rebuild per ~|live|
// detachments. Exp-heavy documents compact *earlier*: every tombstone
// dilates the arena each DP pass walks, and exp regions re-walk their child
// distributions once per explicit subset (PDocument::ExpDpCost), so each
// tombstone costs proportionally more there. The per-tombstone weight grows
// with the document's relative exp surcharge; for exp-free documents the
// rule stays the flat detached*2 > size.
bool TombstonesOutweighLive(const PDocument& d) {
  const double surcharge =
      d.live_size() > 0 ? d.ExpDpCost() / double(d.live_size()) : 0.0;
  return double(d.detached_count()) * (2.0 + surcharge) > double(d.size());
}

}  // namespace

DocumentStore::DocumentStore(ViewServer* server, DocumentStoreOptions options)
    : DocumentStore(server, std::move(options), DurableTag{}) {
  PXV_CHECK(options_.durable_dir.empty())
      << "durable stores must be created via DocumentStore::Open";
}

DocumentStore::DocumentStore(ViewServer* server, DocumentStoreOptions options,
                             DurableTag)
    : server_(server), options_(std::move(options)) {
  PXV_CHECK(server_ != nullptr);
  if (options_.incremental) options_.eval.cache_subtrees = true;
  env_ = options_.io_env != nullptr ? options_.io_env : IoEnv::Real();
}

DocumentStore::~DocumentStore() {
  {
    std::lock_guard<std::mutex> lock(wal_mu_);
    flusher_stop_ = true;
  }
  flusher_cv_.notify_all();
  if (flusher_.joinable()) flusher_.join();
  std::lock_guard<std::mutex> lock(wal_mu_);
  if (wal_ != nullptr) wal_->Close();  // Best-effort final flush.
}

StatusOr<std::unique_ptr<DocumentStore>> DocumentStore::Open(
    ViewServer* server, DocumentStoreOptions options) {
  if (options.durable_dir.empty()) {
    return Status::Error("DocumentStore::Open requires options.durable_dir");
  }
  std::unique_ptr<DocumentStore> store(
      new DocumentStore(server, std::move(options), DurableTag{}));
  if (Status s = store->Recover(); !s.ok()) return s;
  return store;
}

Status DocumentStore::Recover() {
  const std::string& dir = options_.durable_dir;
  if (Status s = env_->CreateDir(dir); !s.ok()) return s;
  auto listing = env_->ListDir(dir);
  if (!listing.ok()) return listing.status();
  std::vector<uint64_t> ckpts;
  std::vector<uint64_t> segments;
  for (const std::string& file : *listing) {
    uint64_t seq = 0;
    if (ParseCheckpointFileName(file, &seq)) {
      ckpts.push_back(seq);
    } else if (ParseWalSegmentFileName(file, &seq)) {
      segments.push_back(seq);
    }
  }
  std::sort(ckpts.begin(), ckpts.end());
  std::sort(segments.begin(), segments.end());

  // The newest checkpoint that decodes wins. Checkpoints appear atomically
  // (tmp → rename), so an invalid one means bit rot; fall back to the
  // previous — its missed records are still covered by the lsn filter
  // below as long as the older WAL segments survived, and replay fails
  // loudly (unknown document / bad frame) when they did not.
  struct Recovered {
    PDocument doc;
    uint64_t last_lsn = 0;
  };
  std::map<std::string, Recovered> docs;
  uint64_t ckpt_seq = 0;
  for (auto it = ckpts.rbegin(); it != ckpts.rend(); ++it) {
    auto data = ReadCheckpointFile(env_, dir + "/" + CheckpointFileName(*it));
    if (!data.ok()) continue;
    std::map<std::string, Recovered> loaded;
    bool all_ok = true;
    for (CheckpointDoc& cd : data->docs) {
      auto doc = PDocument::Deserialize(cd.doc_image);
      if (!doc.ok()) {
        all_ok = false;
        break;
      }
      loaded[cd.name] = {std::move(doc.value()), cd.last_lsn};
    }
    if (!all_ok) continue;
    docs = std::move(loaded);
    ckpt_seq = *it;
    break;
  }

  // The segments the replay needs (>= the chosen checkpoint) must be
  // contiguous: rotation creates them one by one and cleanup only ever
  // deletes a prefix. A gap means the log was truncated against a NEWER
  // checkpoint that did not survive — replaying across the hole would
  // silently resurrect a stale state, so refuse loudly instead.
  for (size_t i = 1; i < segments.size(); ++i) {
    if (segments[i - 1] >= ckpt_seq && segments[i] != segments[i - 1] + 1) {
      return Status::Error("corrupt WAL: segment gap between " +
                           WalSegmentFileName(segments[i - 1]) + " and " +
                           WalSegmentFileName(segments[i]));
    }
  }

  // Replay the WAL tail in segment order, skipping per document what the
  // checkpoint already holds.
  uint64_t max_lsn = 0;
  for (const auto& [name, rec] : docs) {
    max_lsn = std::max(max_lsn, rec.last_lsn);
  }
  for (size_t i = 0; i < segments.size(); ++i) {
    // Segments older than the checkpoint are fully covered by it; they only
    // still exist when a crash interrupted the post-checkpoint cleanup.
    if (segments[i] < ckpt_seq) continue;
    const std::string seg_name = WalSegmentFileName(segments[i]);
    auto read = ReadWalSegment(env_, dir + "/" + seg_name);
    if (!read.ok()) return read.status();
    if (read->torn_tail_dropped != 0 && i + 1 != segments.size()) {
      // Appends only ever go to the newest segment, so a bad frame in an
      // older one is bit rot, not a crash artifact — and the records past
      // it cannot be replayed (recovery must apply a prefix). Refuse
      // rather than resurrect a hole.
      return Status::Error("corrupt WAL: bad frame mid-log in " + seg_name);
    }
    torn_records_dropped_.fetch_add(read->torn_tail_dropped,
                                    std::memory_order_relaxed);
    for (WalRecord& record : read->records) {
      max_lsn = std::max(max_lsn, record.lsn);
      const auto it = docs.find(record.doc);
      if (it != docs.end() && record.lsn <= it->second.last_lsn) continue;
      switch (record.kind) {
        case WalRecordKind::kPut: {
          auto doc = PDocument::Deserialize(record.body);
          if (!doc.ok()) {
            return Status::Error("corrupt WAL put record for " + record.doc +
                                 ": " + doc.status().message());
          }
          docs[record.doc] = {std::move(doc.value()), record.lsn};
          break;
        }
        case WalRecordKind::kApply: {
          if (it == docs.end()) {
            return Status::Error("WAL apply record for unknown document " +
                                 record.doc);
          }
          auto batch = DecodeMutationBatch(record.body);
          if (!batch.ok()) return batch.status();
          PDocument& doc = it->second.doc;
          Status failed;
          {
            PDocument::MutationBatch scope(&doc);
            for (const DocMutation& m : *batch) {
              NodeId node = kNullNode;
              failed = PrecheckOne(doc, m, &node);
              if (!failed.ok()) break;
              ApplyChecked(&doc, m, node);
            }
          }
          if (!failed.ok()) {
            // The log never holds a batch the store rejected, so a batch
            // that no longer replays means the log and the state diverged.
            return Status::Error("WAL apply record " +
                                 std::to_string(record.lsn) +
                                 " does not replay: " + failed.message());
          }
          doc.ClearDirtyPaths();
          // Threshold compaction replays deterministically from the
          // batches themselves (kCompact marks only *forced* compactions).
          if (options_.compact_documents && TombstonesOutweighLive(doc)) {
            doc.Compact();
          }
          it->second.last_lsn = record.lsn;
          break;
        }
        case WalRecordKind::kDrop:
          if (it != docs.end()) docs.erase(it);
          break;
        case WalRecordKind::kCompact:
          if (it != docs.end()) {
            it->second.doc.Compact();
            it->second.last_lsn = record.lsn;
          }
          break;
      }
    }
  }

  // Fresh segment for new writes — never append to a segment that may end
  // in a dropped torn frame.
  uint64_t max_seq = ckpt_seq;
  for (uint64_t s : segments) max_seq = std::max(max_seq, s);
  wal_seq_ = max_seq + 1;
  auto writer = WalWriter::Open(env_, dir + "/" + WalSegmentFileName(wal_seq_),
                                options_.fsync, options_.sync_every_records);
  if (!writer.ok()) return writer.status();
  wal_ = std::move(writer.value());
  if (Status s = env_->SyncDir(dir); !s.ok()) return s;
  next_lsn_ = max_lsn + 1;

  // Rebuild the serving state. Materialization runs the same code path as
  // a live store, and incremental materialization is bit-identical to
  // from-scratch (see the file comment), so recovered answers match the
  // never-crashed store's exactly.
  for (auto& [name, rec] : docs) {
    if (Status s = rec.doc.Validate(); !s.ok()) {
      return Status::Error("recovered document " + name +
                           " is invalid: " + s.message());
    }
    InstallRecovered(name, std::move(rec.doc), rec.last_lsn);
  }
  recoveries_.fetch_add(1, std::memory_order_relaxed);
  // Group commit: under kBatch a background thread absorbs the fsyncs so
  // the write path pays a memcpy, not a disk stall. kAlways syncs inline
  // by definition; kNone never syncs.
  if (options_.fsync == FsyncPolicy::kBatch) {
    flusher_ = std::thread(&DocumentStore::FlusherLoop, this);
  }
  return Status::Ok();
}

void DocumentStore::FlusherLoop() {
  std::unique_lock<std::mutex> lock(wal_mu_);
  while (true) {
    flusher_cv_.wait(lock, [&] {
      return flusher_stop_ ||
             (wal_ != nullptr && !read_only_.load(std::memory_order_acquire) &&
              wal_->unsynced_records() > 0);
    });
    if (flusher_stop_) return;
    if (Status s = wal_->Flush(); !s.ok()) {
      // The writer is poisoned; the store can no longer make writes
      // durable. Degrade exactly like an inline append failure would.
      read_only_.store(true, std::memory_order_release);
      continue;
    }
    // Everything up to `flushed` is in the file; fsync it through an
    // independent descriptor WITHOUT holding wal_mu_, so concurrent
    // appends only ever wait on a memcpy.
    const int64_t flushed = wal_->appended_records();
    const uint64_t seq = wal_seq_;
    const std::string path =
        options_.durable_dir + "/" + WalSegmentFileName(seq);
    lock.unlock();
    const Status synced = env_->SyncFile(path);
    lock.lock();
    if (wal_ != nullptr && seq == wal_seq_) {  // Else rotated: the
                                               // rotation synced + closed.
      if (synced.ok()) {
        wal_->NoteSynced(flushed);
      } else {
        // fsync failed: the kernel may have DROPPED the dirty pages (the
        // fsync-gate hazard) — retrying cannot make the data durable, so
        // refuse further writes rather than silently narrow the guarantee.
        read_only_.store(true, std::memory_order_release);
      }
    }
    // Pace the cycles: each fdatasync pins the inode's dirty pages and
    // journal state, and back-to-back syncs measurably stall the append
    // path even though it only memcpys under wal_mu_. A short breath
    // batches more records per fsync at no durability cost (under kBatch
    // the loss window is already "since the last completed fsync"), as
    // long as pace × arrival-rate stays well under the sync_every hard
    // bound — which it does by orders of magnitude at the default 1024.
    flusher_cv_.wait_for(lock, std::chrono::microseconds(200),
                         [&] { return flusher_stop_; });
  }
}

void DocumentStore::InstallRecovered(const std::string& name, PDocument doc,
                                     uint64_t last_lsn) {
  auto state = std::make_shared<DocState>();
  state->doc = std::move(doc);
  state->doc.ClearDirtyPaths();
  state->session = std::make_unique<EvalSession>(state->doc, options_.eval);
  state->last_lsn = last_lsn;
  for (const NamedView& v : server_->rewriter().views()) {
    state->views[v.name];
  }
  MaterializeLocked(state.get());  // Exclusive: nothing else sees it yet.
  std::lock_guard<std::mutex> lock(docs_mu_);
  docs_[name] = std::move(state);
}

Status DocumentStore::WalAppend(WalRecordKind kind, const std::string& doc,
                                std::string body, uint64_t* out_lsn) {
  std::lock_guard<std::mutex> lock(wal_mu_);
  if (wal_ == nullptr || read_only_.load(std::memory_order_acquire)) {
    return ReadOnlyError();
  }
  WalRecord record;
  record.kind = kind;
  record.lsn = next_lsn_;
  record.doc = doc;
  record.body = std::move(body);
  const int64_t before = wal_->appended_bytes();
  if (Status s = wal_->Append(record); !s.ok()) {
    // The writer is poisoned: nothing can be made durable any more.
    // Degrade to read-only instead of acknowledging volatile writes.
    read_only_.store(true, std::memory_order_release);
    return Status::Error("WAL append failed (store is now read-only): " +
                         s.message());
  }
  ++next_lsn_;
  if (out_lsn != nullptr) *out_lsn = record.lsn;
  wal_appends_.fetch_add(1, std::memory_order_relaxed);
  wal_bytes_.fetch_add(wal_->appended_bytes() - before,
                       std::memory_order_relaxed);
  // Wake the flusher only on the drained→pending transition: while it is
  // mid-cycle its wait predicate re-checks unsynced_records() under this
  // lock, so later appends need no notification.
  if (options_.fsync == FsyncPolicy::kBatch &&
      wal_->unsynced_records() == 1) {
    flusher_cv_.notify_one();
  }
  return Status::Ok();
}

void DocumentStore::MaybeCheckpoint() {
  if (options_.checkpoint_after_wal_bytes <= 0) return;
  {
    std::lock_guard<std::mutex> lock(wal_mu_);
    if (wal_ == nullptr ||
        wal_->appended_bytes() < options_.checkpoint_after_wal_bytes) {
      return;
    }
  }
  // Failure is deliberately ignored here: a failed checkpoint leaves the
  // WAL as the (growing) source of truth and the next Apply retries.
  Checkpoint();
}

Status DocumentStore::Checkpoint() {
  if (options_.durable_dir.empty()) {
    return Status::Error("Checkpoint() requires a durable store");
  }
  bool expected = false;
  if (!checkpointing_.compare_exchange_strong(expected, true)) {
    return Status::Ok();  // Another thread is already checkpointing.
  }
  struct Guard {
    std::atomic<bool>* flag;
    ~Guard() { flag->store(false, std::memory_order_release); }
  } guard{&checkpointing_};

  const std::string& dir = options_.durable_dir;
  uint64_t ckpt_seq = 0;
  {
    // Rotate to a fresh segment first. The retiring segments are deleted
    // once the checkpoint is durable, so everything in them must be on
    // disk now; failing to guarantee that means failing to stay durable —
    // these errors (unlike the checkpoint write below) trip read-only.
    std::lock_guard<std::mutex> lock(wal_mu_);
    if (wal_ == nullptr || read_only_.load(std::memory_order_acquire)) {
      return ReadOnlyError();
    }
    const auto fatal = [this](const std::string& what, const Status& s) {
      read_only_.store(true, std::memory_order_release);
      wal_ = nullptr;
      return Status::Error(what + " (store is now read-only): " + s.message());
    };
    if (Status s = wal_->Sync(); !s.ok()) return fatal("WAL sync failed", s);
    if (Status s = wal_->Close(); !s.ok()) return fatal("WAL close failed", s);
    wal_ = nullptr;
    auto writer =
        WalWriter::Open(env_, dir + "/" + WalSegmentFileName(wal_seq_ + 1),
                        options_.fsync, options_.sync_every_records);
    if (!writer.ok()) {
      return fatal("WAL rotation failed", writer.status());
    }
    ++wal_seq_;
    wal_ = std::move(writer.value());
    ckpt_seq = wal_seq_;
    // The new segment's directory entry must outlive the old segments.
    if (Status s = env_->SyncDir(dir); !s.ok()) {
      return fatal("WAL directory sync failed", s);
    }
  }

  // Serialize each document under its own write lock, one document at a
  // time; the expensive file I/O below runs with no lock held at all, so
  // writers and readers of every document proceed during the write-out.
  CheckpointData data;
  data.wal_seq = ckpt_seq;
  for (const std::string& name : Names()) {
    const std::shared_ptr<DocState> state = FindState(name);
    if (state == nullptr) continue;  // Dropped: its kDrop is in the WAL.
    std::lock_guard<std::mutex> lock(state->mu);
    if (FindState(name) != state) continue;  // Replaced: ditto its kPut.
    CheckpointDoc cd;
    cd.name = name;
    cd.last_lsn = state->last_lsn;
    state->doc.SerializeTo(&cd.doc_image);
    data.docs.push_back(std::move(cd));
  }

  // From here on failure is benign: the WAL still holds every committed
  // record and the next checkpoint simply retries.
  if (Status s = WriteCheckpointFile(env_, dir, ckpt_seq, data); !s.ok()) {
    return s;
  }
  checkpoints_.fetch_add(1, std::memory_order_relaxed);

  // Cleanup, best-effort: a surviving older checkpoint is shadowed by the
  // newer one, a surviving older segment is re-filtered per document at
  // the next recovery.
  if (auto listing = env_->ListDir(dir); listing.ok()) {
    for (const std::string& file : *listing) {
      uint64_t seq = 0;
      if ((ParseCheckpointFileName(file, &seq) && seq < ckpt_seq) ||
          (ParseWalSegmentFileName(file, &seq) && seq < ckpt_seq)) {
        env_->RemoveFile(dir + "/" + file);
      }
    }
  }
  return Status::Ok();
}

std::shared_ptr<DocumentStore::DocState> DocumentStore::FindState(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(docs_mu_);
  const auto it = docs_.find(name);
  return it == docs_.end() ? nullptr : it->second;
}

Status DocumentStore::Put(const std::string& name, PDocument doc) {
  const bool durable = !options_.durable_dir.empty();
  if (durable && read_only()) return ReadOnlyError();
  Status valid = doc.Validate();
  if (!valid.ok()) return valid;
  auto state = std::make_shared<DocState>();
  state->doc = std::move(doc);
  state->doc.ClearDirtyPaths();
  state->session = std::make_unique<EvalSession>(state->doc, options_.eval);
  for (const NamedView& v : server_->rewriter().views()) {
    state->views[v.name];  // Fresh ViewState: dirty, nothing materialized.
  }
  // A document arriving with a tombstone-heavy arena (e.g. churned outside
  // the store) starts from a compact one; nothing references its node ids
  // yet, so the remap is free here (exclusive: nothing else sees the state).
  if (options_.compact_documents && TombstonesOutweighLive(state->doc)) {
    CompactLocked(state.get());
  }
  MaterializeLocked(state.get());  // Exclusive: nothing else sees it yet.
  // Durable stores log the document image that will actually be installed
  // (post compaction-on-load) — replay re-installs it verbatim. The append
  // happens inside the commit critical section below so the WAL order of
  // racing Puts matches their publication order.
  std::string image;
  if (durable) state->doc.SerializeTo(&image);
  // Publish, serialized with concurrent writers of a replaced document:
  // taking the old state's write mutex before the swap keeps the promised
  // per-document Put/Apply/MaterializeIncremental ordering — an Apply
  // either completes before the replacement or observes the new document.
  for (;;) {
    std::shared_ptr<DocState> old = FindState(name);
    if (old == nullptr) {
      std::lock_guard<std::mutex> lock(docs_mu_);
      if (docs_.find(name) != docs_.end()) continue;  // Raced another Put.
      if (durable) {
        Status s = WalAppend(WalRecordKind::kPut, name, image,
                             &state->last_lsn);
        if (!s.ok()) return s;
      }
      docs_[name] = std::move(state);
      return Status::Ok();
    }
    std::lock_guard<std::mutex> write_lock(old->mu);
    std::lock_guard<std::mutex> lock(docs_mu_);
    if (docs_.find(name) == docs_.end() || docs_[name] != old) continue;
    if (durable) {
      Status s = WalAppend(WalRecordKind::kPut, name, image,
                           &state->last_lsn);
      if (!s.ok()) return s;
    }
    docs_[name] = std::move(state);  // Old state dies with its readers.
    return Status::Ok();
  }
}

Status DocumentStore::Drop(const std::string& name) {
  const bool durable = !options_.durable_dir.empty();
  if (durable && read_only()) return ReadOnlyError();
  std::lock_guard<std::mutex> lock(docs_mu_);
  const auto it = docs_.find(name);
  if (it == docs_.end()) return Status::Error("no document named " + name);
  if (durable) {
    Status s = WalAppend(WalRecordKind::kDrop, name, "", nullptr);
    if (!s.ok()) return s;
  }
  docs_.erase(it);
  return Status::Ok();
}

std::vector<std::string> DocumentStore::Names() const {
  std::vector<std::string> names;
  std::lock_guard<std::mutex> lock(docs_mu_);
  names.reserve(docs_.size());
  for (const auto& [name, state] : docs_) names.push_back(name);
  return names;
}

// Complete validity precheck for one mutation against the current document
// state: when it passes, applying the mutation is guaranteed to succeed AND
// to leave the document valid (Definition 1) — mutations only perturb the
// document locally, so checking the mutated neighborhood is exhaustive.
// This is what lets the single-mutation write path skip both the rollback
// copy and the O(|P̂|) re-validation.
Status DocumentStore::PrecheckOne(const PDocument& doc, const DocMutation& m,
                                  NodeId* out_node) {
  const NodeId target = doc.FindByPid(m.target);
  if (target == kNullNode) {
    return Status::Error("no ordinary node with pid " +
                         std::to_string(m.target));
  }
  NodeId node = target;
  if (m.dist_child_index >= 0) {
    const auto& kids = doc.children(target);
    if (m.dist_child_index >= static_cast<int>(kids.size())) {
      return Status::Error("dist_child_index out of range at pid " +
                           std::to_string(m.target));
    }
    node = kids[m.dist_child_index];
  }
  *out_node = node;
  // Sum of sibling edge probabilities under a mux parent, excluding
  // `except` (kNullNode to include everyone).
  const auto mux_sum = [&doc](NodeId mux, NodeId except) {
    double sum = 0;
    for (NodeId c : doc.children(mux)) {
      if (c != except) sum += doc.edge_prob(c);
    }
    return sum;
  };
  switch (m.kind) {
    case DocMutation::Kind::kInsertSubtree: {
      if (m.subtree.empty()) return Status::Error("empty insert payload");
      Status payload = m.subtree.Validate();
      if (!payload.ok()) return payload;
      // Persistent ids must stay unique across the whole document — the §4
      // restricted plans and every pid-addressed path (mutation targeting,
      // TP∩ joins, answer keys) rely on it. Reject colliding payloads
      // instead of silently aliasing nodes. One scan of each side keeps
      // the check O(|doc| + |payload|).
      {
        std::set<PersistentId> doc_pids;
        for (NodeId n = 0; n < doc.size(); ++n) {
          if (doc.ordinary(n) && !doc.detached(n)) doc_pids.insert(doc.pid(n));
        }
        std::set<PersistentId> seen;
        for (NodeId n = 0; n < m.subtree.size(); ++n) {
          if (!m.subtree.ordinary(n)) continue;
          const PersistentId pid = m.subtree.pid(n);
          if (!seen.insert(pid).second) {
            return Status::Error("insert payload repeats pid " +
                                 std::to_string(pid));
          }
          if (doc_pids.count(pid) > 0) {
            return Status::Error(
                "insert payload pid " + std::to_string(pid) +
                " already exists in the document (give payload nodes fresh "
                "pids, e.g. label#pid)");
          }
        }
      }
      switch (doc.kind(node)) {
        case PKind::kExp:
          return Status::Error("cannot insert under an exp node");
        case PKind::kOrdinary:
        case PKind::kDet:
          if (m.prob != 1.0) {
            return Status::Error(
                "child of ordinary/det node must have edge probability 1");
          }
          break;
        case PKind::kMux:
          if (m.prob < 0.0 || mux_sum(node, kNullNode) + m.prob > 1.0 + 1e-9) {
            return Status::Error("insert would overflow the mux budget");
          }
          break;
        case PKind::kInd:
          if (m.prob < 0.0 || m.prob > 1.0) {
            return Status::Error("edge probability out of [0,1]");
          }
          break;
      }
      return Status::Ok();
    }
    case DocMutation::Kind::kRemoveSubtree: {
      if (node == doc.root()) return Status::Error("cannot remove the root");
      const NodeId par = doc.parent(node);
      if (doc.kind(par) == PKind::kExp) {
        return Status::Error("cannot remove a child of an exp node");
      }
      if (!doc.ordinary(par) && doc.children(par).size() == 1) {
        return Status::Error("removal would leave a distributional leaf");
      }
      return Status::Ok();
    }
    case DocMutation::Kind::kSetEdgeProb: {
      if (m.prob < 0.0 || m.prob > 1.0) {
        return Status::Error("edge probability out of [0,1]");
      }
      const NodeId par = doc.parent(node);
      if (par != kNullNode) {
        if ((doc.ordinary(par) || doc.kind(par) == PKind::kDet) &&
            m.prob != 1.0) {
          return Status::Error(
              "child of ordinary/det node must have edge probability 1");
        }
        if (doc.kind(par) == PKind::kMux &&
            mux_sum(par, node) + m.prob > 1.0 + 1e-9) {
          return Status::Error("edge probability would overflow the mux");
        }
      }
      return Status::Ok();
    }
    case DocMutation::Kind::kSetExpDistribution: {
      if (doc.kind(node) != PKind::kExp) {
        return Status::Error("SetExpDistribution target is not an exp node");
      }
      const int kids = static_cast<int>(doc.children(node).size());
      double sum = 0;
      for (const auto& [subset, p] : m.exp_dist) {
        if (p < 0.0 || p > 1.0) {
          return Status::Error("exp probability out of range");
        }
        sum += p;
        for (int idx : subset) {
          if (idx < 0 || idx >= kids) {
            return Status::Error("exp subset index out of range");
          }
        }
      }
      if (sum > 1.0 + 1e-9) {
        return Status::Error("exp distribution sums to > 1");
      }
      return Status::Ok();
    }
  }
  return Status::Error("unknown mutation kind");
}

// Applies a prechecked mutation; cannot fail.
void DocumentStore::ApplyChecked(PDocument* doc, const DocMutation& m,
                                 NodeId node) {
  switch (m.kind) {
    case DocMutation::Kind::kInsertSubtree:
      doc->InsertSubtree(node, m.subtree, m.prob);
      return;
    case DocMutation::Kind::kRemoveSubtree:
      doc->RemoveSubtree(node);
      return;
    case DocMutation::Kind::kSetEdgeProb:
      doc->SetEdgeProb(node, m.prob);
      return;
    case DocMutation::Kind::kSetExpDistribution:
      doc->SetExpDistribution(node, m.exp_dist);
      return;
  }
}

Status DocumentStore::ApplyOne(DocState* state, const DocMutation& m) {
  NodeId node = kNullNode;
  Status s = PrecheckOne(state->doc, m, &node);
  if (!s.ok()) return s;
  ApplyChecked(&state->doc, m, node);
  return Status::Ok();
}

void DocumentStore::CollectLabels(const PDocument& doc, NodeId root,
                                  std::set<Label>* out) {
  std::vector<NodeId> stack{root};
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    if (doc.ordinary(n)) out->insert(doc.label(n));
    for (NodeId c : doc.children(n)) stack.push_back(c);
  }
}

namespace {

bool PatternUsesAnyLabel(const Pattern& p, const std::set<Label>& labels) {
  for (PNodeId n = 0; n < p.size(); ++n) {
    if (labels.count(p.label(n)) > 0) return true;
  }
  return false;
}

// Labels of the ordinary ancestors-or-self of `n` (the nodes whose view
// extension copies would contain a change at `n`).
void CollectAncestorLabels(const PDocument& doc, NodeId n,
                           std::set<Label>* out) {
  for (NodeId cur = n; cur != kNullNode; cur = doc.parent(cur)) {
    if (doc.ordinary(cur)) out->insert(doc.label(cur));
  }
}

}  // namespace

StatusOr<uint64_t> DocumentStore::Apply(const std::string& name,
                                        const std::vector<DocMutation>& batch) {
  const bool durable = !options_.durable_dir.empty();
  if (durable && read_only()) return ReadOnlyError();
  std::shared_ptr<DocState> state;
  std::unique_lock<std::mutex> lock;
  // Writers must hold the mutex of the state that is *currently*
  // registered: a concurrent Put/Drop may replace the entry while this
  // thread waits on the old state's mutex, and committing into an orphaned
  // state would silently lose the batch.
  for (;;) {
    state = FindState(name);
    if (state == nullptr) return Status::Error("no document named " + name);
    lock = std::unique_lock<std::mutex>(state->mu);
    if (FindState(name) == state) break;
  }
  // Transactional, two regimes:
  //   * one mutation — precheck, then apply. PrecheckOne is a complete
  //     validity check, so nothing is staged before the only point of
  //     failure: no rollback copy, no O(|P̂|) re-validation (the serving
  //     write path stays O(|delta| + pid lookup));
  //   * several mutations — later mutations may depend on earlier ones, so
  //     prechecks run against the staged state and a failure mid-batch
  //     restores a rollback copy bit for bit (versions included, keeping
  //     evaluation caches consistent with the restored contents).
  state->doc.ClearDirtyPaths();
  Status failed = Status::Ok();
  if (batch.size() == 1) {
    // PrecheckOne is complete, so the WAL record can go first: once the
    // record is logged the apply cannot fail, and a failed append leaves
    // the document untouched — either way the WAL and the store agree.
    NodeId node = kNullNode;
    failed = PrecheckOne(state->doc, batch[0], &node);
    if (failed.ok() && durable) {
      Status io = WalAppend(WalRecordKind::kApply, name,
                            EncodeMutationBatch(batch), &state->last_lsn);
      if (!io.ok()) return io;  // I/O failure, not a batch defect.
    }
    if (failed.ok()) {
      PDocument::MutationBatch scope(&state->doc);
      ApplyChecked(&state->doc, batch[0], node);
    }
  } else {
    PDocument backup = state->doc;
    {
      PDocument::MutationBatch scope(&state->doc);
      for (size_t i = 0; i < batch.size(); ++i) {
        Status s = ApplyOne(state.get(), batch[i]);
        if (!s.ok()) {
          failed = Status::Error("mutation #" + std::to_string(i) + ": " +
                                 s.message());
          break;
        }
      }
    }
    if (failed.ok()) failed = state->doc.Validate();
    if (!failed.ok()) {
      state->doc = std::move(backup);
    } else if (durable) {
      // Logged only after the whole batch staged AND validated — the WAL
      // never contains a rolled-back batch. An I/O failure here rolls the
      // staged state back too: a write that cannot be made durable is not
      // acknowledged, in memory or anywhere else.
      Status io = WalAppend(WalRecordKind::kApply, name,
                            EncodeMutationBatch(batch), &state->last_lsn);
      if (!io.ok()) {
        state->doc = std::move(backup);
        return io;
      }
    }
  }
  if (!failed.ok()) {
    rejected_batches_.fetch_add(1, std::memory_order_relaxed);
    return failed;
  }
  // Label-overlap dirtiness. A batch affects a view iff
  //   (a) some label of the view's pattern occurs in a changed subtree —
  //       the result set or its probabilities can change (removed content
  //       included: its labels still hang off the detached roots); or
  //   (b) the view's *output* label occurs on an ordinary ancestor-or-self
  //       of a change — the change then sits inside a potential result
  //       subtree, so the extension's copy of it must be redone even when
  //       the result probabilities are untouched.
  std::set<Label> touched;
  std::set<Label> enclosing;
  for (NodeId t : state->doc.dirty_paths()) {
    CollectLabels(state->doc, t, &touched);
    CollectAncestorLabels(state->doc, t, &enclosing);
  }
  state->doc.ClearDirtyPaths();
  for (const NamedView& v : server_->rewriter().views()) {
    ViewState& vs = state->views[v.name];
    if (vs.dirty) continue;
    if (PatternUsesAnyLabel(v.def, touched) ||
        enclosing.count(v.def.OutLabel()) > 0) {
      vs.dirty = true;
    }
  }
  batches_.fetch_add(1, std::memory_order_relaxed);
  mutations_.fetch_add(static_cast<int64_t>(batch.size()),
                       std::memory_order_relaxed);
  // Tombstone compaction, only after the batch committed and its dirty
  // labels were collected (they live in the detached subtrees compaction
  // drops). A failed batch therefore never observes a half-compacted
  // state: the rollback copy above restored the pre-batch arena bit for
  // bit, threshold crossings included.
  if (options_.compact_documents && TombstonesOutweighLive(state->doc)) {
    CompactLocked(state.get());
  }
  // Standing-query refresh: ONE merged propagation of the document's
  // shared lineage circuit re-serves every cached query the server holds
  // (a compaction above simply makes this pass a re-record — the fresh
  // structure_version resets the circuit). AnswerAllCached afterwards is
  // a copy until the next batch.
  if (options_.refresh_cached_on_apply &&
      !server_->cached_queries().empty()) {
    RefreshStandingLocked(state.get());
  }
  const uint64_t uid = state->doc.uid();
  if (durable) {
    // The auto-checkpoint trigger MUST run outside the document lock:
    // Checkpoint() takes every document's lock in turn.
    lock.unlock();
    MaybeCheckpoint();
  }
  return uid;
}

int DocumentStore::CompactLocked(DocState* state) {
  const int before = state->doc.size();
  const std::vector<NodeId> remap = state->doc.Compact();
  const int reclaimed = before - state->doc.size();
  if (reclaimed == 0) return 0;
  // Each view's bookkeeping references *source-document* node ids (the
  // extension delta diff aligns old and new result lists on them); the
  // published extensions themselves key on pids and own their arenas, so
  // they are untouched and every handed-out snapshot stays valid. The
  // stable-rank remap preserves relative id order, so remapped result
  // lists still align with the ascending-id lists the next evaluation
  // produces — incrementality survives compaction. Entries whose source
  // node was dropped (a removed result not re-materialized yet) become
  // kNullNode, which the diff classifies as "removed" on sight. Snapshot
  // readers never touch these vectors (they alias only the extension), so
  // rewriting them under the write lock is race-free.
  for (auto& [name, vs] : state->views) {
    for (const auto& mv : {vs.view, vs.spare}) {
      if (mv == nullptr) continue;
      for (ViewResultEntry& e : mv->results) {
        if (e.node != kNullNode) e.node = remap[e.node];
      }
    }
  }
  // The session's uid-keyed caches (results, label index, analysis
  // buffers) re-key off the compaction's fresh uid by themselves; only the
  // NodeId-keyed subtree memo needs an explicit, document-scoped drop.
  state->session->InvalidateSubtreeMemo();
  compactions_.fetch_add(1, std::memory_order_relaxed);
  nodes_reclaimed_.fetch_add(reclaimed, std::memory_order_relaxed);
  return reclaimed;
}

StatusOr<int> DocumentStore::Compact(const std::string& name) {
  const bool durable = !options_.durable_dir.empty();
  if (durable && read_only()) return ReadOnlyError();
  for (;;) {
    const std::shared_ptr<DocState> state = FindState(name);
    if (state == nullptr) return Status::Error("no document named " + name);
    std::lock_guard<std::mutex> lock(state->mu);
    if (FindState(name) != state) continue;  // Replaced while waiting.
    if (durable) {
      // Forced compactions are logged (threshold ones replay on their own
      // from the batches) so replay reproduces the same arena shape.
      Status s = WalAppend(WalRecordKind::kCompact, name, "",
                           &state->last_lsn);
      if (!s.ok()) return s;
    }
    return CompactLocked(state.get());
  }
}

void DocumentStore::MaterializeLocked(DocState* state) {
  EvalSession& session = *state->session;
  const auto& views = server_->rewriter().views();
  // Always prefetch the FULL view set, exactly like Rewriter::Materialize:
  // views sharing an output label answer from one joint DP pass, and keeping
  // the grouping identical across materializations keeps the joint passes'
  // cache signatures stable — that is what lets the engine's subtree memo
  // serve the unchanged subtrees of the next delta. (Prefetching a clean
  // view costs nothing extra: it rides the same pass, and its extension is
  // not touched below.)
  std::vector<const Pattern*> defs;
  defs.reserve(views.size());
  for (const NamedView& v : views) defs.push_back(&v.def);
  session.PrefetchTP(defs);
  auto snapshot = std::make_shared<SharedExtensions>();
  for (const NamedView& v : views) {
    ViewState& vs = state->views[v.name];
    if (!vs.dirty && vs.view != nullptr) {
      (*snapshot)[v.name] = std::shared_ptr<const PDocument>(
          vs.view, &vs.view->ext);
      views_clean_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    const std::vector<NodeProb>& evaluated = session.EvaluateTP(v.def);
    std::vector<ViewResultEntry> results;
    results.reserve(evaluated.size());
    for (const NodeProb& np : evaluated) {
      results.push_back({np.node, np.prob});
    }
    // Tombstones accumulate in a patched extension; once they outweigh the
    // live nodes in the chosen patch target, a compacting rebuild is
    // cheaper than further patching.
    const auto bloated = [](const MaterializedView& mv) {
      return TombstonesOutweighLive(mv.ext);
    };
    std::shared_ptr<MaterializedView> target;
    if (options_.incremental && vs.view != nullptr) {
      if (vs.spare != nullptr && vs.spare.use_count() == 1 &&
          !bloated(*vs.spare)) {
        // The retired buffer has no readers left: patch it in place (its
        // own results/versions describe the state it was built from, so
        // the delta is computed against the right baseline).
        target = std::move(vs.spare);
      } else if (!bloated(*vs.view)) {
        // Readers still hold the retired buffer — fall back to a copy.
        target = std::make_shared<MaterializedView>(*vs.view);
      }
    }
    if (target != nullptr) {
      BuildViewExtensionDelta(state->doc, results, target.get(),
                              options_.extension_options);
      vs.spare = std::move(vs.view);
      vs.view = std::move(target);
      views_patched_.fetch_add(1, std::memory_order_relaxed);
    } else {
      vs.spare = nullptr;  // Compaction: drop any bloated buffer outright.
      vs.view = std::make_shared<MaterializedView>(BuildMaterializedView(
          state->doc, v.name, results, options_.extension_options));
      views_rebuilt_.fetch_add(1, std::memory_order_relaxed);
    }
    vs.dirty = false;
    (*snapshot)[v.name] =
        std::shared_ptr<const PDocument>(vs.view, &vs.view->ext);
  }
  std::lock_guard<std::mutex> lock(state->snap_mu);
  state->snapshot = std::move(snapshot);
}

Status DocumentStore::MaterializeIncremental(const std::string& name) {
  for (;;) {
    const std::shared_ptr<DocState> state = FindState(name);
    if (state == nullptr) return Status::Error("no document named " + name);
    std::lock_guard<std::mutex> lock(state->mu);
    if (FindState(name) != state) continue;  // Replaced while waiting.
    MaterializeLocked(state.get());
    materializations_.fetch_add(1, std::memory_order_relaxed);
    return Status::Ok();
  }
}

std::vector<std::string> DocumentStore::DirtyViews(
    const std::string& name) const {
  std::vector<std::string> dirty;
  const std::shared_ptr<DocState> state = FindState(name);
  if (state == nullptr) return dirty;
  std::lock_guard<std::mutex> lock(state->mu);
  for (const auto& [view, vs] : state->views) {
    if (vs.dirty) dirty.push_back(view);
  }
  return dirty;
}

std::shared_ptr<const SharedExtensions> DocumentStore::Snapshot(
    const std::string& name) const {
  const std::shared_ptr<DocState> state = FindState(name);
  if (state == nullptr) return nullptr;
  std::lock_guard<std::mutex> lock(state->snap_mu);
  return state->snapshot;
}

std::optional<std::vector<PidProb>> DocumentStore::Answer(
    const std::string& name, const Pattern& q) {
  const std::shared_ptr<const SharedExtensions> snapshot = Snapshot(name);
  if (snapshot == nullptr) return std::nullopt;
  return server_->AnswerWith(q, *snapshot);
}

std::vector<std::optional<std::vector<PidProb>>> DocumentStore::AnswerAll(
    const std::string& name, const std::vector<Pattern>& queries) {
  std::vector<std::optional<std::vector<PidProb>>> results(queries.size());
  const std::shared_ptr<const SharedExtensions> snapshot = Snapshot(name);
  if (snapshot == nullptr) return results;
  server_->pool().ParallelFor(static_cast<int>(queries.size()), [&](int i) {
    results[i] = server_->AnswerWith(queries[i], *snapshot);
  });
  return results;
}

void DocumentStore::EnsureStandingLocked(DocState* state) {
  if (state->standing != nullptr) return;
  // The standing session runs the lineage-circuit backend regardless of
  // the store's serving EvalOptions: the whole point is that the
  // registered queries share one circuit, so a delta costs one merged
  // propagation. Kernel pinning carries over; result caching is required
  // (replays after the first post-delta query are cache hits).
  EvalOptions eval = options_.eval;
  eval.backend = BackendKind::kCircuit;
  eval.cache_results = true;
  eval.cache_subtrees = false;
  state->standing = std::make_unique<EvalSession>(state->doc, eval);
}

void DocumentStore::RefreshStandingLocked(DocState* state) {
  EnsureStandingLocked(state);
  state->standing_answers = server_->AnswerAllCached(state->standing.get());
  state->standing_uid = state->doc.uid();
  cached_refreshes_.fetch_add(1, std::memory_order_relaxed);
}

std::optional<std::vector<std::vector<PidProb>>> DocumentStore::AnswerAllCached(
    const std::string& name) {
  for (;;) {
    const std::shared_ptr<DocState> state = FindState(name);
    if (state == nullptr) return std::nullopt;
    std::lock_guard<std::mutex> lock(state->mu);
    if (FindState(name) != state) continue;  // Replaced while waiting.
    if (server_->cached_queries().empty()) {
      return std::vector<std::vector<PidProb>>{};
    }
    if (state->standing == nullptr ||
        state->standing_uid != state->doc.uid() ||
        state->standing_answers.size() !=
            server_->cached_queries().size()) {
      RefreshStandingLocked(state.get());
    }
    return state->standing_answers;
  }
}

StatusOr<std::vector<PidProb>> DocumentStore::WhatIf(
    const std::string& name, const Pattern& q,
    const std::vector<WhatIfChange>& changes) {
  for (;;) {
    const std::shared_ptr<DocState> state = FindState(name);
    if (state == nullptr) {
      return Status::Error("what-if: unknown document '" + name + "'");
    }
    std::lock_guard<std::mutex> lock(state->mu);
    if (FindState(name) != state) continue;  // Replaced while waiting.
    EnsureStandingLocked(state.get());
    return server_->WhatIf(state->standing.get(), q, changes);
  }
}

const PDocument* DocumentStore::Find(const std::string& name) const {
  const std::shared_ptr<DocState> state = FindState(name);
  return state == nullptr ? nullptr : &state->doc;
}

DocumentStoreStats DocumentStore::stats() const {
  DocumentStoreStats s;
  s.batches = batches_.load(std::memory_order_relaxed);
  s.mutations = mutations_.load(std::memory_order_relaxed);
  s.rejected_batches = rejected_batches_.load(std::memory_order_relaxed);
  s.materializations = materializations_.load(std::memory_order_relaxed);
  s.views_patched = views_patched_.load(std::memory_order_relaxed);
  s.views_rebuilt = views_rebuilt_.load(std::memory_order_relaxed);
  s.views_clean = views_clean_.load(std::memory_order_relaxed);
  s.compactions = compactions_.load(std::memory_order_relaxed);
  s.nodes_reclaimed = nodes_reclaimed_.load(std::memory_order_relaxed);
  s.wal_appends = wal_appends_.load(std::memory_order_relaxed);
  s.wal_bytes = wal_bytes_.load(std::memory_order_relaxed);
  s.checkpoints = checkpoints_.load(std::memory_order_relaxed);
  s.recoveries = recoveries_.load(std::memory_order_relaxed);
  s.torn_records_dropped =
      torn_records_dropped_.load(std::memory_order_relaxed);
  s.read_only = read_only_.load(std::memory_order_acquire) ? 1 : 0;
  s.cached_refreshes = cached_refreshes_.load(std::memory_order_relaxed);
  return s;
}

SubtreeCacheStats DocumentStore::SessionCacheStats(
    const std::string& name) const {
  const std::shared_ptr<DocState> state = FindState(name);
  if (state == nullptr) return {};
  std::lock_guard<std::mutex> lock(state->mu);
  return state->session->subtree_cache_stats();
}

}  // namespace pxv
