#include "serve/document_store.h"

#include <utility>

#include "util/check.h"

namespace pxv {

DocMutation DocMutation::InsertSubtree(PersistentId parent, PDocument sub,
                                       double prob) {
  DocMutation m;
  m.kind = Kind::kInsertSubtree;
  m.target = parent;
  m.subtree = std::move(sub);
  m.prob = prob;
  return m;
}

DocMutation DocMutation::RemoveSubtree(PersistentId target) {
  DocMutation m;
  m.kind = Kind::kRemoveSubtree;
  m.target = target;
  return m;
}

DocMutation DocMutation::SetEdgeProb(PersistentId target, double prob) {
  DocMutation m;
  m.kind = Kind::kSetEdgeProb;
  m.target = target;
  m.prob = prob;
  return m;
}

DocMutation DocMutation::SetExpDistribution(
    PersistentId target, int child_index,
    std::vector<std::pair<std::vector<int>, double>> dist) {
  DocMutation m;
  m.kind = Kind::kSetExpDistribution;
  m.target = target;
  m.dist_child_index = child_index;
  m.exp_dist = std::move(dist);
  return m;
}

namespace {

// The one compaction rule, shared by stored documents (Put/Apply) and
// patched view extensions (MaterializeLocked): rebuild once detached
// tombstones outweigh the live nodes — amortized, one rebuild per ~|live|
// detachments. Exp-heavy documents compact *earlier*: every tombstone
// dilates the arena each DP pass walks, and exp regions re-walk their child
// distributions once per explicit subset (PDocument::ExpDpCost), so each
// tombstone costs proportionally more there. The per-tombstone weight grows
// with the document's relative exp surcharge; for exp-free documents the
// rule stays the flat detached*2 > size.
bool TombstonesOutweighLive(const PDocument& d) {
  const double surcharge =
      d.live_size() > 0 ? d.ExpDpCost() / double(d.live_size()) : 0.0;
  return double(d.detached_count()) * (2.0 + surcharge) > double(d.size());
}

}  // namespace

DocumentStore::DocumentStore(ViewServer* server, DocumentStoreOptions options)
    : server_(server), options_(options) {
  PXV_CHECK(server_ != nullptr);
  if (options_.incremental) options_.eval.cache_subtrees = true;
}

std::shared_ptr<DocumentStore::DocState> DocumentStore::FindState(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(docs_mu_);
  const auto it = docs_.find(name);
  return it == docs_.end() ? nullptr : it->second;
}

Status DocumentStore::Put(const std::string& name, PDocument doc) {
  Status valid = doc.Validate();
  if (!valid.ok()) return valid;
  auto state = std::make_shared<DocState>();
  state->doc = std::move(doc);
  state->doc.ClearDirtyPaths();
  state->session = std::make_unique<EvalSession>(state->doc, options_.eval);
  for (const NamedView& v : server_->rewriter().views()) {
    state->views[v.name];  // Fresh ViewState: dirty, nothing materialized.
  }
  // A document arriving with a tombstone-heavy arena (e.g. churned outside
  // the store) starts from a compact one; nothing references its node ids
  // yet, so the remap is free here (exclusive: nothing else sees the state).
  if (options_.compact_documents && TombstonesOutweighLive(state->doc)) {
    CompactLocked(state.get());
  }
  MaterializeLocked(state.get());  // Exclusive: nothing else sees it yet.
  // Publish, serialized with concurrent writers of a replaced document:
  // taking the old state's write mutex before the swap keeps the promised
  // per-document Put/Apply/MaterializeIncremental ordering — an Apply
  // either completes before the replacement or observes the new document.
  for (;;) {
    std::shared_ptr<DocState> old = FindState(name);
    if (old == nullptr) {
      std::lock_guard<std::mutex> lock(docs_mu_);
      if (docs_.find(name) != docs_.end()) continue;  // Raced another Put.
      docs_[name] = std::move(state);
      return Status::Ok();
    }
    std::lock_guard<std::mutex> write_lock(old->mu);
    std::lock_guard<std::mutex> lock(docs_mu_);
    if (docs_.find(name) == docs_.end() || docs_[name] != old) continue;
    docs_[name] = std::move(state);  // Old state dies with its readers.
    return Status::Ok();
  }
}

Status DocumentStore::Drop(const std::string& name) {
  std::lock_guard<std::mutex> lock(docs_mu_);
  return docs_.erase(name) > 0
             ? Status::Ok()
             : Status::Error("no document named " + name);
}

std::vector<std::string> DocumentStore::Names() const {
  std::vector<std::string> names;
  std::lock_guard<std::mutex> lock(docs_mu_);
  names.reserve(docs_.size());
  for (const auto& [name, state] : docs_) names.push_back(name);
  return names;
}

// Complete validity precheck for one mutation against the current document
// state: when it passes, applying the mutation is guaranteed to succeed AND
// to leave the document valid (Definition 1) — mutations only perturb the
// document locally, so checking the mutated neighborhood is exhaustive.
// This is what lets the single-mutation write path skip both the rollback
// copy and the O(|P̂|) re-validation.
Status DocumentStore::PrecheckOne(const PDocument& doc, const DocMutation& m,
                                  NodeId* out_node) {
  const NodeId target = doc.FindByPid(m.target);
  if (target == kNullNode) {
    return Status::Error("no ordinary node with pid " +
                         std::to_string(m.target));
  }
  NodeId node = target;
  if (m.dist_child_index >= 0) {
    const auto& kids = doc.children(target);
    if (m.dist_child_index >= static_cast<int>(kids.size())) {
      return Status::Error("dist_child_index out of range at pid " +
                           std::to_string(m.target));
    }
    node = kids[m.dist_child_index];
  }
  *out_node = node;
  // Sum of sibling edge probabilities under a mux parent, excluding
  // `except` (kNullNode to include everyone).
  const auto mux_sum = [&doc](NodeId mux, NodeId except) {
    double sum = 0;
    for (NodeId c : doc.children(mux)) {
      if (c != except) sum += doc.edge_prob(c);
    }
    return sum;
  };
  switch (m.kind) {
    case DocMutation::Kind::kInsertSubtree: {
      if (m.subtree.empty()) return Status::Error("empty insert payload");
      Status payload = m.subtree.Validate();
      if (!payload.ok()) return payload;
      // Persistent ids must stay unique across the whole document — the §4
      // restricted plans and every pid-addressed path (mutation targeting,
      // TP∩ joins, answer keys) rely on it. Reject colliding payloads
      // instead of silently aliasing nodes. One scan of each side keeps
      // the check O(|doc| + |payload|).
      {
        std::set<PersistentId> doc_pids;
        for (NodeId n = 0; n < doc.size(); ++n) {
          if (doc.ordinary(n) && !doc.detached(n)) doc_pids.insert(doc.pid(n));
        }
        std::set<PersistentId> seen;
        for (NodeId n = 0; n < m.subtree.size(); ++n) {
          if (!m.subtree.ordinary(n)) continue;
          const PersistentId pid = m.subtree.pid(n);
          if (!seen.insert(pid).second) {
            return Status::Error("insert payload repeats pid " +
                                 std::to_string(pid));
          }
          if (doc_pids.count(pid) > 0) {
            return Status::Error(
                "insert payload pid " + std::to_string(pid) +
                " already exists in the document (give payload nodes fresh "
                "pids, e.g. label#pid)");
          }
        }
      }
      switch (doc.kind(node)) {
        case PKind::kExp:
          return Status::Error("cannot insert under an exp node");
        case PKind::kOrdinary:
        case PKind::kDet:
          if (m.prob != 1.0) {
            return Status::Error(
                "child of ordinary/det node must have edge probability 1");
          }
          break;
        case PKind::kMux:
          if (m.prob < 0.0 || mux_sum(node, kNullNode) + m.prob > 1.0 + 1e-9) {
            return Status::Error("insert would overflow the mux budget");
          }
          break;
        case PKind::kInd:
          if (m.prob < 0.0 || m.prob > 1.0) {
            return Status::Error("edge probability out of [0,1]");
          }
          break;
      }
      return Status::Ok();
    }
    case DocMutation::Kind::kRemoveSubtree: {
      if (node == doc.root()) return Status::Error("cannot remove the root");
      const NodeId par = doc.parent(node);
      if (doc.kind(par) == PKind::kExp) {
        return Status::Error("cannot remove a child of an exp node");
      }
      if (!doc.ordinary(par) && doc.children(par).size() == 1) {
        return Status::Error("removal would leave a distributional leaf");
      }
      return Status::Ok();
    }
    case DocMutation::Kind::kSetEdgeProb: {
      if (m.prob < 0.0 || m.prob > 1.0) {
        return Status::Error("edge probability out of [0,1]");
      }
      const NodeId par = doc.parent(node);
      if (par != kNullNode) {
        if ((doc.ordinary(par) || doc.kind(par) == PKind::kDet) &&
            m.prob != 1.0) {
          return Status::Error(
              "child of ordinary/det node must have edge probability 1");
        }
        if (doc.kind(par) == PKind::kMux &&
            mux_sum(par, node) + m.prob > 1.0 + 1e-9) {
          return Status::Error("edge probability would overflow the mux");
        }
      }
      return Status::Ok();
    }
    case DocMutation::Kind::kSetExpDistribution: {
      if (doc.kind(node) != PKind::kExp) {
        return Status::Error("SetExpDistribution target is not an exp node");
      }
      const int kids = static_cast<int>(doc.children(node).size());
      double sum = 0;
      for (const auto& [subset, p] : m.exp_dist) {
        if (p < 0.0 || p > 1.0) {
          return Status::Error("exp probability out of range");
        }
        sum += p;
        for (int idx : subset) {
          if (idx < 0 || idx >= kids) {
            return Status::Error("exp subset index out of range");
          }
        }
      }
      if (sum > 1.0 + 1e-9) {
        return Status::Error("exp distribution sums to > 1");
      }
      return Status::Ok();
    }
  }
  return Status::Error("unknown mutation kind");
}

// Applies a prechecked mutation; cannot fail.
void DocumentStore::ApplyChecked(PDocument* doc, const DocMutation& m,
                                 NodeId node) {
  switch (m.kind) {
    case DocMutation::Kind::kInsertSubtree:
      doc->InsertSubtree(node, m.subtree, m.prob);
      return;
    case DocMutation::Kind::kRemoveSubtree:
      doc->RemoveSubtree(node);
      return;
    case DocMutation::Kind::kSetEdgeProb:
      doc->SetEdgeProb(node, m.prob);
      return;
    case DocMutation::Kind::kSetExpDistribution:
      doc->SetExpDistribution(node, m.exp_dist);
      return;
  }
}

Status DocumentStore::ApplyOne(DocState* state, const DocMutation& m) {
  NodeId node = kNullNode;
  Status s = PrecheckOne(state->doc, m, &node);
  if (!s.ok()) return s;
  ApplyChecked(&state->doc, m, node);
  return Status::Ok();
}

void DocumentStore::CollectLabels(const PDocument& doc, NodeId root,
                                  std::set<Label>* out) {
  std::vector<NodeId> stack{root};
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    if (doc.ordinary(n)) out->insert(doc.label(n));
    for (NodeId c : doc.children(n)) stack.push_back(c);
  }
}

namespace {

bool PatternUsesAnyLabel(const Pattern& p, const std::set<Label>& labels) {
  for (PNodeId n = 0; n < p.size(); ++n) {
    if (labels.count(p.label(n)) > 0) return true;
  }
  return false;
}

// Labels of the ordinary ancestors-or-self of `n` (the nodes whose view
// extension copies would contain a change at `n`).
void CollectAncestorLabels(const PDocument& doc, NodeId n,
                           std::set<Label>* out) {
  for (NodeId cur = n; cur != kNullNode; cur = doc.parent(cur)) {
    if (doc.ordinary(cur)) out->insert(doc.label(cur));
  }
}

}  // namespace

StatusOr<uint64_t> DocumentStore::Apply(const std::string& name,
                                        const std::vector<DocMutation>& batch) {
  std::shared_ptr<DocState> state;
  std::unique_lock<std::mutex> lock;
  // Writers must hold the mutex of the state that is *currently*
  // registered: a concurrent Put/Drop may replace the entry while this
  // thread waits on the old state's mutex, and committing into an orphaned
  // state would silently lose the batch.
  for (;;) {
    state = FindState(name);
    if (state == nullptr) return Status::Error("no document named " + name);
    lock = std::unique_lock<std::mutex>(state->mu);
    if (FindState(name) == state) break;
  }
  // Transactional, two regimes:
  //   * one mutation — precheck, then apply. PrecheckOne is a complete
  //     validity check, so nothing is staged before the only point of
  //     failure: no rollback copy, no O(|P̂|) re-validation (the serving
  //     write path stays O(|delta| + pid lookup));
  //   * several mutations — later mutations may depend on earlier ones, so
  //     prechecks run against the staged state and a failure mid-batch
  //     restores a rollback copy bit for bit (versions included, keeping
  //     evaluation caches consistent with the restored contents).
  state->doc.ClearDirtyPaths();
  Status failed = Status::Ok();
  if (batch.size() == 1) {
    PDocument::MutationBatch scope(&state->doc);
    failed = ApplyOne(state.get(), batch[0]);
  } else {
    PDocument backup = state->doc;
    {
      PDocument::MutationBatch scope(&state->doc);
      for (const DocMutation& m : batch) {
        Status s = ApplyOne(state.get(), m);
        if (!s.ok()) {
          failed = s;
          break;
        }
      }
    }
    if (failed.ok()) failed = state->doc.Validate();
    if (!failed.ok()) state->doc = std::move(backup);
  }
  if (!failed.ok()) {
    rejected_batches_.fetch_add(1, std::memory_order_relaxed);
    return failed;
  }
  // Label-overlap dirtiness. A batch affects a view iff
  //   (a) some label of the view's pattern occurs in a changed subtree —
  //       the result set or its probabilities can change (removed content
  //       included: its labels still hang off the detached roots); or
  //   (b) the view's *output* label occurs on an ordinary ancestor-or-self
  //       of a change — the change then sits inside a potential result
  //       subtree, so the extension's copy of it must be redone even when
  //       the result probabilities are untouched.
  std::set<Label> touched;
  std::set<Label> enclosing;
  for (NodeId t : state->doc.dirty_paths()) {
    CollectLabels(state->doc, t, &touched);
    CollectAncestorLabels(state->doc, t, &enclosing);
  }
  state->doc.ClearDirtyPaths();
  for (const NamedView& v : server_->rewriter().views()) {
    ViewState& vs = state->views[v.name];
    if (vs.dirty) continue;
    if (PatternUsesAnyLabel(v.def, touched) ||
        enclosing.count(v.def.OutLabel()) > 0) {
      vs.dirty = true;
    }
  }
  batches_.fetch_add(1, std::memory_order_relaxed);
  mutations_.fetch_add(static_cast<int64_t>(batch.size()),
                       std::memory_order_relaxed);
  // Tombstone compaction, only after the batch committed and its dirty
  // labels were collected (they live in the detached subtrees compaction
  // drops). A failed batch therefore never observes a half-compacted
  // state: the rollback copy above restored the pre-batch arena bit for
  // bit, threshold crossings included.
  if (options_.compact_documents && TombstonesOutweighLive(state->doc)) {
    CompactLocked(state.get());
  }
  return state->doc.uid();
}

int DocumentStore::CompactLocked(DocState* state) {
  const int before = state->doc.size();
  const std::vector<NodeId> remap = state->doc.Compact();
  const int reclaimed = before - state->doc.size();
  if (reclaimed == 0) return 0;
  // Each view's bookkeeping references *source-document* node ids (the
  // extension delta diff aligns old and new result lists on them); the
  // published extensions themselves key on pids and own their arenas, so
  // they are untouched and every handed-out snapshot stays valid. The
  // stable-rank remap preserves relative id order, so remapped result
  // lists still align with the ascending-id lists the next evaluation
  // produces — incrementality survives compaction. Entries whose source
  // node was dropped (a removed result not re-materialized yet) become
  // kNullNode, which the diff classifies as "removed" on sight. Snapshot
  // readers never touch these vectors (they alias only the extension), so
  // rewriting them under the write lock is race-free.
  for (auto& [name, vs] : state->views) {
    for (const auto& mv : {vs.view, vs.spare}) {
      if (mv == nullptr) continue;
      for (ViewResultEntry& e : mv->results) {
        if (e.node != kNullNode) e.node = remap[e.node];
      }
    }
  }
  // The session's uid-keyed caches (results, label index, analysis
  // buffers) re-key off the compaction's fresh uid by themselves; only the
  // NodeId-keyed subtree memo needs an explicit, document-scoped drop.
  state->session->InvalidateSubtreeMemo();
  compactions_.fetch_add(1, std::memory_order_relaxed);
  nodes_reclaimed_.fetch_add(reclaimed, std::memory_order_relaxed);
  return reclaimed;
}

StatusOr<int> DocumentStore::Compact(const std::string& name) {
  for (;;) {
    const std::shared_ptr<DocState> state = FindState(name);
    if (state == nullptr) return Status::Error("no document named " + name);
    std::lock_guard<std::mutex> lock(state->mu);
    if (FindState(name) != state) continue;  // Replaced while waiting.
    return CompactLocked(state.get());
  }
}

void DocumentStore::MaterializeLocked(DocState* state) {
  EvalSession& session = *state->session;
  const auto& views = server_->rewriter().views();
  // Always prefetch the FULL view set, exactly like Rewriter::Materialize:
  // views sharing an output label answer from one joint DP pass, and keeping
  // the grouping identical across materializations keeps the joint passes'
  // cache signatures stable — that is what lets the engine's subtree memo
  // serve the unchanged subtrees of the next delta. (Prefetching a clean
  // view costs nothing extra: it rides the same pass, and its extension is
  // not touched below.)
  std::vector<const Pattern*> defs;
  defs.reserve(views.size());
  for (const NamedView& v : views) defs.push_back(&v.def);
  session.PrefetchTP(defs);
  auto snapshot = std::make_shared<SharedExtensions>();
  for (const NamedView& v : views) {
    ViewState& vs = state->views[v.name];
    if (!vs.dirty && vs.view != nullptr) {
      (*snapshot)[v.name] = std::shared_ptr<const PDocument>(
          vs.view, &vs.view->ext);
      views_clean_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    const std::vector<NodeProb>& evaluated = session.EvaluateTP(v.def);
    std::vector<ViewResultEntry> results;
    results.reserve(evaluated.size());
    for (const NodeProb& np : evaluated) {
      results.push_back({np.node, np.prob});
    }
    // Tombstones accumulate in a patched extension; once they outweigh the
    // live nodes in the chosen patch target, a compacting rebuild is
    // cheaper than further patching.
    const auto bloated = [](const MaterializedView& mv) {
      return TombstonesOutweighLive(mv.ext);
    };
    std::shared_ptr<MaterializedView> target;
    if (options_.incremental && vs.view != nullptr) {
      if (vs.spare != nullptr && vs.spare.use_count() == 1 &&
          !bloated(*vs.spare)) {
        // The retired buffer has no readers left: patch it in place (its
        // own results/versions describe the state it was built from, so
        // the delta is computed against the right baseline).
        target = std::move(vs.spare);
      } else if (!bloated(*vs.view)) {
        // Readers still hold the retired buffer — fall back to a copy.
        target = std::make_shared<MaterializedView>(*vs.view);
      }
    }
    if (target != nullptr) {
      BuildViewExtensionDelta(state->doc, results, target.get(),
                              options_.extension_options);
      vs.spare = std::move(vs.view);
      vs.view = std::move(target);
      views_patched_.fetch_add(1, std::memory_order_relaxed);
    } else {
      vs.spare = nullptr;  // Compaction: drop any bloated buffer outright.
      vs.view = std::make_shared<MaterializedView>(BuildMaterializedView(
          state->doc, v.name, results, options_.extension_options));
      views_rebuilt_.fetch_add(1, std::memory_order_relaxed);
    }
    vs.dirty = false;
    (*snapshot)[v.name] =
        std::shared_ptr<const PDocument>(vs.view, &vs.view->ext);
  }
  std::lock_guard<std::mutex> lock(state->snap_mu);
  state->snapshot = std::move(snapshot);
}

Status DocumentStore::MaterializeIncremental(const std::string& name) {
  for (;;) {
    const std::shared_ptr<DocState> state = FindState(name);
    if (state == nullptr) return Status::Error("no document named " + name);
    std::lock_guard<std::mutex> lock(state->mu);
    if (FindState(name) != state) continue;  // Replaced while waiting.
    MaterializeLocked(state.get());
    materializations_.fetch_add(1, std::memory_order_relaxed);
    return Status::Ok();
  }
}

std::vector<std::string> DocumentStore::DirtyViews(
    const std::string& name) const {
  std::vector<std::string> dirty;
  const std::shared_ptr<DocState> state = FindState(name);
  if (state == nullptr) return dirty;
  std::lock_guard<std::mutex> lock(state->mu);
  for (const auto& [view, vs] : state->views) {
    if (vs.dirty) dirty.push_back(view);
  }
  return dirty;
}

std::shared_ptr<const SharedExtensions> DocumentStore::Snapshot(
    const std::string& name) const {
  const std::shared_ptr<DocState> state = FindState(name);
  if (state == nullptr) return nullptr;
  std::lock_guard<std::mutex> lock(state->snap_mu);
  return state->snapshot;
}

std::optional<std::vector<PidProb>> DocumentStore::Answer(
    const std::string& name, const Pattern& q) {
  const std::shared_ptr<const SharedExtensions> snapshot = Snapshot(name);
  if (snapshot == nullptr) return std::nullopt;
  return server_->AnswerWith(q, *snapshot);
}

std::vector<std::optional<std::vector<PidProb>>> DocumentStore::AnswerAll(
    const std::string& name, const std::vector<Pattern>& queries) {
  std::vector<std::optional<std::vector<PidProb>>> results(queries.size());
  const std::shared_ptr<const SharedExtensions> snapshot = Snapshot(name);
  if (snapshot == nullptr) return results;
  server_->pool().ParallelFor(static_cast<int>(queries.size()), [&](int i) {
    results[i] = server_->AnswerWith(queries[i], *snapshot);
  });
  return results;
}

const PDocument* DocumentStore::Find(const std::string& name) const {
  const std::shared_ptr<DocState> state = FindState(name);
  return state == nullptr ? nullptr : &state->doc;
}

DocumentStoreStats DocumentStore::stats() const {
  DocumentStoreStats s;
  s.batches = batches_.load(std::memory_order_relaxed);
  s.mutations = mutations_.load(std::memory_order_relaxed);
  s.rejected_batches = rejected_batches_.load(std::memory_order_relaxed);
  s.materializations = materializations_.load(std::memory_order_relaxed);
  s.views_patched = views_patched_.load(std::memory_order_relaxed);
  s.views_rebuilt = views_rebuilt_.load(std::memory_order_relaxed);
  s.views_clean = views_clean_.load(std::memory_order_relaxed);
  s.compactions = compactions_.load(std::memory_order_relaxed);
  s.nodes_reclaimed = nodes_reclaimed_.load(std::memory_order_relaxed);
  return s;
}

SubtreeCacheStats DocumentStore::SessionCacheStats(
    const std::string& name) const {
  const std::shared_ptr<DocState> state = FindState(name);
  if (state == nullptr) return {};
  std::lock_guard<std::mutex> lock(state->mu);
  return state->session->subtree_cache_stats();
}

}  // namespace pxv
