// Write-ahead log for the DocumentStore (serve/document_store.h).
//
// The WAL is a sequence of length-prefixed, CRC32C-framed records, one per
// logical store write:
//
//   frame:   u32 payload_len | u32 masked crc32c(payload) | payload
//   payload: u8 kind | u64 lsn | u32 name_len | name | body
//
//   kPut     body = PDocument::SerializeTo image (full document)
//   kApply   body = encoded DocMutation batch (EncodeMutationBatch)
//   kDrop    body = empty
//   kCompact body = empty (a *forced* compaction; threshold compactions
//            replay deterministically from the batches themselves)
//
// MutationBatch is the natural WAL record (transactional, one uid per
// batch — see ROADMAP): a record is appended only after the batch has been
// staged and validated, so the log never contains a rolled-back batch.
// Records carry a store-wide log sequence number (lsn); checkpoints store
// each document's last applied lsn, and recovery replays only records
// beyond it, which makes replay exact even when a crash interleaves
// checkpointing with concurrent appends.
//
// The log lives in numbered segments (wal-<seq>.log). Appends go only to
// the newest segment; a checkpoint rotates to a fresh one and deletes the
// older segments once the checkpoint file is durable. Reading stops at the
// first torn or corrupt frame of a segment: a trailing partial frame is
// the expected signature of a crash mid-append and is dropped without
// touching any earlier record.
//
// Fsync policy (DocumentStoreOptions::fsync):
//   kAlways — write + fsync after every record: an acknowledged batch
//             survives any crash.
//   kBatch  — group commit: frames accumulate in a user-space buffer and
//             hit the kernel (one write + one fsync) every sync_every
//             records and at rotation/close. The write path costs a
//             memcpy; the loss window is the documented one — up to
//             sync_every acknowledged records on a process OR machine
//             crash (under kBatch an ack never promised durability, so
//             buffering in user space instead of the page cache does not
//             change the contract, only the latency).
//   kNone   — never fsync: frames buffer in user space and are written
//             once the buffer fills or the segment closes; crash loss is
//             unbounded, replay still recovers a consistent prefix.

#ifndef PXV_SERVE_WAL_H_
#define PXV_SERVE_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "serve/io_env.h"
#include "util/status.h"

namespace pxv {

enum class FsyncPolicy { kAlways, kBatch, kNone };

const char* FsyncPolicyName(FsyncPolicy policy);

enum class WalRecordKind : uint8_t {
  kPut = 1,
  kApply = 2,
  kDrop = 3,
  kCompact = 4,
};

const char* WalRecordKindName(WalRecordKind kind);

struct WalRecord {
  WalRecordKind kind = WalRecordKind::kApply;
  uint64_t lsn = 0;
  std::string doc;      ///< Document name the record targets.
  std::string body;     ///< Kind-specific bytes (see header comment).
  uint64_t offset = 0;  ///< Filled by ReadWalSegment: frame start offset.
};

/// Encodes one record as a complete frame (length + masked CRC + payload).
std::string EncodeWalRecord(const WalRecord& record);

/// Appends the frame to `out` in place — the write path's allocation-free
/// variant (frames go straight into the group-commit buffer).
void EncodeWalRecordTo(const WalRecord& record, std::string* out);

struct WalReadResult {
  std::vector<WalRecord> records;
  /// Bytes of the segment covered by valid frames (offset of the first
  /// torn/corrupt frame, or the file size when the segment is clean).
  uint64_t valid_bytes = 0;
  /// 1 when reading stopped at a torn or corrupt frame (everything from
  /// `valid_bytes` on was dropped), else 0.
  int torn_tail_dropped = 0;
};

/// Decodes a whole segment image. Never fails: malformed input just ends
/// the valid prefix.
WalReadResult DecodeWalSegment(std::string_view bytes);

/// Reads + decodes one segment file.
StatusOr<WalReadResult> ReadWalSegment(IoEnv* env, const std::string& path);

/// Append handle over the newest segment.
class WalWriter {
 public:
  /// Opens `path` for appending. `sync_every` gates kBatch amortization.
  static StatusOr<std::unique_ptr<WalWriter>> Open(IoEnv* env,
                                                   const std::string& path,
                                                   FsyncPolicy policy,
                                                   int sync_every);

  /// Appends one record frame; writes/fsyncs per policy (group commit —
  /// see the header comment). On error the writer is poisoned (every
  /// later Append fails) — the store reacts by entering read-only mode.
  Status Append(const WalRecord& record);

  /// Flushes the buffer and fsyncs everything appended so far (the
  /// checkpoint barrier).
  Status Sync();

  /// Writes the buffered frames to the file without fsyncing. Poison on
  /// error. The background flusher calls this (under the store's WAL
  /// lock) before fsyncing the segment through an independent descriptor
  /// (IoEnv::SyncFile).
  Status Flush();

  /// Credits a background fsync: the first `upto_records` appended
  /// records are durable (their frames were flushed to the file before
  /// the fsync started), which defers the inline kBatch sync_every
  /// barrier accordingly.
  void NoteSynced(int64_t upto_records);

  /// Sync + close. The destructor closes without syncing.
  Status Close();

  int64_t appended_bytes() const { return appended_bytes_; }
  int64_t appended_records() const { return appended_records_; }
  /// Records appended but not yet covered by a successful fsync.
  int64_t unsynced_records() const {
    return appended_records_ - synced_records_;
  }

 private:
  WalWriter(std::unique_ptr<WritableFile> file, FsyncPolicy policy,
            int sync_every)
      : file_(std::move(file)), policy_(policy), sync_every_(sync_every) {}

  std::unique_ptr<WritableFile> file_;
  FsyncPolicy policy_;
  int sync_every_;
  int64_t synced_records_ = 0;
  int64_t appended_bytes_ = 0;
  int64_t appended_records_ = 0;
  bool poisoned_ = false;
  std::string buffer_;  ///< Complete frames not yet written to the file.
};

// ---------------------------------------------------- directory layout ----

/// "wal-<seq>.log" / "ckpt-<seq>" names inside a durable directory.
std::string WalSegmentFileName(uint64_t seq);
std::string CheckpointFileName(uint64_t seq);

/// Parses a durable-directory file name; returns true and fills `seq` when
/// `name` is a WAL segment / checkpoint respectively.
bool ParseWalSegmentFileName(const std::string& name, uint64_t* seq);
bool ParseCheckpointFileName(const std::string& name, uint64_t* seq);

}  // namespace pxv

#endif  // PXV_SERVE_WAL_H_
