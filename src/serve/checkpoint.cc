#include "serve/checkpoint.h"

#include "serve/wal.h"
#include "util/codec.h"
#include "util/crc32c.h"

namespace pxv {

namespace {
constexpr char kMagic[4] = {'P', 'X', 'C', 'K'};
constexpr uint8_t kFormat = 1;
}  // namespace

std::string EncodeCheckpoint(const CheckpointData& data) {
  std::string out(kMagic, sizeof(kMagic));
  PutU8(&out, kFormat);
  PutU64(&out, data.wal_seq);
  PutU32(&out, static_cast<uint32_t>(data.docs.size()));
  for (const CheckpointDoc& doc : data.docs) {
    PutBytes(&out, doc.name);
    PutU64(&out, doc.last_lsn);
    PutBytes(&out, doc.doc_image);
  }
  const uint32_t crc =
      Crc32c(std::string_view(out).substr(sizeof(kMagic)));
  PutU32(&out, Crc32cMask(crc));
  return out;
}

StatusOr<CheckpointData> DecodeCheckpoint(std::string_view bytes) {
  const auto corrupt = [](const char* what) {
    return Status::Error(std::string("corrupt checkpoint: ") + what);
  };
  if (bytes.size() < sizeof(kMagic) + 4 ||
      std::string_view(bytes.data(), sizeof(kMagic)) !=
          std::string_view(kMagic, sizeof(kMagic))) {
    return corrupt("bad magic");
  }
  const std::string_view checked =
      bytes.substr(sizeof(kMagic), bytes.size() - sizeof(kMagic) - 4);
  {
    ByteReader tail(bytes.substr(bytes.size() - 4));
    if (Crc32c(checked) != Crc32cUnmask(tail.GetU32())) {
      return corrupt("checksum mismatch");
    }
  }
  ByteReader in(checked);
  if (in.GetU8() != kFormat) return corrupt("unknown format version");
  CheckpointData data;
  data.wal_seq = in.GetU64();
  const uint32_t doc_count = in.GetU32();
  if (doc_count > in.remaining() / 16 + 1) return corrupt("doc count");
  data.docs.reserve(doc_count);
  for (uint32_t i = 0; i < doc_count && in.ok(); ++i) {
    CheckpointDoc doc;
    doc.name = std::string(in.GetBytes());
    doc.last_lsn = in.GetU64();
    doc.doc_image = std::string(in.GetBytes());
    data.docs.push_back(std::move(doc));
  }
  if (!in.ok() || !in.AtEnd()) return corrupt("truncated");
  return data;
}

Status WriteCheckpointFile(IoEnv* env, const std::string& dir, uint64_t seq,
                           const CheckpointData& data) {
  const std::string final_path = dir + "/" + CheckpointFileName(seq);
  const std::string tmp_path = final_path + ".tmp";
  {
    auto file = env->OpenForAppend(tmp_path);
    if (!file.ok()) return file.status();
    if (Status s = (*file)->Append(EncodeCheckpoint(data)); !s.ok()) return s;
    if (Status s = (*file)->Sync(); !s.ok()) return s;
    if (Status s = (*file)->Close(); !s.ok()) return s;
  }
  if (Status s = env->Rename(tmp_path, final_path); !s.ok()) return s;
  return env->SyncDir(dir);
}

StatusOr<CheckpointData> ReadCheckpointFile(IoEnv* env,
                                            const std::string& path) {
  auto bytes = env->ReadFile(path);
  if (!bytes.ok()) return bytes.status();
  return DecodeCheckpoint(*bytes);
}

}  // namespace pxv
