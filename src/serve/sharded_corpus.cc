#include "serve/sharded_corpus.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "serve/io_env.h"
#include "util/check.h"
#include "xml/canonical.h"

namespace pxv {

namespace {

// CanonicalHash64 is FNV-1a, which clusters badly on short, similar keys
// (consecutive "doc-<i>" names differ only in low bits, and every ring
// point of one shard lands in a narrow band — shards can end up owning no
// arc at all). A splitmix64 finalizer spreads both ring points and keys
// uniformly over the full 64-bit circle.
uint64_t RingHash(std::string_view key) {
  uint64_t x = CanonicalHash64(key) + 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

CorpusRouter::CorpusRouter(int shards, int replicas) : shards_(shards) {
  PXV_CHECK(shards >= 1);
  PXV_CHECK(replicas >= 1);
  ring_.reserve(size_t(shards) * size_t(replicas));
  for (int s = 0; s < shards; ++s) {
    for (int r = 0; r < replicas; ++r) {
      const std::string point =
          "shard-" + std::to_string(s) + "#" + std::to_string(r);
      ring_.emplace_back(RingHash(point), s);
    }
  }
  // Hash ties (vanishingly rare) break on shard id so the ring is a pure
  // function of (shards, replicas) — every process routes identically.
  std::sort(ring_.begin(), ring_.end());
}

int CorpusRouter::Route(std::string_view name) const {
  const uint64_t h = RingHash(name);
  // First ring point clockwise of the key, wrapping past the top.
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), h,
      [](const std::pair<uint64_t, int>& p, uint64_t key) {
        return p.first < key;
      });
  if (it == ring_.end()) it = ring_.begin();
  return it->second;
}

ShardedCorpus::ShardedCorpus(ShardedCorpusOptions options,
                             std::shared_ptr<ViewCatalog> catalog,
                             bool durable)
    : options_(std::move(options)),
      catalog_(catalog != nullptr
                   ? std::move(catalog)
                   : std::make_shared<ViewCatalog>(
                         options_.server.plan_cache_capacity)),
      router_(options_.shards, options_.router_replicas) {
  (void)durable;
  shards_.resize(size_t(options_.shards));
  for (Shard& shard : shards_) {
    shard.server = std::make_unique<ViewServer>(catalog_, options_.server);
  }
}

ShardedCorpus::ShardedCorpus(ShardedCorpusOptions options,
                             std::shared_ptr<ViewCatalog> catalog)
    : ShardedCorpus(std::move(options), std::move(catalog), false) {
  PXV_CHECK(options_.store.durable_dir.empty())
      << "durable corpora are created via ShardedCorpus::Open";
  for (Shard& shard : shards_) {
    shard.store =
        std::make_unique<DocumentStore>(shard.server.get(), options_.store);
  }
}

StatusOr<std::unique_ptr<ShardedCorpus>> ShardedCorpus::Open(
    ShardedCorpusOptions options, std::shared_ptr<ViewCatalog> catalog) {
  if (options.store.durable_dir.empty()) {
    return Status::Error(
        "ShardedCorpus::Open requires a corpus root (store.durable_dir)");
  }
  IoEnv* env =
      options.store.io_env != nullptr ? options.store.io_env : IoEnv::Real();
  if (Status s = env->CreateDir(options.store.durable_dir); !s.ok()) return s;
  std::unique_ptr<ShardedCorpus> corpus(
      new ShardedCorpus(std::move(options), std::move(catalog), true));
  ShardedCorpus* c = corpus.get();
  const int n = c->shard_count();
  // Independent directories, independent logs: recover every shard in
  // parallel. A torn tail or corrupt checkpoint in one shard surfaces as
  // that shard's error without delaying the others' recovery.
  std::vector<Status> errors(static_cast<size_t>(n));
  std::vector<std::unique_ptr<DocumentStore>> stores(static_cast<size_t>(n));
  std::vector<std::thread> threads;
  threads.reserve(size_t(n));
  for (int i = 0; i < n; ++i) {
    threads.emplace_back([c, i, &errors, &stores] {
      DocumentStoreOptions shard_options = c->options_.store;
      shard_options.durable_dir += "/shard-" + std::to_string(i);
      StatusOr<std::unique_ptr<DocumentStore>> opened = DocumentStore::Open(
          c->shards_[size_t(i)].server.get(), std::move(shard_options));
      if (opened.ok()) {
        stores[size_t(i)] = std::move(*opened);
      } else {
        errors[size_t(i)] = opened.status();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int i = 0; i < n; ++i) {
    if (!errors[size_t(i)].ok()) {
      return Status::Error("shard " + std::to_string(i) + ": " +
                           errors[size_t(i)].message());
    }
  }
  for (int i = 0; i < n; ++i) {
    c->shards_[size_t(i)].store = std::move(stores[size_t(i)]);
  }
  return std::move(corpus);
}

Status ShardedCorpus::Put(const std::string& name, PDocument doc) {
  return owner(name).Put(name, std::move(doc));
}

Status ShardedCorpus::Drop(const std::string& name) {
  return owner(name).Drop(name);
}

StatusOr<uint64_t> ShardedCorpus::Apply(const std::string& name,
                                        const std::vector<DocMutation>& batch) {
  return owner(name).Apply(name, batch);
}

Status ShardedCorpus::MaterializeIncremental(const std::string& name) {
  return owner(name).MaterializeIncremental(name);
}

StatusOr<int> ShardedCorpus::Compact(const std::string& name) {
  return owner(name).Compact(name);
}

std::optional<std::vector<PidProb>> ShardedCorpus::Answer(
    const std::string& name, const Pattern& q) {
  return owner(name).Answer(name, q);
}

std::vector<std::optional<std::vector<PidProb>>> ShardedCorpus::AnswerAll(
    const std::string& name, const std::vector<Pattern>& queries) {
  return owner(name).AnswerAll(name, queries);
}

std::optional<std::vector<std::vector<PidProb>>> ShardedCorpus::AnswerAllCached(
    const std::string& name) {
  return owner(name).AnswerAllCached(name);
}

StatusOr<std::vector<PidProb>> ShardedCorpus::WhatIf(
    const std::string& name, const Pattern& q,
    const std::vector<WhatIfChange>& changes) {
  return owner(name).WhatIf(name, q, changes);
}

const PDocument* ShardedCorpus::Find(const std::string& name) const {
  return owner(name).Find(name);
}

std::vector<std::string> ShardedCorpus::Names() const {
  std::vector<std::string> names;
  for (const Shard& shard : shards_) {
    std::vector<std::string> mine = shard.store->Names();
    names.insert(names.end(), std::make_move_iterator(mine.begin()),
                 std::make_move_iterator(mine.end()));
  }
  std::sort(names.begin(), names.end());
  return names;
}

std::vector<ShardedCorpus::DocAnswers> ShardedCorpus::AnswerAllDocuments(
    const std::vector<Pattern>& queries) {
  fanouts_.fetch_add(1, std::memory_order_relaxed);
  const int nq = int(queries.size());
  // Pin phase: one snapshot per document, all up front, before any
  // evaluation starts. Every answer in this fan-out reads its document's
  // pre-fan-out extensions even while writers keep committing on any shard
  // — the store's per-document snapshot isolation is the consistency unit.
  struct Pinned {
    std::string doc;
    std::shared_ptr<const SharedExtensions> snap;
  };
  std::vector<std::vector<Pinned>> pinned(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    for (std::string& name : shards_[s].store->Names()) {
      std::shared_ptr<const SharedExtensions> snap =
          shards_[s].store->Snapshot(name);
      if (snap == nullptr) continue;  // Dropped since Names().
      pinned[s].push_back({std::move(name), std::move(snap)});
    }
  }
  // Execute phase: one fan-out thread per non-empty shard; inside, the
  // shard's own pool shards the document × query grid. The pools are
  // independent, so shards genuinely run concurrently; the shared catalog
  // means at most one shard compiles any given query shape.
  std::vector<std::vector<DocAnswers>> results(shards_.size());
  std::vector<std::thread> threads;
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (pinned[s].empty()) continue;
    threads.emplace_back([this, s, nq, &queries, &pinned, &results] {
      ViewServer& server = *shards_[s].server;
      std::vector<DocAnswers>& out = results[s];
      out.resize(pinned[s].size());
      for (size_t d = 0; d < pinned[s].size(); ++d) {
        out[d].shard = int(s);
        out[d].doc = pinned[s][d].doc;
        out[d].answers.resize(size_t(nq));
      }
      server.pool().ParallelFor(int(pinned[s].size()) * nq, [&](int i) {
        const size_t d = size_t(i / nq);
        const size_t q = size_t(i % nq);
        out[d].answers[q] = server.AnswerWith(queries[q], *pinned[s][d].snap);
      });
    });
  }
  for (std::thread& t : threads) t.join();
  // Merge phase: concatenate in shard order. Names() iterates each store's
  // sorted map, so (shard, document-name) order falls out deterministic,
  // independent of thread timing.
  std::vector<DocAnswers> merged;
  size_t total = 0;
  for (const std::vector<DocAnswers>& r : results) total += r.size();
  merged.reserve(total);
  for (std::vector<DocAnswers>& r : results) {
    merged.insert(merged.end(), std::make_move_iterator(r.begin()),
                  std::make_move_iterator(r.end()));
  }
  return merged;
}

Status ShardedCorpus::Checkpoint() {
  Status first = Status::Ok();
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (Status status = shards_[s].store->Checkpoint();
        !status.ok() && first.ok()) {
      first = Status::Error("shard " + std::to_string(s) + ": " +
                            status.message());
    }
  }
  return first;
}

bool ShardedCorpus::read_only() const {
  for (const Shard& shard : shards_) {
    if (shard.store->read_only()) return true;
  }
  return false;
}

namespace {

void AddStoreStats(DocumentStoreStats* sum, const DocumentStoreStats& s) {
  sum->batches += s.batches;
  sum->mutations += s.mutations;
  sum->rejected_batches += s.rejected_batches;
  sum->materializations += s.materializations;
  sum->views_patched += s.views_patched;
  sum->views_rebuilt += s.views_rebuilt;
  sum->views_clean += s.views_clean;
  sum->compactions += s.compactions;
  sum->nodes_reclaimed += s.nodes_reclaimed;
  sum->wal_appends += s.wal_appends;
  sum->wal_bytes += s.wal_bytes;
  sum->checkpoints += s.checkpoints;
  sum->recoveries += s.recoveries;
  sum->torn_records_dropped += s.torn_records_dropped;
  sum->read_only += s.read_only;
  sum->cached_refreshes += s.cached_refreshes;
}

}  // namespace

ShardedCorpusStats ShardedCorpus::stats() const {
  ShardedCorpusStats s;
  for (const Shard& shard : shards_) {
    AddStoreStats(&s.store, shard.store->stats());
    s.documents += int64_t(shard.store->Names().size());
    const ViewServerStats server = shard.server->stats();
    s.queries += server.queries;
    s.unanswerable += server.unanswerable;
    s.whatifs += server.whatifs;
  }
  s.fanouts = fanouts_.load(std::memory_order_relaxed);
  // ONE shared cache across the shards: counted once, not summed N times
  // (every shard's ViewServerStats reads the same totals).
  const PlanCache& cache = catalog_->plan_cache();
  s.plan_cache_hits = cache.hits();
  s.plan_cache_misses = cache.misses();
  s.plan_cache_size = int64_t(cache.size());
  return s;
}

std::vector<ShardedCorpus::ShardInfo> ShardedCorpus::ShardInfos() const {
  std::vector<ShardInfo> infos;
  infos.reserve(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    ShardInfo info;
    info.shard = int(s);
    info.docs = shards_[s].store->Names();
    info.store = shards_[s].store->stats();
    info.queries = shards_[s].server->stats().queries;
    infos.push_back(std::move(info));
  }
  return infos;
}

}  // namespace pxv
