// ViewServer — the serving layer the paper's workload implies: materialize
// view extensions once, then answer many queries from them. It owns
//   * a Rewriter (the view registry + §4/§5 rewriting searches),
//   * a PlanCache keyed by the query's canonical pattern string (the
//     64-bit Fingerprint rides along in the plan), so repeated and
//     isomorphic queries skip the exponential TPrewrite/TPIrewrite search,
//   * a ThreadPool that fans view materialization out (one EvalSession per
//     worker shard) and batches AnswerAll across queries.
//
// Concurrency contract: register views (AddView) before serving. After
// that, Materialize / Answer / AnswerAll may be called freely from any
// number of threads — extensions are swapped atomically as an immutable
// snapshot, so in-flight answers keep reading the extensions they started
// with. Do not call the serving methods from inside the server's own pool
// tasks (see util/thread_pool.h).

#ifndef PXV_SERVE_VIEW_SERVER_H_
#define PXV_SERVE_VIEW_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "prob/eval_session.h"
#include "pxml/pdocument.h"
#include "pxml/view_extension.h"
#include "rewrite/planner.h"
#include "rewrite/rewriter.h"
#include "serve/plan_cache.h"
#include "util/thread_pool.h"

namespace pxv {

struct ViewServerOptions {
  /// Worker threads; ≤ 0 picks ThreadPool::DefaultThreads().
  int threads = 0;
  /// Compiled plans kept before LRU eviction.
  size_t plan_cache_capacity = 1024;
  /// Passed through to BuildViewExtension during materialization.
  ViewExtensionOptions extension_options;
};

/// Monotonic serving counters (one consistent snapshot per stats() call).
struct ViewServerStats {
  int64_t queries = 0;           ///< Answer calls (AnswerAll counts each).
  int64_t plan_cache_hits = 0;
  int64_t plan_cache_misses = 0;
  int64_t unanswerable = 0;      ///< Answers that returned nullopt.
  int64_t materializations = 0;  ///< Materialize calls.
  int64_t cached_queries = 0;    ///< Standing queries registered.
  int64_t cached_batches = 0;    ///< AnswerAllCached calls.
};

class ViewServer {
 public:
  explicit ViewServer(ViewServerOptions options = {});

  /// Registers a view. Must happen before Materialize/Answer (the plan
  /// cache would otherwise serve plans compiled against the old registry).
  void AddView(std::string name, Pattern def);

  /// Registers a standing (cached) query for the shared-circuit batch path
  /// (AnswerAllCached). Like AddView, registration must happen before
  /// serving; duplicate canonical forms are kept once.
  void RegisterCachedQuery(const Pattern& q);

  /// The standing queries, in registration order.
  const std::vector<Pattern>& cached_queries() const {
    return cached_queries_;
  }

  const Rewriter& rewriter() const { return rewriter_; }
  ThreadPool& pool() { return pool_; }
  PlanCache& plan_cache() { return cache_; }

  /// Materializes every registered view over `pd` in parallel across the
  /// pool and publishes the result as the current extension snapshot.
  void Materialize(const PDocument& pd);

  /// Publishes caller-built extensions (e.g. loaded from storage, or a
  /// deliberately partial set) as the current snapshot.
  void SetExtensions(ViewExtensions exts);

  /// Current extension snapshot; empty (but non-null) before the first
  /// Materialize/SetExtensions.
  std::shared_ptr<const ViewExtensions> extensions() const;

  /// The compiled plan for q: plan-cache lookup by canonical fingerprint,
  /// compiling (TPrewrite + TPIrewrite) only on a miss.
  std::shared_ptr<const QueryPlan> PlanFor(const Pattern& q);

  /// Answers q from the current extension snapshot via the cheapest
  /// executable plan candidate. nullopt when q has no rewriting or no
  /// candidate is executable over the snapshot.
  std::optional<std::vector<PidProb>> Answer(const Pattern& q);

  /// Answers q from a caller-provided extension set instead of the server's
  /// own snapshot, still sharing the plan cache and stats. This is how the
  /// DocumentStore serves per-document snapshots through one server — the
  /// same concurrency contract applies (the caller keeps `exts` alive and
  /// immutable for the duration of the call).
  std::optional<std::vector<PidProb>> AnswerWith(const Pattern& q,
                                                 const ExtensionSet& exts);

  /// Batched serving: answers every query, sharing the plan cache and the
  /// extension snapshot, fanning the queries out across the pool. Result i
  /// corresponds to queries[i].
  std::vector<std::optional<std::vector<PidProb>>> AnswerAll(
      const std::vector<Pattern>& queries);

  /// Answers every registered standing query directly over `session`'s
  /// document (no view rewriting), pid-keyed; result i corresponds to
  /// cached_queries()[i]. With a BackendKind::kCircuit session each query
  /// registers on the session's ONE shared lineage circuit, so a document
  /// delta costs a single merged dirty-cone propagation for the whole set
  /// — the standing-query batch path DocumentStore::Apply drives. The
  /// caller owns the session (one per document per thread, per the
  /// EvalSession contract).
  std::vector<std::vector<PidProb>> AnswerAllCached(EvalSession* session);

  ViewServerStats stats() const;

 private:
  std::optional<std::vector<PidProb>> AnswerOne(
      const Pattern& q, const ExtensionSet& exts);

  ViewServerOptions options_;
  Rewriter rewriter_;
  ThreadPool pool_;
  PlanCache cache_;
  std::vector<Pattern> cached_queries_;  // Registered before serving.
  std::unordered_set<std::string> cached_keys_;

  mutable std::mutex exts_mu_;
  std::shared_ptr<const ViewExtensions> exts_;

  std::atomic<int64_t> queries_{0};
  std::atomic<int64_t> unanswerable_{0};
  std::atomic<int64_t> materializations_{0};
  std::atomic<int64_t> cached_batches_{0};
};

}  // namespace pxv

#endif  // PXV_SERVE_VIEW_SERVER_H_
