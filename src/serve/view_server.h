// ViewServer — per-shard execution state of the serving stack: a thread
// pool that fans view materialization out (one EvalSession per worker
// shard) and batches AnswerAll across queries, plus the current
// materialized-extension snapshot. The logical half — the view registry,
// the standing-query list and the compiled-plan cache — lives in a
// ViewCatalog (serve/view_catalog.h) that may be SHARED across servers:
// a ShardedCorpus runs one ViewServer per shard over one catalog, so a
// query shape compiles once and executes everywhere. The default
// constructor creates a private catalog, which is the single-store
// configuration every pre-sharding caller gets unchanged.
//
// Concurrency contract: register views (AddView) before serving. After
// that, Materialize / Answer / AnswerAll may be called freely from any
// number of threads — extensions are swapped atomically as an immutable
// snapshot, so in-flight answers keep reading the extensions they started
// with. Do not call the serving methods from inside the server's own pool
// tasks (see util/thread_pool.h).

#ifndef PXV_SERVE_VIEW_SERVER_H_
#define PXV_SERVE_VIEW_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "prob/eval_session.h"
#include "pxml/pdocument.h"
#include "pxml/view_extension.h"
#include "rewrite/planner.h"
#include "rewrite/rewriter.h"
#include "serve/plan_cache.h"
#include "serve/view_catalog.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace pxv {

struct ViewServerOptions {
  /// Worker threads; ≤ 0 picks ThreadPool::DefaultThreads().
  int threads = 0;
  /// Compiled plans kept before LRU eviction (private-catalog ctor only;
  /// a shared catalog brings its own cache).
  size_t plan_cache_capacity = 1024;
  /// Passed through to BuildViewExtension during materialization.
  ViewExtensionOptions extension_options;
};

/// Monotonic serving counters (one consistent snapshot per stats() call).
/// plan_cache_hits/misses read the catalog's cache — shared totals when the
/// catalog is shared across servers.
struct ViewServerStats {
  int64_t queries = 0;           ///< Answer calls (AnswerAll counts each).
  int64_t plan_cache_hits = 0;
  int64_t plan_cache_misses = 0;
  int64_t unanswerable = 0;      ///< Answers that returned nullopt.
  int64_t materializations = 0;  ///< Materialize calls.
  int64_t cached_queries = 0;    ///< Standing queries registered.
  int64_t cached_batches = 0;    ///< AnswerAllCached calls.
  int64_t whatifs = 0;           ///< WhatIf calls.
};

/// One hypothetical probability change for ViewServer::WhatIf, addressed
/// like DocMutation: by persistent id, so it survives compaction remaps.
struct WhatIfChange {
  /// Hypothetical edge probability: the node's probability under its
  /// distributional parent becomes `prob`.
  static WhatIfChange Edge(PersistentId pid, double prob) {
    WhatIfChange c;
    c.target = pid;
    c.prob = prob;
    return c;
  }
  /// Hypothetical exp-distribution slot change: subset `slot` of the exp
  /// node that is child `dist_child_index` of `pid` gets probability
  /// `prob`. The subset structure is untouched — values only.
  static WhatIfChange ExpSlot(PersistentId pid, int dist_child_index,
                              int slot, double prob) {
    WhatIfChange c;
    c.target = pid;
    c.dist_child_index = dist_child_index;
    c.slot = slot;
    c.prob = prob;
    return c;
  }

  PersistentId target = kNullPid;
  int dist_child_index = -1;  ///< < 0 → edge change; ≥ 0 → exp slot change.
  int slot = -1;              ///< Subset index for exp slot changes.
  double prob = 1.0;
};

class ViewServer {
 public:
  /// Single-store form: creates a private catalog.
  explicit ViewServer(ViewServerOptions options = {});

  /// Shard form: executes against a caller-shared catalog (view registry +
  /// plan cache + standing queries). The catalog must be non-null and
  /// follows its own registration-before-serving contract.
  ViewServer(std::shared_ptr<ViewCatalog> catalog, ViewServerOptions options);

  /// The logical catalog this server executes against.
  const std::shared_ptr<ViewCatalog>& catalog() const { return catalog_; }

  /// Registers a view on the catalog. Must happen before Materialize/Answer.
  void AddView(std::string name, Pattern def) {
    catalog_->AddView(std::move(name), std::move(def));
  }

  /// Registers a standing (cached) query for the shared-circuit batch path
  /// (AnswerAllCached). Like AddView, registration must happen before
  /// serving; duplicate canonical forms are kept once.
  void RegisterCachedQuery(const Pattern& q) {
    catalog_->RegisterCachedQuery(q);
  }

  /// The standing queries, in registration order.
  const std::vector<Pattern>& cached_queries() const {
    return catalog_->cached_queries();
  }

  const Rewriter& rewriter() const { return catalog_->rewriter(); }
  ThreadPool& pool() { return pool_; }
  PlanCache& plan_cache() { return catalog_->plan_cache(); }

  /// Materializes every registered view over `pd` in parallel across the
  /// pool and publishes the result as the current extension snapshot.
  void Materialize(const PDocument& pd);

  /// Publishes caller-built extensions (e.g. loaded from storage, or a
  /// deliberately partial set) as the current snapshot.
  void SetExtensions(ViewExtensions exts);

  /// Current extension snapshot; empty (but non-null) before the first
  /// Materialize/SetExtensions.
  std::shared_ptr<const ViewExtensions> extensions() const;

  /// The compiled plan for q — the catalog's shared (registry fingerprint,
  /// query) keyed cache, compiling only on a miss.
  std::shared_ptr<const QueryPlan> PlanFor(const Pattern& q) {
    return catalog_->PlanFor(q);
  }

  /// Answers q from the current extension snapshot via the cheapest
  /// executable plan candidate. nullopt when q has no rewriting or no
  /// candidate is executable over the snapshot.
  std::optional<std::vector<PidProb>> Answer(const Pattern& q);

  /// Answers q from a caller-provided extension set instead of the server's
  /// own snapshot, still sharing the plan cache and stats. This is how the
  /// DocumentStore serves per-document snapshots through one server — the
  /// same concurrency contract applies (the caller keeps `exts` alive and
  /// immutable for the duration of the call).
  std::optional<std::vector<PidProb>> AnswerWith(const Pattern& q,
                                                 const ExtensionSet& exts);

  /// Batched serving: answers every query, sharing the plan cache and the
  /// extension snapshot, fanning the queries out across the pool. Result i
  /// corresponds to queries[i].
  std::vector<std::optional<std::vector<PidProb>>> AnswerAll(
      const std::vector<Pattern>& queries);

  /// Answers every registered standing query directly over `session`'s
  /// document (no view rewriting), pid-keyed; result i corresponds to
  /// cached_queries()[i]. With a BackendKind::kCircuit session each query
  /// registers on the session's ONE shared lineage circuit, so a document
  /// delta costs a single merged dirty-cone propagation for the whole set
  /// — the standing-query batch path DocumentStore::Apply drives. The
  /// caller owns the session (one per document per thread, per the
  /// EvalSession contract).
  std::vector<std::vector<PidProb>> AnswerAllCached(EvalSession* session);

  /// Hypothetical serving: Pr(n ∈ q(P)) for every answer candidate under
  /// the probability overrides in `changes`, WITHOUT committing a mutation
  /// — the document is bitwise untouched afterwards. With a kCircuit
  /// session this is one overlay re-propagation through the shared lineage
  /// circuit (restore included); overrides that flip a recorded guard, or
  /// sessions on other backends, fall back to evaluating a mutated copy —
  /// either way the answers are exactly what Answer would return had the
  /// changes been applied. The caller owns the session (single-threaded,
  /// per the EvalSession contract). Errors on unknown pids, malformed
  /// addresses, or probabilities a real mutation would reject.
  StatusOr<std::vector<PidProb>> WhatIf(EvalSession* session,
                                        const Pattern& q,
                                        const std::vector<WhatIfChange>& changes);

  /// Convenience form over a transient per-call circuit session — the
  /// pxvq route. Repeated what-ifs should hold a session (or go through
  /// DocumentStore::WhatIf, which reuses the standing session).
  StatusOr<std::vector<PidProb>> WhatIf(const PDocument& doc, const Pattern& q,
                                        const std::vector<WhatIfChange>& changes);

  ViewServerStats stats() const;

 private:
  std::optional<std::vector<PidProb>> AnswerOne(
      const Pattern& q, const ExtensionSet& exts);

  ViewServerOptions options_;
  std::shared_ptr<ViewCatalog> catalog_;
  ThreadPool pool_;

  mutable std::mutex exts_mu_;
  std::shared_ptr<const ViewExtensions> exts_;

  std::atomic<int64_t> queries_{0};
  std::atomic<int64_t> unanswerable_{0};
  std::atomic<int64_t> materializations_{0};
  std::atomic<int64_t> cached_batches_{0};
  std::atomic<int64_t> whatifs_{0};
};

}  // namespace pxv

#endif  // PXV_SERVE_VIEW_SERVER_H_
