// Checkpoint files for the DocumentStore: a full snapshot of every stored
// document (complete arena image — pxml/serialize.cc — so edge
// probabilities, exp distributions, sibling order and version stamps all
// survive bit for bit), together with each document's last applied WAL lsn.
//
// File layout:
//
//   magic "PXCK" | u8 format | u64 wal_seq | u32 doc_count
//   doc_count × (u32 name_len | name | u64 last_lsn | u32 len | doc image)
//   u32 masked crc32c(everything after the magic)
//
// A checkpoint is written to `<name>.tmp`, fsynced, renamed into place and
// the directory fsynced — readers only ever see absent-or-complete files,
// and the CRC rejects bit rot. `wal_seq` names the segment the log was
// rotated to when the checkpoint began: every record in older segments is
// covered (its document was serialized at a later lsn), so those segments
// are deleted once the checkpoint is durable. Records appended to newer
// segments while the checkpoint was being written are handled by the
// per-document lsn filter at replay.

#ifndef PXV_SERVE_CHECKPOINT_H_
#define PXV_SERVE_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "serve/io_env.h"
#include "util/status.h"

namespace pxv {

struct CheckpointDoc {
  std::string name;
  uint64_t last_lsn = 0;    ///< Last WAL record applied to this document.
  std::string doc_image;    ///< PDocument::SerializeTo bytes.
};

struct CheckpointData {
  uint64_t wal_seq = 0;     ///< Segment the WAL rotated to at ckpt start.
  std::vector<CheckpointDoc> docs;
};

std::string EncodeCheckpoint(const CheckpointData& data);

/// Rejects truncation and bit rot via the trailing CRC.
StatusOr<CheckpointData> DecodeCheckpoint(std::string_view bytes);

/// Durably writes `data` as `dir/CheckpointFileName(seq)` via the
/// tmp → fsync → rename → dir-fsync dance.
Status WriteCheckpointFile(IoEnv* env, const std::string& dir, uint64_t seq,
                           const CheckpointData& data);

/// Reads and decodes one checkpoint file.
StatusOr<CheckpointData> ReadCheckpointFile(IoEnv* env,
                                            const std::string& path);

}  // namespace pxv

#endif  // PXV_SERVE_CHECKPOINT_H_
