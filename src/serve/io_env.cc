#include "serve/io_env.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace pxv {

namespace {

Status Errno(const std::string& what, const std::string& path) {
  return Status::Error(what + " " + path + ": " + std::strerror(errno));
}

class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}
  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(std::string_view data) override {
    const char* p = data.data();
    size_t n = data.size();
    while (n > 0) {
      const ssize_t w = ::write(fd_, p, n);
      if (w < 0) {
        if (errno == EINTR) continue;
        return Errno("write", path_);
      }
      p += w;
      n -= static_cast<size_t>(w);
    }
    return Status::Ok();
  }

  Status Sync() override {
    return ::fsync(fd_) == 0 ? Status::Ok() : Errno("fsync", path_);
  }

  Status Close() override {
    if (fd_ < 0) return Status::Ok();
    const int rc = ::close(fd_);
    fd_ = -1;
    return rc == 0 ? Status::Ok() : Errno("close", path_);
  }

 private:
  int fd_;
  std::string path_;
};

class RealIoEnv : public IoEnv {
 public:
  StatusOr<std::unique_ptr<WritableFile>> OpenForAppend(
      const std::string& path) override {
    const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd < 0) return Errno("open", path);
    return std::unique_ptr<WritableFile>(new PosixWritableFile(fd, path));
  }

  StatusOr<std::string> ReadFile(const std::string& path) override {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return Errno("open", path);
    std::string out;
    char buf[1 << 16];
    for (;;) {
      const ssize_t r = ::read(fd, buf, sizeof(buf));
      if (r < 0) {
        if (errno == EINTR) continue;
        const Status s = Errno("read", path);
        ::close(fd);
        return s;
      }
      if (r == 0) break;
      out.append(buf, static_cast<size_t>(r));
    }
    ::close(fd);
    return out;
  }

  Status Rename(const std::string& from, const std::string& to) override {
    return ::rename(from.c_str(), to.c_str()) == 0 ? Status::Ok()
                                                   : Errno("rename", from);
  }

  Status RemoveFile(const std::string& path) override {
    return ::unlink(path.c_str()) == 0 ? Status::Ok() : Errno("unlink", path);
  }

  Status CreateDir(const std::string& dir) override {
    if (::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST) return Status::Ok();
    return Errno("mkdir", dir);
  }

  Status SyncDir(const std::string& dir) override {
    const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0) return Errno("open dir", dir);
    const int rc = ::fsync(fd);
    ::close(fd);
    return rc == 0 ? Status::Ok() : Errno("fsync dir", dir);
  }

  Status SyncFile(const std::string& path) override {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return Errno("open", path);
    const int rc = ::fdatasync(fd);
    ::close(fd);
    return rc == 0 ? Status::Ok() : Errno("fdatasync", path);
  }

  StatusOr<std::vector<std::string>> ListDir(const std::string& dir) override {
    DIR* d = ::opendir(dir.c_str());
    if (d == nullptr) return Errno("opendir", dir);
    std::vector<std::string> names;
    while (struct dirent* e = ::readdir(d)) {
      const std::string name = e->d_name;
      if (name != "." && name != "..") names.push_back(name);
    }
    ::closedir(d);
    return names;
  }

  bool FileExists(const std::string& path) override {
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
  }
};

Status DeadEnvError() {
  return Status::Error("injected fault: environment is dead");
}

}  // namespace

IoEnv* IoEnv::Real() {
  static RealIoEnv env;
  return &env;
}

// ------------------------------------------------------- fault injection ----

namespace {

// Flips the low bit of one deterministic byte — enough to break the CRC
// while keeping the record length plausible (the harder corruption to
// detect than a torn tail).
void CorruptOneByte(std::string* data) {
  if (data->empty()) return;
  (*data)[data->size() / 2] ^= 0x01;
}

}  // namespace

class FaultingWritableFile : public WritableFile {
 public:
  FaultingWritableFile(FaultInjectingIoEnv* env, std::string path,
                       std::unique_ptr<WritableFile> base)
      : env_(env), path_(std::move(path)), base_(std::move(base)) {}

  Status Append(std::string_view data) override {
    std::string payload(data);
    {
      std::lock_guard<std::mutex> lock(env_->mu_);
      if (env_->Dead()) return DeadEnvError();
      if (env_->NextOpFaults()) {
        switch (env_->plan_.mode) {
          case FaultPlan::Mode::kFail:
            return Status::Error("injected fault: append failed");
          case FaultPlan::Mode::kShortWrite: {
            // Half the bytes reach the file, then the op errors — a torn
            // record for recovery to drop.
            payload.resize(payload.size() / 2);
            const Status s = base_->Append(payload);
            env_->appended_bytes_[path_] +=
                s.ok() ? static_cast<int64_t>(payload.size()) : 0;
            return Status::Error("injected fault: short write");
          }
          case FaultPlan::Mode::kCorrupt:
            CorruptOneByte(&payload);
            break;  // Falls through to a "successful" corrupted write.
        }
      }
      const Status s = base_->Append(payload);
      if (s.ok()) {
        env_->appended_bytes_[path_] += static_cast<int64_t>(payload.size());
      }
      return s;
    }
  }

  Status Sync() override {
    std::lock_guard<std::mutex> lock(env_->mu_);
    if (env_->Dead()) return DeadEnvError();
    if (env_->NextOpFaults() && env_->plan_.mode != FaultPlan::Mode::kCorrupt) {
      return Status::Error("injected fault: fsync failed");
    }
    const Status s = base_->Sync();
    if (s.ok()) env_->synced_bytes_[path_] = env_->appended_bytes_[path_];
    return s;
  }

  Status Close() override { return base_->Close(); }

 private:
  FaultInjectingIoEnv* env_;
  std::string path_;
  std::unique_ptr<WritableFile> base_;
};

FaultInjectingIoEnv::FaultInjectingIoEnv(IoEnv* base, FaultPlan plan)
    : base_(base), plan_(plan) {}

FaultInjectingIoEnv::~FaultInjectingIoEnv() = default;

bool FaultInjectingIoEnv::Dead() const {
  return fired_ && plan_.crash && plan_.mode != FaultPlan::Mode::kCorrupt;
}

bool FaultInjectingIoEnv::NextOpFaults() {
  const bool fires = ops_ == plan_.fail_at;
  ++ops_;
  if (fires) fired_ = true;
  return fires;
}

StatusOr<std::unique_ptr<WritableFile>> FaultInjectingIoEnv::OpenForAppend(
    const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (Dead()) return DeadEnvError();
    if (NextOpFaults() && plan_.mode != FaultPlan::Mode::kCorrupt) {
      return Status::Error("injected fault: open failed");
    }
    // Track from the file's current length: reopening an existing file
    // (e.g. recovery appending to a fresh segment after a crash) must not
    // reset the durable watermark of files from an earlier incarnation.
    if (appended_bytes_.find(path) == appended_bytes_.end()) {
      const auto existing = base_->ReadFile(path);
      const int64_t len =
          existing.ok() ? static_cast<int64_t>(existing.value().size()) : 0;
      appended_bytes_[path] = len;
      synced_bytes_[path] = len;
    }
  }
  auto file = base_->OpenForAppend(path);
  if (!file.ok()) return file.status();
  return std::unique_ptr<WritableFile>(
      new FaultingWritableFile(this, path, std::move(file.value())));
}

StatusOr<std::string> FaultInjectingIoEnv::ReadFile(const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (Dead()) return DeadEnvError();
  }
  return base_->ReadFile(path);
}

Status FaultInjectingIoEnv::Rename(const std::string& from,
                                   const std::string& to) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (Dead()) return DeadEnvError();
    if (NextOpFaults() && plan_.mode != FaultPlan::Mode::kCorrupt) {
      return Status::Error("injected fault: rename failed");
    }
    // The rename target inherits the source's durability bookkeeping.
    const auto it = appended_bytes_.find(from);
    if (it != appended_bytes_.end()) {
      appended_bytes_[to] = it->second;
      synced_bytes_[to] = synced_bytes_[from];
      appended_bytes_.erase(from);
      synced_bytes_.erase(from);
    }
  }
  return base_->Rename(from, to);
}

Status FaultInjectingIoEnv::RemoveFile(const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (Dead()) return DeadEnvError();
    if (NextOpFaults() && plan_.mode != FaultPlan::Mode::kCorrupt) {
      return Status::Error("injected fault: remove failed");
    }
    appended_bytes_.erase(path);
    synced_bytes_.erase(path);
  }
  return base_->RemoveFile(path);
}

Status FaultInjectingIoEnv::CreateDir(const std::string& dir) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Dead()) return DeadEnvError();
  if (NextOpFaults() && plan_.mode != FaultPlan::Mode::kCorrupt) {
    return Status::Error("injected fault: mkdir failed");
  }
  return base_->CreateDir(dir);
}

Status FaultInjectingIoEnv::SyncDir(const std::string& dir) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Dead()) return DeadEnvError();
  if (NextOpFaults() && plan_.mode != FaultPlan::Mode::kCorrupt) {
    return Status::Error("injected fault: dir fsync failed");
  }
  return base_->SyncDir(dir);
}

Status FaultInjectingIoEnv::SyncFile(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Dead()) return DeadEnvError();
  if (NextOpFaults() && plan_.mode != FaultPlan::Mode::kCorrupt) {
    return Status::Error("injected fault: fsync failed");
  }
  const Status s = base_->SyncFile(path);
  if (s.ok()) {
    // Everything appended through this env so far is now durable.
    const auto it = appended_bytes_.find(path);
    if (it != appended_bytes_.end()) synced_bytes_[path] = it->second;
  }
  return s;
}

StatusOr<std::vector<std::string>> FaultInjectingIoEnv::ListDir(
    const std::string& dir) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (Dead()) return DeadEnvError();
  }
  return base_->ListDir(dir);
}

bool FaultInjectingIoEnv::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

int64_t FaultInjectingIoEnv::ops() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ops_;
}

bool FaultInjectingIoEnv::fault_fired() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fired_;
}

Status FaultInjectingIoEnv::SimulateCrash() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [path, synced] : synced_bytes_) {
    if (!base_->FileExists(path)) continue;
    if (::truncate(path.c_str(), static_cast<off_t>(synced)) != 0) {
      return Status::Error("truncate " + path + ": " + std::strerror(errno));
    }
  }
  return Status::Ok();
}

}  // namespace pxv
