// ShardedCorpus — the corpus-width scaling layer the ROADMAP's north star
// asks for: N independent (ViewServer, DocumentStore) shards behind a
// consistent-hash router keyed on document name, all executing against ONE
// shared ViewCatalog (view registry + plan cache + standing queries), so a
// query shape compiles once and executes on every shard.
//
// The paper's tractability results are per document, which makes the shard
// the natural unit of everything stateful:
//   * routing     — CorpusRouter maps a document name to its owning shard;
//                   Put/Apply/Compact/Answer run there and nowhere else.
//   * consistency — the store's per-document snapshot isolation is the
//                   consistency unit; the cross-shard AnswerAll fan-out
//                   pins ONE snapshot per document up front, then executes
//                   in parallel on the shards' own pools, so a concurrent
//                   Apply on shard A can never tear what shard B serves.
//   * durability  — each shard owns an independent WAL + checkpoint
//                   directory (<root>/shard-<i>); Open() recovers all of
//                   them in parallel and a torn tail in one shard never
//                   delays or disturbs another.
//   * merging     — fan-out answers are merged deterministically in stable
//                   (shard, document-name) order, independent of thread
//                   timing.
//
// Concurrency contract: register views (AddView / RegisterCachedQuery)
// before serving, as everywhere else. After that every routed method and
// the fan-out may be called freely from any number of threads; per-document
// writes serialize inside the owning shard's store exactly as they do on a
// single DocumentStore.

#ifndef PXV_SERVE_SHARDED_CORPUS_H_
#define PXV_SERVE_SHARDED_CORPUS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "serve/document_store.h"
#include "serve/view_catalog.h"
#include "serve/view_server.h"
#include "util/status.h"

namespace pxv {

/// Consistent-hash ring over shard ids, keyed on document name. Virtual-
/// node replicas smooth the load; routing is a binary search over the ring
/// (first point clockwise of the key's hash). Stable across processes —
/// the ring depends only on (shards, replicas) — and minimally disruptive:
/// changing the shard count remaps only the keys whose arc moved.
class CorpusRouter {
 public:
  explicit CorpusRouter(int shards, int replicas = 64);

  int shards() const { return shards_; }

  /// The shard owning `name`.
  int Route(std::string_view name) const;

 private:
  int shards_;
  /// Ring points sorted by hash: (point hash, shard id).
  std::vector<std::pair<uint64_t, int>> ring_;
};

struct ShardedCorpusOptions {
  /// Shard count. 1 behaves exactly like a single DocumentStore behind a
  /// router (the randomized cross-check in tests relies on that).
  int shards = 1;
  /// Virtual-node replicas per shard on the router ring.
  int router_replicas = 64;
  /// Per-shard execution options (thread pool size, extension options).
  /// Note threads applies PER SHARD — an N-shard corpus on one machine
  /// usually wants threads ≈ cores / N.
  ViewServerOptions server;
  /// Per-shard store options. durable_dir, when non-empty, is the CORPUS
  /// root: shard i persists under <durable_dir>/shard-<i>. Durable corpora
  /// must be created via Open(); the plain constructor rejects a non-empty
  /// durable_dir, mirroring DocumentStore.
  DocumentStoreOptions store;
};

/// Aggregated corpus counters: per-shard stores summed, plus the shared
/// plan cache counted once (it is one cache, not N).
struct ShardedCorpusStats {
  DocumentStoreStats store;        ///< Summed across shards.
  int64_t documents = 0;           ///< Stored documents across shards.
  int64_t queries = 0;             ///< Summed ViewServer answer calls.
  int64_t unanswerable = 0;
  int64_t whatifs = 0;
  int64_t fanouts = 0;             ///< Cross-shard AnswerAll calls.
  int64_t plan_cache_hits = 0;     ///< Shared catalog, counted once.
  int64_t plan_cache_misses = 0;
  int64_t plan_cache_size = 0;
};

class ShardedCorpus {
 public:
  /// One document's fan-out result: answers[i] corresponds to queries[i].
  struct DocAnswers {
    int shard = 0;
    std::string doc;
    std::vector<std::optional<std::vector<PidProb>>> answers;
  };

  /// Per-shard introspection (pxvq shards).
  struct ShardInfo {
    int shard = 0;
    std::vector<std::string> docs;  ///< Sorted (store iteration order).
    DocumentStoreStats store;
    int64_t queries = 0;  ///< This shard's ViewServer answer calls.
  };

  /// In-memory corpus. With `catalog` null a private catalog is created —
  /// register views through AddView before Put, as with ViewServer. A
  /// shared catalog may also be passed in (pre-registered or not).
  explicit ShardedCorpus(ShardedCorpusOptions options = {},
                         std::shared_ptr<ViewCatalog> catalog = nullptr);

  /// Opens (or creates) a durable corpus rooted at options.store.durable_dir,
  /// recovering every shard's checkpoint + WAL tail IN PARALLEL (one
  /// recovery thread per shard; shard recovery is independent by
  /// construction — separate directories, separate logs). Views must
  /// already be registered on `catalog` (or there are none): recovery
  /// materializes against the catalog's view set. A null catalog creates
  /// an empty private one.
  static StatusOr<std::unique_ptr<ShardedCorpus>> Open(
      ShardedCorpusOptions options,
      std::shared_ptr<ViewCatalog> catalog = nullptr);

  /// Registers a view on the shared catalog. Before any Put/Open recovery.
  void AddView(std::string name, Pattern def) {
    catalog_->AddView(std::move(name), std::move(def));
  }
  /// Registers a standing query on the shared catalog. Before serving.
  void RegisterCachedQuery(const Pattern& q) {
    catalog_->RegisterCachedQuery(q);
  }

  const std::shared_ptr<ViewCatalog>& catalog() const { return catalog_; }
  const CorpusRouter& router() const { return router_; }
  int shard_count() const { return int(shards_.size()); }

  /// The shard owning `name` (CorpusRouter::Route).
  int ShardOf(const std::string& name) const { return router_.Route(name); }

  /// The shard's execution state — tests, benches and pxvq introspection.
  ViewServer& server(int shard) { return *shards_[size_t(shard)].server; }
  DocumentStore& store(int shard) { return *shards_[size_t(shard)].store; }
  const DocumentStore& store(int shard) const {
    return *shards_[size_t(shard)].store;
  }

  // ------------------------------------------------- routed operations ----
  // Each runs on the owning shard with DocumentStore's exact semantics.

  Status Put(const std::string& name, PDocument doc);
  Status Drop(const std::string& name);
  StatusOr<uint64_t> Apply(const std::string& name,
                           const std::vector<DocMutation>& batch);
  Status MaterializeIncremental(const std::string& name);
  StatusOr<int> Compact(const std::string& name);
  std::optional<std::vector<PidProb>> Answer(const std::string& name,
                                             const Pattern& q);
  std::vector<std::optional<std::vector<PidProb>>> AnswerAll(
      const std::string& name, const std::vector<Pattern>& queries);
  std::optional<std::vector<std::vector<PidProb>>> AnswerAllCached(
      const std::string& name);
  StatusOr<std::vector<PidProb>> WhatIf(const std::string& name,
                                        const Pattern& q,
                                        const std::vector<WhatIfChange>& changes);
  const PDocument* Find(const std::string& name) const;

  /// Every stored document name, sorted — the same contract as
  /// DocumentStore::Names() on the equivalent single store.
  std::vector<std::string> Names() const;

  // ----------------------------------------------- cross-shard fan-out ----

  /// Answers every query over EVERY stored document: pins one snapshot per
  /// document up front (so concurrent Applies commit invisibly), executes
  /// in parallel — one fan-out thread per non-empty shard, each sharding
  /// its document × query grid across its own pool — and merges
  /// deterministically in (shard, document-name) order. Result layout:
  /// one DocAnswers per document, answers[i] for queries[i]. Bit-identical
  /// to looping AnswerAll over a single store holding the same corpus.
  std::vector<DocAnswers> AnswerAllDocuments(
      const std::vector<Pattern>& queries);

  // ------------------------------------------------------- durability ----

  /// Checkpoints every shard (DocumentStore::Checkpoint). Attempts all
  /// shards; returns the first error encountered.
  Status Checkpoint();

  /// True once ANY shard degraded to read-only.
  bool read_only() const;

  ShardedCorpusStats stats() const;
  std::vector<ShardInfo> ShardInfos() const;

 private:
  struct Shard {
    std::unique_ptr<ViewServer> server;
    std::unique_ptr<DocumentStore> store;
  };

  ShardedCorpus(ShardedCorpusOptions options,
                std::shared_ptr<ViewCatalog> catalog, bool durable);

  DocumentStore& owner(const std::string& name) {
    return *shards_[size_t(router_.Route(name))].store;
  }
  const DocumentStore& owner(const std::string& name) const {
    return *shards_[size_t(router_.Route(name))].store;
  }

  ShardedCorpusOptions options_;
  std::shared_ptr<ViewCatalog> catalog_;
  CorpusRouter router_;
  std::vector<Shard> shards_;
  std::atomic<int64_t> fanouts_{0};
};

}  // namespace pxv

#endif  // PXV_SERVE_SHARDED_CORPUS_H_
