// The durability stack's I/O seam: a minimal VFS (open/append/fsync/
// rename/read/list) that serve/wal and serve/checkpoint route every byte
// through. Two implementations:
//
//   * RealIoEnv  — POSIX files, the production path (IoEnv::Real()).
//   * FaultInjectingIoEnv — wraps another env and fires one planned fault
//     at the Nth mutating I/O operation: fail it (and every later op — a
//     dead process), short-write it, or silently corrupt one byte. It also
//     tracks, per appended file, how many bytes were covered by a
//     successful Sync, so SimulateCrash() can model a machine crash by
//     truncating files to their synced watermark — the worst legal outcome
//     of losing the page cache.
//
// The crash-matrix test in tests/durability_test.cc iterates the fault
// point over every I/O operation a workload performs and asserts
// DocumentStore::Open recovers a state bit-identical to a never-crashed
// twin at some acknowledged prefix.

#ifndef PXV_SERVE_IO_ENV_H_
#define PXV_SERVE_IO_ENV_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace pxv {

/// An append-only file handle. Append/Sync may fail; Close implies nothing
/// about durability (call Sync first if the bytes must survive).
class WritableFile {
 public:
  virtual ~WritableFile() = default;
  virtual Status Append(std::string_view data) = 0;
  virtual Status Sync() = 0;
  virtual Status Close() = 0;
};

class IoEnv {
 public:
  virtual ~IoEnv() = default;

  /// Opens `path` for appending, creating it when absent.
  virtual StatusOr<std::unique_ptr<WritableFile>> OpenForAppend(
      const std::string& path) = 0;

  /// Reads the whole file.
  virtual StatusOr<std::string> ReadFile(const std::string& path) = 0;

  /// Atomically replaces `to` with `from` (POSIX rename semantics).
  virtual Status Rename(const std::string& from, const std::string& to) = 0;

  virtual Status RemoveFile(const std::string& path) = 0;

  /// Creates `dir` (ok when it already exists).
  virtual Status CreateDir(const std::string& dir) = 0;

  /// Fsyncs the directory itself (making renames/creates durable).
  virtual Status SyncDir(const std::string& dir) = 0;

  /// Fsyncs `path` through an independent descriptor, making every byte
  /// already written to the file durable without touching any append
  /// handle — safe to call concurrently with appends to the same file.
  /// This is the background group-commit flusher's primitive.
  virtual Status SyncFile(const std::string& path) = 0;

  /// Plain file names (not paths) inside `dir`.
  virtual StatusOr<std::vector<std::string>> ListDir(
      const std::string& dir) = 0;

  virtual bool FileExists(const std::string& path) = 0;

  /// The process-wide POSIX environment.
  static IoEnv* Real();
};

/// One planned fault.
struct FaultPlan {
  enum class Mode {
    kFail,        ///< The chosen op returns an error.
    kShortWrite,  ///< An Append writes only a prefix, then errors.
    kCorrupt,     ///< An Append flips one byte and SUCCEEDS (silent bit rot).
  };
  /// 0-based index (in FaultInjectingIoEnv's op counter) of the operation
  /// the fault fires at; -1 = never.
  int64_t fail_at = -1;
  Mode mode = Mode::kFail;
  /// When true (a crashed process), every operation after the fault fails
  /// too. kCorrupt ignores this — bit rot doesn't stop the process.
  bool crash = true;
};

class FaultInjectingIoEnv : public IoEnv {
 public:
  explicit FaultInjectingIoEnv(IoEnv* base, FaultPlan plan = {});
  ~FaultInjectingIoEnv() override;

  StatusOr<std::unique_ptr<WritableFile>> OpenForAppend(
      const std::string& path) override;
  StatusOr<std::string> ReadFile(const std::string& path) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status RemoveFile(const std::string& path) override;
  Status CreateDir(const std::string& dir) override;
  Status SyncDir(const std::string& dir) override;
  Status SyncFile(const std::string& path) override;
  StatusOr<std::vector<std::string>> ListDir(const std::string& dir) override;
  bool FileExists(const std::string& path) override;

  /// Mutating operations observed so far (the fault-point coordinate
  /// space). Reads and existence checks are not counted — they cannot lose
  /// data.
  int64_t ops() const;

  /// True once the planned fault has fired.
  bool fault_fired() const;

  /// Models the machine dying: truncates every file this env appended to
  /// down to its last successfully Sync'd length (unsynced page-cache
  /// bytes are the first casualty of a crash; keeping none of them is the
  /// deterministic worst case). Files never appended through this env are
  /// left alone. Call after abandoning the store that owned the files.
  Status SimulateCrash();

 private:
  friend class FaultingWritableFile;

  // Returns true when the op at the current counter should fault; advances
  // the counter.
  bool NextOpFaults();
  bool Dead() const;

  IoEnv* base_;
  FaultPlan plan_;
  mutable std::mutex mu_;
  int64_t ops_ = 0;
  bool fired_ = false;
  // Per appended path: bytes known durable (covered by a successful Sync).
  std::map<std::string, int64_t> synced_bytes_;
  std::map<std::string, int64_t> appended_bytes_;
};

}  // namespace pxv

#endif  // PXV_SERVE_IO_ENV_H_
