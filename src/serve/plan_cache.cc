#include "serve/plan_cache.h"

#include "util/check.h"

namespace pxv {

PlanCache::PlanCache(size_t capacity) : capacity_(capacity) {
  PXV_CHECK(capacity_ > 0) << "plan cache capacity must be positive";
}

std::shared_ptr<const QueryPlan> PlanCache::Lookup(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);  // Move to front.
  return it->second->second;
}

std::shared_ptr<const QueryPlan> PlanCache::Insert(
    const std::string& key, std::shared_ptr<const QueryPlan> plan) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    // Concurrent compile of the same query: keep the existing entry so all
    // callers converge on one plan instance.
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->second;
  }
  lru_.emplace_front(key, std::move(plan));
  index_.emplace(key, lru_.begin());
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
  }
  return lru_.front().second;
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

int64_t PlanCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

int64_t PlanCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  hits_ = 0;
  misses_ = 0;
}

}  // namespace pxv
