#include "serve/view_server.h"

#include <utility>

namespace pxv {

ViewServer::ViewServer(ViewServerOptions options)
    : options_(options),
      pool_(options.threads),
      cache_(options.plan_cache_capacity),
      exts_(std::make_shared<const ViewExtensions>()) {}

void ViewServer::AddView(std::string name, Pattern def) {
  rewriter_.AddView(std::move(name), std::move(def));
}

void ViewServer::RegisterCachedQuery(const Pattern& q) {
  if (!cached_keys_.insert(q.CanonicalString()).second) return;
  cached_queries_.push_back(q);
}

std::vector<std::vector<PidProb>> ViewServer::AnswerAllCached(
    EvalSession* session) {
  std::vector<const Pattern*> queries;
  queries.reserve(cached_queries_.size());
  for (const Pattern& q : cached_queries_) queries.push_back(&q);
  const std::vector<std::vector<NodeProb>> raw = session->EvaluateAll(queries);
  // Pid-keyed results: node ids are arena positions and do not survive
  // compaction, pids do — the serving answer currency everywhere else.
  const PDocument& pd = session->doc();
  std::vector<std::vector<PidProb>> out(raw.size());
  for (size_t i = 0; i < raw.size(); ++i) {
    out[i].reserve(raw[i].size());
    for (const NodeProb& np : raw[i]) {
      out[i].push_back({pd.pid(np.node), np.prob});
    }
  }
  queries_.fetch_add(int64_t(queries.size()), std::memory_order_relaxed);
  cached_batches_.fetch_add(1, std::memory_order_relaxed);
  return out;
}

void ViewServer::Materialize(const PDocument& pd) {
  SetExtensions(rewriter_.Materialize(pd, pool_, options_.extension_options));
  materializations_.fetch_add(1, std::memory_order_relaxed);
}

void ViewServer::SetExtensions(ViewExtensions exts) {
  auto snapshot = std::make_shared<const ViewExtensions>(std::move(exts));
  std::lock_guard<std::mutex> lock(exts_mu_);
  exts_ = std::move(snapshot);
}

std::shared_ptr<const ViewExtensions> ViewServer::extensions() const {
  std::lock_guard<std::mutex> lock(exts_mu_);
  return exts_;
}

std::shared_ptr<const QueryPlan> ViewServer::PlanFor(const Pattern& q) {
  const std::string key = q.CanonicalString();
  if (std::shared_ptr<const QueryPlan> plan = cache_.Lookup(key)) return plan;
  // Compile outside the cache lock; a concurrent compile of the same query
  // races benignly — Insert keeps the first plan and both callers use it.
  auto plan = std::make_shared<const QueryPlan>(rewriter_.Compile(q));
  return cache_.Insert(key, std::move(plan));
}

std::optional<std::vector<PidProb>> ViewServer::AnswerWith(
    const Pattern& q, const ExtensionSet& exts) {
  return AnswerOne(q, exts);
}

std::optional<std::vector<PidProb>> ViewServer::AnswerOne(
    const Pattern& q, const ExtensionSet& exts) {
  queries_.fetch_add(1, std::memory_order_relaxed);
  std::optional<std::vector<PidProb>> result =
      ExecuteQueryPlan(*PlanFor(q), exts);
  if (!result.has_value()) {
    unanswerable_.fetch_add(1, std::memory_order_relaxed);
  }
  return result;
}

std::optional<std::vector<PidProb>> ViewServer::Answer(const Pattern& q) {
  const std::shared_ptr<const ViewExtensions> snapshot = extensions();
  return AnswerOne(q, *snapshot);
}

std::vector<std::optional<std::vector<PidProb>>> ViewServer::AnswerAll(
    const std::vector<Pattern>& queries) {
  const std::shared_ptr<const ViewExtensions> snapshot = extensions();
  std::vector<std::optional<std::vector<PidProb>>> results(queries.size());
  pool_.ParallelFor(static_cast<int>(queries.size()), [&](int i) {
    results[i] = AnswerOne(queries[i], *snapshot);
  });
  return results;
}

ViewServerStats ViewServer::stats() const {
  ViewServerStats s;
  s.queries = queries_.load(std::memory_order_relaxed);
  s.plan_cache_hits = cache_.hits();
  s.plan_cache_misses = cache_.misses();
  s.unanswerable = unanswerable_.load(std::memory_order_relaxed);
  s.materializations = materializations_.load(std::memory_order_relaxed);
  s.cached_queries = int64_t(cached_queries_.size());
  s.cached_batches = cached_batches_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace pxv
