#include "serve/view_server.h"

#include <utility>

#include "util/check.h"

namespace pxv {

ViewServer::ViewServer(ViewServerOptions options)
    : ViewServer(std::make_shared<ViewCatalog>(options.plan_cache_capacity),
                 options) {}

ViewServer::ViewServer(std::shared_ptr<ViewCatalog> catalog,
                       ViewServerOptions options)
    : options_(options),
      catalog_(std::move(catalog)),
      pool_(options.threads),
      exts_(std::make_shared<const ViewExtensions>()) {
  PXV_CHECK(catalog_ != nullptr);
}

std::vector<std::vector<PidProb>> ViewServer::AnswerAllCached(
    EvalSession* session) {
  const std::vector<Pattern>& cached = catalog_->cached_queries();
  std::vector<const Pattern*> queries;
  queries.reserve(cached.size());
  for (const Pattern& q : cached) queries.push_back(&q);
  const std::vector<std::vector<NodeProb>> raw = session->EvaluateAll(queries);
  // Pid-keyed results: node ids are arena positions and do not survive
  // compaction, pids do — the serving answer currency everywhere else.
  const PDocument& pd = session->doc();
  std::vector<std::vector<PidProb>> out(raw.size());
  for (size_t i = 0; i < raw.size(); ++i) {
    out[i].reserve(raw[i].size());
    for (const NodeProb& np : raw[i]) {
      out[i].push_back({pd.pid(np.node), np.prob});
    }
  }
  queries_.fetch_add(int64_t(queries.size()), std::memory_order_relaxed);
  cached_batches_.fetch_add(1, std::memory_order_relaxed);
  return out;
}

StatusOr<std::vector<PidProb>> ViewServer::WhatIf(
    EvalSession* session, const Pattern& q,
    const std::vector<WhatIfChange>& changes) {
  whatifs_.fetch_add(1, std::memory_order_relaxed);
  const PDocument& pd = session->doc();
  // Translate the pid-addressed changes into circuit-input identities (the
  // currency of the lineage circuit and of PDocument's setters alike).
  std::vector<std::pair<CircuitInput, double>> inputs;
  inputs.reserve(changes.size());
  for (const WhatIfChange& c : changes) {
    const NodeId n = pd.FindByPid(c.target);
    if (n == kNullNode) {
      return Status::Error("what-if: no node with pid " +
                           std::to_string(c.target));
    }
    CircuitInput in;
    if (c.dist_child_index < 0) {
      in.kind = CircuitInput::Kind::kEdgeProb;
      in.node = n;
    } else {
      const std::vector<NodeId>& kids = pd.children(n);
      if (c.dist_child_index >= int(kids.size())) {
        return Status::Error("what-if: pid " + std::to_string(c.target) +
                             " has no child " +
                             std::to_string(c.dist_child_index));
      }
      const NodeId ex = kids[size_t(c.dist_child_index)];
      if (pd.kind(ex) != PKind::kExp) {
        return Status::Error("what-if: child " +
                             std::to_string(c.dist_child_index) + " of pid " +
                             std::to_string(c.target) + " is not an exp node");
      }
      if (c.slot < 0 || size_t(c.slot) >= pd.exp_distribution(ex).size()) {
        return Status::Error("what-if: exp subset index " +
                             std::to_string(c.slot) + " out of range");
      }
      in.kind = CircuitInput::Kind::kExpSlot;
      in.node = ex;
      in.index = c.slot;
    }
    inputs.emplace_back(in, c.prob);
  }
  StatusOr<std::vector<NodeProb>> r = session->WhatIf(q, inputs);
  if (!r.ok()) return r.status();
  std::vector<PidProb> out;
  out.reserve(r->size());
  for (const NodeProb& np : *r) out.push_back({pd.pid(np.node), np.prob});
  return out;
}

StatusOr<std::vector<PidProb>> ViewServer::WhatIf(
    const PDocument& doc, const Pattern& q,
    const std::vector<WhatIfChange>& changes) {
  EvalOptions eval;
  eval.backend = BackendKind::kCircuit;
  eval.cache_results = false;
  EvalSession session(doc, eval);
  return WhatIf(&session, q, changes);
}

void ViewServer::Materialize(const PDocument& pd) {
  SetExtensions(rewriter().Materialize(pd, pool_, options_.extension_options));
  materializations_.fetch_add(1, std::memory_order_relaxed);
}

void ViewServer::SetExtensions(ViewExtensions exts) {
  auto snapshot = std::make_shared<const ViewExtensions>(std::move(exts));
  std::lock_guard<std::mutex> lock(exts_mu_);
  exts_ = std::move(snapshot);
}

std::shared_ptr<const ViewExtensions> ViewServer::extensions() const {
  std::lock_guard<std::mutex> lock(exts_mu_);
  return exts_;
}

std::optional<std::vector<PidProb>> ViewServer::AnswerWith(
    const Pattern& q, const ExtensionSet& exts) {
  return AnswerOne(q, exts);
}

std::optional<std::vector<PidProb>> ViewServer::AnswerOne(
    const Pattern& q, const ExtensionSet& exts) {
  queries_.fetch_add(1, std::memory_order_relaxed);
  std::optional<std::vector<PidProb>> result =
      ExecuteQueryPlan(*catalog_->PlanFor(q), exts);
  if (!result.has_value()) {
    unanswerable_.fetch_add(1, std::memory_order_relaxed);
  }
  return result;
}

std::optional<std::vector<PidProb>> ViewServer::Answer(const Pattern& q) {
  const std::shared_ptr<const ViewExtensions> snapshot = extensions();
  return AnswerOne(q, *snapshot);
}

std::vector<std::optional<std::vector<PidProb>>> ViewServer::AnswerAll(
    const std::vector<Pattern>& queries) {
  const std::shared_ptr<const ViewExtensions> snapshot = extensions();
  std::vector<std::optional<std::vector<PidProb>>> results(queries.size());
  pool_.ParallelFor(static_cast<int>(queries.size()), [&](int i) {
    results[i] = AnswerOne(queries[i], *snapshot);
  });
  return results;
}

ViewServerStats ViewServer::stats() const {
  ViewServerStats s;
  s.queries = queries_.load(std::memory_order_relaxed);
  s.plan_cache_hits = catalog_->plan_cache().hits();
  s.plan_cache_misses = catalog_->plan_cache().misses();
  s.unanswerable = unanswerable_.load(std::memory_order_relaxed);
  s.materializations = materializations_.load(std::memory_order_relaxed);
  s.cached_queries = int64_t(catalog_->cached_queries().size());
  s.cached_batches = cached_batches_.load(std::memory_order_relaxed);
  s.whatifs = whatifs_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace pxv
