#include "util/arena.h"

#include <algorithm>
#include <cstdint>

#include "util/check.h"

namespace pxv {

Arena::Arena(size_t min_chunk_bytes)
    : min_chunk_bytes_(std::max<size_t>(min_chunk_bytes, 64)) {}

void* Arena::Alloc(size_t bytes, size_t align) {
  PXV_CHECK(align != 0 && (align & (align - 1)) == 0);
  if (chunks_.empty()) NextChunk(std::max(bytes, min_chunk_bytes_));
  for (;;) {
    Chunk& c = chunks_[cur_];
    const uintptr_t base = reinterpret_cast<uintptr_t>(c.data.get());
    const size_t rem = (base + used_) % align;
    const size_t aligned = rem == 0 ? used_ : used_ + (align - rem);
    if (aligned + bytes <= c.size) {
      used_ = aligned + bytes;
      allocated_ += bytes;
      return c.data.get() + aligned;
    }
    NextChunk(bytes + align);
  }
}

void Arena::NextChunk(size_t bytes) {
  // Reuse a retained chunk when it fits; otherwise append a new one that
  // doubles the previous size (capped), or exactly fits an oversized request.
  const size_t next = chunks_.empty() ? 0 : cur_ + 1;
  if (next < chunks_.size() && chunks_[next].size >= bytes) {
    cur_ = next;
    used_ = 0;
    return;
  }
  size_t size = chunks_.empty() ? min_chunk_bytes_
                                : std::min(chunks_.back().size * 2,
                                           kMaxChunkBytes);
  size = std::max(size, bytes);
  Chunk c;
  c.data = std::make_unique<char[]>(size);
  c.size = size;
  // Insert in bump order so Reset replays chunks front to back.
  chunks_.insert(chunks_.begin() + next, std::move(c));
  cur_ = next;
  used_ = 0;
}

void Arena::Reset() {
  cur_ = 0;
  used_ = 0;
  allocated_ = 0;
}

size_t Arena::capacity_bytes() const {
  size_t total = 0;
  for (const Chunk& c : chunks_) total += c.size;
  return total;
}

}  // namespace pxv
