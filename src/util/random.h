// Deterministic, seedable pseudo-random generator used by samplers, workload
// generators and property tests. A fixed algorithm (splitmix64 + xoshiro256**)
// guarantees bit-identical workloads across platforms and standard-library
// versions, which std::mt19937 distributions do not.

#ifndef PXV_UTIL_RANDOM_H_
#define PXV_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pxv {

/// Deterministic RNG. Same seed ⇒ same stream on every platform.
class Rng {
 public:
  /// Seeds the generator; any 64-bit value (including 0) is valid.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit value.
  uint64_t NextU64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform integer in [0, bound), bound > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive, lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Bernoulli draw with success probability p (clamped to [0,1]).
  bool NextBool(double p = 0.5);

  /// Picks an index in [0, weights.size()) proportionally to weights.
  /// All weights must be >= 0 and at least one > 0.
  size_t NextWeighted(const std::vector<double>& weights);

 private:
  uint64_t s_[4];
};

}  // namespace pxv

#endif  // PXV_UTIL_RANDOM_H_
