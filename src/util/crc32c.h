// CRC-32C (Castagnoli, polynomial 0x1EDC6F41, reflected 0x82F63B78) — the
// checksum framing every WAL record and checkpoint file carries. Software
// slice-by-8 table implementation: no hardware dependency, ~1 byte/cycle,
// far below the cost of the write() syscall each checksummed record pays
// anyway.

#ifndef PXV_UTIL_CRC32C_H_
#define PXV_UTIL_CRC32C_H_

#include <cstdint>
#include <string_view>

namespace pxv {

/// CRC-32C of `data`, continuing from `seed` (0 for a fresh checksum).
/// Chaining: Crc32c(b, Crc32c(a)) == Crc32c(ab).
uint32_t Crc32c(std::string_view data, uint32_t seed = 0);

/// Masked form stored in file frames (the LevelDB/RocksDB trick): a CRC of
/// data that *contains* CRCs tends to collide with itself, so stored
/// checksums are rotated and offset. Verify with Crc32cUnmask.
uint32_t Crc32cMask(uint32_t crc);
uint32_t Crc32cUnmask(uint32_t masked);

}  // namespace pxv

#endif  // PXV_UTIL_CRC32C_H_
