// Shared numeric constants for the probability stack.

#ifndef PXV_UTIL_NUMERIC_H_
#define PXV_UTIL_NUMERIC_H_

namespace pxv {

/// Probabilities at or below this threshold are treated as zero when result
/// sets are filtered — one shared constant so query evaluation, rewriting
/// execution and view materialization all prune consistently.
inline constexpr double kProbEps = 1e-12;

}  // namespace pxv

#endif  // PXV_UTIL_NUMERIC_H_
