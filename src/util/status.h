// Minimal Status / StatusOr pair, modeled after absl::Status, for the
// exception-free error paths of the parsers and decision procedures.

#ifndef PXV_UTIL_STATUS_H_
#define PXV_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "util/check.h"

namespace pxv {

/// Outcome of a fallible operation. Either OK or an error with a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs an error status carrying `message`.
  static Status Error(std::string message) {
    Status s;
    s.message_ = std::move(message);
    s.ok_ = false;
    return s;
  }
  static Status Ok() { return Status(); }

  bool ok() const { return ok_; }
  /// Error message; empty for OK statuses.
  const std::string& message() const { return message_; }

 private:
  bool ok_ = true;
  std::string message_;
};

/// Either a value of type T or an error Status. Dereferencing a non-OK
/// StatusOr is a checked fatal error.
template <typename T>
class StatusOr {
 public:
  StatusOr(T value) : value_(std::move(value)) {}        // NOLINT(runtime/explicit)
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    PXV_CHECK(!status_.ok()) << "OK status requires a value";
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    PXV_CHECK(ok()) << status_.message();
    return *value_;
  }
  T& value() & {
    PXV_CHECK(ok()) << status_.message();
    return *value_;
  }
  T&& value() && {
    PXV_CHECK(ok()) << status_.message();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace pxv

#endif  // PXV_UTIL_STATUS_H_
