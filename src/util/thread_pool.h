// A fixed-size worker pool for fanning independent work items out across
// cores. The serving layer uses it to materialize views in parallel (one
// EvalSession per worker shard — sessions are documented single-threaded)
// and to batch-answer query sets.
//
// Design constraints:
//   * Tasks must not block on the pool themselves (no nested ParallelFor
//     from inside a task) — the pool does not steal work, so a task waiting
//     on the pool can deadlock it.
//   * Submit/ParallelFor are safe to call from several caller threads at
//     once; tasks from concurrent callers interleave on the shared workers.

#ifndef PXV_UTIL_THREAD_POOL_H_
#define PXV_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pxv {

class ThreadPool {
 public:
  /// `num_threads` ≤ 0 picks DefaultThreads(). A pool of size 1 still runs
  /// tasks on its (single) worker thread; ParallelFor degenerates to an
  /// inline loop in that case to avoid pointless hand-offs.
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task. Tasks run in FIFO order per worker pick-up.
  void Submit(std::function<void()> task);

  /// Runs body(0..n-1) across the pool and blocks until all calls returned.
  /// With n ≤ 1 or a single-worker pool the body runs inline on the caller.
  /// Must not be called from inside a pool task (see header comment).
  void ParallelFor(int n, const std::function<void(int)>& body);

  /// std::thread::hardware_concurrency with a floor of 1.
  static int DefaultThreads();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace pxv

#endif  // PXV_UTIL_THREAD_POOL_H_
