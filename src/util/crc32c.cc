#include "util/crc32c.h"

#include <array>

namespace pxv {
namespace {

constexpr uint32_t kPoly = 0x82F63B78u;  // Castagnoli, reflected.

struct Tables {
  // t[k][b]: CRC contribution of byte b at distance k from the tail —
  // slice-by-8 folds 8 input bytes per iteration through 8 tables.
  std::array<std::array<uint32_t, 256>, 8> t;

  Tables() {
    for (uint32_t b = 0; b < 256; ++b) {
      uint32_t crc = b;
      for (int i = 0; i < 8; ++i) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      t[0][b] = crc;
    }
    for (int k = 1; k < 8; ++k) {
      for (uint32_t b = 0; b < 256; ++b) {
        const uint32_t prev = t[k - 1][b];
        t[k][b] = (prev >> 8) ^ t[0][prev & 0xFF];
      }
    }
  }
};

const Tables& T() {
  static const Tables tables;
  return tables;
}

}  // namespace

uint32_t Crc32c(std::string_view data, uint32_t seed) {
  const auto& t = T().t;
  uint32_t crc = ~seed;
  const char* p = data.data();
  size_t n = data.size();
  while (n >= 8) {
    // Fold the current CRC into the first 4 bytes, then look all 8 bytes up
    // in the distance tables at once.
    const uint32_t lo = crc ^ (static_cast<uint8_t>(p[0]) |
                               static_cast<uint32_t>(static_cast<uint8_t>(p[1])) << 8 |
                               static_cast<uint32_t>(static_cast<uint8_t>(p[2])) << 16 |
                               static_cast<uint32_t>(static_cast<uint8_t>(p[3])) << 24);
    crc = t[7][lo & 0xFF] ^ t[6][(lo >> 8) & 0xFF] ^ t[5][(lo >> 16) & 0xFF] ^
          t[4][lo >> 24] ^ t[3][static_cast<uint8_t>(p[4])] ^
          t[2][static_cast<uint8_t>(p[5])] ^ t[1][static_cast<uint8_t>(p[6])] ^
          t[0][static_cast<uint8_t>(p[7])];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    crc = (crc >> 8) ^ t[0][(crc ^ static_cast<uint8_t>(*p++)) & 0xFF];
  }
  return ~crc;
}

uint32_t Crc32cMask(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xA282EAD8u;
}

uint32_t Crc32cUnmask(uint32_t masked) {
  const uint32_t rot = masked - 0xA282EAD8u;
  return (rot >> 17) | (rot << 15);
}

}  // namespace pxv
