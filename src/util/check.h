// Lightweight assertion macros in the spirit of glog's CHECK family.
//
// The library is exception-free (Google C++ style); internal invariant
// violations abort with a source location and message. These checks are
// enabled in all build types: the algorithms in this library are subtle
// enough that silent invariant corruption is never acceptable.

#ifndef PXV_UTIL_CHECK_H_
#define PXV_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace pxv {
namespace internal {

// Terminates the process after printing a formatted failure report.
[[noreturn]] inline void CheckFail(const char* file, int line,
                                   const char* expr, const std::string& msg) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s%s%s\n", file, line, expr,
               msg.empty() ? "" : " — ", msg.c_str());
  std::abort();
}

// Stream collector so call sites can write PXV_CHECK(x) << "context".
class CheckMessage {
 public:
  CheckMessage(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}
  [[noreturn]] ~CheckMessage() { CheckFail(file_, line_, expr_, out_.str()); }

  template <typename T>
  CheckMessage& operator<<(const T& v) {
    out_ << v;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream out_;
};

}  // namespace internal
}  // namespace pxv

#define PXV_CHECK(cond)                                             \
  if (cond) {                                                       \
  } else /* NOLINT */                                               \
    ::pxv::internal::CheckMessage(__FILE__, __LINE__, #cond)

#define PXV_CHECK_EQ(a, b) PXV_CHECK((a) == (b))
#define PXV_CHECK_NE(a, b) PXV_CHECK((a) != (b))
#define PXV_CHECK_LT(a, b) PXV_CHECK((a) < (b))
#define PXV_CHECK_LE(a, b) PXV_CHECK((a) <= (b))
#define PXV_CHECK_GT(a, b) PXV_CHECK((a) > (b))
#define PXV_CHECK_GE(a, b) PXV_CHECK((a) >= (b))

#endif  // PXV_UTIL_CHECK_H_
