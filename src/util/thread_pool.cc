#include "util/thread_pool.h"

#include <utility>

namespace pxv {

int ThreadPool::DefaultThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int num_threads) {
  const int n = num_threads > 0 ? num_threads : DefaultThreads();
  workers_.reserve(n);
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(int n, const std::function<void(int)>& body) {
  if (n <= 0) return;
  if (n == 1 || size() <= 1) {
    for (int i = 0; i < n; ++i) body(i);
    return;
  }
  // Completion latch shared by the n tasks.
  struct Latch {
    std::mutex mu;
    std::condition_variable cv;
    int pending;
  };
  Latch latch{{}, {}, n};
  for (int i = 0; i < n; ++i) {
    Submit([&latch, &body, i] {
      body(i);
      std::lock_guard<std::mutex> lock(latch.mu);
      if (--latch.pending == 0) latch.cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(latch.mu);
  latch.cv.wait(lock, [&latch] { return latch.pending == 0; });
}

}  // namespace pxv
