#include "util/random.h"

#include "util/check.h"

namespace pxv {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t x = seed;
  for (auto& s : s_) s = SplitMix64(x);
}

uint64_t Rng::NextU64() {
  // xoshiro256** by Blackman & Vigna (public domain reference algorithm).
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 top bits → uniform double in [0,1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  PXV_CHECK_GT(bound, 0u);
  // Rejection sampling for exact uniformity.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = NextU64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  PXV_CHECK_LE(lo, hi);
  return lo + static_cast<int64_t>(
                  NextBounded(static_cast<uint64_t>(hi - lo) + 1));
}

bool Rng::NextBool(double p) {
  if (p <= 0) return false;
  if (p >= 1) return true;
  return NextDouble() < p;
}

size_t Rng::NextWeighted(const std::vector<double>& weights) {
  double total = 0;
  for (double w : weights) {
    PXV_CHECK_GE(w, 0.0);
    total += w;
  }
  PXV_CHECK_GT(total, 0.0);
  double r = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0) return i;
  }
  return weights.size() - 1;  // Floating-point edge: return the last index.
}

}  // namespace pxv
