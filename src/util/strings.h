// Small string helpers shared by parsers and printers.

#ifndef PXV_UTIL_STRINGS_H_
#define PXV_UTIL_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace pxv {

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits `s` at every occurrence of `sep` (single char); keeps empty pieces.
std::vector<std::string> Split(std::string_view s, char sep);

/// True iff `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Formats a double with enough digits to round-trip, trimming zeros.
std::string FormatProbability(double p);

}  // namespace pxv

#endif  // PXV_UTIL_STRINGS_H_
