// Bump-pointer arena: chunked, grow-only allocation with O(1) wholesale
// reuse. The probability DP allocates thousands of short-lived distribution
// tables per bottom-up pass; individual malloc/free (the std::unordered_map
// regime) dominates its profile. An Arena turns every allocation into a
// pointer bump, and Reset() recycles all chunks for the next pass without
// returning memory to the OS, so steady-state evaluation allocates nothing.
//
// Not thread-safe: one arena per evaluation session per thread (the same
// ownership discipline as EvalSession itself).

#ifndef PXV_UTIL_ARENA_H_
#define PXV_UTIL_ARENA_H_

#include <cstddef>
#include <memory>
#include <vector>

namespace pxv {

class Arena {
 public:
  /// `min_chunk_bytes` is the size of the first chunk; later chunks double
  /// up to kMaxChunkBytes (oversized requests get a dedicated chunk).
  explicit Arena(size_t min_chunk_bytes = 1 << 12);

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `bytes` of storage aligned to `align` (a power of two, at most
  /// alignof(std::max_align_t)). Never fails short of OOM; Alloc(0) returns
  /// a valid unique pointer.
  void* Alloc(size_t bytes, size_t align = alignof(std::max_align_t));

  /// Recycles every chunk: all outstanding pointers become invalid, the
  /// memory is reused by subsequent Alloc calls. Capacity is retained.
  void Reset();

  /// Bytes handed out since the last Reset.
  size_t allocated_bytes() const { return allocated_; }
  /// Total capacity across retained chunks (high-water across Resets).
  size_t capacity_bytes() const;
  int chunk_count() const { return static_cast<int>(chunks_.size()); }

 private:
  static constexpr size_t kMaxChunkBytes = size_t{1} << 22;

  struct Chunk {
    std::unique_ptr<char[]> data;
    size_t size = 0;
  };

  // Makes chunks_[cur_ + 1] (growing if needed) hold >= bytes free space.
  void NextChunk(size_t bytes);

  std::vector<Chunk> chunks_;
  size_t cur_ = 0;        // Index of the chunk being bumped.
  size_t used_ = 0;       // Bytes used in chunks_[cur_].
  size_t allocated_ = 0;  // Since last Reset.
  size_t min_chunk_bytes_;
};

}  // namespace pxv

#endif  // PXV_UTIL_ARENA_H_
