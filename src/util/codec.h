// Little-endian byte codec shared by the durability stack (pxml arena
// serialization, serve/wal, serve/checkpoint). Fixed-width fields only —
// the record framing already carries explicit lengths, so varints would buy
// bytes at the price of a second torn-input failure mode.
//
// Reads are bounds-checked and never trust the input: a ByteReader that
// runs past its buffer latches an error instead of reading garbage, which
// is what lets WAL/checkpoint decoding treat *any* malformed byte stream
// (torn tail, bit rot, hostile file) as a clean "corrupt record" outcome.

#ifndef PXV_UTIL_CODEC_H_
#define PXV_UTIL_CODEC_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace pxv {

inline void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

inline void PutU32(std::string* out, uint32_t v) {
  char buf[4];
  buf[0] = static_cast<char>(v);
  buf[1] = static_cast<char>(v >> 8);
  buf[2] = static_cast<char>(v >> 16);
  buf[3] = static_cast<char>(v >> 24);
  out->append(buf, 4);
}

inline void PutU64(std::string* out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

inline void PutI32(std::string* out, int32_t v) {
  PutU32(out, static_cast<uint32_t>(v));
}

inline void PutI64(std::string* out, int64_t v) {
  PutU64(out, static_cast<uint64_t>(v));
}

/// Bit-exact double transport: the recovered document must reproduce every
/// probability to the bit, so doubles travel as their IEEE-754 image, never
/// through text formatting.
inline void PutF64(std::string* out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

inline void PutBytes(std::string* out, std::string_view bytes) {
  PutU32(out, static_cast<uint32_t>(bytes.size()));
  out->append(bytes.data(), bytes.size());
}

/// Bounds-checked cursor over an untrusted byte buffer. Every Get* returns
/// a defined value (0 / empty) once the reader has failed; callers check
/// ok() once at the end of a decode instead of after every field.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  bool ok() const { return ok_; }
  bool AtEnd() const { return pos_ == data_.size(); }
  size_t pos() const { return pos_; }
  size_t remaining() const { return data_.size() - pos_; }

  uint8_t GetU8() {
    if (!Need(1)) return 0;
    return static_cast<uint8_t>(data_[pos_++]);
  }

  uint32_t GetU32() {
    if (!Need(4)) return 0;
    uint32_t v = 0;
    for (int i = 3; i >= 0; --i) {
      v = (v << 8) | static_cast<uint8_t>(data_[pos_ + i]);
    }
    pos_ += 4;
    return v;
  }

  uint64_t GetU64() {
    const uint64_t lo = GetU32();
    const uint64_t hi = GetU32();
    return lo | (hi << 32);
  }

  int32_t GetI32() { return static_cast<int32_t>(GetU32()); }
  int64_t GetI64() { return static_cast<int64_t>(GetU64()); }

  double GetF64() {
    const uint64_t bits = GetU64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  std::string_view GetBytes() {
    const uint32_t len = GetU32();
    if (!Need(len)) return {};
    const std::string_view out = data_.substr(pos_, len);
    pos_ += len;
    return out;
  }

  /// Latches the error state (decode helpers use it for semantic checks —
  /// out-of-range ids, bad kinds — so one ok() check covers everything).
  void Fail() { ok_ = false; }

 private:
  bool Need(size_t n) {
    if (!ok_ || data_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::string_view data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace pxv

#endif  // PXV_UTIL_CODEC_H_
