#include <gtest/gtest.h>

#include <map>

#include "gen/docgen.h"
#include "pxml/parser.h"
#include "gen/paper.h"
#include "prob/query_eval.h"
#include "pxml/view_extension.h"
#include "rewrite/fr_tp.h"
#include "rewrite/rewriter.h"
#include "rewrite/tp_rewrite.h"
#include "tp/parser.h"

namespace pxv {
namespace {

std::map<PersistentId, double> DirectAnswer(const PDocument& pd,
                                            const Pattern& q) {
  std::map<PersistentId, double> out;
  for (const NodeProb& np : EvaluateTP(pd, q)) out[pd.pid(np.node)] = np.prob;
  return out;
}

std::map<PersistentId, double> RewriteAnswer(const PDocument& pd,
                                             const Pattern& q,
                                             const NamedView& view) {
  const auto rws = TPrewrite(q, {view});
  EXPECT_EQ(rws.size(), 1u) << "no probabilistic TP-rewriting found";
  if (rws.empty()) return {};
  Rewriter rewriter;
  rewriter.AddView(view.name, view.def.Clone());
  const ViewExtensions exts = rewriter.Materialize(pd);
  std::map<PersistentId, double> out;
  for (const PidProb& pp : ExecuteTpRewriting(rws[0], exts.at(view.name))) {
    out[pp.pid] = pp.prob;
  }
  return out;
}

void ExpectSameAnswers(const std::map<PersistentId, double>& direct,
                       const std::map<PersistentId, double>& via_views,
                       const char* context) {
  for (const auto& [pid, p] : direct) {
    ASSERT_TRUE(via_views.count(pid))
        << context << ": missing answer pid " << pid;
    EXPECT_NEAR(via_views.at(pid), p, 1e-9) << context << " pid " << pid;
  }
  for (const auto& [pid, p] : via_views) {
    EXPECT_TRUE(direct.count(pid)) << context << ": spurious pid " << pid;
  }
}

// Example 13: Pr(n5 ∈ q_BON(P_PER)) = 0.9 ÷ 1 via the plan
// comp(doc(v2BON)/bonus, q_(3)); all other nodes get 0.
TEST(FrTpTest, PaperExample13) {
  const PDocument pd = paper::PDocPER();
  const auto answer =
      RewriteAnswer(pd, paper::QueryBON(), {"v2BON", paper::ViewV2BON()});
  ASSERT_EQ(answer.size(), 1u);
  EXPECT_NEAR(answer.at(5), 0.9, 1e-12);
}

TEST(FrTpTest, QRBONViaV1BON) {
  const PDocument pd = paper::PDocPER();
  const auto answer =
      RewriteAnswer(pd, paper::QueryRBON(), {"v1BON", paper::ViewV1BON()});
  ASSERT_EQ(answer.size(), 1u);
  // Theorem 1 divides the plan probability by the out-predicate mass (1):
  // the answer matches the direct 0.675.
  EXPECT_NEAR(answer.at(5), 0.675, 1e-12);
}

// Theorem 1 with predicates on out(v): the division is essential.
TEST(FrTpTest, OutPredicateDivision) {
  // v = a/b[c], q = a/b[c][d]: plan doc(v)/b[c][d]... over the extension the
  // [c] probability is already folded into β; f_r divides it back.
  const auto pd = ParsePDocument("a(b(mux(c@0.6), mux(d@0.5)))");
  ASSERT_TRUE(pd.ok());
  const Pattern q = Tp("a/b[c][d]");
  const NamedView view{"v", Tp("a/b[c]")};
  const auto direct = DirectAnswer(*pd, q);
  const auto via = RewriteAnswer(*pd, q, view);
  ExpectSameAnswers(direct, via, "out-predicate division");
  ASSERT_EQ(via.size(), 1u);
  EXPECT_NEAR(via.begin()->second, 0.3, 1e-12);
}

// Unrestricted plan with a unique selected ancestor per answer (footnote 3).
TEST(FrTpTest, UnrestrictedUniqueAncestor) {
  const auto pd = ParsePDocument(
      "a(x(b(mux(c(d(mux(e@0.4)))@0.7))), b(c(d(mux(e@0.25)))))");
  ASSERT_TRUE(pd.ok());
  const Pattern q = Tp("a//b/c/d//e");
  const NamedView view{"v", Tp("a//b/c/d")};
  const auto direct = DirectAnswer(*pd, q);
  const auto via = RewriteAnswer(*pd, q, view);
  ExpectSameAnswers(direct, via, "unique ancestor");
}

// Unrestricted plan with two nested view matches (a = 2): the
// inclusion–exclusion machinery of Theorem 2 (u = 0 case).
TEST(FrTpTest, TwoNestedAncestorsU0) {
  // v = a//b/c, q = a//b/c//d. Document with nested b/c chains.
  const auto pd = ParsePDocument(
      "a(b(mux(x@0.5), c(b(c(mux(d@0.6))), mux(d@0.3))))");
  ASSERT_TRUE(pd.ok());
  const Pattern q = Tp("a//b/c//d");
  const NamedView view{"v", Tp("a//b/c")};
  const auto direct = DirectAnswer(*pd, q);
  const auto via = RewriteAnswer(*pd, q, view);
  ExpectSameAnswers(direct, via, "two ancestors u=0");
}

// Prefix-suffix case (u = 1): overlapping images of the last token.
TEST(FrTpTest, OverlappingTokenImagesU1) {
  // v = a//b/b: last token (b, b), u = 1. q = v//d.
  const auto pd = ParsePDocument("a(b(b(b(mux(d@0.8)), mux(d@0.5))))");
  ASSERT_TRUE(pd.ok());
  const Pattern q = Tp("a//b/b//d");
  const NamedView view{"v", Tp("a//b/b")};
  const auto direct = DirectAnswer(*pd, q);
  const auto via = RewriteAnswer(*pd, q, view);
  ExpectSameAnswers(direct, via, "u=1 overlap");
}

// Randomized end-to-end property: whenever TPrewrite accepts, executing
// (q_r, f_r) over the extension reproduces the direct answers exactly.
class FrTpProperty : public ::testing::TestWithParam<int> {};

TEST_P(FrTpProperty, RewritingMatchesDirectOnPersonnel) {
  Rng rng(100 + GetParam());
  const PDocument pd = PersonnelPDocument(rng, 3 + GetParam() % 4);
  struct Case {
    const char* query;
    const char* view;
  };
  const Case cases[] = {
      {"IT-personnel//person/bonus[laptop]", "IT-personnel//person/bonus"},
      {"IT-personnel//person[name/Rick]/bonus[laptop]",
       "IT-personnel//person[name/Rick]/bonus"},
      {"IT-personnel/person/bonus[laptop]", "IT-personnel/person/bonus"},
      {"IT-personnel//person[name/Rick]/bonus",
       "IT-personnel//person[name/Rick]/bonus"},
  };
  for (const Case& c : cases) {
    const Pattern q = Tp(c.query);
    const NamedView view{"v", Tp(c.view)};
    const auto rws = TPrewrite(q, {view});
    ASSERT_EQ(rws.size(), 1u) << c.query;
    Rewriter rewriter;
    rewriter.AddView("v", view.def.Clone());
    const ViewExtensions exts = rewriter.Materialize(pd);
    std::map<PersistentId, double> via;
    for (const PidProb& pp : ExecuteTpRewriting(rws[0], exts.at("v"))) {
      via[pp.pid] = pp.prob;
    }
    ExpectSameAnswers(DirectAnswer(pd, q), via, c.query);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FrTpProperty, ::testing::Range(0, 12));

// The executor never touches the original p-document: it works on an
// extension whose probabilities were tampered with, faithfully reflecting
// the tampered values (black-box evidence of the access restriction).
TEST(FrTpTest, UsesExtensionOnly) {
  const PDocument pd = paper::PDocPER();
  const auto rws =
      TPrewrite(paper::QueryBON(), {{"v2BON", paper::ViewV2BON()}});
  ASSERT_EQ(rws.size(), 1u);
  Rewriter rewriter;
  rewriter.AddView("v2BON", paper::ViewV2BON());
  ViewExtensions exts = rewriter.Materialize(pd);
  // Tamper: rescale the laptop mux inside the extension.
  PDocument& ext = exts.at("v2BON");
  for (NodeId n = 0; n < ext.size(); ++n) {
    if (ext.ordinary(n) && ext.pid(n) == 24) ext.SetEdgeProb(n, 0.5);
  }
  const auto results = ExecuteTpRewriting(rws[0], ext);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_NEAR(results[0].prob, 0.5, 1e-12);  // Tampered value, not 0.9.
}

}  // namespace
}  // namespace pxv
