// Incremental materialization equivalence suite.
//
// The contract under test (ISSUE 4 acceptance): any sequence of mutation
// batches followed by MaterializeIncremental yields *bit-identical*
// extensions and answer probabilities to a from-scratch Materialize over
// the mutated document — across the flat-kernel exact DP, the reference
// engine, and the naive world-enumeration oracle (the latter two to
// numerical tolerance, since they use different summation orders by
// design). Extensions are compared through a canonical serialization that
// captures structure, labels, source pids and every probability at full
// double precision, while ignoring arena node ids and extension-local
// (negative) pids — the two representational freedoms delta patching has.
//
// Covers mux/ind/det documents, exp nodes, and the >32-live-slot wide-key
// regime, plus the uid regression: copies diverge on mutation and
// uid-keyed evaluation caches never serve stale results.

#include <map>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "gen/docgen.h"
#include "gen/querygen.h"
#include "prob/engine.h"
#include "prob/eval_session.h"
#include "prob/naive.h"
#include "pxml/parser.h"
#include "rewrite/planner.h"
#include "rewrite/rewriter.h"
#include "serve/document_store.h"
#include "serve/view_server.h"
#include "tp/parser.h"
#include "util/random.h"
#include "util/strings.h"
#include "xml/label.h"

namespace pxv {
namespace {

// ------------------------------------------------------- canonical form ----

void AppendProb(double p, std::string* out) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", p);  // Round-trips doubles.
  *out += buf;
}

void CanonNode(const PDocument& d, NodeId n, std::string* out) {
  if (d.ordinary(n)) {
    *out += "O(";
    *out += LabelName(d.label(n));
    *out += ',';
    // Extension-local pids (markers, copy-semantics copies) are negative
    // counter draws — representational, not semantic.
    *out += d.pid(n) >= 0 ? std::to_string(d.pid(n)) : std::string("L");
    *out += ',';
    AppendProb(d.edge_prob(n), out);
    *out += ')';
  } else {
    *out += PKindName(d.kind(n));
    *out += '(';
    AppendProb(d.edge_prob(n), out);
    if (d.kind(n) == PKind::kExp) {
      for (const auto& [subset, p] : d.exp_distribution(n)) {
        *out += ";{";
        for (int idx : subset) {
          *out += std::to_string(idx);
          *out += ' ';
        }
        *out += "}=";
        AppendProb(p, out);
      }
    }
    *out += ')';
  }
  *out += '[';
  for (NodeId c : d.children(n)) CanonNode(d, c, out);
  *out += ']';
}

std::string Canon(const PDocument& d) {
  std::string out;
  if (!d.empty()) CanonNode(d, d.root(), &out);
  return out;
}

// ------------------------------------------------ document + mutation gen ----

// Labels are *stratified by ordinary depth* (a node with i ordinary proper
// ancestors is labeled l{i-1}; the root is "root"): a label can then never
// nest under itself, so view outputs have unique selected ancestors — the
// precondition the §4 restricted plans rely on (Def. 5). The `//` axes in
// views and queries still cross the distributional nodes in between.
Label StratLabel(int ordinary_depth) {
  return Intern("l" + std::to_string(ordinary_depth - 1));
}

int OrdinaryDepth(const PDocument& pd, NodeId n) {
  int depth = 0;
  for (NodeId a = pd.OrdinaryAncestor(n); a != kNullNode;
       a = pd.OrdinaryAncestor(a)) {
    ++depth;
  }
  return depth;
}

void GrowStrat(PDocument* pd, NodeId parent, int odepth, int* budget,
               Rng& rng) {
  if (*budget <= 0 || odepth > 4) return;
  const int fanout = 1 + static_cast<int>(rng.NextBounded(3));
  for (int i = 0; i < fanout && *budget > 0; ++i) {
    const Label l = StratLabel(odepth);
    if (rng.NextBool(0.35)) {
      const PKind kind = rng.NextBool(0.5) ? PKind::kMux : PKind::kInd;
      const NodeId dist = pd->AddDistributional(parent, kind);
      const int alts = 1 + static_cast<int>(rng.NextBounded(2));
      double remaining = 1.0;
      for (int a = 0; a < alts; ++a) {
        double p = rng.NextDouble();
        if (kind == PKind::kMux) {
          p = std::min(p, remaining);
          remaining -= p;
        }
        const NodeId c = pd->AddOrdinary(dist, l, p);
        --*budget;
        GrowStrat(pd, c, odepth + 1, budget, rng);
      }
    } else {
      const NodeId c = pd->AddOrdinary(parent, l);
      --*budget;
      GrowStrat(pd, c, odepth + 1, budget, rng);
    }
  }
}

// Random stratified document with grafted exp nodes.
PDocument RandomDocWithExp(Rng& rng, int target_nodes, int exp_nodes) {
  PDocument pd;
  const NodeId root = pd.AddRoot(Intern("root"));
  int budget = target_nodes;
  GrowStrat(&pd, root, 1, &budget, rng);
  while (pd.children(root).empty()) {
    pd.AddOrdinary(root, StratLabel(1));
  }
  std::vector<NodeId> ordinary;
  for (NodeId n = 0; n < pd.size(); ++n) {
    if (pd.ordinary(n)) ordinary.push_back(n);
  }
  for (int e = 0; e < exp_nodes; ++e) {
    const NodeId host = ordinary[rng.NextBounded(ordinary.size())];
    const NodeId exp = pd.AddExp(host);
    const int kids = 2 + static_cast<int>(rng.NextBounded(2));
    for (int k = 0; k < kids; ++k) {
      pd.AddOrdinary(exp, StratLabel(OrdinaryDepth(pd, exp)));
    }
    std::vector<std::pair<std::vector<int>, double>> dist;
    double remaining = 1.0;
    const int subsets = 1 + static_cast<int>(rng.NextBounded(3));
    for (int s = 0; s < subsets; ++s) {
      std::vector<int> subset;
      for (int k = 0; k < kids; ++k) {
        if (rng.NextBool(0.5)) subset.push_back(k);
      }
      const double p = std::min(remaining, 0.5 * rng.NextDouble());
      remaining -= p;
      dist.emplace_back(std::move(subset), p);
    }
    pd.SetExpDistribution(exp, std::move(dist));
  }
  PXV_CHECK(pd.Validate().ok());
  pd.ClearDirtyPaths();
  return pd;
}

// A small insert payload with globally fresh pids (persistent ids must
// stay unique across the whole document — restricted f_r plans rely on it)
// whose labels continue the host's stratum, preserving the no-self-nesting
// invariant.
PDocument RandomPayload(Rng& rng, PersistentId* next_pid, int base_odepth) {
  PDocument sub;
  {
    PDocument::MutationBatch batch(&sub);  // Scoped: closed before return.
    const NodeId root = sub.AddRoot(StratLabel(base_odepth), (*next_pid)++);
    const int kids = 1 + static_cast<int>(rng.NextBounded(3));
    for (int k = 0; k < kids; ++k) {
      if (rng.NextBool(0.4)) {
        const NodeId dist = sub.AddDistributional(
            root, rng.NextBool(0.5) ? PKind::kMux : PKind::kInd);
        sub.AddOrdinary(dist, StratLabel(base_odepth + 1),
                        0.9 * rng.NextDouble(), (*next_pid)++);
      } else {
        const NodeId c = sub.AddOrdinary(root, StratLabel(base_odepth + 1),
                                         1.0, (*next_pid)++);
        if (rng.NextBool(0.5)) {
          sub.AddOrdinary(c, StratLabel(base_odepth + 2), 1.0, (*next_pid)++);
        }
      }
    }
  }
  return sub;
}

// One random, *usually* valid mutation against the current document. The
// store may still reject a batch (e.g. a removal leaving a distributional
// leaf) — callers treat rejection as a rollback check, not a failure.
DocMutation RandomMutation(const PDocument& pd, Rng& rng,
                           PersistentId* next_pid) {
  for (int attempt = 0; attempt < 50; ++attempt) {
    switch (rng.NextBounded(4)) {
      case 0: {  // Edge probability of a mux/ind child.
        std::vector<NodeId> candidates;
        for (NodeId n = 0; n < pd.size(); ++n) {
          if (pd.detached(n) || pd.parent(n) == kNullNode) continue;
          const PKind pk = pd.kind(pd.parent(n));
          if (pd.ordinary(n) && (pk == PKind::kMux || pk == PKind::kInd)) {
            candidates.push_back(n);
          }
        }
        if (candidates.empty()) continue;
        const NodeId n = candidates[rng.NextBounded(candidates.size())];
        double budget = 1.0;
        if (pd.kind(pd.parent(n)) == PKind::kMux) {
          for (NodeId s : pd.children(pd.parent(n))) {
            if (s != n) budget -= pd.edge_prob(s);
          }
        }
        if (budget <= 0) continue;
        return DocMutation::SetEdgeProb(pd.pid(n),
                                        budget * rng.NextDouble());
      }
      case 1: {  // Remove an ordinary subtree (keep siblings alive).
        std::vector<NodeId> candidates;
        for (NodeId n = 0; n < pd.size(); ++n) {
          if (!pd.ordinary(n) || pd.detached(n) || n == pd.root()) continue;
          const NodeId par = pd.parent(n);
          if (pd.kind(par) == PKind::kExp) continue;
          if (!pd.ordinary(par) && pd.children(par).size() < 2) continue;
          candidates.push_back(n);
        }
        if (candidates.empty()) continue;
        return DocMutation::RemoveSubtree(
            pd.pid(candidates[rng.NextBounded(candidates.size())]));
      }
      case 2: {  // Insert a small random subtree under an ordinary node.
        std::vector<NodeId> candidates;
        for (NodeId n = 0; n < pd.size(); ++n) {
          if (pd.ordinary(n) && !pd.detached(n)) candidates.push_back(n);
        }
        const NodeId host = candidates[rng.NextBounded(candidates.size())];
        return DocMutation::InsertSubtree(
            pd.pid(host),
            RandomPayload(rng, next_pid, OrdinaryDepth(pd, host) + 1));
      }
      default: {  // Replace an exp node's distribution.
        std::vector<std::pair<PersistentId, int>> candidates;
        for (NodeId n = 0; n < pd.size(); ++n) {
          if (!pd.ordinary(n) || pd.detached(n)) continue;
          const auto& kids = pd.children(n);
          for (size_t i = 0; i < kids.size(); ++i) {
            if (pd.kind(kids[i]) == PKind::kExp) {
              candidates.emplace_back(pd.pid(n), static_cast<int>(i));
            }
          }
        }
        if (candidates.empty()) continue;
        const auto [pid, idx] = candidates[rng.NextBounded(candidates.size())];
        const NodeId exp = pd.children(pd.FindByPid(pid))[idx];
        const int kids = static_cast<int>(pd.children(exp).size());
        std::vector<std::pair<std::vector<int>, double>> dist;
        double remaining = 1.0;
        for (int s = 0; s < 2; ++s) {
          std::vector<int> subset;
          for (int k = 0; k < kids; ++k) {
            if (rng.NextBool(0.5)) subset.push_back(k);
          }
          const double p = std::min(remaining, 0.6 * rng.NextDouble());
          remaining -= p;
          dist.emplace_back(std::move(subset), p);
        }
        return DocMutation::SetExpDistribution(pid, idx, std::move(dist));
      }
    }
  }
  // Fallback that always applies: insert at the root.
  return DocMutation::InsertSubtree(pd.pid(pd.root()),
                                    RandomPayload(rng, next_pid, 1));
}

// --------------------------------------------------- equivalence harness ----

// Asserts that `store`'s current snapshot of `name` is bit-identical to a
// from-scratch materialization of the same (mutated) document, and that
// both answer a query set identically; cross-checks the anchored view
// probabilities against the reference engine and (when tractable) the
// naive oracle.
void ExpectEquivalent(DocumentStore& store, const std::string& name,
                      const std::vector<NamedView>& views,
                      const std::vector<Pattern>& queries) {
  const PDocument* doc = store.Find(name);
  ASSERT_NE(doc, nullptr);
  Rewriter rewriter;
  for (const NamedView& v : views) rewriter.AddView(v.name, v.def.Clone());
  const ViewExtensions fresh = rewriter.Materialize(*doc);
  const auto snapshot = store.Snapshot(name);
  ASSERT_NE(snapshot, nullptr);

  // 1. Bit-identical extensions (canonical form: structure + labels +
  //    source pids + exact probabilities).
  ASSERT_EQ(snapshot->size(), fresh.size());
  for (const auto& [vname, ext] : fresh) {
    const auto it = snapshot->find(vname);
    ASSERT_NE(it, snapshot->end()) << vname;
    EXPECT_EQ(Canon(*it->second), Canon(ext)) << "extension " << vname;
  }

  // 2. Bit-identical answers through the planner.
  for (const Pattern& q : queries) {
    const QueryPlan plan = rewriter.Compile(q);
    const auto a_inc = ExecuteQueryPlan(plan, *snapshot);
    const auto a_fresh = ExecuteQueryPlan(plan, fresh);
    ASSERT_EQ(a_inc.has_value(), a_fresh.has_value());
    if (!a_inc.has_value()) continue;
    ASSERT_EQ(a_inc->size(), a_fresh->size());
    for (size_t i = 0; i < a_inc->size(); ++i) {
      EXPECT_EQ((*a_inc)[i].pid, (*a_fresh)[i].pid);
      EXPECT_EQ((*a_inc)[i].prob, (*a_fresh)[i].prob) << "answer not bitwise";
    }
  }

  // 3. Cross-engine anchors: the snapshot's result probabilities against
  //    the reference engine and the naive oracle (different summation
  //    orders — numerical tolerance applies).
  for (const NamedView& v : views) {
    std::map<NodeId, double> flat;
    const auto it = snapshot->find(v.name);
    ASSERT_NE(it, snapshot->end());
    const PDocument& ext = *it->second;
    std::map<PersistentId, double> by_pid;
    for (NodeId r : ExtensionResultRoots(ext)) {
      by_pid[ext.pid(r)] += ext.edge_prob(r);
    }
    std::map<PersistentId, double> ref_by_pid;
    for (const NodeProb& np :
         ReferenceBatchAnchoredProbabilities(*doc, {&v.def})) {
      if (np.prob > 1e-12) ref_by_pid[doc->pid(np.node)] += np.prob;
    }
    ASSERT_EQ(by_pid.size(), ref_by_pid.size()) << v.name;
    for (const auto& [pid, p] : ref_by_pid) {
      ASSERT_TRUE(by_pid.count(pid)) << v.name << " pid " << pid;
      EXPECT_NEAR(by_pid[pid], p, 1e-9) << v.name << " pid " << pid;
    }
    StatusOr<std::map<NodeId, double>> naive =
        NaiveTryBatchAnchored(*doc, {&v.def}, 1 << 14);
    if (naive.ok()) {
      std::map<PersistentId, double> naive_by_pid;
      for (const auto& [n, p] : *naive) {
        if (p > 1e-12) naive_by_pid[doc->pid(n)] += p;
      }
      ASSERT_EQ(by_pid.size(), naive_by_pid.size()) << v.name;
      for (const auto& [pid, p] : naive_by_pid) {
        EXPECT_NEAR(by_pid[pid], p, 1e-9) << v.name << " pid " << pid;
      }
    }
  }
}

TEST(IncrementalEquivalence, RandomizedMutationSequences) {
  for (int seed = 0; seed < 8; ++seed) {
    Rng rng(52000 + seed);
    PDocument pd = RandomDocWithExp(rng, 24, 2);

    // Random views anchored at the document's root label, plus handcrafted
    // ones that are very likely nonempty.
    std::vector<NamedView> views;
    views.push_back({"v0", Tp("root//l0")});
    views.push_back({"v1", Tp("root//l1")});
    QueryGenOptions qo;
    qo.depth = 2;
    views.push_back({"v2", RandomQuery(rng, qo)});
    std::vector<Pattern> queries;
    for (const NamedView& v : views) queries.push_back(v.def.Clone());
    queries.push_back(Tp("root//l0/l1"));

    ViewServer server;
    for (const NamedView& v : views) server.AddView(v.name, v.def.Clone());
    DocumentStore store(&server);
    ASSERT_TRUE(store.Put("doc", std::move(pd)).ok());
    ExpectEquivalent(store, "doc", views, queries);

    PersistentId next_pid = 1000000 + seed * 10000;
    for (int round = 0; round < 6; ++round) {
      const PDocument* doc = store.Find("doc");
      const std::string before = Canon(*doc);
      std::vector<DocMutation> batch;
      const int k = 1 + static_cast<int>(rng.NextBounded(3));
      for (int m = 0; m < k; ++m) {
        batch.push_back(RandomMutation(*doc, rng, &next_pid));
      }
      const auto applied = store.Apply("doc", batch);
      if (!applied.ok()) {
        // Transactional: a rejected batch must leave the document intact.
        EXPECT_EQ(Canon(*store.Find("doc")), before);
        continue;
      }
      ASSERT_TRUE(store.MaterializeIncremental("doc").ok());
      ExpectEquivalent(store, "doc", views, queries);
    }
    // The incremental path must actually have exercised the subtree memo.
    EXPECT_GT(store.SessionCacheStats("doc").hits, 0u);
  }
}

// The >32-live-slot regime: a single view whose pattern needs 39 DP slots
// forces the 256-bit wide-key fallback at the root while subtrees stay
// narrow. Mutations must still patch incrementally and match a rebuild.
TEST(IncrementalEquivalence, WideKeyRegime) {
  PDocument pd;
  const NodeId r = pd.AddRoot(Intern("r"));
  const NodeId ind = pd.AddDistributional(r, PKind::kInd);
  for (int copy = 0; copy < 2; ++copy) {
    const NodeId b = pd.AddOrdinary(ind, Intern("b"), 0.5 + 0.25 * copy);
    const NodeId mux = pd.AddDistributional(b, PKind::kMux);
    const NodeId grp1 = pd.AddOrdinary(mux, Intern("g"), 0.6);
    const NodeId grp2 = pd.AddOrdinary(mux, Intern("g"), 0.4);
    for (int i = 0; i < 36; ++i) {
      pd.AddOrdinary(i % 2 ? grp1 : grp2, Intern("p" + std::to_string(i)));
    }
  }
  ASSERT_TRUE(pd.Validate().ok());

  Pattern q;
  const PNodeId qr = q.AddRoot(Intern("r"));
  const PNodeId qb = q.AddChild(qr, Intern("b"), Axis::kDescendant);
  const PNodeId qg = q.AddChild(qb, Intern("g"), Axis::kChild);
  for (int i = 0; i < 36; ++i) {
    q.AddChild(qg, Intern("p" + std::to_string(i)), Axis::kDescendant);
  }
  q.SetOut(qb);
  ASSERT_GT(BatchSlotCount({&q}), kNarrowSlotCap);

  std::vector<NamedView> views;
  views.push_back({"wide", q.Clone()});
  ViewServer server;
  server.AddView("wide", q.Clone());
  DocumentStore store(&server);
  const PersistentId b_pid = pd.pid(NodeId{2});  // First "b" under the ind.
  ASSERT_TRUE(store.Put("doc", std::move(pd)).ok());
  // No planner queries: the §4/§5 compile search is exponential in pattern
  // size and this 39-slot view exists to stress the DP key width, not the
  // rewriting search. Extension + cross-engine equivalence still run.
  ExpectEquivalent(store, "doc", views, {});

  Rng rng(99);
  for (int round = 0; round < 4; ++round) {
    ASSERT_TRUE(store
                    .Apply("doc", {DocMutation::SetEdgeProb(
                                      b_pid, 0.2 + 0.6 * rng.NextDouble())})
                    .ok());
    ASSERT_TRUE(store.MaterializeIncremental("doc").ok());
    ExpectEquivalent(store, "doc", views, {});
  }
  EXPECT_GT(store.SessionCacheStats("doc").hits, 0u);
}

// ------------------------------------------------- sibling-tree churn ----

// A flat 4096-fanout ind site runs Combine through the sibling-product
// segment tree (prob/engine.cc CombineTree). With the subtree memo on, the
// internal products are cached per site keyed on child subtree versions:
// mutating ONE child must recompute only the O(log fanout) products on that
// leaf's root path — observed through the profile counters — while the
// results stay bitwise identical to a cold rebuild (cached products are
// memcpy-cloned, never re-derived).
TEST(SiblingTreeChurn, OneDeltaRecomputesLogFanoutProducts) {
  constexpr int kFanout = 4096;
  const int kLog = 13;  // ceil(log2(fanout + 1)) — root-path length bound.
  PDocument pd;
  const NodeId root = pd.AddRoot(Intern("root"));
  const NodeId ind = pd.AddDistributional(root, PKind::kInd);
  Rng rng(4096);
  std::vector<NodeId> items;
  for (int i = 0; i < kFanout; ++i) {
    // Sub-1.0 edge probabilities keep every part's base non-trivial (two
    // entries: predicate bit set / unset), so no part collapses to an
    // identity and the full fanout reaches the tree.
    items.push_back(
        pd.AddOrdinary(ind, Intern("item"), 0.1 + 0.8 * rng.NextDouble()));
  }
  const NodeId out = pd.AddOrdinary(ind, Intern("out"), 0.5);
  (void)out;
  ASSERT_TRUE(pd.Validate().ok());
  const Pattern q = Tp("root[item]/out");

  EvalOptions opts;
  opts.backend = BackendKind::kExact;
  opts.cache_subtrees = true;
  EvalSession session(pd, opts);
  const std::vector<NodeProb> cold = session.EvaluateTP(q);
  ASSERT_EQ(cold.size(), 1u);
  ASSERT_NE(session.dp_profile(), nullptr);
  const DistProfile& prof = *session.dp_profile();
  ASSERT_GT(prof.sibling_tree_sites, 0u) << "tree route did not fire";
  // Cold run: every internal product computed (plain or batched), none
  // served from the memo.
  const uint64_t cold_products =
      prof.sibling_tree_convs + prof.batched_pair_convs;
  EXPECT_GE(cold_products, static_cast<uint64_t>(kFanout - 1));
  EXPECT_EQ(prof.sibling_tree_reused, 0u);

  // One child delta → incremental re-evaluation.
  pd.SetEdgeProb(items[kFanout / 2], 0.987654321);
  const uint64_t convs_before = prof.sibling_tree_convs;
  const uint64_t batched_before = prof.batched_pair_convs;
  const uint64_t reused_before = prof.sibling_tree_reused;
  const std::vector<NodeProb> incremental = session.EvaluateTP(q);

  // O(log fanout): only the mutated leaf's root path is dirty.
  const uint64_t delta_products = (prof.sibling_tree_convs - convs_before) +
                                  (prof.batched_pair_convs - batched_before);
  EXPECT_LE(delta_products, static_cast<uint64_t>(2 * kLog));
  EXPECT_GT(delta_products, 0u);
  // The rest of the tree is served from the memo.
  EXPECT_GE(prof.sibling_tree_reused - reused_before,
            static_cast<uint64_t>(kFanout - 2 * kLog));

  // Bitwise identity against a full rebuild of the mutated document.
  EvalSession fresh(pd, opts);
  const std::vector<NodeProb> rebuilt = fresh.EvaluateTP(q);
  ASSERT_EQ(incremental.size(), rebuilt.size());
  for (size_t i = 0; i < rebuilt.size(); ++i) {
    EXPECT_EQ(incremental[i].node, rebuilt[i].node);
    EXPECT_EQ(incremental[i].prob, rebuilt[i].prob) << "not bitwise";
  }
}

// ------------------------------------------------------- uid regressions ----

// uid(): copies share the tag, and the tags diverge permanently as soon as
// either side mutates (the doc-comment contract the mutation API relies on).
TEST(UidRegression, CopyThenMutateDiverges) {
  Rng rng(5);
  PDocument a = RandomDocWithExp(rng, 15, 1);
  const PDocument b = a;
  EXPECT_EQ(a.uid(), b.uid());
  const std::string b_before = Canon(b);

  NodeId target = kNullNode;
  for (NodeId n = 0; n < a.size(); ++n) {
    if (a.ordinary(n) && a.parent(n) != kNullNode &&
        a.kind(a.parent(n)) == PKind::kInd) {
      target = n;
    }
  }
  if (target == kNullNode) target = a.children(a.root())[0];
  a.SetEdgeProb(target, a.edge_prob(target));  // Even a no-op write mutates.
  EXPECT_NE(a.uid(), b.uid());
  EXPECT_EQ(Canon(b), b_before);  // The copy is untouched.
}

// Evaluation caches keyed on uid must never serve results computed for an
// earlier document version: a session evaluated before a mutation answers
// exactly like a fresh session after it.
TEST(UidRegression, SessionNeverServesStaleResults) {
  const char* text = "a(ind(b(c)@0.5, b@0.25))";
  const auto parsed = ParsePDocument(text);
  ASSERT_TRUE(parsed.ok());
  PDocument pd = *parsed;
  const Pattern q = Tp("a/b");

  EvalOptions cached;
  cached.cache_subtrees = true;
  EvalSession session(pd, cached);
  const auto r1 = session.EvaluateTP(q);
  ASSERT_EQ(r1.size(), 2u);
  EXPECT_DOUBLE_EQ(r1[0].prob, 0.5);

  NodeId b1 = kNullNode;
  for (NodeId n = 0; n < pd.size(); ++n) {
    if (pd.ordinary(n) && pd.label(n) == Intern("b")) {
      b1 = n;
      break;
    }
  }
  pd.SetEdgeProb(b1, 0.125);

  const auto& r2 = session.EvaluateTP(q);
  EvalSession fresh(pd);
  const auto& r3 = fresh.EvaluateTP(q);
  ASSERT_EQ(r2.size(), r3.size());
  for (size_t i = 0; i < r2.size(); ++i) {
    EXPECT_EQ(r2[i].node, r3[i].node);
    EXPECT_EQ(r2[i].prob, r3[i].prob);
  }
  EXPECT_DOUBLE_EQ(r2[0].prob, 0.125);

  // Point lookups and label indexes refresh too.
  EXPECT_EQ(session.SelectionProbability(q, b1), 0.125);
  EXPECT_EQ(session.NodesWithLabel(Intern("b")).size(), 2u);
  pd.RemoveSubtree(b1);
  EXPECT_EQ(session.NodesWithLabel(Intern("b")).size(), 1u);
  EXPECT_EQ(session.EvaluateTP(q).size(), 1u);
}

}  // namespace
}  // namespace pxv
