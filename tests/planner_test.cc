// The cost-based answer planner (rewrite/planner.h) and its façade
// Rewriter::Answer: candidate enumeration, executable-plan selection,
// missing-extension fall-through (the old path PXV_CHECK-crashed), and the
// serve-layer plan cache keyed by canonical pattern fingerprints.

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "gen/paper.h"
#include "prob/query_eval.h"
#include "rewrite/planner.h"
#include "rewrite/rewriter.h"
#include "serve/view_server.h"
#include "pxml/parser.h"
#include "tp/parser.h"
#include "xml/label.h"

namespace pxv {
namespace {

constexpr double kTol = 1e-9;

std::map<PersistentId, double> ToMap(const std::vector<PidProb>& pps) {
  std::map<PersistentId, double> m;
  for (const PidProb& pp : pps) m[pp.pid] = pp.prob;
  return m;
}

std::map<PersistentId, double> DirectAnswer(const PDocument& pd,
                                            const Pattern& q) {
  std::map<PersistentId, double> m;
  for (const NodeProb& np : EvaluateTP(pd, q)) m[pd.pid(np.node)] = np.prob;
  return m;
}

void ExpectSameAnswers(const std::map<PersistentId, double>& expected,
                       const std::map<PersistentId, double>& actual) {
  ASSERT_EQ(expected.size(), actual.size());
  for (const auto& [pid, prob] : expected) {
    ASSERT_TRUE(actual.count(pid)) << "missing pid " << pid;
    EXPECT_NEAR(prob, actual.at(pid), kTol) << "pid " << pid;
  }
}

// A document where a/b subtrees are plentiful but only one carries c: the
// unqualified view's extension is large, the qualified one's is small.
PDocument AbcDoc() {
  return *ParsePDocument(
      "a(b(ind(c@0.5), x), b(x), b(x, x), b(x), b(x), b(x), b(x), b(x))");
}

TEST(CompileQueryTest, EnumeratesTpAndTpiCandidates) {
  const std::vector<NamedView> views = {{"vbig", Tp("a/b")},
                                        {"vsmall", Tp("a/b[c]")}};
  const QueryPlan plan = CompileQuery(Tp("a/b[c]"), views);
  EXPECT_TRUE(plan.answerable());
  EXPECT_EQ(plan.fingerprint, Tp("a/b[c]").Fingerprint());
  // Both views support a TP rewriting of q = a/b[c].
  int tp_candidates = 0;
  for (const AnswerPlan& cand : plan.candidates) {
    if (cand.kind == AnswerPlan::Kind::kTp) ++tp_candidates;
  }
  EXPECT_EQ(tp_candidates, 2);
}

// Regression (src/rewrite/rewriter.cc:47 before this refactor): the first
// TP rewriting's view has no materialized extension. The old code did
// `exts.find(tp[0].view_name)` + PXV_CHECK — an abort. The planner now
// falls through to the next executable candidate.
TEST(PlannerTest, MissingExtensionFallsThroughToNextRewriting) {
  const PDocument pd = AbcDoc();
  Rewriter rewriter;
  rewriter.AddView("vbig", Tp("a/b"));      // tp[0] in discovery order.
  rewriter.AddView("vsmall", Tp("a/b[c]"));
  ViewExtensions exts = rewriter.Materialize(pd);
  ASSERT_EQ(exts.erase("vbig"), 1u);  // vbig never materialized.

  const Pattern q = Tp("a/b[c]");
  const auto answer = rewriter.Answer(q, exts);
  ASSERT_TRUE(answer.has_value());
  ExpectSameAnswers(DirectAnswer(pd, q), ToMap(*answer));

  int chosen = -1;
  const QueryPlan plan = rewriter.Compile(q);
  ExecuteQueryPlan(plan, exts, &chosen);
  ASSERT_GE(chosen, 0);
  EXPECT_EQ(plan.candidates[chosen].tp.view_name, "vsmall");
}

TEST(PlannerTest, NoExecutableCandidateIsNulloptNotACrash) {
  Rewriter rewriter;
  rewriter.AddView("v", Tp("a/b"));
  const ViewExtensions empty;  // Nothing materialized at all.
  EXPECT_FALSE(rewriter.Answer(Tp("a/b[c]"), empty).has_value());
}

// Cost-based selection: both views rewrite q, the first-discovered one has
// the much bigger extension. The old path executed tp[0] (vbig); the
// planner must pick vsmall and still produce the right probabilities.
TEST(PlannerTest, PicksCheaperPlanOverFirstDiscovered) {
  const PDocument pd = AbcDoc();
  Rewriter rewriter;
  rewriter.AddView("vbig", Tp("a/b"));
  rewriter.AddView("vsmall", Tp("a/b[c]"));
  const ViewExtensions exts = rewriter.Materialize(pd);
  ASSERT_GT(exts.at("vbig").size(), exts.at("vsmall").size());

  const Pattern q = Tp("a/b[c]");
  const QueryPlan plan = rewriter.Compile(q);
  ASSERT_GE(plan.candidates.size(), 2u);
  // Discovery order puts vbig first — the mis-pick of the old code.
  EXPECT_EQ(plan.candidates[0].tp.view_name, "vbig");

  int chosen = -1;
  const auto answer = ExecuteQueryPlan(plan, exts, &chosen);
  ASSERT_TRUE(answer.has_value());
  ASSERT_GE(chosen, 0);
  EXPECT_EQ(plan.candidates[chosen].tp.view_name, "vsmall");
  ExpectSameAnswers(DirectAnswer(pd, q), ToMap(*answer));

  const double cost_big = *EstimateCost(plan.candidates[0], exts);
  const double cost_small = *EstimateCost(plan.candidates[chosen], exts);
  EXPECT_LT(cost_small, cost_big);
}

TEST(PlannerTest, UnrestrictedFrIsPenalized) {
  // Same plan sizes, same extension: a restricted candidate must cost less
  // than an unrestricted one over any extension with ≥ 1 result.
  const PDocument pd = paper::PDocPER();
  Rewriter rewriter;
  rewriter.AddView("v2BON", paper::ViewV2BON());
  const ViewExtensions exts = rewriter.Materialize(pd);
  const QueryPlan plan = rewriter.Compile(paper::QueryBON());
  const AnswerPlan* tp_plan = nullptr;
  for (const AnswerPlan& cand : plan.candidates) {
    if (cand.kind == AnswerPlan::Kind::kTp) tp_plan = &cand;
  }
  ASSERT_NE(tp_plan, nullptr);
  ASSERT_TRUE(tp_plan->tp.restricted);
  const double restricted_cost = *EstimateCost(*tp_plan, exts);
  AnswerPlan unrestricted = *tp_plan;
  unrestricted.tp.restricted = false;
  EXPECT_GT(*EstimateCost(unrestricted, exts), restricted_cost);
}

// The exp-node surcharge: ExpDpCost sums |exp distribution| × live subtree
// size per exp node, and the planner charges it on top of live_size() — the
// DP re-walks an exp node's children once per explicit subset, so grafting
// exp structure into an extension must raise its estimated cost by more
// than the handful of nodes added.
TEST(PlannerTest, ExpNodesRaiseEstimatedCost) {
  const PDocument pd = AbcDoc();
  Rewriter rewriter;
  rewriter.AddView("v", Tp("a/b"));
  ViewExtensions exts = rewriter.Materialize(pd);
  const QueryPlan plan = rewriter.Compile(Tp("a/b[c]"));
  const AnswerPlan* cand = nullptr;
  for (const AnswerPlan& c : plan.candidates) {
    if (c.kind == AnswerPlan::Kind::kTp && c.tp.view_name == "v") cand = &c;
  }
  ASSERT_NE(cand, nullptr);

  PDocument& ext = exts.at("v");
  EXPECT_EQ(ext.ExpDpCost(), 0.0);  // Materialized extensions are exp-free.
  const double live0 = ext.live_size();
  const double base_cost = *EstimateCost(*cand, exts);

  // Graft one exp node with 2 children and 3 subsets: live size grows by 3,
  // ExpDpCost by 3 subsets × 3 subtree nodes = 9.
  const NodeId exp = ext.AddExp(ext.root());
  ext.AddOrdinary(exp, Intern("y"));
  ext.AddOrdinary(exp, Intern("z"));
  ext.SetExpDistribution(exp, {{{0, 1}, 0.4}, {{0}, 0.3}, {{1}, 0.2}});
  EXPECT_EQ(ext.ExpDpCost(), 9.0);
  EXPECT_EQ(ext.ExpDpCost(), 9.0);  // Cached per uid; stable on re-read.

  // Cost scales with (live + exp surcharge): per-node factor recovered from
  // the base estimate, so the assertion pins the exact charge.
  const double with_exp = *EstimateCost(*cand, exts);
  EXPECT_NEAR(with_exp, base_cost / live0 * (live0 + 3 + 9), 1e-9);

  // A probability-only mutation of the distribution re-keys the uid cache:
  // five subsets now, surcharge 15.
  ext.SetExpDistribution(
      exp, {{{0, 1}, 0.2}, {{0}, 0.2}, {{1}, 0.2}, {{}, 0.2}, {{0, 1}, 0.2}});
  EXPECT_EQ(ext.ExpDpCost(), 15.0);
  EXPECT_GT(*EstimateCost(*cand, exts), with_exp);
}

TEST(PlannerTest, MissingTpiMemberExtensionDisablesTpiCandidate) {
  // q_RBON compiles to a TP candidate via `rick` plus a TP∩ candidate over
  // {rick, all}. Without `all`'s extension the TP∩ plan is not executable
  // but the TP plan still serves; without `rick`'s, nothing is executable
  // and Answer must return nullopt — the old code crashed on the missing
  // tp[0] extension, and ExecuteTpiRewriting would throw on exts.at().
  const PDocument pd = paper::PDocPER();
  Rewriter rewriter;
  rewriter.AddView("rick", Tp("IT-personnel//person[name/Rick]/bonus"));
  rewriter.AddView("all", Tp("IT-personnel//person/bonus"));
  const Pattern q = paper::QueryRBON();
  const QueryPlan plan = rewriter.Compile(q);
  ASSERT_GE(plan.candidates.size(), 2u);

  ViewExtensions exts = rewriter.Materialize(pd);
  ASSERT_EQ(exts.erase("all"), 1u);
  const auto answer = rewriter.Answer(q, exts);
  ASSERT_TRUE(answer.has_value());
  ExpectSameAnswers(DirectAnswer(pd, q), ToMap(*answer));

  ViewExtensions no_rick = rewriter.Materialize(pd);
  ASSERT_EQ(no_rick.erase("rick"), 1u);
  EXPECT_FALSE(rewriter.Answer(q, no_rick).has_value());
}

// ------------------------------------------------------------ ViewServer ----

TEST(ViewServerTest, AnswersMatchDirectEvaluation) {
  ViewServer server;
  server.AddView("v2BON", paper::ViewV2BON());
  server.Materialize(paper::PDocPER());
  const auto answer = server.Answer(paper::QueryBON());
  ASSERT_TRUE(answer.has_value());
  ExpectSameAnswers(DirectAnswer(paper::PDocPER(), paper::QueryBON()),
                    ToMap(*answer));
}

TEST(ViewServerTest, PlanCacheHitsOnRepeatedAndIsomorphicQueries) {
  ViewServer server;
  server.AddView("v", Tp("a/b"));
  server.Materialize(AbcDoc());

  const Pattern q1 = Tp("a/b[c][x]");
  const Pattern q2 = Tp("a/b[x][c]");  // Isomorphic: predicates reordered.
  ASSERT_EQ(q1.Fingerprint(), q2.Fingerprint());

  server.Answer(q1);
  ViewServerStats stats = server.stats();
  EXPECT_EQ(stats.plan_cache_misses, 1);
  EXPECT_EQ(stats.plan_cache_hits, 0);

  server.Answer(q1);
  server.Answer(q2);  // Isomorphic query must reuse q1's plan.
  stats = server.stats();
  EXPECT_EQ(stats.plan_cache_misses, 1);
  EXPECT_EQ(stats.plan_cache_hits, 2);
  EXPECT_EQ(stats.queries, 3);
}

TEST(ViewServerTest, AnswerAllMatchesIndividualAnswers) {
  ViewServer server;
  server.AddView("v1BON", paper::ViewV1BON());
  server.AddView("v2BON", paper::ViewV2BON());
  server.Materialize(paper::PDocPER());
  const std::vector<Pattern> queries = {paper::QueryBON(), paper::QueryRBON(),
                                        paper::QueryBON()};
  const auto batched = server.AnswerAll(queries);
  ASSERT_EQ(batched.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    const auto single = server.Answer(queries[i]);
    ASSERT_EQ(single.has_value(), batched[i].has_value()) << "query " << i;
    if (single.has_value()) {
      ExpectSameAnswers(ToMap(*single), ToMap(*batched[i]));
    }
  }
}

TEST(ViewServerTest, AnswerBeforeMaterializeIsNullopt) {
  ViewServer server;
  server.AddView("v2BON", paper::ViewV2BON());
  EXPECT_FALSE(server.Answer(paper::QueryBON()).has_value());
  EXPECT_EQ(server.stats().unanswerable, 1);
}

TEST(ViewServerTest, SetExtensionsServesPartialSets) {
  ViewServer server;
  server.AddView("vbig", Tp("a/b"));
  server.AddView("vsmall", Tp("a/b[c]"));
  const PDocument pd = AbcDoc();
  Rewriter loader;
  loader.AddView("vsmall", Tp("a/b[c]"));
  server.SetExtensions(loader.Materialize(pd));  // Only vsmall present.
  const auto answer = server.Answer(Tp("a/b[c]"));
  ASSERT_TRUE(answer.has_value());
  ExpectSameAnswers(DirectAnswer(pd, Tp("a/b[c]")), ToMap(*answer));
}

TEST(PlanCacheTest, LruEviction) {
  PlanCache cache(/*capacity=*/2);
  auto plan = [](uint64_t fp) {
    auto p = std::make_shared<QueryPlan>();
    p->fingerprint = fp;
    return std::shared_ptr<const QueryPlan>(p);
  };
  cache.Insert("a", plan(1));
  cache.Insert("b", plan(2));
  EXPECT_NE(cache.Lookup("a"), nullptr);  // Refresh a → b becomes LRU.
  cache.Insert("c", plan(3));             // Evicts b.
  EXPECT_EQ(cache.Lookup("b"), nullptr);
  EXPECT_NE(cache.Lookup("a"), nullptr);
  EXPECT_NE(cache.Lookup("c"), nullptr);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(PlanCacheTest, InsertKeepsFirstPlanOnRace) {
  PlanCache cache(8);
  auto p1 = std::make_shared<const QueryPlan>();
  auto p2 = std::make_shared<const QueryPlan>();
  EXPECT_EQ(cache.Insert("k", p1), p1);
  EXPECT_EQ(cache.Insert("k", p2), p1);  // Second compile loses, reuses p1.
}

}  // namespace
}  // namespace pxv
