// Durability suite (ISSUE 8 acceptance): a DocumentStore opened from a
// durable directory must be bit-identical — same canonical document form,
// same query answers — to a never-crashed in-memory twin that applied the
// same acknowledged prefix of the workload. Covered here:
//
//   * clean close + reopen round-trips documents and answers exactly;
//   * checkpoints truncate the WAL and recovery still replays exactly;
//   * a torn trailing record is dropped without losing any earlier
//     committed batch;
//   * the crash matrix: a FaultInjectingIoEnv fires kFail / kShortWrite /
//     kCorrupt at points swept across every I/O operation the workload
//     performs, SimulateCrash() models losing the page cache, and the
//     recovered store is compared against the twin. Under fsync=always an
//     acknowledged write is a synced write, so kFail/kShortWrite recovery
//     must equal the twin at EXACTLY the acknowledged batch count; silent
//     bit rot (kCorrupt) must either fail recovery loudly or recover some
//     acknowledged prefix — never an altered state.
//     PXV_CRASH_MATRIX_POINTS overrides the per-mode point count (CI runs
//     the fuzz job with a couple hundred points under ASan+UBSan).
//   * read-only degradation: after a WAL I/O failure the store refuses
//     writes, keeps serving reads, and the failed batch is absent from
//     both memory and the log (a rolled-back batch is never logged).

#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

#include "gen/docgen.h"
#include "serve/document_store.h"
#include "serve/io_env.h"
#include "serve/view_server.h"
#include "serve/wal.h"
#include "tp/parser.h"
#include "util/random.h"
#include "xml/label.h"

namespace pxv {
namespace {

std::string TestDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/pxv_durability_" + name;
  std::system(("rm -rf " + dir).c_str());
  return dir;
}

// ------------------------------------------------------- canonical form ----
// Structure + labels + source pids + exact probabilities; ignores arena
// node ids and version stamps (replay re-stamps versions from the process
// counter) — exactly the freedoms recovery is allowed.

void AppendProb(double p, std::string* out) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", p);  // Round-trips doubles.
  *out += buf;
}

void CanonNode(const PDocument& d, NodeId n, std::string* out) {
  if (d.ordinary(n)) {
    *out += "O(";
    *out += LabelName(d.label(n));
    *out += ',';
    *out += d.pid(n) >= 0 ? std::to_string(d.pid(n)) : std::string("L");
    *out += ',';
    AppendProb(d.edge_prob(n), out);
    *out += ')';
  } else {
    *out += PKindName(d.kind(n));
    *out += '(';
    AppendProb(d.edge_prob(n), out);
    if (d.kind(n) == PKind::kExp) {
      for (const auto& [subset, p] : d.exp_distribution(n)) {
        *out += ";{";
        for (int idx : subset) {
          *out += std::to_string(idx);
          *out += ' ';
        }
        *out += "}=";
        AppendProb(p, out);
      }
    }
    *out += ')';
  }
  *out += '[';
  for (NodeId c : d.children(n)) CanonNode(d, c, out);
  *out += ']';
}

std::string Canon(const PDocument& d) {
  std::string out;
  if (!d.empty()) CanonNode(d, d.root(), &out);
  return out;
}

// ---------------------------------------------------------- workload ----
// A deterministic always-valid mutation stream over the personnel
// document: lower a name alternative's probability below its initial
// value (the mux budget can only gain slack), insert fresh "extra"
// subtrees under persons, remove previously inserted ones.

struct Workload {
  PDocument initial;
  std::vector<std::vector<DocMutation>> batches;
};

Workload MakeWorkload(uint64_t seed, int num_batches) {
  Rng docrng(411);
  Workload w{PersonnelPDocument(docrng, 10, 0.3, 0.4), {}};

  std::vector<std::pair<PersistentId, double>> alternatives;
  std::vector<PersistentId> persons;
  for (NodeId n = 0; n < w.initial.size(); ++n) {
    if (!w.initial.ordinary(n) || w.initial.detached(n)) continue;
    if (w.initial.label(n) == Intern("person")) {
      persons.push_back(w.initial.pid(n));
    }
    const NodeId parent = w.initial.parent(n);
    if (parent != kNullNode && !w.initial.ordinary(parent) &&
        w.initial.kind(parent) == PKind::kMux) {
      alternatives.push_back({w.initial.pid(n), w.initial.edge_prob(n)});
    }
  }

  Rng rng(seed);
  PersistentId next_pid = 1000000;
  std::vector<PersistentId> inserted;
  for (int b = 0; b < num_batches; ++b) {
    std::vector<DocMutation> batch;
    const int ops = 1 + static_cast<int>(rng.NextBounded(3));
    for (int i = 0; i < ops; ++i) {
      const uint64_t pick = rng.NextBounded(3);
      if (pick == 0) {
        const auto& [pid, initial_prob] =
            alternatives[rng.NextBounded(alternatives.size())];
        batch.push_back(
            DocMutation::SetEdgeProb(pid, initial_prob * rng.NextDouble()));
      } else if (pick == 1 || inserted.empty()) {
        PDocument sub;
        const PersistentId root_pid = next_pid++;
        const NodeId r = sub.AddRoot(Intern("extra"), root_pid);
        sub.AddOrdinary(r, Intern("tag"), 1.0, next_pid++);
        batch.push_back(DocMutation::InsertSubtree(
            persons[rng.NextBounded(persons.size())], std::move(sub), 1.0));
        inserted.push_back(root_pid);
      } else {
        const size_t idx = rng.NextBounded(inserted.size());
        batch.push_back(DocMutation::RemoveSubtree(inserted[idx]));
        inserted.erase(inserted.begin() + idx);
      }
    }
    w.batches.push_back(std::move(batch));
  }
  return w;
}

void RegisterViews(ViewServer* server) {
  server->AddView("vbonus", Tp("IT-personnel//person/bonus"));
  server->AddView("vrick", Tp("IT-personnel//person[name/Rick]/bonus"));
}

std::vector<Pattern> Queries() {
  return {Tp("IT-personnel//person/bonus"),
          Tp("IT-personnel//person[name/Rick]/bonus")};
}

/// Canonical states of a never-crashed in-memory twin. twins[0] is the
/// state right after Put; twins[k] after batch k. The twin applies the
/// identical code path (same validation, same threshold compaction), so
/// equality with a recovered store is a real end-to-end check, not a
/// serializer identity.
std::vector<std::string> TwinCanons(const Workload& w) {
  ViewServer server;
  RegisterViews(&server);
  DocumentStore twin(&server);
  EXPECT_TRUE(twin.Put("docs", w.initial).ok());
  std::vector<std::string> canons;
  canons.push_back(Canon(*twin.Find("docs")));
  for (const auto& batch : w.batches) {
    EXPECT_TRUE(twin.Apply("docs", batch).ok());
    canons.push_back(Canon(*twin.Find("docs")));
  }
  return canons;
}

/// Runs the workload against `store`, stopping at the first failure.
/// Returns the number of acknowledged batches, or -1 when Put itself
/// failed (so `result + 1` indexes into TwinCanons).
int RunWorkload(DocumentStore* store, const Workload& w) {
  if (!store->Put("docs", w.initial).ok()) return -1;
  int acked = 0;
  for (const auto& batch : w.batches) {
    if (!store->Apply("docs", batch).ok()) break;
    ++acked;
  }
  return acked;
}

DocumentStoreOptions DurableOptions(const std::string& dir,
                                    FsyncPolicy fsync = FsyncPolicy::kAlways,
                                    IoEnv* env = nullptr) {
  DocumentStoreOptions options;
  options.durable_dir = dir;
  options.fsync = fsync;
  options.io_env = env;
  options.checkpoint_after_wal_bytes = 0;  // Tests trigger explicitly.
  return options;
}

// -------------------------------------------------------------- tests ----

TEST(DurabilityTest, ReopenedStoreMatchesInMemoryTwinExactly) {
  const std::string dir = TestDir("roundtrip");
  const Workload w = MakeWorkload(7, 20);
  const std::vector<std::string> twins = TwinCanons(w);

  {
    ViewServer server;
    RegisterViews(&server);
    auto options = DurableOptions(dir, FsyncPolicy::kBatch);
    options.sync_every_records = 4;
    auto store = DocumentStore::Open(&server, options);
    ASSERT_TRUE(store.ok()) << store.status().message();
    EXPECT_EQ(RunWorkload(store->get(), w), 20);
    EXPECT_EQ((*store)->stats().wal_appends, 21);  // 1 Put + 20 batches.
    EXPECT_GT((*store)->stats().wal_bytes, 0);
  }  // Clean close syncs the tail.

  ViewServer server;
  RegisterViews(&server);
  auto reopened = DocumentStore::Open(&server, DurableOptions(dir));
  ASSERT_TRUE(reopened.ok()) << reopened.status().message();
  EXPECT_EQ((*reopened)->stats().recoveries, 1);
  EXPECT_FALSE((*reopened)->read_only());
  ASSERT_NE((*reopened)->Find("docs"), nullptr);
  EXPECT_EQ(Canon(*(*reopened)->Find("docs")), twins.back());

  // Answers, not just state: rebuilds of the materialized views over the
  // recovered document must serve bit-identical probabilities to the twin
  // (the PR4 invariant makes from-scratch == incremental, so the twin is
  // materialized the same way).
  ViewServer twin_server;
  RegisterViews(&twin_server);
  DocumentStore twin(&twin_server);
  ASSERT_TRUE(twin.Put("docs", w.initial).ok());
  for (const auto& batch : w.batches) {
    ASSERT_TRUE(twin.Apply("docs", batch).ok());
  }
  ASSERT_TRUE(twin.MaterializeIncremental("docs").ok());
  const auto got = (*reopened)->AnswerAll("docs", Queries());
  const auto want = twin.AnswerAll("docs", Queries());
  ASSERT_EQ(got.size(), want.size());
  for (size_t q = 0; q < got.size(); ++q) {
    ASSERT_EQ(got[q].has_value(), want[q].has_value());
    if (!got[q].has_value()) continue;
    ASSERT_EQ(got[q]->size(), want[q]->size());
    for (size_t i = 0; i < got[q]->size(); ++i) {
      EXPECT_EQ((*got[q])[i].pid, (*want[q])[i].pid);
      EXPECT_EQ((*got[q])[i].prob, (*want[q])[i].prob);  // Bit-identical.
    }
  }
}

TEST(DurabilityTest, TornTrailingRecordIsDroppedWithoutLosingEarlierBatches) {
  const std::string dir = TestDir("torn");
  const Workload w = MakeWorkload(11, 8);
  const std::vector<std::string> twins = TwinCanons(w);

  {
    ViewServer server;
    RegisterViews(&server);
    auto store = DocumentStore::Open(&server, DurableOptions(dir));
    ASSERT_TRUE(store.ok());
    EXPECT_EQ(RunWorkload(store->get(), w), 8);
  }

  // Cut into the middle of the last frame of the (single) live segment:
  // the classic torn write a crash leaves behind.
  const std::string seg = dir + "/" + WalSegmentFileName(1);
  auto read = ReadWalSegment(IoEnv::Real(), seg);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->records.size(), 9u);  // Put + 8 batches.
  const uint64_t cut = read->records.back().offset + 5;
  ASSERT_EQ(::truncate(seg.c_str(), static_cast<off_t>(cut)), 0);

  ViewServer server;
  RegisterViews(&server);
  auto reopened = DocumentStore::Open(&server, DurableOptions(dir));
  ASSERT_TRUE(reopened.ok()) << reopened.status().message();
  EXPECT_EQ((*reopened)->stats().torn_records_dropped, 1);
  ASSERT_NE((*reopened)->Find("docs"), nullptr);
  // Every batch before the torn one survives; the torn one is gone.
  EXPECT_EQ(Canon(*(*reopened)->Find("docs")), twins[twins.size() - 2]);
  // The store is writable again after dropping the torn tail.
  EXPECT_TRUE((*reopened)->Apply("docs", w.batches.back()).ok());
}

TEST(DurabilityTest, CheckpointTruncatesWalAndRecoveryStaysExact) {
  const std::string dir = TestDir("checkpoint");
  const Workload w = MakeWorkload(13, 20);
  const std::vector<std::string> twins = TwinCanons(w);

  {
    ViewServer server;
    RegisterViews(&server);
    auto store = DocumentStore::Open(&server, DurableOptions(dir));
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Put("docs", w.initial).ok());
    for (int b = 0; b < 10; ++b) {
      ASSERT_TRUE((*store)->Apply("docs", w.batches[b]).ok());
    }
    ASSERT_TRUE((*store)->Checkpoint().ok());
    EXPECT_EQ((*store)->stats().checkpoints, 1);
    // The pre-checkpoint segment is gone; only the fresh one remains.
    auto files = IoEnv::Real()->ListDir(dir);
    ASSERT_TRUE(files.ok());
    int segments = 0, ckpts = 0;
    for (const std::string& f : *files) {
      uint64_t seq = 0;
      if (ParseWalSegmentFileName(f, &seq)) {
        ++segments;
        EXPECT_EQ(seq, 2u);
      } else if (ParseCheckpointFileName(f, &seq)) {
        ++ckpts;
        EXPECT_EQ(seq, 2u);
      }
    }
    EXPECT_EQ(segments, 1);
    EXPECT_EQ(ckpts, 1);
    // Keep writing after the checkpoint: recovery must stitch the
    // checkpoint image and the WAL tail together via the lsn filter.
    for (int b = 10; b < 20; ++b) {
      ASSERT_TRUE((*store)->Apply("docs", w.batches[b]).ok());
    }
  }

  ViewServer server;
  RegisterViews(&server);
  auto reopened = DocumentStore::Open(&server, DurableOptions(dir));
  ASSERT_TRUE(reopened.ok()) << reopened.status().message();
  ASSERT_NE((*reopened)->Find("docs"), nullptr);
  EXPECT_EQ(Canon(*(*reopened)->Find("docs")), twins.back());
}

TEST(DurabilityTest, AutoCheckpointFiresAndRecoveryStaysExact) {
  const std::string dir = TestDir("autockpt");
  const Workload w = MakeWorkload(17, 30);
  const std::vector<std::string> twins = TwinCanons(w);

  {
    ViewServer server;
    RegisterViews(&server);
    auto options = DurableOptions(dir);
    options.checkpoint_after_wal_bytes = 2048;
    auto store = DocumentStore::Open(&server, options);
    ASSERT_TRUE(store.ok());
    EXPECT_EQ(RunWorkload(store->get(), w), 30);
    EXPECT_GE((*store)->stats().checkpoints, 1);
  }

  ViewServer server;
  RegisterViews(&server);
  auto reopened = DocumentStore::Open(&server, DurableOptions(dir));
  ASSERT_TRUE(reopened.ok()) << reopened.status().message();
  ASSERT_NE((*reopened)->Find("docs"), nullptr);
  EXPECT_EQ(Canon(*(*reopened)->Find("docs")), twins.back());
}

TEST(DurabilityTest, RejectedBatchNamesTheMutationAndNeverReachesTheWal) {
  const std::string dir = TestDir("rejected");
  const Workload w = MakeWorkload(19, 2);
  ViewServer server;
  RegisterViews(&server);
  auto store = DocumentStore::Open(&server, DurableOptions(dir));
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(RunWorkload(store->get(), w), 2);
  const std::string before = Canon(*(*store)->Find("docs"));
  const int64_t wal_appends = (*store)->stats().wal_appends;

  // Valid first mutation, impossible second: the batch must roll back as
  // a whole, the error must say WHICH mutation failed, and the WAL must
  // not contain the rolled-back batch.
  const auto pid = (*store)->Find("docs")->pid((*store)->Find("docs")->root());
  const auto status = (*store)->Apply(
      "docs", {DocMutation::SetEdgeProb(pid, 1.0),
               DocMutation::RemoveSubtree(999999999)});
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.status().message().find("mutation #1"), std::string::npos)
      << status.status().message();
  EXPECT_EQ(Canon(*(*store)->Find("docs")), before);
  EXPECT_EQ((*store)->stats().wal_appends, wal_appends);
  EXPECT_EQ((*store)->stats().rejected_batches, 1);
  EXPECT_FALSE((*store)->read_only());

  // And therefore replay never sees it either.
  ViewServer server2;
  RegisterViews(&server2);
  auto reopened = DocumentStore::Open(&server2, DurableOptions(dir));
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(Canon(*(*reopened)->Find("docs")), before);
}

TEST(DurabilityTest, ReadOnlyDegradationKeepsServingReads) {
  const std::string dir = TestDir("readonly");
  const Workload w = MakeWorkload(23, 20);
  const std::vector<std::string> twins = TwinCanons(w);

  FaultPlan plan;
  plan.mode = FaultPlan::Mode::kFail;
  plan.fail_at = 12;  // Mid-workload (CreateDir/open/sync preamble ≈ 4 ops).
  plan.crash = false;  // The process lives on; only one I/O op fails.
  FaultInjectingIoEnv env(IoEnv::Real(), plan);

  ViewServer server;
  RegisterViews(&server);
  auto store =
      DocumentStore::Open(&server, DurableOptions(dir, FsyncPolicy::kAlways,
                                                  &env));
  ASSERT_TRUE(store.ok()) << store.status().message();
  const int acked = RunWorkload(store->get(), w);
  ASSERT_TRUE(env.fault_fired());
  ASSERT_GE(acked, 1);
  ASSERT_LT(acked, 20);

  // Degraded: writes fail fast, reads keep serving the acked state.
  EXPECT_TRUE((*store)->read_only());
  EXPECT_EQ((*store)->stats().read_only, 1);
  EXPECT_FALSE((*store)->Apply("docs", w.batches[acked]).ok());
  EXPECT_FALSE((*store)->Put("other", w.initial).ok());
  EXPECT_FALSE((*store)->Drop("docs").ok());
  EXPECT_FALSE((*store)->Compact("docs").ok());
  EXPECT_EQ(Canon(*(*store)->Find("docs")), twins[acked]);
  EXPECT_TRUE((*store)->Answer("docs", Queries()[0]).has_value());

  // On disk the failed batch has INDETERMINATE durability — the standard
  // WAL contract. If the fault hit the append, the frame never reached the
  // log (or reached it torn, and recovery drops it): reopen serves acked.
  // If the fault hit the fsync, the full frame is in the OS file and a
  // process restart (no machine crash) replays it: reopen serves acked+1.
  // What can never happen is anything else — a validation-rejected batch
  // never reaches the log at all (see RejectedBatchNamesTheMutation...),
  // and a machine crash truncates the unsynced frame (see the crash
  // matrix, which asserts EXACT acked equality under SimulateCrash).
  store->reset();
  ViewServer server2;
  RegisterViews(&server2);
  auto reopened = DocumentStore::Open(&server2, DurableOptions(dir));
  ASSERT_TRUE(reopened.ok()) << reopened.status().message();
  const std::string canon = Canon(*(*reopened)->Find("docs"));
  EXPECT_TRUE(canon == twins[acked] || canon == twins[acked + 1])
      << "reopened state is neither acked nor acked+1";
}

// ------------------------------------------------------- crash matrix ----

int MatrixPoints() {
  if (const char* env = std::getenv("PXV_CRASH_MATRIX_POINTS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 16;  // Per mode; CI's fuzz job cranks this into the hundreds.
}

TEST(DurabilityTest, CrashMatrixRecoversTheExactAcknowledgedPrefix) {
  const Workload w = MakeWorkload(29, 15);
  const std::vector<std::string> twins = TwinCanons(w);

  // Calibration: count the I/O ops a fault-free durable run performs so
  // fault points can sweep the whole space.
  int64_t total_ops = 0;
  {
    const std::string dir = TestDir("crash_calibrate");
    FaultInjectingIoEnv env(IoEnv::Real());
    ViewServer server;
    RegisterViews(&server);
    auto options = DurableOptions(dir, FsyncPolicy::kAlways, &env);
    options.checkpoint_after_wal_bytes = 2048;  // Checkpoints in the mix.
    auto store = DocumentStore::Open(&server, options);
    ASSERT_TRUE(store.ok());
    EXPECT_EQ(RunWorkload(store->get(), w), 15);
    EXPECT_GE((*store)->stats().checkpoints, 1);
    store->reset();
    total_ops = env.ops();
    ASSERT_GT(total_ops, 20);
  }

  const int points = MatrixPoints();
  Rng rng(4242);
  for (const FaultPlan::Mode mode :
       {FaultPlan::Mode::kFail, FaultPlan::Mode::kShortWrite,
        FaultPlan::Mode::kCorrupt}) {
    for (int i = 0; i < points; ++i) {
      // Always probe the first and last op; sample the rest randomly.
      const int64_t fail_at = i == 0          ? 0
                              : i == 1        ? total_ops - 1
                                              : static_cast<int64_t>(
                                                    rng.NextBounded(total_ops));
      SCOPED_TRACE("mode=" + std::to_string(static_cast<int>(mode)) +
                   " fail_at=" + std::to_string(fail_at));
      const std::string dir = TestDir("crash_run");

      FaultPlan plan;
      plan.mode = mode;
      plan.fail_at = fail_at;
      plan.crash = mode != FaultPlan::Mode::kCorrupt;
      FaultInjectingIoEnv env(IoEnv::Real(), plan);
      int acked = -1;
      {
        ViewServer server;
        RegisterViews(&server);
        auto options = DurableOptions(dir, FsyncPolicy::kAlways, &env);
        options.checkpoint_after_wal_bytes = 2048;
        auto store = DocumentStore::Open(&server, options);
        if (store.ok()) acked = RunWorkload(store->get(), w);
        // The store (and its WAL file handles) die here, mid-flight.
      }
      ASSERT_TRUE(env.fault_fired());
      // The machine dies: unsynced page-cache bytes are lost.
      ASSERT_TRUE(env.SimulateCrash().ok());

      ViewServer server;
      RegisterViews(&server);
      auto recovered = DocumentStore::Open(&server, DurableOptions(dir));

      if (mode == FaultPlan::Mode::kCorrupt) {
        // Silent bit rot: recovery may fail loudly (CRC, segment gap,
        // replay mismatch) but must NEVER serve an altered state — any
        // recovered state has to be an acknowledged prefix of the twin.
        if (!recovered.ok()) continue;
        const PDocument* doc = (*recovered)->Find("docs");
        if (doc == nullptr) continue;  // Lost the Put: the empty prefix.
        const std::string canon = Canon(*doc);
        bool is_prefix = false;
        for (int k = 0; k <= acked && !is_prefix; ++k) {
          is_prefix = canon == twins[k];
        }
        EXPECT_TRUE(is_prefix) << "recovered state matches no twin prefix";
        continue;
      }

      // kFail / kShortWrite under fsync=always: an acknowledgement means
      // append + fsync both succeeded, and SimulateCrash keeps nothing
      // unsynced — so recovery must land on EXACTLY the acked state.
      ASSERT_TRUE(recovered.ok()) << recovered.status().message();
      EXPECT_EQ((*recovered)->stats().recoveries, 1);
      if (acked < 0) {
        EXPECT_EQ((*recovered)->Find("docs"), nullptr)
            << "an unacknowledged Put must not survive the crash";
      } else {
        ASSERT_NE((*recovered)->Find("docs"), nullptr);
        EXPECT_EQ(Canon(*(*recovered)->Find("docs")), twins[acked]);
      }
    }
  }
}

TEST(DurabilityTest, OpenOnFreshDirectoryStartsEmptyAndWritable) {
  const std::string dir = TestDir("fresh");
  ViewServer server;
  RegisterViews(&server);
  auto store = DocumentStore::Open(&server, DurableOptions(dir));
  ASSERT_TRUE(store.ok()) << store.status().message();
  EXPECT_TRUE((*store)->Names().empty());
  EXPECT_FALSE((*store)->read_only());
  Rng rng(411);
  EXPECT_TRUE((*store)->Put("docs", PersonnelPDocument(rng, 5)).ok());
}

}  // namespace
}  // namespace pxv
