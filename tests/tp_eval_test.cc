#include <gtest/gtest.h>

#include "gen/paper.h"
#include "tp/eval.h"
#include "tp/parser.h"
#include "xml/parser.h"

namespace pxv {
namespace {

Document Doc(const char* text) {
  auto d = ParseTreeText(text);
  EXPECT_TRUE(d.ok()) << d.status().message();
  return *std::move(d);
}

// Example 5: q_RBON(d_PER) = q_BON(d_PER) = v1_BON(d_PER) = {n5};
// v2_BON(d_PER) = {n5, n7}.
TEST(EvalTest, PaperExample5) {
  const Document d = paper::DocPER();
  auto pids = [&](const Pattern& q) {
    std::vector<PersistentId> out;
    for (NodeId n : Evaluate(q, d)) out.push_back(d.pid(n));
    return out;
  };
  EXPECT_EQ(pids(paper::QueryRBON()), (std::vector<PersistentId>{5}));
  EXPECT_EQ(pids(paper::QueryBON()), (std::vector<PersistentId>{5}));
  EXPECT_EQ(pids(paper::ViewV1BON()), (std::vector<PersistentId>{5}));
  EXPECT_EQ(pids(paper::ViewV2BON()), (std::vector<PersistentId>{5, 7}));
}

TEST(EvalTest, RootLabelMismatch) {
  EXPECT_TRUE(Evaluate(Tp("x/y"), Doc("a(y)")).empty());
}

TEST(EvalTest, ChildVsDescendant) {
  const Document d = Doc("a(b(c(d)))");
  EXPECT_TRUE(Evaluate(Tp("a/c"), d).empty());
  EXPECT_EQ(Evaluate(Tp("a//c"), d).size(), 1u);
  EXPECT_EQ(Evaluate(Tp("a//d"), d).size(), 1u);
  // Descendant is strict: a//a does not match the root itself.
  EXPECT_TRUE(Evaluate(Tp("a//a"), d).empty());
}

TEST(EvalTest, DescendantStrictButNested) {
  const Document d = Doc("a(a(a))");
  EXPECT_EQ(Evaluate(Tp("a//a"), d).size(), 2u);
  EXPECT_EQ(Evaluate(Tp("a//a//a"), d).size(), 1u);
}

TEST(EvalTest, PredicatesFilter) {
  const Document d = Doc("a(b(c), b(d))");
  const auto r = Evaluate(Tp("a/b[c]"), d);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(d.pid(r[0]), 1);
}

TEST(EvalTest, DescendantPredicate) {
  const Document d = Doc("a(b(x(c)), b(c))");
  EXPECT_EQ(Evaluate(Tp("a/b[.//c]"), d).size(), 2u);
  EXPECT_EQ(Evaluate(Tp("a/b[c]"), d).size(), 1u);
}

TEST(EvalTest, MultiplePredicates) {
  const Document d = Doc("a(b(c, d), b(c))");
  EXPECT_EQ(Evaluate(Tp("a/b[c][d]"), d).size(), 1u);
}

TEST(EvalTest, BranchingPredicateSubtree) {
  const Document d = Doc("a(b(p(x, y)), b(p(x)))");
  EXPECT_EQ(Evaluate(Tp("a/b[p[x][y]]"), d).size(), 1u);
}

TEST(EvalTest, SameNodeSelectedOnce) {
  // Two embeddings map out to the same node: result is a set.
  const Document d = Doc("a(x(b), x(b))");
  const auto r = Evaluate(Tp("a//b"), d);
  EXPECT_EQ(r.size(), 2u);  // Two distinct b nodes.
  const Document d2 = Doc("a(x(x(b)))");
  EXPECT_EQ(Evaluate(Tp("a//x//b"), d2).size(), 1u);
}

TEST(EvalTest, OutMidBranch) {
  // Output node in the middle: predicates below it still constrain.
  Pattern q = Tp("a/b/c");
  q.SetOut(q.MainBranch()[1]);
  const Document d = Doc("a(b(c), b(x))");
  const auto r = Evaluate(q, d);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(d.pid(r[0]), 1);
}

TEST(EvalTest, MatchesBoolean) {
  const Document d = Doc("a(b)");
  EXPECT_TRUE(Matches(Tp("a/b"), d));
  EXPECT_FALSE(Matches(Tp("a/c"), d));
}

TEST(EvalTest, SubtreeEmbedsAt) {
  const Document d = Doc("a(b(c))");
  const Pattern q = Tp("a/b[c]");
  EXPECT_TRUE(SubtreeEmbedsAt(q, q.MainBranch()[1], d, 1));
  EXPECT_FALSE(SubtreeEmbedsAt(q, q.MainBranch()[1], d, 0));
}

TEST(EvalTest, DeepChainPerformanceSanity) {
  // 1000-deep chain; descendant query must still work.
  Document d;
  NodeId cur = d.AddRoot(Intern("a"));
  for (int i = 0; i < 1000; ++i) cur = d.AddChild(cur, Intern("m"));
  d.AddChild(cur, Intern("z"));
  EXPECT_EQ(Evaluate(Tp("a//z"), d).size(), 1u);
}

}  // namespace
}  // namespace pxv
