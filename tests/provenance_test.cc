// Why-provenance (§7 future work implemented here): f_r executions can
// report the full derivation of every probability — the view factors,
// exponents, and inclusion–exclusion terms — and the derivation recomputes
// the value exactly.

#include <gtest/gtest.h>

#include <cmath>

#include "gen/paper.h"
#include "pxml/parser.h"
#include "rewrite/fr_tp.h"
#include "rewrite/rewriter.h"
#include "rewrite/tpi_rewrite.h"
#include "tp/parser.h"

namespace pxv {
namespace {

TEST(ProvenanceTest, TheoremOnePath) {
  const auto rws =
      TPrewrite(paper::QueryBON(), {{"v2BON", paper::ViewV2BON()}});
  ASSERT_EQ(rws.size(), 1u);
  Rewriter rewriter;
  rewriter.AddView("v2BON", paper::ViewV2BON());
  const ViewExtensions exts = rewriter.Materialize(paper::PDocPER());
  std::vector<FrProvenance> why;
  const auto results = ExecuteTpRewriting(rws[0], exts.at("v2BON"), &why);
  ASSERT_EQ(results.size(), 1u);
  ASSERT_EQ(why.size(), 1u);
  EXPECT_EQ(why[0].pid, 5);
  EXPECT_FALSE(why[0].inclusion_exclusion);
  EXPECT_NEAR(why[0].plan_probability, 0.9, 1e-12);
  EXPECT_NEAR(why[0].out_predicate_mass, 1.0, 1e-12);
  // The derivation recomputes the value.
  EXPECT_NEAR(why[0].plan_probability / why[0].out_predicate_mass,
              why[0].value, 1e-12);
  EXPECT_NE(why[0].ToString().find("Theorem 1"), std::string::npos);
}

TEST(ProvenanceTest, InclusionExclusionPath) {
  const auto pd = ParsePDocument(
      "a(b(mux(x@0.5), c(b(c(mux(d@0.6))), mux(d@0.3))))");
  ASSERT_TRUE(pd.ok());
  const Pattern q = Tp("a//b/c//d");
  const auto rws = TPrewrite(q, {{"v", Tp("a//b/c")}});
  ASSERT_EQ(rws.size(), 1u);
  Rewriter rewriter;
  rewriter.AddView("v", Tp("a//b/c"));
  const ViewExtensions exts = rewriter.Materialize(*pd);
  std::vector<FrProvenance> why;
  const auto results = ExecuteTpRewriting(rws[0], exts.at("v"), &why);
  ASSERT_FALSE(results.empty());
  bool found_ie = false;
  for (const FrProvenance& p : why) {
    if (!p.inclusion_exclusion) continue;
    found_ie = true;
    // Terms: 2^a − 1 with a = 2 ancestors → 3 terms; signs +,+,−.
    EXPECT_EQ(p.terms.size(), 3u);
    double recomputed = 0;
    for (const auto& t : p.terms) recomputed += t.sign * t.joint;
    EXPECT_NEAR(recomputed, p.value, 1e-12);
    // Each term's joint matches its factors.
    for (const auto& t : p.terms) {
      if (t.out_preds > 0) {
        EXPECT_NEAR(t.joint, t.beta / t.out_preds * t.alpha, 1e-12);
      }
      EXPECT_FALSE(t.chain.empty());
    }
  }
  EXPECT_TRUE(found_ie);
}

TEST(ProvenanceTest, TpiFactors) {
  const auto pd = ParsePDocument(
      "a(mux(1@0.8), b(mux(2@0.7), c(mux(3@0.6), mux(d@0.9))))");
  ASSERT_TRUE(pd.ok());
  std::vector<NamedView> views;
  for (int i = 1; i <= 4; ++i) {
    views.push_back({"v" + std::to_string(i), paper::View16(i)});
  }
  const auto rw = TPIrewrite(paper::Query16(), views);
  ASSERT_TRUE(rw.has_value());
  Rewriter rewriter;
  for (const NamedView& v : views) rewriter.AddView(v.name, v.def.Clone());
  const ViewExtensions exts = rewriter.Materialize(*pd);
  std::vector<TpiProvenance> why;
  const auto results = ExecuteTpiRewriting(*rw, exts, &why);
  ASSERT_EQ(results.size(), 1u);
  ASSERT_EQ(why.size(), 1u);
  // The product of factor^exponent recomputes the value.
  double log_prob = 0;
  for (const auto& f : why[0].factors) {
    ASSERT_GT(f.value, 0);
    log_prob += f.exponent.ToDouble() * std::log(f.value);
  }
  EXPECT_NEAR(std::exp(log_prob), why[0].value, 1e-12);
  EXPECT_FALSE(why[0].ToString().empty());
}

TEST(ProvenanceTest, NoProvenanceRequestedIsCheap) {
  // Null provenance pointer: identical results.
  const auto rws =
      TPrewrite(paper::QueryBON(), {{"v2BON", paper::ViewV2BON()}});
  Rewriter rewriter;
  rewriter.AddView("v2BON", paper::ViewV2BON());
  const ViewExtensions exts = rewriter.Materialize(paper::PDocPER());
  const auto with_null = ExecuteTpRewriting(rws[0], exts.at("v2BON"));
  std::vector<FrProvenance> why;
  const auto with_prov = ExecuteTpRewriting(rws[0], exts.at("v2BON"), &why);
  ASSERT_EQ(with_null.size(), with_prov.size());
  for (size_t i = 0; i < with_null.size(); ++i) {
    EXPECT_EQ(with_null[i].pid, with_prov[i].pid);
    EXPECT_DOUBLE_EQ(with_null[i].prob, with_prov[i].prob);
  }
}

}  // namespace
}  // namespace pxv
